// E7b — substrate collective ablations: one-port binomial vs scatter+
// all-gather vs all-port nESBT broadcast, Gray vs binary ring shifts, the
// cost of matrix transposition (stable dimension permutation), and the
// core collectives re-run on every physical topology preset.
#include <cmath>

#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_collectives", argc, argv);

  for (int d : h.dims({0, 4, 8}, {0, 4}))
    for (std::size_t n : h.sizes({4096, 65536}, {4096})) {
      const auto nn = static_cast<std::int64_t>(n);
      h.run("fft", {{"dim", d}, {"n", nn}}, [&](bench::Case& c) {
        Cube cube(d, CostParams::cm2());
        if (h.metrics()) cube.enable_metrics();
        Grid grid = Grid::square(cube);
        std::vector<cplx> x(n);
        SplitMix64 rng(6);
        for (cplx& z : x) z = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
        DistVector<cplx> v(grid, n, Align::Linear);
        v.load(x);
        cube.clock().reset();
        fft(v);
        const double sim = cube.clock().now_us();
        c.profile("run", cube.clock());
        const double lg = std::log2(static_cast<double>(n));
        const double serial =
            10.0 * static_cast<double>(n) / 2.0 * lg * cube.costs().flop_us;
        c.counter("sim_us", sim);
        c.counter("speedup", serial / sim);
        if (h.metrics()) c.metrics(cube.metrics(), sim);
      });
      h.run("sort", {{"dim", d}, {"n", nn}}, [&](bench::Case& c) {
        Cube cube(d, CostParams::cm2());
        Grid grid = Grid::square(cube);
        DistVector<double> v(grid, n, Align::Linear);
        v.load(random_vector(n, 7));
        cube.clock().reset();
        vec_sort(v);
        const double sim = cube.clock().now_us();
        c.profile("run", cube.clock());
        const double lg = std::log2(static_cast<double>(n));
        const double serial =
            static_cast<double>(n) * lg * cube.costs().flop_us;
        c.counter("sim_us", sim);
        c.counter("speedup", serial / sim);
      });
      h.run("scan", {{"dim", d}, {"n", nn}}, [&](bench::Case& c) {
        Cube cube(d, CostParams::cm2());
        Grid grid = Grid::square(cube);
        DistVector<double> v(grid, n, Align::Linear);
        v.load(random_vector(n, 5));
        cube.clock().reset();
        vec_scan_exclusive(v, Plus<double>{});
        const double sim = cube.clock().now_us();
        c.profile("run", cube.clock());
        const double serial = static_cast<double>(n) * cube.costs().flop_us;
        c.counter("sim_us", sim);
        c.counter("speedup", serial / sim);
      });
    }

  for (int d : h.dims({0, 4, 8}, {0, 4}))
    for (std::size_t n : h.sizes({1024, 8192}, {1024})) {
      h.run("tridiag_pcr", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              std::vector<double> a(n, -1.0), b(n, 4.0), cc(n, -1.0),
                  rhs(n, 1.0);
              a[0] = cc[n - 1] = 0.0;
              Cube cube(d, CostParams::cm2());
              Grid grid = Grid::square(cube);
              cube.clock().reset();
              (void)tridiag_solve_pcr(grid, a, b, cc, rhs);
              const double sim = cube.clock().now_us();
              c.profile("run", cube.clock());
              // Thomas algorithm: ~8n flops serially.
              const double serial =
                  8.0 * static_cast<double>(n) * cube.costs().flop_us;
              c.counter("sim_us", sim);
              c.counter("speedup_vs_thomas", serial / sim);
            });
    }

  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t n : h.sizes({16, 256, 4096, 32768}, {256})) {
      h.run("broadcast_three_ways",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              const SubcubeSet sc = SubcubeSet::contiguous(0, d);
              double t_bin = 0, t_sag = 0, t_esbt = 0;
              {
                DistBuffer<double> buf(cube);
                buf.assign(0, random_vector(n, 1));
                cube.clock().reset();
                broadcast(cube, buf, sc, 0);
                t_bin = cube.clock().now_us();
              }
              {
                DistBuffer<double> buf(cube);
                buf.assign(0, random_vector(n, 1));
                cube.clock().reset();
                broadcast_sag(cube, buf, sc, 0, [n](proc_t) { return n; });
                t_sag = cube.clock().now_us();
              }
              {
                DistBuffer<double> buf(cube);
                buf.assign(0, random_vector(n, 1));
                cube.clock().reset();
                broadcast_esbt(cube, buf, sc, 0, [n](proc_t) { return n; });
                t_esbt = cube.clock().now_us();
              }
              c.counter("sim_binomial_us", t_bin);
              c.counter("sim_sag_us", t_sag);
              c.counter("sim_esbt_us", t_esbt);
              c.counter("esbt_gain_vs_binomial", t_bin / t_esbt);
            });
    }

  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t n : h.sizes({64, 1024}, {64})) {
      h.run("shift_gray_vs_binary",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              const SubcubeSet sc = SubcubeSet::contiguous(0, d);
              DistBuffer<double> g(cube);
              cube.each_proc(
                  [&](proc_t q) { g.assign(q, random_vector(n, q)); });
              cube.clock().reset();
              shift_blocks(cube, g, sc, 1, RingOrder::Gray);
              const double t_gray = cube.clock().now_us();

              DistBuffer<double> b(cube);
              cube.each_proc(
                  [&](proc_t q) { b.assign(q, random_vector(n, q)); });
              cube.clock().reset();
              shift_blocks(cube, b, sc, 1, RingOrder::Binary);
              const double t_binary = cube.clock().now_us();

              c.counter("sim_gray_us", t_gray);
              c.counter("sim_binary_us", t_binary);
              c.counter("gray_gain", t_binary / t_gray);
            });
    }

  // Stride sweep: the hyper-systolic communication alphabet — unit shifts
  // (one round), small strides, and the √p stride of the streaming phases
  // (multi-hop store-and-forward rounds).
  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t n : h.sizes({64, 1024}, {64})) {
      h.run("shift_stride_sweep",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              const SubcubeSet sc = SubcubeSet::contiguous(0, d);
              const int strides[] = {1, 2, 1 << ((d + 1) / 2)};
              const char* names[] = {"sim_by1_us", "sim_by2_us",
                                     "sim_bysqrtp_us"};
              const char* rounds[] = {"rounds_by1", "rounds_by2",
                                      "rounds_bysqrtp"};
              for (int i = 0; i < 3; ++i) {
                DistBuffer<double> buf(cube);
                cube.each_proc(
                    [&](proc_t q) { buf.assign(q, random_vector(n, q)); });
                cube.clock().reset();
                shift_blocks(cube, buf, sc, strides[i], RingOrder::Gray);
                c.counter(names[i], cube.clock().now_us());
                c.counter(rounds[i],
                          static_cast<double>(shift_rounds(sc, strides[i])));
              }
            });
    }

  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t n : h.sizes({64, 256, 1024}, {64})) {
      h.run("transpose", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              Grid grid = Grid::square(cube);
              DistMatrix<double> A(grid, n, n);
              A.load(random_matrix(n, n, 2));
              cube.clock().reset();
              (void)transpose(A);
              c.profile("run", cube.clock());
              c.counter("sim_us", cube.clock().now_us());
              c.counter("elems_per_proc",
                        static_cast<double>(n * n) / cube.procs());
            });
    }

  for (int d : h.dims({4, 6}, {4}))
    for (std::size_t n : h.sizes({32, 64, 128}, {32})) {
      h.run("matmul", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              Grid grid = Grid::square(cube);
              DistMatrix<double> A(grid, n, n), B(grid, n, n);
              A.load(random_matrix(n, n, 3));
              B.load(random_matrix(n, n, 4));
              cube.clock().reset();
              (void)matmul(A, B);
              const double sim_rank1 = cube.clock().now_us();
              cube.clock().reset();
              (void)matmul_summa(A, B);
              const double sim_summa = cube.clock().now_us();
              const double serial = 2.0 * static_cast<double>(n) *
                                    static_cast<double>(n) *
                                    static_cast<double>(n) *
                                    cube.costs().flop_us;
              c.counter("sim_rank1_us", sim_rank1);
              c.counter("sim_summa_us", sim_summa);
              c.counter("summa_gain", sim_rank1 / sim_summa);
              c.counter("summa_speedup", serial / sim_summa);
              c.counter("summa_efficiency",
                        serial / sim_summa / cube.procs());
            });
    }

  // Topology ablation: broadcast and all-reduce on each physical preset.
  // Results are bit-identical across presets (same algorithm, same logical
  // cube); what moves is the charge per exchange — dilation and link
  // contention on the mesh/torus, the global-link tax on the dragonfly.
  {
    constexpr TopologyKind kPresets[] = {
        TopologyKind::Hypercube, TopologyKind::Mesh, TopologyKind::Torus,
        TopologyKind::Dragonfly};
    for (TopologyKind kind : kPresets)
      for (int d : h.dims({4, 6, 8}, {4}))
        for (std::size_t n : h.sizes({64, 1024}, {64})) {
          h.run("collectives_topology_sweep",
                {{"topology", static_cast<std::int64_t>(kind)},
                 {"dim", d},
                 {"n", static_cast<std::int64_t>(n)}},
                [&](bench::Case& c) {
                  Cube::Options opts;
                  opts.topology = kind;
                  Cube cube(d, CostParams::cm2(), opts);
                  c.label(cube.topology().name());
                  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
                  DistBuffer<double> buf(cube);
                  buf.assign(0, random_vector(n, 1));
                  cube.clock().reset();
                  broadcast(cube, buf, sc, 0);
                  const double t_bcast = cube.clock().now_us();
                  c.profile("broadcast", cube.clock());

                  DistBuffer<double> red(cube);
                  cube.each_proc([&](proc_t q) {
                    red.assign(q, random_vector(n, q));
                  });
                  cube.clock().reset();
                  allreduce(cube, red, sc, Plus<double>{});
                  const double t_allred = cube.clock().now_us();
                  c.profile("allreduce", cube.clock());

                  c.counter("sim_broadcast_us", t_bcast);
                  c.counter("sim_allreduce_us", t_allred);
                  c.counter("link_hops", static_cast<double>(
                                             cube.clock().stats().link_hops));
                });
        }
  }
  return h.finish();
}
