// E7b — substrate collective ablations: one-port binomial vs scatter+
// all-gather vs all-port nESBT broadcast, Gray vs binary ring shifts, and
// the cost of matrix transposition (stable dimension permutation).
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

void BM_BroadcastThreeWays(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  double t_bin = 0, t_sag = 0, t_esbt = 0;
  for (auto _ : state) {
    {
      DistBuffer<double> buf(cube);
      buf.vec(0) = random_vector(n, 1);
      cube.clock().reset();
      broadcast(cube, buf, sc, 0);
      t_bin = cube.clock().now_us();
    }
    {
      DistBuffer<double> buf(cube);
      buf.vec(0) = random_vector(n, 1);
      cube.clock().reset();
      broadcast_sag(cube, buf, sc, 0, [n](proc_t) { return n; });
      t_sag = cube.clock().now_us();
    }
    {
      DistBuffer<double> buf(cube);
      buf.vec(0) = random_vector(n, 1);
      cube.clock().reset();
      broadcast_esbt(cube, buf, sc, 0, [n](proc_t) { return n; });
      t_esbt = cube.clock().now_us();
    }
  }
  state.counters["sim_binomial_us"] = t_bin;
  state.counters["sim_sag_us"] = t_sag;
  state.counters["sim_esbt_us"] = t_esbt;
  state.counters["esbt_gain_vs_binomial"] = t_bin / t_esbt;
}

void BM_ShiftGrayVsBinary(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  double t_gray = 0, t_binary = 0;
  for (auto _ : state) {
    DistBuffer<double> g(cube);
    cube.each_proc([&](proc_t q) { g.vec(q) = random_vector(n, q); });
    cube.clock().reset();
    shift_blocks(cube, g, sc, 1, RingOrder::Gray);
    t_gray = cube.clock().now_us();

    DistBuffer<double> b(cube);
    cube.each_proc([&](proc_t q) { b.vec(q) = random_vector(n, q); });
    cube.clock().reset();
    shift_blocks(cube, b, sc, 1, RingOrder::Binary);
    t_binary = cube.clock().now_us();
  }
  state.counters["sim_gray_us"] = t_gray;
  state.counters["sim_binary_us"] = t_binary;
  state.counters["gray_gain"] = t_binary / t_gray;
}

void BM_Transpose(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 2));
  double sim = 0;
  for (auto _ : state) {
    cube.clock().reset();
    benchmark::DoNotOptimize(transpose(A));
    sim = cube.clock().now_us();
  }
  state.counters["sim_us"] = sim;
  state.counters["elems_per_proc"] =
      static_cast<double>(n * n) / cube.procs();
}

void BM_Matmul(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, n, n), B(grid, n, n);
  A.load(random_matrix(n, n, 3));
  B.load(random_matrix(n, n, 4));
  double sim_rank1 = 0, sim_summa = 0;
  for (auto _ : state) {
    cube.clock().reset();
    benchmark::DoNotOptimize(matmul(A, B));
    sim_rank1 = cube.clock().now_us();
    cube.clock().reset();
    benchmark::DoNotOptimize(matmul_summa(A, B));
    sim_summa = cube.clock().now_us();
  }
  const double serial =
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
      static_cast<double>(n) * cube.costs().flop_us;
  state.counters["sim_rank1_us"] = sim_rank1;
  state.counters["sim_summa_us"] = sim_summa;
  state.counters["summa_gain"] = sim_rank1 / sim_summa;
  state.counters["summa_speedup"] = serial / sim_summa;
  state.counters["summa_efficiency"] = serial / sim_summa / cube.procs();
}

void BM_Scan(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  double sim = 0;
  for (auto _ : state) {
    DistVector<double> v(grid, n, Align::Linear);
    v.load(random_vector(n, 5));
    cube.clock().reset();
    vec_scan_exclusive(v, Plus<double>{});
    sim = cube.clock().now_us();
  }
  const double serial = static_cast<double>(n) * cube.costs().flop_us;
  state.counters["sim_us"] = sim;
  state.counters["speedup"] = serial / sim;
}

void BM_TridiagPcr(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  std::vector<double> a(n, -1.0), b(n, 4.0), c(n, -1.0), rhs(n, 1.0);
  a[0] = c[n - 1] = 0.0;
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  double sim = 0;
  for (auto _ : state) {
    cube.clock().reset();
    benchmark::DoNotOptimize(tridiag_solve_pcr(grid, a, b, c, rhs));
    sim = cube.clock().now_us();
  }
  // Thomas algorithm: ~8n flops serially.
  const double serial = 8.0 * static_cast<double>(n) * cube.costs().flop_us;
  state.counters["sim_us"] = sim;
  state.counters["speedup_vs_thomas"] = serial / sim;
}

void BM_Fft(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  std::vector<cplx> x(n);
  SplitMix64 rng(6);
  for (cplx& c : x) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  double sim = 0;
  for (auto _ : state) {
    DistVector<cplx> v(grid, n, Align::Linear);
    v.load(x);
    cube.clock().reset();
    fft(v);
    sim = cube.clock().now_us();
  }
  const double lg = std::log2(static_cast<double>(n));
  const double serial = 10.0 * static_cast<double>(n) / 2.0 * lg *
                        cube.costs().flop_us;
  state.counters["sim_us"] = sim;
  state.counters["speedup"] = serial / sim;
}

void BM_Sort(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  const std::vector<double> x = random_vector(n, 7);
  double sim = 0;
  for (auto _ : state) {
    DistVector<double> v(grid, n, Align::Linear);
    v.load(x);
    cube.clock().reset();
    vec_sort(v);
    sim = cube.clock().now_us();
  }
  const double lg = std::log2(static_cast<double>(n));
  const double serial = static_cast<double>(n) * lg * cube.costs().flop_us;
  state.counters["sim_us"] = sim;
  state.counters["speedup"] = serial / sim;
}

}  // namespace

BENCHMARK(BM_Fft)->ArgsProduct({{0, 4, 8}, {4096, 65536}})->Iterations(1);
BENCHMARK(BM_Sort)->ArgsProduct({{0, 4, 8}, {4096, 65536}})->Iterations(1);
BENCHMARK(BM_Scan)
    ->ArgsProduct({{0, 4, 8}, {4096, 65536}})
    ->Iterations(1);
BENCHMARK(BM_TridiagPcr)
    ->ArgsProduct({{0, 4, 8}, {1024, 8192}})
    ->Iterations(1);
BENCHMARK(BM_BroadcastThreeWays)
    ->ArgsProduct({{4, 6, 8}, {16, 256, 4096, 32768}})
    ->Iterations(1);
BENCHMARK(BM_ShiftGrayVsBinary)
    ->ArgsProduct({{4, 6, 8}, {64, 1024}})
    ->Iterations(1);
BENCHMARK(BM_Transpose)
    ->ArgsProduct({{4, 6, 8}, {64, 256, 1024}})
    ->Iterations(1);
BENCHMARK(BM_Matmul)->ArgsProduct({{4, 6}, {32, 64, 128}})->Iterations(1);

BENCHMARK_MAIN();
