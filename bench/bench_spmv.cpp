// Sparse matrix-vector product benchmarks:
//   * Consecutive-vs-Cyclic embedding ablation on power-law matrices —
//     the heavy head rows of the skewed degree distribution pile onto one
//     grid row under the Consecutive (Block) embedding, while Cyclic deals
//     them round-robin; the simulated-time gap is the load-balance story
//     the dense benches can't tell (the dense flop charge is layout-blind).
//   * spmv_fused vs the densified dense matvec_fused — what the sparse
//     storage saves when most slots are zero.
//   * fused vs primitive-composed SpMV — the sparse twin of
//     bench_matvec's fusion ablation.
#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_spmv", argc, argv);

  // Embedding ablation at p = 64 (d = 6): same matrix, same results, only
  // the per-processor tile populations move.  skew_pct is the Zipf
  // exponent in percent (the vmp-bench-v1 case args are integers).
  constexpr double kSkew = 1.2;
  constexpr double kAvgDeg = 8.0;
  for (int d : h.dims({6}, {6}))
    for (std::size_t n : h.sizes({256, 1024, 4096}, {256})) {
      const HostCsr H = power_law_csr(n, n, kAvgDeg, kSkew, 91);
      h.run("spmv_embedding_sweep",
            {{"dim", d},
             {"n", static_cast<std::int64_t>(n)},
             {"nnz", static_cast<std::int64_t>(H.nnz())},
             {"skew_pct", static_cast<std::int64_t>(kSkew * 100)}},
            [&](bench::Case& c) {
              double t_con = 0, t_cyc = 0;
              for (int which = 0; which < 2; ++which) {
                const MatrixLayout layout = which == 0
                                                ? MatrixLayout::blocked()
                                                : MatrixLayout::cyclic();
                Cube cube(d, CostParams::cm2());
                if (h.metrics()) cube.enable_metrics();
                Grid grid = Grid::square(cube);
                DistSparseMatrix<double> A(grid, n, n, layout);
                A.load_csr(H.rowptr, H.colind, H.vals);
                DistVector<double> x(grid, n, Align::Cols, layout.cols);
                x.load(random_vector(n, 92));
                cube.clock().reset();
                (void)spmv_fused(A, x);
                (which == 0 ? t_con : t_cyc) = cube.clock().now_us();
                c.profile(which == 0 ? "consecutive" : "cyclic",
                          cube.clock());
                if (h.metrics() && which == 1)
                  c.metrics(cube.metrics(), t_cyc);
              }
              c.counter("sim_consecutive_us", t_con);
              c.counter("sim_cyclic_us", t_cyc);
              c.counter("cyclic_gain", t_con / t_cyc);
            });
    }

  // Sparse storage vs the densified dense product on the same matrix.
  for (int d : h.dims({6}, {6}))
    for (std::size_t n : h.sizes({256, 1024}, {256})) {
      const HostCsr H = power_law_csr(n, n, kAvgDeg, kSkew, 93);
      h.run("spmv_vs_dense_matvec",
            {{"dim", d},
             {"n", static_cast<std::int64_t>(n)},
             {"nnz", static_cast<std::int64_t>(H.nnz())},
             {"skew_pct", static_cast<std::int64_t>(kSkew * 100)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              Grid grid = Grid::square(cube);
              const MatrixLayout layout = MatrixLayout::cyclic();
              DistSparseMatrix<double> S(grid, n, n, layout);
              S.load_csr(H.rowptr, H.colind, H.vals);
              const DistMatrix<double> A = S.densify();
              DistVector<double> x(grid, n, Align::Cols, layout.cols);
              x.load(random_vector(n, 94));
              cube.clock().reset();
              (void)spmv_fused(S, x);
              const double t_sparse = cube.clock().now_us();
              c.profile("sparse", cube.clock());
              cube.clock().reset();
              (void)matvec_fused(A, x);
              const double t_dense = cube.clock().now_us();
              c.profile("dense", cube.clock());
              c.counter("sim_sparse_us", t_sparse);
              c.counter("sim_dense_us", t_dense);
              c.counter("sparse_gain", t_dense / t_sparse);
            });
    }

  // Fused vs primitive-composed SpMV (three tile walks vs one).
  for (int d : h.dims({4, 6}, {4}))
    for (std::size_t n : h.sizes({256, 1024}, {256})) {
      const HostCsr H = power_law_csr(n, n, kAvgDeg, kSkew, 95);
      h.run("spmv_fused_vs_composed",
            {{"dim", d},
             {"n", static_cast<std::int64_t>(n)},
             {"nnz", static_cast<std::int64_t>(H.nnz())},
             {"skew_pct", static_cast<std::int64_t>(kSkew * 100)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              Grid grid = Grid::square(cube);
              const MatrixLayout layout = MatrixLayout::cyclic();
              DistSparseMatrix<double> S(grid, n, n, layout);
              S.load_csr(H.rowptr, H.colind, H.vals);
              DistVector<double> x(grid, n, Align::Cols, layout.cols);
              x.load(random_vector(n, 96));
              cube.clock().reset();
              (void)spmv(S, x);
              const double t_composed = cube.clock().now_us();
              c.profile("composed", cube.clock());
              cube.clock().reset();
              (void)spmv_fused(S, x);
              const double t_fused = cube.clock().now_us();
              c.profile("fused", cube.clock());
              c.counter("sim_composed_us", t_composed);
              c.counter("sim_fused_us", t_fused);
              c.counter("fused_gain", t_composed / t_fused);
            });
    }

  return h.finish();
}
