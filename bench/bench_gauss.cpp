// E4 — Gaussian elimination timings: size sweep, cyclic vs blocked
// embedding, and speedup over the 1-processor run of the same code (the
// exact serial charge of this algorithm under the same cost model).
//
// Counters:
//   sim_us        simulated factor time on p processors
//   sim_serial_us simulated factor time of the same code on 1 processor
//   speedup       sim_serial_us / sim_us
//   efficiency    speedup / p
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

double serial_charge(const HostMatrix& H) {
  Cube cube(0, CostParams::cm2());
  Grid grid(cube, 0, 0);
  DistMatrix<double> A(grid, H.nrows(), H.ncols(), MatrixLayout::cyclic());
  A.load(H.data());
  cube.clock().reset();
  const DistLuResult lu = lu_factor(A);
  (void)lu;
  return cube.clock().now_us();
}

void BM_Factor(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const MatrixLayout layout =
      state.range(2) == 0 ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const HostMatrix H = diag_dominant_matrix(n, 41);
  const double serial_us = serial_charge(H);

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  double sim = 0;
  for (auto _ : state) {
    DistMatrix<double> A(grid, n, n, layout);
    A.load(H.data());
    cube.clock().reset();
    benchmark::DoNotOptimize(lu_factor(A));
    sim = cube.clock().now_us();
  }
  state.counters["sim_us"] = sim;
  state.counters["sim_serial_us"] = serial_us;
  state.counters["speedup"] = serial_us / sim;
  state.counters["efficiency"] = serial_us / sim / cube.procs();
  state.SetLabel(state.range(2) == 0 ? "cyclic" : "blocked");
}

void BM_FactorAndSolve(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const HostMatrix H = diag_dominant_matrix(n, 42);
  const std::vector<double> b = random_vector(n, 43);

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  double t_factor = 0, t_solve = 0;
  for (auto _ : state) {
    DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
    A.load(H.data());
    cube.clock().reset();
    const DistLuResult lu = lu_factor(A);
    t_factor = cube.clock().now_us();
    benchmark::DoNotOptimize(lu_solve(A, lu, b));
    t_solve = cube.clock().now_us() - t_factor;
  }
  state.counters["sim_factor_us"] = t_factor;
  state.counters["sim_solve_us"] = t_solve;
}

}  // namespace

BENCHMARK(BM_Factor)
    ->ArgsProduct({{4, 6, 8}, {32, 64, 128, 256}, {0, 1}})
    ->Iterations(1);
BENCHMARK(BM_FactorAndSolve)
    ->ArgsProduct({{6}, {32, 64, 128, 256}})
    ->Iterations(1);

BENCHMARK_MAIN();
