// E4 — Gaussian elimination timings: size sweep, cyclic vs blocked
// embedding, and speedup over the 1-processor run of the same code (the
// exact serial charge of this algorithm under the same cost model).
//
// Counters:
//   sim_us        simulated factor time on p processors
//   sim_serial_us simulated factor time of the same code on 1 processor
//   speedup       sim_serial_us / sim_us
//   efficiency    speedup / p
// The "factor" profile splits lu_factor into its pivot_search / update
// subregions, and the factor_and_solve cases also write a Chrome
// trace_event file (gauss_trace.json) loadable in Perfetto plus the same
// attribution as a collapsed-stack file (gauss_flame.collapsed) for
// flamegraph.pl / speedscope.
//
// The factor_forms cases compare the primitive-composed lu_factor against
// lu_factor_fused (bit-identical results, one fused compute pass per step):
//   sim_composed_us / sim_fused_us     simulated factor time per form
//   wall_composed_ms / wall_fused_ms   host wall-clock per form
#include <chrono>

#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

double serial_charge(const HostMatrix& H) {
  Cube cube(0, CostParams::cm2());
  Grid grid(cube, 0, 0);
  DistMatrix<double> A(grid, H.nrows(), H.ncols(), MatrixLayout::cyclic());
  A.load(H.data());
  cube.clock().reset();
  const DistLuResult lu = lu_factor(A);
  (void)lu;
  return cube.clock().now_us();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_gauss", argc, argv);

  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t n : h.sizes({32, 64, 128, 256}, {32}))
      for (int blocked : {0, 1}) {
        h.run("factor",
              {{"dim", d},
               {"n", static_cast<std::int64_t>(n)},
               {"blocked", blocked}},
              [&](bench::Case& c) {
                const MatrixLayout layout = blocked == 0
                                                ? MatrixLayout::cyclic()
                                                : MatrixLayout::blocked();
                const HostMatrix H = diag_dominant_matrix(n, 41);
                const double serial_us = serial_charge(H);

                Cube cube(d, CostParams::cm2());
                if (h.faults()) cube.enable_faults(h.fault_plan());
                Grid grid = Grid::square(cube);
                DistMatrix<double> A(grid, n, n, layout);
                A.load(H.data());
                cube.clock().reset();
                (void)lu_factor(A);
                const double sim = cube.clock().now_us();
                c.profile("factor", cube.clock());
                c.counter("sim_us", sim);
                c.counter("sim_serial_us", serial_us);
                c.counter("speedup", serial_us / sim);
                c.counter("efficiency", serial_us / sim / cube.procs());
                c.label(blocked == 0 ? "cyclic" : "blocked");
              });
      }

  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t n : h.sizes({32, 64, 128, 256}, {32})) {
      h.run("factor_forms", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              const HostMatrix H = diag_dominant_matrix(n, 44);
              Cube cube(d, CostParams::cm2());
              if (h.faults()) cube.enable_faults(h.fault_plan());
              Grid grid = Grid::square(cube);
              DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());

              A.load(H.data());
              cube.clock().reset();
              const auto w0 = std::chrono::steady_clock::now();
              (void)lu_factor(A);
              const double wall_composed =
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - w0)
                      .count();
              const double sim_composed = cube.clock().now_us();
              c.profile("composed", cube.clock());

              A.load(H.data());
              cube.clock().reset();
              const auto w1 = std::chrono::steady_clock::now();
              (void)lu_factor_fused(A);
              const double wall_fused =
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - w1)
                      .count();
              const double sim_fused = cube.clock().now_us();
              c.profile("fused", cube.clock());

              c.counter("sim_composed_us", sim_composed);
              c.counter("sim_fused_us", sim_fused);
              c.counter("composed_over_fused", sim_composed / sim_fused);
              c.counter("wall_composed_ms", wall_composed);
              c.counter("wall_fused_ms", wall_fused);
              c.counter("host_composed_over_fused", wall_composed / wall_fused);
              c.label("cyclic");
            });
    }

  bool traced = false;
  for (std::size_t n : h.sizes({32, 64, 128, 256}, {32})) {
    h.run("factor_and_solve", {{"dim", 6}, {"n", static_cast<std::int64_t>(n)}},
          [&](bench::Case& c) {
            const HostMatrix H = diag_dominant_matrix(n, 42);
            const std::vector<double> b = random_vector(n, 43);

            Cube cube(6, CostParams::cm2());
            if (h.faults()) cube.enable_faults(h.fault_plan());
            if (h.metrics()) cube.enable_metrics();
            Grid grid = Grid::square(cube);
            DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
            A.load(H.data());
            cube.clock().reset();
            // Record the event log once (the smallest case suffices for a
            // Perfetto-loadable trace of the full factor+solve pipeline).
            const bool record = !traced;
            cube.clock().tracer().set_recording(record);
            const DistLuResult lu = lu_factor(A);
            const double t_factor = cube.clock().now_us();
            (void)lu_solve(A, lu, b);
            const double t_solve = cube.clock().now_us() - t_factor;
            c.profile("factor_and_solve", cube.clock());
            if (record) {
              write_chrome_trace("gauss_trace.json", cube.clock());
              write_collapsed_stacks("gauss_flame.collapsed", cube.clock());
              traced = true;
            }
            c.counter("sim_factor_us", t_factor);
            c.counter("sim_solve_us", t_solve);
            if (h.metrics()) c.metrics(cube.metrics(), cube.clock().now_us());
          });
  }
  return h.finish();
}
