// E5 — simplex timings: LP size sweep, total and per-pivot simulated time,
// speedup over the 1-processor run of the same code, and the Klee–Minty
// stress case.
//
// Counters:
//   pivots          simplex iterations to optimality
//   sim_us          total simulated time on p processors
//   sim_per_pivot   simulated time per pivot
//   speedup         1-processor charge / p-processor charge
// The "run" profile splits simplex into entering / leaving / pivot
// subregions, and the first random-LP case also writes a Chrome
// trace_event file (simplex_trace.json) loadable in Perfetto.
#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

double serial_charge(const LpProblem& lp) {
  Cube cube(0, CostParams::cm2());
  Grid grid(cube, 0, 0);
  cube.clock().reset();
  const LpSolution s = simplex_solve(grid, lp);
  (void)s;
  return cube.clock().now_us();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_simplex", argc, argv);

  bool traced = false;
  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t m : h.sizes({16, 32, 64, 128}, {16})) {
      h.run("random_lp", {{"dim", d}, {"m", static_cast<std::int64_t>(m)}},
            [&](bench::Case& c) {
              const std::size_t nv = (m * 3) / 4;
              const LpProblem lp = random_feasible_lp(m, nv, 51);
              const double serial_us = serial_charge(lp);

              Cube cube(d, CostParams::cm2());
              if (h.metrics()) cube.enable_metrics();
              Grid grid = Grid::square(cube);
              cube.clock().reset();
              const bool record = !traced;
              cube.clock().tracer().set_recording(record);
              const LpSolution sol = simplex_solve(grid, lp);
              const double sim = cube.clock().now_us();
              c.profile("run", cube.clock());
              if (record) {
                write_chrome_trace("simplex_trace.json", cube.clock());
                traced = true;
              }
              c.counter("pivots", static_cast<double>(sol.iterations));
              c.counter("sim_us", sim);
              c.counter("sim_per_pivot",
                        sim / static_cast<double>(
                                  std::max<std::size_t>(1, sol.iterations)));
              c.counter("speedup", serial_us / sim);
              if (h.metrics()) c.metrics(cube.metrics(), sim);
              c.label(to_string(sol.status));
            });
    }

  for (std::size_t m : h.sizes({16, 32, 64}, {16})) {
    h.run("phase1_lp", {{"dim", 6}, {"m", static_cast<std::int64_t>(m)}},
          [&](bench::Case& c) {
            const LpProblem lp = random_phase1_lp(m, m / 2, 52);
            Cube cube(6, CostParams::cm2());
            Grid grid = Grid::square(cube);
            cube.clock().reset();
            const LpSolution sol = simplex_solve(grid, lp);
            c.profile("run", cube.clock());
            c.counter("pivots", static_cast<double>(sol.iterations));
            c.counter("phase1_pivots",
                      static_cast<double>(sol.phase1_iterations));
            c.counter("sim_us", cube.clock().now_us());
            c.label(to_string(sol.status));
          });
  }

  for (std::size_t dim : h.sizes({3, 4, 5, 6, 7, 8}, {3, 4})) {
    h.run("klee_minty", {{"kmdim", static_cast<std::int64_t>(dim)}},
          [&](bench::Case& c) {
            const LpProblem lp = klee_minty(dim);
            Cube cube(6, CostParams::cm2());
            Grid grid = Grid::square(cube);
            cube.clock().reset();
            const LpSolution sol = simplex_solve(grid, lp);
            c.profile("run", cube.clock());
            c.counter("pivots", static_cast<double>(sol.iterations));
            c.counter("sim_us", cube.clock().now_us());
            c.label(to_string(sol.status));
          });
  }
  return h.finish();
}
