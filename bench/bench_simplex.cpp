// E5 — simplex timings: LP size sweep, total and per-pivot simulated time,
// speedup over the 1-processor run of the same code, and the Klee–Minty
// stress case.
//
// Counters:
//   pivots          simplex iterations to optimality
//   sim_us          total simulated time on p processors
//   sim_per_pivot   simulated time per pivot
//   speedup         1-processor charge / p-processor charge
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

double serial_charge(const LpProblem& lp) {
  Cube cube(0, CostParams::cm2());
  Grid grid(cube, 0, 0);
  cube.clock().reset();
  const LpSolution s = simplex_solve(grid, lp);
  (void)s;
  return cube.clock().now_us();
}

void BM_RandomLp(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const std::size_t nv = (m * 3) / 4;
  const LpProblem lp = random_feasible_lp(m, nv, 51);
  const double serial_us = serial_charge(lp);

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  double sim = 0;
  LpSolution sol;
  for (auto _ : state) {
    cube.clock().reset();
    sol = simplex_solve(grid, lp);
    sim = cube.clock().now_us();
  }
  state.counters["pivots"] = static_cast<double>(sol.iterations);
  state.counters["sim_us"] = sim;
  state.counters["sim_per_pivot"] =
      sim / static_cast<double>(std::max<std::size_t>(1, sol.iterations));
  state.counters["speedup"] = serial_us / sim;
  state.SetLabel(to_string(sol.status));
}

void BM_Phase1Lp(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const LpProblem lp = random_phase1_lp(m, m / 2, 52);
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  double sim = 0;
  LpSolution sol;
  for (auto _ : state) {
    cube.clock().reset();
    sol = simplex_solve(grid, lp);
    sim = cube.clock().now_us();
  }
  state.counters["pivots"] = static_cast<double>(sol.iterations);
  state.counters["phase1_pivots"] =
      static_cast<double>(sol.phase1_iterations);
  state.counters["sim_us"] = sim;
  state.SetLabel(to_string(sol.status));
}

void BM_KleeMinty(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const LpProblem lp = klee_minty(dim);
  Cube cube(6, CostParams::cm2());
  Grid grid = Grid::square(cube);
  double sim = 0;
  LpSolution sol;
  for (auto _ : state) {
    cube.clock().reset();
    sol = simplex_solve(grid, lp);
    sim = cube.clock().now_us();
  }
  state.counters["pivots"] = static_cast<double>(sol.iterations);
  state.counters["sim_us"] = sim;
  state.SetLabel(to_string(sol.status));
}

}  // namespace

BENCHMARK(BM_RandomLp)
    ->ArgsProduct({{4, 6, 8}, {16, 32, 64, 128}})
    ->Iterations(1);
BENCHMARK(BM_Phase1Lp)->ArgsProduct({{6}, {16, 32, 64}})->Iterations(1);
BENCHMARK(BM_KleeMinty)->DenseRange(3, 8)->Iterations(1);

BENCHMARK_MAIN();
