// E1 — "Connection Machine timings for the primitives".
//
// Simulated machine time for each of the four primitives over matrix sizes
// and cube dimensions (CM-2-flavoured cost model).  Counters:
//   sim_us         simulated time of one primitive call
//   elems_per_proc m/p, the load-balance unit the costs should track
//   comm_steps     lockstep communication rounds (the τ count)
// Each case also embeds the per-region cost profile of the timed call.
#include <chrono>
#include <span>

#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

const bench::Harness* g_harness = nullptr;

struct Fixture {
  Fixture(int d, std::size_t n)
      : cube(d, CostParams::cm2()),
        grid(Grid::square(cube)),
        A(grid, n, n),
        v(grid, n, Align::Cols),
        w(grid, n, Align::Rows) {
    A.load(random_matrix(n, n, 11));
    v.load(random_vector(n, 12));
    w.load(random_vector(n, 13));
    if (g_harness->metrics()) cube.enable_metrics();
  }
  Cube cube;
  Grid grid;
  DistMatrix<double> A;
  DistVector<double> v, w;
};

void finish(bench::Case& c, Cube& cube, std::size_t n) {
  c.counter("sim_us", cube.clock().now_us());
  c.counter("elems_per_proc", static_cast<double>(n * n) / cube.procs());
  c.counter("comm_steps",
            static_cast<double>(cube.clock().stats().comm_steps));
  c.profile("run", cube.clock());
  if (g_harness->metrics()) c.metrics(cube.metrics(), cube.clock().now_us());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_primitives", argc, argv);
  g_harness = &h;
  for (int d : h.dims({4, 6, 8, 10}, {4, 6}))
    for (std::size_t n : h.sizes({64, 128, 256, 512, 1024}, {64, 128})) {
      h.run("reduce_rows", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)reduce_rows(f.A, Plus<double>{});
              finish(c, f.cube, n);
            });
      h.run("reduce_cols", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)reduce_cols(f.A, Plus<double>{});
              finish(c, f.cube, n);
            });
      h.run("distribute_rows",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)distribute_rows(f.v, n);
              finish(c, f.cube, n);
            });
      h.run("extract_row", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)extract_row(f.A, n / 2);
              finish(c, f.cube, n);
            });
      h.run("extract_col", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)extract_col(f.A, n / 2);
              finish(c, f.cube, n);
            });
      h.run("insert_row", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              insert_row(f.A, n / 2, f.v);
              finish(c, f.cube, n);
            });
      // Host round trip: load + to_host are pure strided block copies
      // between the host image and each tile of the slab arena.  The wall
      // clock of this case is the direct measure of the contiguous-storage
      // payoff (no per-element owner lookups, no per-processor vectors).
      h.run("host_round_trip",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              f.A.load(random_matrix(n, n, 17));
              const std::vector<double> back = f.A.to_host();
              c.counter("host_bytes",
                        static_cast<double>(back.size() * sizeof(double)));
              finish(c, f.cube, n);
            });
      // Steady-state pooling: one warm pass grows the cube's staging slots
      // to bucket capacity, so the measured hot loop of exchange-heavy
      // primitives must be pure pool hits — zero heap allocations.
      // check.sh asserts pool_misses == 0 && pool_hits > 0 on these cases.
      h.run("pool_steady_state",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              (void)reduce_rows(f.A, Plus<double>{});  // warm the slots
              (void)extract_row(f.A, n / 2);
              f.cube.clock().reset();
              for (int it = 0; it < 8; ++it) {
                (void)reduce_rows(f.A, Plus<double>{});
                (void)extract_row(f.A, n / 2);
              }
              const SimStats& st = f.cube.clock().stats();
              c.counter("pool_hits", static_cast<double>(st.pool_hits));
              c.counter("pool_misses", static_cast<double>(st.pool_misses));
              c.counter("alloc_bytes", static_cast<double>(st.alloc_bytes));
              finish(c, f.cube, n);
            });
    }
  // bench_engine — raw per-step dispatch cost of the worker-team engine,
  // with the simulated work held at (near) zero so nothing but protocol
  // remains: publish the step, run the (empty) per-processor loop, pass the
  // barrier, reduce the lane partials.  `steps_per_sec` / `rounds_per_sec`
  // are the wall-clock counters docs/perf.md tracks; both loops run inside
  // one session, the posture every multi-round collective uses.
  for (int d : h.dims({4, 5, 6, 7, 8}, {4, 8})) {
    h.run("engine_empty_steps", {{"dim", d}}, [&](bench::Case& c) {
      Cube cube(d, CostParams::cm2());
      // With --metrics this case doubles as the dispatch-overhead check:
      // default sampling must keep ns_per_step within a few percent of the
      // metrics-off number (docs/perf.md).
      if (h.metrics()) cube.enable_metrics();
      constexpr int kSteps = 20000;
      const auto batch = cube.session();
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < kSteps; ++s) cube.compute(0, 0, [](proc_t) {});
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      c.counter("steps", kSteps);
      c.counter("steps_per_sec", static_cast<double>(kSteps) / secs);
      c.counter("ns_per_step", 1e9 * secs / kSteps);
      if (h.metrics()) c.metrics(cube.metrics(), cube.clock().now_us());
    });
    h.run("engine_exchange_1elem", {{"dim", d}}, [&](bench::Case& c) {
      Cube cube(d, CostParams::cm2());
      if (h.faults()) cube.enable_faults(h.fault_plan());
      if (h.metrics()) cube.enable_metrics();
      std::vector<double> cell(cube.procs(), 1.0);
      constexpr int kRounds = 4000;
      const auto batch = cube.session();
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < kRounds; ++s)
        cube.exchange<double>(
            s % d, [&](proc_t q) { return std::span<const double>(&cell[q], 1); },
            [&](proc_t q, std::span<const double> in) { cell[q] += in[0]; });
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      c.counter("rounds", kRounds);
      c.counter("rounds_per_sec", static_cast<double>(kRounds) / secs);
      c.counter("ns_per_round", 1e9 * secs / kRounds);
      c.counter("sim_us", cube.clock().now_us());
      if (h.metrics()) c.metrics(cube.metrics(), cube.clock().now_us());
    });
  }
  return h.finish();
}
