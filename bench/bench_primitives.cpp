// E1 — "Connection Machine timings for the primitives".
//
// Simulated machine time for each of the four primitives over matrix sizes
// and cube dimensions (CM-2-flavoured cost model).  Counters:
//   sim_us         simulated time of one primitive call
//   elems_per_proc m/p, the load-balance unit the costs should track
//   comm_steps     lockstep communication rounds (the τ count)
// Each case also embeds the per-region cost profile of the timed call.
#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

struct Fixture {
  Fixture(int d, std::size_t n)
      : cube(d, CostParams::cm2()),
        grid(Grid::square(cube)),
        A(grid, n, n),
        v(grid, n, Align::Cols),
        w(grid, n, Align::Rows) {
    A.load(random_matrix(n, n, 11));
    v.load(random_vector(n, 12));
    w.load(random_vector(n, 13));
  }
  Cube cube;
  Grid grid;
  DistMatrix<double> A;
  DistVector<double> v, w;
};

void finish(bench::Case& c, Cube& cube, std::size_t n) {
  c.counter("sim_us", cube.clock().now_us());
  c.counter("elems_per_proc", static_cast<double>(n * n) / cube.procs());
  c.counter("comm_steps",
            static_cast<double>(cube.clock().stats().comm_steps));
  c.profile("run", cube.clock());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_primitives", argc, argv);
  for (int d : h.dims({4, 6, 8, 10}, {4, 6}))
    for (std::size_t n : h.sizes({64, 128, 256, 512, 1024}, {64, 128})) {
      h.run("reduce_rows", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)reduce_rows(f.A, Plus<double>{});
              finish(c, f.cube, n);
            });
      h.run("reduce_cols", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)reduce_cols(f.A, Plus<double>{});
              finish(c, f.cube, n);
            });
      h.run("distribute_rows",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)distribute_rows(f.v, n);
              finish(c, f.cube, n);
            });
      h.run("extract_row", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)extract_row(f.A, n / 2);
              finish(c, f.cube, n);
            });
      h.run("extract_col", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              (void)extract_col(f.A, n / 2);
              finish(c, f.cube, n);
            });
      h.run("insert_row", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              insert_row(f.A, n / 2, f.v);
              finish(c, f.cube, n);
            });
      // Host round trip: load + to_host are pure strided block copies
      // between the host image and each tile of the slab arena.  The wall
      // clock of this case is the direct measure of the contiguous-storage
      // payoff (no per-element owner lookups, no per-processor vectors).
      h.run("host_round_trip",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              f.cube.clock().reset();
              f.A.load(random_matrix(n, n, 17));
              const std::vector<double> back = f.A.to_host();
              c.counter("host_bytes",
                        static_cast<double>(back.size() * sizeof(double)));
              finish(c, f.cube, n);
            });
      // Steady-state pooling: one warm pass grows the cube's staging slots
      // to bucket capacity, so the measured hot loop of exchange-heavy
      // primitives must be pure pool hits — zero heap allocations.
      // check.sh asserts pool_misses == 0 && pool_hits > 0 on these cases.
      h.run("pool_steady_state",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Fixture f(d, n);
              if (h.faults()) f.cube.enable_faults(h.fault_plan());
              (void)reduce_rows(f.A, Plus<double>{});  // warm the slots
              (void)extract_row(f.A, n / 2);
              f.cube.clock().reset();
              for (int it = 0; it < 8; ++it) {
                (void)reduce_rows(f.A, Plus<double>{});
                (void)extract_row(f.A, n / 2);
              }
              const SimStats& st = f.cube.clock().stats();
              c.counter("pool_hits", static_cast<double>(st.pool_hits));
              c.counter("pool_misses", static_cast<double>(st.pool_misses));
              c.counter("alloc_bytes", static_cast<double>(st.alloc_bytes));
              finish(c, f.cube, n);
            });
    }
  return h.finish();
}
