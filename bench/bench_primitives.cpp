// E1 — "Connection Machine timings for the primitives".
//
// Simulated machine time for each of the four primitives over matrix sizes
// and cube dimensions (CM-2-flavoured cost model).  Counters:
//   sim_us         simulated time of one primitive call
//   elems_per_proc m/p, the load-balance unit the costs should track
//   comm_steps     lockstep communication rounds (the τ count)
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

struct Fixture {
  Fixture(int d, std::size_t n)
      : cube(d, CostParams::cm2()),
        grid(Grid::square(cube)),
        A(grid, n, n),
        v(grid, n, Align::Cols),
        w(grid, n, Align::Rows) {
    A.load(random_matrix(n, n, 11));
    v.load(random_vector(n, 12));
    w.load(random_vector(n, 13));
  }
  Cube cube;
  Grid grid;
  DistMatrix<double> A;
  DistVector<double> v, w;
};

void finish(benchmark::State& state, Cube& cube, std::size_t n) {
  state.counters["sim_us"] = cube.clock().now_us();
  state.counters["elems_per_proc"] =
      static_cast<double>(n * n) / cube.procs();
  state.counters["comm_steps"] =
      static_cast<double>(cube.clock().stats().comm_steps);
}

void BM_Reduce(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(reduce_rows(f.A, Plus<double>{}));
  }
  finish(state, f.cube, static_cast<std::size_t>(state.range(1)));
}

void BM_Distribute(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(distribute_rows(f.v, n));
  }
  finish(state, f.cube, n);
}

void BM_Extract(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(extract_row(f.A, n / 2));
  }
  finish(state, f.cube, n);
}

void BM_Insert(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    f.cube.clock().reset();
    insert_row(f.A, n / 2, f.v);
  }
  finish(state, f.cube, n);
}

void BM_ExtractCol(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(extract_col(f.A, n / 2));
  }
  finish(state, f.cube, n);
}

void BM_ReduceCols(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(reduce_cols(f.A, Plus<double>{}));
  }
  finish(state, f.cube, static_cast<std::size_t>(state.range(1)));
}

const std::vector<std::vector<std::int64_t>> kSweep = {
    {4, 6, 8, 10},          // cube dimension (16..1024 processors)
    {64, 128, 256, 512, 1024}  // square matrix extent
};

}  // namespace

BENCHMARK(BM_Reduce)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_ReduceCols)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_Distribute)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_Extract)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_ExtractCol)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_Insert)->ArgsProduct(kSweep)->Iterations(1);

BENCHMARK_MAIN();
