// E7 — design ablations behind the primitive implementations:
//   * binomial vs scatter+all-gather broadcast (crossover in payload size)
//   * recursive-doubling vs reduce-scatter+all-gather all-reduce
//   * embedding-change (realign) costs between the three alignments
//   * combining dimension-order routing vs the naive per-packet router
//   * cyclic vs blocked embedding for the shrinking-window update
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

void BM_BroadcastAlgorithms(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  double t_bin = 0, t_sag = 0;
  for (auto _ : state) {
    DistBuffer<double> buf(cube);
    buf.vec(0) = random_vector(n, 71);
    cube.clock().reset();
    broadcast(cube, buf, sc, 0);
    t_bin = cube.clock().now_us();

    DistBuffer<double> buf2(cube);
    buf2.vec(0) = random_vector(n, 71);
    cube.clock().reset();
    broadcast_sag(cube, buf2, sc, 0, [n](proc_t) { return n; });
    t_sag = cube.clock().now_us();
  }
  state.counters["sim_binomial_us"] = t_bin;
  state.counters["sim_sag_us"] = t_sag;
  state.counters["sag_gain"] = t_bin / t_sag;
}

void BM_AllreduceAlgorithms(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  double t_rd = 0, t_rsag = 0;
  for (auto _ : state) {
    DistBuffer<double> buf(cube);
    cube.each_proc([&](proc_t q) { buf.vec(q) = random_vector(n, q); });
    cube.clock().reset();
    allreduce(cube, buf, sc, Plus<double>{});
    t_rd = cube.clock().now_us();

    DistBuffer<double> buf2(cube);
    cube.each_proc([&](proc_t q) { buf2.vec(q) = random_vector(n, q); });
    cube.clock().reset();
    allreduce_rsag(cube, buf2, sc, Plus<double>{});
    t_rsag = cube.clock().now_us();
  }
  state.counters["sim_doubling_us"] = t_rd;
  state.counters["sim_rsag_us"] = t_rsag;
  state.counters["rsag_gain"] = t_rd / t_rsag;
}

void BM_RealignCosts(benchmark::State& state) {
  const int d = 6;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistVector<double> lin(grid, n, Align::Linear);
  lin.load(random_vector(n, 72));

  double t_to_cols = 0, t_cols_rows = 0, t_noop = 0;
  for (auto _ : state) {
    cube.clock().reset();
    const DistVector<double> c = realign(lin, Align::Cols);
    t_to_cols = cube.clock().now_us();
    cube.clock().reset();
    benchmark::DoNotOptimize(realign(c, Align::Rows));
    t_cols_rows = cube.clock().now_us();
    cube.clock().reset();
    benchmark::DoNotOptimize(realign(c, Align::Cols));
    t_noop = cube.clock().now_us();
  }
  state.counters["linear_to_cols_us"] = t_to_cols;
  state.counters["cols_to_rows_us"] = t_cols_rows;
  state.counters["same_embedding_us"] = t_noop;
}

void BM_RoutingCombiningVsNaive(benchmark::State& state) {
  // A random permutation of n elements across the cube, routed once with
  // message combining (lg p rounds) and once through the per-packet
  // router — the low-level version of the E2 story.
  const int d = static_cast<int>(state.range(0));
  const std::size_t per_proc = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  const SubcubeSet whole = SubcubeSet::contiguous(0, d);
  SplitMix64 rng(73);

  double t_comb = 0, t_naive = 0;
  for (auto _ : state) {
    DistBuffer<RouteItem<double>> items(cube);
    std::vector<std::vector<Packet>> packets(cube.procs());
    cube.each_proc([&](proc_t q) {
      for (std::size_t t = 0; t < per_proc; ++t) {
        const proc_t dst =
            static_cast<proc_t>(rng.below(cube.procs()));
        items.vec(q).push_back(RouteItem<double>{dst, t, 1.0});
        packets[q].push_back(Packet{dst, t, 1.0});
      }
    });
    cube.clock().reset();
    route_within(cube, items, whole);
    t_comb = cube.clock().now_us();

    cube.clock().reset();
    NaiveRouter router(cube);
    router.run(std::move(packets), [](proc_t, std::uint64_t, double) {});
    t_naive = cube.clock().now_us();
  }
  state.counters["sim_combining_us"] = t_comb;
  state.counters["sim_naive_router_us"] = t_naive;
  state.counters["combining_gain"] = t_naive / t_comb;
}

void BM_LayoutForShrinkingWindow(benchmark::State& state) {
  // The sum over k of the ranged rank-1 update cost — the load-balance
  // core of Gaussian elimination — under cyclic vs blocked embeddings.
  const int d = 6;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);

  double t_cyc = 0, t_blk = 0;
  for (auto _ : state) {
    for (int which = 0; which < 2; ++which) {
      const MatrixLayout layout =
          which == 0 ? MatrixLayout::cyclic() : MatrixLayout::blocked();
      DistMatrix<double> A(grid, n, n, layout);
      A.load(random_matrix(n, n, 74));
      DistVector<double> c(grid, n, Align::Rows, layout.rows);
      DistVector<double> r(grid, n, Align::Cols, layout.cols);
      c.load(random_vector(n, 75));
      r.load(random_vector(n, 76));
      cube.clock().reset();
      for (std::size_t k = 0; k < n; k += 8)
        rank1_update_range(A, -1.0, c, r, k + 1, k + 1);
      (which == 0 ? t_cyc : t_blk) = cube.clock().now_us();
    }
  }
  state.counters["sim_cyclic_us"] = t_cyc;
  state.counters["sim_blocked_us"] = t_blk;
  state.counters["cyclic_gain"] = t_blk / t_cyc;
}

}  // namespace

BENCHMARK(BM_BroadcastAlgorithms)
    ->ArgsProduct({{4, 8}, {1, 8, 64, 512, 4096, 32768}})
    ->Iterations(1);
BENCHMARK(BM_AllreduceAlgorithms)
    ->ArgsProduct({{4, 8}, {1, 8, 64, 512, 4096, 32768}})
    ->Iterations(1);
BENCHMARK(BM_RealignCosts)->Arg(256)->Arg(4096)->Iterations(1);
BENCHMARK(BM_RoutingCombiningVsNaive)
    ->ArgsProduct({{4, 6}, {4, 32}})
    ->Iterations(1);
BENCHMARK(BM_LayoutForShrinkingWindow)->Arg(128)->Arg(512)->Iterations(1);

BENCHMARK_MAIN();
