// E7 — design ablations behind the primitive implementations:
//   * binomial vs scatter+all-gather broadcast (crossover in payload size)
//   * recursive-doubling vs reduce-scatter+all-gather all-reduce
//   * embedding-change (realign) costs between the three alignments
//   * combining dimension-order routing vs the naive per-packet router
//   * cyclic vs blocked embedding for the shrinking-window update
//   * Consecutive/Cyclic layouts crossed with the physical topology presets
//     (hypercube / mesh / torus / dragonfly) — the machine-side ablation
#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_ablation", argc, argv);

  for (int d : h.dims({4, 8}, {4}))
    for (std::size_t n : h.sizes({1, 8, 64, 512, 4096, 32768}, {8, 512})) {
      const auto nn = static_cast<std::int64_t>(n);
      h.run("broadcast_algorithms", {{"dim", d}, {"n", nn}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              if (h.metrics()) cube.enable_metrics();
              const SubcubeSet sc = SubcubeSet::contiguous(0, d);
              DistBuffer<double> buf(cube);
              buf.assign(0, random_vector(n, 71));
              cube.clock().reset();
              broadcast(cube, buf, sc, 0);
              const double t_bin = cube.clock().now_us();
              c.profile("binomial", cube.clock());

              DistBuffer<double> buf2(cube);
              buf2.assign(0, random_vector(n, 71));
              cube.clock().reset();
              broadcast_sag(cube, buf2, sc, 0, [n](proc_t) { return n; });
              const double t_sag = cube.clock().now_us();
              c.profile("sag", cube.clock());

              c.counter("sim_binomial_us", t_bin);
              c.counter("sim_sag_us", t_sag);
              c.counter("sag_gain", t_bin / t_sag);
              if (h.metrics()) c.metrics(cube.metrics(), t_sag);
            });
      h.run("allreduce_algorithms", {{"dim", d}, {"n", nn}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              const SubcubeSet sc = SubcubeSet::contiguous(0, d);
              DistBuffer<double> buf(cube);
              cube.each_proc(
                  [&](proc_t q) { buf.assign(q, random_vector(n, q)); });
              cube.clock().reset();
              allreduce(cube, buf, sc, Plus<double>{});
              const double t_rd = cube.clock().now_us();
              c.profile("doubling", cube.clock());

              DistBuffer<double> buf2(cube);
              cube.each_proc(
                  [&](proc_t q) { buf2.assign(q, random_vector(n, q)); });
              cube.clock().reset();
              allreduce_rsag(cube, buf2, sc, Plus<double>{});
              const double t_rsag = cube.clock().now_us();
              c.profile("rsag", cube.clock());

              c.counter("sim_doubling_us", t_rd);
              c.counter("sim_rsag_us", t_rsag);
              c.counter("rsag_gain", t_rd / t_rsag);
            });
    }

  for (std::size_t n : h.sizes({256, 4096}, {256})) {
    h.run("realign_costs", {{"n", static_cast<std::int64_t>(n)}},
          [&](bench::Case& c) {
            Cube cube(6, CostParams::cm2());
            Grid grid = Grid::square(cube);
            DistVector<double> lin(grid, n, Align::Linear);
            lin.load(random_vector(n, 72));

            cube.clock().reset();
            const DistVector<double> cols = realign(lin, Align::Cols);
            const double t_to_cols = cube.clock().now_us();
            cube.clock().reset();
            (void)realign(cols, Align::Rows);
            const double t_cols_rows = cube.clock().now_us();
            cube.clock().reset();
            (void)realign(cols, Align::Cols);
            const double t_noop = cube.clock().now_us();

            c.counter("linear_to_cols_us", t_to_cols);
            c.counter("cols_to_rows_us", t_cols_rows);
            c.counter("same_embedding_us", t_noop);
          });
  }

  // A random permutation of n elements across the cube, routed once with
  // message combining (lg p rounds) and once through the per-packet
  // router — the low-level version of the E2 story.
  for (int d : h.dims({4, 6}, {4}))
    for (std::size_t per_proc : h.sizes({4, 32}, {4})) {
      h.run("routing_combining_vs_naive",
            {{"dim", d}, {"per_proc", static_cast<std::int64_t>(per_proc)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              const SubcubeSet whole = SubcubeSet::contiguous(0, d);
              SplitMix64 rng(73);
              DistBuffer<RouteItem<double>> items(cube);
              std::vector<std::vector<Packet>> packets(cube.procs());
              cube.each_proc([&](proc_t q) {
                for (std::size_t t = 0; t < per_proc; ++t) {
                  const proc_t dst =
                      static_cast<proc_t>(rng.below(cube.procs()));
                  items.push_back(q, RouteItem<double>{dst, t, 1.0});
                  packets[q].push_back(Packet{dst, t, 1.0});
                }
              });
              cube.clock().reset();
              route_within(cube, items, whole);
              const double t_comb = cube.clock().now_us();
              c.profile("combining", cube.clock());

              cube.clock().reset();
              NaiveRouter router(cube);
              router.run(std::move(packets),
                         [](proc_t, std::uint64_t, double) {});
              const double t_naive = cube.clock().now_us();
              c.profile("naive", cube.clock());

              c.counter("sim_combining_us", t_comb);
              c.counter("sim_naive_router_us", t_naive);
              c.counter("combining_gain", t_naive / t_comb);
            });
    }

  // The sum over k of the ranged rank-1 update cost — the load-balance
  // core of Gaussian elimination — under cyclic vs blocked embeddings.
  for (std::size_t n : h.sizes({128, 512}, {128})) {
    h.run("layout_for_shrinking_window", {{"n", static_cast<std::int64_t>(n)}},
          [&](bench::Case& c) {
            Cube cube(6, CostParams::cm2());
            Grid grid = Grid::square(cube);
            double t_cyc = 0, t_blk = 0;
            for (int which = 0; which < 2; ++which) {
              const MatrixLayout layout = which == 0
                                              ? MatrixLayout::cyclic()
                                              : MatrixLayout::blocked();
              DistMatrix<double> A(grid, n, n, layout);
              A.load(random_matrix(n, n, 74));
              DistVector<double> col(grid, n, Align::Rows, layout.rows);
              DistVector<double> row(grid, n, Align::Cols, layout.cols);
              col.load(random_vector(n, 75));
              row.load(random_vector(n, 76));
              cube.clock().reset();
              for (std::size_t k = 0; k < n; k += 8)
                rank1_update_range(A, -1.0, col, row, k + 1, k + 1);
              (which == 0 ? t_cyc : t_blk) = cube.clock().now_us();
            }
            c.counter("sim_cyclic_us", t_cyc);
            c.counter("sim_blocked_us", t_blk);
            c.counter("cyclic_gain", t_blk / t_cyc);
          });
  }

  // Topology ablation: the Consecutive (blocked) and Cyclic embeddings of
  // the Gaussian-elimination step kernel (extract pivot column + pivot
  // row, then the ranged rank-1 update), crossed with every physical
  // topology preset.  Same algorithm, same results — only the per-link
  // charges move, so the sweep isolates what each network does to each
  // layout: the extracts pay lg p broadcasts per step (routed on
  // non-cube presets) while the update stays communication-free
  // everywhere.  The preset is a case arg (vmp-bench-v1 args are
  // integers: TopologyKind values 0..3) and the label carries its name.
  {
    constexpr TopologyKind kPresets[] = {
        TopologyKind::Hypercube, TopologyKind::Mesh, TopologyKind::Torus,
        TopologyKind::Dragonfly};
    for (TopologyKind kind : kPresets)
      for (int cyclic = 0; cyclic < 2; ++cyclic)
        for (std::size_t n : h.sizes({128, 512}, {128})) {
          h.run("topology_layout_sweep",
                {{"topology", static_cast<std::int64_t>(kind)},
                 {"cyclic", cyclic},
                 {"n", static_cast<std::int64_t>(n)}},
                [&](bench::Case& c) {
                  Cube::Options opts;
                  opts.topology = kind;
                  Cube cube(6, CostParams::cm2(), opts);
                  c.label(cube.topology().name());
                  Grid grid = Grid::square(cube);
                  const MatrixLayout layout = cyclic != 0
                                                  ? MatrixLayout::cyclic()
                                                  : MatrixLayout::blocked();
                  DistMatrix<double> A(grid, n, n, layout);
                  A.load(random_matrix(n, n, 74));
                  cube.clock().reset();
                  for (std::size_t k = 0; k < n; k += 8) {
                    DistVector<double> col = extract(A, Axis::Col, k);
                    DistVector<double> row = extract(A, Axis::Row, k);
                    rank1_update_range(A, -1.0, col, row, k + 1, k + 1);
                  }
                  c.counter("sim_us", cube.clock().now_us());
                  c.counter("link_hops", static_cast<double>(
                                             cube.clock().stats().link_hops));
                  c.profile("update", cube.clock());
                });
        }
  }
  return h.finish();
}
