// E9 — dense matmul backend race: rank-1 / SUMMA / hyper-systolic on the
// same 1-D grid across machine sizes, matrix sizes, reduction-axis aspect
// ratios and physical topology presets, plus the matmul_auto selector's
// pick quality (does the cost model's choice win on the simulated clock?).
#include <algorithm>
#include <cmath>

#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

struct Race {
  double rank1_us = 0, summa_us = 0, hyper_us = 0, auto_us = 0;
  double rank1_moved = 0, summa_moved = 0, hyper_moved = 0;
  MatmulCost model;
};

Race race(Cube& cube, const DistMatrix<double>& A,
          const DistMatrix<double>& B) {
  Race r;
  r.model = matmul_cost(A, B);
  cube.clock().reset();
  (void)matmul(A, B);
  r.rank1_us = cube.clock().now_us();
  r.rank1_moved = static_cast<double>(cube.clock().stats().elements_moved);
  cube.clock().reset();
  (void)matmul_summa(A, B);
  r.summa_us = cube.clock().now_us();
  r.summa_moved = static_cast<double>(cube.clock().stats().elements_moved);
  if (A.grid().pcols() == 1) {
    cube.clock().reset();
    (void)matmul_hyper(A, B);
    r.hyper_us = cube.clock().now_us();
    r.hyper_moved = static_cast<double>(cube.clock().stats().elements_moved);
  }
  cube.clock().reset();
  (void)matmul_auto(A, B);
  r.auto_us = cube.clock().now_us();
  return r;
}

void report(bench::Case& c, const Cube& cube, const Race& r) {
  c.counter("sim_rank1_us", r.rank1_us);
  c.counter("sim_summa_us", r.summa_us);
  c.counter("sim_auto_us", r.auto_us);
  const double p = static_cast<double>(cube.procs());
  c.counter("summa_moved_per_proc", r.summa_moved / p);
  double best = std::min(r.rank1_us, r.summa_us);
  if (r.hyper_us > 0) {
    c.counter("sim_hyper_us", r.hyper_us);
    c.counter("hyper_gain_vs_summa", r.summa_us / r.hyper_us);
    c.counter("hyper_moved_per_proc", r.hyper_moved / p);
    c.counter("summa_vs_hyper_volume", r.summa_moved / r.hyper_moved);
    best = std::min(best, r.hyper_us);
  }
  // 1.0 iff the cost model's pick also wins the simulated race.
  c.counter("auto_picked_winner", r.auto_us <= best * (1.0 + 1e-9) ? 1.0
                                                                   : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_matmul", argc, argv);

  // Square operands on 1-D grids: machine-size sweep — the hyper side of
  // the crossover (shift volume √p-fold below the panel broadcasts).
  for (int d : h.dims({2, 4, 6, 8}, {2, 4}))
    for (std::size_t n : h.sizes({64, 128, 256}, {64})) {
      h.run("square_1d", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              if (h.metrics()) cube.enable_metrics();
              Grid grid(cube, d, 0);
              DistMatrix<double> A(grid, n, n), B(grid, n, n);
              A.load(random_matrix(n, n, 91));
              B.load(random_matrix(n, n, 92));
              const Race r = race(cube, A, B);
              report(c, cube, r);
              const double serial = 2.0 * std::pow(static_cast<double>(n), 3) *
                                    cube.costs().flop_us;
              c.counter("hyper_speedup", serial / r.hyper_us);
              if (h.metrics()) c.metrics(cube.metrics(), r.hyper_us);
            });
    }

  // Reduction-axis aspect sweep at fixed p: skinny k starves the panel
  // broadcasts but hyper still ships K full C-partials — the far side of
  // the crossover, where matmul_auto must walk away from hyper.
  for (int d : h.dims({4, 6}, {4})) {
    struct Aspect {
      std::size_t n, k, m;
      const char* name;
    };
    const Aspect aspects[] = {{192, 4, 192, "k4"},
                              {192, 24, 192, "k24"},
                              {192, 192, 192, "k192"},
                              {48, 384, 48, "k384_small_nm"}};
    for (const Aspect& a : aspects) {
      h.run("aspect_1d", {{"dim", d}, {"k", static_cast<std::int64_t>(a.k)}},
            [&](bench::Case& c) {
              c.label(a.name);
              Cube cube(d, CostParams::cm2());
              Grid grid(cube, d, 0);
              DistMatrix<double> A(grid, a.n, a.k), B(grid, a.k, a.m);
              A.load(random_matrix(a.n, a.k, 93));
              B.load(random_matrix(a.k, a.m, 94));
              report(c, cube, race(cube, A, B));
            });
    }
  }

  // Square 2-D grids for reference: hyper is ineligible there — the race
  // is rank-1 vs SUMMA and auto must keep picking correctly.
  for (int d : h.dims({4, 6}, {4}))
    for (std::size_t n : h.sizes({64, 128}, {64})) {
      h.run("square_2d", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              Grid grid = Grid::square(cube);
              DistMatrix<double> A(grid, n, n), B(grid, n, n);
              A.load(random_matrix(n, n, 95));
              B.load(random_matrix(n, n, 96));
              report(c, cube, race(cube, A, B));
            });
    }

  // Topology ablation: the same race on each physical preset — routed
  // presets dilate the shift rounds and the panel broadcasts differently,
  // moving the crossover; the selector re-prices both sides per preset.
  {
    constexpr TopologyKind kPresets[] = {
        TopologyKind::Hypercube, TopologyKind::Mesh, TopologyKind::Torus,
        TopologyKind::Dragonfly};
    for (TopologyKind kind : kPresets)
      for (int d : h.dims({4, 6}, {4}))
        for (std::size_t n : h.sizes({64, 128}, {64})) {
          h.run("topology_sweep",
                {{"topology", static_cast<std::int64_t>(kind)},
                 {"dim", d},
                 {"n", static_cast<std::int64_t>(n)}},
                [&](bench::Case& c) {
                  Cube::Options opts;
                  opts.topology = kind;
                  Cube cube(d, CostParams::cm2(), opts);
                  c.label(cube.topology().name());
                  Grid grid(cube, d, 0);
                  DistMatrix<double> A(grid, n, n), B(grid, n, n);
                  A.load(random_matrix(n, n, 97));
                  B.load(random_matrix(n, n, 98));
                  report(c, cube, race(cube, A, B));
                });
        }
  }
  return h.finish();
}
