// E3 — vector-matrix multiply timings: primitive-composed vs fused, under
// CM-2-like and iPSC-like cost models.
//
// Counters:
//   sim_composed_us  distribute → hadamard → reduce
//   sim_fused_us     local multiply-accumulate + all-reduce
//   composed_over_fused      overhead factor of the literal composition
//   wall_composed_ms / wall_fused_ms   host wall-clock per form
//   host_composed_over_fused   wall-clock overhead of the composition
//                            (the fused form skips both intermediate
//                            matrices, so it also runs faster on the host)
// Profiles "composed" and "fused" break each form into its primitive /
// collective regions.
#include <chrono>

#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

CostParams preset(std::int64_t which) {
  return which == 0 ? CostParams::cm2() : CostParams::ipsc();
}

double wall_ms_of(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_matvec", argc, argv);
  for (int d : h.dims({4, 6, 8}, {4}))
    for (std::size_t n : h.sizes({64, 256, 1024}, {64}))
      for (std::int64_t costs : {std::int64_t{0}, std::int64_t{1}}) {
        const auto nn = static_cast<std::int64_t>(n);
        h.run("matvec_forms", {{"dim", d}, {"n", nn}, {"costs", costs}},
              [&](bench::Case& c) {
                Cube cube(d, preset(costs));
                if (h.faults()) cube.enable_faults(h.fault_plan());
                if (h.metrics()) cube.enable_metrics();
                Grid grid = Grid::square(cube);
                DistMatrix<double> A(grid, n, n);
                A.load(random_matrix(n, n, 31));
                DistVector<double> x(grid, n, Align::Cols);
                x.load(random_vector(n, 32));

                cube.clock().reset();
                const auto w0 = std::chrono::steady_clock::now();
                (void)matvec(A, x);
                const double wall_composed = wall_ms_of(w0);
                const double composed = cube.clock().now_us();
                c.profile("composed", cube.clock());
                cube.clock().reset();
                const auto w1 = std::chrono::steady_clock::now();
                (void)matvec_fused(A, x);
                const double wall_fused = wall_ms_of(w1);
                const double fused = cube.clock().now_us();
                c.profile("fused", cube.clock());

                c.counter("sim_composed_us", composed);
                c.counter("sim_fused_us", fused);
                c.counter("composed_over_fused", composed / fused);
                c.counter("wall_composed_ms", wall_composed);
                c.counter("wall_fused_ms", wall_fused);
                c.counter("host_composed_over_fused",
                          wall_composed / wall_fused);
                if (h.metrics())
                  c.metrics(cube.metrics(), cube.clock().now_us());
                c.label(cube.costs().name);
              });
        h.run("vecmat_forms", {{"dim", d}, {"n", nn}, {"costs", costs}},
              [&](bench::Case& c) {
                Cube cube(d, preset(costs));
                if (h.faults()) cube.enable_faults(h.fault_plan());
                Grid grid = Grid::square(cube);
                DistMatrix<double> A(grid, n, n);
                A.load(random_matrix(n, n, 33));
                DistVector<double> x(grid, n, Align::Rows);
                x.load(random_vector(n, 34));

                cube.clock().reset();
                const auto w0 = std::chrono::steady_clock::now();
                (void)vecmat(x, A);
                const double wall_composed = wall_ms_of(w0);
                const double composed = cube.clock().now_us();
                c.profile("composed", cube.clock());
                cube.clock().reset();
                const auto w1 = std::chrono::steady_clock::now();
                (void)vecmat_fused(x, A);
                const double wall_fused = wall_ms_of(w1);
                const double fused = cube.clock().now_us();
                c.profile("fused", cube.clock());

                c.counter("sim_composed_us", composed);
                c.counter("sim_fused_us", fused);
                c.counter("composed_over_fused", composed / fused);
                c.counter("wall_composed_ms", wall_composed);
                c.counter("wall_fused_ms", wall_fused);
                c.counter("host_composed_over_fused",
                          wall_composed / wall_fused);
                c.label(cube.costs().name);
              });
      }
  return h.finish();
}
