// E3 — vector-matrix multiply timings: primitive-composed vs fused, under
// CM-2-like and iPSC-like cost models.
//
// Counters:
//   sim_composed_us  distribute → hadamard → reduce
//   sim_fused_us     local multiply-accumulate + all-reduce
//   composed_over_fused   overhead factor of the literal composition
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

CostParams preset(std::int64_t which) {
  return which == 0 ? CostParams::cm2() : CostParams::ipsc();
}

void BM_MatvecForms(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, preset(state.range(2)));
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 31));
  DistVector<double> x(grid, n, Align::Cols);
  x.load(random_vector(n, 32));

  double composed = 0, fused = 0;
  for (auto _ : state) {
    cube.clock().reset();
    benchmark::DoNotOptimize(matvec(A, x));
    composed = cube.clock().now_us();
    cube.clock().reset();
    benchmark::DoNotOptimize(matvec_fused(A, x));
    fused = cube.clock().now_us();
  }
  state.counters["sim_composed_us"] = composed;
  state.counters["sim_fused_us"] = fused;
  state.counters["composed_over_fused"] = composed / fused;
  state.SetLabel(cube.costs().name);
}

void BM_VecmatForms(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, preset(state.range(2)));
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 33));
  DistVector<double> x(grid, n, Align::Rows);
  x.load(random_vector(n, 34));

  double composed = 0, fused = 0;
  for (auto _ : state) {
    cube.clock().reset();
    benchmark::DoNotOptimize(vecmat(x, A));
    composed = cube.clock().now_us();
    cube.clock().reset();
    benchmark::DoNotOptimize(vecmat_fused(x, A));
    fused = cube.clock().now_us();
  }
  state.counters["sim_composed_us"] = composed;
  state.counters["sim_fused_us"] = fused;
  state.counters["composed_over_fused"] = composed / fused;
  state.SetLabel(cube.costs().name);
}

const std::vector<std::vector<std::int64_t>> kSweep = {
    {4, 6, 8},            // processors
    {64, 256, 1024},      // extent
    {0, 1}                // cost preset: cm2 / ipsc
};

}  // namespace

BENCHMARK(BM_MatvecForms)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_VecmatForms)->ArgsProduct(kSweep)->Iterations(1);

BENCHMARK_MAIN();
