/// \file harness.hpp
/// \brief Minimal benchmark harness for the simulated machine.
///
/// The interesting output of every benchmark here is *simulated* time, which
/// is deterministic — statistics over repeated runs are pointless.  What the
/// benchmarks need instead is a uniform way to sweep parameters, name cases,
/// capture counters and per-region cost profiles, and emit the whole run as
/// one machine-readable JSON document (`BENCH_<name>.json`, schema
/// "vmp-bench-v1") next to a human-readable stdout table.
///
/// Flags understood by every benchmark binary:
///
///   --dims=4,6,8     override the cube-dimension sweep
///   --sizes=64,128   override the problem-size sweep
///   --trials=N       wall-clock timing repetitions per case (default 1)
///   --warmup=N       untimed executions per case before the trials (default 0)
///   --quick          use each sweep's reduced "quick" lists and cap both
///                    the trials and warm-up repetitions at 1 (CI-friendly)
///   --filter=SUBSTR  run only cases whose full name contains SUBSTR
///   --json=PATH      output path (default BENCH_<name>.json in the CWD)
///   --list           print case names without running them
///   --faults[=SEED]  run under a standard transient fault plan (drops,
///                    corruption, latency spikes; see Harness::fault_plan);
///                    benches that honor it attach the plan to their cube
///                    so recovery costs land in the reported profiles
///   --threads=N      host lanes for the worker team (sets VMP_THREADS, the
///                    default every Cube reads: 0 = hardware concurrency,
///                    1 = serial); the resolved lane count is recorded as
///                    "threads" in the JSON document
///   --topology=NAME  physical topology preset every cube in the run defaults
///                    to (sets VMP_TOPOLOGY: hypercube | mesh | torus |
///                    dragonfly); the effective preset is recorded as
///                    "topology" in the JSON document.  Topology-ablation
///                    benches additionally sweep presets explicitly per case,
///                    independent of this default
///   --metrics        enable the engine metrics tier (obs/metrics.hpp) in
///                    benches that wire it: each case embeds its final
///                    vmp-metrics-v1 snapshot in the bench document, the
///                    run writes the snapshots as a METRICS_<name>.json
///                    time-series next to the bench JSON, and the last
///                    case's text dashboard is printed after the table
///
/// The effective base seed (VMP_SEED env or the default) is printed at
/// start-up and recorded in the JSON document, so any randomized run can
/// be reproduced from its log.
///
/// Usage:
///
///     int main(int argc, char** argv) {
///       vmp::bench::Harness h("bench_primitives", argc, argv);
///       for (int d : h.dims({4, 6, 8, 10}, {4}))
///         for (std::size_t n : h.sizes({64, 128, 256}, {64}))
///           h.run("reduce_rows", {{"dim", d}, {"n", n}}, [&](Case& c) {
///             ...
///             c.counter("sim_us", cube.clock().now_us());
///             c.profile("fast", cube.clock());
///           });
///       return h.finish();
///     }
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "hypercube/team.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"

namespace vmp::bench {

/// One (name, value) benchmark parameter, e.g. {"dim", 6}.
struct Arg {
  std::string name;
  std::int64_t value;
};

/// Mutable view of the case being run: collect counters, an optional label,
/// and named cost profiles snapshotted from a SimClock.
class Case {
 public:
  void counter(std::string name, double value) {
    counters_.emplace_back(std::move(name), value);
  }
  void label(std::string text) { label_ = std::move(text); }
  /// Snapshot the clock's hierarchical cost profile under `key` (call right
  /// after the timed section, before the next clock reset).
  void profile(std::string key, const SimClock& clock) {
    profiles_.emplace_back(std::move(key), profile_to_json(clock));
  }
  /// Snapshot the engine metrics registry (benches call this after the
  /// timed section when Harness::metrics() is set): the vmp-metrics-v1
  /// snapshot is embedded in the case's bench JSON and collected into the
  /// run's METRICS time-series, labelled with the case name at `sim_us`
  /// on the simulated timeline.
  void metrics(MetricsRegistry& m, double sim_us) {
    metrics_json_ = metrics_to_json(m);
    metrics_table_ = metrics_to_table(m);
    metrics_sim_us_ = sim_us;
  }

 private:
  friend class Harness;
  std::vector<std::pair<std::string, double>> counters_;
  std::vector<std::pair<std::string, std::string>> profiles_;  // key -> JSON
  std::string label_;
  std::string metrics_json_;
  std::string metrics_table_;
  double metrics_sim_us_ = 0.0;
};

class Harness {
 public:
  Harness(std::string name, int argc, char** argv) : name_(std::move(name)) {
    json_path_ = "BENCH_" + name_ + ".json";
    seed_ = global_seed();
    fault_seed_ = seed_;
    for (int i = 1; i < argc; ++i) parse_flag(argv[i]);
    if (!list_) (void)announce_seed(name_.c_str());
  }

  [[nodiscard]] bool quick() const { return quick_; }

  /// Effective repetition counts: --quick caps BOTH the measured trials and
  /// the untimed warm-up executions to one (a quick run must not hide N
  /// warm-up passes behind the reduced sweep lists).
  [[nodiscard]] int trials() const {
    return quick_ ? std::min(trials_, 1) : trials_;
  }
  [[nodiscard]] int warmup() const {
    return quick_ ? std::min(warmup_, 1) : warmup_;
  }

  /// Base seed of this run (VMP_SEED env override, else the default).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Host lanes every cube in this run uses: the --threads override (which
  /// sets VMP_THREADS before any cube exists) or the environment default,
  /// resolved to an actual lane count for reproducibility.
  [[nodiscard]] unsigned threads() const {
    return WorkerTeam::resolve_lanes(env_threads());
  }

  /// The topology preset every cube in this run defaults to: the
  /// --topology override (which sets VMP_TOPOLOGY before any cube exists)
  /// or the environment default.  Ablation benches sweeping presets
  /// explicitly pass Cube::Options instead of relying on this.
  [[nodiscard]] TopologyKind topology() const { return env_topology(); }

  /// True when --faults was given: the bench should attach fault_plan() to
  /// its cube(s) so the run exercises the recovery path.
  [[nodiscard]] bool faults() const { return faults_; }

  /// True when --metrics was given: the bench should enable_metrics() on
  /// its cube(s) and snapshot them per case via Case::metrics().
  [[nodiscard]] bool metrics() const { return metrics_; }

  /// The standard transient plan benches run under --faults: 2% drops,
  /// 1% corruption, 0.5% latency spikes of 25 µs — well inside the default
  /// recovery budget, so results stay bit-identical while retry/reroute
  /// costs appear in the profiles.
  [[nodiscard]] FaultPlan fault_plan() const {
    return FaultPlan::transient(fault_seed_, 0.02, 0.01, 0.005, 25.0);
  }

  /// The cube-dimension sweep: --dims wins, then --quick's reduced list,
  /// then the full list.
  [[nodiscard]] std::vector<int> dims(std::vector<int> full,
                                      std::vector<int> quick_list) const {
    if (!dims_override_.empty()) return dims_override_;
    return quick_ ? quick_list : full;
  }

  /// The problem-size sweep, same precedence as dims().
  [[nodiscard]] std::vector<std::size_t> sizes(
      std::vector<std::size_t> full, std::vector<std::size_t> quick_list) const {
    if (!sizes_override_.empty()) return sizes_override_;
    return quick_ ? quick_list : full;
  }

  /// Run one case: `body(Case&)` executes warmup+trials times; wall-clock
  /// time is averaged over the trials, while counters and profiles keep the
  /// values set during the last execution (simulated results are
  /// deterministic, so every execution sets the same ones).
  template <class Body>
  void run(const std::string& kase, std::vector<Arg> args, Body&& body) {
    const std::string full = case_name(kase, args);
    if (!filter_.empty() && full.find(filter_) == std::string::npos) return;
    if (list_) {
      std::printf("%s\n", full.c_str());
      return;
    }
    Result res;
    res.name = kase;
    res.args = std::move(args);
    double wall_ms = 0.0;
    const int nwarm = warmup(), ntrials = trials();
    for (int t = 0; t < nwarm + ntrials; ++t) {
      Case c;
      const auto t0 = std::chrono::steady_clock::now();
      body(c);
      const auto t1 = std::chrono::steady_clock::now();
      if (t < nwarm) continue;
      wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      res.c = std::move(c);
    }
    res.wall_ms = wall_ms / ntrials;
    print_case(full, res);
    if (!res.c.metrics_json_.empty())
      series_.push_back(
          {full, res.c.metrics_sim_us_, res.wall_ms, res.c.metrics_json_});
    results_.push_back(std::move(res));
  }

  /// Write the JSON document(s) and return the process exit code.  With
  /// --metrics and at least one snapshotting case, also writes the
  /// METRICS_<name>.json time-series and prints the last dashboard.
  int finish() {
    if (list_) return 0;
    std::ofstream f(json_path_, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "%s: cannot write %s\n", name_.c_str(),
                   json_path_.c_str());
      return 1;
    }
    const std::string doc = to_json();
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    f.flush();
    if (!f) return 1;
    std::printf("# wrote %s (%zu cases)\n", json_path_.c_str(),
                results_.size());
    if (metrics_ && !series_.empty()) {
      const std::string mpath = metrics_path();
      std::ofstream mf(mpath, std::ios::binary);
      if (!mf) {
        std::fprintf(stderr, "%s: cannot write %s\n", name_.c_str(),
                     mpath.c_str());
        return 1;
      }
      const std::string mdoc = metrics_series_to_json(series_);
      mf.write(mdoc.data(), static_cast<std::streamsize>(mdoc.size()));
      mf.flush();
      if (!mf) return 1;
      std::printf("# wrote %s (%zu samples)\n# %s\n", mpath.c_str(),
                  series_.size(),
                  results_.back().c.metrics_table_.empty()
                      ? "(last case took no metrics snapshot)"
                      : results_.back().c.metrics_table_.c_str());
    }
    return 0;
  }

 private:
  struct Result {
    std::string name;
    std::vector<Arg> args;
    double wall_ms = 0.0;
    Case c;
  };

  static std::string case_name(const std::string& kase,
                               const std::vector<Arg>& args) {
    std::string s = kase;
    for (const Arg& a : args)
      s += "/" + a.name + "=" + std::to_string(a.value);
    return s;
  }

  void parse_flag(const std::string& f) {
    const auto starts = [&](const char* p) {
      return f.rfind(p, 0) == 0;
    };
    if (f == "--quick") {
      quick_ = true;
    } else if (f == "--list") {
      list_ = true;
    } else if (starts("--dims=")) {
      dims_override_.clear();
      for (std::int64_t v : parse_list(f.substr(7)))
        dims_override_.push_back(static_cast<int>(v));
    } else if (starts("--sizes=")) {
      sizes_override_.clear();
      for (std::int64_t v : parse_list(f.substr(8)))
        sizes_override_.push_back(static_cast<std::size_t>(v));
    } else if (starts("--trials=")) {
      trials_ = std::max(1, std::atoi(f.c_str() + 9));
    } else if (starts("--warmup=")) {
      warmup_ = std::max(0, std::atoi(f.c_str() + 9));
    } else if (starts("--filter=")) {
      filter_ = f.substr(9);
    } else if (starts("--json=")) {
      json_path_ = f.substr(7);
    } else if (f == "--faults") {
      faults_ = true;
    } else if (starts("--faults=")) {
      faults_ = true;
      fault_seed_ = static_cast<std::uint64_t>(std::atoll(f.c_str() + 9));
    } else if (f == "--metrics") {
      metrics_ = true;
    } else if (starts("--threads=")) {
      // Through the environment so every Cube the bench creates (all are
      // constructed after flag parsing) picks it up as its default.
      setenv("VMP_THREADS", f.c_str() + 10, 1);
    } else if (starts("--topology=")) {
      TopologyKind kind{};
      if (!parse_topology(f.c_str() + 11, kind)) {
        std::fprintf(stderr,
                     "%s: unknown topology %s (hypercube|mesh|torus|"
                     "dragonfly)\n",
                     name_.c_str(), f.c_str() + 11);
        std::exit(2);
      }
      // Through the environment, same as --threads: every Cube constructed
      // after flag parsing reads it as its Options default.
      setenv("VMP_TOPOLOGY", to_string(kind), 1);
    } else if (f == "--help" || f == "-h") {
      std::printf(
          "%s [--dims=a,b] [--sizes=a,b] [--trials=N] [--warmup=N]\n"
          "  [--quick] [--filter=SUBSTR] [--json=PATH] [--list]\n"
          "  [--faults[=SEED]] [--threads=N] [--topology=NAME] [--metrics]\n",
          name_.c_str());
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (see --help)\n", name_.c_str(),
                   f.c_str());
      std::exit(2);
    }
  }

  static std::vector<std::int64_t> parse_list(const std::string& s) {
    std::vector<std::int64_t> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
      std::size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      out.push_back(std::atoll(s.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
    return out;
  }

  void print_case(const std::string& full, const Result& r) const {
    std::string line = full;
    if (!r.c.label_.empty()) line += " [" + r.c.label_ + "]";
    for (const auto& [k, v] : r.c.counters_)
      line += "  " + k + "=" + obs_detail::json_double(v);
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  }

  [[nodiscard]] std::string to_json() const {
    using obs_detail::json_double;
    using obs_detail::json_string;
    std::string out = "{\"schema\":\"vmp-bench-v1\"";
    out += ",\"name\":" + json_string(name_);
    out += ",\"quick\":" + std::string(quick_ ? "true" : "false");
    out += ",\"trials\":" + std::to_string(trials());
    out += ",\"warmup\":" + std::to_string(warmup());
    out += ",\"seed\":" + std::to_string(seed_);
    out += ",\"faults\":" + std::string(faults_ ? "true" : "false");
    // Always present so a --quick --faults=SEED run is reproducible from its
    // document alone (fault_seed == seed when --faults carried no override).
    out += ",\"fault_seed\":" + std::to_string(fault_seed_);
    out += ",\"threads\":" + std::to_string(threads());
    out += ",\"topology\":" + json_string(to_string(topology()));
    out += ",\"metrics\":" + std::string(metrics_ ? "true" : "false");
    out += ",\"cases\":[";
    bool first_case = true;
    for (const Result& r : results_) {
      if (!first_case) out += ",";
      first_case = false;
      out += "{\"name\":" + json_string(r.name);
      out += ",\"args\":{";
      for (std::size_t i = 0; i < r.args.size(); ++i) {
        if (i) out += ",";
        out += json_string(r.args[i].name) + ":" +
               std::to_string(r.args[i].value);
      }
      out += "}";
      if (!r.c.label_.empty()) out += ",\"label\":" + json_string(r.c.label_);
      out += ",\"wall_ms\":" + json_double(r.wall_ms);
      out += ",\"counters\":{";
      for (std::size_t i = 0; i < r.c.counters_.size(); ++i) {
        if (i) out += ",";
        out += json_string(r.c.counters_[i].first) + ":" +
               json_double(r.c.counters_[i].second);
      }
      out += "}";
      if (!r.c.profiles_.empty()) {
        out += ",\"profiles\":{";
        for (std::size_t i = 0; i < r.c.profiles_.size(); ++i) {
          if (i) out += ",";
          // The value is itself a complete JSON document (vmp-profile-v1).
          out += json_string(r.c.profiles_[i].first) + ":" +
                 r.c.profiles_[i].second;
        }
        out += "}";
      }
      // The value is a complete vmp-metrics-v1 snapshot document.
      if (!r.c.metrics_json_.empty()) out += ",\"metrics\":" + r.c.metrics_json_;
      out += "}";
    }
    out += "]}";
    return out;
  }

  /// METRICS_<name>.json beside the bench document: swap a BENCH_ (or a
  /// perf-gate GATE_, see scripts/check.sh) basename prefix for METRICS_,
  /// else append a suffix (custom --json paths).
  [[nodiscard]] std::string metrics_path() const {
    const std::size_t slash = json_path_.find_last_of('/');
    const std::size_t base = slash == std::string::npos ? 0 : slash + 1;
    for (const char* prefix : {"BENCH_", "GATE_"}) {
      const std::size_t n = std::string_view(prefix).size();
      if (json_path_.compare(base, n, prefix) == 0) {
        std::string p = json_path_;
        p.replace(base, n, "METRICS_");
        return p;
      }
    }
    return json_path_ + ".metrics.json";
  }

  std::string name_;
  std::string json_path_;
  std::string filter_;
  std::vector<int> dims_override_;
  std::vector<std::size_t> sizes_override_;
  int trials_ = 1;
  int warmup_ = 0;
  bool quick_ = false;
  bool list_ = false;
  bool faults_ = false;
  bool metrics_ = false;
  std::uint64_t seed_ = 0;
  std::uint64_t fault_seed_ = 0;
  std::vector<Result> results_;
  std::vector<MetricsSeriesEntry> series_;
};

}  // namespace vmp::bench
