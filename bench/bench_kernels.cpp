// Micro-benchmark of the strided-kernel layer (core/kernels.hpp): every
// vectorizable kernel timed with the SIMD backend forced OFF and ON over
// the same buffers, so the report carries the measured speedup and the
// perf gate can guard the vector paths against regression.
//
// Counters per case:
//   wall_scalar_ms / wall_simd_ms   host wall-clock for the rep loop with
//                                   the backend disabled / enabled
//   scalar_over_simd                measured speedup (1.0 on scalar builds)
//   checksum                        fold of the outputs (defeats dead-code
//                                   elimination; also a cheap cross-config
//                                   sanity check)
// The case labels carry the compiled backend name, so baselines recorded
// on different ISAs are distinguishable at a glance.
//
// Under --metrics each case also runs one trivial simulated step on a
// 1-cube with the metrics registry enabled, so the report embeds the
// standard vmp-metrics-v1 snapshot (engine.steps included) like every
// other bench in the gate sweep.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

double wall_ms_of(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Compiler barrier: force the buffer to be materialized.
inline void clobber(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

std::vector<double> make_data(std::size_t n, unsigned seed) {
  return random_vector(n, seed);
}

/// Time `body` under both backend settings; record counters and a checksum.
template <class Body>
void time_both(bench::Case& c, std::size_t reps, Body body) {
  double sums[2] = {0.0, 0.0};
  double walls[2] = {0.0, 0.0};
  for (const int cfg : {0, 1}) {
    const bool prev = kern::simd::set_enabled(cfg == 1);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) sums[cfg] += body();
    walls[cfg] = wall_ms_of(t0);
    kern::simd::set_enabled(prev);
  }
  c.counter("wall_scalar_ms", walls[0]);
  c.counter("wall_simd_ms", walls[1]);
  c.counter("scalar_over_simd", walls[0] / walls[1]);
  c.counter("checksum", sums[0]);
  c.counter("checksum_simd", sums[1]);
}

/// One trivial simulated step so --metrics reports carry the standard
/// engine snapshot (the gate's schema check requires engine.steps).
void attach_metrics(const bench::Harness& h, bench::Case& c) {
  if (!h.metrics()) return;
  Cube cube(1, CostParams::unit());
  cube.enable_metrics();
  DistBuffer<double> buf(cube, 8);
  cube.compute(8, [&](proc_t q) { kern::fill(buf.tile(q), 1.0); });
  c.metrics(cube.metrics(), cube.clock().now_us());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_kernels", argc, argv);
  const std::string backend = kern::simd::backend();

  for (std::size_t n : h.sizes({4096, 65536}, {4096})) {
    const auto nn = static_cast<std::int64_t>(n);
    // Fixed total traffic per configuration, independent of n.
    const std::size_t reps = (std::size_t{1} << 22) / n;

    h.run("fill", {{"n", nn}}, [&](bench::Case& c) {
      std::vector<double> dst = make_data(n, 11);
      time_both(c, reps, [&] {
        kern::fill(std::span<double>(dst), 3.25);
        clobber(dst.data());
        return dst[0];
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("copy", {{"n", nn}}, [&](bench::Case& c) {
      const std::vector<double> src = make_data(n, 12);
      std::vector<double> dst(n, 0.0);
      time_both(c, reps, [&] {
        kern::copy(std::span<const double>(src), std::span<double>(dst));
        clobber(dst.data());
        return dst[n - 1];
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("axpy", {{"n", nn}}, [&](bench::Case& c) {
      const std::vector<double> x = make_data(n, 13);
      std::vector<double> y = make_data(n, 14);
      time_both(c, reps, [&] {
        kern::axpy(std::span<double>(y), 1.0000001,
                   std::span<const double>(x));
        clobber(y.data());
        return y[n - 1];
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("zip_add", {{"n", nn}}, [&](bench::Case& c) {
      const std::vector<double> src = make_data(n, 15);
      std::vector<double> dst = make_data(n, 16);
      time_both(c, reps, [&] {
        kern::zip(std::span<double>(dst), std::span<const double>(src),
                  kern::op_fn(Plus<double>{}));
        clobber(dst.data());
        return dst[n - 1];
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("zip_max", {{"n", nn}}, [&](bench::Case& c) {
      const std::vector<double> src = make_data(n, 17);
      std::vector<double> dst = make_data(n, 18);
      time_both(c, reps, [&] {
        kern::zip(std::span<double>(dst), std::span<const double>(src),
                  kern::op_fn(Max<double>{}));
        clobber(dst.data());
        return dst[n - 1];
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    // Row-block kernels: a square-ish tile with the same element count.
    h.run("dot_rows", {{"n", nn}}, [&](bench::Case& c) {
      const std::size_t lcn = 64, lrn = n / lcn;
      const std::vector<double> blk = make_data(lrn * lcn, 19);
      const std::vector<double> x = make_data(lcn, 20);
      std::vector<double> out(lrn, 0.0);
      time_both(c, reps, [&] {
        kern::dot_rows(std::span<const double>(blk), lrn, lcn,
                       std::span<const double>(x), std::span<double>(out));
        clobber(out.data());
        return out[lrn - 1];
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("fold_rows_max", {{"n", nn}}, [&](bench::Case& c) {
      const std::size_t lcn = 64, lrn = n / lcn;
      const std::vector<double> blk = make_data(lrn * lcn, 21);
      std::vector<double> out(lrn, 0.0);
      const Max<double> op;
      time_both(c, reps, [&] {
        kern::fold_rows(std::span<const double>(blk), lrn, lcn,
                        op.identity(), std::span<double>(out),
                        kern::op_fn(op));
        clobber(out.data());
        return out[lrn - 1];
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("dot_strict", {{"n", nn}}, [&](bench::Case& c) {
      const std::vector<double> a = make_data(n, 22);
      const std::vector<double> b = make_data(n, 23);
      time_both(c, reps, [&] {
        return kern::dot(std::span<const double>(a),
                         std::span<const double>(b));
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("dot_relaxed", {{"n", nn}}, [&](bench::Case& c) {
      const std::vector<double> a = make_data(n, 24);
      const std::vector<double> b = make_data(n, 25);
      time_both(c, reps, [&] {
        return kern::dot(std::span<const double>(a),
                         std::span<const double>(b), kern::Assoc::Relaxed);
      });
      attach_metrics(h, c);
      c.label(backend);
    });

    h.run("gather_scatter", {{"n", nn}}, [&](bench::Case& c) {
      const std::size_t stride = 8;
      const std::vector<double> src = make_data(n * stride, 26);
      std::vector<double> col(n, 0.0);
      std::vector<double> back(n * stride, 0.0);
      time_both(c, reps, [&] {
        kern::gather_strided(src.data(), stride, std::span<double>(col));
        kern::scatter_strided(std::span<const double>(col), back.data(),
                              stride);
        clobber(back.data());
        return col[n - 1];
      });
      attach_metrics(h, c);
      c.label(backend);
    });
  }
  return h.finish();
}
