// E6 — the optimality claim: for m > p·lg p the processor-time product of
// the primitives is within a constant factor of the serial work, and the
// parallel time is within a constant of m/p + lg p.
//
// Fixed matrix, sweep the machine size through and past the m = p·lg p
// boundary.  Counters:
//   m_over_plgp    m / (p·lg p): > 1 inside the optimal regime
//   sim_us         simulated reduce time
//   pT_over_serial (p·sim) / (m·t_a) — flattens to a constant for
//                  m > p·lg p, grows once start-ups dominate
//   T_over_ideal   sim / (m/p·t_a + lg p·τ)
#include <cmath>

#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_scaling", argc, argv);

  // Fixed m = n², p from 1 to 4096: for n = 256 the m = p·lg p knee sits
  // around d = 12 (4096·12 ≈ 49k); for n = 64 it is at d ≈ 9.  The ratio
  // columns show the regime change.
  for (std::size_t n : h.sizes({256, 64}, {64}))
    for (int d : h.dims({0, 2, 4, 6, 8, 10, 12}, {0, 4, 8})) {
      h.run("reduce_scaling", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              const std::size_t m = n * n;
              Cube cube(d, CostParams::cm2());
              if (h.metrics()) cube.enable_metrics();
              Grid grid = Grid::square(cube);
              DistMatrix<double> A(grid, n, n);
              A.load(random_matrix(n, n, 61));

              cube.clock().reset();
              (void)reduce_rows(A, Plus<double>{});
              const double sim = cube.clock().now_us();
              c.profile("run", cube.clock());

              const double p = cube.procs();
              const double lgp = std::max(1.0, static_cast<double>(d));
              const CostParams& cp = cube.costs();
              const double serial = static_cast<double>(m) * cp.flop_us;
              const double ideal = static_cast<double>(m) / p * cp.flop_us +
                                   lgp * cp.startup_us;
              c.counter("m_over_plgp", static_cast<double>(m) / (p * lgp));
              c.counter("sim_us", sim);
              c.counter("pT_over_serial", p * sim / serial);
              c.counter("T_over_ideal", sim / ideal);
              if (h.metrics()) c.metrics(cube.metrics(), sim);
            });
    }

  for (int d : h.dims({0, 2, 4, 6, 8, 10, 12}, {0, 4, 8})) {
    const std::size_t n = 256;
    h.run("matvec_scaling", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
          [&](bench::Case& c) {
            const std::size_t m = n * n;
            Cube cube(d, CostParams::cm2());
            Grid grid = Grid::square(cube);
            DistMatrix<double> A(grid, n, n);
            A.load(random_matrix(n, n, 62));
            DistVector<double> x(grid, n, Align::Cols);
            x.load(random_vector(n, 63));

            cube.clock().reset();
            (void)matvec_fused(A, x);
            const double sim = cube.clock().now_us();
            c.profile("run", cube.clock());

            const double p = cube.procs();
            const double lgp = std::max(1.0, static_cast<double>(d));
            const double serial =
                2.0 * static_cast<double>(m) * cube.costs().flop_us;
            c.counter("m_over_plgp", static_cast<double>(m) / (p * lgp));
            c.counter("sim_us", sim);
            c.counter("pT_over_serial", p * sim / serial);
          });
  }
  return h.finish();
}
