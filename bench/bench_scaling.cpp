// E6 — the optimality claim: for m > p·lg p the processor-time product of
// the primitives is within a constant factor of the serial work, and the
// parallel time is within a constant of m/p + lg p.
//
// Fixed matrix, sweep the machine size through and past the m = p·lg p
// boundary.  Counters:
//   m_over_plgp    m / (p·lg p): > 1 inside the optimal regime
//   sim_us         simulated reduce time
//   pT_over_serial (p·sim) / (m·t_a) — flattens to a constant for
//                  m > p·lg p, grows once start-ups dominate
//   T_over_ideal   sim / (m/p·t_a + lg p·τ)
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

void BM_ReduceScaling(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const std::size_t m = n * n;
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 61));

  double sim = 0;
  for (auto _ : state) {
    cube.clock().reset();
    benchmark::DoNotOptimize(reduce_rows(A, Plus<double>{}));
    sim = cube.clock().now_us();
  }
  const double p = cube.procs();
  const double lgp = std::max(1.0, static_cast<double>(d));
  const CostParams& cp = cube.costs();
  const double serial = static_cast<double>(m) * cp.flop_us;
  const double ideal =
      static_cast<double>(m) / p * cp.flop_us + lgp * cp.startup_us;
  state.counters["m_over_plgp"] = static_cast<double>(m) / (p * lgp);
  state.counters["sim_us"] = sim;
  state.counters["pT_over_serial"] = p * sim / serial;
  state.counters["T_over_ideal"] = sim / ideal;
}

void BM_MatvecScaling(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const std::size_t m = n * n;
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 62));
  DistVector<double> x(grid, n, Align::Cols);
  x.load(random_vector(n, 63));

  double sim = 0;
  for (auto _ : state) {
    cube.clock().reset();
    benchmark::DoNotOptimize(matvec_fused(A, x));
    sim = cube.clock().now_us();
  }
  const double p = cube.procs();
  const double lgp = std::max(1.0, static_cast<double>(d));
  const double serial = 2.0 * static_cast<double>(m) * cube.costs().flop_us;
  state.counters["m_over_plgp"] = static_cast<double>(m) / (p * lgp);
  state.counters["sim_us"] = sim;
  state.counters["pT_over_serial"] = p * sim / serial;
}

}  // namespace

// Fixed m = 256² = 65536, p from 1 to 4096: the m = p·lg p knee sits
// around d = 12 (4096·12 ≈ 49k); the ratio columns show the regime change.
BENCHMARK(BM_ReduceScaling)
    ->ArgsProduct({{0, 2, 4, 6, 8, 10, 12}, {256}})
    ->Iterations(1);
// And a smaller matrix, m = 64² = 4096, where the knee is at d ≈ 9.
BENCHMARK(BM_ReduceScaling)
    ->ArgsProduct({{0, 2, 4, 6, 8, 10, 12}, {64}})
    ->Iterations(1);
BENCHMARK(BM_MatvecScaling)
    ->ArgsProduct({{0, 2, 4, 6, 8, 10, 12}, {256}})
    ->Iterations(1);

BENCHMARK_MAIN();
