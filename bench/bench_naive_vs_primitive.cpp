// E2 — naive general-router implementations vs the optimized primitives:
// the paper's "almost an order of magnitude" claim.
//
// Counters:
//   sim_naive_us  simulated time of the router-based implementation
//   sim_fast_us   simulated time of the primitive implementation
//   speedup       sim_naive_us / sim_fast_us (the paper's headline column)
//   router_hops   packet-hops pushed through the general router
// Each case embeds both cost profiles ("naive", "fast"), so the JSON shows
// where the router implementation spends its time (router_us under the
// naive_* region) against the optimized comm/compute split.
#include "harness.hpp"
#include "vmprim.hpp"

namespace {

using namespace vmp;

struct Fixture {
  Fixture(int d, std::size_t n)
      : cube(d, CostParams::cm2()),
        grid(Grid::square(cube)),
        A(grid, n, n),
        lin(grid, n, Align::Linear),
        cols(grid, n, Align::Cols) {
    A.load(random_matrix(n, n, 21));
    const std::vector<double> hv = random_vector(n, 22);
    lin.load(hv);
    cols.load(hv);
  }
  Cube cube;
  Grid grid;
  DistMatrix<double> A;
  DistVector<double> lin, cols;
};

/// Time `naive()` then `fast()` on a fresh clock each, capture both
/// profiles, and emit the standard counters.
template <class NaiveFn, class FastFn>
void versus(bench::Case& c, Cube& cube, NaiveFn&& naive, FastFn&& fast) {
  cube.clock().reset();
  naive();
  const double naive_us = cube.clock().now_us();
  const double hops = static_cast<double>(cube.clock().stats().router_hops);
  c.profile("naive", cube.clock());

  cube.clock().reset();
  fast();
  const double fast_us = cube.clock().now_us();
  c.profile("fast", cube.clock());

  c.counter("sim_naive_us", naive_us);
  c.counter("sim_fast_us", fast_us);
  c.counter("speedup", naive_us / fast_us);
  c.counter("router_hops", hops);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_naive_vs_primitive", argc, argv);

  // 16 and 64 processors only: the router simulation is expensive.
  for (int d : h.dims({4, 6}, {4}))
    for (std::size_t n : h.sizes({32, 64, 128}, {32})) {
      const auto nn = static_cast<std::int64_t>(n);
      h.run("distribute", {{"dim", d}, {"n", nn}}, [&](bench::Case& c) {
        Fixture f(d, n);
        versus(c, f.cube, [&] { (void)naive_distribute_rows(f.lin, n); },
               [&] { (void)distribute_rows(f.cols, n); });
      });
      h.run("reduce", {{"dim", d}, {"n", nn}}, [&](bench::Case& c) {
        Fixture f(d, n);
        versus(c, f.cube, [&] { (void)naive_reduce_cols_sum(f.A); },
               [&] { (void)reduce_cols(f.A, Plus<double>{}); });
      });
      h.run("extract_row", {{"dim", d}, {"n", nn}}, [&](bench::Case& c) {
        Fixture f(d, n);
        versus(c, f.cube, [&] { (void)naive_extract_row(f.A, n / 2); },
               [&] { (void)extract_row(f.A, n / 2); });
      });
      h.run("matvec", {{"dim", d}, {"n", nn}}, [&](bench::Case& c) {
        Fixture f(d, n);
        versus(c, f.cube, [&] { (void)naive_matvec(f.A, f.lin); },
               [&] { (void)matvec(f.A, f.cols); });
      });
    }

  // Application level: the whole Gaussian elimination, naive primitives vs
  // optimized primitives — the paper's actual order-of-magnitude claim.
  for (int d : h.dims({4, 6}, {4}))
    for (std::size_t n : h.sizes({16, 32, 64}, {16})) {
      h.run("gauss_application",
            {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
            [&](bench::Case& c) {
              Cube cube(d, CostParams::cm2());
              if (h.metrics()) cube.enable_metrics();
              Grid grid = Grid::square(cube);
              const HostMatrix H = diag_dominant_matrix(n, 23);
              DistMatrix<double> A1(grid, n, n, MatrixLayout::cyclic());
              DistMatrix<double> A2(grid, n, n, MatrixLayout::cyclic());
              versus(
                  c, cube,
                  [&] {
                    A1.load(H.data());
                    cube.clock().reset();  // exclude the load
                    (void)lu_factor_naive(A1);
                  },
                  [&] {
                    A2.load(H.data());
                    cube.clock().reset();
                    (void)lu_factor(A2);
                  });
              if (h.metrics())
                c.metrics(cube.metrics(), cube.clock().now_us());
            });
    }
  return h.finish();
}
