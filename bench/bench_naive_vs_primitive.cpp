// E2 — naive general-router implementations vs the optimized primitives:
// the paper's "almost an order of magnitude" claim.
//
// Counters:
//   sim_naive_us  simulated time of the router-based implementation
//   sim_fast_us   simulated time of the primitive implementation
//   speedup       sim_naive_us / sim_fast_us (the paper's headline column)
//   router_hops   packet-hops pushed through the general router
#include <benchmark/benchmark.h>

#include "vmprim.hpp"

namespace {

using namespace vmp;

struct Fixture {
  Fixture(int d, std::size_t n)
      : cube(d, CostParams::cm2()),
        grid(Grid::square(cube)),
        A(grid, n, n),
        lin(grid, n, Align::Linear),
        cols(grid, n, Align::Cols) {
    A.load(random_matrix(n, n, 21));
    const std::vector<double> hv = random_vector(n, 22);
    lin.load(hv);
    cols.load(hv);
  }
  Cube cube;
  Grid grid;
  DistMatrix<double> A;
  DistVector<double> lin, cols;
};

void report(benchmark::State& state, double naive_us, double fast_us,
            double hops) {
  state.counters["sim_naive_us"] = naive_us;
  state.counters["sim_fast_us"] = fast_us;
  state.counters["speedup"] = naive_us / fast_us;
  state.counters["router_hops"] = hops;
}

void BM_Distribute(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  double naive_us = 0, fast_us = 0, hops = 0;
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(naive_distribute_rows(f.lin, n));
    naive_us = f.cube.clock().now_us();
    hops = static_cast<double>(f.cube.clock().stats().router_hops);
    f.cube.clock().reset();
    benchmark::DoNotOptimize(distribute_rows(f.cols, n));
    fast_us = f.cube.clock().now_us();
  }
  report(state, naive_us, fast_us, hops);
}

void BM_Reduce(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  double naive_us = 0, fast_us = 0, hops = 0;
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(naive_reduce_cols_sum(f.A));
    naive_us = f.cube.clock().now_us();
    hops = static_cast<double>(f.cube.clock().stats().router_hops);
    f.cube.clock().reset();
    benchmark::DoNotOptimize(reduce_cols(f.A, Plus<double>{}));
    fast_us = f.cube.clock().now_us();
  }
  report(state, naive_us, fast_us, hops);
}

void BM_ExtractRow(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  double naive_us = 0, fast_us = 0, hops = 0;
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(naive_extract_row(f.A, n / 2));
    naive_us = f.cube.clock().now_us();
    hops = static_cast<double>(f.cube.clock().stats().router_hops);
    f.cube.clock().reset();
    benchmark::DoNotOptimize(extract_row(f.A, n / 2));
    fast_us = f.cube.clock().now_us();
  }
  report(state, naive_us, fast_us, hops);
}

void BM_Matvec(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)),
            static_cast<std::size_t>(state.range(1)));
  double naive_us = 0, fast_us = 0, hops = 0;
  for (auto _ : state) {
    f.cube.clock().reset();
    benchmark::DoNotOptimize(naive_matvec(f.A, f.lin));
    naive_us = f.cube.clock().now_us();
    hops = static_cast<double>(f.cube.clock().stats().router_hops);
    f.cube.clock().reset();
    benchmark::DoNotOptimize(matvec(f.A, f.cols));
    fast_us = f.cube.clock().now_us();
  }
  report(state, naive_us, fast_us, hops);
}

// Application level: the whole Gaussian elimination, naive primitives vs
// optimized primitives — the paper's actual order-of-magnitude claim.
void BM_GaussApplication(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  const HostMatrix H = diag_dominant_matrix(n, 23);
  double naive_us = 0, fast_us = 0;
  for (auto _ : state) {
    DistMatrix<double> A1(grid, n, n, MatrixLayout::cyclic());
    A1.load(H.data());
    cube.clock().reset();
    benchmark::DoNotOptimize(lu_factor_naive(A1));
    naive_us = cube.clock().now_us();

    DistMatrix<double> A2(grid, n, n, MatrixLayout::cyclic());
    A2.load(H.data());
    cube.clock().reset();
    benchmark::DoNotOptimize(lu_factor(A2));
    fast_us = cube.clock().now_us();
  }
  report(state, naive_us, fast_us, 0.0);
}

const std::vector<std::vector<std::int64_t>> kSweep = {
    {4, 6},        // 16 and 64 processors (router simulation is expensive)
    {32, 64, 128}  // matrix extent
};

}  // namespace

BENCHMARK(BM_GaussApplication)
    ->ArgsProduct({{4, 6}, {16, 32, 64}})
    ->Iterations(1);

BENCHMARK(BM_Distribute)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_Reduce)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_ExtractRow)->ArgsProduct(kSweep)->Iterations(1);
BENCHMARK(BM_Matvec)->ArgsProduct(kSweep)->Iterations(1);

BENCHMARK_MAIN();
