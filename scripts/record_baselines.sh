#!/usr/bin/env bash
# Record the perf-gate baselines: run every bench with the exact flags the
# gate in scripts/check.sh uses, then copy the BENCH_*.json reports into
# bench/baselines/.  Run this after an intentional perf change (or on a new
# reference machine), eyeball the diff, and commit the result together with
# the change that motivated it.
#
# Usage: scripts/record_baselines.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
DEST="bench/baselines"
BENCHES=(bench_ablation bench_collectives bench_gauss bench_kernels
         bench_matmul bench_matvec bench_naive_vs_primitive bench_primitives
         bench_scaling bench_simplex bench_spmv)

for b in "${BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$b" ]]; then
    echo "error: $BUILD_DIR/bench/$b not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

mkdir -p "$DEST"
for b in "${BENCHES[@]}"; do
  echo "=== recording $b"
  (cd "$WORK" && "$OLDPWD/$BUILD_DIR/bench/$b" \
      --quick --trials=3 --warmup=1 --metrics \
      --json="BENCH_${b}.json" > /dev/null)
  cp "$WORK/BENCH_${b}.json" "$DEST/"
done

echo "baselines written to $DEST/ — review with git diff and commit"
