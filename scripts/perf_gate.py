#!/usr/bin/env python3
"""Wall-clock perf-regression gate over vmp-bench-v1 reports.

Compares freshly measured bench reports against the committed baselines in
bench/baselines/ and FAILS (exit 1) when a case or a bench regresses past
its threshold.  Usage:

    scripts/perf_gate.py WORKDIR [--prefix=GATE_] [--baselines=DIR]
                         [--thresholds=FILE] [--verbose]

WORKDIR holds the current reports, named <prefix><bench>.json (the prefix
keeps gate sweeps apart from ad-hoc BENCH_*.json runs in the same
directory).  Cases are matched on (case name, args); cases present on only
one side simply don't participate, so adding a bench case does not require
re-recording every baseline.

Machine-speed normalization: baselines are recorded on SOME machine, the
gate runs on ANOTHER (a CI runner, a laptop).  The gate therefore computes
one global speed factor — the median of per-case wall-clock ratios
current/baseline across every matched case — and judges each case by its
NORMALIZED ratio (raw ratio / speed factor).  A uniformly slower machine
moves the median, not the verdicts; a case that regressed relative to its
peers sticks out regardless of the hardware.  The flip side, by
construction: a perfectly uniform slowdown of every case at once is
indistinguishable from a slower machine and will not trip the gate — that
is what the bench-level check and the committed baselines' provenance are
for.

Thresholds come from bench/baselines/thresholds.json:

    {
      "default":  {"case_ratio": 1.75, "bench_ratio": 1.6,
                   "min_case_ms": 1.0, "min_bench_ms": 1.0},
      "benches":  {"bench_gauss": {"case_ratio": 2.0}},
      "cases":    {"bench_primitives/pool_steady_state/dim=8":
                   {"case_ratio": 3.0}}
    }

Lookup is case -> bench -> default; cases (bench totals) whose baseline
wall time is below min_case_ms (min_bench_ms) are reported but never gate
(sub-millisecond timings on shared runners are noise, and the repo's
dispatch-latency budget is enforced by its own bench + docs/perf.md, not
by this gate).
"""

import argparse
import json
import statistics
import sys
from pathlib import Path

DEFAULTS = {"case_ratio": 1.75, "bench_ratio": 1.6, "min_case_ms": 1.0,
            "min_bench_ms": 1.0}


def case_key(case):
    return (case["name"], tuple(sorted(case["args"].items())))


def case_label(bench, case):
    args = "/".join(f"{k}={v}" for k, v in sorted(case["args"].items()))
    return f"{bench}/{case['name']}" + (f"/{args}" if args else "")


def load_thresholds(path):
    spec = {"default": dict(DEFAULTS), "benches": {}, "cases": {}}
    if path.exists():
        loaded = json.loads(path.read_text())
        spec["default"].update(loaded.get("default", {}))
        spec["benches"] = loaded.get("benches", {})
        spec["cases"] = loaded.get("cases", {})
    return spec


def threshold(spec, bench, label, key):
    for scope in (spec["cases"].get(label, {}),
                  spec["benches"].get(bench, {}),
                  spec["default"]):
        if key in scope:
            return scope[key]
    return DEFAULTS[key]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("workdir", type=Path)
    ap.add_argument("--prefix", action="append", default=None,
                    help="report-name prefix; repeatable — with several "
                         "prefixes each case is judged on its MINIMUM wall "
                         "time across the sweeps (noise only inflates "
                         "timings, so min-of-N is the robust statistic). "
                         "Default: GATE_")
    ap.add_argument("--baselines", type=Path, default=Path("bench/baselines"))
    ap.add_argument("--thresholds", type=Path, default=None)
    ap.add_argument("--verbose", action="store_true",
                    help="print every matched case, not just failures")
    args = ap.parse_args()
    prefixes = args.prefix or ["GATE_"]
    thresholds_path = args.thresholds or args.baselines / "thresholds.json"
    spec = load_thresholds(thresholds_path)

    baselines = sorted(args.baselines.glob("BENCH_*.json"))
    if not baselines:
        print(f"perf gate: no baselines under {args.baselines} — nothing to "
              "gate (record them with scripts/record_baselines.sh)")
        return 0

    # Pass 1: collect per-case ratios across every bench for the global
    # machine-speed factor.
    matched = []  # (bench, label, base_ms, cur_ms)
    missing_current = []
    for base_path in baselines:
        bench = base_path.stem.removeprefix("BENCH_")
        cur_paths = [p for prefix in prefixes
                     if (p := args.workdir / f"{prefix}{bench}.json").exists()]
        if not cur_paths:
            missing_current.append(bench)
            continue
        base = json.loads(base_path.read_text())
        cur_ms = {}
        for cur_path in cur_paths:
            for c in json.loads(cur_path.read_text())["cases"]:
                k = case_key(c)
                cur_ms[k] = min(cur_ms.get(k, c["wall_ms"]), c["wall_ms"])
        for bc in base["cases"]:
            ms = cur_ms.get(case_key(bc))
            if ms is None or bc["wall_ms"] <= 0.0:
                continue
            matched.append((bench, case_label(bench, bc), bc["wall_ms"], ms))
    if missing_current:
        print("perf gate: FAIL — baselines exist but no current report for: "
              + ", ".join(missing_current))
        return 1
    if not matched:
        print("perf gate: FAIL — no cases matched any baseline")
        return 1

    # Speed factor over the gated (>= min_case_ms) cases only — the
    # sub-millisecond cases are exactly the noisy ones.
    sized = [(bench, label, b, c) for bench, label, b, c in matched
             if b >= threshold(spec, bench, label, "min_case_ms")]
    speed = statistics.median(c / b for _, _, b, c in (sized or matched))

    # Pass 2: judge.
    failures = []
    rows = []
    per_bench = {}
    for bench, label, b_ms, c_ms in matched:
        ratio = c_ms / b_ms
        norm = ratio / speed
        limit = threshold(spec, bench, label, "case_ratio")
        min_ms = threshold(spec, bench, label, "min_case_ms")
        gated = b_ms >= min_ms
        ok = (not gated) or norm <= limit
        rows.append((label, b_ms, c_ms, norm, limit, gated, ok))
        agg = per_bench.setdefault(bench, [0.0, 0.0])
        agg[0] += b_ms
        agg[1] += c_ms
        if not ok:
            failures.append(label)

    for bench, (b_ms, c_ms) in sorted(per_bench.items()):
        norm = (c_ms / b_ms) / speed
        limit = threshold(spec, bench, "", "bench_ratio")
        gated = b_ms >= threshold(spec, bench, "", "min_bench_ms")
        ok = (not gated) or norm <= limit
        if not ok:
            failures.append(f"{bench} (bench total)")
        mark = "ok  " if ok else "FAIL"
        note = "" if gated else "  (below min_bench_ms, informational)"
        print(f"  {mark} {bench:<28} baseline {b_ms:9.2f} ms -> current "
              f"{c_ms:9.2f} ms  normalized x{norm:5.2f} "
              f"(limit x{limit:.2f}){note}")

    shown = [r for r in rows if args.verbose or not r[6]]
    if shown:
        print(f"  {'case':<52} {'base ms':>9} {'cur ms':>9} "
              f"{'norm':>6} {'limit':>6}")
        for label, b_ms, c_ms, norm, limit, gated, ok in shown:
            mark = "ok  " if ok else "FAIL"
            note = "" if gated else "  (below min_case_ms, informational)"
            print(f"  {mark} {label:<47} {b_ms:9.2f} {c_ms:9.2f} "
                  f"x{norm:5.2f} x{limit:4.2f}{note}")

    n_gated = sum(1 for r in rows if r[5])
    print(f"perf gate: {len(matched)} matched cases ({n_gated} gated), "
          f"machine-speed factor x{speed:.2f}")
    if failures:
        print("perf gate: FAIL — regressions past threshold:")
        for f in failures:
            print(f"  - {f}")
        print("(if intentional — e.g. an accepted trade-off — re-record with "
              "scripts/record_baselines.sh and commit the new baselines)")
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
