#!/usr/bin/env bash
# Full repository verification:
#   1. tier-1: configure, build, run the quick label first (the sub-minute
#      inner loop), then the complete test suite;
#   2. an address+undefined sanitizer build of the library, the tracer
#      test binary and one benchmark, with the tests re-run under ASan/UBSan;
#   3. one benchmark in --quick mode (plus a --faults rerun), with its
#      BENCH_*.json report and the exported Chrome trace validated against
#      their schemas.
#
# Usage: scripts/check.sh [--no-sanitize] [--quick-only] [--tsan]
#
# --tsan adds a ThreadSanitizer build of the whole tree and re-runs the
# quick-label tests under VMP_THREADS=4, so every team step really runs
# multi-lane while TSan watches the publish/park protocol.  Opt-in (it
# roughly doubles the build); CI runs it on every push.
set -euo pipefail

cd "$(dirname "$0")/.."
NO_SANITIZE=0
QUICK_ONLY=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) NO_SANITIZE=1 ;;
    --quick-only) QUICK_ONLY=1 ;;
    --tsan) TSAN=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
echo "-- quick label (ctest -L quick) --"
(cd build && ctest -L quick --output-on-failure -j "$(nproc)")
if [[ "$QUICK_ONLY" == 1 ]]; then
  echo "== quick checks passed (skipping the rest: --quick-only) =="
  exit 0
fi
echo "-- full suite --"
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$NO_SANITIZE" == 0 ]]; then
  echo "== sanitizer build (address,undefined) =="
  cmake -B build-asan -S . -DVMP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j --target test_trace test_accounting \
    bench_naive_vs_primitive >/dev/null
  ./build-asan/tests/test_trace
  ./build-asan/tests/test_accounting \
    --gtest_filter='Accounting.*:Charging.*:Threading.*'
fi

if [[ "$TSAN" == 1 ]]; then
  echo "== thread-sanitizer build: quick label under VMP_THREADS=4 =="
  cmake -B build-tsan -S . -DVMP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j >/dev/null
  (cd build-tsan && VMP_THREADS=4 ctest -L quick --output-on-failure \
    -j "$(nproc)")
fi

echo "== bench smoke: --quick run + report validation =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$OLDPWD"/build/bench/bench_naive_vs_primitive --quick)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_gauss --quick)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_primitives --quick --dims=4 \
  --sizes=64)
# The same primitives under the standard transient fault plan: recovery
# must stay within budget and the report must carry fault attribution.
(cd "$workdir" && "$OLDPWD"/build/bench/bench_primitives --quick --dims=4 \
  --sizes=64 --faults --json=BENCH_bench_primitives_faults.json)

python3 - "$workdir" <<'EOF'
import json, math, sys
from pathlib import Path

workdir = Path(sys.argv[1])

def require(cond, msg):
    if not cond:
        raise SystemExit(f"schema check failed: {msg}")

def check_profile(p, where):
    require(p["schema"] == "vmp-profile-v1", f"{where}: profile schema")
    require({"name", "startup_us", "per_elem_us", "flop_us",
             "router_startup_us"} <= p["cost_model"].keys(),
            f"{where}: cost_model keys")
    t = p["totals"]
    for k in ("now_us", "comm_us", "compute_us", "router_us", "host_us",
              "comm_steps", "messages", "elements_moved", "flops_charged",
              "router_hops", "fault_retries", "fault_chksum_fails",
              "fault_reroutes", "alloc_bytes", "pool_hits", "pool_misses"):
        require(k in t, f"{where}: totals.{k}")
    # Conservation: region self buckets must sum to the global totals.
    sums = {k: 0.0 for k in ("comm_us", "compute_us", "router_us", "host_us")}
    for r in p["regions"]:
        require({"path", "self", "total"} <= r.keys(), f"{where}: region keys")
        for k in sums:
            sums[k] += r["self"][k]
    for k, v in sums.items():
        require(math.isclose(v, t[k], rel_tol=1e-9, abs_tol=1e-9),
                f"{where}: region {k} sum {v} != total {t[k]}")
    require(math.isclose(sum(sums.values()), t["now_us"],
                         rel_tol=1e-9, abs_tol=1e-9),
            f"{where}: bucket sums != now_us")

benches = sorted(workdir.glob("BENCH_*.json"))
require(benches, "no BENCH_*.json written")
for path in benches:
    d = json.loads(path.read_text())
    require(d["schema"] == "vmp-bench-v1", f"{path.name}: bench schema")
    require({"seed", "faults"} <= d.keys(), f"{path.name}: seed/faults keys")
    require(d["cases"], f"{path.name}: no cases")
    for case in d["cases"]:
        require({"name", "args", "wall_ms", "counters"} <= case.keys(),
                f"{path.name}: case keys")
        for key, prof in case.get("profiles", {}).items():
            check_profile(prof, f"{path.name}:{case['name']}:{key}")
    print(f"  {path.name}: {len(d['cases'])} cases ok")

# The naive-vs-primitive report must show the router/comm contrast.
nvp = json.loads((workdir / "BENCH_bench_naive_vs_primitive.json").read_text())
for case in nvp["cases"]:
    naive, fast = case["profiles"]["naive"], case["profiles"]["fast"]
    require(naive["totals"]["router_us"] > 0,
            f"{case['name']}: naive side must pay router time")
    require(fast["totals"]["router_us"] == 0,
            f"{case['name']}: optimized side must not use the router")
    require(fast["totals"]["comm_us"] + fast["totals"]["compute_us"] > 0,
            f"{case['name']}: optimized side must pay comm/compute")
print("  naive-vs-primitive router/comm contrast ok")

# Zero-allocation steady state: the primitive bench hot loop must be pure
# pool hits once the staging slots are warm (no --faults here; retries are
# allowed to stage recovery scratch).
prim = json.loads((workdir / "BENCH_bench_primitives.json").read_text())
pool_cases = [c for c in prim["cases"] if c["name"] == "pool_steady_state"]
require(pool_cases, "bench_primitives: no pool_steady_state case")
for case in pool_cases:
    cnt = case["counters"]
    require(cnt["pool_misses"] == 0,
            f"pool_steady_state: {cnt['pool_misses']} steady-state misses")
    require(cnt["pool_hits"] > 0, "pool_steady_state: no pool hits recorded")
print("  bench_primitives steady-state pool hits == 100% ok")

trace = json.loads((workdir / "gauss_trace.json").read_text())
xs = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
ts = [e["ts"] for e in xs]
require(ts and ts == sorted(ts), "gauss_trace.json: ts not monotone")
print(f"  gauss_trace.json: {len(xs)} events, monotone ok")
EOF

echo "== perf trajectory: wall-clock vs bench/baselines =="
# Re-run every tracked bench with the exact sweep its baseline was recorded
# with, then print a one-line delta per bench (matched case by case on
# name+args, so cases added since a baseline simply don't participate).
# Informational: the table makes the perf trajectory visible; it does not
# gate the check.
(cd "$workdir" && "$OLDPWD"/build/bench/bench_matvec --dims=4,6,8 \
  --sizes=1024 --trials=3 --json=PERF_bench_matvec.json)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_primitives --dims=4,6,8 \
  --sizes=1024 --trials=3 --json=PERF_bench_primitives.json)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_collectives --dims=4,8 \
  --sizes=1024 --trials=3 --json=PERF_bench_collectives.json)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_gauss --dims=4,6,8 \
  --sizes=128 --trials=3 --json=PERF_bench_gauss.json)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_ablation --dims=4,8 \
  --sizes=512 --trials=3 --json=PERF_bench_ablation.json)
python3 - "$workdir" <<'EOF'
import json, sys
from pathlib import Path

workdir = Path(sys.argv[1])
for name in ("bench_matvec", "bench_primitives", "bench_collectives",
             "bench_gauss", "bench_ablation"):
    base_path = Path("bench/baselines") / f"BENCH_{name}.json"
    if not base_path.exists():
        print(f"  {name}: no baseline at {base_path}, skipping")
        continue
    base = json.loads(base_path.read_text())
    cur = json.loads((workdir / f"PERF_{name}.json").read_text())
    key = lambda c: (c["name"], tuple(sorted(c["args"].items())))
    cur_by_key = {key(c): c for c in cur["cases"]}
    b_ms = c_ms = 0.0
    matched = 0
    for bc in base["cases"]:
        cc = cur_by_key.get(key(bc))
        if cc is None:
            continue
        matched += 1
        b_ms += bc["wall_ms"]
        c_ms += cc["wall_ms"]
    if not matched:
        print(f"  {name}: no cases match the baseline sweep")
        continue
    delta = 100.0 * (c_ms - b_ms) / b_ms
    print(f"  {name}: {matched} cases, baseline {b_ms:8.2f} ms -> "
          f"current {c_ms:8.2f} ms  ({delta:+.1f}% wall)")
EOF

echo "== all checks passed =="
