#!/usr/bin/env bash
# Full repository verification:
#   1. tier-1: configure, build, run the quick label first (the sub-minute
#      inner loop), then the complete test suite;
#   2. an address+undefined sanitizer build of the library, the tracer
#      test binary and one benchmark, with the tests re-run under ASan/UBSan;
#   3. one benchmark in --quick mode (plus a --faults rerun), with its
#      BENCH_*.json report and the exported Chrome trace validated against
#      their schemas;
#   4. the perf-regression gate: every bench re-run with the baseline
#      recipe and diffed against bench/baselines/ by scripts/perf_gate.py
#      (machine-speed-normalized, per-case thresholds) — a regression past
#      threshold FAILS the check.  The same sweep's vmp-metrics-v1
#      sidecars and collapsed-stack exports are schema-validated.
#
# Usage: scripts/check.sh [--no-sanitize] [--quick-only] [--tsan]
#                         [--no-perf-gate]
#
# --tsan adds a ThreadSanitizer build of the whole tree and re-runs the
# quick-label tests under VMP_THREADS=4, so every team step really runs
# multi-lane while TSan watches the publish/park protocol.  Opt-in (it
# roughly doubles the build); CI runs it on every push.
set -euo pipefail

cd "$(dirname "$0")/.."
NO_SANITIZE=0
QUICK_ONLY=0
TSAN=0
NO_PERF_GATE=0
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) NO_SANITIZE=1 ;;
    --quick-only) QUICK_ONLY=1 ;;
    --tsan) TSAN=1 ;;
    --no-perf-gate) NO_PERF_GATE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
echo "-- quick label (ctest -L quick) --"
(cd build && ctest -L quick --output-on-failure -j "$(nproc)")
if [[ "$QUICK_ONLY" == 1 ]]; then
  echo "== quick checks passed (skipping the rest: --quick-only) =="
  exit 0
fi
echo "-- full suite --"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== kernel conformance with the SIMD backend disabled (VMP_SIMD=OFF) =="
# The conformance suite just ran against the compiled backend inside the
# tier-1 suite; this leg rebuilds the kernel layer with the scalar backend
# so the OFF configuration of the VMP_SIMD option is exercised too.
cmake -B build-nosimd -S . -DVMP_SIMD=OFF >/dev/null
cmake --build build-nosimd -j --target test_kernels >/dev/null
./build-nosimd/tests/test_kernels

if [[ "$NO_SANITIZE" == 0 ]]; then
  echo "== sanitizer build (address,undefined) =="
  cmake -B build-asan -S . -DVMP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j --target test_trace test_accounting \
    test_kernels test_cg test_properties_random \
    bench_naive_vs_primitive >/dev/null
  ./build-asan/tests/test_trace
  ./build-asan/tests/test_accounting \
    --gtest_filter='Accounting.*:Charging.*:Threading.*'
  # The conformance battery under ASan/UBSan covers every SIMD entry point
  # (unaligned bases, tails, type-erased gathers) in both toggle states.
  ./build-asan/tests/test_kernels
  # The sparse storage paths (CSR tiles, triple exchange, reembed) and the
  # storage-generic CG, under ASan/UBSan.
  ./build-asan/tests/test_cg
  ./build-asan/tests/test_properties_random \
    --gtest_filter='*Sparse*:*Reembed*'
fi

if [[ "$TSAN" == 1 ]]; then
  echo "== thread-sanitizer build: quick label under VMP_THREADS=4 =="
  cmake -B build-tsan -S . -DVMP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j >/dev/null
  (cd build-tsan && VMP_THREADS=4 ctest -L quick --output-on-failure \
    -j "$(nproc)")
fi

echo "== bench smoke: --quick run + report validation =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$OLDPWD"/build/bench/bench_naive_vs_primitive --quick)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_gauss --quick)
(cd "$workdir" && "$OLDPWD"/build/bench/bench_primitives --quick --dims=4 \
  --sizes=64)
# The same primitives under the standard transient fault plan: recovery
# must stay within budget and the report must carry fault attribution.
(cd "$workdir" && "$OLDPWD"/build/bench/bench_primitives --quick --dims=4 \
  --sizes=64 --faults --json=BENCH_bench_primitives_faults.json)

python3 - "$workdir" <<'EOF'
import json, math, sys
from pathlib import Path

workdir = Path(sys.argv[1])

def require(cond, msg):
    if not cond:
        raise SystemExit(f"schema check failed: {msg}")

def check_profile(p, where):
    require(p["schema"] == "vmp-profile-v1", f"{where}: profile schema")
    require({"name", "startup_us", "per_elem_us", "flop_us",
             "router_startup_us"} <= p["cost_model"].keys(),
            f"{where}: cost_model keys")
    t = p["totals"]
    for k in ("now_us", "comm_us", "compute_us", "router_us", "host_us",
              "comm_steps", "messages", "elements_moved", "flops_charged",
              "router_hops", "fault_retries", "fault_chksum_fails",
              "fault_reroutes", "alloc_bytes", "pool_hits", "pool_misses"):
        require(k in t, f"{where}: totals.{k}")
    # Conservation: region self buckets must sum to the global totals.
    sums = {k: 0.0 for k in ("comm_us", "compute_us", "router_us", "host_us")}
    for r in p["regions"]:
        require({"path", "self", "total"} <= r.keys(), f"{where}: region keys")
        for k in sums:
            sums[k] += r["self"][k]
    for k, v in sums.items():
        require(math.isclose(v, t[k], rel_tol=1e-9, abs_tol=1e-9),
                f"{where}: region {k} sum {v} != total {t[k]}")
    require(math.isclose(sum(sums.values()), t["now_us"],
                         rel_tol=1e-9, abs_tol=1e-9),
            f"{where}: bucket sums != now_us")

benches = sorted(workdir.glob("BENCH_*.json"))
require(benches, "no BENCH_*.json written")
for path in benches:
    d = json.loads(path.read_text())
    require(d["schema"] == "vmp-bench-v1", f"{path.name}: bench schema")
    require({"seed", "faults"} <= d.keys(), f"{path.name}: seed/faults keys")
    require(d["cases"], f"{path.name}: no cases")
    for case in d["cases"]:
        require({"name", "args", "wall_ms", "counters"} <= case.keys(),
                f"{path.name}: case keys")
        for key, prof in case.get("profiles", {}).items():
            check_profile(prof, f"{path.name}:{case['name']}:{key}")
    print(f"  {path.name}: {len(d['cases'])} cases ok")

# The naive-vs-primitive report must show the router/comm contrast.
nvp = json.loads((workdir / "BENCH_bench_naive_vs_primitive.json").read_text())
for case in nvp["cases"]:
    naive, fast = case["profiles"]["naive"], case["profiles"]["fast"]
    require(naive["totals"]["router_us"] > 0,
            f"{case['name']}: naive side must pay router time")
    require(fast["totals"]["router_us"] == 0,
            f"{case['name']}: optimized side must not use the router")
    require(fast["totals"]["comm_us"] + fast["totals"]["compute_us"] > 0,
            f"{case['name']}: optimized side must pay comm/compute")
print("  naive-vs-primitive router/comm contrast ok")

# Zero-allocation steady state: the primitive bench hot loop must be pure
# pool hits once the staging slots are warm (no --faults here; retries are
# allowed to stage recovery scratch).
prim = json.loads((workdir / "BENCH_bench_primitives.json").read_text())
pool_cases = [c for c in prim["cases"] if c["name"] == "pool_steady_state"]
require(pool_cases, "bench_primitives: no pool_steady_state case")
for case in pool_cases:
    cnt = case["counters"]
    require(cnt["pool_misses"] == 0,
            f"pool_steady_state: {cnt['pool_misses']} steady-state misses")
    require(cnt["pool_hits"] > 0, "pool_steady_state: no pool hits recorded")
print("  bench_primitives steady-state pool hits == 100% ok")

trace = json.loads((workdir / "gauss_trace.json").read_text())
xs = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
ts = [e["ts"] for e in xs]
require(ts and ts == sorted(ts), "gauss_trace.json: ts not monotone")
print(f"  gauss_trace.json: {len(xs)} events, monotone ok")
EOF

if [[ "$NO_PERF_GATE" == 0 ]]; then
  echo "== perf-regression gate: bench sweep vs bench/baselines =="
  # Re-run every bench with the exact recipe scripts/record_baselines.sh
  # uses to record the committed baselines, with --metrics on so the sweep
  # also exercises the metrics layer end to end.  scripts/perf_gate.py then
  # matches cases by name+args, normalizes out machine speed, and FAILS on
  # any case or bench past its threshold (bench/baselines/thresholds.json).
  # Two sweeps: the gate judges each case on its minimum wall time across
  # them (noise only inflates single-trial timings, so min-of-2 is the
  # robust statistic).  Only the first carries --metrics.
  GATE_BENCHES=(bench_ablation bench_collectives bench_gauss bench_kernels
                bench_matmul bench_matvec bench_naive_vs_primitive
                bench_primitives bench_scaling bench_simplex bench_spmv)
  for b in "${GATE_BENCHES[@]}"; do
    (cd "$workdir" && "$OLDPWD/build/bench/$b" \
        --quick --trials=3 --warmup=1 --metrics \
        --json="GATE_${b}.json" > /dev/null)
    (cd "$workdir" && "$OLDPWD/build/bench/$b" \
        --quick --trials=3 --warmup=1 \
        --json="GATE2_${b}.json" > /dev/null)
  done

  # The sweep ran with --metrics: every report must carry embedded
  # vmp-metrics-v1 snapshots plus a METRICS_*.json series sidecar, and
  # bench_gauss must export its collapsed flame stacks.
  python3 - "$workdir" <<'EOF'
import json, sys
from pathlib import Path

workdir = Path(sys.argv[1])

def require(cond, msg):
    if not cond:
        raise SystemExit(f"metrics check failed: {msg}")

def check_snapshot(doc, where):
    require(doc["schema"] == "vmp-metrics-v1", f"{where}: schema")
    require(doc["kind"] == "snapshot", f"{where}: kind")
    require(doc["metrics"], f"{where}: empty metrics")
    names = {m["name"] for m in doc["metrics"]}
    require("engine.steps" in names, f"{where}: engine.steps missing")
    for m in doc["metrics"]:
        require(m["class"] in ("sim", "wall"), f"{where}: class {m['class']}")

for path in sorted(workdir.glob("GATE_*.json")):
    d = json.loads(path.read_text())
    require(d.get("metrics") is True, f"{path.name}: metrics flag not set")
    with_snap = [c for c in d["cases"] if "metrics" in c]
    require(with_snap, f"{path.name}: no case embeds a metrics snapshot")
    for c in with_snap:
        check_snapshot(c["metrics"], f"{path.name}:{c['name']}")
    series_path = workdir / path.name.replace("GATE_", "METRICS_")
    require(series_path.exists(), f"{series_path.name}: sidecar missing")
    series = json.loads(series_path.read_text())
    require(series["schema"] == "vmp-metrics-v1" and
            series["kind"] == "series", f"{series_path.name}: series header")
    require(len(series["samples"]) == len(with_snap),
            f"{series_path.name}: sample count != instrumented cases")
    for s in series["samples"]:
        check_snapshot(s["snapshot"], f"{series_path.name}:{s['label']}")
    print(f"  {path.name}: {len(with_snap)} metric snapshots + series ok")

flame = workdir / "gauss_flame.collapsed"
require(flame.exists(), "gauss_flame.collapsed not written")
lines = flame.read_text().splitlines()
require(lines, "gauss_flame.collapsed empty")
for ln in lines:
    stack, _, n = ln.rpartition(" ")
    require(stack and n.isdigit(), f"bad collapsed line: {ln!r}")
print(f"  gauss_flame.collapsed: {len(lines)} stacks ok")
EOF

  python3 scripts/perf_gate.py "$workdir" --prefix=GATE_ --prefix=GATE2_
else
  echo "== perf-regression gate skipped (--no-perf-gate) =="
fi

echo "== all checks passed =="
