// Example: linear least squares via the normal equations, composed
// entirely from the library's vocabulary:
//
//   Aᵀ        — transpose            (stable dimension permutation)
//   AᵀA       — matmul               (rank-1 composition of the primitives)
//   Aᵀb       — vecmat               (the paper's vector-matrix multiply)
//   solve     — conjugate gradient   (AᵀA is SPD when A has full rank)
//
//   ./build/examples/least_squares [rows] [cols] [cube_dim]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "vmprim.hpp"

int main(int argc, char** argv) {
  using namespace vmp;
  const std::size_t m = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;
  const int d = argc > 3 ? std::atoi(argv[3]) : 6;

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  std::printf("least squares: fit %zu observations with %zu parameters on "
              "%u processors\n",
              m, n, cube.node_count());

  // Planted model: b = A·x* + noise.
  SplitMix64 rng(7);
  std::vector<double> ha(m * n), xstar(n), hb(m);
  for (double& a : ha) a = rng.uniform(-1.0, 1.0);
  for (double& x : xstar) x = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += ha[i * n + j] * xstar[j];
    hb[i] = s + 0.01 * rng.uniform(-1.0, 1.0);
  }

  DistMatrix<double> A(grid, m, n);
  A.load(ha);
  DistVector<double> b(grid, m, Align::Rows);
  b.load(hb);

  cube.clock().reset();
  const DistMatrix<double> At = transpose(A);
  const DistMatrix<double> AtA = matmul(At, A);
  const DistVector<double> Atb = vecmat_fused(b, A);  // bᵀA = (Aᵀb)ᵀ
  const CgResult fit = conjugate_gradient(AtA, Atb.to_host(), {1e-12, 0});
  const double t_total = cube.clock().now_us();

  if (!fit.converged) {
    std::printf("CG did not converge!\n");
    return 1;
  }
  double err = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    err = std::max(err, std::abs(fit.x[j] - xstar[j]));
  std::printf("  CG converged in %zu iterations\n", fit.iterations);
  std::printf("  max |x - x*| = %.4f (noise level 0.01)\n", err);
  std::printf("  simulated time: %.1f us (transpose + matmul + vecmat + CG)\n",
              t_total);
  return err < 0.1 ? 0 : 1;
}
