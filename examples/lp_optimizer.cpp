// Example: a production-planning linear program solved with the
// distributed simplex algorithm (the paper's third application).
//
// A plant makes `nvars` products; each consumes capacity on `ncons`
// machines.  Maximize profit subject to machine capacities.
//
//   ./build/examples/lp_optimizer [ncons] [nvars] [cube_dim]
#include <cstdio>
#include <cstdlib>

#include "vmprim.hpp"

int main(int argc, char** argv) {
  using namespace vmp;
  const std::size_t ncons = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const std::size_t nvars = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;
  const int d = argc > 3 ? std::atoi(argv[3]) : 6;

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);

  // Capacity model: machine i spends A[i][j] hours per unit of product j,
  // has b[i] hours available; product j earns c[j].
  SplitMix64 rng(2026);
  LpProblem lp;
  lp.ncons = ncons;
  lp.nvars = nvars;
  lp.A.resize(ncons * nvars);
  lp.b.resize(ncons);
  lp.c.resize(nvars);
  for (double& a : lp.A) a = rng.uniform(0.2, 2.0);
  for (double& c : lp.c) c = rng.uniform(1.0, 10.0);
  for (double& b : lp.b) b = rng.uniform(50.0, 200.0);

  std::printf("production LP: %zu machines x %zu products on %u processors\n",
              ncons, nvars, cube.node_count());

  cube.clock().reset();
  const LpSolution sol = simplex_solve(grid, lp);
  const double t_par = cube.clock().now_us();

  std::printf("  status: %s after %zu pivots (%zu in phase I)\n",
              to_string(sol.status), sol.iterations, sol.phase1_iterations);
  if (sol.status != LpStatus::Optimal) return 1;
  std::printf("  max profit: %.2f\n", sol.objective);
  std::printf("  nonzero production plan:\n");
  for (std::size_t j = 0; j < nvars; ++j)
    if (sol.x[j] > 1e-9)
      std::printf("    product %2zu: %8.3f units (profit %.1f each)\n", j,
                  sol.x[j], lp.c[j]);

  // Serial comparison: same pivots, same answer, serial tableau updates.
  const LpSolution sref = serial::simplex_solve(lp);
  std::printf("  serial solver agreement: objective %.6f vs %.6f, "
              "%zu vs %zu pivots\n",
              sref.objective, sol.objective, sref.iterations, sol.iterations);
  std::printf("  simulated parallel time: %.1f us (%.1f us per pivot)\n",
              t_par, t_par / static_cast<double>(sol.iterations));
  return 0;
}
