// Example: solve a dense linear system with the distributed Gaussian
// elimination built from the four primitives, check the residual, and
// compare the simulated parallel time against the serial reference.
//
//   ./build/examples/linear_solver [n] [cube_dim]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "vmprim.hpp"

int main(int argc, char** argv) {
  using namespace vmp;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const int d = argc > 2 ? std::atoi(argv[2]) : 6;

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  std::printf("solving a %zux%zu system on %u processors (%ux%u grid, "
              "cyclic embedding)\n",
              n, n, cube.node_count(), grid.prows(), grid.pcols());

  const HostMatrix H = diag_dominant_matrix(n, /*seed=*/7);
  const std::vector<double> b = random_vector(n, /*seed=*/8);

  DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
  A.load(H.data());

  cube.clock().reset();
  const DistLuResult lu = lu_factor(A);
  const double t_factor = cube.clock().now_us();
  if (lu.singular) {
    std::printf("matrix reported singular!\n");
    return 1;
  }
  const std::vector<double> x = lu_solve(A, lu, b);
  const double t_solve = cube.clock().now_us() - t_factor;

  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += H(i, j) * x[j];
    resid = std::max(resid, std::abs(s - b[i]));
  }

  // Serial reference cost: flops at the same t_a.
  HostMatrix Hs = H;
  const serial::LuResult slu = serial::lu_factor(Hs);
  const double t_serial =
      static_cast<double>(slu.flops) * cube.costs().flop_us;

  std::printf("  factor: %12.1f us simulated\n", t_factor);
  std::printf("  solve:  %12.1f us simulated\n", t_solve);
  std::printf("  residual ||Ax-b||_inf = %.3e\n", resid);
  std::printf("  serial factor (model): %10.1f us  ->  speedup %.1fx on %u "
              "procs (efficiency %.0f%%)\n",
              t_serial, t_serial / t_factor, cube.node_count(),
              100.0 * t_serial / t_factor / cube.node_count());
  return 0;
}
