// Example: dominant eigenvalue by power iteration — a composition of the
// primitive-built matrix-vector product with distributed vector operations
// (dot, scale), showing the primitives as a reusable vocabulary rather
// than a fixed pipeline.
//
//   ./build/examples/power_iteration [n] [cube_dim]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "vmprim.hpp"

int main(int argc, char** argv) {
  using namespace vmp;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const int d = argc > 2 ? std::atoi(argv[2]) : 6;

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);

  // Symmetric positive matrix with a planted dominant eigenpair:
  // A = 0.1·R + lambda·u·uᵀ with ||u|| = 1.
  SplitMix64 rng(42);
  const double lambda = 25.0;
  std::vector<double> u(n);
  double norm = 0.0;
  for (double& x : u) {
    x = rng.uniform(-1.0, 1.0);
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (double& x : u) x /= norm;
  std::vector<double> host(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double r = 0.1 * rng.uniform(-1.0, 1.0);
      host[i * n + j] = host[j * n + i] = r + lambda * u[i] * u[j];
    }

  DistMatrix<double> A(grid, n, n);
  A.load(host);

  // Start vector, Cols-aligned so matvec can consume it directly.
  DistVector<double> x(grid, n, Align::Cols);
  {
    std::vector<double> x0(n, 1.0);
    x.load(x0);
  }

  std::printf("power iteration on a %zux%zu matrix, %u processors\n", n, n,
              cube.node_count());
  cube.clock().reset();
  double estimate = 0.0;
  int iters = 0;
  for (; iters < 200; ++iters) {
    // y = A x (Rows-aligned), then re-embed for the next round.
    const DistVector<double> y = matvec_fused(A, x);
    const double nrm = std::sqrt(dot(y, y));
    DistVector<double> xnext = realign(y, Align::Cols);
    vec_scale(xnext, 1.0 / nrm);
    // Rayleigh quotient: xᵀAx with the normalized iterate.
    const DistVector<double> Ax = matvec_fused(A, xnext);
    const DistVector<double> xr = realign(xnext, Align::Rows);
    const double next = dot(xr, Ax);
    const bool done = std::abs(next - estimate) < 1e-10 * std::abs(next);
    estimate = next;
    x = std::move(xnext);
    if (done) break;
  }
  std::printf("  converged in %d iterations: lambda_max ~ %.6f "
              "(planted %.1f + O(0.1) noise)\n",
              iters + 1, estimate, lambda);
  std::printf("  simulated time: %.1f us total\n", cube.clock().now_us());
  return 0;
}
