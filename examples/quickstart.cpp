// Quickstart: build a simulated hypercube, embed a matrix and a vector on
// its processor grid, and run all four primitives — printing what each one
// costs on the simulated machine.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "vmprim.hpp"

int main() {
  using namespace vmp;

  // A 64-processor Boolean cube (dimension 6) with CM-2-flavoured costs,
  // arranged as an 8×8 processor grid.
  Cube cube(6, CostParams::cm2());
  Grid grid(cube, 3, 3);
  std::printf("machine: %u processors (logical cube dimension %d), "
              "'%s' network, %ux%u grid, cost preset '%s'\n\n",
              cube.node_count(), cube.dim(), cube.topology().name(),
              grid.prows(), grid.pcols(), cube.costs().name.c_str());

  // A 256x256 matrix, block-embedded: each processor owns a 32x32 block.
  const std::size_t n = 256;
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, /*seed=*/1));

  // A vector aligned with the matrix columns (replicated on every grid
  // row) — the embedding the primitives want.
  DistVector<double> v(grid, n, Align::Cols);
  v.load(random_vector(n, /*seed=*/2));

  const auto report = [&](const char* what) {
    static double last = 0.0;
    std::printf("%-46s %10.1f us simulated\n", what,
                cube.clock().now_us() - last);
    last = cube.clock().now_us();
  };

  // The four primitives, through the axis-generic API (reduce_rows,
  // distribute_rows, extract_row, insert_row are the named equivalents).
  const DistVector<double> row_sums = reduce(A, Axis::Row, Plus<double>{});
  report("reduce:     row sums of the 256x256 matrix");

  const DistMatrix<double> V = distribute(v, Axis::Row, n);
  report("distribute: v copied across all 256 rows");

  const DistVector<double> r17 = extract(A, Axis::Row, 17);
  report("extract:    row 17 pulled out as a vector");

  DistMatrix<double> B = A;  // copy, so A stays pristine
  insert(B, Axis::Row, 99, v);
  report("insert:     v written into row 99");

  // Composition: y = A·x as distribute -> elementwise multiply -> reduce.
  const DistVector<double> y = matvec(A, v);
  report("matvec:     y = A*v from the primitives");

  std::printf("\nresults live on the machine; host readback for checking:\n");
  std::printf("  row_sums[0] = %f\n", row_sums.to_host()[0]);
  std::printf("  y[0]        = %f\n", y.to_host()[0]);

  const SimStats& st = cube.clock().stats();
  std::printf("\ntraffic: %llu lockstep comm rounds, %llu messages, "
              "%llu elements moved, %llu flops charged\n",
              static_cast<unsigned long long>(st.comm_steps),
              static_cast<unsigned long long>(st.messages),
              static_cast<unsigned long long>(st.elements_moved),
              static_cast<unsigned long long>(st.flops_charged));
  return 0;
}
