// Example: spectral low-pass filtering with the distributed FFT — the
// signal-processing workload the Boolean cube's butterfly emulation was
// built for.  A noisy two-tone signal is transformed, the noise band
// zeroed, and the inverse transform recovers the clean tones.
//
//   ./build/examples/spectral_filter [log2_n] [cube_dim]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "vmprim.hpp"

int main(int argc, char** argv) {
  using namespace vmp;
  const int logn = argc > 1 ? std::atoi(argv[1]) : 10;
  const int d = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::size_t n = std::size_t{1} << logn;

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  std::printf("spectral filter: %zu samples on %u processors\n", n,
              cube.node_count());

  // Two clean tones + broadband noise.
  SplitMix64 rng(99);
  std::vector<cplx> signal(n);
  std::vector<double> clean(n);
  for (std::size_t g = 0; g < n; ++g) {
    const double t = static_cast<double>(g) / static_cast<double>(n);
    clean[g] = std::sin(2 * std::numbers::pi * 3 * t) +
               0.5 * std::sin(2 * std::numbers::pi * 7 * t);
    signal[g] = {clean[g] + 0.4 * rng.uniform(-1.0, 1.0), 0.0};
  }

  DistVector<cplx> v(grid, n, Align::Linear);
  v.load(signal);

  cube.clock().reset();
  fft(v);
  // Keep only the 16 lowest (and mirrored highest) frequency bins.
  const std::size_t cutoff = 16;
  vec_apply_indexed(v, [&](cplx x, std::size_t k) {
    const bool keep = k < cutoff || k >= n - cutoff;
    return keep ? x : cplx{0, 0};
  });
  ifft(v);
  const double t_total = cube.clock().now_us();

  // Filtered output should track the clean tones far better than the
  // noisy input did.
  const std::vector<cplx> out = v.to_host();
  double err_in = 0, err_out = 0;
  for (std::size_t g = 0; g < n; ++g) {
    err_in += std::pow(signal[g].real() - clean[g], 2);
    err_out += std::pow(out[g].real() - clean[g], 2);
  }
  err_in = std::sqrt(err_in / static_cast<double>(n));
  err_out = std::sqrt(err_out / static_cast<double>(n));
  std::printf("  rms error vs clean tones: %.4f noisy -> %.4f filtered "
              "(%.1fx better)\n",
              err_in, err_out, err_in / err_out);
  std::printf("  simulated time: %.1f us (fft + mask + ifft)\n", t_total);
  return err_out < err_in ? 0 : 1;
}
