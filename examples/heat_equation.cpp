// Example: 1-D heat equation, both ways the era solved it —
//   explicit:  forward Euler with a 3-point stencil (vec_shift fetches)
//   implicit:  backward Euler, a tridiagonal solve per step (parallel
//              cyclic reduction), unconditionally stable so it can take
//              the same total time in far fewer steps.
//
//   ./build/examples/heat_equation [n] [cube_dim]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "vmprim.hpp"

int main(int argc, char** argv) {
  using namespace vmp;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const int d = argc > 2 ? std::atoi(argv[2]) : 6;

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  std::printf("1-D heat equation, %zu grid points on %u processors\n", n,
              cube.node_count());

  // Initial condition: a hot spike in the middle; ends clamped to zero.
  std::vector<double> u0(n, 0.0);
  u0[n / 2] = 1.0;

  // -- explicit: u += nu (u_{i-1} - 2 u_i + u_{i+1}), nu = 0.25 -------------
  const double nu = 0.25;
  const int explicit_steps = 200;
  DistVector<double> u(grid, n, Align::Linear);
  u.load(u0);
  cube.clock().reset();
  for (int t = 0; t < explicit_steps; ++t) {
    const DistVector<double> left = vec_shift(u, -1);
    const DistVector<double> right = vec_shift(u, +1);
    DistVector<double> lap = left;
    vec_zip(lap, right, [](double l, double r) { return l + r; });
    vec_zip(lap, u, [nu](double s, double mid) { return nu * (s - 2 * mid); });
    vec_zip(u, lap, [](double x, double dx) { return x + dx; });
  }
  const double t_explicit = cube.clock().now_us();
  const std::vector<double> u_exp = u.to_host();

  // -- implicit: (I - nu_dt L) u' = u, one PCR tridiagonal solve per step ---
  // 10 steps of dt 20x larger cover the same physical time.
  const double big = nu * 20.0;
  const int implicit_steps = explicit_steps / 20;
  std::vector<double> a(n, -big), b(n, 1 + 2 * big), c(n, -big);
  a[0] = 0.0;
  c[n - 1] = 0.0;
  std::vector<double> ui = u0;
  cube.clock().reset();
  for (int t = 0; t < implicit_steps; ++t)
    ui = tridiag_solve_pcr(grid, a, b, c, ui);
  const double t_implicit = cube.clock().now_us();

  // Compare the two profiles (both approximate the same diffusion).
  double peak_exp = 0, peak_imp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    peak_exp = std::max(peak_exp, u_exp[i]);
    peak_imp = std::max(peak_imp, ui[i]);
  }
  std::printf("  explicit: %4d steps, %10.1f us simulated, peak %.4f\n",
              explicit_steps, t_explicit, peak_exp);
  std::printf("  implicit: %4d steps, %10.1f us simulated, peak %.4f\n",
              implicit_steps, t_implicit, peak_imp);
  std::printf("  (profiles agree to O(dt): peak ratio %.2f)\n",
              peak_exp / peak_imp);
  return 0;
}
