/// \file dist_matrix.hpp
/// \brief A dense matrix embedded load-balanced on the processor grid.
///
/// The partition geometry (which processor owns which (i, j), local block
/// extents, flop-charging bounds) lives in MatrixEmbedding and is shared
/// with the sparse storage; this class adds the dense payload: processor
/// (R, C) stores its owned intersection as a row-major local block in one
/// pooled slab arena.
#pragma once

#include <span>
#include <vector>

#include "comm/dist_buffer.hpp"
#include "core/kernels.hpp"
#include "embed/matrix_embedding.hpp"
#include "hypercube/check.hpp"

namespace vmp {

template <class T>
class DistMatrix {
 public:
  /// An nrows × ncols matrix of value-initialized elements.
  DistMatrix(Grid& grid, std::size_t nrows, std::size_t ncols,
             MatrixLayout layout = {})
      : embed_(grid, nrows, ncols, layout), data_(grid.cube()) {
    data_.reserve_each(max_block());
    grid.cube().each_proc([&](proc_t q) {
      data_.assign(q, lrows(q) * lcols(q), T{});
    });
  }

  [[nodiscard]] Grid& grid() const { return embed_.grid(); }
  [[nodiscard]] std::size_t nrows() const { return embed_.nrows(); }
  [[nodiscard]] std::size_t ncols() const { return embed_.ncols(); }
  [[nodiscard]] MatrixLayout layout() const { return embed_.layout(); }
  [[nodiscard]] const AxisMap& rowmap() const { return embed_.rowmap(); }
  [[nodiscard]] const AxisMap& colmap() const { return embed_.colmap(); }

  /// The storage-independent partition geometry.
  [[nodiscard]] const MatrixEmbedding& embedding() const { return embed_; }

  /// Local block extents of processor q.
  [[nodiscard]] std::size_t lrows(proc_t q) const { return embed_.lrows(q); }
  [[nodiscard]] std::size_t lcols(proc_t q) const { return embed_.lcols(q); }

  /// Largest local block over all processors (for flop charging):
  /// ⌈nrows/Pr⌉ · ⌈ncols/Pc⌉ under both partition kinds.
  [[nodiscard]] std::size_t max_block() const { return embed_.max_block(); }

  /// Row-major local block of processor q; element (lr, lc) is at
  /// lr * lcols(q) + lc.
  [[nodiscard]] std::span<T> block(proc_t q) { return data_.on(q); }
  [[nodiscard]] std::span<const T> block(proc_t q) const { return data_.on(q); }

  /// Reference to local element (lr, lc) of processor q.
  [[nodiscard]] T& local_at(proc_t q, std::size_t lr, std::size_t lc) {
    VMP_REQUIRE(lr < lrows(q) && lc < lcols(q), "local index out of range");
    return data_.tile(q)[lr * lcols(q) + lc];
  }
  [[nodiscard]] const T& local_at(proc_t q, std::size_t lr,
                                  std::size_t lc) const {
    VMP_REQUIRE(lr < lrows(q) && lc < lcols(q), "local index out of range");
    return data_.tile(q)[lr * lcols(q) + lc];
  }

  [[nodiscard]] DistBuffer<T>& data() { return data_; }
  [[nodiscard]] const DistBuffer<T>& data() const { return data_; }

  /// Owner processor of global element (i, j).
  [[nodiscard]] proc_t owner(std::size_t i, std::size_t j) const {
    return embed_.owner(i, j);
  }

  /// True if `other` lives on the same grid with the same shape and layout
  /// (so elementwise operations are purely local).
  [[nodiscard]] bool aligned_with(const DistMatrix& other) const {
    return embed_.same_as(other.embed_);
  }

  // -- host I/O (untimed) ---------------------------------------------------

  /// Load from a row-major host array of nrows*ncols elements.  Each local
  /// row is one contiguous (Block columns) or one strided (Cyclic columns)
  /// copy of a host-row slice — the 2-D analogue of DistVector::load.
  void load(std::span<const T> host) {
    VMP_REQUIRE(host.size() == nrows() * ncols(), "host array size mismatch");
    grid().cube().each_proc([&](proc_t q) {
      const std::uint32_t R = grid().prow(q);
      const std::uint32_t C = grid().pcol(q);
      const std::size_t lc_n = lcols(q);
      if (lc_n == 0) return;
      const std::size_t c0 = colmap().global_begin(C);
      const std::size_t cstep = colmap().global_step();
      const std::span<T> b = data_.tile(q);
      for (std::size_t lr = 0; lr < lrows(q); ++lr) {
        const std::size_t gi = rowmap().global(R, lr);
        const T* hrow = host.data() + gi * ncols() + c0;
        const std::span<T> brow = b.subspan(lr * lc_n, lc_n);
        if (cstep == 1) {
          kern::copy(std::span<const T>(hrow, lc_n), brow);
        } else {
          kern::gather_strided(hrow, cstep, brow);
        }
      }
    });
  }

  /// Read back to a row-major host array (inverse copies of `load`).
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(nrows() * ncols());
    grid().cube().each_proc([&](proc_t q) {
      const std::uint32_t R = grid().prow(q);
      const std::uint32_t C = grid().pcol(q);
      const std::size_t lc_n = lcols(q);
      if (lc_n == 0) return;
      const std::size_t c0 = colmap().global_begin(C);
      const std::size_t cstep = colmap().global_step();
      const std::span<const T> b = data_.tile(q);
      for (std::size_t lr = 0; lr < lrows(q); ++lr) {
        const std::size_t gi = rowmap().global(R, lr);
        T* hrow = out.data() + gi * ncols() + c0;
        const std::span<const T> brow = b.subspan(lr * lc_n, lc_n);
        if (cstep == 1) {
          kern::copy(brow, std::span<T>(hrow, lc_n));
        } else {
          kern::scatter_strided(brow, hrow, cstep);
        }
      }
    });
    return out;
  }

  /// Host-side single-element access (untimed; tests and setup only).
  [[nodiscard]] T at(std::size_t i, std::size_t j) const {
    const proc_t q = owner(i, j);
    return local_at(q, rowmap().local(i), colmap().local(j));
  }
  void set(std::size_t i, std::size_t j, const T& value) {
    const proc_t q = owner(i, j);
    local_at(q, rowmap().local(i), colmap().local(j)) = value;
  }

 private:
  MatrixEmbedding embed_;
  DistBuffer<T> data_;
};

}  // namespace vmp
