/// \file dist_matrix.hpp
/// \brief A dense matrix embedded load-balanced on the processor grid.
///
/// The global `nrows × ncols` matrix is split by one AxisMap per axis
/// (Block or Cyclic); processor (R, C) stores the intersection of row
/// partition R and column partition C as a row-major local block.  With
/// either partition kind every processor holds within one row/column of
/// `⌈nrows/Pr⌉ × ⌈ncols/Pc⌉` elements — the load-balanced embedding the
/// paper assumes.
#pragma once

#include <span>
#include <vector>

#include "comm/dist_buffer.hpp"
#include "core/kernels.hpp"
#include "embed/axis_map.hpp"
#include "embed/grid.hpp"
#include "hypercube/check.hpp"

namespace vmp {

/// Partition kinds for the two matrix axes.
struct MatrixLayout {
  Part rows = Part::Block;
  Part cols = Part::Block;

  [[nodiscard]] static MatrixLayout blocked() { return {}; }
  [[nodiscard]] static MatrixLayout cyclic() {
    return {Part::Cyclic, Part::Cyclic};
  }
  friend bool operator==(const MatrixLayout&, const MatrixLayout&) = default;
};

template <class T>
class DistMatrix {
 public:
  /// An nrows × ncols matrix of value-initialized elements.
  DistMatrix(Grid& grid, std::size_t nrows, std::size_t ncols,
             MatrixLayout layout = {})
      : grid_(&grid),
        layout_(layout),
        rowmap_(nrows, grid.prows(), layout.rows),
        colmap_(ncols, grid.pcols(), layout.cols),
        data_(grid.cube()) {
    data_.reserve_each(max_block());
    grid.cube().each_proc([&](proc_t q) {
      data_.assign(q, lrows(q) * lcols(q), T{});
    });
  }

  [[nodiscard]] Grid& grid() const { return *grid_; }
  [[nodiscard]] std::size_t nrows() const { return rowmap_.n(); }
  [[nodiscard]] std::size_t ncols() const { return colmap_.n(); }
  [[nodiscard]] MatrixLayout layout() const { return layout_; }
  [[nodiscard]] const AxisMap& rowmap() const { return rowmap_; }
  [[nodiscard]] const AxisMap& colmap() const { return colmap_; }

  /// Local block extents of processor q.
  [[nodiscard]] std::size_t lrows(proc_t q) const {
    return rowmap_.size(grid_->prow(q));
  }
  [[nodiscard]] std::size_t lcols(proc_t q) const {
    return colmap_.size(grid_->pcol(q));
  }

  /// Largest local block over all processors (for flop charging):
  /// ⌈nrows/Pr⌉ · ⌈ncols/Pc⌉ under both partition kinds.
  [[nodiscard]] std::size_t max_block() const {
    const std::size_t r = (nrows() + grid_->prows() - 1) / grid_->prows();
    const std::size_t c = (ncols() + grid_->pcols() - 1) / grid_->pcols();
    return r * c;
  }

  /// Row-major local block of processor q; element (lr, lc) is at
  /// lr * lcols(q) + lc.
  [[nodiscard]] std::span<T> block(proc_t q) { return data_.on(q); }
  [[nodiscard]] std::span<const T> block(proc_t q) const { return data_.on(q); }

  /// Reference to local element (lr, lc) of processor q.
  [[nodiscard]] T& local_at(proc_t q, std::size_t lr, std::size_t lc) {
    VMP_REQUIRE(lr < lrows(q) && lc < lcols(q), "local index out of range");
    return data_.tile(q)[lr * lcols(q) + lc];
  }
  [[nodiscard]] const T& local_at(proc_t q, std::size_t lr,
                                  std::size_t lc) const {
    VMP_REQUIRE(lr < lrows(q) && lc < lcols(q), "local index out of range");
    return data_.tile(q)[lr * lcols(q) + lc];
  }

  [[nodiscard]] DistBuffer<T>& data() { return data_; }
  [[nodiscard]] const DistBuffer<T>& data() const { return data_; }

  /// Owner processor of global element (i, j).
  [[nodiscard]] proc_t owner(std::size_t i, std::size_t j) const {
    return grid_->at(rowmap_.owner(i), colmap_.owner(j));
  }

  /// True if `other` lives on the same grid with the same shape and layout
  /// (so elementwise operations are purely local).
  [[nodiscard]] bool aligned_with(const DistMatrix& other) const {
    return grid_ == other.grid_ && rowmap_ == other.rowmap_ &&
           colmap_ == other.colmap_;
  }

  // -- host I/O (untimed) ---------------------------------------------------

  /// Load from a row-major host array of nrows*ncols elements.  Each local
  /// row is one contiguous (Block columns) or one strided (Cyclic columns)
  /// copy of a host-row slice — the 2-D analogue of DistVector::load.
  void load(std::span<const T> host) {
    VMP_REQUIRE(host.size() == nrows() * ncols(), "host array size mismatch");
    grid_->cube().each_proc([&](proc_t q) {
      const std::uint32_t R = grid_->prow(q);
      const std::uint32_t C = grid_->pcol(q);
      const std::size_t lc_n = lcols(q);
      if (lc_n == 0) return;
      const std::size_t c0 = colmap_.global_begin(C);
      const std::size_t cstep = colmap_.global_step();
      const std::span<T> b = data_.tile(q);
      for (std::size_t lr = 0; lr < lrows(q); ++lr) {
        const std::size_t gi = rowmap_.global(R, lr);
        const T* hrow = host.data() + gi * ncols() + c0;
        const std::span<T> brow = b.subspan(lr * lc_n, lc_n);
        if (cstep == 1) {
          kern::copy(std::span<const T>(hrow, lc_n), brow);
        } else {
          kern::gather_strided(hrow, cstep, brow);
        }
      }
    });
  }

  /// Read back to a row-major host array (inverse copies of `load`).
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(nrows() * ncols());
    grid_->cube().each_proc([&](proc_t q) {
      const std::uint32_t R = grid_->prow(q);
      const std::uint32_t C = grid_->pcol(q);
      const std::size_t lc_n = lcols(q);
      if (lc_n == 0) return;
      const std::size_t c0 = colmap_.global_begin(C);
      const std::size_t cstep = colmap_.global_step();
      const std::span<const T> b = data_.tile(q);
      for (std::size_t lr = 0; lr < lrows(q); ++lr) {
        const std::size_t gi = rowmap_.global(R, lr);
        T* hrow = out.data() + gi * ncols() + c0;
        const std::span<const T> brow = b.subspan(lr * lc_n, lc_n);
        if (cstep == 1) {
          kern::copy(brow, std::span<T>(hrow, lc_n));
        } else {
          kern::scatter_strided(brow, hrow, cstep);
        }
      }
    });
    return out;
  }

  /// Host-side single-element access (untimed; tests and setup only).
  [[nodiscard]] T at(std::size_t i, std::size_t j) const {
    const proc_t q = owner(i, j);
    return local_at(q, rowmap_.local(i), colmap_.local(j));
  }
  void set(std::size_t i, std::size_t j, const T& value) {
    const proc_t q = owner(i, j);
    local_at(q, rowmap_.local(i), colmap_.local(j)) = value;
  }

 private:
  Grid* grid_;
  MatrixLayout layout_;
  AxisMap rowmap_;
  AxisMap colmap_;
  DistBuffer<T> data_;
};

}  // namespace vmp
