/// \file grid.hpp
/// \brief The 2-D processor grid carved out of the Boolean cube.
///
/// The cube's `d` address bits are split into `gc` column bits (the low
/// bits) and `gr = d - gc` row bits, giving a `2^gr × 2^gc` grid.  Each
/// grid row is a `2^gc`-processor subcube and each grid column a `2^gr`-
/// processor subcube, so all row-wise and column-wise collectives run on
/// subcubes — the structural fact the paper's primitive implementations
/// exploit.
#pragma once

#include <cstdint>

#include "comm/subcube.hpp"
#include "hypercube/check.hpp"
#include "hypercube/machine.hpp"

namespace vmp {

class Grid {
 public:
  /// Split `cube`'s dimensions into `row_dims` row bits and `col_dims`
  /// column bits; `row_dims + col_dims` must equal `cube.dim()`.
  Grid(Cube& cube, int row_dims, int col_dims)
      : cube_(&cube), row_dims_(row_dims), col_dims_(col_dims) {
    VMP_REQUIRE(row_dims >= 0 && col_dims >= 0, "negative grid dims");
    VMP_REQUIRE(row_dims + col_dims == cube.dim(),
                "grid dims must partition the cube dims");
  }

  /// Square-as-possible default split (extra dimension goes to rows).
  static Grid square(Cube& cube) {
    const int gr = (cube.dim() + 1) / 2;
    return Grid(cube, gr, cube.dim() - gr);
  }

  [[nodiscard]] Cube& cube() const { return *cube_; }

  [[nodiscard]] int row_dims() const { return row_dims_; }
  [[nodiscard]] int col_dims() const { return col_dims_; }
  [[nodiscard]] std::uint32_t prows() const { return 1u << row_dims_; }
  [[nodiscard]] std::uint32_t pcols() const { return 1u << col_dims_; }

  /// Grid coordinates of processor q.
  [[nodiscard]] std::uint32_t prow(proc_t q) const { return q >> col_dims_; }
  [[nodiscard]] std::uint32_t pcol(proc_t q) const {
    return q & (pcols() - 1u);
  }

  /// Processor at grid coordinates (r, c).
  [[nodiscard]] proc_t at(std::uint32_t r, std::uint32_t c) const {
    VMP_REQUIRE(r < prows() && c < pcols(), "grid coordinate out of range");
    return (r << col_dims_) | c;
  }

  /// Subcubes formed by the processors of one grid ROW (they span the
  /// column dimensions); rank within the subcube == pcol.
  [[nodiscard]] SubcubeSet within_row() const {
    return SubcubeSet::contiguous(0, col_dims_);
  }

  /// Subcubes formed by the processors of one grid COLUMN (they span the
  /// row dimensions); rank within the subcube == prow.
  [[nodiscard]] SubcubeSet within_col() const {
    return SubcubeSet::contiguous(col_dims_, row_dims_);
  }

  /// The whole cube as one subcube (linear vector alignment).
  [[nodiscard]] SubcubeSet whole() const {
    return SubcubeSet::contiguous(0, row_dims_ + col_dims_);
  }

 private:
  Cube* cube_;
  int row_dims_;
  int col_dims_;
};

}  // namespace vmp
