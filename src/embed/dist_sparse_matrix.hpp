/// \file dist_sparse_matrix.hpp
/// \brief A sparse matrix on the same grid embedding as DistMatrix: one
///        CSR tile per processor in pooled slab storage.
///
/// Processor (R, C) owns the intersection of row partition R and column
/// partition C exactly as in the dense storage — MatrixEmbedding decides
/// who owns (i, j); this class stores only the owned nonzeros.  Each tile
/// is compressed-sparse-row over LOCAL coordinates:
///
///   rowptr  — lrows(q)+1 offsets (uint32) into colind/vals
///   colind  — local column slot of each stored entry (uint32), strictly
///             ascending within a row
///   vals    — the entry values, same order
///
/// Because both partition kinds are affine and monotone in the local slot
/// (global = g0 + s·gstep with gstep ≥ 1), ascending local column order is
/// ascending global column order — so every sparse kernel that walks a row
/// left to right folds in the same association as its dense counterpart
/// restricted to stored entries (see core/kernels.hpp fold_sparse).
///
/// The three CSR arrays live in DistBuffer slab arenas (one 64-byte-aligned
/// allocation per array, zero steady-state allocs).  Growth (reserve_tiles,
/// load_csr) is host-thread-only, like every DistBuffer; per-tile writes
/// within capacity are allowed from compute callbacks, which is what
/// reembed() uses to assemble tiles in parallel.  See docs/sparse.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/dist_buffer.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/matrix_embedding.hpp"
#include "hypercube/check.hpp"

namespace vmp {

template <class T>
class DistSparseMatrix {
 public:
  /// An empty (all-zero) nrows × ncols sparse matrix.
  DistSparseMatrix(Grid& grid, std::size_t nrows, std::size_t ncols,
                   MatrixLayout layout = {})
      : embed_(grid, nrows, ncols, layout),
        rowptr_(grid.cube()),
        colind_(grid.cube()),
        vals_(grid.cube()) {
    rowptr_.reserve_each((nrows + grid.prows() - 1) / grid.prows() + 1);
    grid.cube().each_proc([&](proc_t q) {
      rowptr_.assign(q, lrows(q) + 1, std::uint32_t{0});
    });
  }

  [[nodiscard]] Grid& grid() const { return embed_.grid(); }
  [[nodiscard]] std::size_t nrows() const { return embed_.nrows(); }
  [[nodiscard]] std::size_t ncols() const { return embed_.ncols(); }
  [[nodiscard]] MatrixLayout layout() const { return embed_.layout(); }
  [[nodiscard]] const AxisMap& rowmap() const { return embed_.rowmap(); }
  [[nodiscard]] const AxisMap& colmap() const { return embed_.colmap(); }
  [[nodiscard]] const MatrixEmbedding& embedding() const { return embed_; }
  [[nodiscard]] std::size_t lrows(proc_t q) const { return embed_.lrows(q); }
  [[nodiscard]] std::size_t lcols(proc_t q) const { return embed_.lcols(q); }
  [[nodiscard]] std::size_t max_block() const { return embed_.max_block(); }
  [[nodiscard]] proc_t owner(std::size_t i, std::size_t j) const {
    return embed_.owner(i, j);
  }

  /// Total stored entries, and the largest tile's entry count — the
  /// sparse flop-charging bound (the slowest processor folds its whole
  /// tile), counterpart of the dense max_block().
  [[nodiscard]] std::size_t nnz() const { return nnz_; }
  [[nodiscard]] std::size_t max_tile_nnz() const { return max_tile_nnz_; }

  // -- CSR tile views -------------------------------------------------------

  [[nodiscard]] std::span<const std::uint32_t> tile_rowptr(proc_t q) const {
    return rowptr_.on(q);
  }
  [[nodiscard]] std::span<const std::uint32_t> tile_colind(proc_t q) const {
    return colind_.on(q);
  }
  [[nodiscard]] std::span<const T> tile_vals(proc_t q) const {
    return vals_.on(q);
  }
  /// Mutable values (pattern-preserving updates: insert_row/col, hadamard).
  [[nodiscard]] std::span<T> tile_vals(proc_t q) { return vals_.on(q); }

  [[nodiscard]] DistBuffer<T>& vals() { return vals_; }
  [[nodiscard]] const DistBuffer<T>& vals() const { return vals_; }

  /// True if `other` has the same embedding and the same per-tile entry
  /// counts (the cheap alignment check the elementwise paths use; the
  /// full-pattern guarantee is the caller's contract).
  [[nodiscard]] bool aligned_with(const DistSparseMatrix& other) const {
    if (!embed_.same_as(other.embed_)) return false;
    for (proc_t q = 0; q < grid().cube().procs(); ++q)
      if (vals_.len(q) != other.vals_.len(q)) return false;
    return true;
  }

  /// Exact sparsity-pattern equality (host-side, untimed; tests).
  [[nodiscard]] bool same_pattern(const DistSparseMatrix& other) const {
    if (!embed_.same_as(other.embed_)) return false;
    for (proc_t q = 0; q < grid().cube().procs(); ++q) {
      const auto rp = tile_rowptr(q), orp = other.tile_rowptr(q);
      const auto ci = tile_colind(q), oci = other.tile_colind(q);
      if (!std::ranges::equal(rp, orp) || !std::ranges::equal(ci, oci))
        return false;
    }
    return true;
  }

  // -- assembly -------------------------------------------------------------

  /// Grow every tile's capacity to `max_nnz` entries (host thread only —
  /// call before assembling tiles from compute callbacks).
  void reserve_tiles(std::size_t max_nnz) {
    colind_.reserve_each(max_nnz);
    vals_.reserve_each(max_nnz);
  }

  /// Replace processor q's tile.  colind must be strictly ascending within
  /// each row.  Safe from a compute callback once reserve_tiles() covered
  /// the size; call finalize() (host thread) when every tile is in place.
  void assign_tile(proc_t q, std::span<const std::uint32_t> rowptr,
                   std::span<const std::uint32_t> colind,
                   std::span<const T> vals) {
    VMP_REQUIRE(rowptr.size() == lrows(q) + 1, "rowptr length mismatch");
    VMP_REQUIRE(colind.size() == vals.size(), "colind/vals length mismatch");
    VMP_REQUIRE(rowptr[lrows(q)] == colind.size(), "rowptr/nnz mismatch");
    rowptr_.assign(q, rowptr);
    colind_.assign(q, colind);
    vals_.assign(q, vals);
  }

  /// Recompute the cached nnz totals after direct tile assembly.
  void finalize() {
    nnz_ = 0;
    max_tile_nnz_ = 0;
    for (proc_t q = 0; q < grid().cube().procs(); ++q) {
      nnz_ += vals_.len(q);
      max_tile_nnz_ = std::max(max_tile_nnz_, vals_.len(q));
    }
  }

  // -- host I/O (untimed) ---------------------------------------------------

  /// Load from a host CSR triple over global indices (colind strictly
  /// ascending within each row).  The 2-D analogue of DistMatrix::load:
  /// each processor keeps the entries it owns, re-indexed to local slots.
  void load_csr(std::span<const std::uint32_t> rowptr,
                std::span<const std::uint32_t> colind,
                std::span<const T> vals) {
    VMP_REQUIRE(rowptr.size() == nrows() + 1, "host rowptr length mismatch");
    VMP_REQUIRE(colind.size() == vals.size(), "host colind/vals mismatch");
    Cube& cube = grid().cube();
    // Per-processor entry counts first (host thread), so slab growth is
    // done before the parallel assembly below.
    std::vector<std::size_t> count(cube.procs(), 0);
    for (std::size_t i = 0; i < nrows(); ++i)
      for (std::uint32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
        ++count[owner(i, colind[k])];
    std::size_t max_count = 0;
    for (const std::size_t c : count) max_count = std::max(max_count, c);
    reserve_tiles(max_count);
    cube.each_proc([&](proc_t q) {
      const std::uint32_t R = grid().prow(q);
      const std::uint32_t C = grid().pcol(q);
      rowptr_.assign(q, lrows(q) + 1, std::uint32_t{0});
      colind_.clear(q);
      vals_.clear(q);
      const std::span<std::uint32_t> rp = rowptr_.tile(q);
      std::uint32_t at = 0;
      for (std::size_t lr = 0; lr < lrows(q); ++lr) {
        rp[lr] = at;
        const std::size_t gi = rowmap().global(R, lr);
        for (std::uint32_t k = rowptr[gi]; k < rowptr[gi + 1]; ++k) {
          const std::size_t gj = colind[k];
          if (colmap().owner(gj) != C) continue;
          // Ascending global j ⇒ ascending local slot (affine monotone).
          colind_.push_back(q, static_cast<std::uint32_t>(colmap().local(gj)));
          vals_.push_back(q, vals[k]);
          ++at;
        }
      }
      rp[lrows(q)] = at;
    });
    finalize();
  }

  /// The same matrix in dense storage (untimed; reference/twin tests).
  [[nodiscard]] DistMatrix<T> densify() const {
    DistMatrix<T> out(grid(), nrows(), ncols(), layout());
    grid().cube().each_proc([&](proc_t q) {
      const std::span<T> blk = out.block(q);
      const auto rp = tile_rowptr(q);
      const auto ci = tile_colind(q);
      const auto va = tile_vals(q);
      const std::size_t lcn = lcols(q);
      for (std::size_t lr = 0; lr < lrows(q); ++lr)
        for (std::uint32_t k = rp[lr]; k < rp[lr + 1]; ++k)
          blk[lr * lcn + ci[k]] = va[k];
    });
    return out;
  }

  /// Read back to a dense row-major host array.
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(nrows() * ncols());
    for (proc_t q = 0; q < grid().cube().procs(); ++q) {
      const std::uint32_t R = grid().prow(q);
      const std::uint32_t C = grid().pcol(q);
      const auto rp = tile_rowptr(q);
      const auto ci = tile_colind(q);
      const auto va = tile_vals(q);
      for (std::size_t lr = 0; lr < lrows(q); ++lr) {
        const std::size_t gi = rowmap().global(R, lr);
        for (std::uint32_t k = rp[lr]; k < rp[lr + 1]; ++k)
          out[gi * ncols() + colmap().global(C, ci[k])] = va[k];
      }
    }
    return out;
  }

  /// Host-side single-element read; zero for unstored slots.
  [[nodiscard]] T at(std::size_t i, std::size_t j) const {
    const proc_t q = owner(i, j);
    const std::size_t lr = rowmap().local(i);
    const auto lc = static_cast<std::uint32_t>(colmap().local(j));
    const auto rp = tile_rowptr(q);
    const auto ci = tile_colind(q);
    const auto* b = ci.data() + rp[lr];
    const auto* e = ci.data() + rp[lr + 1];
    const auto* it = std::lower_bound(b, e, lc);
    if (it == e || *it != lc) return T{};
    return tile_vals(q)[static_cast<std::size_t>(it - ci.data())];
  }

 private:
  MatrixEmbedding embed_;
  DistBuffer<std::uint32_t> rowptr_;
  DistBuffer<std::uint32_t> colind_;
  DistBuffer<T> vals_;
  std::size_t nnz_ = 0;
  std::size_t max_tile_nnz_ = 0;
};

}  // namespace vmp
