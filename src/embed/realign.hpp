/// \file realign.hpp
/// \brief Embedding changes for vectors — "the primitives may indicate a
///        change from one embedding to another".
///
/// A realignment moves every element from the source embedding's canonical
/// replica to the target embedding's canonical processor (one combining
/// dimension-order routing sweep, lg p rounds) and then re-replicates with
/// a broadcast across the target's replication subcubes.  All of it is
/// charged to the simulated clock: embedding changes are never free, which
/// is why the applications keep vectors aligned with the matrices they
/// touch (bench_ablation quantifies the cost).
#pragma once

#include <algorithm>

#include "comm/collectives.hpp"
#include "embed/dist_vector.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace vmp {

/// Return a copy of `v` with the requested embedding.  `target_part` is the
/// partition kind along the new axis (ignored for Align::Linear, which is
/// always Block).  A same-embedding realign is a plain local copy.
template <class T>
[[nodiscard]] DistVector<T> realign(const DistVector<T>& v, Align target,
                                    Part target_part = Part::Block) {
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "realign");
  if (target == Align::Linear) target_part = Part::Block;

  DistVector<T> out(grid, v.n(), target, target_part);
  if (target == v.align() && target_part == v.part()) {
    cube.each_proc(
        [&](proc_t q) { out.data().assign(q, v.data().tile(q)); });
    return out;
  }

  // Canonical replicas emit every element toward the target's canonical
  // processor, tagged with its target local slot.
  DistBuffer<RouteItem<T>> items(cube);
  items.reserve_each(max_local_len(cube, v.data()));
  cube.each_proc([&](proc_t q) {
    const std::uint32_t r = v.rank_of(q);
    if (q != v.canonical_proc(r)) return;
    const std::span<const T> piece = v.piece(q);
    for (std::size_t s = 0; s < piece.size(); ++s) {
      const std::size_t g = v.map().global(r, s);
      const std::uint32_t dst_rank = out.map().owner(g);
      items.push_back(q, RouteItem<T>{out.canonical_proc(dst_rank),
                                      out.map().local(g), piece[s]});
    }
  });
  route_within(cube, items, grid.whole());
  cube.each_proc([&](proc_t q) {
    const std::span<T> dst = out.data().tile(q);
    for (const RouteItem<T>& it : items.tile(q))
      VMP_ASSERT(it.tag < dst.size(), "realign slot out of range");
    kern::scatter_tagged(items.tile(q), dst);
  });

  // Re-replicate across the target's replication subcubes.
  const SubcubeSet rep = out.replicated_over();
  if (rep.k() > 0) {
    broadcast_auto(cube, out.data(), rep, 0,
                   [&](proc_t q) { return out.map().size(out.rank_of(q)); });
  }
  return out;
}

/// Graceful embedding remap off a failed node: rebuild the piece the
/// failed processor held from a surviving replica in its replication
/// subcube.  This models a hot spare taking over the dead processor's cube
/// address — call it after the fault plan's node kill is resolved (the
/// spare is reachable), and the vector is whole again without touching the
/// host.  The re-replication broadcast is charged to the clock under the
/// "fault_remap" region, so recovery shows up in profiles like every other
/// fault cost.
///
/// Linear vectors carry no replicas; their lost piece is unrecoverable and
/// the remap throws FaultError (degrade with a clear error, not silently
/// wrong data).
template <class T>
void remap_off_failed(DistVector<T>& v, proc_t failed) {
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  VMP_REQUIRE(failed < cube.procs(), "failed processor id out of range");
  VMP_TRACE(cube, "fault_remap");
  const SubcubeSet rep = v.replicated_over();
  if (rep.k() == 0)
    throw FaultError(
        "remap_off_failed: vector is not replicated (Linear embedding) — "
        "the failed node's piece has no surviving copy");
  // Deterministic donor: the lowest surviving rank of the failed node's
  // replication subcube (every subcube uses the same root rank, so the
  // broadcast is one regular collective).
  const std::uint32_t root = rep.rank(failed) == 0 ? 1u : 0u;
  kern::fill(v.data().tile(failed), T{});
  broadcast(cube, v.data(), rep, root);
  VMP_ASSERT(v.replicas_consistent(),
             "remap_off_failed left replicas inconsistent");
}

}  // namespace vmp
