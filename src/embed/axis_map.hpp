/// \file axis_map.hpp
/// \brief Per-axis global↔local index maps: the two load-balanced
///        embeddings of the paper ("consecutive" blocks and cyclic).
#pragma once

#include <cstddef>
#include <cstdint>

#include "hypercube/check.hpp"
#include "hypercube/partition.hpp"

namespace vmp {

/// How a 1-D index range is partitioned over the parts of one grid axis.
enum class Part : std::uint8_t {
  Block,   ///< contiguous blocks ("consecutive" embedding)
  Cyclic,  ///< round-robin — keeps shrinking active windows load-balanced
};

/// Resolves global index <-> (owner part, local slot) for one axis.
class AxisMap {
 public:
  AxisMap() = default;
  AxisMap(std::size_t n, std::uint32_t parts, Part kind)
      : n_(n), parts_(parts), kind_(kind) {
    VMP_REQUIRE(parts > 0, "axis needs at least one part");
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::uint32_t parts() const { return parts_; }
  [[nodiscard]] Part kind() const { return kind_; }

  /// Owner part of global index g.
  [[nodiscard]] std::uint32_t owner(std::size_t g) const {
    VMP_REQUIRE(g < n_, "global index out of range");
    return kind_ == Part::Block ? block_owner(n_, parts_, g)
                                : cyclic_owner(parts_, g);
  }

  /// Local slot of global index g on its owner.
  [[nodiscard]] std::size_t local(std::size_t g) const {
    VMP_REQUIRE(g < n_, "global index out of range");
    return kind_ == Part::Block ? block_local(n_, parts_, g)
                                : cyclic_local(parts_, g);
  }

  /// Number of indices owned by part r.
  [[nodiscard]] std::size_t size(std::uint32_t r) const {
    VMP_REQUIRE(r < parts_, "part out of range");
    return kind_ == Part::Block ? block_size(n_, parts_, r)
                                : cyclic_size(n_, parts_, r);
  }

  /// Global index of local slot s on part r.
  [[nodiscard]] std::size_t global(std::uint32_t r, std::size_t s) const {
    VMP_REQUIRE(r < parts_ && s < size(r), "local slot out of range");
    return kind_ == Part::Block ? block_begin(n_, parts_, r) + s
                                : cyclic_global(parts_, r, s);
  }

  /// Both embeddings are AFFINE in the local slot:
  ///   global(r, s) == global_begin(r) + s · global_step()
  /// (Block: block start + s; Cyclic: r + s · parts).  The strided kernels
  /// in core/kernels.hpp lean on this to turn per-element index math into
  /// one (base, step) pair per local piece.
  [[nodiscard]] std::size_t global_begin(std::uint32_t r) const {
    VMP_REQUIRE(r < parts_, "part out of range");
    return kind_ == Part::Block ? block_begin(n_, parts_, r)
                                : static_cast<std::size_t>(r);
  }
  /// Global-index distance between consecutive local slots: 1 for Block,
  /// parts() for Cyclic.
  [[nodiscard]] std::size_t global_step() const {
    return kind_ == Part::Block ? 1 : static_cast<std::size_t>(parts_);
  }

  /// First local slot on part r whose global index is ≥ lo.  Under both
  /// partition kinds global indices increase with the local slot, so the
  /// active window [lo, n) is always a contiguous local suffix — the fact
  /// the shrinking-window algorithms (Gaussian elimination, simplex) lean
  /// on for load-balanced charging.
  [[nodiscard]] std::size_t first_local_at_or_after(std::uint32_t r,
                                                    std::size_t lo) const {
    VMP_REQUIRE(r < parts_, "part out of range");
    const std::size_t sz = size(r);
    if (lo == 0) return 0;
    if (kind_ == Part::Block) {
      const std::size_t begin = block_begin(n_, parts_, r);
      if (lo <= begin) return 0;
      return std::min(sz, lo - begin);
    }
    // Cyclic: global(s) = s · parts + r.
    if (lo <= r) return 0;
    const std::size_t s = (lo - r + parts_ - 1) / parts_;
    return std::min(sz, s);
  }

  friend bool operator==(const AxisMap&, const AxisMap&) = default;

 private:
  std::size_t n_ = 0;
  std::uint32_t parts_ = 1;
  Part kind_ = Part::Block;
};

}  // namespace vmp
