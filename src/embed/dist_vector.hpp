/// \file dist_vector.hpp
/// \brief A dense vector embedded on the processor grid.
///
/// The paper's vectors carry an *embedding* and primitives may change it.
/// Three canonical alignments are supported:
///
///  * `Linear` — blocked over all `p` processors in id order (the host I/O
///               form, and the form a vector has before it is aligned with
///               any matrix).
///  * `Cols`   — partitioned across the grid's column axis exactly like a
///               matrix *row*, and replicated across every grid row.
///  * `Rows`   — partitioned across the grid's row axis exactly like a
///               matrix *column*, and replicated across every grid column.
///
/// The replication in Cols/Rows is what makes `distribute` and the rank-1
/// updates of Gaussian elimination / simplex purely local.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "comm/dist_buffer.hpp"
#include "core/kernels.hpp"
#include "embed/axis_map.hpp"
#include "embed/grid.hpp"
#include "hypercube/check.hpp"

namespace vmp {

enum class Align : std::uint8_t { Linear, Cols, Rows };

[[nodiscard]] constexpr const char* to_string(Align a) noexcept {
  switch (a) {
    case Align::Linear: return "Linear";
    case Align::Cols: return "Cols";
    case Align::Rows: return "Rows";
  }
  return "?";
}

template <class T>
class DistVector {
 public:
  /// An n-element vector, value-initialized, with the given embedding.
  /// `part` is the partition kind along the aligned axis; Linear vectors
  /// are always Block-partitioned.
  DistVector(Grid& grid, std::size_t n, Align align, Part part = Part::Block)
      : grid_(&grid), n_(n), align_(align), part_(part), data_(grid.cube()) {
    if (align == Align::Linear) {
      VMP_REQUIRE(part == Part::Block, "Linear vectors are Block-partitioned");
      map_ = AxisMap(n, grid.cube().procs(), Part::Block);
    } else if (align == Align::Cols) {
      map_ = AxisMap(n, grid.pcols(), part);
    } else {
      map_ = AxisMap(n, grid.prows(), part);
    }
    std::size_t cap = 0;
    for (std::uint32_t r = 0; r < map_.parts(); ++r)
      cap = std::max(cap, map_.size(r));
    data_.reserve_each(cap);
    grid.cube().each_proc(
        [&](proc_t q) { data_.assign(q, map_.size(rank_of(q)), T{}); });
  }

  [[nodiscard]] Grid& grid() const { return *grid_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] Align align() const { return align_; }
  [[nodiscard]] Part part() const { return part_; }
  [[nodiscard]] const AxisMap& map() const { return map_; }

  /// The partition rank of processor q along the aligned axis.
  [[nodiscard]] std::uint32_t rank_of(proc_t q) const {
    switch (align_) {
      case Align::Linear: return q;
      case Align::Cols: return grid_->pcol(q);
      case Align::Rows: return grid_->prow(q);
    }
    return 0;
  }

  /// The subcube family over which the vector is PARTITIONED: each member
  /// of such a subcube holds a distinct piece, so a global fold over the
  /// vector's elements all-reduces across this family.  For Linear it is
  /// the whole cube.
  [[nodiscard]] SubcubeSet partitioned_over() const {
    switch (align_) {
      case Align::Linear: return grid_->whole();
      case Align::Cols: return grid_->within_row();
      case Align::Rows: return grid_->within_col();
    }
    return grid_->whole();
  }

  /// The subcube family across which the vector is REPLICATED (every member
  /// holds an identical piece).  Empty mask for Linear.
  [[nodiscard]] SubcubeSet replicated_over() const {
    switch (align_) {
      case Align::Linear: return SubcubeSet(0);
      case Align::Cols: return grid_->within_col();
      case Align::Rows: return grid_->within_row();
    }
    return SubcubeSet(0);
  }

  /// Local piece of processor q.
  [[nodiscard]] std::span<T> piece(proc_t q) { return data_.on(q); }
  [[nodiscard]] std::span<const T> piece(proc_t q) const { return data_.on(q); }

  [[nodiscard]] DistBuffer<T>& data() { return data_; }
  [[nodiscard]] const DistBuffer<T>& data() const { return data_; }

  /// True if `other` has the same embedding (so elementwise ops are local).
  [[nodiscard]] bool aligned_with(const DistVector& other) const {
    return grid_ == other.grid_ && n_ == other.n_ && align_ == other.align_ &&
           part_ == other.part_;
  }

  // -- host I/O (untimed; for loading inputs and checking results) ---------

  /// Overwrite the whole vector (all replicas) from a host array.  A local
  /// piece is an affine slice of the host array (global = g0 + s·step), so
  /// each piece is one contiguous or one strided copy kernel.
  void load(std::span<const T> host) {
    VMP_REQUIRE(host.size() == n_, "host array length mismatch");
    grid_->cube().each_proc([&](proc_t q) {
      const std::uint32_t r = rank_of(q);
      const std::span<T> piece_q = data_.tile(q);
      if (piece_q.empty()) return;
      const std::size_t g0 = map_.global_begin(r);
      const std::size_t step = map_.global_step();
      if (step == 1) {
        kern::copy(host.subspan(g0, piece_q.size()), piece_q);
      } else {
        kern::gather_strided(host.data() + g0, step, piece_q);
      }
    });
  }

  /// Read the whole vector to the host (canonical replica): one contiguous
  /// or strided copy per partition rank instead of n owner lookups.
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(n_);
    for (std::uint32_t r = 0; r < map_.parts(); ++r) {
      const std::span<const T> piece_r = data_.tile(canonical_proc(r));
      if (piece_r.empty()) continue;
      const std::size_t g0 = map_.global_begin(r);
      const std::size_t step = map_.global_step();
      if (step == 1) {
        kern::copy(piece_r, std::span<T>(out).subspan(g0, piece_r.size()));
      } else {
        kern::scatter_strided(piece_r, out.data() + g0, step);
      }
    }
    return out;
  }

  /// Read one element (canonical replica) — host-side, untimed.
  [[nodiscard]] T at(std::size_t g) const {
    const std::uint32_t r = map_.owner(g);
    const proc_t q = canonical_proc(r);
    return data_.tile(q)[map_.local(g)];
  }

  /// Host-side write of one element into EVERY replica (untimed; for test
  /// setup only).
  void set(std::size_t g, const T& value) {
    const std::uint32_t r = map_.owner(g);
    const std::size_t s = map_.local(g);
    grid_->cube().each_proc([&](proc_t q) {
      if (rank_of(q) == r) data_.tile(q)[s] = value;
    });
  }

  /// Verify that all replicas agree (sanity helper for tests).
  [[nodiscard]] bool replicas_consistent() const {
    bool ok = true;
    grid_->cube().each_proc([&](proc_t q) {
      const std::span<const T> mine = data_.tile(q);
      const std::span<const T> canon = data_.tile(canonical_proc(rank_of(q)));
      if (!std::equal(mine.begin(), mine.end(), canon.begin(), canon.end()))
        ok = false;
    });
    return ok;
  }

  /// The id-lowest processor holding partition rank r.
  [[nodiscard]] proc_t canonical_proc(std::uint32_t r) const {
    switch (align_) {
      case Align::Linear: return r;
      case Align::Cols: return grid_->at(0, r);
      case Align::Rows: return grid_->at(r, 0);
    }
    return 0;
  }

 private:
  Grid* grid_;
  std::size_t n_;
  Align align_;
  Part part_;
  AxisMap map_;
  DistBuffer<T> data_;
};

}  // namespace vmp
