/// \file matrix_embedding.hpp
/// \brief The storage-independent half of a distributed matrix: its
///        partition geometry on the processor grid.
///
/// A global `nrows × ncols` index space is split by one AxisMap per axis
/// (Block or Cyclic); processor (R, C) owns the intersection of row
/// partition R and column partition C.  With either partition kind every
/// processor owns within one row/column of `⌈nrows/Pr⌉ × ⌈ncols/Pc⌉`
/// index pairs — the load-balanced embedding the paper assumes.
///
/// MatrixEmbedding carries no elements.  Both matrix storages consume it:
/// DistMatrix<T> fills every owned slot with a dense row-major block,
/// DistSparseMatrix<T> stores only its nonzeros as a CSR tile over the
/// same local (lr, lc) coordinates.  The primitives' communication
/// structure (which subcube family reduces, who owns a line, where a
/// broadcast roots) depends only on this class, which is what makes them
/// storage-polymorphic — see docs/sparse.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "embed/axis_map.hpp"
#include "embed/grid.hpp"
#include "hypercube/check.hpp"

namespace vmp {

/// Partition kinds for the two matrix axes.
struct MatrixLayout {
  Part rows = Part::Block;
  Part cols = Part::Block;

  [[nodiscard]] static MatrixLayout blocked() { return {}; }
  [[nodiscard]] static MatrixLayout cyclic() {
    return {Part::Cyclic, Part::Cyclic};
  }
  friend bool operator==(const MatrixLayout&, const MatrixLayout&) = default;
};

/// Where every (i, j) of an nrows × ncols index space lives on the grid.
class MatrixEmbedding {
 public:
  MatrixEmbedding() = default;
  MatrixEmbedding(Grid& grid, std::size_t nrows, std::size_t ncols,
                  MatrixLayout layout = {})
      : grid_(&grid),
        layout_(layout),
        rowmap_(nrows, grid.prows(), layout.rows),
        colmap_(ncols, grid.pcols(), layout.cols) {}

  [[nodiscard]] Grid& grid() const { return *grid_; }
  [[nodiscard]] std::size_t nrows() const { return rowmap_.n(); }
  [[nodiscard]] std::size_t ncols() const { return colmap_.n(); }
  [[nodiscard]] MatrixLayout layout() const { return layout_; }
  [[nodiscard]] const AxisMap& rowmap() const { return rowmap_; }
  [[nodiscard]] const AxisMap& colmap() const { return colmap_; }

  /// Local block extents of processor q.
  [[nodiscard]] std::size_t lrows(proc_t q) const {
    return rowmap_.size(grid_->prow(q));
  }
  [[nodiscard]] std::size_t lcols(proc_t q) const {
    return colmap_.size(grid_->pcol(q));
  }

  /// Largest local block over all processors (for flop charging):
  /// ⌈nrows/Pr⌉ · ⌈ncols/Pc⌉ under both partition kinds.
  [[nodiscard]] std::size_t max_block() const {
    const std::size_t r = (nrows() + grid_->prows() - 1) / grid_->prows();
    const std::size_t c = (ncols() + grid_->pcols() - 1) / grid_->pcols();
    return r * c;
  }

  /// Owner processor of global index pair (i, j).
  [[nodiscard]] proc_t owner(std::size_t i, std::size_t j) const {
    return grid_->at(rowmap_.owner(i), colmap_.owner(j));
  }

  /// True if `other` is the same geometry on the same grid (so any
  /// slot-for-slot operation between matrices over the two embeddings is
  /// purely local).
  [[nodiscard]] bool same_as(const MatrixEmbedding& other) const {
    return grid_ == other.grid_ && rowmap_ == other.rowmap_ &&
           colmap_ == other.colmap_;
  }

 private:
  Grid* grid_ = nullptr;
  MatrixLayout layout_;
  AxisMap rowmap_;
  AxisMap colmap_;
};

}  // namespace vmp
