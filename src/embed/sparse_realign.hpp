/// \file sparse_realign.hpp
/// \brief Re-embed a sparse matrix under a different layout — the matrix
///        counterpart of DistVector realign().
///
/// Every stored entry is emitted as a global-coordinate CsrTriple addressed
/// to the processor the target embedding assigns it, delivered through the
/// combining router, and re-assembled into CSR tiles at the destination.
/// Cost: one tile-walk to emit (charged like a sparse fold), the routed
/// exchange (k rounds of combined messages), and one sort-and-build at the
/// receiver.  Deterministic: the router's arrival order is a fixed function
/// of the input, and the receiver sorts by (row, col) before building, so
/// the resulting tiles are independent of arrival order anyway.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "comm/sparse_exchange.hpp"
#include "embed/dist_sparse_matrix.hpp"

namespace vmp {

/// The same matrix re-embedded under `target`.
template <class T>
[[nodiscard]] DistSparseMatrix<T> reembed(const DistSparseMatrix<T>& A,
                                          MatrixLayout target) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  DistSparseMatrix<T> B(grid, A.nrows(), A.ncols(), target);
  VMP_TRACE(cube, "reembed");
  const auto batch = cube.session();

  // Emit: every stored entry becomes a triple addressed by the target
  // embedding.  Capacity is pre-grown on the host thread so the worker
  // push_backs stay within the slab.
  DistBuffer<RouteItem<CsrTriple<T>>> items(cube);
  items.reserve_each(A.max_tile_nnz());
  cube.compute(A.max_tile_nnz(), A.nnz(), [&](proc_t q) {
    const std::uint32_t R = grid.prow(q);
    const std::uint32_t C = grid.pcol(q);
    const auto rp = A.tile_rowptr(q);
    const auto ci = A.tile_colind(q);
    const auto va = A.tile_vals(q);
    for (std::size_t lr = 0; lr < A.lrows(q); ++lr) {
      const auto gi =
          static_cast<std::uint32_t>(A.rowmap().global(R, lr));
      for (std::uint32_t k = rp[lr]; k < rp[lr + 1]; ++k) {
        const auto gj =
            static_cast<std::uint32_t>(A.colmap().global(C, ci[k]));
        items.push_back(
            q, RouteItem<CsrTriple<T>>{B.owner(gi, gj), 0,
                                       CsrTriple<T>{gi, gj, va[k]}});
      }
    }
  });

  exchange_triples(cube, items, grid.whole());

  // Receive: grow the target slabs to the largest delivery (host thread),
  // then sort each tile's triples into CSR order and build in parallel.
  std::size_t max_recv = 0;
  for (proc_t q = 0; q < cube.procs(); ++q)
    max_recv = std::max(max_recv, items.len(q));
  B.reserve_tiles(max_recv);
  cube.compute(max_recv, A.nnz(), [&](proc_t q) {
    const std::span<RouteItem<CsrTriple<T>>> got = items.tile(q);
    std::sort(got.begin(), got.end(), [](const auto& a, const auto& b) {
      return a.value.row != b.value.row ? a.value.row < b.value.row
                                        : a.value.col < b.value.col;
    });
    const std::size_t lrn = B.lrows(q);
    std::vector<std::uint32_t> rowptr(lrn + 1, 0);
    std::vector<std::uint32_t> colind(got.size());
    std::vector<T> vals(got.size());
    std::size_t at = 0;
    for (std::size_t lr = 0; lr < lrn; ++lr) {
      rowptr[lr] = static_cast<std::uint32_t>(at);
      const std::uint32_t gi = static_cast<std::uint32_t>(
          B.rowmap().global(grid.prow(q), lr));
      while (at < got.size() && got[at].value.row == gi) {
        colind[at] =
            static_cast<std::uint32_t>(B.colmap().local(got[at].value.col));
        vals[at] = got[at].value.val;
        ++at;
      }
    }
    rowptr[lrn] = static_cast<std::uint32_t>(at);
    VMP_ASSERT(at == got.size(), "reembed left entries unplaced");
    B.assign_tile(q, rowptr, colind, vals);
  });
  B.finalize();
  return B;
}

}  // namespace vmp
