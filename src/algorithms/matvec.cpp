#include "algorithms/matvec.hpp"

#include "comm/collectives.hpp"
#include "core/elementwise.hpp"
#include "core/kernels.hpp"
#include "core/primitives.hpp"
#include "obs/trace.hpp"

namespace vmp {

DistVector<double> matvec(const DistMatrix<double>& A,
                          const DistVector<double>& x) {
  detail::require_cols_aligned("matvec", A, x);
  VMP_TRACE(A.grid().cube(), "matvec");
  const DistMatrix<double> X = distribute(x, Axis::Row, A.nrows(), A.layout().rows);
  const DistMatrix<double> P = hadamard(A, X);
  return reduce(P, Axis::Row, Plus<double>{});
}

DistVector<double> matvec_fused(const DistMatrix<double>& A,
                                const DistVector<double>& x) {
  detail::require_cols_aligned("matvec_fused", A, x);
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "matvec_fused");
  DistVector<double> y(grid, A.nrows(), Align::Rows, A.layout().rows);
  cube.compute(2 * A.max_block(), 2 * A.nrows() * A.ncols(), [&](proc_t q) {
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    const std::span<const double> blk = A.block(q);
    const std::span<const double> xp = x.piece(q);
    const std::span<double> yp = y.data().tile(q);
    kern::dot_rows(blk.first(lrn * lcn), lrn, lcn, xp.first(lcn),
                   yp.first(lrn));
  });
  allreduce_auto(cube, y.data(), grid.within_row(), Plus<double>{});
  return y;
}

DistVector<double> vecmat(const DistVector<double>& x,
                          const DistMatrix<double>& A) {
  detail::require_rows_aligned("vecmat", A, x);
  VMP_TRACE(A.grid().cube(), "vecmat");
  const DistMatrix<double> X = distribute(x, Axis::Col, A.ncols(), A.layout().cols);
  const DistMatrix<double> P = hadamard(A, X);
  return reduce(P, Axis::Col, Plus<double>{});
}

DistVector<double> vecmat_fused(const DistVector<double>& x,
                                const DistMatrix<double>& A) {
  detail::require_rows_aligned("vecmat_fused", A, x);
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "vecmat_fused");
  DistVector<double> y(grid, A.ncols(), Align::Cols, A.layout().cols);
  cube.compute(2 * A.max_block(), 2 * A.nrows() * A.ncols(), [&](proc_t q) {
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    const std::span<const double> blk = A.block(q);
    const std::span<const double> xp = x.piece(q);
    const std::span<double> yp = y.data().tile(q);
    kern::fill(yp.first(lcn), 0.0);
    for (std::size_t lr = 0; lr < lrn; ++lr)
      kern::axpy(yp.first(lcn), xp[lr], blk.subspan(lr * lcn, lcn));
  });
  allreduce_auto(cube, y.data(), grid.within_col(), Plus<double>{});
  return y;
}

}  // namespace vmp
