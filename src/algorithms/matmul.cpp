#include "algorithms/matmul.hpp"

#include <limits>

#include "comm/shift.hpp"
#include "core/elementwise.hpp"
#include "core/kernels.hpp"
#include "core/primitives.hpp"

namespace vmp {

DistMatrix<double> matmul(const DistMatrix<double>& A,
                          const DistMatrix<double>& B) {
  VMP_REQUIRE(&A.grid() == &B.grid(), "operands live on different grids");
  VMP_REQUIRE(A.ncols() == B.nrows(), "inner dimensions must agree");
  Grid& grid = A.grid();
  DistMatrix<double> C(grid, A.nrows(), B.ncols(),
                       MatrixLayout{A.layout().rows, B.layout().cols});
  for (std::size_t k = 0; k < A.ncols(); ++k) {
    // Column k of A, replicated across grid columns; row k of B,
    // replicated across grid rows — exactly what the local rank-1
    // accumulation needs.
    const DistVector<double> a = extract(A, Axis::Col, k);
    const DistVector<double> b = extract(B, Axis::Row, k);
    VMP_ASSERT(a.part() == C.layout().rows && b.part() == C.layout().cols,
               "panel partitions must match the result embedding");
    rank1_update(C, 1.0, a, b);
  }
  return C;
}

DistMatrix<double> matmul_summa(const DistMatrix<double>& A,
                                const DistMatrix<double>& B) {
  VMP_REQUIRE(&A.grid() == &B.grid(), "operands live on different grids");
  VMP_REQUIRE(A.ncols() == B.nrows(), "inner dimensions must agree");
  VMP_REQUIRE(A.layout().cols == Part::Block && B.layout().rows == Part::Block,
              "matmul_summa needs Block partitioning of the reduction axis");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  const std::size_t K = A.ncols();
  DistMatrix<double> C(grid, A.nrows(), B.ncols(),
                       MatrixLayout{A.layout().rows, B.layout().cols});

  // Panels are the intersection intervals of A's column-ownership blocks
  // and B's row-ownership blocks: within one interval the A-slice lives on
  // a single grid column and the B-slice on a single grid row, so each is
  // distributed by ONE broadcast.
  std::size_t k0 = 0;
  while (k0 < K) {
    const std::uint32_t Ac = A.colmap().owner(k0);
    const std::uint32_t Br = B.rowmap().owner(k0);
    const std::size_t a_end =
        block_begin(K, grid.pcols(), Ac) + A.colmap().size(Ac);
    const std::size_t b_end =
        block_begin(K, grid.prows(), Br) + B.rowmap().size(Br);
    const std::size_t k1 = std::min(a_end, b_end);
    const std::size_t w = k1 - k0;

    // A-slice: rows-local × w, copied out by the owning grid column and
    // broadcast along each grid row.
    DistBuffer<double> apanel(cube);
    const std::size_t a_lc0 = A.colmap().local(k0);
    const std::size_t a_rows_max =
        (A.nrows() + grid.prows() - 1) / grid.prows();
    apanel.reserve_each(a_rows_max * w);
    cube.compute(a_rows_max * w, A.nrows() * w, [&](proc_t q) {
      apanel.assign(q, A.lrows(q) * w, 0.0);
      if (grid.pcol(q) != Ac) return;
      const std::size_t lcn = A.lcols(q);
      const std::span<const double> blk = A.block(q);
      const std::span<double> ap = apanel.tile(q);
      for (std::size_t lr = 0; lr < A.lrows(q); ++lr)
        kern::copy(blk.subspan(lr * lcn + a_lc0, w), ap.subspan(lr * w, w));
    });
    broadcast_auto(cube, apanel, grid.within_row(), Ac,
                   [&](proc_t q) { return A.lrows(q) * w; });

    // B-slice: w × cols-local, broadcast along each grid column.
    DistBuffer<double> bpanel(cube);
    const std::size_t b_lr0 = B.rowmap().local(k0);
    const std::size_t b_cols_max =
        (B.ncols() + grid.pcols() - 1) / grid.pcols();
    bpanel.reserve_each(b_cols_max * w);
    cube.compute(b_cols_max * w, B.ncols() * w, [&](proc_t q) {
      bpanel.assign(q, w * B.lcols(q), 0.0);
      if (grid.prow(q) != Br) return;
      const std::size_t lcn = B.lcols(q);
      const std::span<const double> blk = B.block(q);
      const std::span<double> bp = bpanel.tile(q);
      for (std::size_t kk = 0; kk < w; ++kk)
        kern::copy(blk.subspan((b_lr0 + kk) * lcn, lcn),
                   bp.subspan(kk * lcn, lcn));
    });
    broadcast_auto(cube, bpanel, grid.within_col(), Br,
                   [&](proc_t q) { return w * B.lcols(q); });

    // Local GEMM accumulate.
    cube.compute(2 * C.max_block() * w, 2 * C.nrows() * C.ncols() * w,
                 [&](proc_t q) {
                   const std::size_t lrn = C.lrows(q), lcn = C.lcols(q);
                   std::span<double> cblk = C.block(q);
                   const std::span<const double> ap = apanel.tile(q);
                   const std::span<const double> bp = bpanel.tile(q);
                   for (std::size_t lr = 0; lr < lrn; ++lr)
                     for (std::size_t kk = 0; kk < w; ++kk)
                       kern::axpy(cblk.subspan(lr * lcn, lcn), ap[lr * w + kk],
                                  bp.subspan(kk * lcn, lcn));
                 });
    k0 = k1;
  }
  return C;
}

namespace {

/// The hyper-systolic shift-base schedule on a d-cube ring: K = 2^⌈d/2⌉
/// stored copies (the base {0, 1, …, K−1} of unit strides) times
/// L = p / K streaming phases of stride K.  The residues a + b·K for
/// a ∈ [0, K), b ∈ [0, L) cover every ring offset exactly once, so each
/// processor computes each (row-block, reduction-block) pair exactly once.
struct HyperPlan {
  std::uint32_t P = 1;
  std::uint32_t K = 1;
  std::uint32_t L = 1;
};

[[nodiscard]] HyperPlan hyper_plan(int d) {
  HyperPlan h;
  h.P = proc_t{1} << d;
  h.K = proc_t{1} << ((d + 1) / 2);
  h.L = h.P / h.K;
  return h;
}

[[nodiscard]] bool hyper_eligible(const DistMatrix<double>& A,
                                  const DistMatrix<double>& B) {
  return A.grid().pcols() == 1 && A.layout().rows == Part::Block &&
         B.layout().rows == Part::Block;
}

[[nodiscard]] bool summa_eligible(const DistMatrix<double>& A,
                                  const DistMatrix<double>& B) {
  return A.layout().cols == Part::Block && B.layout().rows == Part::Block;
}

}  // namespace

DistMatrix<double> matmul_hyper(const DistMatrix<double>& A,
                                const DistMatrix<double>& B) {
  VMP_REQUIRE(&A.grid() == &B.grid(), "operands live on different grids");
  VMP_REQUIRE(A.ncols() == B.nrows(), "inner dimensions must agree");
  VMP_REQUIRE(A.grid().pcols() == 1,
              "matmul_hyper runs on a 1-D (row-partitioned) grid");
  VMP_REQUIRE(A.layout().rows == Part::Block && B.layout().rows == Part::Block,
              "matmul_hyper needs Block row partitioning of both operands");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  const HyperPlan hp = hyper_plan(cube.dim());
  const std::uint32_t P = hp.P, K = hp.K, L = hp.L;
  const std::size_t kk = A.ncols(), m = B.ncols();
  DistMatrix<double> C(grid, A.nrows(), m,
                       MatrixLayout{Part::Block, B.layout().cols});
  VMP_TRACE(cube, "matmul_hyper");
  const auto batch = cube.session();
  const SubcubeSet ring = grid.whole();

  // Ring geometry: position r lives on processor gray_encode(r); on a 1-D
  // grid the processor index IS the block-row index, so the block-row at
  // ring position r is gray_encode(r mod P).
  const auto row_at = [&](std::uint32_t pos) -> proc_t {
    return ring_proc(RingOrder::Gray, pos & (P - 1));
  };

  // Replicate A along the shift base: copy a at ring position r holds
  // block-row row_at(r − a), produced by shifting copy a−1 one position
  // forward.  K stored copies, K − 1 unit-stride rounds.
  std::vector<DistBuffer<double>> acopy;
  acopy.reserve(K);
  {
    VMP_TRACE(cube, "hyper_replicate");
    for (std::uint32_t a = 0; a < K; ++a) {
      acopy.emplace_back(cube);
      acopy[a].reserve_each(A.max_block());
      DistBuffer<double>& cur = acopy[a];
      if (a == 0) {
        cube.compute(A.max_block(), A.nrows() * kk,
                     [&](proc_t q) { cur.assign(q, A.block(q)); });
      } else {
        const DistBuffer<double>& prev = acopy[a - 1];
        cube.compute(A.max_block(), A.nrows() * kk,
                     [&](proc_t q) { cur.assign(q, prev.tile(q)); });
        shift_blocks(cube, cur, ring, 1, RingOrder::Gray);
      }
    }
  }

  // One live copy of B, streamed through the phases; K zero-initialized
  // C-partial copies, cpart[a] at position r accumulating block-row
  // row_at(r − a) — the same row index as acopy[a].
  DistBuffer<double> bbuf(cube);
  bbuf.reserve_each(B.max_block());
  cube.compute(B.max_block(), kk * m,
               [&](proc_t q) { bbuf.assign(q, B.block(q)); });
  std::vector<DistBuffer<double>> cpart;
  cpart.reserve(K);
  for (std::uint32_t a = 0; a < K; ++a) {
    cpart.emplace_back(cube);
    cpart[a].reserve_each(C.max_block());
  }
  cube.compute(std::uint64_t{K} * C.max_block(),
               std::uint64_t{K} * A.nrows() * m, [&](proc_t q) {
                 const std::uint32_t r = ring_pos(RingOrder::Gray, q);
                 for (std::uint32_t a = 0; a < K; ++a)
                   cpart[a].assign(
                       q, A.rowmap().size(row_at(r + P - a)) * m, 0.0);
               });

  // Systolic phases: in phase b the live B copy at position r holds
  // block-row R2 = row_at(r − b·K); every stored A copy a contributes
  // C[R1] += A[R1][:, rows(R2)] · B[R2] with R1 = row_at(r − a).  The
  // (a, b ascending) accumulation order is a fixed per-processor schedule,
  // so results are bit-identical at any thread count.
  {
    VMP_TRACE(cube, "hyper_stream");
    for (std::uint32_t b = 0; b < L; ++b) {
      if (b != 0)
        shift_blocks(cube, bbuf, ring, static_cast<int>(K), RingOrder::Gray);
      std::uint64_t maxf = 0, totf = 0;
      cube.each_proc([&](proc_t q) {
        const std::uint32_t r = ring_pos(RingOrder::Gray, q);
        const std::uint64_t w = B.rowmap().size(row_at(r + P - b * K));
        std::uint64_t f = 0;
        for (std::uint32_t a = 0; a < K; ++a)
          f += 2 * A.rowmap().size(row_at(r + P - a)) * w * m;
        totf += f;
        maxf = std::max(maxf, f);
      });
      cube.compute(maxf, totf, [&](proc_t q) {
        const std::uint32_t r = ring_pos(RingOrder::Gray, q);
        const proc_t R2 = row_at(r + P - b * K);
        const std::size_t w = B.rowmap().size(R2);
        if (w == 0) return;
        // A's columns are whole on a 1-D grid (pcols == 1), so B's global
        // row range is directly A's local column range.
        const std::size_t c0 = B.rowmap().global_begin(R2);
        const std::span<const double> bp = bbuf.tile(q);
        VMP_ASSERT(bp.size() == w * m, "streamed B tile must be w × m");
        for (std::uint32_t a = 0; a < K; ++a) {
          const std::size_t lra = A.rowmap().size(row_at(r + P - a));
          const std::span<const double> ap = acopy[a].tile(q);
          std::span<double> cp = cpart[a].tile(q);
          for (std::size_t lr = 0; lr < lra; ++lr) {
            const std::span<const double> arow = ap.subspan(lr * kk + c0, w);
            std::span<double> crow = cp.subspan(lr * m, m);
            for (std::size_t t = 0; t < w; ++t)
              kern::axpy(crow, arow[t], bp.subspan(t * m, m));
          }
        }
      });
    }
  }

  // Combine: walk the base backwards, shifting the accumulator one
  // position back per step so it always aligns with the next copy's row
  // block; after K − 1 rounds the accumulator at position r is the full C
  // block-row row_at(r) — sitting on its owner.
  {
    VMP_TRACE(cube, "hyper_combine");
    DistBuffer<double>& acc = cpart[K - 1];
    for (std::uint32_t i = 1; i < K; ++i) {
      shift_blocks(cube, acc, ring, -1, RingOrder::Gray);
      const DistBuffer<double>& add = cpart[K - 1 - i];
      cube.compute(C.max_block(), A.nrows() * m, [&](proc_t q) {
        std::span<double> dst = acc.tile(q);
        const std::span<const double> src = add.tile(q);
        VMP_ASSERT(dst.size() == src.size(), "combine tiles must align");
        kern::axpy(dst, 1.0, src);
      });
    }
    cube.compute(C.max_block(), A.nrows() * m, [&](proc_t q) {
      VMP_ASSERT(acc.len(q) == C.lrows(q) * C.lcols(q),
                 "combined block must land on its owner");
      kern::copy(acc.tile(q), C.block(q));
    });
  }
  return C;
}

namespace {

/// First-order topology correction for the broadcast terms of the cost
/// models: the average per-logical-edge route dilation in start-up and
/// serialized-element units.  Exactly {1, 1} on unit-hop presets; the
/// shift terms don't use this — they follow the physical routes exactly
/// via shift_cost_model.
struct CommScale {
  double startup = 1.0;
  double elems = 1.0;
};

[[nodiscard]] CommScale comm_scale(Cube& cube) {
  if (cube.unit_hop() || cube.dim() == 0) return {};
  const Topology& topo = cube.topology();
  double su = 0.0, el = 0.0;
  std::size_t n = 0;
  std::vector<Hop> hops;
  for (int d = 0; d < cube.dim(); ++d)
    for (proc_t q = 0; q < cube.procs(); ++q) {
      hops.clear();
      topo.route(q, q ^ (proc_t{1} << d), hops);
      double s = 0.0, e = 0.0;
      for (const Hop& h : hops) {
        const AxisCharge c = topo.axis_charge(h.axis);
        s += c.startup_mult;
        e += c.per_elem_mult;
      }
      su += s;
      el += e;
      ++n;
    }
  return CommScale{su / static_cast<double>(n), el / static_cast<double>(n)};
}

/// Broadcast of `len` elements over a k-dimensional subcube: the cheaper
/// of binomial-tree and scatter-allgather, the same pair broadcast_auto
/// models (pipelining refinements shift both backends equally and are
/// ignored here — the selector needs rank order, not absolute time).
[[nodiscard]] double bcast_model(const CostParams& cp, const CommScale& s,
                                 int kdims, double len) {
  if (kdims == 0 || len <= 0.0) return 0.0;
  const double tau = cp.startup_us * s.startup;
  const double tc = cp.per_elem_us * s.elems;
  const double bin = kdims * (tau + len * tc);
  const double sag = 2.0 * kdims * tau + 2.0 * len * tc;
  return std::min(bin, sag);
}

[[nodiscard]] constexpr double ceil_div(std::size_t n, std::uint32_t p) {
  return static_cast<double>((n + p - 1) / p);
}

}  // namespace

MatmulCost matmul_cost(const DistMatrix<double>& A,
                       const DistMatrix<double>& B) {
  VMP_REQUIRE(&A.grid() == &B.grid(), "operands live on different grids");
  VMP_REQUIRE(A.ncols() == B.nrows(), "inner dimensions must agree");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  const CostParams& cp = cube.costs();
  const CommScale sc = comm_scale(cube);
  const double ta = cp.flop_us;
  const std::size_t n = A.nrows(), kk = A.ncols(), m = B.ncols();
  const std::uint32_t pr = grid.prows(), pc = grid.pcols();
  const double lr_max = ceil_div(n, pr);   // C/A rows per processor
  const double lc_max = ceil_div(m, pc);   // C/B cols per processor
  MatmulCost out;

  // Rank-1: per reduction index, one column extract (copy + broadcast
  // across grid columns), one row extract (copy + broadcast across grid
  // rows) and a local rank-1 update.
  out.rank1 = static_cast<double>(kk) *
              (lr_max * ta + bcast_model(cp, sc, grid.col_dims(), lr_max) +
               lc_max * ta + bcast_model(cp, sc, grid.row_dims(), lc_max) +
               2.0 * lr_max * lc_max * ta);

  // SUMMA: walk the real panel intervals and price each panel's two
  // broadcasts, copy-outs and local GEMM.
  if (summa_eligible(A, B)) {
    double c = 0.0;
    std::size_t k0 = 0;
    while (k0 < kk) {
      const std::uint32_t Ac = A.colmap().owner(k0);
      const std::uint32_t Br = B.rowmap().owner(k0);
      const std::size_t a_end = block_begin(kk, pc, Ac) + A.colmap().size(Ac);
      const std::size_t b_end = block_begin(kk, pr, Br) + B.rowmap().size(Br);
      const std::size_t k1 = std::min(a_end, b_end);
      const double w = static_cast<double>(k1 - k0);
      c += lr_max * w * ta + bcast_model(cp, sc, grid.col_dims(), lr_max * w);
      c += w * lc_max * ta + bcast_model(cp, sc, grid.row_dims(), w * lc_max);
      c += 2.0 * lr_max * lc_max * w * ta;
      k0 = k1;
    }
    out.summa = c;
  } else {
    out.summa = std::numeric_limits<double>::infinity();
  }

  // Hyper-systolic: K−1 unit A-shifts, L−1 stride-K B-shifts, K−1 unit
  // combine shifts + adds, plus the staging copies and the phase GEMMs —
  // shift terms priced on the physical topology by shift_cost_model.
  if (hyper_eligible(A, B)) {
    const HyperPlan hp = hyper_plan(cube.dim());
    const SubcubeSet ring = grid.whole();
    const double maxA = ceil_div(n, hp.P) * static_cast<double>(kk);
    const double maxB = ceil_div(kk, hp.P) * static_cast<double>(m);
    const double maxC = ceil_div(n, hp.P) * static_cast<double>(m);
    double c = maxA * ta + maxB * ta + hp.K * maxC * ta;  // staging + zeroing
    c += (hp.K - 1) *
         (maxA * ta + shift_cost_model(cube, ring, 1,
                                       static_cast<std::size_t>(maxA)));
    c += (hp.L - 1) * shift_cost_model(cube, ring, static_cast<int>(hp.K),
                                       static_cast<std::size_t>(maxB));
    c += static_cast<double>(hp.L) * 2.0 * hp.K * ceil_div(n, hp.P) *
         ceil_div(kk, hp.P) * static_cast<double>(m) * ta;
    c += (hp.K - 1) *
         (shift_cost_model(cube, ring, -1, static_cast<std::size_t>(maxC)) +
          maxC * ta);
    c += maxC * ta;  // final copy into C
    out.hyper = c;
  } else {
    out.hyper = std::numeric_limits<double>::infinity();
  }
  return out;
}

DistMatrix<double> matmul_auto(const DistMatrix<double>& A,
                               const DistMatrix<double>& B) {
  const MatmulCost c = matmul_cost(A, B);
  if (c.hyper <= c.summa && c.hyper <= c.rank1) return matmul_hyper(A, B);
  if (c.summa <= c.rank1) return matmul_summa(A, B);
  return matmul(A, B);
}

}  // namespace vmp
