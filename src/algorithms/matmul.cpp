#include "algorithms/matmul.hpp"

#include "core/elementwise.hpp"
#include "core/kernels.hpp"
#include "core/primitives.hpp"

namespace vmp {

DistMatrix<double> matmul(const DistMatrix<double>& A,
                          const DistMatrix<double>& B) {
  VMP_REQUIRE(&A.grid() == &B.grid(), "operands live on different grids");
  VMP_REQUIRE(A.ncols() == B.nrows(), "inner dimensions must agree");
  Grid& grid = A.grid();
  DistMatrix<double> C(grid, A.nrows(), B.ncols(),
                       MatrixLayout{A.layout().rows, B.layout().cols});
  for (std::size_t k = 0; k < A.ncols(); ++k) {
    // Column k of A, replicated across grid columns; row k of B,
    // replicated across grid rows — exactly what the local rank-1
    // accumulation needs.
    const DistVector<double> a = extract(A, Axis::Col, k);
    const DistVector<double> b = extract(B, Axis::Row, k);
    VMP_ASSERT(a.part() == C.layout().rows && b.part() == C.layout().cols,
               "panel partitions must match the result embedding");
    rank1_update(C, 1.0, a, b);
  }
  return C;
}

DistMatrix<double> matmul_summa(const DistMatrix<double>& A,
                                const DistMatrix<double>& B) {
  VMP_REQUIRE(&A.grid() == &B.grid(), "operands live on different grids");
  VMP_REQUIRE(A.ncols() == B.nrows(), "inner dimensions must agree");
  VMP_REQUIRE(A.layout().cols == Part::Block && B.layout().rows == Part::Block,
              "matmul_summa needs Block partitioning of the reduction axis");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  const std::size_t K = A.ncols();
  DistMatrix<double> C(grid, A.nrows(), B.ncols(),
                       MatrixLayout{A.layout().rows, B.layout().cols});

  // Panels are the intersection intervals of A's column-ownership blocks
  // and B's row-ownership blocks: within one interval the A-slice lives on
  // a single grid column and the B-slice on a single grid row, so each is
  // distributed by ONE broadcast.
  std::size_t k0 = 0;
  while (k0 < K) {
    const std::uint32_t Ac = A.colmap().owner(k0);
    const std::uint32_t Br = B.rowmap().owner(k0);
    const std::size_t a_end =
        block_begin(K, grid.pcols(), Ac) + A.colmap().size(Ac);
    const std::size_t b_end =
        block_begin(K, grid.prows(), Br) + B.rowmap().size(Br);
    const std::size_t k1 = std::min(a_end, b_end);
    const std::size_t w = k1 - k0;

    // A-slice: rows-local × w, copied out by the owning grid column and
    // broadcast along each grid row.
    DistBuffer<double> apanel(cube);
    const std::size_t a_lc0 = A.colmap().local(k0);
    const std::size_t a_rows_max =
        (A.nrows() + grid.prows() - 1) / grid.prows();
    apanel.reserve_each(a_rows_max * w);
    cube.compute(a_rows_max * w, A.nrows() * w, [&](proc_t q) {
      apanel.assign(q, A.lrows(q) * w, 0.0);
      if (grid.pcol(q) != Ac) return;
      const std::size_t lcn = A.lcols(q);
      const std::span<const double> blk = A.block(q);
      const std::span<double> ap = apanel.tile(q);
      for (std::size_t lr = 0; lr < A.lrows(q); ++lr)
        kern::copy(blk.subspan(lr * lcn + a_lc0, w), ap.subspan(lr * w, w));
    });
    broadcast_auto(cube, apanel, grid.within_row(), Ac,
                   [&](proc_t q) { return A.lrows(q) * w; });

    // B-slice: w × cols-local, broadcast along each grid column.
    DistBuffer<double> bpanel(cube);
    const std::size_t b_lr0 = B.rowmap().local(k0);
    const std::size_t b_cols_max =
        (B.ncols() + grid.pcols() - 1) / grid.pcols();
    bpanel.reserve_each(b_cols_max * w);
    cube.compute(b_cols_max * w, B.ncols() * w, [&](proc_t q) {
      bpanel.assign(q, w * B.lcols(q), 0.0);
      if (grid.prow(q) != Br) return;
      const std::size_t lcn = B.lcols(q);
      const std::span<const double> blk = B.block(q);
      const std::span<double> bp = bpanel.tile(q);
      for (std::size_t kk = 0; kk < w; ++kk)
        kern::copy(blk.subspan((b_lr0 + kk) * lcn, lcn),
                   bp.subspan(kk * lcn, lcn));
    });
    broadcast_auto(cube, bpanel, grid.within_col(), Br,
                   [&](proc_t q) { return w * B.lcols(q); });

    // Local GEMM accumulate.
    cube.compute(2 * C.max_block() * w, 2 * C.nrows() * C.ncols() * w,
                 [&](proc_t q) {
                   const std::size_t lrn = C.lrows(q), lcn = C.lcols(q);
                   std::span<double> cblk = C.block(q);
                   const std::span<const double> ap = apanel.tile(q);
                   const std::span<const double> bp = bpanel.tile(q);
                   for (std::size_t lr = 0; lr < lrn; ++lr)
                     for (std::size_t kk = 0; kk < w; ++kk)
                       kern::axpy(cblk.subspan(lr * lcn, lcn), ap[lr * w + kk],
                                  bp.subspan(kk * lcn, lcn));
                 });
    k0 = k1;
  }
  return C;
}

}  // namespace vmp
