#include "algorithms/simplex.hpp"

#include <cmath>
#include <limits>

#include "algorithms/tableau.hpp"
#include "core/elementwise.hpp"
#include "core/primitives.hpp"
#include "core/vector_ops.hpp"
#include "obs/trace.hpp"

namespace vmp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct DistTableau {
  DistMatrix<double> T;
  std::vector<std::size_t> basis;
  std::size_t nvars, nslack, nart;
  [[nodiscard]] std::size_t width() const { return nvars + nslack + nart; }
  [[nodiscard]] std::size_t allowed() const { return nvars + nslack; }
  [[nodiscard]] std::size_t m() const { return T.nrows() - 1; }
};

/// Entering column: most-negative (Dantzig) or smallest-index (Bland)
/// reduced cost below -eps; -1 if optimal.
std::ptrdiff_t entering(DistTableau& tb, const SimplexOptions& o) {
  VMP_TRACE(tb.T.grid().cube(), "entering");
  const DistVector<double> obj = extract(tb.T, Axis::Row, 0);
  const std::size_t allowed = tb.allowed();
  const ValueIndex<double> best =
      o.rule == PivotRule::Bland
          ? vec_argmin_key(obj,
                           [&](double v, std::size_t g) {
                             return (g < allowed && v < -o.eps)
                                        ? static_cast<double>(g)
                                        : kInf;
                           })
          : vec_argmin_key(obj, [&](double v, std::size_t g) {
              return (g < allowed && v < -o.eps) ? v : kInf;
            });
  return best.index;
}

/// Minimum-ratio leaving row for the extracted entering column;
/// -1 if unbounded.
std::ptrdiff_t leaving(DistTableau& tb, const DistVector<double>& colv,
                       const SimplexOptions& o) {
  VMP_TRACE(tb.T.grid().cube(), "leaving");
  DistVector<double> ratios = extract(tb.T, Axis::Col, tb.width());
  vec_zip_indexed(ratios, colv, [&](double rhs, double a, std::size_t g) {
    return (g >= 1 && a > o.eps) ? rhs / a : kInf;
  });
  const ValueIndex<double> best =
      vec_argmin_key(ratios, [](double v, std::size_t) { return v; });
  if (best.index < 0 || o.rule != PivotRule::Bland) return best.index;
  // Bland: among the exact min-ratio rows, the smallest basis variable.
  const double target = best.value;
  const ValueIndex<double> bland =
      vec_argmin_key(ratios, [&](double v, std::size_t g) {
        return v == target ? static_cast<double>(tb.basis[g - 1]) : kInf;
      });
  return bland.index;
}

/// Scale the pivot row, eliminate the pivot column from every other row —
/// extract / insert / rank-1 update, all primitive-level.  With
/// opts.fused_pivot the four local passes after the extracts collapse into
/// one fused sweep; the communication sequence and every floating-point
/// operation are unchanged, so results are bit-identical (the pivot row
/// still goes through the composed path's store-then-update with a -0.0
/// scale, which flips -0.0 entries to +0.0 exactly as rank1_update does).
void pivot(DistTableau& tb, std::size_t prow_i, std::size_t pcol_j,
           const SimplexOptions& o) {
  VMP_TRACE(tb.T.grid().cube(), "pivot");
  DistVector<double> colv = extract(tb.T, Axis::Col, pcol_j);
  const double piv = vec_fetch(colv, prow_i);
  DistVector<double> prow = extract(tb.T, Axis::Row, prow_i);
  if (!o.fused_pivot) {
    vec_apply(prow, [piv](double x) { return x / piv; });
    insert(tb.T, Axis::Row, prow_i, prow);
    vec_fill_range(colv, prow_i, prow_i + 1, 0.0);
    rank1_update(tb.T, -1.0, colv, prow);
    tb.basis[prow_i - 1] = pcol_j;
    return;
  }
  Grid& grid = tb.T.grid();
  const std::uint32_t R = tb.T.rowmap().owner(prow_i);
  const std::size_t lrp = tb.T.rowmap().local(prow_i);
  std::uint64_t max_flops = 0, total_flops = 0;
  grid.cube().each_proc([&](proc_t q) {
    const std::uint64_t lrn = tb.T.lrows(q), lcn = tb.T.lcols(q);
    const std::uint64_t f = lcn + 2 * lrn * lcn;  // lcn: the row scaling
    max_flops = std::max(max_flops, f);
    total_flops += f;
  });
  grid.cube().compute(max_flops, total_flops, [&](proc_t q) {
    const std::size_t lrn = tb.T.lrows(q), lcn = tb.T.lcols(q);
    std::span<double> blk = tb.T.block(q);
    const std::span<double> rp = prow.data().tile(q);
    for (double& x : rp) x = x / piv;
    const std::span<const double> cp = colv.piece(q);
    const bool owner_here = grid.prow(q) == R;
    for (std::size_t lr = 0; lr < lrn; ++lr) {
      const bool is_pivot_row = owner_here && lr == lrp;
      const double scale = -1.0 * (is_pivot_row ? 0.0 : cp[lr]);
      if (is_pivot_row) {
        for (std::size_t lc = 0; lc < lcn; ++lc) {
          double v = rp[lc];
          v += scale * rp[lc];
          blk[lr * lcn + lc] = v;
        }
      } else {
        for (std::size_t lc = 0; lc < lcn; ++lc)
          blk[lr * lcn + lc] += scale * rp[lc];
      }
    }
  });
  tb.basis[prow_i - 1] = pcol_j;
}

/// Run pivots to optimality.
LpStatus optimize(DistTableau& tb, const SimplexOptions& o,
                  std::size_t& iters) {
  while (iters < o.max_iters) {
    const std::ptrdiff_t j = entering(tb, o);
    if (j < 0) return LpStatus::Optimal;
    const DistVector<double> colv =
        extract(tb.T, Axis::Col, static_cast<std::size_t>(j));
    const std::ptrdiff_t i =
        leaving(tb, colv, o);
    if (i < 0) return LpStatus::Unbounded;
    pivot(tb, static_cast<std::size_t>(i), static_cast<std::size_t>(j), o);
    ++iters;
  }
  return LpStatus::IterationLimit;
}

}  // namespace

LpSolution simplex_solve(Grid& grid, const LpProblem& lp, SimplexOptions opts,
                         MatrixLayout layout) {
  VMP_TRACE(grid.cube(), "simplex");
  detail::TableauSetup setup = detail::build_tableau(lp);
  const std::size_t m = lp.ncons, nv = lp.nvars;
  const std::size_t width = setup.width();

  DistTableau tb{DistMatrix<double>(grid, m + 1, width + 1, layout),
                 std::move(setup.basis), setup.nvars, setup.nslack,
                 setup.nart};
  tb.T.load(setup.T.data());
  // Shipping the initial tableau from the front end is charged as one bulk
  // transfer (the CM timed I/O separately; one start-up suffices here).
  grid.cube().clock().charge_comm_step((m + 1) * (width + 1), 1,
                                       (m + 1) * (width + 1));

  LpSolution sol;

  // -- Phase I ---------------------------------------------------------------
  if (tb.nart > 0) {
    const LpStatus st = optimize(tb, opts, sol.phase1_iterations);
    sol.iterations = sol.phase1_iterations;
    if (st == LpStatus::IterationLimit) {
      sol.status = st;
      return sol;
    }
    if (mat_fetch(tb.T, 0, width) < -opts.eps) {
      sol.status = LpStatus::Infeasible;
      return sol;
    }
    // Drive still-basic artificials out where possible (first usable
    // column, exactly as the serial reference does).
    for (std::size_t i = 1; i <= m; ++i) {
      if (tb.basis[i - 1] < tb.allowed()) continue;
      const DistVector<double> rowi = extract(tb.T, Axis::Row, i);
      const std::size_t allowed = tb.allowed();
      const ValueIndex<double> j =
          vec_argmin_key(rowi, [&](double v, std::size_t g) {
            return (g < allowed && std::abs(v) > opts.eps)
                       ? static_cast<double>(g)
                       : kInf;
          });
      if (j.index >= 0) {
        pivot(tb, i, static_cast<std::size_t>(j.index), opts);
        ++sol.iterations;
      }
    }
  }

  // -- Phase II ---------------------------------------------------------------
  {
    // Fresh objective row shipped from the front end (one bulk transfer),
    // then the basic columns are eliminated from it.
    std::vector<double> row0(width + 1, 0.0);
    for (std::size_t j = 0; j < nv; ++j) row0[j] = -lp.c[j];
    DistVector<double> obj(grid, width + 1, Align::Cols, layout.cols);
    obj.load(row0);
    grid.cube().clock().charge_comm_step(width + 1, 1, width + 1);
    for (std::size_t i = 1; i <= m; ++i) {
      const double f = vec_fetch(obj, tb.basis[i - 1]);
      if (f == 0.0) continue;
      const DistVector<double> rowi = extract(tb.T, Axis::Row, i);
      vec_axpy(obj, -f, rowi);
    }
    insert(tb.T, Axis::Row, 0, obj);
  }
  sol.status = optimize(tb, opts, sol.iterations);
  if (sol.status != LpStatus::Optimal) return sol;

  // Host readback of the optimum (untimed, like to_host()).
  sol.objective = tb.T.at(0, width);
  sol.x.assign(nv, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (tb.basis[i] < nv) sol.x[tb.basis[i]] = tb.T.at(i + 1, width);
  return sol;
}

}  // namespace vmp
