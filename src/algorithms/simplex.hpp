/// \file simplex.hpp
/// \brief Distributed two-phase dense-tableau primal simplex — the paper's
///        third demonstration algorithm, built from the four primitives:
///
///        per pivot:  extract_row(0)  + MinLoc reduce   (entering column)
///                    extract_col ×2  + MinLoc reduce   (ratio test)
///                    extract_row / insert_row          (pivot row scaling)
///                    rank1_update                      (tableau update,
///                                                       purely local)
///
///        Mirrors vmp::serial::simplex_solve operation-for-operation: same
///        tableau (algorithms/tableau.hpp), same tie-breaks, same update
///        arithmetic — the two trajectories coincide pivot by pivot.
#pragma once

#include "algorithms/lp.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/grid.hpp"

namespace vmp {

/// Solve max c·x s.t. Ax ≤ b, x ≥ 0 on the processor grid.  The tableau is
/// embedded with `layout` (Cyclic keeps pivoting load-balanced and is the
/// default).
[[nodiscard]] LpSolution simplex_solve(Grid& grid, const LpProblem& lp,
                                       SimplexOptions opts = {},
                                       MatrixLayout layout =
                                           MatrixLayout::cyclic());

}  // namespace vmp
