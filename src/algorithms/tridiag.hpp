/// \file tridiag.hpp
/// \brief Distributed tridiagonal solver by parallel cyclic reduction
///        (PCR) — the data-parallel method of the compendium's tridiagonal
///        / alternating-direction papers (Johnsson & Ho), expressed with
///        the library's vector vocabulary: ⌈lg n⌉ rounds, each one
///        shifted-fetch (vec_shift) plus local 5-point updates.
#pragma once

#include <span>
#include <vector>

#include "embed/grid.hpp"

namespace vmp {

/// Solve a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i] for a diagonally
/// dominant system of n equations embedded Linear on the grid's cube.
/// Cost: ⌈lg n⌉ · (routing sweep + O(n/p) arithmetic).
[[nodiscard]] std::vector<double> tridiag_solve_pcr(
    Grid& grid, std::span<const double> a, std::span<const double> b,
    std::span<const double> c, std::span<const double> d);

}  // namespace vmp
