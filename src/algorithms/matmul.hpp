/// \file matmul.hpp
/// \brief Dense matrix-matrix multiplication built from the primitives —
///        the rank-1 ("outer product" / SUMMA-with-panel-1) formulation:
///
///            C = Σ_k  extract_col(A, k) ⊗ extract_row(B, k)
///
///        Each term is two extracts (broadcasts along the grid axes) plus
///        one purely local rank-1 accumulation, so the inner loop has the
///        same cost anatomy as Gaussian elimination.  This is the level-3
///        pattern the companion TMC/Yale reports built their matrix
///        kernels around.
#pragma once

#include "embed/dist_matrix.hpp"

namespace vmp {

/// C = A·B.  A is n×k, B is k×m; A's column partition must equal B's row
/// partition (they index the same reduction dimension).  The result
/// inherits A's row partition and B's column partition.
[[nodiscard]] DistMatrix<double> matmul(const DistMatrix<double>& A,
                                        const DistMatrix<double>& B);

/// C = A·B by block-panel SUMMA: instead of one broadcast per reduction
/// index, whole ownership panels of A-columns and B-rows are broadcast
/// along the grid rows / columns and multiplied locally — O(√p) start-ups
/// instead of O(k·lg p), the "parallelize two loops with aligned panels"
/// choice of the era's matrix-multiplication analyses.  Requires Block
/// partitioning of the reduction axis on both operands.
[[nodiscard]] DistMatrix<double> matmul_summa(const DistMatrix<double>& A,
                                              const DistMatrix<double>& B);

}  // namespace vmp
