/// \file matmul.hpp
/// \brief Dense matrix-matrix multiplication backends and their cost-model
///        selector (docs/matmul.md):
///
///  * `matmul`       — rank-1 / outer-product: C = Σ_k a_k ⊗ b_k, one pair
///                     of extract broadcasts per reduction index.
///  * `matmul_summa` — block-panel SUMMA: whole ownership panels broadcast
///                     along the grid rows/columns, O(√p) start-ups.
///  * `matmul_hyper` — hyper-systolic (Lippert et al.; Galli): the operands
///                     move along a Gray-coded ring on the shift-base
///                     schedule {0,1,…,K−1} × K with K ≈ √p, cutting the
///                     per-processor communication volume from the O(p)
///                     block-moves of the broadcast formulations to O(√p).
///  * `matmul_auto`  — picks the cheapest eligible backend from simulated
///                     cost models parameterized by the machine's
///                     CostParams and physical topology.
#pragma once

#include "embed/dist_matrix.hpp"

namespace vmp {

/// C = A·B.  A is n×k, B is k×m; A's column partition must equal B's row
/// partition (they index the same reduction dimension).  The result
/// inherits A's row partition and B's column partition.
[[nodiscard]] DistMatrix<double> matmul(const DistMatrix<double>& A,
                                        const DistMatrix<double>& B);

/// C = A·B by block-panel SUMMA: instead of one broadcast per reduction
/// index, whole ownership panels of A-columns and B-rows are broadcast
/// along the grid rows / columns and multiplied locally — O(√p) start-ups
/// instead of O(k·lg p), the "parallelize two loops with aligned panels"
/// choice of the era's matrix-multiplication analyses.  Requires Block
/// partitioning of the reduction axis on both operands.
[[nodiscard]] DistMatrix<double> matmul_summa(const DistMatrix<double>& A,
                                              const DistMatrix<double>& B);

/// C = A·B by the hyper-systolic schedule: on a 1-D (row-partitioned,
/// pcols == 1) grid viewed as a Gray-coded ring, A is replicated along the
/// K−1 unit strides of the shift base (K = 2^⌈d/2⌉ ≈ √p), B streams through
/// the p/K systolic phases in stride-K shifts, and the K partial-C copies
/// are summed by a backward combining pass — ~3(√p − 1) block-moves per
/// processor instead of the O(p) panel broadcasts of SUMMA on the same
/// grid.  Requires Block row partitioning of both operands.  Every
/// processor accumulates its blocks in a fixed schedule order, so results
/// are bit-identical across thread counts and repeats; the reduction order
/// differs from matmul_summa's ascending-k order, so the two agree to
/// round-off (the documented ULP budget in docs/matmul.md), not bitwise.
[[nodiscard]] DistMatrix<double> matmul_hyper(const DistMatrix<double>& A,
                                              const DistMatrix<double>& B);

/// Simulated-cost estimates (µs) of the three backends for one A·B on the
/// operands' machine — the quantities matmul_auto compares.  Ineligible
/// backends (hyper off a 1-D Block-row grid, SUMMA without Block reduction
/// axes) are +infinity.  Models are priced with the cube's CostParams; on
/// routed topology presets the shift terms follow the physical routes
/// exactly and the broadcast terms carry a first-order route-dilation
/// correction.
struct MatmulCost {
  double rank1 = 0.0;
  double summa = 0.0;
  double hyper = 0.0;
};
[[nodiscard]] MatmulCost matmul_cost(const DistMatrix<double>& A,
                                     const DistMatrix<double>& B);

/// C = A·B via whichever backend the cost models predict cheapest (ties
/// prefer hyper, then SUMMA — fewer start-ups at equal volume).
[[nodiscard]] DistMatrix<double> matmul_auto(const DistMatrix<double>& A,
                                             const DistMatrix<double>& B);

}  // namespace vmp
