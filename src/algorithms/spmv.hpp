/// \file spmv.hpp
/// \brief Sparse matrix-vector product y = A·x on CSR tiles — the sparse
///        twin of algorithms/matvec.hpp, with the same alignment contract:
///        x must be Cols-aligned (partitioned like A's columns), y comes
///        back Rows-aligned.
///
/// Two spellings, like the dense product:
///   spmv        — composed from the primitives (distribute_like ∘
///                 hadamard ∘ reduce), three tile walks
///   spmv_fused  — one kern::dot_sparse pass + the row-subcube all-reduce,
///                 2·nnz flops; bit-identical to dense matvec_fused on the
///                 densified matrix (see core/kernels.hpp dot_sparse)
#pragma once

#include "embed/dist_sparse_matrix.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// Primitive-composed SpMV: Π = distribute_like(A, x), P = A ∘ Π,
/// y = reduce_rows(P, +).
[[nodiscard]] DistVector<double> spmv(const DistSparseMatrix<double>& A,
                                      const DistVector<double>& x);

/// Fused SpMV: one pass of per-row sparse dot products, then the same
/// all-reduce as the composed form.  Identical results, fewer tile walks.
[[nodiscard]] DistVector<double> spmv_fused(const DistSparseMatrix<double>& A,
                                            const DistVector<double>& x);

}  // namespace vmp
