#include "algorithms/fft.hpp"

#include <numbers>

#include "core/permute.hpp"
#include "core/vector_ops.hpp"
#include "hypercube/bits.hpp"

namespace vmp {
namespace {

/// Bit-reverse the low `bits` bits of x.
[[nodiscard]] std::size_t bit_reverse(std::size_t x, int bits) {
  std::size_t out = 0;
  for (int t = 0; t < bits; ++t) {
    out = (out << 1) | (x & 1u);
    x >>= 1;
  }
  return out;
}

/// The shared machinery: bit-reversal permutation, then L butterfly
/// stages with the given transform sign.
void fft_impl(DistVector<cplx>& v, double sign) {
  VMP_REQUIRE(v.align() == Align::Linear, "fft needs a Linear vector");
  const std::size_t n = v.n();
  VMP_REQUIRE(is_pow2(n), "fft needs a power-of-two length");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  const std::size_t p = cube.node_count();
  VMP_REQUIRE(n >= p, "fewer points than processors");
  const int L = log2_exact(n);
  const int local_bits = L - cube.dim();  // dim(): logical address bits
  const std::size_t block = n / p;  // exact: both are powers of two

  // Decimation-in-time wants bit-reversed input order — the classic
  // stable dimension permutation, one routing sweep.
  {
    std::vector<std::size_t> perm(n);
    for (std::size_t g = 0; g < n; ++g) perm[g] = bit_reverse(g, L);
    v = vec_permute(v, perm);
  }

  // Butterfly stages over point-index bits 0 … L-1.
  for (int t = 0; t < L; ++t) {
    const std::size_t half = std::size_t{1} << t;
    const double angle = sign * std::numbers::pi / static_cast<double>(half);
    if (t < local_bits) {
      // Both butterfly partners live in the same block.
      cube.compute(10 * block / 2, 10 * (n / 2), [&](proc_t q) {
        const std::span<cplx> piece = v.data().tile(q);
        for (std::size_t base = 0; base < block; base += 2 * half) {
          for (std::size_t k = 0; k < half; ++k) {
            const cplx w = std::polar(1.0, angle * static_cast<double>(k));
            cplx& u = piece[base + k];
            cplx& w_elt = piece[base + k + half];
            const cplx tdl = w * w_elt;
            w_elt = u - tdl;
            u = u + tdl;
          }
        }
      });
    } else {
      // Partners differ in processor-address bit t - local_bits: one
      // block exchange, then every processor computes its own half.
      const int dim = t - local_bits;
      DistBuffer<cplx> incoming(cube);
      incoming.reserve_each(block);
      cube.exchange<cplx>(
          dim,
          [&](proc_t q) { return std::span<const cplx>(v.data().tile(q)); },
          [&](proc_t q, std::span<const cplx> in) { incoming.assign(q, in); });
      cube.compute(10 * block, 10 * n, [&](proc_t q) {
        const bool iam_high = bit_of(q, dim) != 0;
        const std::span<cplx> piece = v.data().tile(q);
        const std::span<const cplx> other = incoming.tile(q);
        const std::size_t gbase = static_cast<std::size_t>(q) * block;
        for (std::size_t s = 0; s < block; ++s) {
          // Twiddle index: the global index of the LOW partner mod 2^t.
          const std::size_t glow =
              (gbase + s) & ~(std::size_t{1} << t);
          const cplx w =
              std::polar(1.0, angle * static_cast<double>(glow & (half - 1)));
          if (iam_high) {
            piece[s] = other[s] - w * piece[s];
          } else {
            piece[s] = piece[s] + w * other[s];
          }
        }
      });
    }
  }
}

}  // namespace

void fft(DistVector<cplx>& v) { fft_impl(v, -1.0); }

void ifft(DistVector<cplx>& v) {
  fft_impl(v, +1.0);
  const double inv = 1.0 / static_cast<double>(v.n());
  vec_scale(v, cplx{inv, 0.0});
}

std::vector<cplx> dft_reference(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx s{};
    for (std::size_t g = 0; g < n; ++g) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(g) *
                         static_cast<double>(k) / static_cast<double>(n);
      s += x[g] * std::polar(1.0, ang);
    }
    out[k] = s;
  }
  return out;
}

}  // namespace vmp
