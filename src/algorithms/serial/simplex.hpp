/// \file simplex.hpp
/// \brief Serial two-phase dense-tableau primal simplex — the reference
///        implementation mirrored operation-for-operation by the
///        distributed solver (same tableau, same tie-breaks, same update
///        formulas), and the serial baseline for the timing experiments.
#pragma once

#include "algorithms/lp.hpp"
#include "algorithms/serial/host_matrix.hpp"

namespace vmp::serial {

/// Solve max c·x s.t. Ax ≤ b, x ≥ 0 with the dense-tableau simplex.
[[nodiscard]] LpSolution simplex_solve(const LpProblem& lp,
                                       SimplexOptions opts = {});

}  // namespace vmp::serial
