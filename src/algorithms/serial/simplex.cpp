#include "algorithms/serial/simplex.hpp"

#include <cmath>
#include <limits>

#include "algorithms/tableau.hpp"

namespace vmp::serial {
namespace {

using detail::TableauSetup;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Most-negative (Dantzig) or first-negative (Bland) reduced cost among
/// columns [0, allowed); -1 if none is below -eps.
std::ptrdiff_t entering(const TableauSetup& tb, const SimplexOptions& o) {
  std::ptrdiff_t best = -1;
  double bestval = -o.eps;
  for (std::size_t j = 0; j < tb.allowed(); ++j) {
    const double v = tb.T(0, j);
    if (v < bestval) {
      best = static_cast<std::ptrdiff_t>(j);
      bestval = v;
      if (o.rule == PivotRule::Bland) break;
    }
  }
  return best;
}

/// Minimum-ratio row for entering column j; ties to the smallest row index
/// (Dantzig) or the smallest basis variable (Bland).  -1 if unbounded.
std::ptrdiff_t leaving(const TableauSetup& tb, std::size_t j,
                       const SimplexOptions& o) {
  const std::size_t m = tb.T.nrows() - 1;
  const std::size_t rhs = tb.width();
  double best = kInf;
  std::ptrdiff_t row = -1;
  for (std::size_t i = 1; i <= m; ++i) {
    const double a = tb.T(i, j);
    if (a <= o.eps) continue;
    const double ratio = tb.T(i, rhs) / a;
    if (ratio < best) {
      best = ratio;
      row = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (row < 0 || o.rule != PivotRule::Bland) return row;
  // Bland: among the exact min-ratio rows, the smallest basis variable.
  std::size_t bestvar = std::numeric_limits<std::size_t>::max();
  std::ptrdiff_t blandrow = -1;
  for (std::size_t i = 1; i <= m; ++i) {
    const double a = tb.T(i, j);
    if (a <= o.eps) continue;
    if (tb.T(i, rhs) / a != best) continue;
    if (tb.basis[i - 1] < bestvar) {
      bestvar = tb.basis[i - 1];
      blandrow = static_cast<std::ptrdiff_t>(i);
    }
  }
  return blandrow;
}

/// Scale the pivot row, eliminate the pivot column from every other row —
/// the exact update formulas of the distributed rank-1 path.
void pivot(TableauSetup& tb, std::size_t prow, std::size_t pcol) {
  const std::size_t cols = tb.width() + 1;
  const double piv = tb.T(prow, pcol);
  for (std::size_t k = 0; k < cols; ++k) tb.T(prow, k) /= piv;
  for (std::size_t r = 0; r < tb.T.nrows(); ++r) {
    if (r == prow) continue;
    const double f = tb.T(r, pcol);
    if (f == 0.0) continue;
    for (std::size_t k = 0; k < cols; ++k) tb.T(r, k) -= f * tb.T(prow, k);
  }
  tb.basis[prow - 1] = pcol;
}

/// Run pivots to optimality.  Returns Optimal / Unbounded / IterationLimit.
LpStatus optimize(TableauSetup& tb, const SimplexOptions& o,
                  std::size_t& iters) {
  while (iters < o.max_iters) {
    const std::ptrdiff_t j = entering(tb, o);
    if (j < 0) return LpStatus::Optimal;
    const std::ptrdiff_t i = leaving(tb, static_cast<std::size_t>(j), o);
    if (i < 0) return LpStatus::Unbounded;
    pivot(tb, static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    ++iters;
  }
  return LpStatus::IterationLimit;
}

}  // namespace

LpSolution simplex_solve(const LpProblem& lp, SimplexOptions opts) {
  TableauSetup tb = detail::build_tableau(lp);
  const std::size_t m = lp.ncons, nv = lp.nvars;
  const std::size_t width = tb.width();
  LpSolution sol;

  // -- Phase I: maximize -(sum of artificials) ------------------------------
  if (tb.nart > 0) {
    const LpStatus st = optimize(tb, opts, sol.phase1_iterations);
    sol.iterations = sol.phase1_iterations;
    if (st == LpStatus::IterationLimit) {
      sol.status = st;
      return sol;
    }
    if (tb.T(0, width) < -opts.eps) {
      sol.status = LpStatus::Infeasible;
      return sol;
    }
    // Drive any still-basic artificial out of the basis if its row has a
    // usable real coefficient; an all-zero row is redundant and harmless.
    for (std::size_t i = 1; i <= m; ++i) {
      if (tb.basis[i - 1] < tb.allowed()) continue;
      for (std::size_t j = 0; j < tb.allowed(); ++j) {
        if (std::abs(tb.T(i, j)) > opts.eps) {
          pivot(tb, i, j);
          ++sol.iterations;
          break;
        }
      }
    }
  }

  // -- Phase II: the real objective -----------------------------------------
  for (std::size_t k = 0; k <= width; ++k) tb.T(0, k) = 0.0;
  for (std::size_t j = 0; j < nv; ++j) tb.T(0, j) = -lp.c[j];
  for (std::size_t i = 1; i <= m; ++i) {
    const double f = tb.T(0, tb.basis[i - 1]);
    if (f == 0.0) continue;
    for (std::size_t k = 0; k <= width; ++k) tb.T(0, k) -= f * tb.T(i, k);
  }
  sol.status = optimize(tb, opts, sol.iterations);
  if (sol.status != LpStatus::Optimal) return sol;

  sol.objective = tb.T(0, width);
  sol.x.assign(nv, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (tb.basis[i] < nv) sol.x[tb.basis[i]] = tb.T(i + 1, width);
  return sol;
}

}  // namespace vmp::serial
