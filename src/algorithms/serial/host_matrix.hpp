/// \file host_matrix.hpp
/// \brief Plain row-major host matrix used by the serial reference
///        algorithms (the "best serial algorithm" of the paper's
///        processor-time optimality claim) and by host-side verification.
#pragma once

#include <cstddef>
#include <vector>

#include "hypercube/check.hpp"

namespace vmp {

class HostMatrix {
 public:
  HostMatrix() = default;
  HostMatrix(std::size_t nrows, std::size_t ncols)
      : nrows_(nrows), ncols_(ncols), data_(nrows * ncols, 0.0) {}
  HostMatrix(std::size_t nrows, std::size_t ncols, std::vector<double> data)
      : nrows_(nrows), ncols_(ncols), data_(std::move(data)) {
    VMP_REQUIRE(data_.size() == nrows * ncols, "host matrix size mismatch");
  }

  [[nodiscard]] std::size_t nrows() const { return nrows_; }
  [[nodiscard]] std::size_t ncols() const { return ncols_; }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    VMP_REQUIRE(i < nrows_ && j < ncols_, "host matrix index out of range");
    return data_[i * ncols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    VMP_REQUIRE(i < nrows_ && j < ncols_, "host matrix index out of range");
    return data_[i * ncols_ + j];
  }

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t nrows_ = 0;
  std::size_t ncols_ = 0;
  std::vector<double> data_;
};

/// y = A · x.
[[nodiscard]] inline std::vector<double> host_matvec(
    const HostMatrix& A, const std::vector<double>& x) {
  VMP_REQUIRE(x.size() == A.ncols(), "matvec dimension mismatch");
  std::vector<double> y(A.nrows(), 0.0);
  for (std::size_t i = 0; i < A.nrows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < A.ncols(); ++j) s += A(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

/// y = x · A (the paper's vector-matrix product).
[[nodiscard]] inline std::vector<double> host_vecmat(
    const std::vector<double>& x, const HostMatrix& A) {
  VMP_REQUIRE(x.size() == A.nrows(), "vecmat dimension mismatch");
  std::vector<double> y(A.ncols(), 0.0);
  for (std::size_t i = 0; i < A.nrows(); ++i)
    for (std::size_t j = 0; j < A.ncols(); ++j) y[j] += x[i] * A(i, j);
  return y;
}

}  // namespace vmp
