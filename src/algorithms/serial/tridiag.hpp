/// \file tridiag.hpp
/// \brief Serial Thomas-algorithm tridiagonal solver — the O(n) reference
///        for the distributed parallel-cyclic-reduction solver.
#pragma once

#include <span>
#include <vector>

#include "hypercube/check.hpp"

namespace vmp::serial {

/// Solve the tridiagonal system
///   a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]   (a[0] = c[n-1] = 0)
/// by forward elimination / back substitution.  Requires a numerically
/// safe (e.g. diagonally dominant) system.
[[nodiscard]] inline std::vector<double> tridiag_solve(
    std::span<const double> a, std::span<const double> b,
    std::span<const double> c, std::span<const double> d) {
  const std::size_t n = b.size();
  VMP_REQUIRE(a.size() == n && c.size() == n && d.size() == n,
              "tridiagonal bands must have equal length");
  VMP_REQUIRE(n > 0, "empty system");
  std::vector<double> cp(n), dp(n);
  cp[0] = c[0] / b[0];
  dp[0] = d[0] / b[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double m = b[i] - a[i] * cp[i - 1];
    cp[i] = c[i] / m;
    dp[i] = (d[i] - a[i] * dp[i - 1]) / m;
  }
  std::vector<double> x(n);
  x[n - 1] = dp[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) x[i] = dp[i] - cp[i] * x[i + 1];
  return x;
}

}  // namespace vmp::serial
