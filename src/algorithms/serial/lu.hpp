/// \file lu.hpp
/// \brief Serial LU factorization with partial pivoting — the reference
///        "best serial algorithm" for the Gaussian elimination experiments
///        and the correctness oracle for the distributed routine.
///
/// The update formulas and the pivot tie-breaking mirror the distributed
/// implementation exactly (scale-then-subtract, max-|.|-smallest-index), so
/// the two factorizations agree element by element up to rounding.
#pragma once

#include <span>
#include <vector>

#include "algorithms/serial/host_matrix.hpp"

namespace vmp::serial {

struct LuResult {
  std::vector<std::size_t> perm;  ///< perm[k] = original row now in row k
  bool singular = false;
  std::size_t flops = 0;  ///< 2/3·n³-order operation count, for optimality ratios
};

/// Factor A in place into L (unit lower, multipliers below the diagonal)
/// and U (upper), with partial pivoting.
[[nodiscard]] LuResult lu_factor(HostMatrix& A, double pivot_tol = 1e-12);

/// Solve L·U·x = P·b given the in-place factorization.
[[nodiscard]] std::vector<double> lu_solve(const HostMatrix& LU,
                                           const LuResult& lu,
                                           std::span<const double> b);

/// Factor + solve convenience (A is destroyed).
[[nodiscard]] std::vector<double> gauss_solve(HostMatrix& A,
                                              std::span<const double> b);

}  // namespace vmp::serial
