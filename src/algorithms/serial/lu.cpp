#include "algorithms/serial/lu.hpp"

#include <cmath>
#include <utility>

#include "hypercube/check.hpp"

namespace vmp::serial {

LuResult lu_factor(HostMatrix& A, double pivot_tol) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "LU needs a square matrix");
  const std::size_t n = A.nrows();
  LuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |A[i][k]| over i >= k, ties to the smallest i
    // (identical tie-break to the distributed MaxLoc reduction).
    std::size_t piv = k;
    double best = std::abs(A(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(A(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < pivot_tol) {
      out.singular = true;
      return out;
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(A(k, j), A(piv, j));
      std::swap(out.perm[k], out.perm[piv]);
    }
    const double pivval = A(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mult = A(i, k) / pivval;
      A(i, k) = mult;
      for (std::size_t j = k + 1; j < n; ++j) A(i, j) -= mult * A(k, j);
      out.flops += 1 + 2 * (n - k - 1);
    }
  }
  return out;
}

std::vector<double> lu_solve(const HostMatrix& LU, const LuResult& lu,
                             std::span<const double> b) {
  VMP_REQUIRE(!lu.singular, "cannot solve a singular factorization");
  const std::size_t n = LU.nrows();
  VMP_REQUIRE(b.size() == n, "rhs length mismatch");

  // Apply the permutation, then L y = Pb (unit lower), then U x = y.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[lu.perm[i]];
  for (std::size_t k = 0; k < n; ++k) {
    const double yk = y[k];
    for (std::size_t i = k + 1; i < n; ++i) y[i] -= LU(i, k) * yk;
  }
  for (std::size_t k = n; k-- > 0;) {
    const double xk = y[k] / LU(k, k);
    y[k] = xk;
    for (std::size_t i = 0; i < k; ++i) y[i] -= LU(i, k) * xk;
  }
  return y;
}

std::vector<double> gauss_solve(HostMatrix& A, std::span<const double> b) {
  const LuResult lu = lu_factor(A);
  VMP_REQUIRE(!lu.singular, "gauss_solve: singular matrix");
  return lu_solve(A, lu, b);
}

}  // namespace vmp::serial
