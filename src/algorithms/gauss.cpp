#include "algorithms/gauss.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "core/elementwise.hpp"
#include "core/kernels.hpp"
#include "core/naive.hpp"
#include "core/primitives.hpp"
#include "core/swap.hpp"
#include "core/vector_ops.hpp"
#include "obs/trace.hpp"

namespace vmp {

namespace {

/// Pivot search shared by lu_factor and lu_factor_fused: find the largest
/// |A[i][k]| over i >= k (ties to the smallest i, a MaxLoc reduction over
/// the extracted column), swap it into row k, and return the refreshed
/// pivot column and value — or nullopt when the step is numerically
/// singular.  Both factorizations run the IDENTICAL communication
/// sequence, so deterministic fault plans fire on the same rounds.
struct PivotStep {
  DistVector<double> col;
  double pivval;
};

std::optional<PivotStep> pivot_search(DistMatrix<double>& A,
                                      std::vector<std::size_t>& perm,
                                      std::size_t k, double pivot_tol) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  VMP_TRACE(A.grid().cube(), "pivot_search");
  DistVector<double> col = extract(A, Axis::Col, k);
  const ValueIndex<double> best = vec_argmax_key(
      col,
      [&](double v, std::size_t g) { return g >= k ? std::abs(v) : kNegInf; });
  if (best.index < 0 || best.value < pivot_tol) return std::nullopt;
  const std::size_t piv_row = static_cast<std::size_t>(best.index);
  if (piv_row != k) {
    swap_rows(A, k, piv_row);
    std::swap(perm[k], perm[piv_row]);
    col = extract(A, Axis::Col, k);  // refresh after the interchange
  }
  const double pivval = vec_fetch(col, k);
  return PivotStep{std::move(col), pivval};
}

}  // namespace

DistLuResult lu_factor(DistMatrix<double>& A, double pivot_tol) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "LU needs a square matrix");
  VMP_TRACE(A.grid().cube(), "lu_factor");
  const std::size_t n = A.nrows();

  DistLuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::optional<PivotStep> piv = pivot_search(A, out.perm, k, pivot_tol);
    if (!piv) {
      out.singular = true;
      return out;
    }
    const double pivval = piv->pivval;

    VMP_TRACE(A.grid().cube(), "update");
    const DistVector<double>& col = piv->col;

    // Multipliers m_i = A[i][k] / pivot for i > k, zero elsewhere.
    DistVector<double> mult = col;
    vec_apply_indexed(mult, [&](double v, std::size_t g) {
      return g > k ? v / pivval : 0.0;
    });

    // Pivot row, masked to the trailing columns.
    DistVector<double> prow = extract(A, Axis::Row, k);
    vec_apply_indexed(prow,
                      [&](double v, std::size_t g) { return g > k ? v : 0.0; });

    // Trailing update A[i][j] -= m_i · A[k][j] (i, j > k): purely local,
    // charged only for the active window (load-balanced under Cyclic).
    rank1_update_range(A, -1.0, mult, prow, k + 1, k + 1);

    // Deposit the multipliers into the L part of column k.
    insert_range(A, Axis::Col, k, mult, k + 1, n);
  }
  return out;
}

DistLuResult lu_factor_fused(DistMatrix<double>& A, double pivot_tol) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "LU needs a square matrix");
  VMP_TRACE(A.grid().cube(), "lu_factor_fused");
  const std::size_t n = A.nrows();
  Grid& grid = A.grid();

  DistLuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::optional<PivotStep> piv = pivot_search(A, out.perm, k, pivot_tol);
    if (!piv) {
      out.singular = true;
      return out;
    }
    const double pivval = piv->pivval;

    VMP_TRACE(A.grid().cube(), "update");
    const DistVector<double>& col = piv->col;

    // Same broadcast as the composed path — the fusion below removes only
    // compute steps, so fault plans see the identical round sequence.
    DistVector<double> prow = extract(A, Axis::Row, k);

    // One fused local sweep replaces { multiplier scaling, pivot-row
    // masking, rank1_update_range, insert_col_range }.  Each floating-
    // point expression matches the composed path operation for operation
    // (m = v / pivot, then blk += (-1.0 · m) · A[k][j]), the (i, j > k)
    // window never reads a masked-out entry, and column k lies outside the
    // window, so depositing the multipliers in the same sweep is
    // interference-free — results are bit-identical.
    std::uint64_t max_flops = 0, total_flops = 0;
    grid.cube().each_proc([&](proc_t q) {
      const std::size_t ar =
          A.lrows(q) - A.rowmap().first_local_at_or_after(grid.prow(q), k + 1);
      const std::size_t ac =
          A.lcols(q) - A.colmap().first_local_at_or_after(grid.pcol(q), k + 1);
      const std::uint64_t f = 2ull * ar * ac + ar;  // + ar: the divisions
      max_flops = std::max(max_flops, f);
      total_flops += f;
    });
    const std::uint32_t C = A.colmap().owner(k);
    const std::size_t lck = A.colmap().local(k);
    grid.cube().compute(max_flops, total_flops, [&](proc_t q) {
      const std::size_t lr0 =
          A.rowmap().first_local_at_or_after(grid.prow(q), k + 1);
      const std::size_t lc0 =
          A.colmap().first_local_at_or_after(grid.pcol(q), k + 1);
      const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
      std::span<double> blk = A.block(q);
      const std::span<const double> cp = col.piece(q);
      const std::span<const double> rp = prow.piece(q);
      const bool owns_k = grid.pcol(q) == C;
      for (std::size_t lr = lr0; lr < lrn; ++lr) {
        const double m = cp[lr] / pivval;
        const double scale = -1.0 * m;
        kern::axpy(blk.subspan(lr * lcn + lc0, lcn - lc0), scale,
                   rp.subspan(lc0, lcn - lc0));
        if (owns_k) blk[lr * lcn + lck] = m;
      }
    });
  }
  return out;
}

DistLuResult lu_factor_naive(DistMatrix<double>& A, double pivot_tol) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "LU needs a square matrix");
  VMP_TRACE(A.grid().cube(), "lu_factor_naive");
  const std::size_t n = A.nrows();
  DistLuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search: every candidate travels to processor 0 as a packet.
    DistVector<double> col = naive_extract_col(A, k);
    const ValueIndex<double> best = naive_argmax_abs(col, k);
    if (best.index < 0 || best.value < pivot_tol) {
      out.singular = true;
      return out;
    }
    const std::size_t piv_row = static_cast<std::size_t>(best.index);
    if (piv_row != k) {
      naive_swap_rows(A, k, piv_row);
      std::swap(out.perm[k], out.perm[piv_row]);
      col = naive_extract_col(A, k);
    }
    const double pivval = vec_fetch(col, k);

    DistVector<double> mult = col;
    vec_apply_indexed(mult, [&](double v, std::size_t g) {
      return g > k ? v / pivval : 0.0;
    });
    DistVector<double> prow = naive_extract_row(A, k);
    vec_apply_indexed(prow,
                      [&](double v, std::size_t g) { return g > k ? v : 0.0; });

    // The naive "distribute": one router packet per matrix element for
    // BOTH vectors, then a local three-operand update.
    const DistMatrix<double> M = naive_distribute_cols(mult, n, A.layout());
    const DistMatrix<double> R = naive_distribute_rows(prow, n, A.layout());
    A.grid().cube().compute(2 * A.max_block(), 2 * n * n, [&](proc_t q) {
      const std::span<double> a = A.data().tile(q);
      const std::span<const double> m = M.data().tile(q);
      const std::span<const double> r = R.data().tile(q);
      for (std::size_t t = 0; t < a.size(); ++t) a[t] -= m[t] * r[t];
    });
    // Deposit the multipliers below the diagonal while keeping the U part
    // of column k (the masked update left the whole column untouched).
    DistVector<double> lcol = col;
    vec_zip_indexed(lcol, mult,
                    [&](double orig, double m, std::size_t g) {
                      return g > k ? m : orig;
                    });
    naive_insert_col(A, k, lcol);
  }
  return out;
}

std::vector<double> lu_solve(const DistMatrix<double>& LU,
                             const DistLuResult& lu,
                             std::span<const double> b) {
  VMP_REQUIRE(!lu.singular, "cannot solve a singular factorization");
  const std::size_t n = LU.nrows();
  VMP_REQUIRE(b.size() == n, "rhs length mismatch");
  Grid& grid = LU.grid();
  VMP_TRACE(grid.cube(), "lu_solve");

  // y starts as the permuted right-hand side, Rows-aligned with LU.
  std::vector<double> pb(n);
  for (std::size_t i = 0; i < n; ++i) pb[i] = b[lu.perm[i]];
  DistVector<double> y(grid, n, Align::Rows, LU.layout().rows);
  y.load(pb);

  // Forward: L y = Pb (unit diagonal), column-oriented.
  for (std::size_t k = 0; k < n; ++k) {
    const double yk = vec_fetch(y, k);
    DistVector<double> colk = extract(LU, Axis::Col, k);
    vec_apply_indexed(colk,
                      [&](double v, std::size_t g) { return g > k ? v : 0.0; });
    vec_axpy(y, -yk, colk);
  }

  // Backward: U x = y, column-oriented.
  for (std::size_t k = n; k-- > 0;) {
    const double ukk = mat_fetch(LU, k, k);
    const double xk = vec_fetch(y, k) / ukk;
    vec_store(y, k, xk);
    DistVector<double> colk = extract(LU, Axis::Col, k);
    vec_apply_indexed(colk,
                      [&](double v, std::size_t g) { return g < k ? v : 0.0; });
    vec_axpy(y, -xk, colk);
  }
  return y.to_host();
}

std::vector<double> gauss_solve(DistMatrix<double>& A,
                                std::span<const double> b) {
  const DistLuResult lu = lu_factor(A);
  VMP_REQUIRE(!lu.singular, "gauss_solve: singular matrix");
  return lu_solve(A, lu, b);
}

}  // namespace vmp
