#include "algorithms/gauss.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "core/elementwise.hpp"
#include "core/naive.hpp"
#include "core/primitives.hpp"
#include "core/swap.hpp"
#include "core/vector_ops.hpp"
#include "obs/trace.hpp"

namespace vmp {

DistLuResult lu_factor(DistMatrix<double>& A, double pivot_tol) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "LU needs a square matrix");
  VMP_TRACE(A.grid().cube(), "lu_factor");
  const std::size_t n = A.nrows();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  DistLuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::optional<DistVector<double>> colp;
    double pivval = 0.0;
    {
      VMP_TRACE(A.grid().cube(), "pivot_search");
      // Pivot search: largest |A[i][k]| over i >= k, ties to the smallest i
      // (a MaxLoc reduction over the extracted column).
      DistVector<double> col = extract_col(A, k);
      const ValueIndex<double> best = vec_argmax_key(
          col, [&](double v, std::size_t g) {
            return g >= k ? std::abs(v) : kNegInf;
          });
      if (best.index < 0 || best.value < pivot_tol) {
        out.singular = true;
        return out;
      }
      const std::size_t piv_row = static_cast<std::size_t>(best.index);
      if (piv_row != k) {
        swap_rows(A, k, piv_row);
        std::swap(out.perm[k], out.perm[piv_row]);
        col = extract_col(A, k);  // refresh after the interchange
      }
      pivval = vec_fetch(col, k);
      colp.emplace(std::move(col));
    }

    VMP_TRACE(A.grid().cube(), "update");
    const DistVector<double>& col = *colp;

    // Multipliers m_i = A[i][k] / pivot for i > k, zero elsewhere.
    DistVector<double> mult = col;
    vec_apply_indexed(mult, [&](double v, std::size_t g) {
      return g > k ? v / pivval : 0.0;
    });

    // Pivot row, masked to the trailing columns.
    DistVector<double> prow = extract_row(A, k);
    vec_apply_indexed(prow,
                      [&](double v, std::size_t g) { return g > k ? v : 0.0; });

    // Trailing update A[i][j] -= m_i · A[k][j] (i, j > k): purely local,
    // charged only for the active window (load-balanced under Cyclic).
    rank1_update_range(A, -1.0, mult, prow, k + 1, k + 1);

    // Deposit the multipliers into the L part of column k.
    insert_col_range(A, k, mult, k + 1, n);
  }
  return out;
}

DistLuResult lu_factor_naive(DistMatrix<double>& A, double pivot_tol) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "LU needs a square matrix");
  VMP_TRACE(A.grid().cube(), "lu_factor_naive");
  const std::size_t n = A.nrows();
  DistLuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search: every candidate travels to processor 0 as a packet.
    DistVector<double> col = naive_extract_col(A, k);
    const ValueIndex<double> best = naive_argmax_abs(col, k);
    if (best.index < 0 || best.value < pivot_tol) {
      out.singular = true;
      return out;
    }
    const std::size_t piv_row = static_cast<std::size_t>(best.index);
    if (piv_row != k) {
      naive_swap_rows(A, k, piv_row);
      std::swap(out.perm[k], out.perm[piv_row]);
      col = naive_extract_col(A, k);
    }
    const double pivval = vec_fetch(col, k);

    DistVector<double> mult = col;
    vec_apply_indexed(mult, [&](double v, std::size_t g) {
      return g > k ? v / pivval : 0.0;
    });
    DistVector<double> prow = naive_extract_row(A, k);
    vec_apply_indexed(prow,
                      [&](double v, std::size_t g) { return g > k ? v : 0.0; });

    // The naive "distribute": one router packet per matrix element for
    // BOTH vectors, then a local three-operand update.
    const DistMatrix<double> M = naive_distribute_cols(mult, n, A.layout());
    const DistMatrix<double> R = naive_distribute_rows(prow, n, A.layout());
    A.grid().cube().compute(2 * A.max_block(), 2 * n * n, [&](proc_t q) {
      std::vector<double>& a = A.data().vec(q);
      const std::vector<double>& m = M.data().vec(q);
      const std::vector<double>& r = R.data().vec(q);
      for (std::size_t t = 0; t < a.size(); ++t) a[t] -= m[t] * r[t];
    });
    // Deposit the multipliers below the diagonal while keeping the U part
    // of column k (the masked update left the whole column untouched).
    DistVector<double> lcol = col;
    vec_zip_indexed(lcol, mult,
                    [&](double orig, double m, std::size_t g) {
                      return g > k ? m : orig;
                    });
    naive_insert_col(A, k, lcol);
  }
  return out;
}

std::vector<double> lu_solve(const DistMatrix<double>& LU,
                             const DistLuResult& lu,
                             std::span<const double> b) {
  VMP_REQUIRE(!lu.singular, "cannot solve a singular factorization");
  const std::size_t n = LU.nrows();
  VMP_REQUIRE(b.size() == n, "rhs length mismatch");
  Grid& grid = LU.grid();
  VMP_TRACE(grid.cube(), "lu_solve");

  // y starts as the permuted right-hand side, Rows-aligned with LU.
  std::vector<double> pb(n);
  for (std::size_t i = 0; i < n; ++i) pb[i] = b[lu.perm[i]];
  DistVector<double> y(grid, n, Align::Rows, LU.layout().rows);
  y.load(pb);

  // Forward: L y = Pb (unit diagonal), column-oriented.
  for (std::size_t k = 0; k < n; ++k) {
    const double yk = vec_fetch(y, k);
    DistVector<double> colk = extract_col(LU, k);
    vec_apply_indexed(colk,
                      [&](double v, std::size_t g) { return g > k ? v : 0.0; });
    vec_axpy(y, -yk, colk);
  }

  // Backward: U x = y, column-oriented.
  for (std::size_t k = n; k-- > 0;) {
    const double ukk = mat_fetch(LU, k, k);
    const double xk = vec_fetch(y, k) / ukk;
    vec_store(y, k, xk);
    DistVector<double> colk = extract_col(LU, k);
    vec_apply_indexed(colk,
                      [&](double v, std::size_t g) { return g < k ? v : 0.0; });
    vec_axpy(y, -xk, colk);
  }
  return y.to_host();
}

std::vector<double> gauss_solve(DistMatrix<double>& A,
                                std::span<const double> b) {
  const DistLuResult lu = lu_factor(A);
  VMP_REQUIRE(!lu.singular, "gauss_solve: singular matrix");
  return lu_solve(A, lu, b);
}

}  // namespace vmp
