/// \file invert.hpp
/// \brief Matrix inversion by Gauss-Jordan elimination on the augmented
///        system [A | I] — the same primitive anatomy as Gaussian
///        elimination (extract, located reduce, swap, insert, rank-1
///        update) but eliminating above AND below the pivot, so the left
///        half reduces to the identity and the right half becomes A⁻¹.
#pragma once

#include "embed/dist_matrix.hpp"

namespace vmp {

struct InvertResult {
  DistMatrix<double> inverse;
  bool singular = false;
};

/// Invert a square matrix with partial pivoting; `pivot_tol` declares
/// singularity.  The result inherits A's embedding.
[[nodiscard]] InvertResult invert(const DistMatrix<double>& A,
                                  double pivot_tol = 1e-12);

}  // namespace vmp
