#include "algorithms/tridiag.hpp"

#include "core/permute.hpp"
#include "core/vector_ops.hpp"
#include "hypercube/bits.hpp"

namespace vmp {

std::vector<double> tridiag_solve_pcr(Grid& grid, std::span<const double> a,
                                      std::span<const double> b,
                                      std::span<const double> c,
                                      std::span<const double> d) {
  const std::size_t n = b.size();
  VMP_REQUIRE(n > 0, "empty system");
  VMP_REQUIRE(a.size() == n && c.size() == n && d.size() == n,
              "tridiagonal bands must have equal length");
  VMP_REQUIRE(a[0] == 0.0 && c[n - 1] == 0.0,
              "boundary band entries must be zero");

  DistVector<double> va(grid, n, Align::Linear);
  DistVector<double> vb(grid, n, Align::Linear);
  DistVector<double> vc(grid, n, Align::Linear);
  DistVector<double> vd(grid, n, Align::Linear);
  va.load(a);
  vb.load(b);
  vc.load(c);
  vd.load(d);

  const int steps = log2_ceil(n);
  for (int s = 0; s < steps; ++s) {
    const std::ptrdiff_t h = std::ptrdiff_t{1} << s;
    // Neighbour equations at distance ±2^s.  Out-of-range b defaults to 1
    // and the other bands to 0, so alpha/gamma vanish at the boundary.
    const DistVector<double> am = vec_shift(va, -h);
    const DistVector<double> bm = vec_shift(vb, -h, 1.0);
    const DistVector<double> cm = vec_shift(vc, -h);
    const DistVector<double> dm = vec_shift(vd, -h);
    const DistVector<double> ap = vec_shift(va, +h);
    const DistVector<double> bp = vec_shift(vb, +h, 1.0);
    const DistVector<double> cp = vec_shift(vc, +h);
    const DistVector<double> dp = vec_shift(vd, +h);

    // alpha eliminates the lower neighbour, gamma the upper one.
    DistVector<double> alpha = va;
    vec_zip(alpha, bm, [](double x, double y) { return -x / y; });
    DistVector<double> gamma = vc;
    vec_zip(gamma, bp, [](double x, double y) { return -x / y; });

    // a' = alpha·a⁻;  c' = gamma·c⁺
    DistVector<double> na = alpha;
    vec_zip(na, am, [](double x, double y) { return x * y; });
    DistVector<double> nc = gamma;
    vec_zip(nc, cp, [](double x, double y) { return x * y; });

    // b' = b + alpha·c⁻ + gamma·a⁺ ;  d' = d + alpha·d⁻ + gamma·d⁺
    DistVector<double> t1 = alpha;
    vec_zip(t1, cm, [](double x, double y) { return x * y; });
    DistVector<double> t2 = gamma;
    vec_zip(t2, ap, [](double x, double y) { return x * y; });
    vec_zip(vb, t1, [](double x, double y) { return x + y; });
    vec_zip(vb, t2, [](double x, double y) { return x + y; });

    DistVector<double> u1 = alpha;
    vec_zip(u1, dm, [](double x, double y) { return x * y; });
    DistVector<double> u2 = gamma;
    vec_zip(u2, dp, [](double x, double y) { return x * y; });
    vec_zip(vd, u1, [](double x, double y) { return x + y; });
    vec_zip(vd, u2, [](double x, double y) { return x + y; });

    va = std::move(na);
    vc = std::move(nc);
  }

  // Fully decoupled: x = d / b.
  vec_zip(vd, vb, [](double x, double y) { return x / y; });
  return vd.to_host();
}

}  // namespace vmp
