/// \file histogram.hpp
/// \brief Histogram computation by all-to-all reduction — the pattern of
///        Gerogiannis, Orphanoudakis & Johnsson, "Histogram Computation on
///        Distributed Memory Architectures": local binning followed by a
///        butterfly-sequence (recursive-halving) reduction of the bin
///        array, leaving every processor with the full histogram.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// Count how many elements of v fall into each of `bins` equal-width bins
/// over [lo, hi); out-of-range elements are clamped into the end bins.
/// Returns the histogram (identical on every processor, read back to the
/// host).  Cost: n/p·t_a local binning + an all-reduce of `bins` counters.
template <class T>
[[nodiscard]] std::vector<std::uint64_t> histogram(const DistVector<T>& v,
                                                   std::size_t bins, T lo,
                                                   T hi) {
  VMP_REQUIRE(bins > 0, "need at least one bin");
  VMP_REQUIRE(lo < hi, "empty value range");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();

  DistBuffer<std::uint64_t> counts(cube, bins);
  const std::size_t mx = max_local_len(cube, v.data());
  cube.compute(mx, v.n(), [&](proc_t q) {
    const std::span<std::uint64_t> mine = counts.tile(q);
    kern::fill(mine, std::uint64_t{0});
    for (const T& x : v.piece(q)) {
      const double t = static_cast<double>(x - lo) /
                       static_cast<double>(hi - lo) *
                       static_cast<double>(bins);
      std::size_t b = t <= 0.0 ? 0 : static_cast<std::size_t>(t);
      if (b >= bins) b = bins - 1;
      ++mine[b];
    }
  });
  allreduce_auto(cube, counts, v.partitioned_over(), Plus<std::uint64_t>{});
  const std::span<const std::uint64_t> h = counts.tile(0);
  return std::vector<std::uint64_t>(h.begin(), h.end());
}

}  // namespace vmp
