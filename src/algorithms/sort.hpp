/// \file sort.hpp
/// \brief Distributed sorting: local sort + bitonic merge across processor
///        ranks — Johnsson's "Combining Parallel and Sequential Sorting on
///        a Boolean n-cube" (the M ≫ N regime: each processor sequentially
///        sorts its block, then lg²p compare-split rounds order the
///        blocks).  Cost: (n/p)·lg(n/p)·t_a locally plus
///        lg p·(lg p+1)/2 rounds of (τ + n/p·t_c + n/p·t_a).
///
/// Blocks are padded to equal length with +∞ sentinels (block-level
/// compare-split is only a sorting network for equal blocks); the pad
/// sorts to the tail, so real element g of the result sits at padded
/// position g, and one routing sweep rebalances back to the Block
/// partition.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

namespace detail {

/// Compare-split: after the exchange each side of the pair keeps its half
/// of the merged sequence — the block-level analogue of a compare-exchange.
template <class T>
void compare_split(Cube& cube, DistBuffer<T>& data, int dim,
                   const std::vector<bool>& keep_low) {
  cube.exchange<T>(
      dim, [&](proc_t q) { return std::span<const T>(data.tile(q)); },
      [&](proc_t q, std::span<const T> in) {
        const std::span<T> mine = data.tile(q);
        std::vector<T> merged;
        merged.reserve(mine.size() + in.size());
        std::merge(mine.begin(), mine.end(), in.begin(), in.end(),
                   std::back_inserter(merged));
        const auto keep = keep_low[q]
                              ? std::span<const T>(merged).first(mine.size())
                              : std::span<const T>(merged).last(mine.size());
        kern::copy(keep, mine);
      });
  const std::size_t mx = max_local_len(cube, data);
  cube.clock().charge_compute_step(2 * mx, 2 * mx * cube.node_count());
}

}  // namespace detail

/// Sort the elements of a Linear vector ascending, in place.
template <class T>
void vec_sort(DistVector<T>& v) {
  VMP_REQUIRE(v.align() == Align::Linear, "vec_sort needs a Linear vector");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  const int d = cube.dim();  // logical merge stages, not a network query
  const std::size_t n = v.n();
  if (n == 0) return;
  const std::size_t mx = (n + cube.node_count() - 1) / cube.node_count();

  // Pad every block to mx with sentinels and sort locally:
  // (n/p)·lg(n/p) comparisons.
  DistBuffer<T> work(cube);
  work.reserve_each(mx);
  cube.each_proc([&](proc_t q) {
    work.assign(q, v.data().tile(q));
    work.resize(q, mx, std::numeric_limits<T>::max());
  });
  const std::uint64_t lg =
      mx <= 1 ? 1 : static_cast<std::uint64_t>(log2_ceil(mx));
  cube.compute(mx * lg, v.n() * lg, [&](proc_t q) {
    const std::span<T> mine = work.tile(q);
    std::sort(mine.begin(), mine.end());
  });

  // Bitonic merge over the processor ranks.  Stage k orders 2^(k+1)-rank
  // windows; within a stage, rounds run dimension j = k down to 0.  The
  // "keep low" side of a pair follows the bitonic direction bit.
  std::vector<bool> keep_low(cube.node_count());
  for (int k = 0; k < d; ++k) {
    for (int j = k; j >= 0; --j) {
      for (proc_t q = 0; q < cube.node_count(); ++q) {
        const bool ascending = ((q >> (k + 1)) & 1u) == 0;
        const bool low_side = ((q >> j) & 1u) == 0;
        keep_low[q] = ascending == low_side;
      }
      detail::compare_split(cube, work, j, keep_low);
    }
  }

  // Sentinels sorted to the tail, so the real sorted element g sits at
  // padded position g: one combining routing sweep rebalances to the
  // Block partition.
  DistBuffer<RouteItem<T>> items(cube);
  items.reserve_each(mx);
  cube.each_proc([&](proc_t q) {
    const std::size_t base = static_cast<std::size_t>(q) * mx;
    const std::span<const T> mine = work.tile(q);
    for (std::size_t s = 0; s < mine.size(); ++s) {
      const std::size_t g = base + s;
      if (g >= n) break;  // sentinel region
      items.push_back(q, RouteItem<T>{
          static_cast<proc_t>(v.map().owner(g)), v.map().local(g), mine[s]});
    }
  });
  route_within(cube, items, grid.whole());
  cube.each_proc([&](proc_t q) {
    kern::scatter_tagged(items.tile(q), v.data().tile(q));
  });
}

/// Convenience: sorted copy back on the host.
template <class T>
[[nodiscard]] std::vector<T> vec_sorted_host(DistVector<T> v) {
  vec_sort(v);
  return v.to_host();
}

}  // namespace vmp
