/// \file matvec.hpp
/// \brief Matrix-vector and vector-matrix products built from the four
///        primitives — the paper's first demonstration algorithm.
///
/// The primitive-composed forms are the literal paper construction:
///   y = A·x :  reduce_rows( A ∘ distribute_rows(x) )
///   y = x·A :  reduce_cols( A ∘ distribute_cols(x) )
/// The fused forms skip the materialized intermediate matrix (local
/// multiply-accumulate straight into the partial vector) and are the
/// ablation point for E3.
#pragma once

#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// y = A·x.  x must be Cols-aligned with A; the result is Rows-aligned.
[[nodiscard]] DistVector<double> matvec(const DistMatrix<double>& A,
                                        const DistVector<double>& x);

/// y = A·x without materializing the intermediate product matrix.
[[nodiscard]] DistVector<double> matvec_fused(const DistMatrix<double>& A,
                                              const DistVector<double>& x);

/// y = x·A (the paper's vector-matrix multiply).  x must be Rows-aligned
/// with A; the result is Cols-aligned.
[[nodiscard]] DistVector<double> vecmat(const DistVector<double>& x,
                                        const DistMatrix<double>& A);

/// y = x·A without the intermediate matrix.
[[nodiscard]] DistVector<double> vecmat_fused(const DistVector<double>& x,
                                              const DistMatrix<double>& A);

/// Pipeline-style spellings of the fused products (same functions).
[[nodiscard]] inline DistVector<double> fused_matvec(
    const DistMatrix<double>& A, const DistVector<double>& x) {
  return matvec_fused(A, x);
}
[[nodiscard]] inline DistVector<double> fused_vecmat(
    const DistVector<double>& x, const DistMatrix<double>& A) {
  return vecmat_fused(x, A);
}

}  // namespace vmp
