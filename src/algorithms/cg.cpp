#include "algorithms/cg.hpp"

#include <cmath>

#include "algorithms/matvec.hpp"
#include "algorithms/spmv.hpp"
#include "core/kernels.hpp"
#include "core/sparse_primitives.hpp"
#include "core/vector_ops.hpp"
#include "embed/realign.hpp"

namespace vmp {

namespace {

// The one storage-dependent step of a CG iteration: y = A·p, Cols in,
// Rows out.  Both spellings charge through the same cost model, so the
// templated loop below runs the identical operation sequence on either
// backend.
DistVector<double> apply_fused(const DistMatrix<double>& A,
                               const DistVector<double>& p) {
  return matvec_fused(A, p);
}
DistVector<double> apply_fused(const DistSparseMatrix<double>& A,
                               const DistVector<double>& p) {
  return spmv_fused(A, p);
}

template <class Mat>
CgResult cg_impl(const Mat& A, std::span<const double> b, CgOptions opts) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "CG needs a square (SPD) matrix");
  const std::size_t n = A.nrows();
  VMP_REQUIRE(b.size() == n, "rhs length mismatch");
  Grid& grid = A.grid();
  const Part cpart = A.layout().cols;
  const std::size_t max_iters = opts.max_iters == 0 ? n : opts.max_iters;

  // x, r, p all live Cols-aligned; A·p comes back Rows-aligned and is
  // realigned once per iteration (a charged embedding change).
  DistVector<double> x(grid, n, Align::Cols, cpart);
  DistVector<double> r(grid, n, Align::Cols, cpart);
  r.load(b);
  DistVector<double> p = r;

  const double b2 = dot(r, r);
  CgResult out;
  if (b2 == 0.0) {
    out.x.assign(n, 0.0);
    out.converged = true;
    return out;
  }
  double rs = b2;
  const double target2 = opts.tol * opts.tol * b2;

  for (std::size_t it = 0; it < max_iters; ++it) {
    const DistVector<double> Ap_rows = apply_fused(A, p);
    const DistVector<double> Ap = realign(Ap_rows, Align::Cols, cpart);
    const double pAp = dot(p, Ap);
    VMP_REQUIRE(pAp > 0.0, "matrix is not positive definite");
    const double alpha = rs / pAp;
    vec_axpy(x, alpha, p);
    vec_axpy(r, -alpha, Ap);
    const double rs_next = dot(r, r);
    out.iterations = it + 1;
    if (rs_next <= target2) {
      rs = rs_next;
      out.converged = true;
      break;
    }
    const double beta = rs_next / rs;
    rs = rs_next;
    // p = r + beta·p
    vec_scale(p, beta);
    vec_axpy(p, 1.0, r);
  }
  out.residual_norm = std::sqrt(rs);
  out.x = x.to_host();
  return out;
}

template <class Mat>
CgResult cg_jacobi_impl(const Mat& A, std::span<const double> b,
                        CgOptions opts) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "CG needs a square (SPD) matrix");
  const std::size_t n = A.nrows();
  VMP_REQUIRE(b.size() == n, "rhs length mismatch");
  Grid& grid = A.grid();
  const Part cpart = A.layout().cols;
  const std::size_t max_iters = opts.max_iters == 0 ? n : opts.max_iters;

  DistVector<double> invdiag = extract_diagonal(A);
  vec_apply(invdiag, [](double x) {
    VMP_REQUIRE(x > 0.0, "Jacobi preconditioner needs a positive diagonal");
    return 1.0 / x;
  });

  DistVector<double> x(grid, n, Align::Cols, cpart);
  DistVector<double> r(grid, n, Align::Cols, cpart);
  r.load(b);
  DistVector<double> z = r;
  vec_zip(z, invdiag, [](double a, double m) { return a * m; });
  DistVector<double> p = z;

  const double b2 = dot(r, r);
  CgResult out;
  if (b2 == 0.0) {
    out.x.assign(n, 0.0);
    out.converged = true;
    return out;
  }
  double rz = dot(r, z);
  const double target2 = opts.tol * opts.tol * b2;

  for (std::size_t it = 0; it < max_iters; ++it) {
    const DistVector<double> Ap_rows = apply_fused(A, p);
    const DistVector<double> Ap = realign(Ap_rows, Align::Cols, cpart);
    const double pAp = dot(p, Ap);
    VMP_REQUIRE(pAp > 0.0, "matrix is not positive definite");
    const double alpha = rz / pAp;
    vec_axpy(x, alpha, p);
    vec_axpy(r, -alpha, Ap);
    const double rr = dot(r, r);
    out.iterations = it + 1;
    if (rr <= target2) {
      out.residual_norm = std::sqrt(rr);
      out.converged = true;
      out.x = x.to_host();
      return out;
    }
    z = r;
    vec_zip(z, invdiag, [](double a, double m) { return a * m; });
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    vec_scale(p, beta);
    vec_axpy(p, 1.0, z);
  }
  out.residual_norm = std::sqrt(dot(r, r));
  out.x = x.to_host();
  return out;
}

}  // namespace

CgResult conjugate_gradient(const DistMatrix<double>& A,
                            std::span<const double> b, CgOptions opts) {
  return cg_impl(A, b, opts);
}

CgResult conjugate_gradient(const DistSparseMatrix<double>& A,
                            std::span<const double> b, CgOptions opts) {
  return cg_impl(A, b, opts);
}

CgResult conjugate_gradient_jacobi(const DistMatrix<double>& A,
                                   std::span<const double> b, CgOptions opts) {
  return cg_jacobi_impl(A, b, opts);
}

CgResult conjugate_gradient_jacobi(const DistSparseMatrix<double>& A,
                                   std::span<const double> b, CgOptions opts) {
  return cg_jacobi_impl(A, b, opts);
}

DistVector<double> extract_diagonal(const DistMatrix<double>& A) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "diagonal of a square matrix only");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  DistVector<double> diag(grid, A.ncols(), Align::Cols, A.layout().cols);
  const std::size_t max_piece = (A.ncols() + grid.pcols() - 1) / grid.pcols();
  cube.compute(max_piece, A.ncols(), [&](proc_t q) {
    const std::uint32_t R = grid.prow(q), C = grid.pcol(q);
    const std::size_t lcn = A.lcols(q);
    const std::span<const double> blk = A.block(q);
    const std::span<double> piece = diag.data().tile(q);
    kern::fill(piece, 0.0);
    for (std::size_t lc = 0; lc < lcn; ++lc) {
      const std::size_t j = A.colmap().global(C, lc);
      if (A.rowmap().owner(j) != R) continue;  // diagonal not in my block
      piece[lc] = blk[A.rowmap().local(j) * lcn + lc];
    }
  });
  // Each column's diagonal entry exists on exactly one grid row: a sum
  // all-reduce replicates it to the rest.
  allreduce_auto(cube, diag.data(), grid.within_col(), Plus<double>{});
  return diag;
}

DistVector<double> extract_diagonal(const DistSparseMatrix<double>& A) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "diagonal of a square matrix only");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  DistVector<double> diag(grid, A.ncols(), Align::Cols, A.layout().cols);
  const std::size_t max_piece = (A.ncols() + grid.pcols() - 1) / grid.pcols();
  cube.compute(max_piece, A.ncols(), [&](proc_t q) {
    const std::uint32_t R = grid.prow(q), C = grid.pcol(q);
    const std::size_t lcn = A.lcols(q);
    const std::span<double> piece = diag.data().tile(q);
    kern::fill(piece, 0.0);
    const auto rp = A.tile_rowptr(q);
    const auto va = A.tile_vals(q);
    for (std::size_t lc = 0; lc < lcn; ++lc) {
      const std::size_t j = A.colmap().global(C, lc);
      if (A.rowmap().owner(j) != R) continue;  // diagonal not in my tile
      const std::size_t lr = A.rowmap().local(j);
      const std::size_t k =
          detail::find_in_row(A, q, lr, static_cast<std::uint32_t>(lc));
      if (k < rp[lr + 1]) piece[lc] = va[k];  // unstored diagonal stays 0
    }
  });
  allreduce_auto(cube, diag.data(), grid.within_col(), Plus<double>{});
  return diag;
}

}  // namespace vmp
