/// \file gauss.hpp
/// \brief Distributed Gaussian elimination (LU with partial pivoting) —
///        the paper's second demonstration algorithm, built entirely from
///        the four primitives plus the local rank-1 update:
///
///        per step k:  extract_col → MaxLoc reduce (pivot search)
///                     swap_rows   (pivot interchange)
///                     extract_col / extract_row (multipliers, pivot row)
///                     rank1_update (trailing submatrix, purely local)
///                     insert_col  (deposit multipliers into L)
///
///        With the Cyclic layout every step keeps all processors busy as
///        the active window shrinks; the Block layout progressively idles
///        processor rows/columns (bench_gauss ablates the two).
#pragma once

#include <span>
#include <vector>

#include "embed/dist_matrix.hpp"

namespace vmp {

struct DistLuResult {
  std::vector<std::size_t> perm;  ///< perm[k] = original row now in row k
  bool singular = false;
};

/// Factor A in place into L (unit lower, multipliers below the diagonal)
/// and U (upper), with partial pivoting.  Mirrors vmp::serial::lu_factor
/// operation-for-operation.
[[nodiscard]] DistLuResult lu_factor(DistMatrix<double>& A,
                                     double pivot_tol = 1e-12);

/// Same factorization with the per-step update fused into ONE compute
/// pass: multiplier scaling, the windowed rank-1 trailing update, and the
/// multiplier deposit into column k run in a single local sweep instead of
/// four primitive calls.  The communication sequence and every floating-
/// point operation match lu_factor exactly — results are bit-identical
/// (including under deterministic fault plans) at the same or lower
/// simulated cost.
[[nodiscard]] DistLuResult lu_factor_fused(DistMatrix<double>& A,
                                           double pivot_tol = 1e-12);

/// Solve L·U·x = P·b by distributed column-oriented substitution
/// (extract_col + axpy per step).
[[nodiscard]] std::vector<double> lu_solve(const DistMatrix<double>& LU,
                                           const DistLuResult& lu,
                                           std::span<const double> b);

/// Factor + solve convenience (A is overwritten by the factors).
[[nodiscard]] std::vector<double> gauss_solve(DistMatrix<double>& A,
                                              std::span<const double> b);

/// The NAIVE Gaussian elimination: same algorithm, but every data motion
/// (column/row extraction, pivot search, row swap, vector replication)
/// goes through the per-element general router with Linear vectors — the
/// application-level baseline behind the paper's order-of-magnitude
/// speedup claim (bench_naive_vs_primitive reports the ratio).
[[nodiscard]] DistLuResult lu_factor_naive(DistMatrix<double>& A,
                                           double pivot_tol = 1e-12);

}  // namespace vmp
