/// \file tableau.hpp
/// \brief Shared dense-tableau construction for the two simplex solvers.
///
/// The serial reference and the distributed primitive-based solver both
/// start from the tableau this builder produces, so any divergence between
/// them is in the pivoting itself — which the tests then pin down exactly.
///
/// Layout: row 0 is the objective row, rows 1..m the constraints; columns
/// are [structural | slack | artificial | rhs].  Rows with negative rhs
/// are pre-scaled by -1 and given an artificial variable; when artificials
/// exist the objective row arrives prepared for Phase I (maximize minus
/// the artificial sum, with basic artificial reduced costs eliminated).
#pragma once

#include <cstddef>
#include <vector>

#include "algorithms/lp.hpp"
#include "algorithms/serial/host_matrix.hpp"

namespace vmp::detail {

struct TableauSetup {
  HostMatrix T;                    ///< (ncons+1) × (width+1)
  std::vector<std::size_t> basis;  ///< basis[i] = variable basic in row i+1
  std::size_t nvars = 0;
  std::size_t nslack = 0;
  std::size_t nart = 0;

  /// Column count excluding the rhs; also the rhs column index.
  [[nodiscard]] std::size_t width() const { return nvars + nslack + nart; }
  /// Columns eligible to enter the basis (structural + slack).
  [[nodiscard]] std::size_t allowed() const { return nvars + nslack; }
};

[[nodiscard]] inline TableauSetup build_tableau(const LpProblem& lp) {
  lp.validate();
  const std::size_t m = lp.ncons, nv = lp.nvars;

  std::vector<bool> needs_art(m, false);
  std::size_t nart = 0;
  for (std::size_t i = 0; i < m; ++i)
    if (lp.b[i] < 0) {
      needs_art[i] = true;
      ++nart;
    }

  TableauSetup tb;
  tb.nvars = nv;
  tb.nslack = m;
  tb.nart = nart;
  const std::size_t width = tb.width();
  tb.T = HostMatrix(m + 1, width + 1);
  tb.basis.resize(m);

  std::size_t next_art = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double sign = needs_art[i] ? -1.0 : 1.0;
    for (std::size_t j = 0; j < nv; ++j)
      tb.T(i + 1, j) = sign * lp.A[i * nv + j];
    tb.T(i + 1, nv + i) = sign;  // slack
    tb.T(i + 1, width) = sign * lp.b[i];
    if (needs_art[i]) {
      const std::size_t a = nv + m + next_art++;
      tb.T(i + 1, a) = 1.0;
      tb.basis[i] = a;
    } else {
      tb.basis[i] = nv + i;
    }
  }

  if (nart > 0) {
    // Phase I objective: maximize -(sum of artificials); eliminate the
    // basic artificials so their reduced costs start at zero.
    for (std::size_t a = 0; a < nart; ++a) tb.T(0, nv + m + a) = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (!needs_art[i]) continue;
      for (std::size_t k = 0; k <= width; ++k) tb.T(0, k) -= tb.T(i + 1, k);
    }
  }
  return tb;
}

}  // namespace vmp::detail
