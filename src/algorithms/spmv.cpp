#include "algorithms/spmv.hpp"

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "core/sparse_primitives.hpp"
#include "obs/trace.hpp"

namespace vmp {

DistVector<double> spmv(const DistSparseMatrix<double>& A,
                        const DistVector<double>& x) {
  detail::require_cols_aligned("spmv", A, x);
  VMP_TRACE(A.grid().cube(), "spmv");
  const DistSparseMatrix<double> X = distribute_like(A, x, Axis::Row);
  const DistSparseMatrix<double> P = hadamard(A, X);
  return reduce(P, Axis::Row, Plus<double>{});
}

DistVector<double> spmv_fused(const DistSparseMatrix<double>& A,
                              const DistVector<double>& x) {
  detail::require_cols_aligned("spmv_fused", A, x);
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "spmv_fused");
  DistVector<double> y(grid, A.nrows(), Align::Rows, A.layout().rows);
  cube.compute(2 * A.max_tile_nnz(), 2 * A.nnz(), [&](proc_t q) {
    const std::size_t lrn = A.lrows(q);
    kern::dot_sparse(A.tile_rowptr(q), A.tile_colind(q), A.tile_vals(q), lrn,
                     x.piece(q), y.data().tile(q).first(lrn));
  });
  allreduce_auto(cube, y.data(), grid.within_row(), Plus<double>{});
  return y;
}

}  // namespace vmp
