/// \file lp.hpp
/// \brief Linear-programming problem and solution types shared by the
///        serial and distributed simplex solvers.
///
/// Problems are in the canonical inequality form the paper's simplex
/// demonstration uses:   maximize c·x   subject to  A·x ≤ b,  x ≥ 0.
/// Negative right-hand sides are allowed; the solvers run a Phase I with
/// artificial variables when needed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hypercube/check.hpp"

namespace vmp {

struct LpProblem {
  std::size_t nvars = 0;  ///< structural variables
  std::size_t ncons = 0;  ///< inequality constraints
  std::vector<double> c;  ///< objective, size nvars (maximized)
  std::vector<double> A;  ///< row-major ncons × nvars constraint matrix
  std::vector<double> b;  ///< right-hand sides, size ncons

  void validate() const {
    VMP_REQUIRE(c.size() == nvars, "objective length mismatch");
    VMP_REQUIRE(A.size() == ncons * nvars, "constraint matrix size mismatch");
    VMP_REQUIRE(b.size() == ncons, "rhs length mismatch");
  }
};

enum class LpStatus { Optimal, Unbounded, Infeasible, IterationLimit };

[[nodiscard]] constexpr const char* to_string(LpStatus s) noexcept {
  switch (s) {
    case LpStatus::Optimal: return "optimal";
    case LpStatus::Unbounded: return "unbounded";
    case LpStatus::Infeasible: return "infeasible";
    case LpStatus::IterationLimit: return "iteration-limit";
  }
  return "?";
}

enum class PivotRule {
  Dantzig,  ///< most negative reduced cost (fast in practice)
  Bland,    ///< smallest eligible index (anti-cycling guarantee)
};

struct SimplexOptions {
  PivotRule rule = PivotRule::Dantzig;
  double eps = 1e-9;
  std::size_t max_iters = 20000;
  /// Run the pivot's row scaling, row insertion, pivot-column masking, and
  /// rank-1 elimination as ONE fused compute pass instead of four
  /// primitive calls.  Bit-identical results (the communication sequence
  /// and every floating-point operation are unchanged) at the same or
  /// lower simulated cost.
  bool fused_pivot = false;
};

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;             ///< structural variable values
  std::size_t iterations = 0;        ///< total pivots (both phases)
  std::size_t phase1_iterations = 0;
};

}  // namespace vmp
