/// \file cg.hpp
/// \brief Conjugate-gradient solver on the primitives — an iterative
///        counterpart to the paper's Gaussian elimination, and the pattern
///        the compendium's finite-element reports used on the CM-2
///        (matvec + dot products + axpys, one embedding change per
///        iteration to bring A·p back into alignment).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "embed/dist_matrix.hpp"
#include "embed/dist_sparse_matrix.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

struct CgOptions {
  double tol = 1e-10;           ///< relative residual target ||r||/||b||
  std::size_t max_iters = 0;    ///< 0 = dimension of the system
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||r||₂
  bool converged = false;
};

/// Solve A·x = b for symmetric positive definite A.  The solver is
/// storage-generic: both overloads run the identical iteration sequence
/// (matvec/spmv_fused → realign → dots → axpys), so for the same matrix
/// the dense and sparse paths produce bit-identical iterates.
[[nodiscard]] CgResult conjugate_gradient(const DistMatrix<double>& A,
                                          std::span<const double> b,
                                          CgOptions opts = {});
[[nodiscard]] CgResult conjugate_gradient(const DistSparseMatrix<double>& A,
                                          std::span<const double> b,
                                          CgOptions opts = {});

/// Jacobi-preconditioned CG (M = diag A) — the diagonal-preconditioner
/// variant the compendium's finite-element reports ran on the CM-2.
/// Usually converges in noticeably fewer iterations on badly scaled
/// systems for one extra elementwise divide per iteration.
[[nodiscard]] CgResult conjugate_gradient_jacobi(const DistMatrix<double>& A,
                                                 std::span<const double> b,
                                                 CgOptions opts = {});
[[nodiscard]] CgResult conjugate_gradient_jacobi(
    const DistSparseMatrix<double>& A, std::span<const double> b,
    CgOptions opts = {});

/// The main diagonal of a square matrix as a Cols-aligned vector (local
/// gather on the diagonal blocks + an all-reduce to replicate).  The
/// sparse overload reads 0 for an unstored diagonal slot.
[[nodiscard]] DistVector<double> extract_diagonal(const DistMatrix<double>& A);
[[nodiscard]] DistVector<double> extract_diagonal(
    const DistSparseMatrix<double>& A);

}  // namespace vmp
