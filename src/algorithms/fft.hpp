/// \file fft.hpp
/// \brief Distributed radix-2 complex FFT — the Boolean cube's signature
///        emulation (Johnsson, Ho, Jacquemin & Ruttenberg, "Computing Fast
///        Fourier Transforms on Boolean Cubes and Related Networks").
///
/// With the Block (consecutive) embedding of 2^L points over 2^d
/// processors the Cooley-Tukey butterfly over point-index bit t is
///
///   * LOCAL      for the low  L-d bits (within every processor's block),
///   * ONE cube-edge exchange for each of the high d bits — bit t of the
///     point index IS bit t-(L-d) of the processor address, so the
///     butterfly network maps onto the cube with dilation 1.
///
/// Total: (n/p)·lg n butterfly arithmetic + d block exchanges + one
/// bit-reversal dimension permutation.
#pragma once

#include <complex>
#include <vector>

#include "embed/dist_vector.hpp"

namespace vmp {

using cplx = std::complex<double>;

/// In-place forward DFT: X[k] = Σ_g x[g]·exp(-2πi·gk/n).  The vector must
/// be Linear with power-of-two length ≥ the processor count.
void fft(DistVector<cplx>& v);

/// In-place inverse DFT (unitary up to the conventional 1/n scaling,
/// which this applies): fft followed by ifft restores the input.
void ifft(DistVector<cplx>& v);

/// Host reference: the O(n²) DFT, for testing and small-size checks.
[[nodiscard]] std::vector<cplx> dft_reference(std::span<const cplx> x);

}  // namespace vmp
