#include "algorithms/invert.hpp"

#include <cmath>
#include <limits>

#include "core/elementwise.hpp"
#include "core/primitives.hpp"
#include "core/swap.hpp"
#include "core/vector_ops.hpp"

namespace vmp {

InvertResult invert(const DistMatrix<double>& A, double pivot_tol) {
  VMP_REQUIRE(A.nrows() == A.ncols(), "invert needs a square matrix");
  const std::size_t n = A.nrows();
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // Augmented system [A | I], column-partitioned like A.
  DistMatrix<double> B(grid, n, 2 * n,
                       MatrixLayout{A.layout().rows, A.layout().cols});
  cube.compute(B.max_block(), n * 2 * n, [&](proc_t q) {
    const std::uint32_t R = grid.prow(q), C = grid.pcol(q);
    const std::size_t lcn = B.lcols(q);
    std::span<double> blk = B.block(q);
    for (std::size_t lr = 0; lr < B.lrows(q); ++lr) {
      const std::size_t i = B.rowmap().global(R, lr);
      for (std::size_t lc = 0; lc < lcn; ++lc) {
        const std::size_t j = B.colmap().global(C, lc);
        if (j < n) {
          // Left half starts as A — copy from A's (differently
          // partitioned) block via host-free lookup within this processor
          // is not possible in general, so this copy goes through the
          // owner map; it is setup work charged as one pass.
          blk[lr * lcn + lc] = 0.0;
        } else {
          blk[lr * lcn + lc] = (j - n == i) ? 1.0 : 0.0;
        }
      }
    }
  });
  // Ship A into the left half (setup, one bulk transfer like the simplex
  // tableau load).
  {
    const std::vector<double> ha = A.to_host();
    cube.each_proc([&](proc_t q) {
      const std::uint32_t R = grid.prow(q), C = grid.pcol(q);
      const std::size_t lcn = B.lcols(q);
      const std::span<double> blk = B.data().tile(q);
      for (std::size_t lr = 0; lr < B.lrows(q); ++lr) {
        const std::size_t i = B.rowmap().global(R, lr);
        for (std::size_t lc = 0; lc < lcn; ++lc) {
          const std::size_t j = B.colmap().global(C, lc);
          if (j < n) blk[lr * lcn + lc] = ha[i * n + j];
        }
      }
    });
    cube.clock().charge_comm_step(n * n, 1, n * n);
  }

  InvertResult out{DistMatrix<double>(grid, n, n, A.layout()), false};

  for (std::size_t k = 0; k < n; ++k) {
    DistVector<double> col = extract(B, Axis::Col, k);
    const ValueIndex<double> best = vec_argmax_key(
        col,
        [&](double v, std::size_t g) { return g >= k ? std::abs(v) : kNegInf; });
    if (best.index < 0 || best.value < pivot_tol) {
      out.singular = true;
      return out;
    }
    const std::size_t piv = static_cast<std::size_t>(best.index);
    if (piv != k) {
      swap_rows(B, k, piv);
      col = extract(B, Axis::Col, k);
    }
    const double pivval = vec_fetch(col, k);

    // Normalize the pivot row.
    DistVector<double> prow = extract(B, Axis::Row, k);
    vec_apply(prow, [pivval](double x) { return x / pivval; });
    insert(B, Axis::Row, k, prow);

    // Eliminate column k from every OTHER row (above and below).
    vec_fill_range(col, k, k + 1, 0.0);
    rank1_update(B, -1.0, col, prow);
  }

  // The right half is A⁻¹; pull it out column by column (each a
  // broadcast-extract + local insert, like any other primitive use).
  for (std::size_t j = 0; j < n; ++j) {
    DistVector<double> cj = extract(B, Axis::Col, n + j);
    insert(out.inverse, Axis::Col, j, cj);
  }
  return out;
}

}  // namespace vmp
