/// \file workloads.hpp
/// \brief Synthetic workload generators shared by tests, examples and the
///        benchmark harness.  All are deterministic in the seed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "algorithms/lp.hpp"
#include "algorithms/serial/host_matrix.hpp"
#include "util/rng.hpp"

namespace vmp {

/// Row-major random matrix with entries in [-1, 1).
[[nodiscard]] inline std::vector<double> random_matrix(std::size_t nrows,
                                                       std::size_t ncols,
                                                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<double> a(nrows * ncols);
  for (double& x : a) x = rng.uniform(-1.0, 1.0);
  return a;
}

/// Random vector with entries in [-1, 1).
[[nodiscard]] inline std::vector<double> random_vector(std::size_t n,
                                                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Random strictly diagonally dominant matrix — always nonsingular, safe
/// for the Gaussian elimination experiments.
[[nodiscard]] inline HostMatrix diag_dominant_matrix(std::size_t n,
                                                     std::uint64_t seed) {
  SplitMix64 rng(seed);
  HostMatrix A(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      A(i, j) = rng.uniform(-1.0, 1.0);
      offsum += std::abs(A(i, j));
    }
    A(i, i) = offsum + rng.uniform(1.0, 2.0);
    if (rng.uniform() < 0.5) A(i, i) = -A(i, i);  // exercise pivoting signs
  }
  return A;
}

/// A host-side CSR matrix over global indices — the assembly format
/// DistSparseMatrix::load_csr consumes.  colind is strictly ascending
/// within each row.
struct HostCsr {
  std::size_t nrows = 0;
  std::size_t ncols = 0;
  std::vector<std::uint32_t> rowptr;  ///< nrows+1 offsets
  std::vector<std::uint32_t> colind;  ///< ascending within each row
  std::vector<double> vals;

  [[nodiscard]] std::size_t nnz() const { return vals.size(); }

  /// The same matrix densified row-major (reference for twin tests).
  [[nodiscard]] std::vector<double> dense() const {
    std::vector<double> a(nrows * ncols, 0.0);
    for (std::size_t i = 0; i < nrows; ++i)
      for (std::uint32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
        a[i * ncols + colind[k]] = vals[k];
    return a;
  }
};

/// Seeded power-law (degree-skewed) sparse matrix: row i draws
/// ~ avg_deg · (nrows/(i+1))^skew / H entries, clamped to [1, ncols] —
/// heavy rows FIRST, so the Consecutive (Block) row embedding piles the
/// mass onto grid row 0 while Cyclic deals it round-robin.  That ordering
/// is the load-imbalance lever bench_spmv ablates.  Deterministic in
/// `seed`; entries in [-1, 1).
[[nodiscard]] inline HostCsr power_law_csr(std::size_t nrows,
                                           std::size_t ncols, double avg_deg,
                                           double skew, std::uint64_t seed) {
  SplitMix64 rng(seed);
  // Zipf row weights w_i = (i+1)^-skew, scaled so the mean degree is
  // avg_deg.
  std::vector<double> w(nrows);
  double wsum = 0.0;
  for (std::size_t i = 0; i < nrows; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -skew);
    wsum += w[i];
  }
  const double scale =
      avg_deg * static_cast<double>(nrows) / (wsum > 0.0 ? wsum : 1.0);
  HostCsr A;
  A.nrows = nrows;
  A.ncols = ncols;
  A.rowptr.assign(nrows + 1, 0);
  std::vector<std::uint32_t> cols;
  for (std::size_t i = 0; i < nrows; ++i) {
    auto deg = static_cast<std::size_t>(w[i] * scale + 0.5);
    deg = std::max<std::size_t>(1, std::min(deg, ncols));
    // Distinct columns via rejection into a sorted scratch (deg ≪ ncols
    // in the power-law regime; degenerate deg = ncols still terminates).
    cols.clear();
    while (cols.size() < deg) {
      const auto j = static_cast<std::uint32_t>(rng.below(ncols));
      const auto it = std::lower_bound(cols.begin(), cols.end(), j);
      if (it != cols.end() && *it == j) continue;
      cols.insert(it, j);
    }
    for (const std::uint32_t j : cols) {
      A.colind.push_back(j);
      A.vals.push_back(rng.uniform(-1.0, 1.0));
    }
    A.rowptr[i + 1] = static_cast<std::uint32_t>(A.colind.size());
  }
  return A;
}

/// Seeded sparse symmetric positive definite matrix: ~avg_deg random
/// off-diagonal entries per row, mirrored, with a strictly dominant
/// positive diagonal — the sparse counterpart of spd_matrix for the CG
/// twin tests.  Every diagonal slot is stored.
[[nodiscard]] inline HostCsr sparse_spd_csr(std::size_t n, double avg_deg,
                                            std::uint64_t seed) {
  SplitMix64 rng(seed);
  // Draw the strict upper triangle, mirror it, then dominate the diagonal.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(n);
  const auto pairs = static_cast<std::size_t>(
      static_cast<double>(n) * avg_deg / 2.0 + 0.5);
  for (std::size_t t = 0; t < pairs && n > 1; ++t) {
    const auto i = static_cast<std::uint32_t>(rng.below(n - 1));
    const auto j =
        static_cast<std::uint32_t>(i + 1 + rng.below(n - 1 - i));
    const double v = rng.uniform(-1.0, 1.0);
    rows[i].emplace_back(j, v);
    rows[j].emplace_back(i, v);
  }
  HostCsr A;
  A.nrows = A.ncols = n;
  A.rowptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& r = rows[i];
    std::sort(r.begin(), r.end());
    // Collapse duplicate draws by summing (keeps symmetry) and track the
    // off-diagonal mass for the dominant diagonal.
    double offsum = 0.0;
    std::vector<std::pair<std::uint32_t, double>> merged;
    for (const auto& [j, v] : r) {
      if (!merged.empty() && merged.back().first == j) {
        merged.back().second += v;
      } else {
        merged.emplace_back(j, v);
      }
    }
    for (const auto& [j, v] : merged) offsum += std::abs(v);
    const double diag = offsum + rng.uniform(1.0, 2.0);
    bool placed = false;
    for (const auto& [j, v] : merged) {
      if (!placed && j > i) {
        A.colind.push_back(static_cast<std::uint32_t>(i));
        A.vals.push_back(diag);
        placed = true;
      }
      A.colind.push_back(j);
      A.vals.push_back(v);
    }
    if (!placed) {
      A.colind.push_back(static_cast<std::uint32_t>(i));
      A.vals.push_back(diag);
    }
    A.rowptr[i + 1] = static_cast<std::uint32_t>(A.colind.size());
  }
  return A;
}

/// Random symmetric positive definite matrix (symmetric and strictly
/// diagonally dominant with positive diagonal) for the CG experiments.
[[nodiscard]] inline HostMatrix spd_matrix(std::size_t n,
                                           std::uint64_t seed) {
  SplitMix64 rng(seed);
  HostMatrix A(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      A(i, j) = A(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) offsum += std::abs(A(i, j));
    A(i, i) = offsum + rng.uniform(1.0, 2.0);
  }
  return A;
}

/// Random LP guaranteed feasible and bounded: positive constraint matrix,
/// positive objective, rhs built from a known interior point.  b ≥ 0, so
/// no Phase I is needed.
[[nodiscard]] inline LpProblem random_feasible_lp(std::size_t ncons,
                                                  std::size_t nvars,
                                                  std::uint64_t seed) {
  SplitMix64 rng(seed);
  LpProblem lp;
  lp.ncons = ncons;
  lp.nvars = nvars;
  lp.A.resize(ncons * nvars);
  lp.b.resize(ncons);
  lp.c.resize(nvars);
  for (double& a : lp.A) a = rng.uniform(0.1, 1.0);
  for (double& c : lp.c) c = rng.uniform(0.1, 1.0);
  std::vector<double> x0(nvars);
  for (double& x : x0) x = rng.uniform(0.0, 1.0);
  for (std::size_t i = 0; i < ncons; ++i) {
    double dot = 0.0;
    for (std::size_t j = 0; j < nvars; ++j) dot += lp.A[i * nvars + j] * x0[j];
    lp.b[i] = dot + rng.uniform(0.1, 1.0);  // slack margin keeps x0 interior
  }
  return lp;
}

/// Random LP with lower-bound constraints x_j ≥ l_j encoded as
/// -x_j ≤ -l_j, giving negative right-hand sides that force a Phase I.
/// Still feasible and bounded by construction.
[[nodiscard]] inline LpProblem random_phase1_lp(std::size_t ncons,
                                                std::size_t nvars,
                                                std::uint64_t seed) {
  SplitMix64 rng(seed);
  LpProblem base = random_feasible_lp(ncons, nvars, seed);
  LpProblem lp;
  lp.nvars = nvars;
  lp.ncons = ncons + nvars;
  lp.c = base.c;
  lp.A.assign(lp.ncons * nvars, 0.0);
  lp.b.assign(lp.ncons, 0.0);
  for (std::size_t i = 0; i < ncons; ++i) {
    for (std::size_t j = 0; j < nvars; ++j)
      lp.A[i * nvars + j] = base.A[i * nvars + j];
    // Push the rhs up so the lower bounds below stay compatible.
    double rowsum = 0.0;
    for (std::size_t j = 0; j < nvars; ++j) rowsum += lp.A[i * nvars + j];
    lp.b[i] = base.b[i] + rowsum;  // roomy upper constraints
  }
  for (std::size_t j = 0; j < nvars; ++j) {
    const double lb = rng.uniform(0.05, 0.5);
    lp.A[(ncons + j) * nvars + j] = -1.0;
    lp.b[ncons + j] = -lb;  // x_j ≥ lb
  }
  return lp;
}

/// Klee–Minty cube of dimension d: the classic worst case that walks the
/// Dantzig rule through an exponential number of vertices.  In this
/// standard formulation the optimum is x = (0, …, 0, 5^d) with objective
/// value 5^d.
[[nodiscard]] inline LpProblem klee_minty(std::size_t d) {
  LpProblem lp;
  lp.nvars = d;
  lp.ncons = d;
  lp.c.assign(d, 0.0);
  lp.A.assign(d * d, 0.0);
  lp.b.assign(d, 0.0);
  for (std::size_t j = 0; j < d; ++j)
    lp.c[j] = std::pow(2.0, static_cast<double>(d - 1 - j));
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j + 1 <= i; ++j)
      lp.A[i * d + j] = std::pow(2.0, static_cast<double>(i - j + 1));
    lp.A[i * d + i] = 1.0;
    lp.b[i] = std::pow(5.0, static_cast<double>(i + 1));
  }
  return lp;
}

}  // namespace vmp
