/// \file rng.hpp
/// \brief Small deterministic PRNG (SplitMix64) for workload generation —
///        reproducible across platforms, no <random> distribution variance.
#pragma once

#include <cstdint>

namespace vmp {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace vmp
