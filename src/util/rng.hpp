/// \file rng.hpp
/// \brief Small deterministic PRNG (SplitMix64) for workload generation —
///        reproducible across platforms, no <random> distribution variance —
///        plus the process-wide seed plumbing: every randomized test and
///        bench derives its seed from global_seed(), which honors the
///        VMP_SEED environment variable, so any failure seen in a log is
///        reproducible by exporting the printed seed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace vmp {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// The process-wide base seed: the value of the VMP_SEED environment
/// variable when set (decimal, or hex with a 0x prefix), else a fixed
/// default.  Read once; the same value is returned for the process's
/// lifetime, so every consumer in a run agrees on it.
[[nodiscard]] inline std::uint64_t global_seed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("VMP_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
      std::fprintf(stderr, "[vmp] ignoring unparsable VMP_SEED=%s\n", env);
    }
    return std::uint64_t{20260806};
  }();
  return seed;
}

/// global_seed(), announced on stdout so the effective seed of any
/// randomized test or bench run survives in its log:
///   [who] effective seed: N (set VMP_SEED to override)
[[nodiscard]] inline std::uint64_t announce_seed(const char* who) {
  const std::uint64_t seed = global_seed();
  std::printf("[%s] effective seed: %llu (set VMP_SEED to override)\n", who,
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  return seed;
}

}  // namespace vmp
