/// \file vmprim.hpp
/// \brief Umbrella header: the whole Four Vector-Matrix Primitives library.
#pragma once

#include "hypercube/bits.hpp"          // IWYU pragma: export
#include "hypercube/buffer_pool.hpp"   // IWYU pragma: export
#include "hypercube/check.hpp"         // IWYU pragma: export
#include "hypercube/cost_model.hpp"    // IWYU pragma: export
#include "hypercube/gray.hpp"          // IWYU pragma: export
#include "hypercube/machine.hpp"       // IWYU pragma: export
#include "hypercube/partition.hpp"     // IWYU pragma: export
#include "hypercube/sim_clock.hpp"     // IWYU pragma: export

#include "fault/fault.hpp"             // IWYU pragma: export
#include "fault/injector.hpp"          // IWYU pragma: export

#include "obs/tracer.hpp"              // IWYU pragma: export
#include "obs/trace.hpp"               // IWYU pragma: export
#include "obs/report.hpp"              // IWYU pragma: export
#include "obs/chrome_trace.hpp"        // IWYU pragma: export
#include "obs/metrics.hpp"             // IWYU pragma: export
#include "obs/critical_path.hpp"       // IWYU pragma: export
#include "obs/flamegraph.hpp"          // IWYU pragma: export

#include "comm/allport.hpp"            // IWYU pragma: export
#include "comm/collectives.hpp"        // IWYU pragma: export
#include "comm/dist_buffer.hpp"        // IWYU pragma: export
#include "comm/ops.hpp"                // IWYU pragma: export
#include "comm/router.hpp"             // IWYU pragma: export
#include "comm/shift.hpp"              // IWYU pragma: export
#include "comm/sparse_exchange.hpp"    // IWYU pragma: export
#include "comm/subcube.hpp"            // IWYU pragma: export

#include "embed/axis_map.hpp"          // IWYU pragma: export
#include "embed/dist_matrix.hpp"       // IWYU pragma: export
#include "embed/dist_sparse_matrix.hpp"  // IWYU pragma: export
#include "embed/dist_vector.hpp"       // IWYU pragma: export
#include "embed/grid.hpp"              // IWYU pragma: export
#include "embed/matrix_embedding.hpp"  // IWYU pragma: export
#include "embed/realign.hpp"           // IWYU pragma: export
#include "embed/sparse_realign.hpp"    // IWYU pragma: export

#include "core/elementwise.hpp"        // IWYU pragma: export
#include "core/naive.hpp"              // IWYU pragma: export
#include "core/primitives.hpp"         // IWYU pragma: export
#include "core/sparse_primitives.hpp"  // IWYU pragma: export
#include "core/permute.hpp"            // IWYU pragma: export
#include "core/scan_ops.hpp"           // IWYU pragma: export
#include "core/swap.hpp"               // IWYU pragma: export
#include "core/transpose.hpp"          // IWYU pragma: export
#include "core/vector_ops.hpp"         // IWYU pragma: export

#include "algorithms/cg.hpp"           // IWYU pragma: export
#include "algorithms/fft.hpp"          // IWYU pragma: export
#include "algorithms/gauss.hpp"        // IWYU pragma: export
#include "algorithms/histogram.hpp"    // IWYU pragma: export
#include "algorithms/invert.hpp"       // IWYU pragma: export
#include "algorithms/lp.hpp"           // IWYU pragma: export
#include "algorithms/matmul.hpp"       // IWYU pragma: export
#include "algorithms/matvec.hpp"       // IWYU pragma: export
#include "algorithms/simplex.hpp"      // IWYU pragma: export
#include "algorithms/sort.hpp"         // IWYU pragma: export
#include "algorithms/spmv.hpp"         // IWYU pragma: export
#include "algorithms/tridiag.hpp"      // IWYU pragma: export
#include "algorithms/serial/tridiag.hpp"  // IWYU pragma: export
#include "algorithms/serial/host_matrix.hpp"  // IWYU pragma: export
#include "algorithms/serial/lu.hpp"    // IWYU pragma: export
#include "algorithms/serial/simplex.hpp"  // IWYU pragma: export

#include "util/rng.hpp"                // IWYU pragma: export
#include "util/workloads.hpp"          // IWYU pragma: export
