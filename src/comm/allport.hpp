/// \file allport.hpp
/// \brief All-port collectives: the n edge-disjoint spanning binomial tree
///        (nESBT) broadcast of Johnsson & Ho, "Optimum Broadcasting and
///        Personalized Communication in Hypercubes".
///
/// The one-port binomial broadcast moves the whole payload across one port
/// per round: k(τ + n·t_c).  With all k ports active at once the payload
/// can be split into k segments, each travelling down its own rotated
/// spanning binomial tree; the trees use distinct dimensions in every
/// round, so a round costs τ + (n/k)·t_c and the whole broadcast
/// k·τ + ~n·t_c — the factor-k transfer-time speedup the paper reports
/// for large payloads (bench_collectives reproduces it).
#pragma once

#include "comm/collectives.hpp"

namespace vmp {

namespace detail {

/// Rotate the low `k` bits of `x` right by `i`.
[[nodiscard]] constexpr std::uint32_t rotr_bits(std::uint32_t x, int i,
                                                int k) noexcept {
  if (k <= 1) return x;
  const std::uint32_t mask = (1u << k) - 1u;
  const int s = i % k;
  if (s == 0) return x & mask;
  return (((x & mask) >> s) | ((x & mask) << (k - s))) & mask;
}

}  // namespace detail

/// All-port broadcast over k = sc.k() rotated edge-disjoint spanning
/// binomial trees; tree i carries block i of the payload.  `n_of(q)` must
/// return q's subcube's payload length on every member.
template <class T, class NFn>
void broadcast_esbt(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    std::uint32_t root_rank, NFn n_of) {
  const int k = sc.k();
  if (k == 0) return;
  if (k == 1) {
    broadcast(cube, buf, sc, root_rank);
    return;
  }
  VMP_REQUIRE(root_rank < sc.size(), "broadcast root rank out of range");
  const std::uint32_t K = static_cast<std::uint32_t>(k);

  // Non-roots receive segments out of order: size their tiles up front.
  std::size_t cap = 0;
  for (proc_t q = 0; q < cube.procs(); ++q)
    cap = std::max(cap, static_cast<std::size_t>(n_of(q)));
  buf.reserve_each(cap);
  cube.each_proc([&](proc_t q) {
    if (sc.rank(q) != root_rank) buf.assign(q, n_of(q), T{});
  });

  // holder[i] tracking is analytic: in tree i's ROTATED relative-rank
  // space the holder set after processing bits {k-1..j+1} is exactly the
  // ranks with no unprocessed bit set — the standard binomial invariant.
  const auto batch = cube.session();
  std::uint32_t processed = 0;
  std::vector<int> dims(K);
  for (int j = k - 1; j >= 0; --j) {
    for (std::uint32_t i = 0; i < K; ++i)
      dims[i] = sc.dim_of_rank_bit(static_cast<int>((j + i) % k));
    const std::uint32_t snapshot = processed;
    cube.exchange_allport<T>(
        std::span<const int>(dims),
        [&](proc_t q, std::size_t i) -> std::span<const T> {
          const std::uint32_t rr = sc.rank(q) ^ root_rank;
          const std::uint32_t rrot =
              detail::rotr_bits(rr, static_cast<int>(i), k);
          if ((rrot & ~snapshot) != 0) return {};  // not a holder in tree i
          const std::size_t n = n_of(q);
          const std::size_t lo = block_begin(n, K, static_cast<std::uint32_t>(i));
          const std::size_t hi =
              block_begin(n, K, static_cast<std::uint32_t>(i) + 1);
          return std::span<const T>(buf.tile(q)).subspan(lo, hi - lo);
        },
        [&](proc_t q, std::size_t i, std::span<const T> in) {
          const std::size_t n = n_of(q);
          const std::size_t lo = block_begin(n, K, static_cast<std::uint32_t>(i));
          VMP_ASSERT(lo + in.size() <= buf.len(q),
                     "esbt segment out of range");
          kern::copy(in, buf.tile(q).subspan(lo, in.size()));
        });
    processed |= 1u << j;
  }
}

}  // namespace vmp
