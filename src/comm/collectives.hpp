/// \file collectives.hpp
/// \brief Collective communication on the Boolean cube, the substrate the
///        four primitives are built from.
///
/// Every collective runs concurrently and independently in all subcubes of
/// a SubcubeSet, uses only one-port cube-edge exchanges, and charges the
/// simulated clock per lockstep round.  The algorithms are the classical
/// ones from the hypercube literature the paper cites (Johnsson & Ho,
/// "Optimum Broadcasting and Personalized Communication in Hypercubes"):
///
///  * broadcast            — spanning binomial tree: k(τ + n·t_c)
///  * broadcast_sag        — scatter + all-gather:   2k·τ + ~2n·t_c
///  * reduce_to_rank       — binomial-tree combine:  k(τ + n·t_c) + k·n·t_a
///  * allreduce (doubling) — recursive doubling:     k(τ + n·t_c) + k·n·t_a
///  * reduce_scatter       — recursive halving:      k·τ + ~n·t_c + ~n·t_a
///  * allgather            — recursive doubling:     k·τ + ~n·t_c
///  * allreduce_rsag       — halving + doubling:     2k·τ + ~2n·t_c + n·t_a
///  * broadcast_pipelined  — segment pipeline: (k+S-1)(τ + ⌈n/S⌉·t_c)
///  * allreduce_pipelined  — segmented doubling, same round count + k·n·t_a
///  * scan_* (prefix)      — rank-ordered parallel prefix, k rounds
///  * route_within         — combining dimension-order routing, k rounds
///
/// (k = subcube dimension, n = per-processor data, per subcube.)
/// The reduce-scatter/all-gather forms are what make the paper's reduce and
/// distribute primitives processor-time optimal for m > p·lg p: the τ term
/// appears only lg p times while every element crosses an edge O(1) times.
/// `broadcast_auto` / `allreduce_auto` pick the cheaper variant by
/// evaluating the cost model with the machine's actual parameters — the
/// algorithm-selection discipline of the era's substrate papers.
///
/// Payload lengths may differ from subcube to subcube (they arise from
/// non-divisible matrix extents) but must agree within each subcube.
///
/// Collectives whose delivery callbacks GROW a tile (all-gather's appends,
/// broadcast's assigns, routing's inserts) pre-reserve the final capacity
/// on the host thread before entering the exchange — slab tiles may change
/// length concurrently but may not outgrow their stride off the host
/// thread (see comm/dist_buffer.hpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "core/kernels.hpp"
#include "hypercube/machine.hpp"
#include "hypercube/partition.hpp"
#include "obs/trace.hpp"
#include "comm/dist_buffer.hpp"
#include "comm/ops.hpp"
#include "comm/subcube.hpp"

namespace vmp {

/// Host-side helper: largest local tile length (used for flop charging).
template <class T>
[[nodiscard]] std::size_t max_local_len(const Cube& cube,
                                        const DistBuffer<T>& buf) {
  std::size_t m = 0;
  for (proc_t q = 0; q < cube.procs(); ++q) m = std::max(m, buf.len(q));
  return m;
}

// ---------------------------------------------------------------------------
// All-reduce by recursive doubling.
// ---------------------------------------------------------------------------

/// Combine equal-length (per subcube) local arrays; on exit every member
/// holds the subcube-wide reduction.  Combines are applied in rank order,
/// so non-commutative (but associative) operators are supported.
template <class T, class Op>
void allreduce(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc, Op op) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "allreduce");
  const auto batch = cube.session();
  const std::size_t n = max_local_len(cube, buf);
  for (int i = 0; i < sc.k(); ++i) {
    const int d = sc.dim_of_rank_bit(i);
    cube.exchange<T>(
        d, [&](proc_t q) -> std::span<const T> { return buf.tile(q); },
        [&](proc_t q, std::span<const T> in) {
          const std::span<T> mine = buf.tile(q);
          VMP_ASSERT(in.size() == mine.size(), "allreduce length mismatch");
          // The high half takes the remote value as the op's LEFT argument
          // (order matters for Max/Min on equal values and signed zeros).
          if (bit_of(q, d) != 0)
            kern::zip_swapped(mine, in, kern::op_fn(op));
          else
            kern::zip(mine, in, kern::op_fn(op));
        });
    cube.clock().charge_compute_step(n, n * cube.procs());
  }
}

// ---------------------------------------------------------------------------
// Reduce-scatter by recursive halving.
// ---------------------------------------------------------------------------

/// On entry every subcube member holds the same-length array (length may
/// differ between subcubes); on exit the member with subcube rank r holds
/// the combined block [block_begin(n,P,r), block_begin(n,P,r+1)) of its
/// subcube's array and nothing else.  Combines are rank-ordered.
template <class T, class Op>
void reduce_scatter(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    Op op) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "reduce_scatter");
  const auto batch = cube.session();
  const std::uint32_t P = sc.size();
  std::vector<std::size_t> n_of(cube.procs());
  for (proc_t q = 0; q < cube.procs(); ++q) n_of[q] = buf.len(q);

  std::vector<unsigned char> got(cube.procs());
  for (int j = sc.k() - 1; j >= 0; --j) {
    const int d = sc.dim_of_rank_bit(j);
    const std::uint32_t half = 1u << j;
    const std::uint32_t width = half << 1;
    // Segment geometry for processor q at this level: (rank, seg_lo, split,
    // seg_hi) of the global range the processor currently covers.
    const auto geometry = [&](proc_t q) {
      const std::size_t n = n_of[q];
      const std::uint32_t r = sc.rank(q);
      const std::uint32_t lo_rank = r & ~(width - 1);
      const std::size_t seg_lo = block_begin(n, P, lo_rank);
      const std::size_t split = block_begin(n, P, lo_rank + half);
      const std::size_t seg_hi = block_begin(n, P, lo_rank + width);
      return std::tuple{r, seg_lo, split, seg_hi};
    };
    std::size_t max_kept = 0;
    std::uint64_t total_combines = 0;
    for (proc_t q = 0; q < cube.procs(); ++q) {
      const auto [r, seg_lo, split, seg_hi] = geometry(q);
      const std::size_t kept =
          ((r >> j) & 1u) == 0 ? split - seg_lo : seg_hi - split;
      max_kept = std::max(max_kept, kept);
      total_combines += kept;
    }
    std::fill(got.begin(), got.end(), 0);
    cube.exchange<T>(
        d,
        [&](proc_t q) -> std::span<const T> {
          const auto [r, seg_lo, split, seg_hi] = geometry(q);
          const std::span<const T> mine = buf.tile(q);
          VMP_ASSERT(mine.size() == seg_hi - seg_lo,
                     "reduce_scatter segment length mismatch");
          if (((r >> j) & 1u) == 0)  // keep front, send back half
            return mine.subspan(split - seg_lo);
          return mine.first(split - seg_lo);
        },
        [&](proc_t q, std::span<const T> in) {
          // Combine straight into the kept range while sliding it to the
          // front (the write index never passes the read index), so the
          // round needs no incoming staging buffer and no per-round
          // scratch — the steady-state loop is allocation-free.  The
          // trailing resize only shrinks, so it is delivery-safe.
          const auto [r, seg_lo, split, seg_hi] = geometry(q);
          const std::span<T> mine = buf.tile(q);
          const bool low = ((r >> j) & 1u) == 0;
          const std::size_t kept_off = low ? 0 : split - seg_lo;
          const std::size_t kept_len = low ? split - seg_lo : seg_hi - split;
          VMP_ASSERT(in.size() == kept_len,
                     "reduce_scatter incoming length mismatch");
          for (std::size_t t = 0; t < kept_len; ++t) {
            const T& a = mine[kept_off + t];
            mine[t] = low ? op.combine(a, in[t]) : op.combine(in[t], a);
          }
          buf.resize(q, kept_len);
          got[q] = 1;
        });
    // Degenerate case: the partner's copy of the kept block was empty, so
    // no message arrived — still shrink to the kept range, uncombined.
    cube.each_proc([&](proc_t q) {
      if (got[q]) return;
      const auto [r, seg_lo, split, seg_hi] = geometry(q);
      const std::span<T> mine = buf.tile(q);
      const bool low = ((r >> j) & 1u) == 0;
      const std::size_t kept_off = low ? 0 : split - seg_lo;
      const std::size_t kept_len = low ? split - seg_lo : seg_hi - split;
      if (kept_off != 0)
        kern::copy(std::span<const T>(mine.subspan(kept_off, kept_len)),
                   mine.first(kept_len));
      buf.resize(q, kept_len);
    });
    cube.clock().charge_compute_step(max_kept, total_combines);
  }
}

// ---------------------------------------------------------------------------
// All-gather by recursive doubling.
// ---------------------------------------------------------------------------

/// Inverse of reduce_scatter's data layout: on entry the member with
/// effective rank rr = rank ^ rank_xor holds block rr of a block partition
/// of its subcube's total `n_of(q)`; on exit every member holds the full
/// concatenation in block order.  `rank_xor` supports gathers "rooted"
/// away from rank 0 (the all-gather phase of broadcast_sag).
template <class T, class NFn>
void allgather(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc, NFn n_of,
               std::uint32_t rank_xor = 0) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "allgather");
  const auto batch = cube.session();
  // Delivery appends/prepends into the tiles: reserve the assembled length
  // up front so no round needs to grow the arena mid-exchange.
  std::size_t cap = 0;
  for (proc_t q = 0; q < cube.procs(); ++q)
    cap = std::max(cap, static_cast<std::size_t>(n_of(q)));
  buf.reserve_each(cap);
  for (int j = 0; j < sc.k(); ++j) {
    const int d = sc.dim_of_rank_bit(j);
    cube.exchange<T>(
        d, [&](proc_t q) -> std::span<const T> { return buf.tile(q); },
        [&](proc_t q, std::span<const T> in) {
          const std::uint32_t rr = sc.rank(q) ^ rank_xor;
          if (((rr >> j) & 1u) == 0) {
            buf.append(q, in);  // partner higher
          } else {
            buf.prepend(q, in);  // partner lower
          }
        });
  }
  for (proc_t q = 0; q < cube.procs(); ++q) {
    VMP_ASSERT(buf.len(q) == n_of(q),
               "allgather did not assemble the expected length");
  }
}

/// Uniform-length convenience overload.
template <class T>
void allgather(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
               std::size_t n, std::uint32_t rank_xor = 0) {
  allgather(cube, buf, sc, [n](proc_t) { return n; }, rank_xor);
}

/// Reduce-scatter followed by all-gather: the bandwidth-optimal all-reduce
/// for long arrays.
template <class T, class Op>
void allreduce_rsag(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    Op op) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "allreduce_rsag");
  const auto batch = cube.session();
  std::vector<std::size_t> n_of(cube.procs());
  for (proc_t q = 0; q < cube.procs(); ++q) n_of[q] = buf.len(q);
  reduce_scatter(cube, buf, sc, op);
  allgather(cube, buf, sc, [&](proc_t q) { return n_of[q]; });
}

// ---------------------------------------------------------------------------
// Segment pipelining across cube dimensions.
// ---------------------------------------------------------------------------

/// The segment count minimizing the pipelined round model
/// `(k+S-1)(τ + ⌈n/S⌉·t_c)`: S* = √((k-1)·n·t_c / τ), clamped to [1, n].
/// A zero start-up cost degenerates to one segment per element.
[[nodiscard]] inline std::uint32_t pipeline_segments(const CostParams& cp,
                                                     int k, std::size_t n) {
  if (n <= 1 || k <= 1) return 1;
  double s = cp.startup_us > 0.0
                 ? std::sqrt((static_cast<double>(k) - 1.0) *
                             static_cast<double>(n) * cp.per_elem_us /
                             cp.startup_us)
                 : static_cast<double>(n);
  s = std::floor(s + 0.5);
  if (s < 1.0) s = 1.0;
  if (s > static_cast<double>(n)) s = static_cast<double>(n);
  return static_cast<std::uint32_t>(s);
}

/// Communication-round model of an S-segment pipeline over k dimensions:
/// the last segment finishes after k+S-1 rounds of ⌈n/S⌉-element sends.
/// Every pipelined collective charges AT MOST this (empty rounds elide).
[[nodiscard]] inline double pipeline_rounds_model(const CostParams& cp, int k,
                                                  std::size_t n,
                                                  std::uint32_t nseg) {
  const double seg = static_cast<double>((n + nseg - 1) / nseg);
  return (static_cast<double>(k) + static_cast<double>(nseg) - 1.0) *
         (cp.startup_us + seg * cp.per_elem_us);
}

/// Segment-pipelined recursive-doubling all-reduce: the array is cut into
/// `nseg` blocks and segment s runs doubling step i in round s+i; active
/// segments occupy DISTINCT cube dimensions, so every round is one
/// all-port exchange of ~n/S elements instead of a one-port exchange of n.
/// Combines follow the exact rank-ordered rule of `allreduce`, applied per
/// segment — elementwise the combining sequence is identical, so results
/// are bit-identical to recursive doubling (non-commutative ops included).
/// (k+S-1)(τ + ⌈n/S⌉·t_c) + k·n·t_a: beats doubling once k·τ dominates.
template <class T, class Op>
void allreduce_pipelined(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                         Op op, std::uint32_t nseg) {
  if (sc.k() == 0) return;
  VMP_REQUIRE(nseg >= 1, "allreduce_pipelined needs at least one segment");
  VMP_TRACE(cube, "allreduce_pipelined");
  const auto batch = cube.session();
  const int k = sc.k();
  const std::uint32_t S = nseg;
  const auto seg_range = [&](proc_t q, std::uint32_t s) {
    const std::size_t n = buf.len(q);
    return std::pair{block_begin(n, S, s), block_begin(n, S, s + 1)};
  };
  std::vector<int> dims;
  std::vector<std::uint32_t> segs;
  for (int t = 0; t < k + static_cast<int>(S) - 1; ++t) {
    dims.clear();
    segs.clear();
    const std::uint32_t s_lo =
        t >= k ? static_cast<std::uint32_t>(t - k + 1) : 0;
    const std::uint32_t s_hi = std::min<std::uint32_t>(
        S - 1, static_cast<std::uint32_t>(t));
    for (std::uint32_t s = s_lo; s <= s_hi; ++s) {
      dims.push_back(sc.dim_of_rank_bit(t - static_cast<int>(s)));
      segs.push_back(s);
    }
    cube.exchange_allport<T>(
        std::span<const int>(dims),
        [&](proc_t q, std::size_t idx) -> std::span<const T> {
          const auto [lo, hi] = seg_range(q, segs[idx]);
          return std::span<const T>(buf.tile(q)).subspan(lo, hi - lo);
        },
        [&](proc_t q, std::size_t idx, std::span<const T> in) {
          const auto [lo, hi] = seg_range(q, segs[idx]);
          VMP_ASSERT(in.size() == hi - lo,
                     "allreduce_pipelined segment length mismatch");
          const std::span<T> seg = buf.tile(q).subspan(lo, hi - lo);
          if (bit_of(q, dims[idx]) != 0)
            kern::zip_swapped(seg, in, kern::op_fn(op));
          else
            kern::zip(seg, in, kern::op_fn(op));
        });
    // This round combined the contiguous range [seg s_lo, seg s_hi] on
    // every processor; charge its per-processor max like `allreduce` does.
    std::size_t max_comb = 0;
    std::uint64_t total_comb = 0;
    for (proc_t q = 0; q < cube.procs(); ++q) {
      const std::size_t n = buf.len(q);
      const std::size_t len =
          block_begin(n, S, s_hi + 1) - block_begin(n, S, s_lo);
      max_comb = std::max(max_comb, len);
      total_comb += len;
    }
    cube.clock().charge_compute_step(max_comb, total_comb);
  }
}

/// Model-driven choice between recursive doubling, reduce-scatter /
/// all-gather, and the segment pipeline, evaluated with the machine's
/// actual cost parameters.  The pipeline is picked only when its model is
/// strictly cheaper than both exact variants (its actual charge never
/// exceeds the model, so the selection can only improve on the minimum).
template <class T, class Op>
void allreduce_auto(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    Op op) {
  if (sc.k() == 0) return;
  const std::size_t nmax = max_local_len(cube, buf);
  const double n = static_cast<double>(nmax);
  const double k = sc.k();
  const double frac =
      (static_cast<double>(sc.size()) - 1.0) / static_cast<double>(sc.size());
  const CostParams& cp = cube.costs();
  // Exact charges of the two algorithms (up to ceil rounding of blocks):
  // doubling moves the full array k times and combines it k times;
  // halving+gathering moves n·(P-1)/P twice and combines it once.
  const double c_rd = k * (cp.startup_us + n * cp.per_elem_us) +
                      k * n * cp.flop_us;
  const double c_rsag = 2 * k * cp.startup_us +
                        2 * n * frac * cp.per_elem_us +
                        n * frac * cp.flop_us;
  const std::uint32_t S = pipeline_segments(cp, sc.k(), nmax);
  const double c_pipe = pipeline_rounds_model(cp, sc.k(), nmax, S) +
                        k * n * cp.flop_us;
  if (S > 1 && c_pipe < c_rd && c_pipe < c_rsag) {
    allreduce_pipelined(cube, buf, sc, op, S);
  } else if (c_rsag < c_rd) {
    allreduce_rsag(cube, buf, sc, op);
  } else {
    allreduce(cube, buf, sc, op);
  }
}

// ---------------------------------------------------------------------------
// Broadcast.
// ---------------------------------------------------------------------------

/// Spanning-binomial-tree broadcast: the member with rank `root_rank` of
/// each subcube holds the payload; on exit every member holds a copy.
/// k rounds of full-payload sends: best for short payloads.
template <class T>
void broadcast(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
               std::uint32_t root_rank) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "broadcast");
  const auto batch = cube.session();
  VMP_REQUIRE(root_rank < sc.size(), "broadcast root rank out of range");
  buf.reserve_each(max_local_len(cube, buf));  // non-roots receive in place
  std::uint32_t processed = 0;  // relative-rank bits already covered
  for (int j = sc.k() - 1; j >= 0; --j) {
    const int d = sc.dim_of_rank_bit(j);
    cube.exchange<T>(
        d,
        [&](proc_t q) -> std::span<const T> {
          const std::uint32_t rr = sc.rank(q) ^ root_rank;
          if ((rr & ~processed) == 0)  // current holder
            return buf.tile(q);
          return {};
        },
        [&](proc_t q, std::span<const T> in) { buf.assign(q, in); });
    processed |= 1u << j;
  }
}

/// Scatter phase of broadcast_sag: the root's payload is split into
/// relative-rank-indexed blocks and peeled down the binomial tree, so the
/// member with relative rank rr ends up holding block rr.
template <class T, class NFn>
void scatter_blocks(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    std::uint32_t root_rank, NFn n_of) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "scatter");
  const auto batch = cube.session();
  VMP_REQUIRE(root_rank < sc.size(), "scatter root rank out of range");
  const std::uint32_t P = sc.size();
  std::size_t cap = 0;
  for (proc_t q = 0; q < cube.procs(); ++q)
    cap = std::max(cap, static_cast<std::size_t>(n_of(q)));
  buf.reserve_each(cap);
  // Non-roots are overwritten by their incoming block; processors whose
  // block is EMPTY (payload shorter than the subcube) receive nothing, so
  // clear any pre-sized state up front or stale data survives the scatter.
  cube.each_proc([&](proc_t q) {
    if (sc.rank(q) != root_rank) buf.clear(q);
  });
  std::uint32_t processed = 0;
  for (int j = sc.k() - 1; j >= 0; --j) {
    const int d = sc.dim_of_rank_bit(j);
    const std::uint32_t half = 1u << j;
    cube.exchange<T>(
        d,
        [&](proc_t q) -> std::span<const T> {
          const std::uint32_t rr = sc.rank(q) ^ root_rank;
          if ((rr & ~processed) != 0) return {};  // not a holder yet
          // Holder rr covers blocks [rr, rr + 2^(j+1)); send the top half.
          const std::size_t n = n_of(q);
          const std::size_t lo = block_begin(n, P, rr);
          const std::size_t cut = block_begin(n, P, rr + half);
          return std::span<const T>(buf.tile(q)).subspan(cut - lo);
        },
        [&](proc_t q, std::span<const T> in) { buf.assign(q, in); });
    // Holders shrink to the bottom half of their coverage (bookkeeping).
    cube.each_proc([&](proc_t q) {
      const std::uint32_t rr = sc.rank(q) ^ root_rank;
      if ((rr & ~processed) != 0) return;
      const std::size_t n = n_of(q);
      const std::size_t lo = block_begin(n, P, rr);
      const std::size_t cut = block_begin(n, P, rr + half);
      buf.resize(q, cut - lo);
    });
    processed |= 1u << j;
  }
}

/// Scatter + all-gather broadcast: 2k start-ups but each element crosses an
/// edge only ~twice, beating the binomial tree beyond a crossover payload
/// length (bench_ablation reproduces the crossover).
/// `n_of(q)` must return the payload length of q's subcube on EVERY member
/// (non-roots need it to know their block geometry).
template <class T, class NFn>
void broadcast_sag(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                   std::uint32_t root_rank, NFn n_of) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "broadcast_sag");
  const auto batch = cube.session();
  scatter_blocks(cube, buf, sc, root_rank, n_of);
  allgather(cube, buf, sc, n_of, root_rank);
}

/// Segment-pipelined binomial broadcast: the payload is cut into `nseg`
/// blocks which ripple down the spanning binomial tree one stage behind
/// each other (segment s runs tree stage t-s in round t).  Active segments
/// occupy DISTINCT cube dimensions, so every round is one all-port
/// exchange of ~n/S elements: (k+S-1)(τ + ⌈n/S⌉·t_c), sitting between the
/// binomial tree (S=1) and scatter+all-gather in the τ vs n·t_c tradeoff.
/// Pure data motion, so results are bit-identical to `broadcast`.
/// `n_of(q)` as in broadcast_sag (every member needs its subcube's payload
/// length to size its copy and locate segment boundaries).
template <class T, class NFn>
void broadcast_pipelined(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                         std::uint32_t root_rank, NFn n_of,
                         std::uint32_t nseg) {
  if (sc.k() == 0) return;
  VMP_REQUIRE(root_rank < sc.size(), "broadcast root rank out of range");
  VMP_REQUIRE(nseg >= 1, "broadcast_pipelined needs at least one segment");
  VMP_TRACE(cube, "broadcast_pipelined");
  const auto batch = cube.session();
  const int k = sc.k();
  const std::uint32_t S = nseg;
  std::size_t cap = 0;
  for (proc_t q = 0; q < cube.procs(); ++q)
    cap = std::max(cap, static_cast<std::size_t>(n_of(q)));
  buf.reserve_each(cap);
  // Non-roots receive their segments in place: size them up front.
  cube.each_proc([&](proc_t q) {
    if (sc.rank(q) != root_rank) buf.resize(q, n_of(q));
  });
  const auto seg_range = [&](proc_t q, std::uint32_t s) {
    const std::size_t n = n_of(q);
    return std::pair{block_begin(n, S, s), block_begin(n, S, s + 1)};
  };
  std::vector<int> dims;
  std::vector<std::uint32_t> segs;
  for (int t = 0; t < k + static_cast<int>(S) - 1; ++t) {
    dims.clear();
    segs.clear();
    const std::uint32_t s_lo =
        t >= k ? static_cast<std::uint32_t>(t - k + 1) : 0;
    const std::uint32_t s_hi = std::min<std::uint32_t>(
        S - 1, static_cast<std::uint32_t>(t));
    for (std::uint32_t s = s_lo; s <= s_hi; ++s) {
      // Stage st of the binomial tree crosses rank bit k-1-st, mirroring
      // `broadcast`'s high-to-low dimension order.
      const int st = t - static_cast<int>(s);
      dims.push_back(sc.dim_of_rank_bit(k - 1 - st));
      segs.push_back(s);
    }
    cube.exchange_allport<T>(
        std::span<const int>(dims),
        [&](proc_t q, std::size_t idx) -> std::span<const T> {
          const std::uint32_t s = segs[idx];
          const int st = t - static_cast<int>(s);
          // Holders of segment s before stage st: relative ranks whose
          // uncovered bits (below k-st) are all zero.
          const std::uint32_t processed =
              (std::uint32_t{1} << k) - (std::uint32_t{1} << (k - st));
          const std::uint32_t rr = sc.rank(q) ^ root_rank;
          if ((rr & ~processed) != 0) return {};
          const auto [lo, hi] = seg_range(q, s);
          return std::span<const T>(buf.tile(q)).subspan(lo, hi - lo);
        },
        [&](proc_t q, std::size_t idx, std::span<const T> in) {
          const auto [lo, hi] = seg_range(q, segs[idx]);
          VMP_ASSERT(in.size() == hi - lo,
                     "broadcast_pipelined segment length mismatch");
          kern::copy(in, buf.tile(q).subspan(lo, in.size()));
        });
  }
}

/// Model-driven choice between binomial, scatter+all-gather, and the
/// segment-pipelined broadcast.  The pipeline is picked only when its
/// model is strictly cheaper than both exact variants (its actual charge
/// never exceeds the model).  `n_of(q)` as in broadcast_sag.
template <class T, class NFn>
void broadcast_auto(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    std::uint32_t root_rank, NFn n_of) {
  if (sc.k() == 0) return;
  std::size_t nmax = 0;
  for (proc_t q = 0; q < cube.procs(); ++q)
    nmax = std::max(nmax, static_cast<std::size_t>(n_of(q)));
  const double n = static_cast<double>(nmax);
  const double k = sc.k();
  const double frac =
      (static_cast<double>(sc.size()) - 1.0) / static_cast<double>(sc.size());
  const CostParams& cp = cube.costs();
  // Exact charges (up to ceil rounding): the binomial tree moves the full
  // payload k times; scatter+all-gather moves n·(P-1)/P twice.
  const double c_bin = k * (cp.startup_us + n * cp.per_elem_us);
  const double c_sag =
      2 * k * cp.startup_us + 2 * n * frac * cp.per_elem_us;
  const std::uint32_t S = pipeline_segments(cp, sc.k(), nmax);
  const double c_pipe = pipeline_rounds_model(cp, sc.k(), nmax, S);
  if (S > 1 && c_pipe < c_bin && c_pipe < c_sag) {
    broadcast_pipelined(cube, buf, sc, root_rank, n_of, S);
  } else if (c_sag < c_bin) {
    broadcast_sag(cube, buf, sc, root_rank, n_of);
  } else {
    broadcast(cube, buf, sc, root_rank);
  }
}

// ---------------------------------------------------------------------------
// Reduce to one rank (binomial tree, mirror image of broadcast).
// ---------------------------------------------------------------------------

/// Combine equal-length arrays onto the member with rank `root_rank`.
/// Requires a commutative operator (combining order follows the tree, not
/// global rank order).  Non-roots' arrays are left holding partial sums.
template <class T, class Op>
void reduce_to_rank(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    Op op, std::uint32_t root_rank) {
  if (sc.k() == 0) return;
  VMP_TRACE(cube, "reduce_to_rank");
  const auto batch = cube.session();
  VMP_REQUIRE(root_rank < sc.size(), "reduce root rank out of range");
  const std::size_t n = max_local_len(cube, buf);
  for (int j = 0; j < sc.k(); ++j) {
    const int d = sc.dim_of_rank_bit(j);
    cube.exchange<T>(
        d,
        [&](proc_t q) -> std::span<const T> {
          const std::uint32_t rr = sc.rank(q) ^ root_rank;
          if ((rr & ((2u << j) - 1u)) == (1u << j))  // low bits 0, bit j set
            return buf.tile(q);
          return {};
        },
        [&](proc_t q, std::span<const T> in) {
          const std::span<T> mine = buf.tile(q);
          VMP_ASSERT(in.size() == mine.size(), "reduce length mismatch");
          kern::zip(mine, in, kern::op_fn(op));
        });
    cube.clock().charge_compute_step(n, n * (cube.procs() >> (j + 1)));
  }
}

// ---------------------------------------------------------------------------
// Parallel prefix (scan) across subcube ranks.
// ---------------------------------------------------------------------------

/// Exclusive scan in rank order: on exit, the member with rank r holds the
/// elementwise combination of the arrays of ranks 0..r-1 (identity for rank
/// 0).  Associative operators only; commutativity is NOT required.
template <class T, class Op>
void scan_exclusive(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    Op op) {
  if (sc.k() == 0) {
    for (proc_t q = 0; q < cube.procs(); ++q)
      kern::fill(buf.tile(q), op.identity());
    return;
  }
  VMP_TRACE(cube, "scan");
  const auto batch = cube.session();
  const std::size_t n = max_local_len(cube, buf);
  DistBuffer<T> prefix(cube);
  DistBuffer<T> total(cube);
  prefix.reserve_each(n);
  total.reserve_each(n);
  cube.each_proc([&](proc_t q) {
    prefix.assign(q, buf.len(q), op.identity());
    total.assign(q, buf.tile(q));
  });
  for (int j = 0; j < sc.k(); ++j) {
    const int d = sc.dim_of_rank_bit(j);
    cube.exchange<T>(
        d, [&](proc_t q) -> std::span<const T> { return total.tile(q); },
        [&](proc_t q, std::span<const T> in) {
          const bool iam_high = ((sc.rank(q) >> j) & 1u) != 0;
          const std::span<T> pre = prefix.tile(q);
          const std::span<T> tot = total.tile(q);
          VMP_ASSERT(in.size() == tot.size(), "scan length mismatch");
          for (std::size_t t = 0; t < tot.size(); ++t) {
            if (iam_high) {
              pre[t] = op.combine(in[t], pre[t]);
              tot[t] = op.combine(in[t], tot[t]);
            } else {
              tot[t] = op.combine(tot[t], in[t]);
            }
          }
        });
    cube.clock().charge_compute_step(2 * n, 2 * n * cube.procs());
  }
  buf.swap(prefix);  // O(1) arena exchange, no per-tile copies
}

/// Inclusive scan: rank r holds the combination of ranks 0..r.
template <class T, class Op>
void scan_inclusive(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                    Op op) {
  DistBuffer<T> orig(buf);
  scan_exclusive(cube, buf, sc, op);
  const std::size_t n = max_local_len(cube, buf);
  cube.compute(n, [&](proc_t q) {
    kern::zip(buf.tile(q), orig.tile(q), kern::op_fn(op));
  });
}

// ---------------------------------------------------------------------------
// Combining dimension-order routing (irregular redistribution).
// ---------------------------------------------------------------------------

/// One routed element: destination processor, a caller-defined tag (e.g. a
/// local slot), and the payload.
template <class T>
struct RouteItem {
  proc_t dst = 0;
  std::uint64_t tag = 0;
  T value{};
};

/// Deliver every item to its destination processor using dimension-ordered
/// routing with message combining: k rounds, and in each round a processor
/// sends ALL items whose destination differs in the current bit as one
/// message (one start-up).  This is the optimized, block-transfer
/// counterpart of the naive per-packet router in comm/router.hpp.
/// Destinations must lie in the source's subcube.
template <class T>
void route_within(Cube& cube, DistBuffer<RouteItem<T>>& items,
                  const SubcubeSet& sc) {
  VMP_TRACE(cube, "route_within");
  const auto batch = cube.session();
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (const RouteItem<T>& it : items.tile(q))
      VMP_REQUIRE(sc.subcube_id(it.dst) == sc.subcube_id(q),
                  "route_within destination escapes the subcube");
  DistBuffer<RouteItem<T>> outbox(cube);
  for (int j = 0; j < sc.k(); ++j) {
    const int d = sc.dim_of_rank_bit(j);
    const std::uint32_t bit = 1u << d;
    cube.each_proc([&](proc_t q) {
      const std::span<RouteItem<T>> mine = items.tile(q);
      outbox.clear(q);
      std::size_t w = 0;
      for (std::size_t t = 0; t < mine.size(); ++t) {
        if ((mine[t].dst & bit) != (q & bit)) {
          outbox.push_back(q, mine[t]);
        } else {
          mine[w++] = mine[t];
        }
      }
      items.resize(q, w);
    });
    // Delivery appends the partner's outbox: reserve the post-round
    // capacity on the host thread before the exchange.
    std::size_t cap = 0;
    for (proc_t q = 0; q < cube.procs(); ++q)
      cap = std::max(cap, items.len(q) + outbox.len(q ^ bit));
    items.reserve_each(cap);
    cube.exchange<RouteItem<T>>(
        d,
        [&](proc_t q) -> std::span<const RouteItem<T>> {
          return outbox.tile(q);
        },
        [&](proc_t q, std::span<const RouteItem<T>> in) {
          items.append(q, in);
        });
  }
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (const RouteItem<T>& it : items.tile(q))
      VMP_ASSERT(it.dst == q, "route_within left an item undelivered");
}

}  // namespace vmp
