/// \file shift.hpp
/// \brief Cyclic block shifts ("torus rotation") and the Gray-code payoff.
///
/// Shifting every block to the next processor along a ring is the basic
/// mesh/torus operation (alternating-direction methods, systolic phases).
/// With processors ordered by the binary-reflected Gray code, ring
/// neighbours are cube neighbours and the whole shift is ONE lockstep
/// round; with the natural binary ordering the partner can be lg p hops
/// away and the shift degrades to a dimension-order routing sweep.
/// bench_collectives measures the gap — the reason every mesh embedding in
/// the hypercube era was Gray-coded.
#pragma once

#include "comm/collectives.hpp"
#include "hypercube/gray.hpp"

namespace vmp {

enum class RingOrder {
  Gray,    ///< ring position r lives on processor gray_encode(r)
  Binary,  ///< ring position r lives on processor r
};

/// Processor holding ring position r of a 2^k ring.
[[nodiscard]] inline proc_t ring_proc(RingOrder order, std::uint32_t r) {
  return order == RingOrder::Gray ? gray_encode(r) : r;
}

/// Ring position held by processor q.
[[nodiscard]] inline std::uint32_t ring_pos(RingOrder order, proc_t q) {
  return order == RingOrder::Gray ? gray_decode(q) : q;
}

/// Cyclically shift each processor's whole local array to the processor
/// holding the next ring position (`by` = +1) or the previous one (-1),
/// within each subcube of `sc`.  Gray order: one neighbor_exchange round.
/// Binary order: a full dimension-order routing sweep.
template <class T>
void shift_blocks(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                  int by, RingOrder order) {
  VMP_REQUIRE(by == 1 || by == -1, "shift_blocks moves one position");
  const int k = sc.k();
  if (k == 0) return;
  const std::uint32_t P = sc.size();

  const auto dest_of = [&](proc_t q) -> proc_t {
    const std::uint32_t pos = ring_pos(order, sc.rank(q));
    const std::uint32_t next = (pos + P + static_cast<std::uint32_t>(by)) % P;
    return sc.with_rank(q, ring_proc(order, next));
  };

  if (order == RingOrder::Gray) {
    // Gray ring neighbours are cube neighbours: a single irregular round.
    // (The shift is a directed cycle; realize it as the composition of the
    // staged send/recv the engine provides — every processor sends to
    // dest_of(q) and receives from the inverse, which is NOT its exchange
    // partner, so stage manually through a scratch buffer.)
    DistBuffer<T> scratch(buf);
    // All partners are at Hamming distance 1, but the relation q -> dest is
    // a cycle, not an involution; charge one lockstep round explicitly and
    // deliver directly (equivalent cost: every processor drives one port).
    std::size_t max_elems = 0, total = 0, messages = 0;
    cube.each_proc([&](proc_t q) {
      const proc_t dst = dest_of(q);
      VMP_ASSERT(hamming_distance(q, dst) == 1,
                 "Gray ring neighbour must be a cube neighbour");
      const std::size_t n = scratch.len(q);
      if (n == 0) return;
      ++messages;
      total += n;
      max_elems = std::max(max_elems, n);
    });
    cube.each_proc(
        [&](proc_t q) { buf.assign(dest_of(q), scratch.tile(q)); });
    if (messages > 0) cube.clock().charge_comm_step(max_elems, messages, total);
    return;
  }

  // Binary order: ring neighbours may differ in many bits — route.  The
  // whole sweep (k routing rounds) runs inside one team activation.
  const auto batch = cube.session();
  DistBuffer<RouteItem<T>> items(cube);
  items.reserve_each(max_local_len(cube, buf));
  cube.each_proc([&](proc_t q) {
    const proc_t dst = dest_of(q);
    const std::span<const T> mine = buf.tile(q);
    for (std::size_t t = 0; t < mine.size(); ++t)
      items.push_back(q, RouteItem<T>{dst, t, mine[t]});
  });
  route_within(cube, items, sc);
  cube.each_proc([&](proc_t q) {
    buf.assign(q, items.len(q), T{});
    kern::scatter_tagged(items.tile(q), buf.tile(q));
  });
}

}  // namespace vmp
