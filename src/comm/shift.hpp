/// \file shift.hpp
/// \brief Cyclic block shifts ("torus rotation") at arbitrary strides, and
///        the Gray-code payoff.
///
/// Shifting every block `s` positions along a ring is the basic mesh/torus
/// operation (alternating-direction methods, systolic phases) and the whole
/// communication alphabet of the hyper-systolic schedules in
/// algorithms/matmul.cpp: a shift base {0, 1, …, K−1} of unit strides plus
/// K-stride streaming shifts, K ≈ √p.  With processors ordered by the
/// binary-reflected Gray code a unit shift is ONE lockstep round (ring
/// neighbours are cube neighbours); a stride-s shift is charged as the
/// store-and-forward dimension-order relay it would be on the wire — H
/// lockstep rounds, H = max Hamming distance of any (src, dest) pair, round
/// j carrying leg j of every in-flight message's dimension-order path, with
/// per-processor (and, on routed topologies, per-link) combining.  With the
/// natural binary ordering even a unit shift degrades to a full
/// dimension-order routing sweep.  bench_collectives measures both gaps —
/// the reason every mesh embedding in the hypercube era was Gray-coded.
#pragma once

#include <unordered_map>

#include "comm/collectives.hpp"
#include "hypercube/gray.hpp"

namespace vmp {

enum class RingOrder {
  Gray,    ///< ring position r lives on processor gray_encode(r)
  Binary,  ///< ring position r lives on processor r
};

/// Processor holding ring position r of a 2^k ring.
[[nodiscard]] inline proc_t ring_proc(RingOrder order, std::uint32_t r) {
  return order == RingOrder::Gray ? gray_encode(r) : r;
}

/// Ring position held by processor q.
[[nodiscard]] inline std::uint32_t ring_pos(RingOrder order, proc_t q) {
  return order == RingOrder::Gray ? gray_decode(q) : q;
}

namespace shift_detail {

/// `by` reduced to a forward stride in [0, P).
[[nodiscard]] inline std::uint32_t norm_step(int by, std::uint32_t P) {
  const int p = static_cast<int>(P);
  return static_cast<std::uint32_t>(((by % p) + p) % p);
}

/// The round-`j` leg of the dimension-order path q → dst (requires
/// hamming_distance(q, dst) > j): the cube node the message occupies after
/// j legs and the dimension it crosses next.  Legs cross the differing
/// bits in ascending dimension order, the store-and-forward discipline
/// every routing sweep in this codebase uses.
struct Leg {
  proc_t node;
  int dim;
};
[[nodiscard]] inline Leg leg_of(proc_t q, proc_t dst, int j) {
  std::uint32_t x = q ^ dst;
  std::uint32_t applied = 0;
  for (int t = 0; t < j; ++t) {
    const std::uint32_t low = x & (0u - x);
    applied |= low;
    x ^= low;
  }
  return Leg{static_cast<proc_t>(q ^ applied), std::countr_zero(x)};
}

/// Gray staging scratch layout inside one pooled slab lease: the P tile
/// lengths first (the lease is max_align-aligned, so size_t is fine), then
/// the tile payloads at a 64-byte-aligned offset with the buffer's own
/// stride.  One lease per shift — the bucket recycles through the
/// BufferPool, so a steady-state shift loop never touches the heap.
template <class T>
[[nodiscard]] inline std::size_t lease_bytes(proc_t procs,
                                             std::size_t stride) {
  return std::size_t{procs} * sizeof(std::size_t) + 64 +
         std::size_t{procs} * stride * sizeof(T);
}
template <class T>
[[nodiscard]] inline T* lease_data(const BufferPool::Block& b, proc_t procs) {
  auto addr = reinterpret_cast<std::uintptr_t>(b.data()) +
              std::size_t{procs} * sizeof(std::size_t);
  addr = (addr + 63) & ~std::uintptr_t{63};
  return reinterpret_cast<T*>(addr);
}

}  // namespace shift_detail

/// Number of charged lockstep rounds of a Gray-order shift by `by` within
/// subcubes of `sc`: the maximum Hamming distance between any processor
/// and its destination.  1 for unit strides (the Gray payoff); at most
/// sc.k() for any stride.
[[nodiscard]] inline int shift_rounds(const SubcubeSet& sc, int by) {
  const std::uint32_t P = sc.size();
  if (sc.k() == 0) return 0;
  const std::uint32_t step = shift_detail::norm_step(by, P);
  if (step == 0) return 0;
  int rounds = 0;
  for (std::uint32_t r = 0; r < P; ++r)
    rounds = std::max(rounds, hamming_distance(gray_encode(r),
                                               gray_encode((r + step) % P)));
  return rounds;
}

/// Cyclically shift each processor's whole local array `by` ring positions
/// (negative = backward) within each subcube of `sc`.  Gray order: staged
/// host-side through one pooled slab lease and charged as H
/// store-and-forward dimension-order rounds (H = 1 for unit strides).
/// Binary order: a full dimension-order combining-router sweep.
template <class T>
void shift_blocks(Cube& cube, DistBuffer<T>& buf, const SubcubeSet& sc,
                  int by, RingOrder order) {
  const int k = sc.k();
  if (k == 0) return;
  const std::uint32_t P = sc.size();
  const std::uint32_t step = shift_detail::norm_step(by, P);
  if (step == 0) return;
  VMP_TRACE(cube, "shift");

  const auto dest_of = [&](proc_t q) -> proc_t {
    const std::uint32_t pos = ring_pos(order, sc.rank(q));
    return sc.with_rank(q, ring_proc(order, (pos + step) % P));
  };

  if (order == RingOrder::Gray) {
    // The shift is a directed cycle, not an involution, so it fits neither
    // exchange (one shared dimension) nor neighbor_exchange (symmetric
    // partners): stage every tile and its length through one pooled slab
    // lease, deliver directly, and charge the rounds explicitly via the
    // machine's irregular-round accumulator.
    const proc_t procs = cube.procs();
    const std::size_t stride = buf.stride();
    const BufferPool::Block lease = cube.buffers().acquire_slab(
        shift_detail::lease_bytes<T>(procs, stride));
    auto* lens = static_cast<std::size_t*>(lease.data());
    T* data = shift_detail::lease_data<T>(lease, procs);
    cube.each_proc([&](proc_t q) {
      const std::span<const T> mine = buf.tile(q);
      lens[q] = mine.size();
      if (!mine.empty())
        kern::copy(mine, std::span<T>(data + std::size_t{q} * stride,
                                      mine.size()));
    });

    // Store-and-forward rounds: round j advances leg j of every message
    // still in flight; a unit Gray stride is exactly one round with the
    // historical irregular-round charge.
    int rounds = 0;
    cube.each_proc([&](proc_t q) {
      if (lens[q] != 0)
        rounds = std::max(rounds, hamming_distance(q, dest_of(q)));
    });
    for (int j = 0; j < rounds; ++j) {
      cube.irr_begin();
      cube.each_proc([&](proc_t q) {
        if (lens[q] == 0) return;
        const proc_t dst = dest_of(q);
        if (hamming_distance(q, dst) <= j) return;
        const shift_detail::Leg leg = shift_detail::leg_of(q, dst, j);
        cube.irr_add(leg.dim, leg.node, lens[q]);
      });
      cube.irr_charge();
    }
    if (MetricsRegistry& mx = cube.metrics(); mx.enabled()) {
      mx.counter("shift.calls", MetricClass::Sim).add(1);
      mx.counter("shift.rounds", MetricClass::Sim)
          .add(static_cast<std::uint64_t>(rounds));
    }

    cube.each_proc([&](proc_t q) {
      buf.assign(dest_of(q), std::span<const T>(
                                 data + std::size_t{q} * stride, lens[q]));
    });
    return;
  }

  // Binary order: ring neighbours may differ in many bits — route.  The
  // whole sweep (k routing rounds) runs inside one team activation.
  const auto batch = cube.session();
  DistBuffer<RouteItem<T>> items(cube);
  items.reserve_each(max_local_len(cube, buf));
  cube.each_proc([&](proc_t q) {
    const proc_t dst = dest_of(q);
    const std::span<const T> mine = buf.tile(q);
    for (std::size_t t = 0; t < mine.size(); ++t)
      items.push_back(q, RouteItem<T>{dst, t, mine[t]});
  });
  route_within(cube, items, sc);
  cube.each_proc([&](proc_t q) {
    buf.assign(q, items.len(q), T{});
    kern::scatter_tagged(items.tile(q), buf.tile(q));
  });
}

/// Simulated cost of one Gray-order shift_blocks call moving `elems`
/// elements per processor, priced with the cube's CostParams and physical
/// topology but WITHOUT advancing the clock: the same store-and-forward
/// rounds the real call charges — `τ + max·t_c` of the busiest processor
/// on the unit-hop preset, start-up dilation plus the most loaded directed
/// link on routed presets.  This is the shift term of the matmul_auto
/// selector's backend models.
[[nodiscard]] inline double shift_cost_model(Cube& cube, const SubcubeSet& sc,
                                             int by, std::size_t elems) {
  const int k = sc.k();
  if (k == 0 || elems == 0) return 0.0;
  const std::uint32_t P = sc.size();
  const std::uint32_t step = shift_detail::norm_step(by, P);
  if (step == 0) return 0.0;
  const CostParams& cp = cube.costs();
  const bool routed = !cube.unit_hop();
  const Topology& topo = cube.topology();
  const auto dest_of = [&](proc_t q) -> proc_t {
    const std::uint32_t pos = ring_pos(RingOrder::Gray, sc.rank(q));
    return sc.with_rank(q, ring_proc(RingOrder::Gray, (pos + step) % P));
  };
  int rounds = 0;
  for (proc_t q = 0; q < cube.procs(); ++q)
    rounds = std::max(rounds, hamming_distance(q, dest_of(q)));
  double cost = 0.0;
  std::vector<std::size_t> node_load(cube.procs(), 0);
  std::unordered_map<std::uint64_t, double> link_load;
  std::vector<Hop> hops;
  for (int j = 0; j < rounds; ++j) {
    std::fill(node_load.begin(), node_load.end(), std::size_t{0});
    link_load.clear();
    double startup_units = 0.0;
    std::size_t max_node = 0;
    bool any = false;
    for (proc_t q = 0; q < cube.procs(); ++q) {
      const proc_t dst = dest_of(q);
      if (hamming_distance(q, dst) <= j) continue;
      any = true;
      const shift_detail::Leg leg = shift_detail::leg_of(q, dst, j);
      node_load[leg.node] += elems;
      max_node = std::max(max_node, node_load[leg.node]);
      if (routed) {
        hops.clear();
        topo.route(leg.node, leg.node ^ (proc_t{1} << leg.dim), hops);
        double su = 0.0;
        for (const Hop& h : hops) {
          const AxisCharge c = topo.axis_charge(h.axis);
          su += c.startup_mult;
          const std::uint64_t lid =
              2 * topo.link_id(h.from, h.port) + (h.from < h.to ? 0 : 1);
          link_load[lid] += static_cast<double>(elems) * c.per_elem_mult;
        }
        startup_units = std::max(startup_units, su);
      }
    }
    if (!any) continue;
    if (!routed) {
      cost += cp.startup_us + static_cast<double>(max_node) * cp.per_elem_us;
    } else {
      double worst = 0.0;
      for (const auto& [lid, load] : link_load) worst = std::max(worst, load);
      cost += cp.startup_us * startup_units + cp.per_elem_us * worst;
    }
  }
  return cost;
}

}  // namespace vmp
