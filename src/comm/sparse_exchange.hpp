/// \file sparse_exchange.hpp
/// \brief Typed exchange of CSR entries between embeddings.
///
/// Changing a sparse matrix's embedding (Consecutive ↔ Cyclic, or a grid
/// reshape) moves each stored entry to the processor the target embedding
/// assigns it.  An entry travels as a (global row, global col, value)
/// triple through the combining dimension-order router — destinations are
/// data-dependent, so the general router is the right machine, and
/// combining keeps it at k rounds / one start-up per neighbor exactly like
/// the dense realign paths built on route_within.  See docs/sparse.md.
#pragma once

#include <cstdint>

#include "comm/collectives.hpp"
#include "hypercube/machine.hpp"
#include "obs/trace.hpp"

namespace vmp {

/// One stored entry in global coordinates, in flight between embeddings.
template <class T>
struct CsrTriple {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  T val{};
};

/// Deliver every triple to its destination processor (set in the wrapping
/// RouteItem).  Senders fill `items` per source tile; on return each tile
/// holds exactly the triples destined for it, in router arrival order —
/// receivers re-sort into CSR order, which is what reembed() does.
template <class T>
void exchange_triples(Cube& cube, DistBuffer<RouteItem<CsrTriple<T>>>& items,
                      const SubcubeSet& sc) {
  VMP_TRACE(cube, "sparse_exchange");
  route_within(cube, items, sc);
}

}  // namespace vmp
