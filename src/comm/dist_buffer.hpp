/// \file dist_buffer.hpp
/// \brief Per-processor local storage: the only data container collectives
///        and primitives touch.  Each processor owns one resizable array;
///        nothing is globally addressable — data crosses processor
///        boundaries only through Cube::exchange (and is charged for it).
#pragma once

#include <span>
#include <vector>

#include "hypercube/check.hpp"
#include "hypercube/machine.hpp"

namespace vmp {

template <class T>
class DistBuffer {
 public:
  DistBuffer() = default;

  /// One (initially empty) local array per processor.
  explicit DistBuffer(const Cube& cube) : local_(cube.procs()) {}

  /// One local array of `elems_each` value-initialized elements per proc.
  DistBuffer(const Cube& cube, std::size_t elems_each)
      : local_(cube.procs(), std::vector<T>(elems_each)) {}

  [[nodiscard]] proc_t procs() const {
    return static_cast<proc_t>(local_.size());
  }

  /// Resizable access to processor q's local array.
  [[nodiscard]] std::vector<T>& vec(proc_t q) {
    VMP_REQUIRE(q < local_.size(), "processor id out of range");
    return local_[q];
  }
  [[nodiscard]] const std::vector<T>& vec(proc_t q) const {
    VMP_REQUIRE(q < local_.size(), "processor id out of range");
    return local_[q];
  }

  /// Span view of processor q's local array.
  [[nodiscard]] std::span<T> on(proc_t q) {
    return std::span<T>(vec(q));
  }
  [[nodiscard]] std::span<const T> on(proc_t q) const {
    return std::span<const T>(vec(q));
  }

 private:
  std::vector<std::vector<T>> local_;
};

}  // namespace vmp
