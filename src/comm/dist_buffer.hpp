/// \file dist_buffer.hpp
/// \brief Per-processor local storage: the only data container collectives
///        and primitives touch.  Nothing is globally addressable — data
///        crosses processor boundaries only through Cube::exchange (and is
///        charged for it).
///
/// Storage is one contiguous ARENA per distributed object: a single
/// allocation holding all P tiles at computed offsets, leased from the
/// Cube's BufferPool via acquire_slab so that temporaries inside a fused
/// pipeline recycle the same power-of-two blocks and are allocation-free in
/// steady state.  Callers see processor q's tile only as a std::span via
/// tile(q) / on(q).
///
/// Layout: tile q starts at base + q · stride where stride (in elements) is
/// rounded so every tile begins on a 64-byte boundary; len(q) ≤ stride is
/// the live length.  Tiles never overlap and the per-tile spans jointly
/// cover disjoint arena ranges, so concurrent delivery callbacks (one per
/// destination processor, see hypercube/machine.hpp) may mutate different
/// tiles' ELEMENTS and LENGTHS freely — as long as no tile outgrows the
/// stride.  Growing the stride reallocates the arena and is therefore only
/// legal on the host thread (guarded by WorkerTeam::in_step); hot paths
/// pre-reserve with reserve_each before entering compute/exchange.
///
/// The simulated machine is oblivious to all of this: charges, SimStats and
/// event traces depend only on element counts and exchange shapes, so the
/// slab changes host wall-clock and allocation counters, nothing else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/kernels.hpp"
#include "hypercube/check.hpp"
#include "hypercube/machine.hpp"

namespace vmp {

template <class T>
class DistBuffer {
  // The arena moves tiles with memmove on growth and hands out spans over
  // raw pool bytes, so elements must be trivially copyable and must not
  // demand more alignment than the 64-byte tile boundary provides.
  static_assert(std::is_trivially_copyable_v<T>,
                "DistBuffer elements live in a raw slab arena");
  static_assert(alignof(T) <= 64, "tile alignment is 64 bytes");

 public:
  DistBuffer() = default;

  /// One (initially empty) tile per processor; no arena until first growth.
  explicit DistBuffer(Cube& cube)
      : cube_(&cube), procs_(cube.procs()), len_(cube.procs(), 0) {}

  /// One tile of `elems_each` value-initialized elements per processor.
  DistBuffer(Cube& cube, std::size_t elems_each) : DistBuffer(cube) {
    reserve_each(elems_each);
    for (proc_t q = 0; q < procs_; ++q) assign(q, elems_each, T{});
  }

  DistBuffer(const DistBuffer& other)
      : cube_(other.cube_),
        procs_(other.procs_),
        stride_(other.stride_),
        len_(other.len_) {
    if (stride_ > 0) {
      block_ = cube_->buffers().acquire_slab(arena_bytes(procs_, stride_));
      base_ = aligned_base(block_);
      for (proc_t q = 0; q < procs_; ++q)
        kern::copy(other.tile(q), std::span<T>(tile_ptr(q), len_[q]));
    }
  }
  DistBuffer& operator=(const DistBuffer& other) {
    if (this != &other) {
      DistBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }
  DistBuffer(DistBuffer&& other) noexcept { swap(other); }
  DistBuffer& operator=(DistBuffer&& other) noexcept {
    if (this != &other) {
      DistBuffer tmp(std::move(other));
      swap(tmp);
    }
    return *this;
  }
  ~DistBuffer() = default;

  /// Exchange arenas wholesale (O(1); no element copies).
  void swap(DistBuffer& other) noexcept {
    std::swap(cube_, other.cube_);
    std::swap(procs_, other.procs_);
    std::swap(stride_, other.stride_);
    len_.swap(other.len_);
    std::swap(block_, other.block_);
    std::swap(base_, other.base_);
  }

  [[nodiscard]] proc_t procs() const { return procs_; }

  /// Live element count of processor q's tile.
  [[nodiscard]] std::size_t len(proc_t q) const {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    return len_[q];
  }

  /// Per-tile capacity in elements (uniform across processors).
  [[nodiscard]] std::size_t stride() const { return stride_; }

  /// Span view of processor q's tile — the only element access there is.
  [[nodiscard]] std::span<T> tile(proc_t q) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    return {tile_ptr(q), len_[q]};
  }
  [[nodiscard]] std::span<const T> tile(proc_t q) const {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    return {tile_ptr(q), len_[q]};
  }
  [[nodiscard]] std::span<T> on(proc_t q) { return tile(q); }
  [[nodiscard]] std::span<const T> on(proc_t q) const { return tile(q); }

  /// Host-side copy of tile q as a std::vector (tests and debugging only).
  [[nodiscard]] std::vector<T> host_vec(proc_t q) const {
    const std::span<const T> t = tile(q);
    return std::vector<T>(t.begin(), t.end());
  }

  /// Grow every tile's capacity to at least `elems` (lengths unchanged).
  /// Host-thread only; call before compute/exchange whose callbacks append.
  void reserve_each(std::size_t elems) { ensure_stride(elems); }

  /// Set tile q's length to n; new elements are value-initialized (or
  /// copies of `fill_v`).  Shrinking and growing within the stride only
  /// touch this tile, so delivery callbacks may call it; growth past the
  /// stride reallocates and must happen on the host thread.
  void resize(proc_t q, std::size_t n) { resize(q, n, T{}); }
  void resize(proc_t q, std::size_t n, const T& fill_v) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    ensure_stride(n);
    if (n > len_[q])
      kern::fill(std::span<T>(tile_ptr(q) + len_[q], n - len_[q]), fill_v);
    len_[q] = n;
  }

  /// tile(q) = n copies of v.
  void assign(proc_t q, std::size_t n, const T& v) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    ensure_stride(n);
    kern::fill(std::span<T>(tile_ptr(q), n), v);
    len_[q] = n;
  }

  /// tile(q) = src (overlap with this arena is fine; memmove semantics).
  void assign(proc_t q, std::span<const T> src) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    ensure_stride(src.size());
    kern::copy(src, std::span<T>(tile_ptr(q), src.size()));
    len_[q] = src.size();
  }

  void clear(proc_t q) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    len_[q] = 0;
  }

  void push_back(proc_t q, const T& v) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    ensure_stride(len_[q] + 1);
    tile_ptr(q)[len_[q]] = v;
    ++len_[q];
  }

  /// Append src to the end of tile q.
  void append(proc_t q, std::span<const T> src) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    ensure_stride(len_[q] + src.size());
    kern::copy(src, std::span<T>(tile_ptr(q) + len_[q], src.size()));
    len_[q] += src.size();
  }

  /// Insert src before the existing elements of tile q (shifts them up).
  void prepend(proc_t q, std::span<const T> src) {
    VMP_REQUIRE(q < procs_, "processor id out of range");
    ensure_stride(len_[q] + src.size());
    T* t = tile_ptr(q);
    kern::copy(std::span<const T>(t, len_[q]),
               std::span<T>(t + src.size(), len_[q]));
    kern::copy(src, std::span<T>(t, src.size()));
    len_[q] += src.size();
  }

 private:
  static constexpr std::size_t kAlign = 64;

  /// Smallest stride quantum keeping every tile 64-byte aligned.
  [[nodiscard]] static constexpr std::size_t align_elems() {
    return kAlign / std::gcd(sizeof(T), kAlign);
  }
  [[nodiscard]] static constexpr std::size_t round_stride(std::size_t n) {
    const std::size_t a = align_elems();
    return (n + a - 1) / a * a;
  }
  [[nodiscard]] static std::size_t arena_bytes(proc_t procs,
                                               std::size_t stride) {
    return static_cast<std::size_t>(procs) * stride * sizeof(T) + kAlign;
  }
  [[nodiscard]] static T* aligned_base(const BufferPool::Block& b) {
    if (b.data() == nullptr) return nullptr;
    auto addr = reinterpret_cast<std::uintptr_t>(b.data());
    addr = (addr + kAlign - 1) & ~std::uintptr_t{kAlign - 1};
    return reinterpret_cast<T*>(addr);
  }

  [[nodiscard]] T* tile_ptr(proc_t q) {
    return base_ + std::size_t{q} * stride_;
  }
  [[nodiscard]] const T* tile_ptr(proc_t q) const {
    return base_ + std::size_t{q} * stride_;
  }

  /// Reallocate the arena if any tile needs capacity `min_elems`.  Doubles
  /// the stride geometrically so repeated push_backs stay amortized O(1);
  /// the old block's RAII release feeds the pool for the next object.
  void ensure_stride(std::size_t min_elems) {
    if (min_elems <= stride_) return;
    VMP_REQUIRE(cube_ != nullptr, "DistBuffer not bound to a cube");
    VMP_REQUIRE(!cube_->team().in_step(),
                "slab growth is host-thread only: reserve_each before "
                "entering compute/exchange");
    const std::size_t want =
        round_stride(min_elems > 2 * stride_ ? min_elems : 2 * stride_);
    BufferPool::Block nb =
        cube_->buffers().acquire_slab(arena_bytes(procs_, want));
    T* nbase = aligned_base(nb);
    for (proc_t q = 0; q < procs_; ++q)
      kern::copy(std::span<const T>(tile_ptr(q), len_[q]),
                 std::span<T>(nbase + std::size_t{q} * want, len_[q]));
    block_ = std::move(nb);
    base_ = nbase;
    stride_ = want;
  }

  Cube* cube_ = nullptr;
  proc_t procs_ = 0;
  std::size_t stride_ = 0;  ///< per-tile capacity, in elements
  std::vector<std::size_t> len_;
  BufferPool::Block block_;
  T* base_ = nullptr;
};

}  // namespace vmp
