/// \file router.hpp
/// \brief The naive general-purpose packet router.
///
/// This models how a "naive implementation" of the primitives used the
/// Connection Machine's general router: one packet per element, each packet
/// paying the full router overhead on every hop, with one-port processors
/// forwarding one packet per cycle (store-and-forward, dimension-ordered
/// e-cube routing).  No message combining, no amortized start-ups — exactly
/// the costs the paper's optimized primitives eliminate, and the source of
/// the reported order-of-magnitude speedup.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "hypercube/machine.hpp"

namespace vmp {

/// One element in flight through the general router.
struct Packet {
  proc_t dst = 0;
  std::uint64_t tag = 0;  ///< caller-defined routing tag (e.g. local slot)
  double value = 0.0;
};

/// Store-and-forward e-cube router simulation.  Deterministic: processors
/// are serviced in id order, queues are FIFO.
class NaiveRouter {
 public:
  explicit NaiveRouter(Cube& cube) : cube_(&cube) {}

  /// Inject `packets[q]` at processor q and run delivery cycles until every
  /// packet has reached its destination.  `deliver(dst, tag, value)` fires
  /// once per packet, in deterministic order.  Each cycle advances the
  /// simulated clock by one router start-up plus one element time.
  /// Returns the number of cycles taken.
  std::uint64_t run(std::vector<std::vector<Packet>> packets,
                    const std::function<void(proc_t, std::uint64_t, double)>&
                        deliver);

 private:
  Cube* cube_;
};

}  // namespace vmp
