/// \file subcube.hpp
/// \brief Addressing of subcubes: a dimension mask with k bits set carves
///        the cube into 2^(d-k) disjoint 2^k-processor subcubes.  Every
///        collective operates concurrently and independently in all of
///        them — this is how "reduce along the rows of the processor grid"
///        is expressed.
#pragma once

#include <cstdint>

#include "hypercube/bits.hpp"
#include "hypercube/check.hpp"
#include "hypercube/machine.hpp"

namespace vmp {

/// A family of congruent subcubes, described by the set of cube dimensions
/// (`mask`) they span.
class SubcubeSet {
 public:
  /// Construct from a dimension mask; `mask == 0` describes the trivial
  /// one-processor subcubes (collectives become no-ops).
  explicit SubcubeSet(std::uint32_t mask) : mask_(mask), k_(popcount(mask)) {}

  /// Mask spanning dimensions [lo, lo+count).
  [[nodiscard]] static SubcubeSet contiguous(int lo, int count) {
    VMP_REQUIRE(lo >= 0 && count >= 0 && lo + count < 32, "bad dim range");
    const std::uint32_t ones =
        count == 0 ? 0u : ((count >= 32 ? 0u : (1u << count)) - 1u);
    return SubcubeSet(ones << lo);
  }

  [[nodiscard]] std::uint32_t mask() const { return mask_; }
  /// Subcube dimension (bits in the mask).
  [[nodiscard]] int k() const { return k_; }
  /// Processors per subcube.
  [[nodiscard]] std::uint32_t size() const { return 1u << k_; }

  /// Rank of processor q within its subcube: its mask bits, compacted.
  [[nodiscard]] std::uint32_t rank(proc_t q) const {
    return extract_bits(q, mask_);
  }

  /// The processor in q's subcube holding rank r.
  [[nodiscard]] proc_t with_rank(proc_t q, std::uint32_t r) const {
    VMP_REQUIRE(r < size(), "rank out of subcube range");
    return (q & ~mask_) | deposit_bits(r, mask_);
  }

  /// Cube dimension carrying rank bit i (i = 0 is the least significant).
  [[nodiscard]] int dim_of_rank_bit(int i) const {
    return nth_set_bit(mask_, i);
  }

  /// Identifier of q's subcube (its non-mask bits) — equal for exactly the
  /// processors that share a subcube.
  [[nodiscard]] std::uint32_t subcube_id(proc_t q) const { return q & ~mask_; }

 private:
  std::uint32_t mask_;
  int k_;
};

}  // namespace vmp
