#include "comm/router.hpp"

#include <bit>
#include <string>

#include "hypercube/bits.hpp"
#include "hypercube/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vmp {

namespace {

/// A queued packet plus its recovery state: a forced next hop set when the
/// packet is detouring around a dead link.
struct RoutedPacket {
  Packet pk;
  int force_dim = -1;
};

}  // namespace

std::uint64_t NaiveRouter::run(
    std::vector<std::vector<Packet>> packets,
    const std::function<void(proc_t, std::uint64_t, double)>& deliver) {
  Cube& cube = *cube_;
  VMP_TRACE(cube, "naive_router");
  const proc_t p = cube.procs();
  VMP_REQUIRE(packets.size() == p, "one injection queue per processor");

  std::vector<std::deque<RoutedPacket>> queue(p);
  std::size_t in_flight = 0;
  for (proc_t q = 0; q < p; ++q) {
    for (const Packet& pk : packets[q]) {
      VMP_REQUIRE(pk.dst < p, "packet destination out of range");
      if (pk.dst == q) {
        deliver(q, pk.tag, pk.value);  // already home: no router traffic
      } else {
        queue[q].push_back(RoutedPacket{pk, -1});
        ++in_flight;
      }
    }
  }
  cube.clock().note_router_packets(in_flight);

  // Engine metrics (off by default).  Queue depth and per-dimension hop
  // traffic are pure functions of the deterministic routing schedule, so
  // everything here is Sim-class.  Tallies accumulate in locals and land
  // in the registry once per run — nothing on the per-cycle path but the
  // depth scan, which only runs with metrics on.
  MetricsRegistry* mreg = cube.metrics().enabled() ? &cube.metrics() : nullptr;
  MetricsRegistry::Histogram* m_qdepth =
      mreg ? &mreg->histogram("router.queue_depth", MetricClass::Sim)
           : nullptr;
  std::vector<std::uint64_t> dim_hops(
      mreg ? static_cast<std::size_t>(cube.dim()) : 0, 0);
  const std::size_t injected = in_flight;

  FaultInjector* fi = cube.faults();
  std::uint64_t cycles = 0;
  std::uint64_t stalled_cycles = 0;
  std::vector<std::pair<proc_t, RoutedPacket>> moves;
  while (in_flight > 0) {
    // One lockstep cycle: every processor forwards the head of its queue
    // one hop along the lowest differing address bit (e-cube routing).
    const std::uint64_t round = fi ? fi->begin_round() : 0;
    if (m_qdepth != nullptr) {
      std::size_t qmax = 0;
      for (proc_t q = 0; q < p; ++q)
        if (queue[q].size() > qmax) qmax = queue[q].size();
      m_qdepth->record(qmax);
    }
    moves.clear();
    for (proc_t q = 0; q < p; ++q) {
      if (queue[q].empty()) continue;
      RoutedPacket rp = queue[q].front();
      queue[q].pop_front();
      int hop;
      if (!fi) {
        hop = std::countr_zero(rp.pk.dst ^ q);
      } else {
        if (fi->node_dead(round, q) || fi->node_dead(round, rp.pk.dst))
          throw FaultError("naive router: packet endpoint is a dead node");
        if (rp.force_dim >= 0) {
          // Mid-detour: cross the dimension the dead link blocked.  The
          // force is kept until the hop actually succeeds — a transient
          // drop below requeues the packet with the force intact.
          hop = rp.force_dim;
          if (fi->link_dead(round, q, hop))
            throw FaultError(
                "naive router: detour crosses another dead link at "
                "processor " +
                std::to_string(q));
        } else {
          // Lowest differing bit whose link is live — any differing bit is
          // still a shortest-path hop, so dodging dead links is free.
          const std::uint32_t diff = rp.pk.dst ^ q;
          hop = -1;
          for (int d = 0; d < cube.dim(); ++d) {
            if (((diff >> d) & 1u) != 0 && !fi->link_dead(round, q, d)) {
              hop = d;
              break;
            }
          }
          if (hop < 0) {
            // Every remaining shortest-path link is dead (typically the
            // last hop): detour one live edge sideways, then force the
            // packet across the blocked dimension from the detour node.
            const int blocked = std::countr_zero(diff);
            for (int d = 0; d < cube.dim(); ++d) {
              if (((diff >> d) & 1u) != 0) continue;
              if (fi->link_dead(round, q, d)) continue;
              if (fi->node_dead(round, cube_neighbor(q, d))) continue;
              hop = d;
              break;
            }
            if (hop < 0)
              throw FaultError(
                  "naive router: no live link out of processor " +
                  std::to_string(q));
            rp.force_dim = blocked;
            cube.clock().note_fault_reroute();
          }
        }
        const FaultOutcome oc = fi->decide(round, 0, q, hop);
        if (oc.drop || oc.corrupt) {
          // Lost in transit or rejected by the hop checksum: the packet
          // stays queued and retransmits next cycle (the cycle is still
          // charged below — retries are never free).
          if (oc.corrupt) cube.clock().note_fault_chksum_fail();
          cube.clock().note_fault_retries(1);
          queue[q].push_back(rp);
          continue;
        }
        if (rp.force_dim == hop) rp.force_dim = -1;  // forced hop succeeded
      }
      if (mreg != nullptr) ++dim_hops[static_cast<std::size_t>(hop)];
      moves.emplace_back(cube_neighbor(q, hop), rp);
    }
    bool delivered_any = false;
    for (const auto& [where, rp] : moves) {
      if (rp.pk.dst == where && rp.force_dim < 0) {
        deliver(where, rp.pk.tag, rp.pk.value);
        --in_flight;
        delivered_any = true;
      } else {
        queue[where].push_back(rp);
      }
    }
    cube.clock().charge_router_cycle(moves.size());
    ++cycles;
    stalled_cycles = delivered_any ? 0 : stalled_cycles + 1;
    if (fi && stalled_cycles >
                  static_cast<std::uint64_t>(fi->policy().max_retries +
                                             cube.dim() + 2))
      throw FaultError(
          "naive router: fault recovery budget exhausted — no packet "
          "delivered for " +
          std::to_string(stalled_cycles) + " cycles");
  }
  if (mreg != nullptr) {
    mreg->counter("router.packets", MetricClass::Sim).add(injected);
    mreg->counter("router.cycles", MetricClass::Sim).add(cycles);
    for (std::size_t d = 0; d < dim_hops.size(); ++d)
      mreg->counter("router.dim" + std::to_string(d) + ".hops",
                    MetricClass::Sim)
          .add(dim_hops[d]);
  }
  return cycles;
}

}  // namespace vmp
