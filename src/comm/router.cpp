#include "comm/router.hpp"

#include <bit>

#include "hypercube/bits.hpp"
#include "hypercube/check.hpp"
#include "obs/trace.hpp"

namespace vmp {

std::uint64_t NaiveRouter::run(
    std::vector<std::vector<Packet>> packets,
    const std::function<void(proc_t, std::uint64_t, double)>& deliver) {
  Cube& cube = *cube_;
  VMP_TRACE(cube, "naive_router");
  const proc_t p = cube.procs();
  VMP_REQUIRE(packets.size() == p, "one injection queue per processor");

  std::vector<std::deque<Packet>> queue(p);
  std::size_t in_flight = 0;
  for (proc_t q = 0; q < p; ++q) {
    for (const Packet& pk : packets[q]) {
      VMP_REQUIRE(pk.dst < p, "packet destination out of range");
      if (pk.dst == q) {
        deliver(q, pk.tag, pk.value);  // already home: no router traffic
      } else {
        queue[q].push_back(pk);
        ++in_flight;
      }
    }
  }
  cube.clock().note_router_packets(in_flight);

  std::uint64_t cycles = 0;
  std::vector<std::pair<proc_t, Packet>> moves;
  while (in_flight > 0) {
    // One lockstep cycle: every processor forwards the head of its queue
    // one hop along the lowest differing address bit (e-cube routing).
    moves.clear();
    for (proc_t q = 0; q < p; ++q) {
      if (queue[q].empty()) continue;
      Packet pk = queue[q].front();
      queue[q].pop_front();
      const int hop = std::countr_zero(pk.dst ^ q);
      moves.emplace_back(cube_neighbor(q, hop), pk);
    }
    for (const auto& [where, pk] : moves) {
      if (pk.dst == where) {
        deliver(where, pk.tag, pk.value);
        --in_flight;
      } else {
        queue[where].push_back(pk);
      }
    }
    cube.clock().charge_router_cycle(moves.size());
    ++cycles;
  }
  return cycles;
}

}  // namespace vmp
