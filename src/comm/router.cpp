#include "comm/router.hpp"

#include <string>

#include "hypercube/check.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vmp {

namespace {

/// A queued packet plus its recovery state: a forced next port set when
/// the packet is detouring around a dead link.
struct RoutedPacket {
  Packet pk;
  int force_port = -1;
};

}  // namespace

std::uint64_t NaiveRouter::run(
    std::vector<std::vector<Packet>> packets,
    const std::function<void(proc_t, std::uint64_t, double)>& deliver) {
  Cube& cube = *cube_;
  const Topology& topo = cube.topology();
  VMP_TRACE(cube, "naive_router");
  const proc_t p = cube.procs();
  VMP_REQUIRE(packets.size() == p, "one injection queue per processor");

  std::vector<std::deque<RoutedPacket>> queue(p);
  std::size_t in_flight = 0;
  for (proc_t q = 0; q < p; ++q) {
    for (const Packet& pk : packets[q]) {
      VMP_REQUIRE(pk.dst < p, "packet destination out of range");
      if (pk.dst == q) {
        deliver(q, pk.tag, pk.value);  // already home: no router traffic
      } else {
        queue[q].push_back(RoutedPacket{pk, -1});
        ++in_flight;
      }
    }
  }
  cube.clock().note_router_packets(in_flight);

  // Engine metrics (off by default).  Queue depth and per-axis hop
  // traffic are pure functions of the deterministic routing schedule, so
  // everything here is Sim-class.  Tallies accumulate in locals and land
  // in the registry once per run — nothing on the per-cycle path but the
  // depth scan, which only runs with metrics on.
  MetricsRegistry* mreg = cube.metrics().enabled() ? &cube.metrics() : nullptr;
  MetricsRegistry::Histogram* m_qdepth =
      mreg ? &mreg->histogram("router.queue_depth", MetricClass::Sim)
           : nullptr;
  std::vector<std::uint64_t> axis_hops(
      mreg ? static_cast<std::size_t>(topo.axis_count()) : 0, 0);
  const std::size_t injected = in_flight;

  FaultInjector* fi = cube.faults();
  std::uint64_t cycles = 0;
  std::uint64_t stalled_cycles = 0;
  std::vector<std::pair<proc_t, RoutedPacket>> moves;
  std::vector<int> ports;
  while (in_flight > 0) {
    // One lockstep cycle: every processor forwards the head of its queue
    // one hop along the topology's canonical minimal route (on the cube:
    // the lowest differing address bit — e-cube routing).
    const std::uint64_t round = fi ? fi->begin_round() : 0;
    if (m_qdepth != nullptr) {
      std::size_t qmax = 0;
      for (proc_t q = 0; q < p; ++q)
        if (queue[q].size() > qmax) qmax = queue[q].size();
      m_qdepth->record(qmax);
    }
    moves.clear();
    for (proc_t q = 0; q < p; ++q) {
      if (queue[q].empty()) continue;
      RoutedPacket rp = queue[q].front();
      queue[q].pop_front();
      Hop hop;
      if (!fi) {
        hop = topo.first_hop(q, rp.pk.dst);
      } else {
        if (fi->node_dead(round, q) || fi->node_dead(round, rp.pk.dst))
          throw FaultError("naive router: packet endpoint is a dead node");
        const auto link_dead = [&](proc_t node, int port) {
          return fi->link_dead(round, node, port);
        };
        const auto node_dead = [&](proc_t node) {
          return fi->node_dead(round, node);
        };
        if (rp.force_port >= 0) {
          // Mid-detour: cross the port the dead link blocked.  The force
          // is kept until the hop actually succeeds — a transient drop
          // below requeues the packet with the force intact.
          if (link_dead(q, rp.force_port))
            throw FaultError(
                "naive router: detour crosses another dead link at "
                "processor " +
                std::to_string(q));
          const proc_t to = topo.port_neighbor(q, rp.force_port);
          VMP_REQUIRE(to != kNoNeighbor, "forced port does not exist");
          hop = Hop{q, to, topo.port_axis(q, rp.force_port), rp.force_port};
        } else {
          // First live port that still starts a minimal route — dodging
          // dead links is free as long as one such port survives (on the
          // cube: any differing address bit).
          ports.clear();
          topo.min_first_ports(q, rp.pk.dst, ports);
          int chosen = -1;
          for (const int prt : ports) {
            if (!link_dead(q, prt)) {
              chosen = prt;
              break;
            }
          }
          if (chosen >= 0) {
            const proc_t to = topo.port_neighbor(q, chosen);
            hop = Hop{q, to, topo.port_axis(q, chosen), chosen};
          } else {
            // Every minimal first hop is dead (typically the last hop):
            // take the topology's detour step — on the cube one live edge
            // sideways, then force the packet across the blocked
            // dimension from the detour node.
            int force = -1;
            if (!topo.detour_first(q, rp.pk.dst, link_dead, node_dead, hop,
                                   force))
              throw FaultError(
                  "naive router: no live link out of processor " +
                  std::to_string(q));
            rp.force_port = force;
            cube.clock().note_fault_reroute();
          }
        }
        const FaultOutcome oc = fi->decide(round, 0, q, hop.port);
        if (oc.drop || oc.corrupt) {
          // Lost in transit or rejected by the hop checksum: the packet
          // stays queued and retransmits next cycle (the cycle is still
          // charged below — retries are never free).
          if (oc.corrupt) cube.clock().note_fault_chksum_fail();
          cube.clock().note_fault_retries(1);
          queue[q].push_back(rp);
          continue;
        }
        if (rp.force_port == hop.port) rp.force_port = -1;  // force done
      }
      if (mreg != nullptr) ++axis_hops[static_cast<std::size_t>(hop.axis)];
      moves.emplace_back(hop.to, rp);
    }
    bool delivered_any = false;
    for (const auto& [where, rp] : moves) {
      if (rp.pk.dst == where && rp.force_port < 0) {
        deliver(where, rp.pk.tag, rp.pk.value);
        --in_flight;
        delivered_any = true;
      } else {
        queue[where].push_back(rp);
      }
    }
    cube.clock().charge_router_cycle(moves.size());
    ++cycles;
    stalled_cycles = delivered_any ? 0 : stalled_cycles + 1;
    if (fi && stalled_cycles >
                  static_cast<std::uint64_t>(fi->policy().max_retries +
                                             topo.diameter() + 2))
      throw FaultError(
          "naive router: fault recovery budget exhausted — no packet "
          "delivered for " +
          std::to_string(stalled_cycles) + " cycles");
  }
  if (mreg != nullptr) {
    mreg->counter("router.packets", MetricClass::Sim).add(injected);
    mreg->counter("router.cycles", MetricClass::Sim).add(cycles);
    // Counter names keep the historical "dim" prefix; the index is the
    // topology axis (== cube dimension on the hypercube preset).
    for (std::size_t d = 0; d < axis_hops.size(); ++d)
      mreg->counter("router.dim" + std::to_string(d) + ".hops",
                    MetricClass::Sim)
          .add(axis_hops[d]);
  }
  return cycles;
}

}  // namespace vmp
