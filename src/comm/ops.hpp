/// \file ops.hpp
/// \brief Reduction operators for the `reduce` primitive and the collective
///        library.  An operator is a stateless struct with
///        `T combine(T,T) const` and `T identity() const`; all shipped
///        operators are associative and commutative (MinLoc/MaxLoc break
///        ties deterministically by index, preserving commutativity).
#pragma once

#include <cstdint>
#include <limits>

namespace vmp {

/// Value tagged with the global index it came from; the element type of
/// location-reducing operators (pivot search, entering-variable selection).
template <class T>
struct ValueIndex {
  T value{};
  std::int64_t index = -1;

  friend bool operator==(const ValueIndex&, const ValueIndex&) = default;
};

template <class T>
struct Plus {
  using value_type = T;
  [[nodiscard]] T combine(const T& a, const T& b) const { return a + b; }
  [[nodiscard]] T identity() const { return T{}; }
};

template <class T>
struct Multiply {
  using value_type = T;
  [[nodiscard]] T combine(const T& a, const T& b) const { return a * b; }
  [[nodiscard]] T identity() const { return T{1}; }
};

template <class T>
struct Min {
  using value_type = T;
  [[nodiscard]] T combine(const T& a, const T& b) const {
    return b < a ? b : a;
  }
  [[nodiscard]] T identity() const { return std::numeric_limits<T>::max(); }
};

template <class T>
struct Max {
  using value_type = T;
  [[nodiscard]] T combine(const T& a, const T& b) const {
    return a < b ? b : a;
  }
  [[nodiscard]] T identity() const { return std::numeric_limits<T>::lowest(); }
};

/// Smallest value wins; ties broken toward the smaller index.  The identity
/// carries index -1, which no real element uses.
template <class T>
struct MinLoc {
  using value_type = ValueIndex<T>;
  [[nodiscard]] ValueIndex<T> combine(const ValueIndex<T>& a,
                                      const ValueIndex<T>& b) const {
    if (b.index < 0) return a;
    if (a.index < 0) return b;
    if (a.value < b.value) return a;
    if (b.value < a.value) return b;
    return a.index <= b.index ? a : b;
  }
  [[nodiscard]] ValueIndex<T> identity() const {
    return {std::numeric_limits<T>::max(), -1};
  }
};

/// Largest value wins; ties broken toward the smaller index.
template <class T>
struct MaxLoc {
  using value_type = ValueIndex<T>;
  [[nodiscard]] ValueIndex<T> combine(const ValueIndex<T>& a,
                                      const ValueIndex<T>& b) const {
    if (b.index < 0) return a;
    if (a.index < 0) return b;
    if (b.value < a.value) return a;
    if (a.value < b.value) return b;
    return a.index <= b.index ? a : b;
  }
  [[nodiscard]] ValueIndex<T> identity() const {
    return {std::numeric_limits<T>::lowest(), -1};
  }
};

/// Logical operators, handy for feasibility / convergence flags.
struct LogicalAnd {
  using value_type = std::uint8_t;
  [[nodiscard]] std::uint8_t combine(std::uint8_t a, std::uint8_t b) const {
    return a && b;
  }
  [[nodiscard]] std::uint8_t identity() const { return 1; }
};

struct LogicalOr {
  using value_type = std::uint8_t;
  [[nodiscard]] std::uint8_t combine(std::uint8_t a, std::uint8_t b) const {
    return a || b;
  }
  [[nodiscard]] std::uint8_t identity() const { return 0; }
};

}  // namespace vmp
