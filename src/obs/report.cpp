#include "obs/report.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <vector>

namespace vmp {

namespace obs_detail {

std::string json_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  std::string s(buf, end);
  // to_chars emits the shortest round-trip form, which is always a valid
  // JSON number (no inf/nan reach this point).
  return s;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void append_profile_fields(std::string& out, const RegionProfile& p) {
  out += "\"comm_us\":" + json_double(p.comm_us);
  out += ",\"compute_us\":" + json_double(p.compute_us);
  out += ",\"router_us\":" + json_double(p.router_us);
  out += ",\"host_us\":" + json_double(p.host_us);
  out += ",\"total_us\":" + json_double(p.total_us());
  out += ",\"comm_steps\":" + std::to_string(p.comm_steps);
  out += ",\"messages\":" + std::to_string(p.messages);
  out += ",\"elements_moved\":" + std::to_string(p.elements_moved);
  out += ",\"elements_serial\":" + std::to_string(p.elements_serial);
  out += ",\"flops_charged\":" + std::to_string(p.flops_charged);
  out += ",\"flops_total\":" + std::to_string(p.flops_total);
  out += ",\"router_cycles\":" + std::to_string(p.router_cycles);
  out += ",\"router_hops\":" + std::to_string(p.router_hops);
  out += ",\"dim_elements\":[";
  for (std::size_t d = 0; d < p.dim_elements.size(); ++d) {
    if (d > 0) out += ',';
    out += std::to_string(p.dim_elements[d]);
  }
  out += "]";
  out += ",\"mixed_dim_elements\":" + std::to_string(p.mixed_dim_elements);
}

}  // namespace
}  // namespace obs_detail

std::string profile_to_json(const SimClock& clock) {
  using obs_detail::append_profile_fields;
  using obs_detail::json_double;
  using obs_detail::json_string;

  std::string out = "{\"schema\":\"vmp-profile-v1\"";
  const CostParams& cp = clock.params();
  out += ",\"cost_model\":{\"name\":" + json_string(cp.name);
  out += ",\"startup_us\":" + json_double(cp.startup_us);
  out += ",\"per_elem_us\":" + json_double(cp.per_elem_us);
  out += ",\"flop_us\":" + json_double(cp.flop_us);
  out += ",\"router_startup_us\":" + json_double(cp.router_startup_us);
  out += "}";
  out += ",\"topology\":{\"name\":" + json_string(clock.topology_name());
  out += ",\"axes\":" + std::to_string(clock.topology_axes());
  out += "}";
  out += ",\"totals\":{";
  out += "\"now_us\":" + json_double(clock.now_us());
  out += ",\"comm_us\":" + json_double(clock.comm_us());
  out += ",\"compute_us\":" + json_double(clock.compute_us());
  out += ",\"router_us\":" + json_double(clock.router_us());
  out += ",\"host_us\":" + json_double(clock.host_us());
  const SimStats& st = clock.stats();
  out += ",\"comm_steps\":" + std::to_string(st.comm_steps);
  out += ",\"messages\":" + std::to_string(st.messages);
  out += ",\"elements_moved\":" + std::to_string(st.elements_moved);
  out += ",\"elements_serial\":" + std::to_string(st.elements_serial);
  out += ",\"flops_charged\":" + std::to_string(st.flops_charged);
  out += ",\"flops_total\":" + std::to_string(st.flops_total);
  out += ",\"router_packets\":" + std::to_string(st.router_packets);
  out += ",\"router_hops\":" + std::to_string(st.router_hops);
  out += ",\"link_hops\":" + std::to_string(st.link_hops);
  out += ",\"fault_retries\":" + std::to_string(st.fault_retries);
  out += ",\"fault_chksum_fails\":" + std::to_string(st.fault_chksum_fails);
  out += ",\"fault_reroutes\":" + std::to_string(st.fault_reroutes);
  out += ",\"alloc_bytes\":" + std::to_string(st.alloc_bytes);
  out += ",\"pool_hits\":" + std::to_string(st.pool_hits);
  out += ",\"pool_misses\":" + std::to_string(st.pool_misses);
  out += ",\"slab_allocs\":" + std::to_string(st.slab_allocs);
  out += ",\"slab_bytes\":" + std::to_string(st.slab_bytes);
  out += "},\"regions\":[";

  const auto& self = clock.tracer().self_profiles();
  const auto inclusive = clock.tracer().inclusive_profiles();
  bool first = true;
  for (const auto& [path, total] : inclusive) {
    if (!first) out += ',';
    first = false;
    out += "{\"path\":" + json_string(path);
    out += ",\"self\":{";
    const auto it = self.find(path);
    append_profile_fields(out, it != self.end() ? it->second
                                                : RegionProfile{});
    out += "},\"total\":{";
    append_profile_fields(out, total);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string profile_to_table(const SimClock& clock) {
  const auto inclusive = clock.tracer().inclusive_profiles();
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %12s %12s %12s %12s %12s %10s %12s\n",
                "region", "total_us", "comm_us", "compute_us", "router_us",
                "host_us", "startups", "elements");
  os << line;
  for (const auto& [path, p] : inclusive) {
    std::size_t depth = 0;
    for (const char c : path) depth += (c == '/') ? 1 : 0;
    std::string label(2 * depth, ' ');
    const std::size_t cut = path.rfind('/');
    label += path.empty() ? "(outside regions)"
                          : path.substr(cut == std::string::npos ? 0 : cut + 1);
    std::snprintf(line, sizeof(line),
                  "%-44s %12.2f %12.2f %12.2f %12.2f %12.2f %10llu %12llu\n",
                  label.c_str(), p.total_us(), p.comm_us, p.compute_us,
                  p.router_us, p.host_us,
                  static_cast<unsigned long long>(p.comm_steps),
                  static_cast<unsigned long long>(p.elements_moved));
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "%-44s %12.2f %12.2f %12.2f %12.2f %12.2f\n", "TOTAL",
                clock.now_us(), clock.comm_us(), clock.compute_us(),
                clock.router_us(), clock.host_us());
  os << line;
  return os.str();
}

}  // namespace vmp
