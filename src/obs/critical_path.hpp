/// \file critical_path.hpp
/// \brief Critical-path extraction and per-phase load-imbalance analysis
///        over the trace-region attribution.
///
/// The simulated timeline is serial (every step charges the slowest
/// processor), so the machine's critical path IS the sequence of innermost
/// regions — aggregated by path, the self profiles rank exactly where
/// simulated time goes.  critical_path() returns that ranking with
/// percentage and cumulative coverage; the table form is the "where do I
/// look first" report.
///
/// load_imbalance() answers the follow-up question per region: of the time
/// spent there, how unevenly was the underlying work spread across the
/// p processors?  The cost model already records both sides:
///
///   comm_factor    = elements_serial / (elements_moved / p)
///   compute_factor = flops_charged   / (flops_total   / p)
///
/// A factor of 1 is a perfectly balanced phase (the slowest processor
/// moved/computed exactly the average); a factor of p is fully serial
/// (one processor did everything while p-1 idled).  The factors are pure
/// functions of the deterministic SimStats counters — no wall clock.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hypercube/sim_clock.hpp"

namespace vmp {

/// One entry of the critical-path ranking.
struct HotRegion {
  std::string path;     ///< region path; "" = charges outside any region
  double self_us = 0.0; ///< simulated µs charged while innermost
  double pct = 0.0;     ///< share of the clock's total, in percent
  double cum_pct = 0.0; ///< cumulative share down the ranking
};

/// Region paths ranked by self simulated time, descending.  The self
/// times of all entries sum to clock.now_us() exactly (the tracer
/// invariant), so `cum_pct` of the last entry is 100.
[[nodiscard]] std::vector<HotRegion> critical_path(const SimClock& clock);

/// Text report of the top `top` entries (rank, µs, %, cumulative %).
[[nodiscard]] std::string critical_path_to_table(const SimClock& clock,
                                                 std::size_t top = 16);

/// Per-region load-spread factors (see file comment).
struct RegionImbalance {
  std::string path;
  double self_us = 0.0;
  double comm_factor = 1.0;
  double compute_factor = 1.0;
  std::uint64_t elements_moved = 0;
  std::uint64_t flops_total = 0;
};

/// Imbalance factors for every region that moved data or charged flops,
/// ranked by self time descending.  `procs` is the cube's processor count.
[[nodiscard]] std::vector<RegionImbalance> load_imbalance(
    const SimClock& clock, unsigned procs);

/// Text report of the top `top` entries.
[[nodiscard]] std::string load_imbalance_to_table(const SimClock& clock,
                                                  unsigned procs,
                                                  std::size_t top = 16);

}  // namespace vmp
