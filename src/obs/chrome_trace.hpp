/// \file chrome_trace.hpp
/// \brief Export the tracer's event log as Chrome `trace_event` JSON.
///
/// The output loads in Perfetto (ui.perfetto.dev) or chrome://tracing and
/// shows the *simulated* timeline of the machine: one track of nested
/// region slices (the algorithm/primitive/collective hierarchy) and one
/// track of individual machine steps (comm rounds tagged with their cube
/// dimension, compute rounds, router cycles).  Timestamps are simulated
/// microseconds since the last clock reset; events are emitted sorted by
/// timestamp (ties: enclosing slices first) so consumers see a
/// monotonically non-decreasing "ts" sequence.
///
/// Event-log recording is off by default; enable it before the run:
///
///     cube.clock().tracer().set_recording(true);
///     ... run the algorithm ...
///     write_chrome_trace("trace.json", cube.clock());
#pragma once

#include <string>

#include "hypercube/sim_clock.hpp"

namespace vmp {

/// Render the recorded events as a Chrome trace_event JSON document.
[[nodiscard]] std::string chrome_trace_json(const SimClock& clock);

/// Convenience: render and write to `path`.  Returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const SimClock& clock);

}  // namespace vmp
