#include "obs/tracer.hpp"

#include "hypercube/check.hpp"

namespace vmp {

const char* to_string(ChargeKind k) {
  switch (k) {
    case ChargeKind::Comm: return "comm";
    case ChargeKind::Compute: return "compute";
    case ChargeKind::Router: return "router";
    case ChargeKind::Host: return "host";
  }
  return "?";
}

void RegionProfile::add(const RegionProfile& o) {
  comm_us += o.comm_us;
  compute_us += o.compute_us;
  router_us += o.router_us;
  host_us += o.host_us;
  comm_steps += o.comm_steps;
  messages += o.messages;
  elements_moved += o.elements_moved;
  elements_serial += o.elements_serial;
  flops_charged += o.flops_charged;
  flops_total += o.flops_total;
  router_cycles += o.router_cycles;
  router_hops += o.router_hops;
  if (dim_elements.size() < o.dim_elements.size())
    dim_elements.resize(o.dim_elements.size(), 0);
  for (std::size_t d = 0; d < o.dim_elements.size(); ++d)
    dim_elements[d] += o.dim_elements[d];
  mixed_dim_elements += o.mixed_dim_elements;
}

void Tracer::push_region(std::string_view name, double now_us) {
  VMP_REQUIRE(name.find('/') == std::string_view::npos,
              "region names must not contain '/'");
  std::string path = cur_path_;
  if (!path.empty()) path += '/';
  path.append(name);
  stack_.push_back(Frame{std::move(path), now_us});
  refresh_cursor();
}

void Tracer::pop_region(double now_us) {
  VMP_REQUIRE(!stack_.empty(), "pop_region with no open region");
  const Frame& top = stack_.back();
  if (recording_) {
    spans_.push_back(RegionSpan{top.begin_us, now_us, intern(top.path),
                                static_cast<std::uint32_t>(stack_.size() - 1)});
  }
  stack_.pop_back();
  refresh_cursor();
}

void Tracer::on_charge(ChargeKind kind, double t_begin_us, double dur_us,
                       int dim, std::uint64_t messages, std::uint64_t elements,
                       std::uint64_t elements_serial, std::uint64_t flops,
                       std::uint64_t flops_total, std::uint64_t packets) {
  if (cur_prof_ == nullptr) cur_prof_ = &self_[cur_path_];
  RegionProfile& p = *cur_prof_;
  switch (kind) {
    case ChargeKind::Comm:
      p.comm_us += dur_us;
      p.comm_steps += 1;
      p.messages += messages;
      p.elements_moved += elements;
      p.elements_serial += elements_serial;
      if (dim >= 0) {
        if (p.dim_elements.size() <= static_cast<std::size_t>(dim))
          p.dim_elements.resize(static_cast<std::size_t>(dim) + 1, 0);
        p.dim_elements[static_cast<std::size_t>(dim)] += elements;
      } else {
        p.mixed_dim_elements += elements;
      }
      break;
    case ChargeKind::Compute:
      p.compute_us += dur_us;
      p.flops_charged += flops;
      p.flops_total += flops_total;
      break;
    case ChargeKind::Router:
      p.router_us += dur_us;
      p.router_cycles += 1;
      p.router_hops += packets;
      break;
    case ChargeKind::Host:
      p.host_us += dur_us;
      break;
  }
  if (recording_) {
    events_.push_back(TraceEvent{t_begin_us, dur_us, kind, dim, messages,
                                 elements, flops, packets,
                                 intern(cur_path_)});
  }
}

std::map<std::string, RegionProfile> Tracer::inclusive_profiles() const {
  std::map<std::string, RegionProfile> inc;
  for (const auto& [path, prof] : self_) {
    if (path.empty()) {
      inc[path].add(prof);
      continue;
    }
    // Credit every ancestor prefix, including the path itself.
    for (std::size_t pos = 0; pos != std::string::npos;) {
      pos = path.find('/', pos + 1);
      inc[path.substr(0, pos)].add(prof);
    }
  }
  return inc;
}

void Tracer::reset() {
  self_.clear();
  cur_prof_ = nullptr;
  events_.clear();
  spans_.clear();
  paths_.clear();
  path_ids_.clear();
  for (Frame& f : stack_) f.begin_us = 0.0;
}

std::uint32_t Tracer::intern(const std::string& path) {
  const auto [it, inserted] =
      path_ids_.emplace(path, static_cast<std::uint32_t>(paths_.size()));
  if (inserted) paths_.push_back(path);
  return it->second;
}

void Tracer::refresh_cursor() {
  cur_path_ = stack_.empty() ? std::string() : stack_.back().path;
  cur_prof_ = nullptr;  // re-resolved lazily on the next charge
}

}  // namespace vmp
