/// \file tracer.hpp
/// \brief Per-region cost attribution for the simulated machine.
///
/// The SimClock owns a Tracer.  Algorithms open named RAII regions
/// (obs/trace.hpp); every clock charge — comm step, compute step, router
/// cycle, host time — is attributed to the innermost open region, keyed by
/// its full path ("matvec/reduce_rows/allreduce").  The tracer keeps
///
///  * a **profile**: per-path RegionProfile of simulated µs split into
///    comm/compute/router/host, plus the traffic counters and a
///    per-cube-dimension element histogram (self charges only — inclusive
///    totals are a fold over the path hierarchy, see inclusive_profiles);
///  * an optional **event log**: one TraceEvent per charge and one
///    RegionSpan per closed region, timestamped in simulated time, from
///    which obs/chrome_trace.hpp renders a Perfetto-loadable timeline.
///
/// All recording happens on the host thread (charges are issued after the
/// per-processor loops join), so the tracer needs no synchronization and
/// attribution is bit-identical for any Cube::Options::threads setting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vmp {

/// What a single clock charge paid for.
enum class ChargeKind : std::uint8_t { Comm = 0, Compute = 1, Router = 2, Host = 3 };

[[nodiscard]] const char* to_string(ChargeKind k);

/// Cost and traffic attributed to one region path (self charges only:
/// charges issued while a *child* region was open are attributed to the
/// child, never double-counted here).
struct RegionProfile {
  double comm_us = 0.0;
  double compute_us = 0.0;
  double router_us = 0.0;
  double host_us = 0.0;
  std::uint64_t comm_steps = 0;       ///< lockstep rounds == message start-ups
  std::uint64_t messages = 0;
  std::uint64_t elements_moved = 0;
  std::uint64_t elements_serial = 0;  ///< per-step max elements, summed
  std::uint64_t flops_charged = 0;
  std::uint64_t flops_total = 0;
  std::uint64_t router_cycles = 0;
  std::uint64_t router_hops = 0;
  /// Elements moved per cube dimension (index = dimension of the exchange);
  /// rounds that span several dimensions at once (all-port, irregular
  /// neighbor exchanges, router cycles) land in `mixed_dim_elements`.
  std::vector<std::uint64_t> dim_elements;
  std::uint64_t mixed_dim_elements = 0;

  [[nodiscard]] double total_us() const {
    return comm_us + compute_us + router_us + host_us;
  }
  void add(const RegionProfile& o);
  bool operator==(const RegionProfile& o) const = default;
};

/// One recorded clock charge (event-log mode only).
struct TraceEvent {
  double ts_us = 0.0;   ///< simulated time when the charge began
  double dur_us = 0.0;  ///< simulated duration of the charge
  ChargeKind kind = ChargeKind::Host;
  int dim = -1;  ///< cube dimension of a comm step; -1 = mixed / n.a.
  std::uint64_t messages = 0;
  std::uint64_t elements = 0;
  std::uint64_t flops = 0;
  std::uint64_t packets = 0;
  std::uint32_t path_id = 0;  ///< index into Tracer::paths()

  bool operator==(const TraceEvent&) const = default;
};

/// One closed region instance on the simulated timeline (event-log mode).
struct RegionSpan {
  double begin_us = 0.0;
  double end_us = 0.0;
  std::uint32_t path_id = 0;
  std::uint32_t depth = 0;  ///< nesting depth at open time (outermost = 0)

  bool operator==(const RegionSpan&) const = default;
};

/// Region stack + per-region profile + optional event log.
class Tracer {
 public:
  /// Open a region named `name` at simulated time `now_us`.  Names become
  /// path components and must not contain '/'.
  void push_region(std::string_view name, double now_us);
  /// Close the innermost region at simulated time `now_us`.
  void pop_region(double now_us);
  [[nodiscard]] std::size_t depth() const { return stack_.size(); }
  /// Full path of the innermost open region ("" when none is open).
  [[nodiscard]] const std::string& current_path() const { return cur_path_; }

  /// Record one clock charge against the innermost open region.  Called by
  /// SimClock only.
  void on_charge(ChargeKind kind, double t_begin_us, double dur_us, int dim,
                 std::uint64_t messages, std::uint64_t elements,
                 std::uint64_t elements_serial, std::uint64_t flops,
                 std::uint64_t flops_total, std::uint64_t packets);

  /// Self charges per region path.  The key "" collects charges issued
  /// outside any region.
  [[nodiscard]] const std::map<std::string, RegionProfile>& self_profiles()
      const {
    return self_;
  }

  /// Inclusive totals: each path's self profile plus the self profiles of
  /// every descendant path.  A parent's inclusive profile therefore equals
  /// its self profile plus the sum of its children's inclusive profiles.
  [[nodiscard]] std::map<std::string, RegionProfile> inclusive_profiles()
      const;

  /// Event-log mode: when on, every charge appends a TraceEvent and every
  /// closed region appends a RegionSpan (off by default — profiles are
  /// always maintained, the log is opt-in because it grows per charge).
  void set_recording(bool on) { recording_ = on; }
  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<RegionSpan>& spans() const { return spans_; }
  /// Interned region paths referenced by TraceEvent/RegionSpan::path_id.
  [[nodiscard]] const std::vector<std::string>& paths() const { return paths_; }

  /// Drop profiles, events and spans.  Open regions stay open but are
  /// re-stamped to have begun at time 0 (the caller resets its clock).
  void reset();

 private:
  struct Frame {
    std::string path;  ///< full path of this region
    double begin_us = 0.0;
  };

  [[nodiscard]] std::uint32_t intern(const std::string& path);
  void refresh_cursor();

  std::vector<Frame> stack_;
  std::string cur_path_;
  std::map<std::string, RegionProfile> self_;
  RegionProfile* cur_prof_ = nullptr;  // cache of &self_[cur_path_]
  bool recording_ = false;
  std::vector<TraceEvent> events_;
  std::vector<RegionSpan> spans_;
  std::vector<std::string> paths_;
  std::map<std::string, std::uint32_t> path_ids_;
};

}  // namespace vmp
