#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "hypercube/check.hpp"
#include "obs/report.hpp"

namespace vmp {

namespace {

using obs_detail::json_double;
using obs_detail::json_string;

[[nodiscard]] std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One metric entry of the snapshot document.  Counters emit the merged
/// value plus the per-lane split (only when there is more than one lane —
/// single-lane per_lane arrays are pure noise); histograms emit the sparse
/// non-empty buckets as [bit_width, count] pairs.
[[nodiscard]] std::string entry_to_json(const std::string& name,
                                        const MetricsRegistry::Entry& e) {
  std::string out = "{\"name\":" + json_string(name) +
                    ",\"class\":" + json_string(to_string(e.cls)) +
                    ",\"kind\":" + json_string(to_string(e.kind));
  switch (e.kind) {
    case MetricKind::Counter: {
      out += ",\"value\":" + std::to_string(e.counter->value());
      if (e.counter->lanes() > 1) {
        out += ",\"per_lane\":[";
        for (unsigned l = 0; l < e.counter->lanes(); ++l) {
          if (l != 0) out += ',';
          out += std::to_string(e.counter->lane_value(l));
        }
        out += ']';
      }
      break;
    }
    case MetricKind::Gauge:
      out += ",\"value\":" + json_double(e.gauge->value());
      break;
    case MetricKind::Histogram: {
      out += ",\"count\":" + std::to_string(e.histogram->count()) +
             ",\"sum\":" + std::to_string(e.histogram->sum()) +
             ",\"max\":" + std::to_string(e.histogram->max()) + ",\"buckets\":[";
      bool first = true;
      for (int k = 0; k < MetricsRegistry::Histogram::kBuckets; ++k) {
        const std::uint64_t n = e.histogram->bucket_count(k);
        if (n == 0) continue;
        if (!first) out += ',';
        first = false;
        out += '[' + std::to_string(k) + ',' + std::to_string(n) + ']';
      }
      out += ']';
      break;
    }
  }
  out += '}';
  return out;
}

}  // namespace

const char* to_string(MetricClass c) {
  return c == MetricClass::Sim ? "sim" : "wall";
}

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter:
      return "counter";
    case MetricKind::Gauge:
      return "gauge";
    case MetricKind::Histogram:
      return "histogram";
  }
  return "counter";
}

void MetricsRegistry::enable(unsigned lanes, unsigned sample_every) {
  VMP_REQUIRE(lanes >= 1, "metrics: lane count must be positive");
  VMP_REQUIRE(sample_every >= 1, "metrics: sampling period must be positive");
  entries_.clear();
  probes_.clear();
  lanes_ = lanes;
  // Power-of-two period: the team tests "sampled?" with one mask on its
  // step tally instead of a countdown in team state.
  sample_every_ = std::bit_ceil(sample_every);
  enabled_ = true;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        MetricClass cls,
                                                        MetricKind kind) {
  auto it = entries_.find(std::string(name));
  if (it != entries_.end()) {
    VMP_REQUIRE(it->second.kind == kind && it->second.cls == cls,
              "metrics: name re-registered with a different kind or class");
    return it->second;
  }
  Entry e;
  e.cls = cls;
  e.kind = kind;
  switch (kind) {
    case MetricKind::Counter:
      e.counter.reset(new Counter(lanes_));
      break;
    case MetricKind::Gauge:
      e.gauge.reset(new Gauge());
      break;
    case MetricKind::Histogram:
      e.histogram.reset(new Histogram(lanes_));
      break;
  }
  return entries_.emplace(std::string(name), std::move(e)).first->second;
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name,
                                                   MetricClass cls) {
  return *find_or_create(name, cls, MetricKind::Counter).counter;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name,
                                               MetricClass cls) {
  return *find_or_create(name, cls, MetricKind::Gauge).gauge;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(std::string_view name,
                                                       MetricClass cls) {
  return *find_or_create(name, cls, MetricKind::Histogram).histogram;
}

std::string metrics_to_json(MetricsRegistry& m) {
  m.run_probes();
  std::string out = "{\"schema\":\"vmp-metrics-v1\",\"kind\":\"snapshot\"";
  out += ",\"lanes\":" + std::to_string(m.lanes());
  out += ",\"sample_every\":" + std::to_string(m.sample_every());
  out += ",\"metrics\":[";
  bool first = true;
  for (const auto& [name, e] : m.entries()) {
    if (!first) out += ',';
    first = false;
    out += entry_to_json(name, e);
  }
  out += "]}";
  return out;
}

std::string metrics_to_table(MetricsRegistry& m) {
  m.run_probes();
  std::string out = "engine metrics (lanes=" + std::to_string(m.lanes()) +
                    ", sample_every=" + std::to_string(m.sample_every()) +
                    ")\n";
  std::size_t wname = 4;
  for (const auto& [name, e] : m.entries())
    wname = std::max(wname, name.size());
  char line[512];
  std::snprintf(line, sizeof line, "  %-*s  %-5s %-10s %s\n",
                static_cast<int>(wname), "name", "class", "kind", "value");
  out += line;
  for (const auto& [name, e] : m.entries()) {
    std::string value;
    switch (e.kind) {
      case MetricKind::Counter:
        value = std::to_string(e.counter->value());
        break;
      case MetricKind::Gauge: {
        std::snprintf(line, sizeof line, "%.6g", e.gauge->value());
        value = line;
        break;
      }
      case MetricKind::Histogram: {
        const std::uint64_t n = e.histogram->count();
        const double mean =
            n == 0 ? 0.0
                   : static_cast<double>(e.histogram->sum()) /
                         static_cast<double>(n);
        std::snprintf(line, sizeof line, "count=%llu mean=%.1f max=%llu",
                      static_cast<unsigned long long>(n), mean,
                      static_cast<unsigned long long>(e.histogram->max()));
        value = line;
        break;
      }
    }
    std::snprintf(line, sizeof line, "  %-*s  %-5s %-10s %s\n",
                  static_cast<int>(wname), name.c_str(), to_string(e.cls),
                  to_string(e.kind), value.c_str());
    out += line;
  }
  return out;
}

MetricsSampler::MetricsSampler(MetricsRegistry& m)
    : m_(&m), t0_ns_(wall_now_ns()) {}

void MetricsSampler::sample(std::string label, double sim_us) {
  Sample s;
  s.label = std::move(label);
  s.sim_us = sim_us;
  s.wall_ms =
      static_cast<double>(wall_now_ns() - t0_ns_) / 1e6;
  s.snapshot = metrics_to_json(*m_);
  samples_.push_back(std::move(s));
}

std::string MetricsSampler::to_json() const {
  std::vector<MetricsSeriesEntry> entries;
  entries.reserve(samples_.size());
  for (const Sample& s : samples_)
    entries.push_back({s.label, s.sim_us, s.wall_ms, s.snapshot});
  return metrics_series_to_json(entries);
}

std::string metrics_series_to_json(
    const std::vector<MetricsSeriesEntry>& samples) {
  std::string out = "{\"schema\":\"vmp-metrics-v1\",\"kind\":\"series\"";
  out += ",\"samples\":[";
  bool first = true;
  for (const MetricsSeriesEntry& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"label\":" + obs_detail::json_string(s.label) +
           ",\"sim_us\":" + obs_detail::json_double(s.sim_us) +
           ",\"wall_ms\":" + obs_detail::json_double(s.wall_ms) +
           ",\"snapshot\":" + s.snapshot_json + '}';
  }
  out += "]}";
  return out;
}

}  // namespace vmp
