/// \file metrics.hpp
/// \brief Runtime engine metrics: a low-overhead registry of counters,
///        gauges and log-bucketed histograms for the machine's hot
///        subsystems (worker team, buffer pool, router).
///
/// This is the second observability tier.  The first (obs/tracer.hpp)
/// attributes *simulated* cost to trace regions; this one watches the
/// *engine itself* at runtime — how long a team step takes to dispatch,
/// how busy each lane is, how deep the pool's buckets sit, how loaded the
/// router's queues are.  Design constraints, in order:
///
///  * **Off means free.**  Metrics are disabled by default; every
///    instrumented hot path guards on one pointer/bool, so the ~18 ns
///    empty-step dispatch of the worker team is untouched.  With metrics
///    ON, wall-clock probes only run on *sampled* steps (every Nth,
///    default 512), so the per-step cost stays within noise.
///  * **Deterministic metrics stay deterministic.**  Every metric is
///    tagged with a MetricClass: `Sim` metrics derive only from the
///    simulated machine (step counts, items, pool occupancy, router
///    traffic) and are **bit-identical at any thread count**, exactly
///    like SimStats; `Wall` metrics derive from host wall-clock and vary
///    run to run (tests assert they are present but exclude them from
///    equality — tests/test_metrics.cpp).
///  * **No synchronization on the hot path.**  Counters and histograms
///    hold one cache-padded cell per lane; a lane only ever writes its
///    own cell, inside a team step (so the step's acquire/release
///    barrier orders the writes), and reads merge the cells in lane
///    order on the host.  Registration and gauges are host-thread-only.
///
/// Serialization: metrics_to_json emits one `vmp-metrics-v1` snapshot
/// document, MetricsSampler collects a time-series of snapshots, and
/// metrics_to_table renders a text dashboard.  See docs/observability.md.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace vmp {

/// Determinism class of a metric.  `Sim` values are functions of the
/// simulated machine only (bit-identical across thread counts and runs);
/// `Wall` values are host wall-clock measurements.
enum class MetricClass : std::uint8_t { Sim = 0, Wall = 1 };

enum class MetricKind : std::uint8_t { Counter = 0, Gauge = 1, Histogram = 2 };

[[nodiscard]] const char* to_string(MetricClass c);
[[nodiscard]] const char* to_string(MetricKind k);

class MetricsRegistry {
 public:
  /// Default team-step sampling period for wall-clock probes: one step in
  /// 512 pays the steady_clock reads; the rest pay two L1 adds and a mask
  /// test.  Periods are rounded up to a power of two (the sampled-step
  /// test is a mask on the step tally, not a division).
  static constexpr unsigned kDefaultSampleEvery = 512;

  /// Monotone counter with one cache-padded cell per lane.  A lane adds
  /// to its own cell only (no atomics needed: writes happen inside a team
  /// step and the step barrier publishes them); value() merges the cells
  /// in lane order.
  class Counter {
   public:
    void add(std::uint64_t n, unsigned lane = 0) { cells_[lane].v += n; }
    /// Merged total, folded in ascending lane order.
    [[nodiscard]] std::uint64_t value() const {
      std::uint64_t v = 0;
      for (const Cell& c : cells_) v += c.v;
      return v;
    }
    [[nodiscard]] std::uint64_t lane_value(unsigned lane) const {
      return cells_[lane].v;
    }
    [[nodiscard]] unsigned lanes() const {
      return static_cast<unsigned>(cells_.size());
    }

   private:
    friend class MetricsRegistry;
    struct alignas(64) Cell {
      std::uint64_t v = 0;
    };
    explicit Counter(unsigned lanes) : cells_(lanes) {}
    std::vector<Cell> cells_;
  };

  /// Point-in-time value, host-thread only (typically set by a snapshot
  /// probe, see add_probe).
  class Gauge {
   public:
    void set(double v) { v_ = v; }
    void add(double d) { v_ += d; }
    [[nodiscard]] double value() const { return v_; }

   private:
    friend class MetricsRegistry;
    Gauge() = default;
    double v_ = 0.0;
  };

  /// Log2-bucketed histogram of unsigned values with per-lane padded
  /// cells.  Bucket k counts values whose bit width is k, i.e. values in
  /// [2^(k-1), 2^k); bucket 0 counts zeros.  Also tracks count, sum and
  /// max so means and tails survive the bucketing.
  class Histogram {
   public:
    static constexpr int kBuckets = 65;  // bit_width of a uint64 is 0..64

    void record(std::uint64_t v, unsigned lane = 0) {
      Cell& c = cells_[lane];
      ++c.n[static_cast<std::size_t>(bucket_of(v))];
      ++c.count;
      c.sum += v;
      if (v > c.max) c.max = v;
    }
    [[nodiscard]] std::uint64_t count() const {
      std::uint64_t v = 0;
      for (const Cell& c : cells_) v += c.count;
      return v;
    }
    [[nodiscard]] std::uint64_t sum() const {
      std::uint64_t v = 0;
      for (const Cell& c : cells_) v += c.sum;
      return v;
    }
    [[nodiscard]] std::uint64_t max() const {
      std::uint64_t v = 0;
      for (const Cell& c : cells_)
        if (c.max > v) v = c.max;
      return v;
    }
    /// Merged count of bucket k over all lanes.
    [[nodiscard]] std::uint64_t bucket_count(int k) const {
      std::uint64_t v = 0;
      for (const Cell& c : cells_) v += c.n[static_cast<std::size_t>(k)];
      return v;
    }
    [[nodiscard]] static int bucket_of(std::uint64_t v) {
      return static_cast<int>(std::bit_width(v));
    }
    /// Smallest value bucket k collects (0 for bucket 0).
    [[nodiscard]] static std::uint64_t bucket_lo(int k) {
      return k < 1 ? 0 : std::uint64_t{1} << (k - 1);
    }

   private:
    friend class MetricsRegistry;
    struct alignas(64) Cell {
      std::array<std::uint64_t, kBuckets> n{};
      std::uint64_t count = 0;
      std::uint64_t sum = 0;
      std::uint64_t max = 0;
    };
    explicit Histogram(unsigned lanes) : cells_(lanes) {}
    std::vector<Cell> cells_;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Arm the registry for `lanes` writer lanes (the worker-team lane
  /// count).  Drops every previously registered metric and probe — the
  /// subsystems re-register when they are wired up.  `sample_every` is
  /// rounded up to a power of two.  Host thread only, with the team
  /// quiescent.
  void enable(unsigned lanes, unsigned sample_every = kDefaultSampleEvery);
  /// Stop advertising the registry as live.  Registered metrics keep
  /// their values and stay readable (a final snapshot after a run is the
  /// common pattern); the next enable() starts fresh.
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] unsigned lanes() const { return lanes_; }
  [[nodiscard]] unsigned sample_every() const { return sample_every_; }

  /// Find-or-create.  Registration is host-thread-only and must happen
  /// outside any team step; the returned reference stays valid until the
  /// next enable().  Name collisions across kinds are a contract error.
  [[nodiscard]] Counter& counter(std::string_view name, MetricClass cls);
  [[nodiscard]] Gauge& gauge(std::string_view name, MetricClass cls);
  [[nodiscard]] Histogram& histogram(std::string_view name, MetricClass cls);

  /// Register a snapshot probe: a host-side callback run by
  /// run_probes() (which every serializer calls first) so point-in-time
  /// gauges — pool occupancy, queue depths — are refreshed at read time
  /// instead of being maintained on the hot path.
  void add_probe(std::function<void()> probe) {
    probes_.push_back(std::move(probe));
  }
  void run_probes() {
    for (const auto& p : probes_) p();
  }

  /// One registered metric, as seen by serializers.  Exactly one of the
  /// three pointers is non-null, matching `kind`.
  struct Entry {
    MetricClass cls = MetricClass::Sim;
    MetricKind kind = MetricKind::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  /// All registered metrics, keyed (and therefore serialized) in
  /// lexicographic name order — deterministic output.
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

 private:
  Entry& find_or_create(std::string_view name, MetricClass cls,
                        MetricKind kind);

  bool enabled_ = false;
  unsigned lanes_ = 1;
  unsigned sample_every_ = kDefaultSampleEvery;
  std::map<std::string, Entry> entries_;
  std::vector<std::function<void()>> probes_;
};

/// One `vmp-metrics-v1` snapshot document (kind "snapshot"): runs the
/// probes, then serializes every registered metric in name order.
[[nodiscard]] std::string metrics_to_json(MetricsRegistry& m);

/// Human-readable dashboard: one aligned row per metric (class, kind,
/// merged value / count-mean-max for histograms, per-lane split for
/// multi-lane counters).
[[nodiscard]] std::string metrics_to_table(MetricsRegistry& m);

/// Collects a time-series of snapshots from one registry and serializes
/// them as a `vmp-metrics-v1` document of kind "series": each sample
/// carries a label, the simulated clock, wall milliseconds since the
/// sampler was created, and a full snapshot document.
class MetricsSampler {
 public:
  explicit MetricsSampler(MetricsRegistry& m);

  /// Append one snapshot.  `sim_us` is the caller's simulated clock at
  /// the sample point (metrics do not know the clock).
  void sample(std::string label, double sim_us);
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] std::string to_json() const;

 private:
  struct Sample {
    std::string label;
    double sim_us = 0.0;
    double wall_ms = 0.0;
    std::string snapshot;  // a complete vmp-metrics-v1 snapshot document
  };
  MetricsRegistry* m_;
  std::uint64_t t0_ns_ = 0;
  std::vector<Sample> samples_;
};

/// Assemble a `vmp-metrics-v1` series document from pre-rendered
/// (label, sim_us, wall_ms, snapshot-JSON) tuples — the bench harness
/// uses this to stitch per-case snapshots from *different* registries
/// (one cube per case) into one time-series file.
struct MetricsSeriesEntry {
  std::string label;
  double sim_us = 0.0;
  double wall_ms = 0.0;
  std::string snapshot_json;
};
[[nodiscard]] std::string metrics_series_to_json(
    const std::vector<MetricsSeriesEntry>& samples);

}  // namespace vmp
