#include "obs/flamegraph.hpp"

#include <cmath>
#include <cstdio>

namespace vmp {

std::string collapsed_stacks(const SimClock& clock) {
  std::string out;
  for (const auto& [path, prof] : clock.tracer().self_profiles()) {
    const double self_us = prof.total_us();
    if (self_us <= 0.0) continue;
    const auto ns = static_cast<long long>(std::llround(self_us * 1000.0));
    if (ns <= 0) continue;
    std::string frames;
    if (path.empty()) {
      frames = "(outside regions)";
    } else {
      frames = path;
      for (char& c : frames)
        if (c == '/') c = ';';
    }
    out += frames;
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

bool write_collapsed_stacks(const std::string& path, const SimClock& clock) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = collapsed_stacks(clock);
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool closed = std::fclose(f) == 0;
  return n == doc.size() && closed;
}

}  // namespace vmp
