/// \file flamegraph.hpp
/// \brief Collapsed-stack (flame-graph) export of the region attribution.
///
/// Renders the tracer's self profiles — the same data the Chrome trace
/// timeline is built from — in Brendan Gregg's collapsed-stack format:
/// one line per region path,
///
///   matvec;reduce_rows;allreduce 41250
///
/// where the frames are the '/'-separated path components joined by ';'
/// and the value is the region's SELF simulated time in integer
/// nanoseconds (self, not inclusive: flame-graph tooling sums ancestors
/// itself).  Feed the output straight to flamegraph.pl or speedscope.
/// Charges issued outside any region appear as the single frame
/// "(outside regions)".
#pragma once

#include <string>

#include "hypercube/sim_clock.hpp"

namespace vmp {

/// The collapsed-stack document (possibly empty when nothing was charged).
[[nodiscard]] std::string collapsed_stacks(const SimClock& clock);

/// Write collapsed_stacks() to `path`; returns false on I/O failure.
bool write_collapsed_stacks(const std::string& path, const SimClock& clock);

}  // namespace vmp
