#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <vector>

#include "obs/report.hpp"

namespace vmp {

namespace {

/// One renderable trace record: a region slice or a machine-step slice.
struct Record {
  double ts = 0.0;
  double dur = 0.0;
  std::uint32_t order = 0;  ///< tie-break: smaller = encloses (emitted first)
  bool is_span = false;
  std::uint32_t path_id = 0;
  const TraceEvent* ev = nullptr;
};

std::string leaf_name(const std::string& path) {
  const std::size_t cut = path.rfind('/');
  return cut == std::string::npos ? path : path.substr(cut + 1);
}

}  // namespace

std::string chrome_trace_json(const SimClock& clock) {
  using obs_detail::json_double;
  using obs_detail::json_string;
  const Tracer& tr = clock.tracer();

  std::vector<Record> recs;
  recs.reserve(tr.spans().size() + tr.events().size());
  for (const RegionSpan& s : tr.spans()) {
    recs.push_back(Record{s.begin_us, s.end_us - s.begin_us, s.depth, true,
                          s.path_id, nullptr});
  }
  for (const TraceEvent& e : tr.events()) {
    // Machine steps are leaves: order below any region depth in use.
    recs.push_back(Record{e.ts_us, e.dur_us,
                          std::numeric_limits<std::uint32_t>::max(), false,
                          e.path_id, &e});
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Record& a, const Record& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.order < b.order;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Track names (metadata events carry no timestamp of their own).
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"vmp simulated machine\"}},";
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"regions\"}},";
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"machine steps\"}}";

  for (const Record& r : recs) {
    const std::string& path =
        r.path_id < tr.paths().size() ? tr.paths()[r.path_id] : std::string();
    out += ",{\"ph\":\"X\",\"pid\":0";
    out += ",\"ts\":" + json_double(r.ts);
    out += ",\"dur\":" + json_double(r.dur);
    if (r.is_span) {
      out += ",\"tid\":0,\"cat\":\"region\"";
      out += ",\"name\":" + json_string(leaf_name(path));
      out += ",\"args\":{\"path\":" + json_string(path) + "}";
    } else {
      const TraceEvent& e = *r.ev;
      std::string name = to_string(e.kind);
      if (e.kind == ChargeKind::Comm && e.dim >= 0)
        name += "(d" + std::to_string(e.dim) + ")";
      out += ",\"tid\":1,\"cat\":\"step\"";
      out += ",\"name\":" + json_string(name);
      out += ",\"args\":{\"path\":" + json_string(path);
      out += ",\"messages\":" + std::to_string(e.messages);
      out += ",\"elements\":" + std::to_string(e.elements);
      out += ",\"flops\":" + std::to_string(e.flops);
      out += ",\"packets\":" + std::to_string(e.packets);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path, const SimClock& clock) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string doc = chrome_trace_json(clock);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return static_cast<bool>(f);
}

}  // namespace vmp
