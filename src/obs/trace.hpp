/// \file trace.hpp
/// \brief RAII trace regions: `VMP_TRACE(cube, "reduce_rows");` attributes
///        every clock charge inside the scope to that region.
///
/// Regions nest — a primitive called from an algorithm shows up as
/// "algorithm/primitive/collective" in the profile — and closing is
/// automatic at scope exit, so early returns and exceptions cannot leave
/// the region stack unbalanced.  The owner argument may be a SimClock or
/// anything with a clock() accessor (a Cube).
#pragma once

#include <concepts>
#include <string_view>

#include "hypercube/sim_clock.hpp"

namespace vmp {

/// Opens a region on construction, closes it on destruction.  Prefer the
/// VMP_TRACE macro, which names the variable for you.
class TraceRegion {
 public:
  TraceRegion(SimClock& clock, std::string_view name) : clock_(&clock) {
    clock_->tracer().push_region(name, clock_->now_us());
  }
  template <class ClockOwner>
    requires requires(ClockOwner& c) {
      { c.clock() } -> std::convertible_to<SimClock&>;
    }
  TraceRegion(ClockOwner& owner, std::string_view name)
      : TraceRegion(owner.clock(), name) {}

  TraceRegion(const TraceRegion&) = delete;
  TraceRegion& operator=(const TraceRegion&) = delete;

  ~TraceRegion() { clock_->tracer().pop_region(clock_->now_us()); }

 private:
  SimClock* clock_;
};

}  // namespace vmp

#define VMP_TRACE_CONCAT2(a, b) a##b
#define VMP_TRACE_CONCAT(a, b) VMP_TRACE_CONCAT2(a, b)

/// Open a trace region for the rest of the enclosing scope.
/// `owner` is a SimClock or a Cube; `name` a string literal without '/'.
#define VMP_TRACE(owner, name) \
  ::vmp::TraceRegion VMP_TRACE_CONCAT(vmp_trace_region_, __LINE__)(owner, name)
