/// \file report.hpp
/// \brief Serialize per-region profiles: JSON (schema "vmp-profile-v1")
///        and a pretty text table.
///
/// The JSON document carries the global SimClock totals plus one entry per
/// region path with both the *self* profile (charges issued while that
/// region was innermost) and the *total* (inclusive) profile (self plus
/// all descendants).  Summing the self buckets over every region — the ""
/// path collects charges issued outside any region — reproduces the global
/// totals exactly; tests enforce this to 1e-9 relative.
///
/// Schema (vmp-profile-v1):
///   {
///     "schema": "vmp-profile-v1",
///     "cost_model": "<preset name>",
///     "totals": { "now_us", "comm_us", "compute_us", "router_us",
///                 "host_us", "comm_steps", "messages", "elements_moved",
///                 "elements_serial", "flops_charged", "flops_total",
///                 "router_packets", "router_hops" },
///     "regions": [ { "path", "self": {<buckets+counters+dim_elements>},
///                    "total": {…} }, … ]   // sorted by path
///   }
#pragma once

#include <string>

#include "hypercube/sim_clock.hpp"

namespace vmp {

/// JSON profile of everything charged to `clock` since its last reset.
[[nodiscard]] std::string profile_to_json(const SimClock& clock);

/// Human-readable table: one row per region (indented by nesting depth),
/// inclusive µs split into comm/compute/router/host plus key counters.
[[nodiscard]] std::string profile_to_table(const SimClock& clock);

namespace obs_detail {
/// Format a double for JSON: shortest round-trip representation, always
/// valid JSON (no inf/nan — callers never produce them from the clock).
[[nodiscard]] std::string json_double(double v);
/// Escape a string for embedding in a JSON document (quotes included).
[[nodiscard]] std::string json_string(const std::string& s);
}  // namespace obs_detail

}  // namespace vmp
