#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>

namespace vmp {

namespace {

[[nodiscard]] const char* display_path(const std::string& path) {
  return path.empty() ? "(outside regions)" : path.c_str();
}

}  // namespace

std::vector<HotRegion> critical_path(const SimClock& clock) {
  const double total = clock.now_us();
  std::vector<HotRegion> out;
  for (const auto& [path, prof] : clock.tracer().self_profiles()) {
    const double self = prof.total_us();
    if (self <= 0.0) continue;
    out.push_back({path, self, total > 0.0 ? self * 100.0 / total : 0.0, 0.0});
  }
  // Rank by self time; ties broken by path so the ranking is deterministic.
  std::sort(out.begin(), out.end(), [](const HotRegion& a, const HotRegion& b) {
    if (a.self_us != b.self_us) return a.self_us > b.self_us;
    return a.path < b.path;
  });
  double cum = 0.0;
  for (HotRegion& r : out) {
    cum += r.pct;
    r.cum_pct = cum;
  }
  return out;
}

std::string critical_path_to_table(const SimClock& clock, std::size_t top) {
  const std::vector<HotRegion> ranked = critical_path(clock);
  char line[512];
  std::snprintf(line, sizeof line,
                "critical path (self simulated time, %.3f us total)\n"
                "  %4s  %12s  %6s  %6s  %s\n",
                clock.now_us(), "rank", "self_us", "pct", "cum", "path");
  std::string out = line;
  std::size_t rank = 0;
  for (const HotRegion& r : ranked) {
    if (rank == top) break;
    ++rank;
    std::snprintf(line, sizeof line, "  %4zu  %12.3f  %5.1f%%  %5.1f%%  %s\n",
                  rank, r.self_us, r.pct, r.cum_pct, display_path(r.path));
    out += line;
  }
  return out;
}

std::vector<RegionImbalance> load_imbalance(const SimClock& clock,
                                            unsigned procs) {
  const double p = static_cast<double>(procs);
  std::vector<RegionImbalance> out;
  for (const auto& [path, prof] : clock.tracer().self_profiles()) {
    if (prof.elements_moved == 0 && prof.flops_total == 0) continue;
    RegionImbalance r;
    r.path = path;
    r.self_us = prof.total_us();
    r.elements_moved = prof.elements_moved;
    r.flops_total = prof.flops_total;
    if (prof.elements_moved != 0)
      r.comm_factor = static_cast<double>(prof.elements_serial) /
                      (static_cast<double>(prof.elements_moved) / p);
    if (prof.flops_total != 0)
      r.compute_factor = static_cast<double>(prof.flops_charged) /
                         (static_cast<double>(prof.flops_total) / p);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const RegionImbalance& a, const RegionImbalance& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.path < b.path;
            });
  return out;
}

std::string load_imbalance_to_table(const SimClock& clock, unsigned procs,
                                    std::size_t top) {
  const std::vector<RegionImbalance> ranked = load_imbalance(clock, procs);
  char line[512];
  std::snprintf(line, sizeof line,
                "load imbalance per region (factor 1 = balanced, %u = serial)\n"
                "  %12s  %9s  %12s  %s\n",
                procs, "self_us", "comm_x", "compute_x", "path");
  std::string out = line;
  std::size_t rank = 0;
  for (const RegionImbalance& r : ranked) {
    if (rank == top) break;
    ++rank;
    std::snprintf(line, sizeof line, "  %12.3f  %9.2f  %12.2f  %s\n",
                  r.self_us, r.comm_factor, r.compute_factor,
                  display_path(r.path));
    out += line;
  }
  return out;
}

}  // namespace vmp
