/// \file naive.hpp
/// \brief Naive implementations of the primitives: one general-router
///        packet per matrix element, no alignment, no message combining.
///
/// This is the baseline the paper's optimized primitives beat "by almost an
/// order of magnitude": every element of the operand travels as its own
/// packet through the store-and-forward router (comm/router.hpp), paying
/// the full router start-up on every hop, and vectors stay in the Linear
/// host embedding so nothing is ever replicated or aligned.  Results are
/// bit-identical to the optimized primitives for sum-reductions up to
/// floating-point association; correctness tests compare against them.
#pragma once

#include <cmath>

#include "comm/ops.hpp"
#include "comm/router.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"
#include "obs/trace.hpp"

namespace vmp {

/// Owner processor of global index g in a Linear vector.
[[nodiscard]] inline proc_t v_owner(const DistVector<double>& v,
                                    std::size_t g) {
  return static_cast<proc_t>(v.map().owner(g));
}

/// out[i][j] = v[j] — one packet per matrix element, from the Linear owner
/// of v[j] to the block owner of (i, j).
[[nodiscard]] inline DistMatrix<double> naive_distribute_rows(
    const DistVector<double>& v, std::size_t nrows, MatrixLayout layout = {}) {
  VMP_REQUIRE(v.align() == Align::Linear,
              "naive primitives use Linear vectors");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_distribute_rows");
  DistMatrix<double> out(grid, nrows, v.n(), layout);
  std::vector<std::vector<Packet>> inject(cube.procs());
  cube.each_proc([&](proc_t q) {
    const std::uint32_t C = grid.pcol(q);
    const std::size_t lrn = out.lrows(q), lcn = out.lcols(q);
    for (std::size_t lc = 0; lc < lcn; ++lc) {
      const std::size_t j = out.colmap().global(C, lc);
      const proc_t src = v.map().owner(j);
      const double value = v.at(j);
      for (std::size_t lr = 0; lr < lrn; ++lr)
        inject[src].push_back(Packet{q, lr * lcn + lc, value});
    }
  });
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    out.data().tile(dst)[tag] = x;
  });
  return out;
}

/// out[j] = sum_i A[i][j], result Linear — one packet per matrix element to
/// the Linear owner of index j, accumulated on arrival.
[[nodiscard]] inline DistVector<double> naive_reduce_cols_sum(
    const DistMatrix<double>& A) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_reduce_cols_sum");
  DistVector<double> out(grid, A.ncols(), Align::Linear);
  std::vector<std::vector<Packet>> inject(cube.procs());
  cube.each_proc([&](proc_t q) {
    const std::uint32_t C = grid.pcol(q);
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    const std::span<const double> blk = A.block(q);
    for (std::size_t lr = 0; lr < lrn; ++lr)
      for (std::size_t lc = 0; lc < lcn; ++lc) {
        const std::size_t j = A.colmap().global(C, lc);
        inject[q].push_back(Packet{v_owner(out, j), out.map().local(j),
                                   blk[lr * lcn + lc]});
      }
  });
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    out.data().tile(dst)[tag] += x;
  });
  return out;
}

/// out[j] = A[i][j], result Linear — one packet per row element.
[[nodiscard]] inline DistVector<double> naive_extract_row(
    const DistMatrix<double>& A, std::size_t i) {
  VMP_REQUIRE(i < A.nrows(), "row index out of range");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_extract_row");
  DistVector<double> out(grid, A.ncols(), Align::Linear);
  const std::uint32_t R = A.rowmap().owner(i);
  const std::size_t lr = A.rowmap().local(i);
  std::vector<std::vector<Packet>> inject(cube.procs());
  cube.each_proc([&](proc_t q) {
    if (grid.prow(q) != R) return;
    const std::uint32_t C = grid.pcol(q);
    const std::size_t lcn = A.lcols(q);
    const std::span<const double> blk = A.block(q);
    for (std::size_t lc = 0; lc < lcn; ++lc) {
      const std::size_t j = A.colmap().global(C, lc);
      inject[q].push_back(
          Packet{v_owner(out, j), out.map().local(j), blk[lr * lcn + lc]});
    }
  });
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    out.data().tile(dst)[tag] = x;
  });
  return out;
}

/// A[i][j] = v[j] for one row i, v Linear — one packet per element.
inline void naive_insert_row(DistMatrix<double>& A, std::size_t i,
                             const DistVector<double>& v) {
  VMP_REQUIRE(i < A.nrows(), "row index out of range");
  VMP_REQUIRE(v.align() == Align::Linear && v.n() == A.ncols(),
              "naive_insert_row needs a Linear vector of length ncols");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_insert_row");
  const std::uint32_t R = A.rowmap().owner(i);
  const std::size_t lr = A.rowmap().local(i);
  std::vector<std::vector<Packet>> inject(cube.procs());
  for (std::size_t j = 0; j < v.n(); ++j) {
    const proc_t dst = grid.at(R, A.colmap().owner(j));
    const std::size_t lcn = A.colmap().size(A.colmap().owner(j));
    inject[v.map().owner(j)].push_back(
        Packet{dst, lr * lcn + A.colmap().local(j), v.at(j)});
  }
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    A.data().tile(dst)[tag] = x;
  });
}

/// out[i][j] = v[i] — the column-direction twin of naive_distribute_rows.
[[nodiscard]] inline DistMatrix<double> naive_distribute_cols(
    const DistVector<double>& v, std::size_t ncols, MatrixLayout layout = {}) {
  VMP_REQUIRE(v.align() == Align::Linear,
              "naive primitives use Linear vectors");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_distribute_cols");
  DistMatrix<double> out(grid, v.n(), ncols, layout);
  std::vector<std::vector<Packet>> inject(cube.procs());
  cube.each_proc([&](proc_t q) {
    const std::uint32_t R = grid.prow(q);
    const std::size_t lrn = out.lrows(q), lcn = out.lcols(q);
    for (std::size_t lr = 0; lr < lrn; ++lr) {
      const std::size_t i = out.rowmap().global(R, lr);
      const proc_t src = v.map().owner(i);
      const double value = v.at(i);
      for (std::size_t lc = 0; lc < lcn; ++lc)
        inject[src].push_back(Packet{q, lr * lcn + lc, value});
    }
  });
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    out.data().tile(dst)[tag] = x;
  });
  return out;
}

/// out[i] = A[i][j] for one column j, result Linear.
[[nodiscard]] inline DistVector<double> naive_extract_col(
    const DistMatrix<double>& A, std::size_t j) {
  VMP_REQUIRE(j < A.ncols(), "column index out of range");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_extract_col");
  DistVector<double> out(grid, A.nrows(), Align::Linear);
  const std::uint32_t C = A.colmap().owner(j);
  const std::size_t lc = A.colmap().local(j);
  std::vector<std::vector<Packet>> inject(cube.procs());
  cube.each_proc([&](proc_t q) {
    if (grid.pcol(q) != C) return;
    const std::uint32_t R = grid.prow(q);
    const std::size_t lcn = A.lcols(q);
    const std::size_t lrn = A.lrows(q);
    const std::span<const double> blk = A.block(q);
    for (std::size_t lr = 0; lr < lrn; ++lr) {
      const std::size_t i = A.rowmap().global(R, lr);
      inject[q].push_back(
          Packet{v_owner(out, i), out.map().local(i), blk[lr * lcn + lc]});
    }
  });
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    out.data().tile(dst)[tag] = x;
  });
  return out;
}

/// A[i][j] = v[i] for one column j, v Linear.
inline void naive_insert_col(DistMatrix<double>& A, std::size_t j,
                             const DistVector<double>& v) {
  VMP_REQUIRE(j < A.ncols(), "column index out of range");
  VMP_REQUIRE(v.align() == Align::Linear && v.n() == A.nrows(),
              "naive_insert_col needs a Linear vector of length nrows");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_insert_col");
  const std::uint32_t C = A.colmap().owner(j);
  const std::size_t lc = A.colmap().local(j);
  std::vector<std::vector<Packet>> inject(cube.procs());
  for (std::size_t i = 0; i < v.n(); ++i) {
    const std::uint32_t R = A.rowmap().owner(i);
    const proc_t dst = grid.at(R, C);
    const std::size_t lcn = A.colmap().size(C);
    inject[v.map().owner(i)].push_back(
        Packet{dst, A.rowmap().local(i) * lcn + lc, v.at(i)});
  }
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    A.data().tile(dst)[tag] = x;
  });
}

/// Located max-|value| over v[lo..n): every candidate element travels to
/// processor 0 as its own packet and is folded on arrival, then the result
/// is fetched by the front end — the naive reduction pattern.
[[nodiscard]] inline ValueIndex<double> naive_argmax_abs(
    const DistVector<double>& v, std::size_t lo) {
  VMP_REQUIRE(v.align() == Align::Linear, "naive primitives use Linear vectors");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_argmax_abs");
  std::vector<std::vector<Packet>> inject(cube.procs());
  for (std::size_t g = lo; g < v.n(); ++g)
    inject[v.map().owner(g)].push_back(Packet{0, g, v.at(g)});
  const MaxLoc<double> op;
  ValueIndex<double> best = op.identity();
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t, std::uint64_t tag, double x) {
    best = op.combine(
        best, ValueIndex<double>{std::abs(x), static_cast<std::int64_t>(tag)});
  });
  cube.clock().charge_comm_step(1, 1, 1);  // front-end fetch of the result
  return best;
}

/// Exchange rows i and j through the general router, one packet per element.
inline void naive_swap_rows(DistMatrix<double>& A, std::size_t i,
                            std::size_t j) {
  VMP_REQUIRE(i < A.nrows() && j < A.nrows(), "row index out of range");
  if (i == j) return;
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_swap_rows");
  std::vector<std::vector<Packet>> inject(cube.procs());
  for (std::size_t g = 0; g < A.ncols(); ++g) {
    const proc_t qi = A.owner(i, g);
    const proc_t qj = A.owner(j, g);
    const std::size_t slot_i =
        A.rowmap().local(i) * A.lcols(qi) + A.colmap().local(g);
    const std::size_t slot_j =
        A.rowmap().local(j) * A.lcols(qj) + A.colmap().local(g);
    inject[qi].push_back(Packet{qj, slot_j, A.data().tile(qi)[slot_i]});
    inject[qj].push_back(Packet{qi, slot_i, A.data().tile(qj)[slot_j]});
  }
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double x) {
    A.data().tile(dst)[tag] = x;
  });
}

/// y = A·x with x and y Linear: x is routed element-by-element to every
/// matrix element that needs it, products are routed element-by-element to
/// y's owners — the fully naive virtual-processor-per-element picture.
[[nodiscard]] inline DistVector<double> naive_matvec(
    const DistMatrix<double>& A, const DistVector<double>& x) {
  VMP_REQUIRE(x.align() == Align::Linear && x.n() == A.ncols(),
              "naive_matvec needs a Linear vector of length ncols");
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "naive_matvec");

  // Phase 1: fetch x[j] into every element position (i, j).
  DistMatrix<double> X(grid, A.nrows(), A.ncols(), A.layout());
  std::vector<std::vector<Packet>> inject(cube.procs());
  cube.each_proc([&](proc_t q) {
    const std::uint32_t C = grid.pcol(q);
    const std::size_t lrn = X.lrows(q), lcn = X.lcols(q);
    for (std::size_t lc = 0; lc < lcn; ++lc) {
      const std::size_t j = X.colmap().global(C, lc);
      const proc_t src = x.map().owner(j);
      const double value = x.at(j);
      for (std::size_t lr = 0; lr < lrn; ++lr)
        inject[src].push_back(Packet{q, lr * lcn + lc, value});
    }
  });
  NaiveRouter router(cube);
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double v) {
    X.data().tile(dst)[tag] = v;
  });

  // Local products (every virtual processor multiplies its element).
  cube.compute(X.max_block(), X.nrows() * X.ncols(), [&](proc_t q) {
    const std::span<double> xv = X.data().tile(q);
    const std::span<const double> av = A.data().tile(q);
    for (std::size_t t = 0; t < xv.size(); ++t) xv[t] *= av[t];
  });

  // Phase 2: route every product to the Linear owner of its row index.
  DistVector<double> y(grid, A.nrows(), Align::Linear);
  std::vector<std::vector<Packet>> inject2(cube.procs());
  cube.each_proc([&](proc_t q) {
    const std::uint32_t R = grid.prow(q);
    const std::size_t lrn = X.lrows(q), lcn = X.lcols(q);
    const std::span<const double> blk = X.block(q);
    for (std::size_t lr = 0; lr < lrn; ++lr) {
      const std::size_t i = X.rowmap().global(R, lr);
      for (std::size_t lc = 0; lc < lcn; ++lc)
        inject2[q].push_back(
            Packet{v_owner(y, i), y.map().local(i), blk[lr * lcn + lc]});
    }
  });
  router.run(std::move(inject2), [&](proc_t dst, std::uint64_t tag, double v) {
    y.data().tile(dst)[tag] += v;
  });
  return y;
}

}  // namespace vmp
