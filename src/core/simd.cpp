/// \file simd.cpp
/// \brief The one translation unit compiled with wide-vector flags (see
///        src/CMakeLists.txt): AVX2 (-mavx2 -ffp-contract=off), NEON
///        (-ffp-contract=off), or plain scalar when VMP_SIMD=OFF.
///
/// The kernels here must keep the exact per-element expression of the
/// scalar loops in core/kernels.hpp: mul then add (never FMA — hence
/// -ffp-contract=off on this file), Max as compare+blend `a < b ? b : a`,
/// Min as `b < a ? b : a`.  Only the *_relaxed reductions may reassociate,
/// and they do so in the fixed striped-lane order documented in
/// docs/kernels.md.

#include "core/simd.hpp"

#include <cstdlib>
#include <cstring>

#if defined(VMP_SIMD_BACKEND_AVX2)
#include <immintrin.h>
#elif defined(VMP_SIMD_BACKEND_NEON)
#include <arm_neon.h>
#endif

namespace vmp::kern::simd {

namespace {

/// Environment override: VMP_SIMD=0|off|OFF disables the backend at
/// startup (the CMake option of the same name selects what is compiled).
bool env_allows_simd() {
  const char* e = std::getenv("VMP_SIMD");
  if (e == nullptr) return true;
  return !(std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0 ||
           std::strcmp(e, "OFF") == 0);
}

template <class T>
T load_raw(const void* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <class T>
void store_raw(void* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

/// Scalar reference bodies — the OFF backend, and every backend's tail
/// loops.  These mirror core/kernels.hpp expression for expression.
template <class T>
void zip_scalar(T* dst, const T* src, std::size_t i, std::size_t n, Op2 op,
                bool swapped) {
  const auto comb = [op](T a, T b) -> T {
    switch (op) {
      case Op2::add: return a + b;
      case Op2::mul: return a * b;
      case Op2::max: return a < b ? b : a;
      case Op2::min: return b < a ? b : a;
    }
    return a;
  };
  if (swapped) {
    for (; i < n; ++i) dst[i] = comb(src[i], dst[i]);
  } else {
    for (; i < n; ++i) dst[i] = comb(dst[i], src[i]);
  }
}

template <class T>
void zip_into_scalar(const T* a, const T* b, T* out, std::size_t i,
                     std::size_t n, Op2 op) {
  switch (op) {
    case Op2::add:
      for (; i < n; ++i) out[i] = a[i] + b[i];
      break;
    case Op2::mul:
      for (; i < n; ++i) out[i] = a[i] * b[i];
      break;
    case Op2::max:
      for (; i < n; ++i) out[i] = a[i] < b[i] ? b[i] : a[i];
      break;
    case Op2::min:
      for (; i < n; ++i) out[i] = b[i] < a[i] ? b[i] : a[i];
      break;
  }
}

double fold1(double acc, double x, Op2 op) {
  switch (op) {
    case Op2::add: return acc + x;
    case Op2::mul: return acc * x;
    case Op2::max: return acc < x ? x : acc;
    case Op2::min: return x < acc ? x : acc;
  }
  return acc;
}

}  // namespace

namespace detail {
std::atomic<bool> g_enabled{
#if defined(VMP_SIMD_BACKEND_AVX2) || defined(VMP_SIMD_BACKEND_NEON)
    true
#else
    false
#endif
};
}  // namespace detail

namespace {
/// Apply the environment override exactly once, before main() touches the
/// kernels (static init of this TU).
const bool g_env_applied = [] {
  if (!env_allows_simd()) detail::g_enabled.store(false);
  return true;
}();
}  // namespace

bool compiled() {
#if defined(VMP_SIMD_BACKEND_AVX2) || defined(VMP_SIMD_BACKEND_NEON)
  return true;
#else
  return false;
#endif
}

const char* backend() {
#if defined(VMP_SIMD_BACKEND_AVX2)
  return "avx2";
#elif defined(VMP_SIMD_BACKEND_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

std::size_t width_f64() {
#if defined(VMP_SIMD_BACKEND_AVX2)
  return 4;
#elif defined(VMP_SIMD_BACKEND_NEON)
  return 2;
#else
  return 1;
#endif
}

std::size_t width_f32() {
#if defined(VMP_SIMD_BACKEND_AVX2)
  return 8;
#elif defined(VMP_SIMD_BACKEND_NEON)
  return 4;
#else
  return 1;
#endif
}

bool set_enabled(bool on) {
  (void)g_env_applied;
  const bool prev = detail::g_enabled.load();
  detail::g_enabled.store(on && compiled());
  return prev;
}

// ===========================================================================
// AVX2 backend
// ===========================================================================
#if defined(VMP_SIMD_BACKEND_AVX2)

namespace {

/// op(a, b) over 4 f64 lanes with the scalar semantics of Op2 (compare +
/// blend for max/min, so equal-value and NaN cases match `?:` exactly).
inline __m256d comb_pd(__m256d a, __m256d b, Op2 op) {
  switch (op) {
    case Op2::add: return _mm256_add_pd(a, b);
    case Op2::mul: return _mm256_mul_pd(a, b);
    case Op2::max: return _mm256_blendv_pd(a, b, _mm256_cmp_pd(a, b, _CMP_LT_OQ));
    case Op2::min: return _mm256_blendv_pd(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
  }
  return a;
}

inline __m256 comb_ps(__m256 a, __m256 b, Op2 op) {
  switch (op) {
    case Op2::add: return _mm256_add_ps(a, b);
    case Op2::mul: return _mm256_mul_ps(a, b);
    case Op2::max: return _mm256_blendv_ps(a, b, _mm256_cmp_ps(a, b, _CMP_LT_OQ));
    case Op2::min: return _mm256_blendv_ps(a, b, _mm256_cmp_ps(b, a, _CMP_LT_OQ));
  }
  return a;
}

/// Column j of four consecutive rows of a row-major block (stride lcn).
inline __m256d column_pd(const double* row0, std::size_t lcn, std::size_t j) {
  return _mm256_setr_pd(row0[j], row0[lcn + j], row0[2 * lcn + j],
                        row0[3 * lcn + j]);
}

}  // namespace

void fill_f64(double* dst, std::size_t n, double v) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(dst + i, vv);
  for (; i < n; ++i) dst[i] = v;
}

void fill_f32(float* dst, std::size_t n, float v) {
  const __m256 vv = _mm256_set1_ps(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(dst + i, vv);
  for (; i < n; ++i) dst[i] = v;
}

void fill_u64(void* dst, std::size_t n, std::uint64_t bits) {
  char* d = static_cast<char*>(dst);
  const __m256i vv = _mm256_set1_epi64x(static_cast<long long>(bits));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i * 8), vv);
  for (; i < n; ++i) store_raw(d + i * 8, bits);
}

void fill_u32(void* dst, std::size_t n, std::uint32_t bits) {
  char* d = static_cast<char*>(dst);
  const __m256i vv = _mm256_set1_epi32(static_cast<int>(bits));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i * 4), vv);
  for (; i < n; ++i) store_raw(d + i * 4, bits);
}

void zip_f64(double* dst, const double* src, std::size_t n, Op2 op,
             bool swapped) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(dst + i);
    const __m256d s = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, swapped ? comb_pd(s, d, op) : comb_pd(d, s, op));
  }
  zip_scalar(dst, src, i, n, op, swapped);
}

void zip_f32(float* dst, const float* src, std::size_t n, Op2 op,
             bool swapped) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_loadu_ps(dst + i);
    const __m256 s = _mm256_loadu_ps(src + i);
    _mm256_storeu_ps(dst + i, swapped ? comb_ps(s, d, op) : comb_ps(d, s, op));
  }
  zip_scalar(dst, src, i, n, op, swapped);
}

void zip_into_f64(const double* a, const double* b, double* out,
                  std::size_t n, Op2 op) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, comb_pd(_mm256_loadu_pd(a + i),
                                      _mm256_loadu_pd(b + i), op));
  zip_into_scalar(a, b, out, i, n, op);
}

void zip_into_f32(const float* a, const float* b, float* out, std::size_t n,
                  Op2 op) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i, comb_ps(_mm256_loadu_ps(a + i),
                                      _mm256_loadu_ps(b + i), op));
  zip_into_scalar(a, b, out, i, n, op);
}

void axpy_f64(double* y, double a, const double* x, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void axpy_f32(float* y, float a, const float* x, std::size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_f64(double* x, double a, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), av));
  for (; i < n; ++i) x[i] *= a;
}

void scale_f32(float* x, float a, std::size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), av));
  for (; i < n; ++i) x[i] *= a;
}

void fold_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                   double init, double* out, Op2 op) {
  std::size_t r = 0;
  for (; r + 4 <= lrn; r += 4) {
    const double* rows = blk + r * lcn;
    __m256d acc = _mm256_set1_pd(init);
    // Each lane owns one row; combining column vectors in ascending j keeps
    // every row's chain in exact scalar order.
    for (std::size_t j = 0; j < lcn; ++j)
      acc = comb_pd(acc, column_pd(rows, lcn, j), op);
    _mm256_storeu_pd(out + r, acc);
  }
  for (; r < lrn; ++r) {
    double acc = init;
    const double* row = blk + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) acc = fold1(acc, row[j], op);
    out[r] = acc;
  }
}

void dot_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                  const double* x, double* out) {
  std::size_t r = 0;
  for (; r + 4 <= lrn; r += 4) {
    const double* rows = blk + r * lcn;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < lcn; ++j) {
      const __m256d xv = _mm256_broadcast_sd(x + j);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(column_pd(rows, lcn, j), xv));
    }
    _mm256_storeu_pd(out + r, acc);
  }
  for (; r < lrn; ++r) {
    double s = 0.0;
    const double* row = blk + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) s += row[j] * x[j];
    out[r] = s;
  }
}

namespace {
/// Fixed-order horizontal sum: ((l0+l2)+(l1+l3)) via one 128-bit fold then
/// one scalar add — the documented lane-combine order of the relaxed
/// reductions.
inline double hsum_pd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}
}  // namespace

double dot_relaxed_f64(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                      _mm256_loadu_pd(b + i)));
  double s = hsum_pd(acc);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double sum_relaxed_f64(const double* x, std::size_t n, double init) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  double s = init + hsum_pd(acc);
  for (; i < n; ++i) s += x[i];
  return s;
}

void gather64(const void* src, std::size_t stride, void* dst, std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  const std::size_t sb = stride * 8;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const char* p = s + i * sb;
    const __m256i v = _mm256_set_epi64x(
        static_cast<long long>(load_raw<std::uint64_t>(p + 3 * sb)),
        static_cast<long long>(load_raw<std::uint64_t>(p + 2 * sb)),
        static_cast<long long>(load_raw<std::uint64_t>(p + sb)),
        static_cast<long long>(load_raw<std::uint64_t>(p)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i * 8), v);
  }
  for (; i < n; ++i) store_raw(d + i * 8, load_raw<std::uint64_t>(s + i * sb));
}

void gather32(const void* src, std::size_t stride, void* dst, std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  const std::size_t sb = stride * 4;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const char* p = s + i * sb;
    const __m128i v = _mm_set_epi32(
        static_cast<int>(load_raw<std::uint32_t>(p + 3 * sb)),
        static_cast<int>(load_raw<std::uint32_t>(p + 2 * sb)),
        static_cast<int>(load_raw<std::uint32_t>(p + sb)),
        static_cast<int>(load_raw<std::uint32_t>(p)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i * 4), v);
  }
  for (; i < n; ++i) store_raw(d + i * 4, load_raw<std::uint32_t>(s + i * sb));
}

#elif defined(VMP_SIMD_BACKEND_NEON)

// ===========================================================================
// NEON backend (aarch64: 128-bit lanes, 2 f64 / 4 f32)
// ===========================================================================

namespace {

inline float64x2_t comb_pd(float64x2_t a, float64x2_t b, Op2 op) {
  switch (op) {
    case Op2::add: return vaddq_f64(a, b);
    case Op2::mul: return vmulq_f64(a, b);
    case Op2::max: return vbslq_f64(vcltq_f64(a, b), b, a);
    case Op2::min: return vbslq_f64(vcltq_f64(b, a), b, a);
  }
  return a;
}

inline float32x4_t comb_ps(float32x4_t a, float32x4_t b, Op2 op) {
  switch (op) {
    case Op2::add: return vaddq_f32(a, b);
    case Op2::mul: return vmulq_f32(a, b);
    case Op2::max: return vbslq_f32(vcltq_f32(a, b), b, a);
    case Op2::min: return vbslq_f32(vcltq_f32(b, a), b, a);
  }
  return a;
}

inline float64x2_t column_pd(const double* row0, std::size_t lcn,
                             std::size_t j) {
  float64x2_t v = vdupq_n_f64(row0[j]);
  return vsetq_lane_f64(row0[lcn + j], v, 1);
}

}  // namespace

void fill_f64(double* dst, std::size_t n, double v) {
  const float64x2_t vv = vdupq_n_f64(v);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(dst + i, vv);
  for (; i < n; ++i) dst[i] = v;
}

void fill_f32(float* dst, std::size_t n, float v) {
  const float32x4_t vv = vdupq_n_f32(v);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(dst + i, vv);
  for (; i < n; ++i) dst[i] = v;
}

void fill_u64(void* dst, std::size_t n, std::uint64_t bits) {
  char* d = static_cast<char*>(dst);
  const uint64x2_t vv = vdupq_n_u64(bits);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(reinterpret_cast<std::uint64_t*>(d + i * 8), vv);
  for (; i < n; ++i) store_raw(d + i * 8, bits);
}

void fill_u32(void* dst, std::size_t n, std::uint32_t bits) {
  char* d = static_cast<char*>(dst);
  const uint32x4_t vv = vdupq_n_u32(bits);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_u32(reinterpret_cast<std::uint32_t*>(d + i * 4), vv);
  for (; i < n; ++i) store_raw(d + i * 4, bits);
}

void zip_f64(double* dst, const double* src, std::size_t n, Op2 op,
             bool swapped) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vld1q_f64(dst + i);
    const float64x2_t s = vld1q_f64(src + i);
    vst1q_f64(dst + i, swapped ? comb_pd(s, d, op) : comb_pd(d, s, op));
  }
  zip_scalar(dst, src, i, n, op, swapped);
}

void zip_f32(float* dst, const float* src, std::size_t n, Op2 op,
             bool swapped) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vld1q_f32(dst + i);
    const float32x4_t s = vld1q_f32(src + i);
    vst1q_f32(dst + i, swapped ? comb_ps(s, d, op) : comb_ps(d, s, op));
  }
  zip_scalar(dst, src, i, n, op, swapped);
}

void zip_into_f64(const double* a, const double* b, double* out,
                  std::size_t n, Op2 op) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, comb_pd(vld1q_f64(a + i), vld1q_f64(b + i), op));
  zip_into_scalar(a, b, out, i, n, op);
}

void zip_into_f32(const float* a, const float* b, float* out, std::size_t n,
                  Op2 op) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(out + i, comb_ps(vld1q_f32(a + i), vld1q_f32(b + i), op));
  zip_into_scalar(a, b, out, i, n, op);
}

void axpy_f64(double* y, double a, const double* x, std::size_t n) {
  const float64x2_t av = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(av, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void axpy_f32(float* y, float a, const float* x, std::size_t n) {
  const float32x4_t av = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t prod = vmulq_f32(av, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_f64(double* x, double a, std::size_t n) {
  const float64x2_t av = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), av));
  for (; i < n; ++i) x[i] *= a;
}

void scale_f32(float* x, float a, std::size_t n) {
  const float32x4_t av = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), av));
  for (; i < n; ++i) x[i] *= a;
}

void fold_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                   double init, double* out, Op2 op) {
  std::size_t r = 0;
  for (; r + 2 <= lrn; r += 2) {
    const double* rows = blk + r * lcn;
    float64x2_t acc = vdupq_n_f64(init);
    for (std::size_t j = 0; j < lcn; ++j)
      acc = comb_pd(acc, column_pd(rows, lcn, j), op);
    vst1q_f64(out + r, acc);
  }
  for (; r < lrn; ++r) {
    double acc = init;
    const double* row = blk + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) acc = fold1(acc, row[j], op);
    out[r] = acc;
  }
}

void dot_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                  const double* x, double* out) {
  std::size_t r = 0;
  for (; r + 2 <= lrn; r += 2) {
    const double* rows = blk + r * lcn;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t j = 0; j < lcn; ++j) {
      const float64x2_t xv = vdupq_n_f64(x[j]);
      acc = vaddq_f64(acc, vmulq_f64(column_pd(rows, lcn, j), xv));
    }
    vst1q_f64(out + r, acc);
  }
  for (; r < lrn; ++r) {
    double s = 0.0;
    const double* row = blk + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) s += row[j] * x[j];
    out[r] = s;
  }
}

double dot_relaxed_f64(const double* a, const double* b, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    acc = vaddq_f64(acc, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  double s = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double sum_relaxed_f64(const double* x, std::size_t n, double init) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_f64(acc, vld1q_f64(x + i));
  double s = init + (vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1));
  for (; i < n; ++i) s += x[i];
  return s;
}

void gather64(const void* src, std::size_t stride, void* dst, std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  const std::size_t sb = stride * 8;
  for (std::size_t i = 0; i < n; ++i)
    store_raw(d + i * 8, load_raw<std::uint64_t>(s + i * sb));
}

void gather32(const void* src, std::size_t stride, void* dst, std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  const std::size_t sb = stride * 4;
  for (std::size_t i = 0; i < n; ++i)
    store_raw(d + i * 4, load_raw<std::uint32_t>(s + i * sb));
}

#else

// ===========================================================================
// Scalar backend (VMP_SIMD=OFF): reference loops, compiled() == false.
// ===========================================================================

void fill_f64(double* dst, std::size_t n, double v) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = v;
}
void fill_f32(float* dst, std::size_t n, float v) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = v;
}
void fill_u64(void* dst, std::size_t n, std::uint64_t bits) {
  char* d = static_cast<char*>(dst);
  for (std::size_t i = 0; i < n; ++i) store_raw(d + i * 8, bits);
}
void fill_u32(void* dst, std::size_t n, std::uint32_t bits) {
  char* d = static_cast<char*>(dst);
  for (std::size_t i = 0; i < n; ++i) store_raw(d + i * 4, bits);
}

void zip_f64(double* dst, const double* src, std::size_t n, Op2 op,
             bool swapped) {
  zip_scalar(dst, src, 0, n, op, swapped);
}
void zip_f32(float* dst, const float* src, std::size_t n, Op2 op,
             bool swapped) {
  zip_scalar(dst, src, 0, n, op, swapped);
}
void zip_into_f64(const double* a, const double* b, double* out,
                  std::size_t n, Op2 op) {
  zip_into_scalar(a, b, out, 0, n, op);
}
void zip_into_f32(const float* a, const float* b, float* out, std::size_t n,
                  Op2 op) {
  zip_into_scalar(a, b, out, 0, n, op);
}

void axpy_f64(double* y, double a, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}
void axpy_f32(float* y, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}
void scale_f64(double* x, double a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}
void scale_f32(float* x, float a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void fold_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                   double init, double* out, Op2 op) {
  for (std::size_t r = 0; r < lrn; ++r) {
    double acc = init;
    const double* row = blk + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) acc = fold1(acc, row[j], op);
    out[r] = acc;
  }
}

void dot_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                  const double* x, double* out) {
  for (std::size_t r = 0; r < lrn; ++r) {
    double s = 0.0;
    const double* row = blk + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) s += row[j] * x[j];
    out[r] = s;
  }
}

double dot_relaxed_f64(const double* a, const double* b, std::size_t n) {
  // Width 1: the striped-lane order degenerates to the strict chain.
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double sum_relaxed_f64(const double* x, std::size_t n, double init) {
  double s = init;
  for (std::size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

void gather64(const void* src, std::size_t stride, void* dst, std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  for (std::size_t i = 0; i < n; ++i)
    store_raw(d + i * 8, load_raw<std::uint64_t>(s + i * stride * 8));
}

void gather32(const void* src, std::size_t stride, void* dst, std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  for (std::size_t i = 0; i < n; ++i)
    store_raw(d + i * 4, load_raw<std::uint32_t>(s + i * stride * 4));
}

#endif

// Scatter has no pre-AVX-512 instruction; every backend uses the same
// store-side loop (vector loads would not help: the stores dominate).
void scatter64(const void* src, void* dst, std::size_t stride,
               std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  const std::size_t sb = stride * 8;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store_raw(d + i * sb, load_raw<std::uint64_t>(s + i * 8));
    store_raw(d + (i + 1) * sb, load_raw<std::uint64_t>(s + (i + 1) * 8));
    store_raw(d + (i + 2) * sb, load_raw<std::uint64_t>(s + (i + 2) * 8));
    store_raw(d + (i + 3) * sb, load_raw<std::uint64_t>(s + (i + 3) * 8));
  }
  for (; i < n; ++i) store_raw(d + i * sb, load_raw<std::uint64_t>(s + i * 8));
}

void scatter32(const void* src, void* dst, std::size_t stride,
               std::size_t n) {
  const char* s = static_cast<const char*>(src);
  char* d = static_cast<char*>(dst);
  const std::size_t sb = stride * 4;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store_raw(d + i * sb, load_raw<std::uint32_t>(s + i * 4));
    store_raw(d + (i + 1) * sb, load_raw<std::uint32_t>(s + (i + 1) * 4));
    store_raw(d + (i + 2) * sb, load_raw<std::uint32_t>(s + (i + 2) * 4));
    store_raw(d + (i + 3) * sb, load_raw<std::uint32_t>(s + (i + 3) * 4));
  }
  for (; i < n; ++i) store_raw(d + i * sb, load_raw<std::uint32_t>(s + i * 4));
}

}  // namespace vmp::kern::simd
