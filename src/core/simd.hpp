/// \file simd.hpp
/// \brief Portable explicit-SIMD backend for the strided-kernel layer.
///
/// One compiled backend per build, selected at configure time by the
/// `VMP_SIMD` CMake option (AUTO detects the target architecture):
///
///   AVX2    x86-64, 256-bit lanes (4 f64 / 8 f32), simd.cpp compiled with
///           -mavx2 -ffp-contract=off
///   NEON    aarch64, 128-bit lanes (2 f64 / 4 f32), -ffp-contract=off
///   OFF     scalar reference loops only; compiled() reports false
///
/// Only simd.cpp is compiled with wide-vector flags — the rest of the tree
/// stays on the baseline ISA, so enabling SIMD cannot change codegen (and
/// therefore floating-point results) anywhere outside this backend.
///
/// FP-DETERMINISM CONTRACT (see docs/kernels.md):
///
///  * Every entry point here that the default kernel mode dispatches to is
///    bit-identical to the scalar loop it replaces: elementwise kernels
///    (fill/zip/axpy/scale/...) evaluate the same per-element expression
///    with the same operand order and no FMA contraction, and the row-block
///    kernels (fold_rows/dot_rows) vectorize ACROSS rows so each row's
///    combine chain keeps the exact ascending-index scalar association.
///  * The `*_relaxed` reductions (dot_relaxed/sum_relaxed) reassociate into
///    `width_f64()` striped lane accumulators folded in a fixed order —
///    deterministic for a fixed vector width, but NOT bit-identical to the
///    scalar chain.  Kernel callers reach them only through an explicit
///    `kern::Assoc::Relaxed` argument.
///
/// The backend can also be disabled at runtime (per process) so twin tests
/// and benches can compare SIMD-on vs SIMD-off inside one binary:
/// `set_enabled(false)`, or environment `VMP_SIMD=0|off` at startup.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace vmp::kern::simd {

/// Elementwise combine codes the zip/fold dispatchers recognize.  The
/// semantics match comm/ops.hpp exactly, including NaN and signed-zero
/// behavior: Max is `a < b ? b : a`, Min is `b < a ? b : a` (compare +
/// blend, never the machine min/max instruction, whose equal/NaN rules
/// differ).
enum class Op2 : int { add = 0, mul = 1, max = 2, min = 3 };

/// True when a wide backend (AVX2 or NEON) was compiled in.
[[nodiscard]] bool compiled();

/// "avx2", "neon" or "scalar".
[[nodiscard]] const char* backend();

/// Accumulator lanes of the relaxed reductions (and the row-block width):
/// 4/8 for AVX2 f64/f32, 2/4 for NEON, 1/1 for the scalar build.
[[nodiscard]] std::size_t width_f64();
[[nodiscard]] std::size_t width_f32();

namespace detail {
/// Single process-wide switch; false forever when compiled() is false.
/// Out-of-line init (simd.cpp) folds in the VMP_SIMD=0|off environment
/// override; the header keeps the hot-path load inline.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Hot-path gate the kernel dispatchers read once per call.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Toggle the backend at runtime (no-op toward `true` on a scalar build);
/// returns the previous setting.  Used by the SIMD-on/off twin sweeps.
bool set_enabled(bool on);

// --- elementwise kernels (default mode: bit-identical to scalar) ----------

void fill_f64(double* dst, std::size_t n, double v);
void fill_f32(float* dst, std::size_t n, float v);
/// Splat a raw 8/4-byte pattern (kern::fill for any trivially-copyable
/// element of that size routes here through a bit cast).
void fill_u64(void* dst, std::size_t n, std::uint64_t bits);
void fill_u32(void* dst, std::size_t n, std::uint32_t bits);

/// dst[i] = op(dst[i], src[i]); `swapped` evaluates op(src[i], dst[i])
/// instead (the high-rank side of a combining exchange).
void zip_f64(double* dst, const double* src, std::size_t n, Op2 op,
             bool swapped);
void zip_f32(float* dst, const float* src, std::size_t n, Op2 op,
             bool swapped);

/// out[i] = op(a[i], b[i]) into a third range.
void zip_into_f64(const double* a, const double* b, double* out,
                  std::size_t n, Op2 op);
void zip_into_f32(const float* a, const float* b, float* out, std::size_t n,
                  Op2 op);

/// y[i] += a · x[i], evaluated exactly as mul-then-add (no FMA).
void axpy_f64(double* y, double a, const double* x, std::size_t n);
void axpy_f32(float* y, float a, const float* x, std::size_t n);

/// x[i] *= a.
void scale_f64(double* x, double a, std::size_t n);
void scale_f32(float* x, float a, std::size_t n);

// --- row-block kernels (lane-per-row: strict order, still vector) ---------

/// out[r] = op(...op(op(init, blk[r][0]), blk[r][1])...) for each of the
/// lrn rows of a row-major lrn x lcn block: lanes run across rows, each
/// row's chain stays in ascending-column scalar association.
void fold_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                   double init, double* out, Op2 op);

/// out[r] = sum_j blk[r][j] * x[j] with the per-row ascending-j mul-then-add
/// chain of the scalar loop (each lane owns one row).
void dot_rows_f64(const double* blk, std::size_t lrn, std::size_t lcn,
                  const double* x, double* out);

// --- relaxed reductions (opt-in via kern::Assoc::Relaxed) ------------------

/// Striped-lane dot: lane l accumulates elements i with i/W-th chunk lane l
/// (W = width_f64()), lanes folded pairwise in a fixed order, scalar tail
/// added last.  Same input => same bits for a fixed width.
[[nodiscard]] double dot_relaxed_f64(const double* a, const double* b,
                                     std::size_t n);

/// Striped-lane sum with carry-in `init` (same lane order as
/// dot_relaxed_f64).
[[nodiscard]] double sum_relaxed_f64(const double* x, std::size_t n,
                                     double init);

// --- strided data movement -------------------------------------------------

/// dst[i] = src[i * stride] over 8/4-byte elements (type-erased; strides in
/// elements).  Pure data motion, so bit-identity is trivial.
void gather64(const void* src, std::size_t stride, void* dst, std::size_t n);
void gather32(const void* src, std::size_t stride, void* dst, std::size_t n);

/// dst[i * stride] = src[i] over 8/4-byte elements.  (No scatter
/// instruction below AVX-512: the wide backends unroll scalar stores from
/// vector loads.)
void scatter64(const void* src, void* dst, std::size_t stride, std::size_t n);
void scatter32(const void* src, void* dst, std::size_t stride, std::size_t n);

}  // namespace vmp::kern::simd
