/// \file vector_ops.hpp
/// \brief Elementwise, fold and search operations on distributed vectors.
///
/// Elementwise operations are purely local (replicas update identically in
/// lockstep).  Folds and located searches (argmin/argmax) do a local pass
/// plus a one-element all-reduce over the vector's partitioned subcube
/// family, and return a host-visible result — mirroring how the CM front
/// end read back scalars such as pivot values.
#pragma once

#include <cmath>

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "comm/ops.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// v[g] = f(v[g]) for every element; one flop per element.
template <class T, class F>
void vec_apply(DistVector<T>& v, F f) {
  const std::size_t mx = max_local_len(v.grid().cube(), v.data());
  v.grid().cube().compute(mx, v.n(), [&](proc_t q) {
    kern::apply(v.data().tile(q), f);
  });
}

/// v[g] = f(v[g], g) with the global index; one flop per element.
template <class T, class F>
void vec_apply_indexed(DistVector<T>& v, F f) {
  const std::size_t mx = max_local_len(v.grid().cube(), v.data());
  v.grid().cube().compute(mx, v.n(), [&](proc_t q) {
    const std::uint32_t r = v.rank_of(q);
    kern::apply_indexed(v.data().tile(q), v.map().global_begin(r),
                        v.map().global_step(), f);
  });
}

/// a[g] = f(a[g], b[g]); operands must be identically embedded.
template <class T, class F>
void vec_zip(DistVector<T>& a, const DistVector<T>& b, F f) {
  VMP_REQUIRE(a.aligned_with(b), "vec_zip operands must be aligned");
  const std::size_t mx = max_local_len(a.grid().cube(), a.data());
  a.grid().cube().compute(mx, a.n(), [&](proc_t q) {
    kern::zip(a.data().tile(q), b.data().tile(q), f);
  });
}

/// a[g] = f(a[g], b[g], g) with the global index.
template <class T, class F>
void vec_zip_indexed(DistVector<T>& a, const DistVector<T>& b, F f) {
  VMP_REQUIRE(a.aligned_with(b), "vec_zip_indexed operands must be aligned");
  const std::size_t mx = max_local_len(a.grid().cube(), a.data());
  a.grid().cube().compute(mx, a.n(), [&](proc_t q) {
    const std::uint32_t r = a.rank_of(q);
    kern::zip_indexed(a.data().tile(q), b.data().tile(q),
                      a.map().global_begin(r), a.map().global_step(), f);
  });
}

/// y += alpha · x; two flops per element.  Same charge and the same
/// per-element expression (y + alpha·x, mul then add) as the vec_zip lambda
/// it replaced — routed through kern::axpy so the backend can vectorize it.
template <class T>
void vec_axpy(DistVector<T>& y, T alpha, const DistVector<T>& x) {
  VMP_REQUIRE(y.aligned_with(x), "vec_axpy operands must be aligned");
  const std::size_t mx = max_local_len(y.grid().cube(), y.data());
  y.grid().cube().compute(mx, y.n(), [&](proc_t q) {
    kern::axpy(y.data().tile(q), alpha, x.data().tile(q));
  });
}

/// v *= alpha (evaluated x·alpha, as the vec_apply lambda did).
template <class T>
void vec_scale(DistVector<T>& v, T alpha) {
  const std::size_t mx = max_local_len(v.grid().cube(), v.data());
  v.grid().cube().compute(mx, v.n(), [&](proc_t q) {
    kern::scale(v.data().tile(q), alpha);
  });
}

/// v[g] = value for every g in [lo, hi) (other elements untouched).
template <class T>
void vec_fill_range(DistVector<T>& v, std::size_t lo, std::size_t hi,
                    const T& value) {
  VMP_REQUIRE(lo <= hi && hi <= v.n(), "bad fill range");
  vec_apply_indexed(v, [&](const T& x, std::size_t g) {
    return (g >= lo && g < hi) ? value : x;
  });
}

/// Fold all elements to one host-visible scalar.
template <class T, class Op>
[[nodiscard]] T vec_fold(const DistVector<T>& v, Op op) {
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  DistBuffer<T> acc(cube, 1);
  const std::size_t mx = max_local_len(cube, v.data());
  cube.compute(mx, v.n(), [&](proc_t q) {
    acc.tile(q)[0] =
        kern::fold(v.data().tile(q), op.identity(), kern::op_fn(op));
  });
  allreduce(cube, acc, v.partitioned_over(), op);
  return acc.tile(0)[0];
}

/// Dot product of two identically-embedded vectors (local multiply-add,
/// one-element all-reduce).  `assoc` forwards to kern::dot: the default
/// keeps the strict ascending-index chain; `kern::Assoc::Relaxed` opts this
/// call site into the striped fixed-width reduction (see docs/kernels.md).
template <class T>
[[nodiscard]] T dot(const DistVector<T>& a, const DistVector<T>& b,
                    kern::Assoc assoc = kern::Assoc::Strict) {
  VMP_REQUIRE(a.aligned_with(b), "dot operands must be aligned");
  Grid& grid = a.grid();
  Cube& cube = grid.cube();
  DistBuffer<T> acc(cube, 1);
  const std::size_t mx = max_local_len(cube, a.data());
  cube.compute(2 * mx, 2 * a.n(), [&](proc_t q) {
    acc.tile(q)[0] = kern::dot(a.data().tile(q), b.data().tile(q), assoc);
  });
  allreduce(cube, acc, a.partitioned_over(), Plus<T>{});
  return acc.tile(0)[0];
}

/// Locate the element minimizing key(value, g); elements whose key is
/// +infinity are excluded.  Returns {key, index}, index == -1 when every
/// element was excluded.  One local pass plus a one-element all-reduce.
template <class T, class KeyFn>
[[nodiscard]] ValueIndex<double> vec_argmin_key(const DistVector<T>& v,
                                                KeyFn key) {
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  const MinLoc<double> op;
  DistBuffer<ValueIndex<double>> acc(cube, 1);
  const std::size_t mx = max_local_len(cube, v.data());
  cube.compute(mx, v.n(), [&](proc_t q) {
    const std::uint32_t r = v.rank_of(q);
    const std::span<const T> piece = v.piece(q);
    ValueIndex<double> best = op.identity();
    for (std::size_t s = 0; s < piece.size(); ++s) {
      const std::size_t g = v.map().global(r, s);
      const double k = key(piece[s], g);
      if (std::isinf(k) && k > 0) continue;
      best = op.combine(best,
                        ValueIndex<double>{k, static_cast<std::int64_t>(g)});
    }
    acc.tile(q)[0] = best;
  });
  allreduce(cube, acc, v.partitioned_over(), op);
  return acc.tile(0)[0];
}

/// Locate the element maximizing key(value, g); -infinity keys excluded.
template <class T, class KeyFn>
[[nodiscard]] ValueIndex<double> vec_argmax_key(const DistVector<T>& v,
                                                KeyFn key) {
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  const MaxLoc<double> op;
  DistBuffer<ValueIndex<double>> acc(cube, 1);
  const std::size_t mx = max_local_len(cube, v.data());
  cube.compute(mx, v.n(), [&](proc_t q) {
    const std::uint32_t r = v.rank_of(q);
    const std::span<const T> piece = v.piece(q);
    ValueIndex<double> best = op.identity();
    for (std::size_t s = 0; s < piece.size(); ++s) {
      const std::size_t g = v.map().global(r, s);
      const double k = key(piece[s], g);
      if (std::isinf(k) && k < 0) continue;
      best = op.combine(best,
                        ValueIndex<double>{k, static_cast<std::int64_t>(g)});
    }
    acc.tile(q)[0] = best;
  });
  allreduce(cube, acc, v.partitioned_over(), op);
  return acc.tile(0)[0];
}

/// Read one element back to the host, charging one one-element message (the
/// front-end fetch of a pivot value).
template <class T>
[[nodiscard]] T vec_fetch(const DistVector<T>& v, std::size_t g) {
  VMP_REQUIRE(g < v.n(), "index out of range");
  v.grid().cube().clock().charge_comm_step(1, 1, 1);
  return v.at(g);
}

/// Write one element into every replica from the host, charging one
/// one-element message (the front-end storing a computed scalar).
template <class T>
void vec_store(DistVector<T>& v, std::size_t g, const T& value) {
  VMP_REQUIRE(g < v.n(), "index out of range");
  v.grid().cube().clock().charge_comm_step(1, 1, 1);
  v.set(g, value);
}

}  // namespace vmp
