/// \file sparse_primitives.hpp
/// \brief The four primitives over sparse (CSR-tiled) matrices.
///
/// Same contracts, same communication structure, same trace-region names
/// as the dense forms in core/primitives.hpp — only the local work
/// changes: folds and gathers walk stored entries (charged by tile nnz,
/// the sparse counterpart of max_block), and the write forms are
/// PATTERN-PRESERVING: insert_row/col and hadamard touch only stored
/// slots; an unstored slot stays an implicit zero.  That is the contract
/// that keeps the CSR arenas alloc-free in steady state.
///
/// Bit-identity with the densified reference: for op = Plus over finite
/// data, skipping a zero entry is bitwise identical to adding it (adding
/// ±0.0 to a finite accumulator preserves its bits), so sparse
/// reduce(Plus), spmv and spmv_fused agree bit-for-bit with the dense
/// primitives applied to densify() — the property-test suite asserts it.
/// Max/Min folds see a DIFFERENT operand multiset (stored entries only),
/// so they are deliberately not densify-equivalent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/primitives.hpp"
#include "embed/dist_sparse_matrix.hpp"

namespace vmp {

namespace detail {

/// Index of local column slot `lc` in row lr's stored segment, or the
/// segment end if unstored (ascending colind within a row ⇒ binary search).
template <class T>
[[nodiscard]] std::size_t find_in_row(const DistSparseMatrix<T>& A, proc_t q,
                                      std::size_t lr, std::uint32_t lc) {
  const auto rp = A.tile_rowptr(q);
  const auto ci = A.tile_colind(q);
  const auto* b = ci.data() + rp[lr];
  const auto* e = ci.data() + rp[lr + 1];
  const auto* it = std::lower_bound(b, e, lc);
  if (it == e || *it != lc) return static_cast<std::size_t>(rp[lr + 1]);
  return static_cast<std::size_t>(it - ci.data());
}

}  // namespace detail

// ---------------------------------------------------------------------------
// reduce
// ---------------------------------------------------------------------------

/// Fold each row's STORED entries with `op`: out[i] = op-fold over stored
/// j of A[i][j], seeded with op.identity().  Rows-aligned result.
template <class T, class Op>
[[nodiscard]] DistVector<T> reduce_rows(const DistSparseMatrix<T>& A, Op op) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "reduce_rows");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.nrows(), Align::Rows, A.layout().rows);
  cube.compute(A.max_tile_nnz(), A.nnz(), [&](proc_t q) {
    const std::size_t lrn = A.lrows(q);
    kern::fold_sparse(A.tile_rowptr(q), A.tile_vals(q), lrn, op.identity(),
                      out.data().tile(q).first(lrn), kern::op_fn(op));
  });
  allreduce_auto(cube, out.data(), grid.within_row(), op);
  return out;
}

/// Fold each column's STORED entries with `op`.  Cols-aligned result.
template <class T, class Op>
[[nodiscard]] DistVector<T> reduce_cols(const DistSparseMatrix<T>& A, Op op) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "reduce_cols");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.ncols(), Align::Cols, A.layout().cols);
  cube.compute(A.max_tile_nnz(), A.nnz(), [&](proc_t q) {
    const std::span<T> piece = out.data().tile(q);
    kern::fill(piece, op.identity());
    kern::fold_sparse_cols(A.tile_colind(q), A.tile_vals(q), piece,
                           kern::op_fn(op));
  });
  allreduce_auto(cube, out.data(), grid.within_col(), op);
  return out;
}

// ---------------------------------------------------------------------------
// distribute
// ---------------------------------------------------------------------------

/// Replicate v onto A's sparsity pattern: out has A's pattern with
/// out[i][j] = v[j] (Axis::Row, v Cols-aligned) or v[i] (Axis::Col, v
/// Rows-aligned) at every stored (i, j).  The sparse counterpart of dense
/// distribute — the target shape comes from A instead of an extent, since
/// only A's stored slots exist.  Purely local, one gather per entry.
template <class T>
[[nodiscard]] DistSparseMatrix<T> distribute_like(const DistSparseMatrix<T>& A,
                                                  const DistVector<T>& v,
                                                  Axis axis) {
  if (axis == Axis::Row) {
    detail::require_cols_aligned("distribute_like", A, v);
  } else {
    detail::require_rows_aligned("distribute_like", A, v);
  }
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "distribute_like");
  const auto batch = cube.session();
  DistSparseMatrix<T> out(grid, A.nrows(), A.ncols(), A.layout());
  out.reserve_tiles(A.max_tile_nnz());
  cube.compute(A.max_tile_nnz(), A.nnz(), [&](proc_t q) {
    const auto rp = A.tile_rowptr(q);
    const auto ci = A.tile_colind(q);
    const std::span<const T> piece = v.piece(q);
    std::vector<T> vals(ci.size());
    if (axis == Axis::Row) {
      for (std::size_t k = 0; k < ci.size(); ++k) vals[k] = piece[ci[k]];
    } else {
      for (std::size_t lr = 0; lr < A.lrows(q); ++lr)
        for (std::uint32_t k = rp[lr]; k < rp[lr + 1]; ++k)
          vals[k] = piece[lr];
    }
    out.assign_tile(q, rp, ci, vals);
  });
  out.finalize();
  return out;
}

// ---------------------------------------------------------------------------
// extract
// ---------------------------------------------------------------------------

/// Pull row i of A into a DENSE Cols-aligned vector (unstored slots are
/// zero), broadcast from the owner row — same communication as dense
/// extract_row.
template <class T>
[[nodiscard]] DistVector<T> extract_row(const DistSparseMatrix<T>& A,
                                        std::size_t i) {
  detail::require_row_index("extract_row", A, i);
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "extract_row");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.ncols(), Align::Cols, A.layout().cols);
  const std::uint32_t R = A.rowmap().owner(i);
  const std::size_t lr = A.rowmap().local(i);
  const std::size_t max_piece =
      (A.ncols() + grid.pcols() - 1) / grid.pcols();
  cube.compute(max_piece, A.ncols(), [&](proc_t q) {
    if (grid.prow(q) != R) return;
    const std::span<T> piece = out.data().tile(q);
    kern::fill(piece, T{});
    const auto rp = A.tile_rowptr(q);
    const auto ci = A.tile_colind(q);
    const auto va = A.tile_vals(q);
    for (std::uint32_t k = rp[lr]; k < rp[lr + 1]; ++k) piece[ci[k]] = va[k];
  });
  broadcast_auto(cube, out.data(), grid.within_col(), R,
                 [&](proc_t q) { return out.map().size(out.rank_of(q)); });
  return out;
}

/// Pull column j of A into a dense Rows-aligned vector.
template <class T>
[[nodiscard]] DistVector<T> extract_col(const DistSparseMatrix<T>& A,
                                        std::size_t j) {
  detail::require_col_index("extract_col", A, j);
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "extract_col");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.nrows(), Align::Rows, A.layout().rows);
  const std::uint32_t C = A.colmap().owner(j);
  const auto lc = static_cast<std::uint32_t>(A.colmap().local(j));
  const std::size_t max_piece =
      (A.nrows() + grid.prows() - 1) / grid.prows();
  cube.compute(max_piece, A.nrows(), [&](proc_t q) {
    if (grid.pcol(q) != C) return;
    const std::span<T> piece = out.data().tile(q);
    const auto rp = A.tile_rowptr(q);
    const auto va = A.tile_vals(q);
    for (std::size_t lr = 0; lr < A.lrows(q); ++lr) {
      const std::size_t k = detail::find_in_row(A, q, lr, lc);
      piece[lr] = k < rp[lr + 1] ? va[k] : T{};
    }
  });
  broadcast_auto(cube, out.data(), grid.within_row(), C,
                 [&](proc_t q) { return out.map().size(out.rank_of(q)); });
  return out;
}

// ---------------------------------------------------------------------------
// insert (pattern-preserving)
// ---------------------------------------------------------------------------

/// Overwrite row i's STORED entries with the matching elements of a
/// Cols-aligned vector; unstored slots keep their implicit zero.  Purely
/// local, like dense insert_row.
template <class T>
void insert_row(DistSparseMatrix<T>& A, std::size_t i,
                const DistVector<T>& v) {
  detail::require_row_index("insert_row", A, i);
  detail::require_cols_aligned("insert_row", A, v);
  Grid& grid = A.grid();
  VMP_TRACE(grid.cube(), "insert_row");
  const auto batch = grid.cube().session();
  const std::uint32_t R = A.rowmap().owner(i);
  const std::size_t lr = A.rowmap().local(i);
  const std::size_t max_piece =
      (A.ncols() + grid.pcols() - 1) / grid.pcols();
  grid.cube().compute(max_piece, A.ncols(), [&](proc_t q) {
    if (grid.prow(q) != R) return;
    const auto rp = A.tile_rowptr(q);
    const auto ci = A.tile_colind(q);
    const std::span<T> va = A.tile_vals(q);
    const std::span<const T> piece = v.piece(q);
    for (std::uint32_t k = rp[lr]; k < rp[lr + 1]; ++k) va[k] = piece[ci[k]];
  });
}

/// Overwrite column j's STORED entries with the matching elements of a
/// Rows-aligned vector; unstored slots keep their implicit zero.
template <class T>
void insert_col(DistSparseMatrix<T>& A, std::size_t j,
                const DistVector<T>& v) {
  detail::require_col_index("insert_col", A, j);
  detail::require_rows_aligned("insert_col", A, v);
  Grid& grid = A.grid();
  VMP_TRACE(grid.cube(), "insert_col");
  const auto batch = grid.cube().session();
  const std::uint32_t C = A.colmap().owner(j);
  const auto lc = static_cast<std::uint32_t>(A.colmap().local(j));
  const std::size_t max_piece =
      (A.nrows() + grid.prows() - 1) / grid.prows();
  grid.cube().compute(max_piece, A.nrows(), [&](proc_t q) {
    if (grid.pcol(q) != C) return;
    const auto rp = A.tile_rowptr(q);
    const std::span<T> va = A.tile_vals(q);
    const std::span<const T> piece = v.piece(q);
    for (std::size_t lr = 0; lr < A.lrows(q); ++lr) {
      const std::size_t k = detail::find_in_row(A, q, lr, lc);
      if (k < rp[lr + 1]) va[k] = piece[lr];
    }
  });
}

// ---------------------------------------------------------------------------
// elementwise
// ---------------------------------------------------------------------------

/// Elementwise product over a SHARED pattern: A and B must have the same
/// embedding and pattern; out has that pattern with out_k = a_k · b_k.
/// The multiply step of the primitive-composed SpMV.
template <class T>
[[nodiscard]] DistSparseMatrix<T> hadamard(const DistSparseMatrix<T>& A,
                                           const DistSparseMatrix<T>& B) {
  VMP_REQUIRE(A.aligned_with(B), "hadamard operands must be aligned");
  DistSparseMatrix<T> C(A.grid(), A.nrows(), A.ncols(), A.layout());
  C.reserve_tiles(A.max_tile_nnz());
  A.grid().cube().compute(A.max_tile_nnz(), A.nnz(), [&](proc_t q) {
    const auto va = A.tile_vals(q);
    const auto vb = B.tile_vals(q);
    std::vector<T> vals(va.size());
    kern::zip_into(va, vb, std::span<T>(vals), kern::op_fn(Multiply<T>{}));
    C.assign_tile(q, A.tile_rowptr(q), A.tile_colind(q), vals);
  });
  C.finalize();
  return C;
}

// ---------------------------------------------------------------------------
// Axis-generic forms
// ---------------------------------------------------------------------------

template <class T, class Op>
[[nodiscard]] DistVector<T> reduce(const DistSparseMatrix<T>& A, Axis axis,
                                   Op op) {
  return axis == Axis::Row ? reduce_rows(A, op) : reduce_cols(A, op);
}

template <class T>
[[nodiscard]] DistVector<T> extract(const DistSparseMatrix<T>& A, Axis axis,
                                    std::size_t i) {
  return axis == Axis::Row ? extract_row(A, i) : extract_col(A, i);
}

template <class T>
void insert(DistSparseMatrix<T>& A, Axis axis, std::size_t i,
            const DistVector<T>& v) {
  if (axis == Axis::Row) {
    insert_row(A, i, v);
  } else {
    insert_col(A, i, v);
  }
}

}  // namespace vmp
