/// \file transpose.hpp
/// \brief Distributed matrix transposition — the classic stable dimension
///        permutation (Johnsson & Ho, "Algorithms for Matrix Transposition
///        on Boolean n-cube Configured Ensemble Architectures").
///
/// Every element (i, j) moves to the owner of (j, i) in the transposed
/// embedding via one combining dimension-order routing sweep: lg p rounds,
/// each carrying about half of every processor's block.
#pragma once

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "embed/dist_matrix.hpp"

namespace vmp {

/// Bᵀ = A: returns an ncols × nrows matrix with the axis partitions
/// swapped (so a row-cyclic matrix transposes to a column-cyclic one).
template <class T>
[[nodiscard]] DistMatrix<T> transpose(const DistMatrix<T>& A) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  DistMatrix<T> B(grid, A.ncols(), A.nrows(),
                  MatrixLayout{A.layout().cols, A.layout().rows});

  // One team activation for the whole sweep (pack, lg p routing rounds,
  // scatter).
  const auto batch = cube.session();
  DistBuffer<RouteItem<T>> items(cube);
  items.reserve_each(A.max_block());
  cube.each_proc([&](proc_t q) {
    const std::uint32_t R = grid.prow(q), C = grid.pcol(q);
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    const std::span<const T> blk = A.block(q);
    for (std::size_t lr = 0; lr < lrn; ++lr) {
      const std::size_t i = A.rowmap().global(R, lr);
      for (std::size_t lc = 0; lc < lcn; ++lc) {
        const std::size_t j = A.colmap().global(C, lc);
        const proc_t dst = B.owner(j, i);
        const std::size_t slot =
            B.rowmap().local(j) * B.lcols(dst) + B.colmap().local(i);
        items.push_back(q, RouteItem<T>{dst, slot, blk[lr * lcn + lc]});
      }
    }
  });
  route_within(cube, items, grid.whole());
  cube.each_proc([&](proc_t q) {
    kern::scatter_tagged(items.tile(q), B.data().tile(q));
  });
  return B;
}

}  // namespace vmp
