/// \file permute.hpp
/// \brief Element-level data motion on distributed vectors: global shifts
///        (the stencil/offset fetch of relaxation methods) and arbitrary
///        permutations, both through one combining dimension-order routing
///        sweep per call.
#pragma once

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// w[g] = v[g + offset] where g + offset is in range, `fill` elsewhere —
/// the distributed equivalent of a shifted array read.  Replicated
/// embeddings route once per replica subcube family member set (each
/// replica group computes its own copy in lockstep).
template <class T>
[[nodiscard]] DistVector<T> vec_shift(const DistVector<T>& v,
                                      std::ptrdiff_t offset, T fill = T{}) {
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  DistVector<T> out(grid, v.n(), v.align(), v.part());
  cube.each_proc([&](proc_t q) { kern::fill(out.data().tile(q), fill); });

  // Route v[s] to the holder of destination index s - offset (so that
  // out[g] = v[g + offset]).  Every replica of the destination must be
  // fed: emit one item per destination replica, from the canonical source
  // replica (other replicas idle in lockstep, matching the SIMD model).
  DistBuffer<RouteItem<T>> items(cube);
  const SubcubeSet rep = v.replicated_over();
  cube.each_proc([&](proc_t q) {
    if (q != v.canonical_proc(v.rank_of(q))) return;
    const std::uint32_t r = v.rank_of(q);
    const std::span<const T> piece = v.piece(q);
    for (std::size_t s = 0; s < piece.size(); ++s) {
      const std::ptrdiff_t g =
          static_cast<std::ptrdiff_t>(v.map().global(r, s)) - offset;
      if (g < 0 || g >= static_cast<std::ptrdiff_t>(v.n())) continue;
      const std::size_t gu = static_cast<std::size_t>(g);
      const std::uint32_t dst_rank = out.map().owner(gu);
      const proc_t canon = out.canonical_proc(dst_rank);
      for (std::uint32_t rr = 0; rr < rep.size(); ++rr) {
        const proc_t dst =
            rep.k() == 0 ? canon : rep.with_rank(canon, rr);
        items.push_back(q, RouteItem<T>{dst, out.map().local(gu), piece[s]});
      }
    }
  });
  route_within(cube, items, grid.whole());
  cube.each_proc([&](proc_t q) {
    kern::scatter_tagged(items.tile(q), out.data().tile(q));
  });
  return out;
}

/// w[perm[g]] = v[g]: scatter according to a host-known permutation
/// (perm must be a bijection on [0, n); checked).
template <class T>
[[nodiscard]] DistVector<T> vec_permute(const DistVector<T>& v,
                                        std::span<const std::size_t> perm) {
  VMP_REQUIRE(perm.size() == v.n(), "permutation length mismatch");
  {
    std::vector<bool> seen(v.n(), false);
    for (std::size_t p : perm) {
      VMP_REQUIRE(p < v.n() && !seen[p], "perm must be a bijection");
      seen[p] = true;
    }
  }
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  DistVector<T> out(grid, v.n(), v.align(), v.part());
  DistBuffer<RouteItem<T>> items(cube);
  const SubcubeSet rep = v.replicated_over();
  cube.each_proc([&](proc_t q) {
    if (q != v.canonical_proc(v.rank_of(q))) return;
    const std::uint32_t r = v.rank_of(q);
    const std::span<const T> piece = v.piece(q);
    for (std::size_t s = 0; s < piece.size(); ++s) {
      const std::size_t g = perm[v.map().global(r, s)];
      const std::uint32_t dst_rank = out.map().owner(g);
      const proc_t canon = out.canonical_proc(dst_rank);
      for (std::uint32_t rr = 0; rr < rep.size(); ++rr) {
        const proc_t dst = rep.k() == 0 ? canon : rep.with_rank(canon, rr);
        items.push_back(q, RouteItem<T>{dst, out.map().local(g), piece[s]});
      }
    }
  });
  route_within(cube, items, grid.whole());
  cube.each_proc([&](proc_t q) {
    kern::scatter_tagged(items.tile(q), out.data().tile(q));
  });
  return out;
}

}  // namespace vmp
