/// \file scan_ops.hpp
/// \brief Prefix operations on distributed vectors — the scan vocabulary
///        of Blelloch's data-parallel model, built on the subcube prefix
///        collective: local scan of each piece, an exclusive cross-rank
///        scan of the piece totals, then a local offset pass.
///
/// Cost: 2·(n/p)·t_a locally plus lg p one-element rounds — the same
/// anatomy as reduce, and processor-time optimal for n > p·lg p.
///
/// Only Block-partitioned vectors support scans (element order must be
/// contiguous per processor; a Cyclic piece interleaves globally).
#pragma once

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "core/vector_ops.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// Exclusive scan over the elements of v in global index order:
/// out[g] = op(v[0], …, v[g-1]), identity at g = 0.  In place.
template <class T, class Op>
void vec_scan_exclusive(DistVector<T>& v, Op op) {
  VMP_REQUIRE(v.part() == Part::Block,
              "scans need the Block (consecutive) embedding");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  const std::size_t mx = max_local_len(cube, v.data());
  // Local pass, lg p scan rounds, local pass: one team activation.
  const auto batch = cube.session();

  // 1. local: piece totals (one pass) …
  DistBuffer<T> totals(cube, 1);
  cube.compute(mx, v.n(), [&](proc_t q) {
    totals.tile(q)[0] = kern::fold(v.data().tile(q), op.identity(),
                                   [&](const T& a, const T& x) {
                                     return op.combine(a, x);
                                   });
  });
  // 2. … an exclusive scan of the totals across the partition ranks
  //    (replicated subcube families see identical totals, so running the
  //    prefix over the partitioned family is correct for every replica) …
  scan_exclusive(cube, totals, v.partitioned_over(), op);
  // 3. … then a local exclusive scan seeded with the incoming carry.
  cube.compute(mx, v.n(), [&](proc_t q) {
    (void)kern::scan_exclusive(v.data().tile(q), totals.tile(q)[0],
                               [&](const T& a, const T& x) {
                                 return op.combine(a, x);
                               });
  });
}

/// Inclusive scan: out[g] = op(v[0], …, v[g]).  In place.
template <class T, class Op>
void vec_scan_inclusive(DistVector<T>& v, Op op) {
  DistVector<T> orig = v;
  vec_scan_exclusive(v, op);
  vec_zip(v, orig, [&](const T& pre, const T& x) { return op.combine(pre, x); });
}

// ---------------------------------------------------------------------------
// Segmented scan: prefix restarted at every set flag (Blelloch's segmented
// operations, the workhorse of nested data parallelism).
// ---------------------------------------------------------------------------

namespace detail {

/// Element of the segmented-scan lifting: (value, started-a-new-segment).
template <class T>
struct SegPair {
  T value{};
  bool flag = false;
  friend bool operator==(const SegPair&, const SegPair&) = default;
};

/// The classical lifted operator: associative whenever Op is.
template <class T, class Op>
struct SegOp {
  Op op;
  using value_type = SegPair<T>;
  [[nodiscard]] SegPair<T> combine(const SegPair<T>& a,
                                   const SegPair<T>& b) const {
    return SegPair<T>{b.flag ? b.value : op.combine(a.value, b.value),
                      a.flag || b.flag};
  }
  [[nodiscard]] SegPair<T> identity() const {
    return SegPair<T>{op.identity(), false};
  }
};

}  // namespace detail

/// Exclusive segmented scan: flags[g] == true starts a new segment at g;
/// out[g] combines the elements of g's segment strictly before g
/// (identity at each segment head).  `flags` must be aligned with `v`.
template <class T, class Op>
void vec_scan_exclusive_segmented(DistVector<T>& v,
                                  const DistVector<std::uint8_t>& flags,
                                  Op op) {
  VMP_REQUIRE(v.n() == flags.n() && v.part() == flags.part() &&
                  v.align() == flags.align(),
              "flags must be aligned with the data vector");
  VMP_REQUIRE(v.part() == Part::Block,
              "scans need the Block (consecutive) embedding");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  using Pair = detail::SegPair<T>;
  const detail::SegOp<T, Op> seg{op};
  const std::size_t mx = max_local_len(cube, v.data());
  const auto batch = cube.session();

  DistBuffer<Pair> totals(cube, 1);
  cube.compute(2 * mx, 2 * v.n(), [&](proc_t q) {
    Pair acc = seg.identity();
    const std::span<const T> piece = v.data().tile(q);
    const std::span<const std::uint8_t> fl = flags.data().tile(q);
    for (std::size_t s = 0; s < piece.size(); ++s)
      acc = seg.combine(acc, Pair{piece[s], fl[s] != 0});
    totals.tile(q)[0] = acc;
  });
  scan_exclusive(cube, totals, v.partitioned_over(), seg);
  cube.compute(2 * mx, 2 * v.n(), [&](proc_t q) {
    Pair carry = totals.tile(q)[0];
    const std::span<T> piece = v.data().tile(q);
    const std::span<const std::uint8_t> fl = flags.data().tile(q);
    for (std::size_t s = 0; s < piece.size(); ++s) {
      const Pair cur{piece[s], fl[s] != 0};
      // A segment head sees the identity, not the carried prefix.
      piece[s] = cur.flag ? op.identity() : carry.value;
      carry = seg.combine(carry, cur);
    }
  });
}

}  // namespace vmp
