/// \file elementwise.hpp
/// \brief Local (communication-free) elementwise operations on distributed
///        matrices, including the rank-1 update that the paper's Gaussian
///        elimination and simplex algorithms are built around.
#pragma once

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// A[i][j] = f(A[i][j]) for every element; one flop per element.
template <class T, class F>
void mat_apply(DistMatrix<T>& A, F f) {
  A.grid().cube().compute(A.max_block(), A.nrows() * A.ncols(), [&](proc_t q) {
    kern::apply(A.data().tile(q), f);
  });
}

/// A[i][j] = f(A[i][j], i, j) with global indices; one flop per element.
template <class T, class F>
void mat_apply_indexed(DistMatrix<T>& A, F f) {
  Grid& grid = A.grid();
  grid.cube().compute(A.max_block(), A.nrows() * A.ncols(), [&](proc_t q) {
    const std::uint32_t R = grid.prow(q), C = grid.pcol(q);
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    std::span<T> blk = A.block(q);
    const std::size_t c0 = A.colmap().global_begin(C);
    const std::size_t cstep = A.colmap().global_step();
    for (std::size_t lr = 0; lr < lrn; ++lr) {
      const std::size_t i = A.rowmap().global(R, lr);
      kern::apply_indexed(blk.subspan(lr * lcn, lcn), c0, cstep,
                          [&](const T& x, std::size_t j) { return f(x, i, j); });
    }
  });
}

/// A[i][j] = f(A[i][j], B[i][j]); operands must be identically embedded.
template <class T, class F>
void mat_zip(DistMatrix<T>& A, const DistMatrix<T>& B, F f) {
  VMP_REQUIRE(A.aligned_with(B), "mat_zip operands must be aligned");
  A.grid().cube().compute(A.max_block(), A.nrows() * A.ncols(), [&](proc_t q) {
    kern::zip(A.data().tile(q), B.data().tile(q), f);
  });
}

/// Elementwise product C = A ∘ B (the multiply step of the paper's
/// primitive-composed matrix-vector product).
template <class T>
[[nodiscard]] DistMatrix<T> hadamard(const DistMatrix<T>& A,
                                     const DistMatrix<T>& B) {
  VMP_REQUIRE(A.aligned_with(B), "hadamard operands must be aligned");
  DistMatrix<T> C(A.grid(), A.nrows(), A.ncols(), A.layout());
  A.grid().cube().compute(A.max_block(), A.nrows() * A.ncols(), [&](proc_t q) {
    kern::zip_into(A.data().tile(q), B.data().tile(q), C.data().tile(q),
                   kern::op_fn(Multiply<T>{}));
  });
  return C;
}

/// Y += alpha · X; two flops per element.
template <class T>
void mat_axpy(DistMatrix<T>& Y, T alpha, const DistMatrix<T>& X) {
  VMP_REQUIRE(Y.aligned_with(X), "mat_axpy operands must be aligned");
  Y.grid().cube().compute(2 * Y.max_block(), 2 * Y.nrows() * Y.ncols(),
                          [&](proc_t q) {
                            kern::axpy(Y.data().tile(q), alpha,
                                       X.data().tile(q));
                          });
}

/// The rank-1 update A[i][j] += alpha · c[i] · r[j], with c Rows-aligned
/// and r Cols-aligned.  Thanks to the replicated vector embeddings every
/// processor already holds exactly the pieces of c and r its block needs:
/// NO communication, 2·m/p time — the reason the paper's Gaussian
/// elimination and simplex inner loops are processor-time optimal.
template <class T>
void rank1_update(DistMatrix<T>& A, T alpha, const DistVector<T>& c,
                  const DistVector<T>& r) {
  VMP_REQUIRE(c.align() == Align::Rows && c.part() == A.layout().rows &&
                  c.n() == A.nrows(),
              "rank1_update: c must be Rows-aligned with A");
  VMP_REQUIRE(r.align() == Align::Cols && r.part() == A.layout().cols &&
                  r.n() == A.ncols(),
              "rank1_update: r must be Cols-aligned with A");
  A.grid().cube().compute(
      2 * A.max_block(), 2 * A.nrows() * A.ncols(), [&](proc_t q) {
        const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
        std::span<T> blk = A.block(q);
        const std::span<const T> cp = c.piece(q);
        const std::span<const T> rp = r.piece(q);
        for (std::size_t lr = 0; lr < lrn; ++lr)
          kern::axpy(blk.subspan(lr * lcn, lcn), alpha * cp[lr], rp);
      });
}

/// Ranged rank-1 update: A[i][j] += alpha · c[i] · r[j] only for
/// i ≥ row_lo, j ≥ col_lo.  Each processor touches (and is charged for)
/// only its slice of the active window, so with the Cyclic layout the cost
/// shrinks with the window — the load-balance property the paper's
/// Gaussian elimination relies on.  With the Block layout some processors
/// still own the whole window and the charged maximum stays large.
template <class T>
void rank1_update_range(DistMatrix<T>& A, T alpha, const DistVector<T>& c,
                        const DistVector<T>& r, std::size_t row_lo,
                        std::size_t col_lo) {
  VMP_REQUIRE(c.align() == Align::Rows && c.part() == A.layout().rows &&
                  c.n() == A.nrows(),
              "rank1_update_range: c must be Rows-aligned with A");
  VMP_REQUIRE(r.align() == Align::Cols && r.part() == A.layout().cols &&
                  r.n() == A.ncols(),
              "rank1_update_range: r must be Cols-aligned with A");
  Grid& grid = A.grid();
  std::uint64_t max_flops = 0, total_flops = 0;
  grid.cube().each_proc([&](proc_t q) {
    const std::size_t ar =
        A.lrows(q) - A.rowmap().first_local_at_or_after(grid.prow(q), row_lo);
    const std::size_t ac =
        A.lcols(q) - A.colmap().first_local_at_or_after(grid.pcol(q), col_lo);
    const std::uint64_t f = 2ull * ar * ac;
    max_flops = std::max(max_flops, f);
    total_flops += f;
  });
  grid.cube().compute(max_flops, total_flops, [&](proc_t q) {
    const std::size_t lr0 =
        A.rowmap().first_local_at_or_after(grid.prow(q), row_lo);
    const std::size_t lc0 =
        A.colmap().first_local_at_or_after(grid.pcol(q), col_lo);
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    std::span<T> blk = A.block(q);
    const std::span<const T> cp = c.piece(q);
    const std::span<const T> rp = r.piece(q);
    for (std::size_t lr = lr0; lr < lrn; ++lr)
      kern::axpy(blk.subspan(lr * lcn + lc0, lcn - lc0), alpha * cp[lr],
                 rp.subspan(lc0));
  });
}

/// Read one matrix element back to the host, charging one one-element
/// message (the front-end fetch of a diagonal pivot, say).
template <class T>
[[nodiscard]] T mat_fetch(const DistMatrix<T>& A, std::size_t i,
                          std::size_t j) {
  VMP_REQUIRE(i < A.nrows() && j < A.ncols(), "index out of range");
  A.grid().cube().clock().charge_comm_step(1, 1, 1);
  return A.at(i, j);
}

/// Fold every element of A to a single host-visible scalar (local fold,
/// then a one-element all-reduce over the whole cube).
template <class T, class Op>
[[nodiscard]] T mat_fold(const DistMatrix<T>& A, Op op) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  DistBuffer<T> acc(cube, 1);
  cube.compute(A.max_block(), A.nrows() * A.ncols(), [&](proc_t q) {
    acc.tile(q)[0] =
        kern::fold(A.data().tile(q), op.identity(), kern::op_fn(op));
  });
  allreduce(cube, acc, grid.whole(), op);
  return acc.tile(0)[0];
}

}  // namespace vmp
