/// \file kernels.hpp
/// \brief The strided-kernel layer: every local (per-processor) loop in the
///        library funnels through these dozen primitives.
///
/// A simulated processor's local work is one of a handful of shapes — fill,
/// copy, elementwise map/zip, axpy, fold, strided gather/scatter, tag
/// scatter, exclusive scan.  Before this layer each call site hand-rolled
/// its loop; now elementwise.hpp, vector_ops.hpp, scan_ops.hpp, the four
/// primitives and the collectives' pack/unpack all call `vmp::kern`, which
/// gives the compiler one contiguous- or constant-stride loop per shape to
/// vectorise and gives us one place to audit floating-point evaluation
/// order.
///
/// INVARIANT: every kernel evaluates element operations in ascending index
/// order with exactly the same association as the loops it replaced, so
/// results are bit-identical to the pre-slab code.  Simulated charges never
/// originate here — callers charge flops through Cube::compute as before;
/// these are pure host-side loops.
///
/// SIMD: kernels whose element operation the backend recognizes (fixed-size
/// trivially-copyable fills and gathers; float/double zip/axpy/scale with a
/// `kern::op_fn`-wrapped Plus/Multiply/Max/Min; the row-block fold_rows /
/// dot_rows) dispatch to core/simd.hpp when `kern::simd::enabled()`.  Every
/// default-mode dispatch is bit-identical to the scalar loop below it — the
/// backend keeps per-element expressions, operand order and (for the
/// row-block kernels) each row's combine chain exactly as written here.
/// Only `Assoc::Relaxed`, an explicit per-call-site opt-in on fold/dot,
/// permits reassociation, and even then the result is a deterministic
/// function of the input for the compiled vector width (the runtime toggle
/// does not affect it).  See docs/kernels.md.
///
/// Indexed kernels exploit that both embeddings (Block, Cyclic) are affine
/// in the local slot: global = g0 + s·gstep (see AxisMap::global_begin).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "comm/ops.hpp"
#include "core/simd.hpp"

namespace vmp::kern {

/// Floating-point association contract for fold/dot.  Strict (the default)
/// keeps the ascending-index left-fold chain bit-for-bit; Relaxed lets the
/// backend stripe the chain across `simd::width_f64()` lane accumulators
/// folded in a fixed order — same input ⇒ same bits for a given compiled
/// width, but not the scalar chain's bits.
enum class Assoc { Strict, Relaxed };

/// Transparent functor over a comm/ops.hpp reduction op: calls
/// `op.combine(a, b)` and carries the op's type so the kernel dispatchers
/// can recognize the vectorizable ones.  Call sites that used to wrap ops
/// in ad-hoc lambdas (`[&](a, b) { return op.combine(a, b); }`) pass
/// `kern::op_fn(op)` instead — behaviour is identical, recognition is free.
template <class Op>
struct OpFn {
  Op op;
  template <class A, class B>
  [[nodiscard]] auto operator()(const A& a, const B& b) const {
    return op.combine(a, b);
  }
};

template <class Op>
[[nodiscard]] OpFn<Op> op_fn(Op op) {
  return OpFn<Op>{op};
}

namespace detail {

/// Map a comm op type to the backend's combine code.  Only the four
/// arithmetic ops over float/double vectorize; everything else (MinLoc,
/// LogicalAnd, user functors, ...) stays on the scalar loops.
template <class Op>
struct op2_of {
  static constexpr bool known = false;
  using elem = void;
};
template <> struct op2_of<Plus<double>> {
  static constexpr bool known = true;
  using elem = double;
  static constexpr simd::Op2 code = simd::Op2::add;
};
template <> struct op2_of<Multiply<double>> {
  static constexpr bool known = true;
  using elem = double;
  static constexpr simd::Op2 code = simd::Op2::mul;
};
template <> struct op2_of<Max<double>> {
  static constexpr bool known = true;
  using elem = double;
  static constexpr simd::Op2 code = simd::Op2::max;
};
template <> struct op2_of<Min<double>> {
  static constexpr bool known = true;
  using elem = double;
  static constexpr simd::Op2 code = simd::Op2::min;
};
template <> struct op2_of<Plus<float>> {
  static constexpr bool known = true;
  using elem = float;
  static constexpr simd::Op2 code = simd::Op2::add;
};
template <> struct op2_of<Multiply<float>> {
  static constexpr bool known = true;
  using elem = float;
  static constexpr simd::Op2 code = simd::Op2::mul;
};
template <> struct op2_of<Max<float>> {
  static constexpr bool known = true;
  using elem = float;
  static constexpr simd::Op2 code = simd::Op2::max;
};
template <> struct op2_of<Min<float>> {
  static constexpr bool known = true;
  using elem = float;
  static constexpr simd::Op2 code = simd::Op2::min;
};

/// Recognition of an OpFn-wrapped vectorizable op.
template <class F>
struct fn_op2 {
  static constexpr bool known = false;
  using elem = void;
};
template <class Op>
struct fn_op2<OpFn<Op>> : op2_of<Op> {};

/// True when functor F is a recognized op over exactly the element type of
/// every span involved.
template <class F, class... Ts>
inline constexpr bool vectorizable =
    fn_op2<std::decay_t<F>>::known &&
    (std::is_same_v<std::remove_cv_t<Ts>,
                    typename fn_op2<std::decay_t<F>>::elem> &&
     ...);

template <class F>
inline constexpr simd::Op2 op2_code = fn_op2<std::decay_t<F>>::code;

/// Fixed-size trivially-copyable elements move through the type-erased
/// 8/4-byte backend entry points.
template <class T>
inline constexpr bool word64 =
    std::is_trivially_copyable_v<std::remove_cv_t<T>> && sizeof(T) == 8;
template <class T>
inline constexpr bool word32 =
    std::is_trivially_copyable_v<std::remove_cv_t<T>> && sizeof(T) == 4;

template <class T>
std::uint64_t bits64(const T& v) {
  std::uint64_t b;
  std::memcpy(&b, &v, 8);
  return b;
}
template <class T>
std::uint32_t bits32(const T& v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  return b;
}

}  // namespace detail

/// dst[i] = v for all i.
template <typename T>
void fill(std::span<T> dst, const T& v) {
  if constexpr (detail::word64<T>) {
    if (simd::enabled()) {
      simd::fill_u64(dst.data(), dst.size(), detail::bits64(v));
      return;
    }
  } else if constexpr (detail::word32<T>) {
    if (simd::enabled()) {
      simd::fill_u32(dst.data(), dst.size(), detail::bits32(v));
      return;
    }
  }
  for (T& x : dst) x = v;
}

/// dst[i] = src[i]; ranges may overlap (memmove semantics) so the slab's
/// in-arena shifts (prepend/append) can reuse it.
template <typename U, typename T>
void copy(std::span<U> src, std::span<T> dst) {
  static_assert(std::is_same_v<std::remove_const_t<U>, T>,
                "copy spans must have the same element type");
  if (src.empty()) return;
  if constexpr (std::is_trivially_copyable_v<T>) {
    std::memmove(dst.data(), src.data(), src.size() * sizeof(T));
  } else {
    if (dst.data() <= src.data()) {
      for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
    } else {
      for (std::size_t i = src.size(); i-- > 0;) dst[i] = src[i];
    }
  }
}

/// x[i] = f(x[i]) in place.
template <typename T, typename F>
void apply(std::span<T> x, F&& f) {
  for (T& v : x) v = f(v);
}

/// x[s] = f(x[s], g0 + s·gstep): in-place map that also sees the element's
/// global index, reconstructed from the affine (base, step) of the axis map.
template <typename T, typename F>
void apply_indexed(std::span<T> x, std::size_t g0, std::size_t gstep, F&& f) {
  std::size_t g = g0;
  for (T& v : x) {
    v = f(v, g);
    g += gstep;
  }
}

/// dst[i] = f(dst[i], src[i]).
template <typename T, typename U, typename F>
void zip(std::span<T> dst, std::span<U> src, F&& f) {
  if constexpr (detail::vectorizable<F, T, U>) {
    if (simd::enabled()) {
      if constexpr (std::is_same_v<T, double>) {
        simd::zip_f64(dst.data(), src.data(), dst.size(),
                      detail::op2_code<F>, /*swapped=*/false);
      } else {
        simd::zip_f32(dst.data(), src.data(), dst.size(),
                      detail::op2_code<F>, /*swapped=*/false);
      }
      return;
    }
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = f(dst[i], src[i]);
}

/// dst[i] = f(src[i], dst[i]) — same shape as zip with the operand order
/// flipped.  The combining collectives need this on the high-rank side,
/// where the remote contribution is the op's left argument (order matters
/// for Max/Min on equal values and signed zeros).
template <typename T, typename U, typename F>
void zip_swapped(std::span<T> dst, std::span<U> src, F&& f) {
  if constexpr (detail::vectorizable<F, T, U>) {
    if (simd::enabled()) {
      if constexpr (std::is_same_v<T, double>) {
        simd::zip_f64(dst.data(), src.data(), dst.size(),
                      detail::op2_code<F>, /*swapped=*/true);
      } else {
        simd::zip_f32(dst.data(), src.data(), dst.size(),
                      detail::op2_code<F>, /*swapped=*/true);
      }
      return;
    }
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = f(src[i], dst[i]);
}

/// out[i] = f(a[i], b[i]) into a third range.
template <typename U, typename V, typename T, typename F>
void zip_into(std::span<U> a, std::span<V> b, std::span<T> out,
              F&& f) {
  if constexpr (detail::vectorizable<F, U, V, T>) {
    if (simd::enabled()) {
      if constexpr (std::is_same_v<T, double>) {
        simd::zip_into_f64(a.data(), b.data(), out.data(), out.size(),
                           detail::op2_code<F>);
      } else {
        simd::zip_into_f32(a.data(), b.data(), out.data(), out.size(),
                           detail::op2_code<F>);
      }
      return;
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = f(a[i], b[i]);
}

/// dst[s] = f(dst[s], src[s], g0 + s·gstep).
template <typename T, typename U, typename F>
void zip_indexed(std::span<T> dst, std::span<U> src, std::size_t g0,
                 std::size_t gstep, F&& f) {
  std::size_t g = g0;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = f(dst[i], src[i], g);
    g += gstep;
  }
}

/// y[i] += a · x[i] — the rank-1 update's row kernel.
template <typename T, typename U>
void axpy(std::span<T> y, const T& a, std::span<U> x) {
  if constexpr (std::is_same_v<T, double> &&
                std::is_same_v<std::remove_cv_t<U>, double>) {
    if (simd::enabled()) {
      simd::axpy_f64(y.data(), a, x.data(), y.size());
      return;
    }
  } else if constexpr (std::is_same_v<T, float> &&
                       std::is_same_v<std::remove_cv_t<U>, float>) {
    if (simd::enabled()) {
      simd::axpy_f32(y.data(), a, x.data(), y.size());
      return;
    }
  }
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

/// x[i] *= a.
template <typename T>
void scale(std::span<T> x, const T& a) {
  if constexpr (std::is_same_v<T, double>) {
    if (simd::enabled()) {
      simd::scale_f64(x.data(), a, x.size());
      return;
    }
  } else if constexpr (std::is_same_v<T, float>) {
    if (simd::enabled()) {
      simd::scale_f32(x.data(), a, x.size());
      return;
    }
  }
  for (T& v : x) v *= a;
}

/// Left fold in ascending index order: combine(...combine(init, x[0])...).
///
/// `Assoc::Relaxed` is a per-call-site opt-in that only changes behaviour
/// for a Plus<double> fold: the backend stripes the chain across its
/// compiled lane count regardless of the runtime toggle, so the relaxed
/// result is a fixed function of the input for a given build.  Every other
/// (op, type) combination folds strictly even when Relaxed is requested.
template <typename U, typename Acc, typename F>
[[nodiscard]] Acc fold(std::span<U> x, Acc init, F&& combine,
                       Assoc assoc = Assoc::Strict) {
  if constexpr (detail::vectorizable<F, U> &&
                std::is_same_v<Acc, double> &&
                std::is_same_v<std::remove_cv_t<U>, double>) {
    if (assoc == Assoc::Relaxed &&
        detail::op2_code<F> == simd::Op2::add) {
      return simd::sum_relaxed_f64(x.data(), x.size(), init);
    }
  }
  (void)assoc;
  Acc acc = init;
  for (const auto& v : x) acc = combine(acc, v);
  return acc;
}

/// Ascending-order dot product: sum += a[i] · b[i].  `Assoc::Relaxed`
/// (double only) stripes the accumulation across the compiled lane count —
/// deterministic per build, independent of the runtime toggle.
template <typename U, typename V>
[[nodiscard]] std::remove_const_t<U> dot(std::span<U> a, std::span<V> b,
                                         Assoc assoc = Assoc::Strict) {
  if constexpr (std::is_same_v<std::remove_cv_t<U>, double> &&
                std::is_same_v<std::remove_cv_t<V>, double>) {
    if (assoc == Assoc::Relaxed) {
      return simd::dot_relaxed_f64(a.data(), b.data(), a.size());
    }
  }
  (void)assoc;
  std::remove_const_t<U> s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Row-block left fold: out[r] = fold(row r, init, combine) over the lrn
/// rows of a row-major lrn×lcn block.  Same per-row association as calling
/// `fold` row by row — the backend vectorizes ACROSS rows (one lane per
/// row, columns in ascending order), so the vector path is bit-identical.
template <typename U, typename Acc, typename F>
void fold_rows(std::span<U> blk, std::size_t lrn, std::size_t lcn,
               Acc init, std::span<Acc> out, F&& combine) {
  if constexpr (detail::vectorizable<F, U> && std::is_same_v<Acc, double> &&
                std::is_same_v<std::remove_cv_t<U>, double>) {
    if (simd::enabled()) {
      simd::fold_rows_f64(blk.data(), lrn, lcn, init, out.data(),
                          detail::op2_code<F>);
      return;
    }
  }
  for (std::size_t r = 0; r < lrn; ++r) {
    Acc acc = init;
    const U* row = blk.data() + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) acc = combine(acc, row[j]);
    out[r] = acc;
  }
}

/// Row-block dot: out[r] = Σ_j blk[r][j] · x[j], each row's chain in
/// ascending-j mul-then-add order (the matvec_fused inner loop).  The
/// backend's lane-per-row layout keeps it bit-identical to the scalar loop.
template <typename U, typename V, typename T>
void dot_rows(std::span<U> blk, std::size_t lrn, std::size_t lcn,
              std::span<V> x, std::span<T> out) {
  if constexpr (std::is_same_v<std::remove_cv_t<U>, double> &&
                std::is_same_v<std::remove_cv_t<V>, double> &&
                std::is_same_v<T, double>) {
    if (simd::enabled()) {
      simd::dot_rows_f64(blk.data(), lrn, lcn, x.data(), out.data());
      return;
    }
  }
  for (std::size_t r = 0; r < lrn; ++r) {
    T s{};
    const U* row = blk.data() + r * lcn;
    for (std::size_t j = 0; j < lcn; ++j) s += row[j] * x[j];
    out[r] = s;
  }
}

/// CSR per-row fold: out[r] = combine(... combine(init, vals[b]) ..., the
/// row's stored values in ascending stored (= ascending column) order,
/// rows r = 0..lrn-1 with vals segmented by rowptr.  The sparse analogue
/// of fold_rows: skipping unstored slots is the only difference, so for
/// Plus over finite data the result is bit-identical to the dense fold of
/// the densified tile (adding ±0.0 to a finite accumulator preserves its
/// bits).  Gather-bound with data-dependent trip counts — stays a scalar
/// loop on every backend.
template <typename U, typename Acc, typename F>
void fold_sparse(std::span<const std::uint32_t> rowptr, std::span<U> vals,
                 std::size_t lrn, Acc init, std::span<Acc> out, F&& combine) {
  for (std::size_t r = 0; r < lrn; ++r) {
    Acc acc = init;
    for (std::uint32_t k = rowptr[r]; k < rowptr[r + 1]; ++k)
      acc = combine(acc, vals[k]);
    out[r] = acc;
  }
}

/// CSR column fold: out[colind[k]] = combine(out[colind[k]], vals[k]) for
/// k ascending over ALL stored entries.  Because colind is ascending within
/// each row and rows are visited top to bottom, each output column sees its
/// entries in ascending-row order — the same association as the dense
/// column fold restricted to stored slots.  `out` must be pre-seeded with
/// the fold identity.  Scalar on every backend (indexed scatter-accumulate).
template <typename U, typename Acc, typename F>
void fold_sparse_cols(std::span<const std::uint32_t> colind, std::span<U> vals,
                      std::span<Acc> out, F&& combine) {
  for (std::size_t k = 0; k < vals.size(); ++k)
    out[colind[k]] = combine(out[colind[k]], vals[k]);
}

/// CSR row-block dot: out[r] = Σ_k vals[k] · x[colind[k]] over row r's
/// stored entries in ascending stored order — the spmv_fused inner loop,
/// sparse analogue of dot_rows.  For finite data the skipped terms of the
/// dense chain are 0.0 · x[j] = ±0.0, which leave a finite accumulator's
/// bits unchanged, so this is bit-identical to dot_rows on the densified
/// tile.  Gather-bound; scalar on every backend.
template <typename U, typename V, typename T>
void dot_sparse(std::span<const std::uint32_t> rowptr,
                std::span<const std::uint32_t> colind, std::span<U> vals,
                std::size_t lrn, std::span<V> x, std::span<T> out) {
  for (std::size_t r = 0; r < lrn; ++r) {
    T s{};
    for (std::uint32_t k = rowptr[r]; k < rowptr[r + 1]; ++k)
      s += vals[k] * x[colind[k]];
    out[r] = s;
  }
}

/// dst[i] = src[i · stride] — e.g. extracting one matrix column from a
/// row-major tile (stride = local row width).
template <typename T>
void gather_strided(const T* src, std::size_t stride, std::span<T> dst) {
  if constexpr (detail::word64<T>) {
    if (simd::enabled()) {
      simd::gather64(src, stride, dst.data(), dst.size());
      return;
    }
  } else if constexpr (detail::word32<T>) {
    if (simd::enabled()) {
      simd::gather32(src, stride, dst.data(), dst.size());
      return;
    }
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i * stride];
}

/// dst[i · stride] = src[i] — the inverse of gather_strided.
template <typename U, typename T>
void scatter_strided(std::span<U> src, T* dst, std::size_t stride) {
  static_assert(std::is_same_v<std::remove_const_t<U>, T>,
                "scatter spans must have the same element type");
  if constexpr (detail::word64<T>) {
    if (simd::enabled()) {
      simd::scatter64(src.data(), dst, stride, src.size());
      return;
    }
  } else if constexpr (detail::word32<T>) {
    if (simd::enabled()) {
      simd::scatter32(src.data(), dst, stride, src.size());
      return;
    }
  }
  for (std::size_t i = 0; i < src.size(); ++i) dst[i * stride] = src[i];
}

/// dst[items[i].tag] = items[i].value — the routed-message unpack shared by
/// transpose, swap, permute, sort and binary shift.  Item is any type with
/// `.tag` and `.value` members (comm/route.hpp's RouteItem).  Tags are a
/// permutation with no exploitable stride, so this stays a scalar loop on
/// every backend.
template <typename Item, typename T>
void scatter_tagged(std::span<Item> items, std::span<T> dst) {
  for (const Item& it : items) dst[it.tag] = it.value;
}

/// In-place exclusive scan with carry-in; returns the carry-out
/// (combine-fold of carry and every element).  Evaluation order matches
/// scan_ops.hpp's original per-piece loop exactly:
///   next = combine(acc, x); x = acc; acc = next.
template <typename T, typename F>
[[nodiscard]] T scan_exclusive(std::span<T> x, T carry, F&& combine) {
  T acc = carry;
  for (T& v : x) {
    const T next = combine(acc, v);
    v = acc;
    acc = next;
  }
  return acc;
}

}  // namespace vmp::kern
