/// \file kernels.hpp
/// \brief The strided-kernel layer: every local (per-processor) loop in the
///        library funnels through these dozen primitives.
///
/// A simulated processor's local work is one of a handful of shapes — fill,
/// copy, elementwise map/zip, axpy, fold, strided gather/scatter, tag
/// scatter, exclusive scan.  Before this layer each call site hand-rolled
/// its loop; now elementwise.hpp, vector_ops.hpp, scan_ops.hpp, the four
/// primitives and the collectives' pack/unpack all call `vmp::kern`, which
/// gives the compiler one contiguous- or constant-stride loop per shape to
/// vectorise and gives us one place to audit floating-point evaluation
/// order.
///
/// INVARIANT: every kernel evaluates element operations in ascending index
/// order with exactly the same association as the loops it replaced, so
/// results are bit-identical to the pre-slab code.  Simulated charges never
/// originate here — callers charge flops through Cube::compute as before;
/// these are pure host-side loops.
///
/// Indexed kernels exploit that both embeddings (Block, Cyclic) are affine
/// in the local slot: global = g0 + s·gstep (see AxisMap::global_begin).
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>

namespace vmp::kern {

/// dst[i] = v for all i.
template <typename T>
void fill(std::span<T> dst, const T& v) {
  for (T& x : dst) x = v;
}

/// dst[i] = src[i]; ranges may overlap (memmove semantics) so the slab's
/// in-arena shifts (prepend/append) can reuse it.
template <typename U, typename T>
void copy(std::span<U> src, std::span<T> dst) {
  static_assert(std::is_same_v<std::remove_const_t<U>, T>,
                "copy spans must have the same element type");
  if (src.empty()) return;
  if constexpr (std::is_trivially_copyable_v<T>) {
    std::memmove(dst.data(), src.data(), src.size() * sizeof(T));
  } else {
    if (dst.data() <= src.data()) {
      for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
    } else {
      for (std::size_t i = src.size(); i-- > 0;) dst[i] = src[i];
    }
  }
}

/// x[i] = f(x[i]) in place.
template <typename T, typename F>
void apply(std::span<T> x, F&& f) {
  for (T& v : x) v = f(v);
}

/// x[s] = f(x[s], g0 + s·gstep): in-place map that also sees the element's
/// global index, reconstructed from the affine (base, step) of the axis map.
template <typename T, typename F>
void apply_indexed(std::span<T> x, std::size_t g0, std::size_t gstep, F&& f) {
  std::size_t g = g0;
  for (T& v : x) {
    v = f(v, g);
    g += gstep;
  }
}

/// dst[i] = f(dst[i], src[i]).
template <typename T, typename U, typename F>
void zip(std::span<T> dst, std::span<U> src, F&& f) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = f(dst[i], src[i]);
}

/// out[i] = f(a[i], b[i]) into a third range.
template <typename U, typename V, typename T, typename F>
void zip_into(std::span<U> a, std::span<V> b, std::span<T> out,
              F&& f) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = f(a[i], b[i]);
}

/// dst[s] = f(dst[s], src[s], g0 + s·gstep).
template <typename T, typename U, typename F>
void zip_indexed(std::span<T> dst, std::span<U> src, std::size_t g0,
                 std::size_t gstep, F&& f) {
  std::size_t g = g0;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = f(dst[i], src[i], g);
    g += gstep;
  }
}

/// y[i] += a · x[i] — the rank-1 update's row kernel.
template <typename T, typename U>
void axpy(std::span<T> y, const T& a, std::span<U> x) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

/// x[i] *= a.
template <typename T>
void scale(std::span<T> x, const T& a) {
  for (T& v : x) v *= a;
}

/// Left fold in ascending index order: combine(...combine(init, x[0])...).
template <typename U, typename Acc, typename F>
[[nodiscard]] Acc fold(std::span<U> x, Acc init, F&& combine) {
  Acc acc = init;
  for (const auto& v : x) acc = combine(acc, v);
  return acc;
}

/// Ascending-order dot product: sum += a[i] · b[i].
template <typename U, typename V>
[[nodiscard]] std::remove_const_t<U> dot(std::span<U> a, std::span<V> b) {
  std::remove_const_t<U> s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// dst[i] = src[i · stride] — e.g. extracting one matrix column from a
/// row-major tile (stride = local row width).
template <typename T>
void gather_strided(const T* src, std::size_t stride, std::span<T> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i * stride];
}

/// dst[i · stride] = src[i] — the inverse of gather_strided.
template <typename U, typename T>
void scatter_strided(std::span<U> src, T* dst, std::size_t stride) {
  for (std::size_t i = 0; i < src.size(); ++i) dst[i * stride] = src[i];
}

/// dst[items[i].tag] = items[i].value — the routed-message unpack shared by
/// transpose, swap, permute, sort and binary shift.  Item is any type with
/// `.tag` and `.value` members (comm/route.hpp's RouteItem).
template <typename Item, typename T>
void scatter_tagged(std::span<Item> items, std::span<T> dst) {
  for (const Item& it : items) dst[it.tag] = it.value;
}

/// In-place exclusive scan with carry-in; returns the carry-out
/// (combine-fold of carry and every element).  Evaluation order matches
/// scan_ops.hpp's original per-piece loop exactly:
///   next = combine(acc, x); x = acc; acc = next.
template <typename T, typename F>
[[nodiscard]] T scan_exclusive(std::span<T> x, T carry, F&& combine) {
  T acc = carry;
  for (T& v : x) {
    const T next = combine(acc, v);
    v = acc;
    acc = next;
  }
  return acc;
}

}  // namespace vmp::kern
