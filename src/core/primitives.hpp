/// \file primitives.hpp
/// \brief The paper's four vector-matrix primitives: extract, insert,
///        distribute, reduce — each in a row and a column form.
///
/// Semantics (A is nrows × ncols):
///
///   reduce_rows(A, op)[i]  = op-fold over j of A[i][j]      → Rows vector
///   reduce_cols(A, op)[j]  = op-fold over i of A[i][j]      → Cols vector
///   distribute_rows(v, m)[i][j] = v[j]  (v is a Cols vector, m result rows)
///   distribute_cols(v, n)[i][j] = v[i]  (v is a Rows vector, n result cols)
///   extract_row(A, i)[j]   = A[i][j]                        → Cols vector
///   extract_col(A, j)[i]   = A[i][j]                        → Rows vector
///   insert_row(A, i, v):     A[i][j] = v[j]  (v a Cols vector)
///   insert_col(A, j, v):     A[i][j] = v[i]  (v a Rows vector)
///
/// Implementation costs on a 2^gr × 2^gc grid with p = 2^(gr+gc) and
/// m = nrows·ncols elements (one-port model, per call):
///
///   reduce      m/p · t_a  +  allreduce over the fold axis' subcubes
///               (≈ 2·gr·τ + O(n/Pc)·t_c via reduce-scatter/all-gather)
///   distribute  m/p · t_a, NO communication — the replicated embedding of
///               the input vector already holds every needed copy
///   extract     ⌈n/Pc⌉·t_a + broadcast over gr dims (root = owner row)
///   insert      ⌈n/Pc⌉·t_a, NO communication (replicas write in place)
///
/// For m > p·lg p the m/p arithmetic term dominates every τ·lg p term, so
/// processor-time is within a constant factor of the serial fold — the
/// paper's optimality claim, asserted in the property-test suite.
///
/// All forms REQUIRE correctly-embedded operands (alignment, partition kind
/// and length must match); use vmp::realign to convert — the conversion is
/// the "embedding change" the paper prices explicitly.  Violations throw
/// vmp::ShapeError (extents / index ranges) or vmp::AlignError (embedding
/// mismatches), both rooted at vmp::ContractError — see hypercube/check.hpp.
///
/// Each primitive also has an axis-generic spelling (the preferred API):
///
///   extract(A, Axis::Row, i)        == extract_row(A, i)
///   insert(A, Axis::Col, j, v)      == insert_col(A, j, v)
///   reduce(A, Axis::Row, op)        == reduce_rows(A, op)
///   distribute(v, Axis::Col, n)     == distribute_cols(v, n)
///
/// The named forms remain as documented aliases; both spellings are the
/// same functions underneath and are bit-identical in results, charges and
/// event traces.
#pragma once

#include <string>

#include "comm/collectives.hpp"
#include "comm/ops.hpp"
#include "core/kernels.hpp"
#include "obs/trace.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"

namespace vmp {

/// Which matrix axis a primitive addresses: Axis::Row names the row forms
/// (extract_row, insert_row, reduce_rows, distribute_rows), Axis::Col the
/// column forms.
enum class Axis { Row, Col };

namespace detail {

// The contract helpers are templated over the matrix storage (dense
// DistMatrix or sparse DistSparseMatrix) — they touch only the shared
// embedding surface: nrows/ncols, grid, layout.

template <class Mat>
[[nodiscard]] std::string shape_of(const Mat& A) {
  return std::to_string(A.nrows()) + "x" + std::to_string(A.ncols());
}

template <class Mat, class T>
void require_cols_aligned(const char* primitive, const Mat& A,
                          const DistVector<T>& v) {
  VMP_REQUIRE_ALIGN(&A.grid() == &v.grid(), primitive,
                    "operands live on different grids");
  VMP_REQUIRE_ALIGN(v.align() == Align::Cols, primitive,
                    "vector must be Cols-aligned");
  VMP_REQUIRE_ALIGN(v.part() == A.layout().cols, primitive,
                    "vector partition kind must match the matrix column axis");
  VMP_REQUIRE_SHAPE(v.n() == A.ncols(), primitive,
                    "vector length must equal ncols (A is " + shape_of(A) +
                        ", v has n=" + std::to_string(v.n()) + ")");
}

template <class Mat, class T>
void require_rows_aligned(const char* primitive, const Mat& A,
                          const DistVector<T>& v) {
  VMP_REQUIRE_ALIGN(&A.grid() == &v.grid(), primitive,
                    "operands live on different grids");
  VMP_REQUIRE_ALIGN(v.align() == Align::Rows, primitive,
                    "vector must be Rows-aligned");
  VMP_REQUIRE_ALIGN(v.part() == A.layout().rows, primitive,
                    "vector partition kind must match the matrix row axis");
  VMP_REQUIRE_SHAPE(v.n() == A.nrows(), primitive,
                    "vector length must equal nrows (A is " + shape_of(A) +
                        ", v has n=" + std::to_string(v.n()) + ")");
}

template <class Mat>
void require_row_index(const char* primitive, const Mat& A, std::size_t i) {
  VMP_REQUIRE_SHAPE(i < A.nrows(), primitive,
                    "row index " + std::to_string(i) +
                        " out of range (A is " + shape_of(A) + ")");
}

template <class Mat>
void require_col_index(const char* primitive, const Mat& A, std::size_t j) {
  VMP_REQUIRE_SHAPE(j < A.ncols(), primitive,
                    "column index " + std::to_string(j) +
                        " out of range (A is " + shape_of(A) + ")");
}

}  // namespace detail

// ---------------------------------------------------------------------------
// reduce
// ---------------------------------------------------------------------------

/// Fold each row of A with `op`: out[i] = op(A[i][0], ..., A[i][ncols-1]).
/// Result is Rows-aligned (partitioned like A's rows, replicated across
/// grid columns).
template <class T, class Op>
[[nodiscard]] DistVector<T> reduce_rows(const DistMatrix<T>& A, Op op) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "reduce_rows");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.nrows(), Align::Rows, A.layout().rows);
  cube.compute(A.max_block(), A.nrows() * A.ncols(), [&](proc_t q) {
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    const std::span<const T> blk = A.block(q);
    const std::span<T> piece = out.data().tile(q);
    kern::fold_rows(blk.first(lrn * lcn), lrn, lcn, op.identity(),
                    piece.first(lrn), kern::op_fn(op));
  });
  allreduce_auto(cube, out.data(), grid.within_row(), op);
  return out;
}

/// Fold each column of A with `op`: out[j] = op(A[0][j], ..., A[nrows-1][j]).
/// Result is Cols-aligned.
template <class T, class Op>
[[nodiscard]] DistVector<T> reduce_cols(const DistMatrix<T>& A, Op op) {
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "reduce_cols");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.ncols(), Align::Cols, A.layout().cols);
  cube.compute(A.max_block(), A.nrows() * A.ncols(), [&](proc_t q) {
    const std::size_t lrn = A.lrows(q), lcn = A.lcols(q);
    const std::span<const T> blk = A.block(q);
    const std::span<T> piece = out.data().tile(q);
    kern::fill(piece, op.identity());
    for (std::size_t lr = 0; lr < lrn; ++lr)
      kern::zip(piece, blk.subspan(lr * lcn, lcn), kern::op_fn(op));
  });
  allreduce_auto(cube, out.data(), grid.within_col(), op);
  return out;
}

// ---------------------------------------------------------------------------
// distribute
// ---------------------------------------------------------------------------

/// Replicate a Cols-aligned vector across `nrows` rows:
/// out[i][j] = v[j].  Purely local — the input embedding already holds a
/// copy of v's piece on every grid row.
template <class T>
[[nodiscard]] DistMatrix<T> distribute_rows(const DistVector<T>& v,
                                            std::size_t nrows,
                                            Part rows_part = Part::Block) {
  VMP_REQUIRE_ALIGN(v.align() == Align::Cols, "distribute_rows",
                    "needs a Cols-aligned vector");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "distribute_rows");
  const auto batch = cube.session();
  DistMatrix<T> out(grid, nrows, v.n(), MatrixLayout{rows_part, v.part()});
  cube.compute(out.max_block(), nrows * v.n(), [&](proc_t q) {
    const std::size_t lrn = out.lrows(q), lcn = out.lcols(q);
    const std::span<const T> piece = v.piece(q);
    std::span<T> blk = out.block(q);
    for (std::size_t lr = 0; lr < lrn; ++lr)
      kern::copy(piece.first(lcn), blk.subspan(lr * lcn, lcn));
  });
  return out;
}

/// Replicate a Rows-aligned vector across `ncols` columns:
/// out[i][j] = v[i].  Purely local.
template <class T>
[[nodiscard]] DistMatrix<T> distribute_cols(const DistVector<T>& v,
                                            std::size_t ncols,
                                            Part cols_part = Part::Block) {
  VMP_REQUIRE_ALIGN(v.align() == Align::Rows, "distribute_cols",
                    "needs a Rows-aligned vector");
  Grid& grid = v.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "distribute_cols");
  const auto batch = cube.session();
  DistMatrix<T> out(grid, v.n(), ncols, MatrixLayout{v.part(), cols_part});
  cube.compute(out.max_block(), v.n() * ncols, [&](proc_t q) {
    const std::size_t lrn = out.lrows(q), lcn = out.lcols(q);
    const std::span<const T> piece = v.piece(q);
    std::span<T> blk = out.block(q);
    for (std::size_t lr = 0; lr < lrn; ++lr)
      kern::fill(blk.subspan(lr * lcn, lcn), piece[lr]);
  });
  return out;
}

// ---------------------------------------------------------------------------
// extract
// ---------------------------------------------------------------------------

/// Pull row i out of A as a Cols-aligned vector (replicated to every grid
/// row by a broadcast from the owner row).
template <class T>
[[nodiscard]] DistVector<T> extract_row(const DistMatrix<T>& A,
                                        std::size_t i) {
  detail::require_row_index("extract_row", A, i);
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "extract_row");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.ncols(), Align::Cols, A.layout().cols);
  const std::uint32_t R = A.rowmap().owner(i);
  const std::size_t lr = A.rowmap().local(i);
  const std::size_t max_piece =
      (A.ncols() + grid.pcols() - 1) / grid.pcols();
  cube.compute(max_piece, A.ncols(), [&](proc_t q) {
    if (grid.prow(q) != R) return;
    const std::size_t lcn = A.lcols(q);
    const std::span<const T> blk = A.block(q);
    kern::copy(blk.subspan(lr * lcn, lcn), out.data().tile(q));
  });
  broadcast_auto(cube, out.data(), grid.within_col(), R,
                 [&](proc_t q) { return out.map().size(out.rank_of(q)); });
  return out;
}

/// Pull column j out of A as a Rows-aligned vector.
template <class T>
[[nodiscard]] DistVector<T> extract_col(const DistMatrix<T>& A,
                                        std::size_t j) {
  detail::require_col_index("extract_col", A, j);
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  VMP_TRACE(cube, "extract_col");
  const auto batch = cube.session();
  DistVector<T> out(grid, A.nrows(), Align::Rows, A.layout().rows);
  const std::uint32_t C = A.colmap().owner(j);
  const std::size_t lc = A.colmap().local(j);
  const std::size_t max_piece =
      (A.nrows() + grid.prows() - 1) / grid.prows();
  cube.compute(max_piece, A.nrows(), [&](proc_t q) {
    if (grid.pcol(q) != C) return;
    const std::size_t lcn = A.lcols(q);
    const std::size_t lrn = A.lrows(q);
    (void)lrn;
    const std::span<const T> blk = A.block(q);
    kern::gather_strided(blk.data() + lc, lcn, out.data().tile(q));
  });
  broadcast_auto(cube, out.data(), grid.within_row(), C,
                 [&](proc_t q) { return out.map().size(out.rank_of(q)); });
  return out;
}

// ---------------------------------------------------------------------------
// insert
// ---------------------------------------------------------------------------

/// Overwrite row i of A with a Cols-aligned vector.  Purely local: the
/// owner row's processors copy their piece in place.
template <class T>
void insert_row(DistMatrix<T>& A, std::size_t i, const DistVector<T>& v) {
  detail::require_row_index("insert_row", A, i);
  detail::require_cols_aligned("insert_row", A, v);
  Grid& grid = A.grid();
  VMP_TRACE(grid.cube(), "insert_row");
  const auto batch = grid.cube().session();
  const std::uint32_t R = A.rowmap().owner(i);
  const std::size_t lr = A.rowmap().local(i);
  const std::size_t max_piece =
      (A.ncols() + grid.pcols() - 1) / grid.pcols();
  grid.cube().compute(max_piece, A.ncols(), [&](proc_t q) {
    if (grid.prow(q) != R) return;
    const std::size_t lcn = A.lcols(q);
    std::span<T> blk = A.block(q);
    kern::copy(v.piece(q).first(lcn), blk.subspan(lr * lcn, lcn));
  });
}

/// Overwrite column j of A with a Rows-aligned vector.  Purely local.
template <class T>
void insert_col(DistMatrix<T>& A, std::size_t j, const DistVector<T>& v) {
  detail::require_col_index("insert_col", A, j);
  detail::require_rows_aligned("insert_col", A, v);
  Grid& grid = A.grid();
  VMP_TRACE(grid.cube(), "insert_col");
  const auto batch = grid.cube().session();
  const std::uint32_t C = A.colmap().owner(j);
  const std::size_t lc = A.colmap().local(j);
  const std::size_t max_piece =
      (A.nrows() + grid.prows() - 1) / grid.prows();
  grid.cube().compute(max_piece, A.nrows(), [&](proc_t q) {
    if (grid.pcol(q) != C) return;
    const std::size_t lcn = A.lcols(q);
    const std::size_t lrn = A.lrows(q);
    std::span<T> blk = A.block(q);
    kern::scatter_strided(v.piece(q).first(lrn), blk.data() + lc, lcn);
  });
}

/// Ranged insert: overwrite only the elements of row i whose global column
/// index lies in [lo, hi).  Used by Gaussian elimination to write the
/// pivot row without disturbing the L part.
template <class T>
void insert_row_range(DistMatrix<T>& A, std::size_t i, const DistVector<T>& v,
                      std::size_t lo, std::size_t hi) {
  detail::require_row_index("insert_row_range", A, i);
  VMP_REQUIRE_SHAPE(lo <= hi && hi <= A.ncols(), "insert_row_range",
                    "bad column range [" + std::to_string(lo) + ", " +
                        std::to_string(hi) + ") (A is " +
                        detail::shape_of(A) + ")");
  detail::require_cols_aligned("insert_row_range", A, v);
  Grid& grid = A.grid();
  VMP_TRACE(grid.cube(), "insert_row_range");
  const auto batch = grid.cube().session();
  const std::uint32_t R = A.rowmap().owner(i);
  const std::size_t lr = A.rowmap().local(i);
  const std::size_t max_piece =
      (A.ncols() + grid.pcols() - 1) / grid.pcols();
  grid.cube().compute(max_piece, hi - lo, [&](proc_t q) {
    if (grid.prow(q) != R) return;
    const std::uint32_t C = grid.pcol(q);
    const std::size_t lcn = A.lcols(q);
    // Global indices grow with the local slot, so [lo, hi) is one
    // contiguous local window.
    const std::size_t s_lo = A.colmap().first_local_at_or_after(C, lo);
    const std::size_t s_hi = A.colmap().first_local_at_or_after(C, hi);
    std::span<T> blk = A.block(q);
    kern::copy(v.piece(q).subspan(s_lo, s_hi - s_lo),
               blk.subspan(lr * lcn + s_lo, s_hi - s_lo));
  });
}

/// Ranged insert: overwrite only the elements of column j whose global row
/// index lies in [lo, hi).  Used to deposit Gaussian multipliers below the
/// diagonal.
template <class T>
void insert_col_range(DistMatrix<T>& A, std::size_t j, const DistVector<T>& v,
                      std::size_t lo, std::size_t hi) {
  detail::require_col_index("insert_col_range", A, j);
  VMP_REQUIRE_SHAPE(lo <= hi && hi <= A.nrows(), "insert_col_range",
                    "bad row range [" + std::to_string(lo) + ", " +
                        std::to_string(hi) + ") (A is " +
                        detail::shape_of(A) + ")");
  detail::require_rows_aligned("insert_col_range", A, v);
  Grid& grid = A.grid();
  VMP_TRACE(grid.cube(), "insert_col_range");
  const auto batch = grid.cube().session();
  const std::uint32_t C = A.colmap().owner(j);
  const std::size_t lc = A.colmap().local(j);
  const std::size_t max_piece =
      (A.nrows() + grid.prows() - 1) / grid.prows();
  grid.cube().compute(max_piece, hi - lo, [&](proc_t q) {
    if (grid.pcol(q) != C) return;
    const std::uint32_t R = grid.prow(q);
    const std::size_t lcn = A.lcols(q);
    const std::size_t s_lo = A.rowmap().first_local_at_or_after(R, lo);
    const std::size_t s_hi = A.rowmap().first_local_at_or_after(R, hi);
    std::span<T> blk = A.block(q);
    kern::scatter_strided(v.piece(q).subspan(s_lo, s_hi - s_lo),
                          blk.data() + s_lo * lcn + lc, lcn);
  });
}

// ---------------------------------------------------------------------------
// Axis-generic forms (the preferred spellings).
// ---------------------------------------------------------------------------

/// Fold A along `axis` with `op`: Axis::Row folds each row (reduce_rows),
/// Axis::Col each column (reduce_cols).
template <class T, class Op>
[[nodiscard]] DistVector<T> reduce(const DistMatrix<T>& A, Axis axis, Op op) {
  return axis == Axis::Row ? reduce_rows(A, op) : reduce_cols(A, op);
}

/// Replicate v along `axis` into an n-extent matrix: Axis::Row stacks a
/// Cols-aligned vector into n rows (distribute_rows), Axis::Col tiles a
/// Rows-aligned vector into n columns (distribute_cols).
template <class T>
[[nodiscard]] DistMatrix<T> distribute(const DistVector<T>& v, Axis axis,
                                       std::size_t n,
                                       Part part = Part::Block) {
  return axis == Axis::Row ? distribute_rows(v, n, part)
                           : distribute_cols(v, n, part);
}

/// Pull line i of A along `axis`: Axis::Row yields row i (extract_row),
/// Axis::Col yields column i (extract_col).
template <class T>
[[nodiscard]] DistVector<T> extract(const DistMatrix<T>& A, Axis axis,
                                    std::size_t i) {
  return axis == Axis::Row ? extract_row(A, i) : extract_col(A, i);
}

/// Overwrite line i of A along `axis` with v: Axis::Row writes row i
/// (insert_row), Axis::Col writes column i (insert_col).
template <class T>
void insert(DistMatrix<T>& A, Axis axis, std::size_t i,
            const DistVector<T>& v) {
  if (axis == Axis::Row) {
    insert_row(A, i, v);
  } else {
    insert_col(A, i, v);
  }
}

/// Ranged axis-generic insert: only elements of line i whose cross-axis
/// global index lies in [lo, hi) are written.
template <class T>
void insert_range(DistMatrix<T>& A, Axis axis, std::size_t i,
                  const DistVector<T>& v, std::size_t lo, std::size_t hi) {
  if (axis == Axis::Row) {
    insert_row_range(A, i, v, lo, hi);
  } else {
    insert_col_range(A, i, v, lo, hi);
  }
}

}  // namespace vmp
