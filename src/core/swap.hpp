/// \file swap.hpp
/// \brief Row / column exchange on a distributed matrix — the data motion
///        behind partial pivoting.  When both lines share an owner the swap
///        is local; otherwise the two owner groups trade their pieces with
///        one combining-router sweep along the partitioned dimensions.
#pragma once

#include "comm/collectives.hpp"
#include "core/kernels.hpp"
#include "embed/dist_matrix.hpp"

namespace vmp {

/// Exchange rows i and j of A.
template <class T>
void swap_rows(DistMatrix<T>& A, std::size_t i, std::size_t j) {
  VMP_REQUIRE(i < A.nrows() && j < A.nrows(), "row index out of range");
  if (i == j) return;
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  const std::uint32_t Ri = A.rowmap().owner(i), Rj = A.rowmap().owner(j);
  const std::size_t li = A.rowmap().local(i), lj = A.rowmap().local(j);
  const std::size_t max_piece = (A.ncols() + grid.pcols() - 1) / grid.pcols();

  if (Ri == Rj) {  // both rows in the same block: purely local swap
    cube.compute(2 * max_piece, 2 * A.ncols(), [&](proc_t q) {
      if (grid.prow(q) != Ri) return;
      const std::size_t lcn = A.lcols(q);
      std::span<T> blk = A.block(q);
      for (std::size_t lc = 0; lc < lcn; ++lc)
        std::swap(blk[li * lcn + lc], blk[lj * lcn + lc]);
    });
    return;
  }

  // Owner groups trade pieces along the grid-column subcubes; the tag
  // encodes the destination local offset.
  DistBuffer<RouteItem<T>> items(cube);
  cube.each_proc([&](proc_t q) {
    const std::uint32_t R = grid.prow(q);
    if (R != Ri && R != Rj) return;
    const bool mine_is_i = (R == Ri);
    const std::size_t lsrc = mine_is_i ? li : lj;
    const std::size_t ldst = mine_is_i ? lj : li;
    const proc_t dst = grid.at(mine_is_i ? Rj : Ri, grid.pcol(q));
    const std::size_t lcn = A.lcols(q);
    const std::span<const T> blk = A.block(q);
    for (std::size_t lc = 0; lc < lcn; ++lc)
      items.push_back(q,
          RouteItem<T>{dst, ldst * lcn + lc, blk[lsrc * lcn + lc]});
  });
  route_within(cube, items, grid.within_col());
  cube.each_proc([&](proc_t q) {
    kern::scatter_tagged(items.tile(q), A.data().tile(q));
  });
}

/// Exchange columns i and j of A.
template <class T>
void swap_cols(DistMatrix<T>& A, std::size_t i, std::size_t j) {
  VMP_REQUIRE(i < A.ncols() && j < A.ncols(), "column index out of range");
  if (i == j) return;
  Grid& grid = A.grid();
  Cube& cube = grid.cube();
  const std::uint32_t Ci = A.colmap().owner(i), Cj = A.colmap().owner(j);
  const std::size_t li = A.colmap().local(i), lj = A.colmap().local(j);
  const std::size_t max_piece = (A.nrows() + grid.prows() - 1) / grid.prows();

  if (Ci == Cj) {
    cube.compute(2 * max_piece, 2 * A.nrows(), [&](proc_t q) {
      if (grid.pcol(q) != Ci) return;
      const std::size_t lcn = A.lcols(q);
      const std::size_t lrn = A.lrows(q);
      std::span<T> blk = A.block(q);
      for (std::size_t lr = 0; lr < lrn; ++lr)
        std::swap(blk[lr * lcn + li], blk[lr * lcn + lj]);
    });
    return;
  }

  DistBuffer<RouteItem<T>> items(cube);
  cube.each_proc([&](proc_t q) {
    const std::uint32_t C = grid.pcol(q);
    if (C != Ci && C != Cj) return;
    const bool mine_is_i = (C == Ci);
    const std::size_t lsrc = mine_is_i ? li : lj;
    const std::size_t ldst = mine_is_i ? lj : li;
    const std::uint32_t Cdst = mine_is_i ? Cj : Ci;
    const proc_t dst = grid.at(grid.prow(q), Cdst);
    const std::size_t lcn = A.lcols(q);
    const std::size_t lcn_dst = A.colmap().size(Cdst);
    const std::size_t lrn = A.lrows(q);
    const std::span<const T> blk = A.block(q);
    for (std::size_t lr = 0; lr < lrn; ++lr)
      items.push_back(q,
          RouteItem<T>{dst, lr * lcn_dst + ldst, blk[lr * lcn + lsrc]});
  });
  route_within(cube, items, grid.within_row());
  cube.each_proc([&](proc_t q) {
    kern::scatter_tagged(items.tile(q), A.data().tile(q));
  });
}

}  // namespace vmp
