/// \file fault.hpp
/// \brief Deterministic fault plans for the simulated hypercube.
///
/// A FaultPlan is a *pure description* of what goes wrong and when: seeded
/// transient fault rates (link drops, message corruption, per-edge latency
/// spikes) plus explicit schedules of permanent link and node kills.  The
/// plan never holds runtime state — every decision the injector makes is a
/// pure hash of (plan seed, comm round, retry attempt, source, dimension),
/// so a run under a given plan is bit-for-bit reproducible regardless of
/// host threading, and two runs with the same seed produce the identical
/// event trace (tests/test_fault_primitives.cpp asserts this).
///
/// Recovery semantics live in the machine layer (hypercube/machine.hpp):
/// checksummed payloads, bounded retry with exponential backoff, and
/// route-around over the cube's edge-disjoint paths.  Faults that exceed
/// the RecoveryPolicy budget raise FaultError — a clear failure, never a
/// wrong answer.  docs/faults.md describes the full contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hypercube/check.hpp"

namespace vmp {

/// Raised when a fault exceeds the recovery budget (retry limit exhausted,
/// no live route around a dead link, a message endpoint is a dead node).
/// Distinct from ContractError: the *caller* did nothing wrong — the
/// simulated machine degraded beyond what the policy can absorb.  Rooted
/// at vmp::Error like every other library exception.
class FaultError : public Error {
 public:
  using Error::Error;
};

/// Seeded, fully deterministic fault plan.  All probabilities are per
/// message delivery attempt (transient faults are re-drawn on retry, so a
/// retried message usually gets through); kills are permanent from
/// `from_round` on, where rounds count lockstep communication rounds since
/// the injector was attached.
struct FaultPlan {
  std::uint64_t seed = 1;     ///< base of every pseudo-random decision
  double drop_prob = 0.0;     ///< transient message loss per attempt
  double corrupt_prob = 0.0;  ///< transient payload corruption per attempt
  double spike_prob = 0.0;    ///< per-edge latency spike per attempt
  double spike_us = 0.0;      ///< extra latency charged per spike

  /// Permanent death of the undirected cube edge (node, node ^ 1<<dim).
  struct LinkKill {
    std::uint64_t from_round = 0;
    std::uint32_t node = 0;
    int dim = 0;
  };
  /// Permanent death of one processor.
  struct NodeKill {
    std::uint64_t from_round = 0;
    std::uint32_t node = 0;
  };
  std::vector<LinkKill> link_kills;
  std::vector<NodeKill> node_kills;

  /// The empty plan: attaching it must leave every charge bit-identical to
  /// running without an injector (asserted by tests/test_fault_recovery).
  [[nodiscard]] static FaultPlan none() { return FaultPlan{}; }

  /// Transient-only plan: drops + corruption (+ optional spikes), no
  /// permanent kills — always inside the recovery budget for reasonable
  /// rates, the workhorse of the fault test sweep and `--faults` benches.
  [[nodiscard]] static FaultPlan transient(std::uint64_t seed,
                                           double drop_prob,
                                           double corrupt_prob,
                                           double spike_prob = 0.0,
                                           double spike_us = 0.0) {
    FaultPlan p;
    p.seed = seed;
    p.drop_prob = drop_prob;
    p.corrupt_prob = corrupt_prob;
    p.spike_prob = spike_prob;
    p.spike_us = spike_us;
    return p;
  }

  [[nodiscard]] bool has_transient() const {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || spike_prob > 0.0;
  }
};

/// Bounds on what the communication layer spends recovering before it
/// declares the machine degraded and throws FaultError.
struct RecoveryPolicy {
  int max_retries = 6;      ///< retransmissions per message per round
  double backoff_us = 1.0;  ///< backoff before retry r: backoff_us · 2^(r-1)
};

/// FNV-1a over raw bytes — the message checksum.  Cheap, deterministic,
/// and detects every single-bit corruption the injector produces.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t nbytes);

}  // namespace vmp
