#include "fault/injector.hpp"

#include "net/topology.hpp"

namespace vmp {

namespace {

/// SplitMix64 finalizer — the same mixer util/rng.hpp uses, applied as a
/// stateless hash so decisions need no carried RNG state.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

[[nodiscard]] double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t nbytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t FaultInjector::message_hash(std::uint64_t round, int attempt,
                                          std::uint32_t src, int dim) const {
  std::uint64_t h = mix64(plan_.seed ^ 0x66617573ull);  // "faus"
  h = mix64(h ^ round);
  h = mix64(h ^ (static_cast<std::uint64_t>(src) << 8) ^
            static_cast<std::uint64_t>(dim));
  h = mix64(h ^ static_cast<std::uint64_t>(attempt));
  return h;
}

FaultOutcome FaultInjector::decide(std::uint64_t round, int attempt,
                                   std::uint32_t src, int dim) const {
  FaultOutcome oc;
  if (!plan_.has_transient()) return oc;
  const std::uint64_t h = message_hash(round, attempt, src, dim);
  const double u = to_unit(h);
  if (u < plan_.drop_prob) {
    oc.drop = true;
  } else if (u < plan_.drop_prob + plan_.corrupt_prob) {
    oc.corrupt = true;
  }
  if (plan_.spike_prob > 0.0 && to_unit(mix64(h ^ 0x5350494bull)) <
                                    plan_.spike_prob) {  // "SPIK"
    oc.spike_us = plan_.spike_us;
  }
  return oc;
}

void FaultInjector::bind_topology(const Topology* topo) {
  topo_ = topo;
  kill_links_.clear();
  if (topo_ == nullptr) return;
  for (const FaultPlan::LinkKill& k : plan_.link_kills) {
    if (k.node >= topo_->node_count() || k.dim < 0 ||
        k.dim >= topo_->max_ports())
      continue;
    if (topo_->port_neighbor(k.node, k.dim) == kNoNeighbor) continue;
    kill_links_.emplace_back(k.from_round, topo_->link_id(k.node, k.dim));
  }
}

bool FaultInjector::link_dead(std::uint64_t round, std::uint32_t node,
                              int dim) const {
  if (topo_ != nullptr) {
    if (kill_links_.empty()) return false;
    if (node >= topo_->node_count() || dim < 0 || dim >= topo_->max_ports() ||
        topo_->port_neighbor(node, dim) == kNoNeighbor)
      return false;
    const std::uint64_t id = topo_->link_id(node, dim);
    for (const auto& [from_round, lid] : kill_links_)
      if (lid == id && round >= from_round) return true;
    return false;
  }
  // Unbound (standalone) injector: the historical cube-edge rule.
  const std::uint32_t lo =
      node < (node ^ (1u << dim)) ? node : (node ^ (1u << dim));
  for (const FaultPlan::LinkKill& k : plan_.link_kills) {
    const std::uint32_t klo =
        k.node < (k.node ^ (1u << k.dim)) ? k.node : (k.node ^ (1u << k.dim));
    if (k.dim == dim && klo == lo && round >= k.from_round) return true;
  }
  return false;
}

bool FaultInjector::node_dead(std::uint64_t round, std::uint32_t node) const {
  for (const FaultPlan::NodeKill& k : plan_.node_kills)
    if (k.node == node && round >= k.from_round) return true;
  return false;
}

}  // namespace vmp
