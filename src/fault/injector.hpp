/// \file injector.hpp
/// \brief Runtime fault oracle consulted by the communication layer.
///
/// The injector owns a FaultPlan plus a RecoveryPolicy and answers, for
/// every message delivery attempt, "what goes wrong?".  Its only mutable
/// state is the lockstep round counter (`begin_round`), advanced once per
/// communication round on the host thread; every *decision* is a pure
/// function of (seed, round, attempt, src, dim), so the injector is
/// trivially deterministic and thread-agnostic.  Fault counters for tests
/// and reports live in SimStats, not here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.hpp"

namespace vmp {

class Topology;

/// What happens to one message delivery attempt.
struct FaultOutcome {
  bool drop = false;      ///< message lost in transit, nothing arrives
  bool corrupt = false;   ///< payload arrives bit-flipped (checksum catches)
  double spike_us = 0.0;  ///< extra latency on this edge this attempt
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, RecoveryPolicy policy = {})
      : plan_(std::move(plan)), policy_(policy) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const RecoveryPolicy& policy() const { return policy_; }

  /// Resolve the plan's (node, port) link kills into undirected link ids
  /// of `topo` (kills naming a port absent on this topology are inert).
  /// Called by Cube::enable_faults; an unbound injector canonicalizes
  /// kills with the historical cube-edge XOR rule instead, which is the
  /// same equivalence on a hypercube.  `topo` must outlive the injector.
  void bind_topology(const Topology* topo);

  /// Advance to the next lockstep communication round; returns its id.
  /// Called once per round by the machine, on the host thread.
  std::uint64_t begin_round() { return round_++; }
  [[nodiscard]] std::uint64_t rounds_started() const { return round_; }

  /// Transient outcome for one delivery attempt of the message sent by
  /// `src` across cube dimension `dim`.  Pure in all arguments.
  [[nodiscard]] FaultOutcome decide(std::uint64_t round, int attempt,
                                    std::uint32_t src, int dim) const;

  /// True if the undirected link behind port `dim` of `node` is
  /// permanently dead at `round` (on a hypercube, port == cube dimension
  /// and the link is the edge (node, node ^ 1<<dim)).
  [[nodiscard]] bool link_dead(std::uint64_t round, std::uint32_t node,
                               int dim) const;

  /// True if processor `node` is permanently dead at `round`.
  [[nodiscard]] bool node_dead(std::uint64_t round, std::uint32_t node) const;

  /// Deterministic per-message hash — seeds the corruption bit flip.
  [[nodiscard]] std::uint64_t message_hash(std::uint64_t round, int attempt,
                                           std::uint32_t src, int dim) const;

 private:
  FaultPlan plan_;
  RecoveryPolicy policy_;
  const Topology* topo_ = nullptr;
  /// Plan link kills resolved against topo_: (from_round, link id).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kill_links_;
  std::uint64_t round_ = 0;
};

}  // namespace vmp
