/// \file dragonfly_topology.hpp
/// \brief Dragonfly preset: all-to-all router groups + global links.
///
/// The 2^dim logical processors map onto 2^floor(dim/2) groups of
/// 2^ceil(dim/2) routers (one processor per router).  Within a group the
/// routers are fully connected (axis 0, "local"); each unordered pair of
/// groups is joined by exactly ONE global link (axis 1, "global"), with
/// the booksim-style consecutive channel assignment: group i's channel
/// k ∈ [0, g-1) reaches group (i+k+1) mod g and is hosted at router
/// k / h, h = ceil((g-1)/a) channels per router.
///
/// Routing is minimal l-g-l (at most local → global → local, diameter 3)
/// by default; `RouteMode::Valiant` detours lockstep rounds through a
/// deterministically hashed intermediate group, the classic non-minimal
/// load-spreading scheme (the packet router always steps minimally —
/// Valiant affects `route()` and therefore the machine's round charges).
/// Global links charge `global_charge()` multipliers per hop (default
/// 2× start-up, 1× bandwidth): the long inter-group cables are latency,
/// not throughput, bound.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace vmp {

class DragonflyTopology final : public Topology {
 public:
  enum class RouteMode { Minimal, Valiant };

  explicit DragonflyTopology(int dim, RouteMode mode = RouteMode::Minimal);

  [[nodiscard]] const char* name() const override { return "dragonfly"; }
  [[nodiscard]] TopologyKind kind() const override {
    return TopologyKind::Dragonfly;
  }
  [[nodiscard]] proc_t node_count() const override { return nodes_; }
  [[nodiscard]] int axis_count() const override { return 2; }
  [[nodiscard]] const char* axis_name(int axis) const override {
    return axis == 0 ? "local" : "global";
  }
  [[nodiscard]] int diameter() const override {
    return groups_ > 1 ? 3 : (routers_ > 1 ? 1 : 0);
  }
  [[nodiscard]] int max_ports() const override {
    return static_cast<int>(routers_ - 1 + chans_per_router_);
  }
  [[nodiscard]] proc_t port_neighbor(proc_t node, int port) const override;
  [[nodiscard]] int port_axis(proc_t, int port) const override {
    return port < static_cast<int>(routers_ - 1) ? 0 : 1;
  }
  [[nodiscard]] AxisCharge axis_charge(int axis) const override {
    return axis == 1 ? global_charge_ : AxisCharge{};
  }

  void route(proc_t src, proc_t dst, std::vector<Hop>& out) const override;
  [[nodiscard]] Hop first_hop(proc_t from, proc_t dst) const override;
  void min_first_ports(proc_t from, proc_t dst,
                       std::vector<int>& out) const override;

  [[nodiscard]] proc_t groups() const { return groups_; }
  [[nodiscard]] proc_t group_size() const { return routers_; }
  [[nodiscard]] RouteMode route_mode() const { return mode_; }
  [[nodiscard]] AxisCharge global_charge() const { return global_charge_; }
  void set_global_charge(AxisCharge c) { global_charge_ = c; }

 private:
  [[nodiscard]] proc_t group_of(proc_t node) const { return node / routers_; }
  [[nodiscard]] proc_t router_of(proc_t node) const {
    return node % routers_;
  }
  /// Port at router `r` reaching router `s` of the same group.
  [[nodiscard]] int local_port(proc_t r, proc_t s) const {
    return static_cast<int>(s < r ? s : s - 1);
  }
  /// Routers hosting the two ends of the (gi, gj) global link, plus the
  /// channel index at gi.
  void global_link(proc_t gi, proc_t gj, proc_t& ra, proc_t& rb,
                   proc_t& chan) const;
  void route_minimal(proc_t src, proc_t dst, std::vector<Hop>& out) const;

  int dim_;
  RouteMode mode_;
  proc_t nodes_;
  proc_t groups_;
  proc_t routers_;
  proc_t chans_per_router_;
  AxisCharge global_charge_{2.0, 1.0};
};

}  // namespace vmp
