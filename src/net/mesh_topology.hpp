/// \file mesh_topology.hpp
/// \brief 2-D mesh / torus preset with dimension-order routing.
///
/// The 2^dim logical processors are laid out row-major on a
/// 2^ceil(dim/2) × 2^floor(dim/2) grid: axis 0 spans the LOW address bits
/// (the fast, contiguous direction), axis 1 the high bits.  This is the
/// row-major grid embedding of the logical cube — flipping address bit k
/// moves ±2^k along one axis, so a logical cube edge dilates into up to
/// 2^(dim/2 - 1) physical unit steps, and the per-round contention those
/// overlapping steps create is exactly what the topology ablation
/// measures against the cube's unit-hop guarantee.
///
/// Ports: `2·axis` steps +1 along the axis, `2·axis + 1` steps −1; mesh
/// boundaries have no port, and a wrapped axis of extent 2 keeps only the
/// `+` port (its two directions are the same physical link).  Routing is
/// dimension-ordered, axis 0 first, shortest way around each ring (ties
/// at extent/2 go the `+` way).
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace vmp {

class MeshTorusTopology final : public Topology {
 public:
  /// A grid sized for a 2^dim-node logical cube; `wrap` selects torus.
  MeshTorusTopology(int dim, bool wrap);

  [[nodiscard]] const char* name() const override {
    return wrap_ ? "torus" : "mesh";
  }
  [[nodiscard]] TopologyKind kind() const override {
    return wrap_ ? TopologyKind::Torus : TopologyKind::Mesh;
  }
  [[nodiscard]] proc_t node_count() const override { return nodes_; }
  [[nodiscard]] int axis_count() const override { return naxes_; }
  [[nodiscard]] const char* axis_name(int) const override { return "axis"; }
  [[nodiscard]] int diameter() const override { return diameter_; }
  [[nodiscard]] int max_ports() const override { return 2 * naxes_; }
  [[nodiscard]] proc_t port_neighbor(proc_t node, int port) const override;
  [[nodiscard]] int port_axis(proc_t, int port) const override {
    return port / 2;
  }

  void route(proc_t src, proc_t dst, std::vector<Hop>& out) const override;
  [[nodiscard]] Hop first_hop(proc_t from, proc_t dst) const override;
  void min_first_ports(proc_t from, proc_t dst,
                       std::vector<int>& out) const override;

  /// Grid extent along `axis`.
  [[nodiscard]] proc_t extent(int axis) const { return ext_[axis]; }
  [[nodiscard]] bool wrap() const { return wrap_; }
  /// Coordinate of `node` along `axis` (row-major bit slice).
  [[nodiscard]] proc_t coord(proc_t node, int axis) const {
    return (node >> shift_[axis]) & (ext_[axis] - 1);
  }

 private:
  /// Signed step toward dst along `axis`: +1, -1, or 0 when aligned.
  /// `steps` receives the hop count of the chosen way around.
  [[nodiscard]] int step_dir(proc_t from, proc_t dst, int axis,
                             proc_t& steps) const;
  [[nodiscard]] Hop step_hop(proc_t from, int axis, int dir) const;

  int dim_;
  bool wrap_;
  int naxes_;
  proc_t nodes_;
  proc_t ext_[2] = {1, 1};
  int shift_[2] = {0, 0};
  int diameter_ = 0;
};

}  // namespace vmp
