/// \file topology.hpp
/// \brief The machine-facing network abstraction: nodes, ports, links,
/// minimal routes, and per-hop charge parameters.
///
/// The `Cube` machine keeps the paper's *logical* programming model — a
/// lockstep Boolean cube of `2^dim` processors exchanging along address
/// bits — but the network those exchanges physically cross is described by
/// a `Topology`.  The hypercube preset maps every logical cube edge onto
/// one physical link (`unit_hop() == true`), which is the configuration
/// the paper's optimality claims are stated for and the library's default;
/// mesh/torus and dragonfly presets route each logical edge over several
/// physical links, paying dilation and link contention, so every bench
/// doubles as a topology ablation ("how much of the win is the cube?").
///
/// Addressing model shared by all implementations:
///
///  * nodes are dense ids in `[0, node_count())`;
///  * each node has `max_ports()` numbered output ports;
///    `port_neighbor(n, p)` is the node behind port `p` (or `kNoNeighbor`
///    for absent ports, e.g. mesh boundaries);
///  * every physical link has a dense undirected id in
///    `[0, link_count())`; `link_id(n, p)` names the link behind a port.
///    Fault plans address link kills as (node, port) pairs and the
///    injector canonicalizes them through `link_id`, so one kill severs
///    the link for both endpoints;
///  * links are grouped into *axes* (`port_axis`, `axis_count()`): the
///    cube's dimensions, a mesh's grid axes, dragonfly's local/global
///    classes.  Axes size the per-axis traffic histograms in `src/obs/`
///    and carry the per-hop charge multipliers (`axis_charge`).
///
/// Routing: `route` appends the canonical deterministic minimal route,
/// `first_hop`/`min_first_ports` serve the packet router's per-cycle
/// decisions, and `route_avoiding` computes a minimal *live* route around
/// dead links/nodes for fault recovery (BFS by default; the hypercube
/// overrides it with the paper machine's 3-hop parallel-path detour for
/// adjacent pairs, keeping the seed fault path bit-identical).
///
/// See docs/topology.md for the preset shapes and how to add a topology.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "hypercube/check.hpp"

namespace vmp {

/// Processor / node id; addresses are dense in [0, node_count()).
using proc_t = std::uint32_t;

/// Marker returned by port_neighbor for ports that do not exist at this
/// node (mesh boundary, dragonfly's unused global-channel slots).
inline constexpr proc_t kNoNeighbor = 0xffffffffu;

/// Built-in topology presets selectable via Cube::Options / VMP_TOPOLOGY.
enum class TopologyKind { Hypercube, Mesh, Torus, Dragonfly };

/// Per-axis charge multipliers: one hop across a link of this axis costs
/// `startup_mult · τ` in start-up and moves elements at
/// `per_elem_mult · t_c` each.  The hypercube and mesh presets use {1, 1}
/// everywhere; dragonfly charges its global (inter-group) links more.
struct AxisCharge {
  double startup_mult = 1.0;
  double per_elem_mult = 1.0;
};

/// One hop of a route: the directed traversal of the link behind `port`
/// at `from`.
struct Hop {
  proc_t from = 0;
  proc_t to = 0;
  int axis = 0;  ///< charge/histogram axis of the crossed link
  int port = 0;  ///< output port at `from` (keys fault lookups / link ids)
};

/// One undirected physical link.
struct Link {
  std::uint64_t id = 0;
  proc_t a = 0;  ///< lower-id endpoint as enumerated
  proc_t b = 0;
  int axis = 0;
};

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual TopologyKind kind() const = 0;
  [[nodiscard]] virtual proc_t node_count() const = 0;
  [[nodiscard]] virtual int axis_count() const = 0;
  [[nodiscard]] virtual const char* axis_name(int axis) const;
  [[nodiscard]] virtual int diameter() const = 0;

  /// Upper bound on port numbers at any node (absent ports return
  /// kNoNeighbor from port_neighbor).
  [[nodiscard]] virtual int max_ports() const = 0;
  [[nodiscard]] virtual proc_t port_neighbor(proc_t node, int port) const = 0;
  [[nodiscard]] virtual int port_axis(proc_t node, int port) const = 0;

  /// Undirected link id behind an EXISTING port (REQUIREs validity).
  [[nodiscard]] virtual std::uint64_t link_id(proc_t node, int port) const;
  [[nodiscard]] virtual std::uint64_t link_count() const;
  /// Every undirected link once, ordered by id.
  [[nodiscard]] virtual std::vector<Link> links() const;

  [[nodiscard]] virtual AxisCharge axis_charge(int axis) const {
    (void)axis;
    return AxisCharge{};
  }

  /// True when every logical cube edge is exactly one physical link —
  /// the machine then charges the paper's exact `τ + n·t_c` per round.
  [[nodiscard]] virtual bool unit_hop() const { return false; }

  /// Append the canonical deterministic minimal route src → dst
  /// (empty when src == dst).
  virtual void route(proc_t src, proc_t dst, std::vector<Hop>& out) const = 0;

  /// First hop of the canonical minimal route (REQUIREs src != dst).
  /// O(1); this is what the packet router asks every cycle.
  [[nodiscard]] virtual Hop first_hop(proc_t from, proc_t dst) const = 0;

  /// Every port at `from` that starts SOME minimal route to dst, in
  /// deterministic preference order (the canonical route's port first for
  /// presets with a unique canonical choice; the hypercube lists all
  /// differing address bits ascending, matching the seed router).
  virtual void min_first_ports(proc_t from, proc_t dst,
                               std::vector<int>& out) const = 0;

  using LinkDeadFn = std::function<bool(proc_t node, int port)>;
  using NodeDeadFn = std::function<bool(proc_t node)>;

  /// Shortest live route src → dst avoiding dead links and dead interior
  /// nodes (the endpoints are the caller's responsibility).  Returns false
  /// when the survivors disconnect the pair.  Deterministic: breadth-first
  /// in (node, port) order by default.
  [[nodiscard]] virtual bool route_avoiding(proc_t src, proc_t dst,
                                            const LinkDeadFn& link_dead,
                                            const NodeDeadFn& node_dead,
                                            std::vector<Hop>& out) const;

  /// Packet-router escape hatch when every minimal first port at `from` is
  /// dead: one live hop to take now plus a port to force from the next
  /// node (-1 when no force is needed).  Default: first hop of the live
  /// BFS route, no force.  Returns false when the packet is cut off.
  [[nodiscard]] virtual bool detour_first(proc_t from, proc_t dst,
                                          const LinkDeadFn& link_dead,
                                          const NodeDeadFn& node_dead,
                                          Hop& hop, int& force_port) const;

  /// Existing neighbors of `node`, in port order.
  [[nodiscard]] std::vector<proc_t> neighbors(proc_t node) const;

 protected:
  /// Table-backed link identity for the irregular presets: scans every
  /// (node, port) once, assigns dense undirected ids, and records which
  /// reverse ports map to the same link.  Derived constructors call this
  /// after their port geometry is final; the hypercube overrides link_id
  /// analytically instead (its node count can be far too large to table).
  void finalize_links();

 private:
  std::vector<std::uint64_t> link_index_;  ///< (node·max_ports + port) → id
  std::vector<Link> links_;
  bool links_built_ = false;
};

/// Preset name for reports ("hypercube", "mesh", "torus", "dragonfly").
[[nodiscard]] const char* to_string(TopologyKind kind);

/// Parse a preset name (case-sensitive; "cube" aliases "hypercube").
[[nodiscard]] bool parse_topology(std::string_view name, TopologyKind& out);

/// The VMP_TOPOLOGY environment default (unset/unknown → Hypercube).
[[nodiscard]] TopologyKind env_topology();

/// Build a preset sized for a 2^dim-processor logical cube.  The mesh and
/// torus presets are 2-D grids of 2^ceil(dim/2) × 2^floor(dim/2) nodes in
/// row-major order; dragonfly uses 2^floor(dim/2) groups of 2^ceil(dim/2)
/// all-to-all routers with one global link per group pair.
[[nodiscard]] std::unique_ptr<Topology> make_topology(TopologyKind kind,
                                                      int dim);

}  // namespace vmp
