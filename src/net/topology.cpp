#include "net/topology.hpp"

#include <cstdlib>
#include <queue>

#include "net/dragonfly_topology.hpp"
#include "net/hypercube_topology.hpp"
#include "net/mesh_topology.hpp"

namespace vmp {

namespace {

constexpr std::uint64_t kNoLink = ~std::uint64_t{0};

}  // namespace

const char* Topology::axis_name(int axis) const {
  (void)axis;
  return "axis";
}

std::uint64_t Topology::link_id(proc_t node, int port) const {
  VMP_REQUIRE(node < node_count() && port >= 0 && port < max_ports(),
              "link_id: node/port out of range");
  const std::uint64_t id =
      link_index_[static_cast<std::uint64_t>(node) *
                      static_cast<std::uint64_t>(max_ports()) +
                  static_cast<std::uint64_t>(port)];
  VMP_REQUIRE(id != kNoLink, "link_id: port does not exist at this node");
  return id;
}

std::uint64_t Topology::link_count() const { return links_.size(); }

std::vector<Link> Topology::links() const {
  VMP_REQUIRE(links_built_, "links(): topology did not finalize_links()");
  return links_;
}

void Topology::finalize_links() {
  const std::uint64_t n = node_count();
  const int np = max_ports();
  link_index_.assign(n * static_cast<std::uint64_t>(np), kNoLink);
  links_.clear();
  for (proc_t node = 0; node < n; ++node) {
    for (int p = 0; p < np; ++p) {
      const std::uint64_t slot =
          node * static_cast<std::uint64_t>(np) + static_cast<std::uint64_t>(p);
      if (link_index_[slot] != kNoLink) continue;
      const proc_t nb = port_neighbor(node, p);
      if (nb == kNoNeighbor) continue;
      VMP_REQUIRE(nb < n, "finalize_links: neighbor out of range");
      const std::uint64_t id = links_.size();
      const int axis = port_axis(node, p);
      link_index_[slot] = id;
      // Every reverse port at nb reaching back over the same axis names
      // the same undirected link (a 2-ary torus ring has one such port).
      for (int p2 = 0; p2 < np; ++p2)
        if (port_neighbor(nb, p2) == node && port_axis(nb, p2) == axis)
          link_index_[nb * static_cast<std::uint64_t>(np) +
                      static_cast<std::uint64_t>(p2)] = id;
      links_.push_back(Link{id, node, nb, axis});
    }
  }
  links_built_ = true;
}

std::vector<proc_t> Topology::neighbors(proc_t node) const {
  std::vector<proc_t> out;
  const int np = max_ports();
  out.reserve(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) {
    const proc_t nb = port_neighbor(node, p);
    if (nb != kNoNeighbor) out.push_back(nb);
  }
  return out;
}

bool Topology::route_avoiding(proc_t src, proc_t dst,
                              const LinkDeadFn& link_dead,
                              const NodeDeadFn& node_dead,
                              std::vector<Hop>& out) const {
  if (src == dst) return true;
  const proc_t n = node_count();
  const int np = max_ports();
  // Breadth-first in (node, port) order: deterministic shortest live path.
  // prev[v] = (node, port) the BFS reached v through.
  std::vector<std::pair<proc_t, int>> prev(n, {kNoNeighbor, -1});
  std::queue<proc_t> frontier;
  prev[src] = {src, -1};
  frontier.push(src);
  while (!frontier.empty()) {
    const proc_t at = frontier.front();
    frontier.pop();
    for (int p = 0; p < np; ++p) {
      const proc_t nb = port_neighbor(at, p);
      if (nb == kNoNeighbor || prev[nb].first != kNoNeighbor) continue;
      if (link_dead(at, p)) continue;
      if (nb != dst && node_dead(nb)) continue;
      prev[nb] = {at, p};
      if (nb == dst) {
        std::vector<Hop> rev;
        for (proc_t v = dst; v != src;) {
          const auto [u, up] = prev[v];
          rev.push_back(Hop{u, v, port_axis(u, up), up});
          v = u;
        }
        out.insert(out.end(), rev.rbegin(), rev.rend());
        return true;
      }
      frontier.push(nb);
    }
  }
  return false;
}

bool Topology::detour_first(proc_t from, proc_t dst, const LinkDeadFn& link_dead,
                            const NodeDeadFn& node_dead, Hop& hop,
                            int& force_port) const {
  std::vector<Hop> path;
  if (!route_avoiding(from, dst, link_dead, node_dead, path) || path.empty())
    return false;
  hop = path.front();
  force_port = -1;
  return true;
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Hypercube: return "hypercube";
    case TopologyKind::Mesh: return "mesh";
    case TopologyKind::Torus: return "torus";
    case TopologyKind::Dragonfly: return "dragonfly";
  }
  return "hypercube";
}

bool parse_topology(std::string_view name, TopologyKind& out) {
  if (name == "hypercube" || name == "cube") {
    out = TopologyKind::Hypercube;
  } else if (name == "mesh") {
    out = TopologyKind::Mesh;
  } else if (name == "torus") {
    out = TopologyKind::Torus;
  } else if (name == "dragonfly") {
    out = TopologyKind::Dragonfly;
  } else {
    return false;
  }
  return true;
}

TopologyKind env_topology() {
  TopologyKind kind = TopologyKind::Hypercube;
  if (const char* s = std::getenv("VMP_TOPOLOGY")) (void)parse_topology(s, kind);
  return kind;
}

std::unique_ptr<Topology> make_topology(TopologyKind kind, int dim) {
  switch (kind) {
    case TopologyKind::Hypercube:
      return std::make_unique<HypercubeTopology>(dim);
    case TopologyKind::Mesh:
      return std::make_unique<MeshTorusTopology>(dim, /*wrap=*/false);
    case TopologyKind::Torus:
      return std::make_unique<MeshTorusTopology>(dim, /*wrap=*/true);
    case TopologyKind::Dragonfly:
      return std::make_unique<DragonflyTopology>(dim);
  }
  return std::make_unique<HypercubeTopology>(dim);
}

}  // namespace vmp
