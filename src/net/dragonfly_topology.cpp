#include "net/dragonfly_topology.hpp"

namespace vmp {

namespace {

/// SplitMix64 finalizer — deterministic Valiant intermediate selection.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

DragonflyTopology::DragonflyTopology(int dim, RouteMode mode)
    : dim_(dim), mode_(mode) {
  VMP_REQUIRE(dim >= 0 && dim <= 20,
              "dragonfly preset supports dim in [0, 20]");
  const int rbits = dim - dim / 2;  // ceil(dim/2) router bits per group
  routers_ = proc_t{1} << rbits;
  groups_ = proc_t{1} << (dim / 2);
  nodes_ = proc_t{1} << dim;
  chans_per_router_ =
      groups_ > 1 ? (groups_ - 1 + routers_ - 1) / routers_ : 0;
  finalize_links();
}

void DragonflyTopology::global_link(proc_t gi, proc_t gj, proc_t& ra,
                                    proc_t& rb, proc_t& chan) const {
  chan = (gj + groups_ - gi - 1) & (groups_ - 1);
  ra = chan / chans_per_router_;
  rb = ((gi + groups_ - gj - 1) & (groups_ - 1)) / chans_per_router_;
}

proc_t DragonflyTopology::port_neighbor(proc_t node, int port) const {
  VMP_REQUIRE(node < nodes_ && port >= 0 && port < max_ports(),
              "port_neighbor: node/port out of range");
  const proc_t g = group_of(node);
  const proc_t r = router_of(node);
  const proc_t nlocal = routers_ - 1;
  if (port < static_cast<int>(nlocal)) {
    const proc_t s =
        static_cast<proc_t>(port) < r ? static_cast<proc_t>(port)
                                      : static_cast<proc_t>(port) + 1;
    return g * routers_ + s;
  }
  const proc_t chan =
      r * chans_per_router_ + (static_cast<proc_t>(port) - nlocal);
  if (groups_ <= 1 || chan >= groups_ - 1) return kNoNeighbor;
  const proc_t gj = (g + chan + 1) & (groups_ - 1);
  const proc_t rb = ((g + groups_ - gj - 1) & (groups_ - 1)) /
                    chans_per_router_;
  return gj * routers_ + rb;
}

void DragonflyTopology::route_minimal(proc_t src, proc_t dst,
                                      std::vector<Hop>& out) const {
  if (src == dst) return;
  const proc_t gi = group_of(src), gj = group_of(dst);
  proc_t at = src;
  if (gi != gj) {
    proc_t ra, rb, chan;
    global_link(gi, gj, ra, rb, chan);
    if (router_of(at) != ra) {
      const proc_t to = gi * routers_ + ra;
      out.push_back(Hop{at, to, 0, local_port(router_of(at), ra)});
      at = to;
    }
    const int gport =
        static_cast<int>(routers_ - 1 + chan % chans_per_router_);
    const proc_t to = gj * routers_ + rb;
    out.push_back(Hop{at, to, 1, gport});
    at = to;
  }
  if (at != dst) {
    out.push_back(Hop{at, dst, 0, local_port(router_of(at), router_of(dst))});
  }
}

void DragonflyTopology::route(proc_t src, proc_t dst,
                              std::vector<Hop>& out) const {
  if (src == dst) return;
  const proc_t gi = group_of(src), gj = group_of(dst);
  if (mode_ == RouteMode::Valiant && gi != gj && groups_ > 2) {
    const std::uint64_t h =
        mix64((static_cast<std::uint64_t>(src) << 32) | dst);
    proc_t gv = static_cast<proc_t>(h & (groups_ - 1));
    while (gv == gi || gv == gj) gv = (gv + 1) & (groups_ - 1);
    const proc_t via =
        gv * routers_ + static_cast<proc_t>((h >> 32) & (routers_ - 1));
    route_minimal(src, via, out);
    route_minimal(via, dst, out);
    return;
  }
  route_minimal(src, dst, out);
}

Hop DragonflyTopology::first_hop(proc_t from, proc_t dst) const {
  VMP_REQUIRE(from != dst, "first_hop: already at destination");
  const proc_t gi = group_of(from), gj = group_of(dst);
  if (gi == gj) {
    return Hop{from, dst, 0, local_port(router_of(from), router_of(dst))};
  }
  proc_t ra, rb, chan;
  global_link(gi, gj, ra, rb, chan);
  if (router_of(from) != ra) {
    const proc_t to = gi * routers_ + ra;
    return Hop{from, to, 0, local_port(router_of(from), ra)};
  }
  const int gport = static_cast<int>(routers_ - 1 + chan % chans_per_router_);
  return Hop{from, gj * routers_ + rb, 1, gport};
}

void DragonflyTopology::min_first_ports(proc_t from, proc_t dst,
                                        std::vector<int>& out) const {
  if (from == dst) return;
  out.push_back(first_hop(from, dst).port);
}

}  // namespace vmp
