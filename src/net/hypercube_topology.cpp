#include "net/hypercube_topology.hpp"

#include <bit>

namespace vmp {

HypercubeTopology::HypercubeTopology(int dim)
    : dim_(dim), procs_(dim >= 0 && dim < 31 ? (proc_t{1} << dim) : 0) {
  VMP_REQUIRE(dim >= 0 && dim < 31, "cube dimension must be in [0, 31)");
}

proc_t HypercubeTopology::port_neighbor(proc_t node, int port) const {
  VMP_REQUIRE(node < procs_ && port >= 0 && port < dim_,
              "port_neighbor: node/port out of range");
  return node ^ (proc_t{1} << port);
}

std::uint64_t HypercubeTopology::link_id(proc_t node, int port) const {
  VMP_REQUIRE(node < procs_ && port >= 0 && port < dim_,
              "link_id: node/port out of range");
  // Dense id: dimension-major, then the lower endpoint's address with the
  // crossed bit squeezed out — 2^(dim-1) links per dimension.
  const proc_t bit = proc_t{1} << port;
  const proc_t lo = node & ~bit;
  const proc_t low = lo & (bit - 1);
  const proc_t high = (lo >> (port + 1)) << port;
  return static_cast<std::uint64_t>(port) * (procs_ >> 1) + (low | high);
}

std::uint64_t HypercubeTopology::link_count() const {
  return dim_ == 0 ? 0
                   : static_cast<std::uint64_t>(dim_) * (procs_ >> 1);
}

std::vector<Link> HypercubeTopology::links() const {
  std::vector<Link> out;
  out.reserve(static_cast<std::size_t>(link_count()));
  for (int d = 0; d < dim_; ++d) {
    const proc_t bit = proc_t{1} << d;
    for (proc_t node = 0; node < procs_; ++node)
      if ((node & bit) == 0)
        out.push_back(Link{link_id(node, d), node, node | bit, d});
  }
  return out;
}

void HypercubeTopology::route(proc_t src, proc_t dst,
                              std::vector<Hop>& out) const {
  proc_t at = src;
  proc_t diff = at ^ dst;
  while (diff != 0) {
    const int d = std::countr_zero(diff);
    const proc_t to = at ^ (proc_t{1} << d);
    out.push_back(Hop{at, to, d, d});
    at = to;
    diff = at ^ dst;
  }
}

Hop HypercubeTopology::first_hop(proc_t from, proc_t dst) const {
  VMP_REQUIRE(from != dst, "first_hop: already at destination");
  const int d = std::countr_zero(from ^ dst);
  return Hop{from, from ^ (proc_t{1} << d), d, d};
}

void HypercubeTopology::min_first_ports(proc_t from, proc_t dst,
                                        std::vector<int>& out) const {
  const proc_t diff = from ^ dst;
  for (int d = 0; d < dim_; ++d)
    if (((diff >> d) & 1u) != 0) out.push_back(d);
}

bool HypercubeTopology::route_avoiding(proc_t src, proc_t dst,
                                       const LinkDeadFn& link_dead,
                                       const NodeDeadFn& node_dead,
                                       std::vector<Hop>& out) const {
  if (src == dst) return true;
  if (std::popcount(src ^ dst) == 1) {
    const int dim = std::countr_zero(src ^ dst);
    for (int d2 = 0; d2 < dim_; ++d2) {
      if (d2 == dim) continue;
      const proc_t bit2 = proc_t{1} << d2;
      const proc_t a = src ^ bit2;
      const proc_t b = dst ^ bit2;
      if (node_dead(a) || node_dead(b)) continue;
      if (link_dead(src, d2) || link_dead(a, dim) || link_dead(b, d2))
        continue;
      out.push_back(Hop{src, a, d2, d2});
      out.push_back(Hop{a, b, dim, dim});
      out.push_back(Hop{b, dst, d2, d2});
      return true;
    }
    return false;
  }
  return Topology::route_avoiding(src, dst, link_dead, node_dead, out);
}

bool HypercubeTopology::detour_first(proc_t from, proc_t dst,
                                     const LinkDeadFn& link_dead,
                                     const NodeDeadFn& node_dead, Hop& hop,
                                     int& force_port) const {
  const proc_t diff = from ^ dst;
  const int blocked = std::countr_zero(diff);
  for (int d = 0; d < dim_; ++d) {
    if (((diff >> d) & 1u) != 0) continue;
    if (link_dead(from, d)) continue;
    const proc_t nb = from ^ (proc_t{1} << d);
    if (node_dead(nb)) continue;
    hop = Hop{from, nb, d, d};
    force_port = blocked;
    return true;
  }
  return false;
}

}  // namespace vmp
