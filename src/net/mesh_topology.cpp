#include "net/mesh_topology.hpp"

namespace vmp {

MeshTorusTopology::MeshTorusTopology(int dim, bool wrap)
    : dim_(dim), wrap_(wrap) {
  // The link/port tables are O(nodes); keep the preset to sizes a bench
  // or test actually instantiates (the hypercube stays analytic instead).
  VMP_REQUIRE(dim >= 0 && dim <= 20,
              "mesh/torus preset supports dim in [0, 20]");
  naxes_ = dim >= 2 ? 2 : 1;
  const int bits0 = (dim + 1) / 2;
  ext_[0] = proc_t{1} << bits0;
  shift_[0] = 0;
  if (naxes_ == 2) {
    ext_[1] = proc_t{1} << (dim - bits0);
    shift_[1] = bits0;
  }
  if (dim == 0) ext_[0] = 1;
  nodes_ = proc_t{1} << dim;
  diameter_ = 0;
  for (int a = 0; a < naxes_; ++a)
    diameter_ += static_cast<int>(wrap_ ? ext_[a] / 2
                                        : (ext_[a] == 0 ? 0 : ext_[a] - 1));
  finalize_links();
}

proc_t MeshTorusTopology::port_neighbor(proc_t node, int port) const {
  VMP_REQUIRE(node < nodes_ && port >= 0 && port < max_ports(),
              "port_neighbor: node/port out of range");
  const int axis = port / 2;
  const int dir = (port % 2 == 0) ? +1 : -1;
  const proc_t ext = ext_[axis];
  if (ext < 2) return kNoNeighbor;
  // A wrapped extent-2 ring is a single link; keep only the + port.
  if (wrap_ && ext == 2 && dir < 0) return kNoNeighbor;
  const proc_t c = coord(node, axis);
  proc_t nc;
  if (wrap_) {
    nc = (c + ext + static_cast<proc_t>(dir)) & (ext - 1);
  } else {
    if (dir > 0 && c + 1 >= ext) return kNoNeighbor;
    if (dir < 0 && c == 0) return kNoNeighbor;
    nc = c + static_cast<proc_t>(dir);
  }
  const proc_t mask = (ext - 1) << shift_[axis];
  return (node & ~mask) | (nc << shift_[axis]);
}

int MeshTorusTopology::step_dir(proc_t from, proc_t dst, int axis,
                                proc_t& steps) const {
  const proc_t cs = coord(from, axis);
  const proc_t cd = coord(dst, axis);
  if (cs == cd) {
    steps = 0;
    return 0;
  }
  if (!wrap_) {
    if (cd > cs) {
      steps = cd - cs;
      return +1;
    }
    steps = cs - cd;
    return -1;
  }
  const proc_t ext = ext_[axis];
  const proc_t fwd = (cd - cs) & (ext - 1);
  if (fwd <= ext - fwd) {
    steps = fwd;
    return +1;
  }
  steps = ext - fwd;
  return -1;
}

Hop MeshTorusTopology::step_hop(proc_t from, int axis, int dir) const {
  int port = 2 * axis + (dir > 0 ? 0 : 1);
  if (wrap_ && ext_[axis] == 2) port = 2 * axis;
  const proc_t to = port_neighbor(from, port);
  VMP_REQUIRE(to != kNoNeighbor, "step off the mesh boundary");
  return Hop{from, to, axis, port};
}

void MeshTorusTopology::route(proc_t src, proc_t dst,
                              std::vector<Hop>& out) const {
  proc_t at = src;
  for (int axis = 0; axis < naxes_; ++axis) {
    proc_t steps = 0;
    const int dir = step_dir(at, dst, axis, steps);
    for (proc_t s = 0; s < steps; ++s) {
      const Hop h = step_hop(at, axis, dir);
      out.push_back(h);
      at = h.to;
    }
  }
}

Hop MeshTorusTopology::first_hop(proc_t from, proc_t dst) const {
  VMP_REQUIRE(from != dst, "first_hop: already at destination");
  for (int axis = 0; axis < naxes_; ++axis) {
    proc_t steps = 0;
    const int dir = step_dir(from, dst, axis, steps);
    if (steps != 0) return step_hop(from, axis, dir);
  }
  VMP_REQUIRE(false, "first_hop: unreachable");
  return Hop{};
}

void MeshTorusTopology::min_first_ports(proc_t from, proc_t dst,
                                        std::vector<int>& out) const {
  for (int axis = 0; axis < naxes_; ++axis) {
    proc_t steps = 0;
    const int dir = step_dir(from, dst, axis, steps);
    if (steps == 0) continue;
    out.push_back(step_hop(from, axis, dir).port);
    // On a ring, the halfway-around case is minimal both ways.
    if (wrap_ && ext_[axis] > 2 && steps * 2 == ext_[axis])
      out.push_back(2 * axis + (dir > 0 ? 1 : 0));
  }
}

}  // namespace vmp
