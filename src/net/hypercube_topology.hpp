/// \file hypercube_topology.hpp
/// \brief The Boolean n-cube: the paper's machine, and the default preset.
///
/// Ports coincide with cube dimensions (`port_neighbor(n, d) == n ^ 2^d`),
/// every logical cube edge is one physical link (`unit_hop()`), and each
/// dimension is its own traffic axis — so the machine's per-axis
/// histograms reproduce the seed per-dimension histograms exactly.  All
/// queries are analytic (no tables): the cube supports the full
/// `dim < 31` range of `Cube` without materializing 2^dim state.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace vmp {

class HypercubeTopology final : public Topology {
 public:
  explicit HypercubeTopology(int dim);

  [[nodiscard]] const char* name() const override { return "hypercube"; }
  [[nodiscard]] TopologyKind kind() const override {
    return TopologyKind::Hypercube;
  }
  [[nodiscard]] proc_t node_count() const override { return procs_; }
  [[nodiscard]] int axis_count() const override { return dim_; }
  [[nodiscard]] const char* axis_name(int) const override { return "dim"; }
  [[nodiscard]] int diameter() const override { return dim_; }
  [[nodiscard]] int max_ports() const override { return dim_; }
  [[nodiscard]] proc_t port_neighbor(proc_t node, int port) const override;
  [[nodiscard]] int port_axis(proc_t, int port) const override { return port; }
  [[nodiscard]] std::uint64_t link_id(proc_t node, int port) const override;
  [[nodiscard]] std::uint64_t link_count() const override;
  [[nodiscard]] std::vector<Link> links() const override;
  [[nodiscard]] bool unit_hop() const override { return true; }

  /// Ascending differing address bits — dimension-ordered e-cube routing,
  /// the same order the seed packet router walked.
  void route(proc_t src, proc_t dst, std::vector<Hop>& out) const override;
  [[nodiscard]] Hop first_hop(proc_t from, proc_t dst) const override;
  void min_first_ports(proc_t from, proc_t dst,
                       std::vector<int>& out) const override;

  /// Adjacent pairs take the machine's historical 3-hop parallel-path
  /// detour (src → src^2^d2 → dst^2^d2 → dst, lowest live d2 wins) so the
  /// fault-recovery charges stay bit-identical to the seed; everything
  /// else falls back to the generic live BFS.
  [[nodiscard]] bool route_avoiding(proc_t src, proc_t dst,
                                    const LinkDeadFn& link_dead,
                                    const NodeDeadFn& node_dead,
                                    std::vector<Hop>& out) const override;

  /// The seed router's sideways escape: one live hop across a
  /// NON-differing bit (toward a live node), then force the packet across
  /// the blocked dimension — the lowest differing bit — from there.
  [[nodiscard]] bool detour_first(proc_t from, proc_t dst,
                                  const LinkDeadFn& link_dead,
                                  const NodeDeadFn& node_dead, Hop& hop,
                                  int& force_port) const override;

 private:
  int dim_;
  proc_t procs_;
};

}  // namespace vmp
