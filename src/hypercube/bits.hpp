/// \file bits.hpp
/// \brief Bit-manipulation utilities for Boolean-cube (hypercube) addressing.
///
/// A Boolean n-cube has `2^n` nodes; node addresses are n-bit integers and
/// two nodes are neighbours iff their addresses differ in exactly one bit.
/// Subcubes are described by *dimension masks*: a mask with k bits set names
/// the 2^k-node subcube spanned by those address bits.
#pragma once

#include <bit>
#include <cstdint>

#include "hypercube/check.hpp"

namespace vmp {

/// True iff `x` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Exact base-2 logarithm of a power of two.
[[nodiscard]] inline int log2_exact(std::uint64_t x) {
  VMP_REQUIRE(is_pow2(x), "log2_exact requires a power of two");
  return std::countr_zero(x);
}

/// Ceiling of log2; log2_ceil(1) == 0.
[[nodiscard]] constexpr int log2_ceil(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

/// Number of set bits.
[[nodiscard]] constexpr int popcount(std::uint64_t x) noexcept {
  return std::popcount(x);
}

/// Neighbour of `node` across cube dimension `dim`.
[[nodiscard]] constexpr std::uint32_t cube_neighbor(std::uint32_t node,
                                                    int dim) noexcept {
  return node ^ (std::uint32_t{1} << dim);
}

/// Bit `dim` of `node` as 0/1.
[[nodiscard]] constexpr int bit_of(std::uint32_t node, int dim) noexcept {
  return static_cast<int>((node >> dim) & 1u);
}

/// Extract the bits of `node` selected by `mask`, compacted to the low end.
/// Example: extract_bits(0b1011, 0b1010) == 0b11.
[[nodiscard]] constexpr std::uint32_t extract_bits(std::uint32_t node,
                                                   std::uint32_t mask) noexcept {
  std::uint32_t out = 0;
  int pos = 0;
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    const int b = std::countr_zero(m);
    out |= static_cast<std::uint32_t>((node >> b) & 1u) << pos;
    ++pos;
  }
  return out;
}

/// Inverse of extract_bits: scatter the low popcount(mask) bits of `value`
/// into the positions selected by `mask`.
[[nodiscard]] constexpr std::uint32_t deposit_bits(std::uint32_t value,
                                                   std::uint32_t mask) noexcept {
  std::uint32_t out = 0;
  int pos = 0;
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    const int b = std::countr_zero(m);
    out |= static_cast<std::uint32_t>((value >> pos) & 1u) << b;
    ++pos;
  }
  return out;
}

/// The dimension index of the i-th set bit of `mask` (i counted from 0 at
/// the least-significant set bit).
[[nodiscard]] inline int nth_set_bit(std::uint32_t mask, int i) {
  VMP_REQUIRE(i >= 0 && i < popcount(mask), "bit index out of range");
  std::uint32_t m = mask;
  for (int k = 0; k < i; ++k) m &= m - 1;
  return std::countr_zero(m);
}

/// Hamming distance between two cube addresses (== hop count of the
/// shortest routing path between them).
[[nodiscard]] constexpr int hamming_distance(std::uint32_t a,
                                             std::uint32_t b) noexcept {
  return std::popcount(a ^ b);
}

}  // namespace vmp
