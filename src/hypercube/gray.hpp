/// \file gray.hpp
/// \brief Binary-reflected Gray code, the standard mesh→cube embedding.
///
/// Consecutive Gray codewords differ in exactly one bit, so mapping mesh
/// coordinate `i` to cube address `gray_encode(i)` places mesh neighbours
/// on cube neighbours (dilation-1 embedding of a line/ring into a cube;
/// see Johnsson, "Communication Efficient Basic Linear Algebra Computations
/// on Hypercube Architectures", JPDC 1987).
#pragma once

#include <cstdint>

namespace vmp {

/// i-th binary-reflected Gray codeword.
[[nodiscard]] constexpr std::uint32_t gray_encode(std::uint32_t i) noexcept {
  return i ^ (i >> 1);
}

/// Inverse of gray_encode.
[[nodiscard]] constexpr std::uint32_t gray_decode(std::uint32_t g) noexcept {
  std::uint32_t i = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) i ^= i >> shift;
  return i;
}

/// Rank along the Gray ring at which codewords `a` and `b` (ranks, not
/// codewords) are cube neighbours: true iff gray_encode(a) and
/// gray_encode(b) differ in one bit.
[[nodiscard]] constexpr bool gray_adjacent(std::uint32_t a,
                                           std::uint32_t b) noexcept {
  const std::uint32_t x = gray_encode(a) ^ gray_encode(b);
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace vmp
