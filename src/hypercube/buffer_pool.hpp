/// \file buffer_pool.hpp
/// \brief Size-bucketed recycling allocator for the machine's hot paths.
///
/// Every lockstep communication round needs scratch memory to stage the
/// outgoing payloads (staging is what makes in-place combining race-free,
/// see hypercube/machine.hpp).  Allocating that scratch from the heap per
/// round dominates host wall-clock on large runs; the BufferPool instead
/// recycles blocks through power-of-two byte buckets, so a steady-state
/// exchange loop performs ZERO heap allocations.
///
/// The pool is owned by the Cube and used only from the host thread that
/// drives the lockstep rounds (blocks are acquired before and released
/// after any parallel_for), so no locking is needed.  Every acquire is
/// counted in the owning SimClock's statistics:
///
///   pool_hits    — acquires served by recycling an existing block
///   pool_misses  — acquires that had to touch the heap
///   alloc_bytes  — heap bytes newly allocated on misses
///
/// which surface in the vmp-profile-v1 `totals` block, making the
/// zero-allocation claim machine-checkable (scripts/check.sh asserts
/// steady-state pool hits == 100% on the primitive bench hot loop).
#pragma once

#include <bit>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "hypercube/check.hpp"
#include "hypercube/sim_clock.hpp"
#include "obs/metrics.hpp"

namespace vmp {

class BufferPool {
 public:
  /// `clock` (optional) receives the hit/miss/alloc statistics.
  explicit BufferPool(SimClock* clock = nullptr) : clock_(clock) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII lease of one pooled block; returns it to the pool's free list on
  /// destruction.  Movable so it can be handed to helpers; never copyable.
  class Block {
   public:
    Block() = default;
    Block(Block&& other) noexcept { *this = std::move(other); }
    Block& operator=(Block&& other) noexcept {
      release();
      pool_ = other.pool_;
      bytes_ = other.bytes_;
      bucket_ = other.bucket_;
      other.pool_ = nullptr;
      other.bytes_ = nullptr;
      return *this;
    }
    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;
    ~Block() { release(); }

    /// Start of the leased storage (aligned like ::operator new, i.e. for
    /// any type without extended alignment).  Null for an empty lease.
    [[nodiscard]] void* data() const { return bytes_; }
    /// Usable capacity — the bucket size, ≥ the requested byte count.
    [[nodiscard]] std::size_t size() const { return bytes_ ? size_of(bucket_) : 0; }

   private:
    friend class BufferPool;
    Block(BufferPool* pool, std::byte* bytes, int bucket)
        : pool_(pool), bytes_(bytes), bucket_(bucket) {}
    void release() {
      if (pool_ && bytes_) pool_->put_back(bytes_, bucket_);
      pool_ = nullptr;
      bytes_ = nullptr;
    }
    BufferPool* pool_ = nullptr;
    std::byte* bytes_ = nullptr;
    int bucket_ = 0;
  };

  /// Lease a block of at least `bytes` bytes.  Requests are rounded up to
  /// the enclosing power-of-two bucket (minimum 64 bytes) so that nearby
  /// sizes share a free list; zero-byte requests return an empty lease
  /// without touching the pool.
  [[nodiscard]] Block acquire(std::size_t bytes) {
    return acquire_impl(bytes, /*slab=*/false);
  }

  /// Same lease, but counted as slab-arena storage (comm/dist_buffer.hpp):
  /// a miss additionally lands in SimStats::slab_allocs / slab_bytes, so
  /// profiles can split heap traffic into staging scratch vs. the arenas
  /// backing distributed objects.
  [[nodiscard]] Block acquire_slab(std::size_t bytes) {
    return acquire_impl(bytes, /*slab=*/true);
  }

  /// Drop every free block back to the heap (leased blocks are unaffected
  /// and still return here afterwards).  Mainly for tests.
  void trim() {
    for (auto& list : free_) list.clear();
  }

  /// Lifetime counters of this pool (independent of any SimClock reset).
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Total heap bytes this pool ever allocated (monotone; recycling never
  /// increases it).
  [[nodiscard]] std::uint64_t heap_bytes() const { return heap_bytes_; }
  /// Number of blocks currently sitting in the free lists.
  [[nodiscard]] std::size_t free_blocks() const {
    std::size_t n = 0;
    for (const auto& list : free_) n += list.size();
    return n;
  }

  /// The bucket capacity a request of `bytes` bytes is served from:
  /// the smallest power of two ≥ max(bytes, 64).
  [[nodiscard]] static std::size_t bucket_bytes(std::size_t bytes) {
    return bytes == 0 ? 0 : size_of(bucket_of(bytes));
  }

  /// Wire the engine metrics: registers a snapshot probe that publishes
  /// pool occupancy — free/leased block and byte totals plus a per-bucket
  /// split for every bucket that has ever held a block — at read time.
  /// Nothing runs on the acquire/release hot path beyond the existing
  /// leased counters.  All gauges are Sim-class: the pool is driven by the
  /// host-side lockstep rounds, so its occupancy is deterministic.
  void set_metrics(MetricsRegistry* m) {
    metrics_ = m;
    if (m != nullptr)
      m->add_probe([this, m] { publish_metrics(*m); });
  }

 private:
  static constexpr std::size_t kMinBytes = 64;
  static constexpr int kBuckets = 64;

  [[nodiscard]] Block acquire_impl(std::size_t bytes, bool slab) {
    if (bytes == 0) return Block{};
    const int bucket = bucket_of(bytes);
    auto& list = free_[static_cast<std::size_t>(bucket)];
    if (!list.empty()) {
      std::byte* p = list.back().release();
      list.pop_back();
      ++hits_;
      ++leased_[static_cast<std::size_t>(bucket)];
      if (clock_) clock_->note_pool_hit();
      return Block{this, p, bucket};
    }
    const std::size_t sz = size_of(bucket);
    // For-overwrite: leased storage is always written before it is read
    // (staging buffers are packed, arena tiles are filled/assigned), and
    // zero-initializing a power-of-two bucket would touch up to 2× the
    // requested bytes — the dominant cold-path cost for slab arenas.
    auto p = std::make_unique_for_overwrite<std::byte[]>(sz);
    ++misses_;
    heap_bytes_ += sz;
    ++leased_[static_cast<std::size_t>(bucket)];
    if (clock_) {
      clock_->note_pool_miss(sz);
      if (slab) clock_->note_slab_alloc(sz);
    }
    return Block{this, p.release(), bucket};
  }

  [[nodiscard]] static int bucket_of(std::size_t bytes) {
    const std::size_t want = bytes < kMinBytes ? kMinBytes : bytes;
    return static_cast<int>(std::bit_width(want - 1));  // ceil log2
  }
  [[nodiscard]] static std::size_t size_of(int bucket) {
    return std::size_t{1} << bucket;
  }

  void put_back(std::byte* p, int bucket) {
    free_[static_cast<std::size_t>(bucket)].emplace_back(p);
    --leased_[static_cast<std::size_t>(bucket)];
  }

  void publish_metrics(MetricsRegistry& m) const {
    std::size_t free_blocks_n = 0, free_bytes = 0;
    std::size_t leased_blocks = 0, leased_bytes = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::size_t bi = static_cast<std::size_t>(b);
      const std::size_t nfree = free_[bi].size();
      const std::size_t nleased = leased_[bi];
      free_blocks_n += nfree;
      free_bytes += nfree * size_of(b);
      leased_blocks += nleased;
      leased_bytes += nleased * size_of(b);
      if (nfree == 0 && nleased == 0) continue;
      const std::string prefix = "pool.bucket_" + std::to_string(size_of(b));
      m.gauge(prefix + ".free_blocks", MetricClass::Sim)
          .set(static_cast<double>(nfree));
      m.gauge(prefix + ".leased_blocks", MetricClass::Sim)
          .set(static_cast<double>(nleased));
      m.gauge(prefix + ".bytes", MetricClass::Sim)
          .set(static_cast<double>((nfree + nleased) * size_of(b)));
    }
    m.gauge("pool.free_blocks", MetricClass::Sim)
        .set(static_cast<double>(free_blocks_n));
    m.gauge("pool.free_bytes", MetricClass::Sim)
        .set(static_cast<double>(free_bytes));
    m.gauge("pool.leased_blocks", MetricClass::Sim)
        .set(static_cast<double>(leased_blocks));
    m.gauge("pool.leased_bytes", MetricClass::Sim)
        .set(static_cast<double>(leased_bytes));
    m.gauge("pool.heap_bytes", MetricClass::Sim)
        .set(static_cast<double>(heap_bytes_));
    m.gauge("pool.hits", MetricClass::Sim).set(static_cast<double>(hits_));
    m.gauge("pool.misses", MetricClass::Sim)
        .set(static_cast<double>(misses_));
  }

  SimClock* clock_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<std::byte[]>> free_[kBuckets];
  std::size_t leased_[kBuckets] = {};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t heap_bytes_ = 0;
};

}  // namespace vmp
