/// \file machine.hpp
/// \brief The lockstep Boolean-cube machine the whole library runs on.
///
/// `Cube` models a distributed-memory hypercube of `p = 2^dim` virtual
/// processors executing SIMD-style (as the Connection Machine did): every
/// step is collective, and the simulated clock advances once per step by
/// the cost of the slowest processor.  Two step types exist:
///
///  * `compute(...)`   — each processor runs the same local function on its
///                       own memory; charged `max_flops · t_a`.
///  * `exchange<T>(d, send, recv)` — one-port pairwise communication along
///                       cube dimension `d`; every processor whose partner
///                       offers data receives it; charged `τ + max_n · t_c`.
///
/// Correctness never depends on host threading: the per-processor loops may
/// run on a thread pool (Options::threads), which changes wall-clock speed
/// only, never simulated time or results — the staging buffer inside
/// `exchange` makes in-place combining (all-reduce style) race-free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypercube/bits.hpp"
#include "hypercube/check.hpp"
#include "hypercube/cost_model.hpp"
#include "hypercube/sim_clock.hpp"
#include "hypercube/thread_pool.hpp"

namespace vmp {

/// Processor id inside a cube; addresses are dense in [0, 2^dim).
using proc_t = std::uint32_t;

class Cube {
 public:
  struct Options {
    /// Host threads running the per-processor loops; 0 = one per hardware
    /// thread, 1 = fully serial (deterministic wall-clock, same results).
    unsigned threads = 1;
  };

  explicit Cube(int dim, CostParams params = CostParams::cm2());
  Cube(int dim, CostParams params, Options opts);

  Cube(const Cube&) = delete;
  Cube& operator=(const Cube&) = delete;

  /// Cube dimension (number of address bits / ports per processor).
  [[nodiscard]] int dim() const { return dim_; }
  /// Number of processors, `2^dim()`.
  [[nodiscard]] proc_t procs() const { return procs_; }

  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] const CostParams& costs() const { return clock_.params(); }

  /// One lockstep compute step: run `fn(proc)` on every processor and charge
  /// `max_flops` (the analytic per-processor bound) to the clock.
  /// `total_flops` only feeds statistics; pass the aggregate over all
  /// processors when known, else `max_flops * procs()`.
  template <class F>
  void compute(std::uint64_t max_flops, std::uint64_t total_flops, F&& fn) {
    pool_.parallel_for(0, procs_,
                       [&](std::size_t q) { fn(static_cast<proc_t>(q)); });
    clock_.charge_compute_step(max_flops, total_flops);
  }

  /// Convenience overload: uniform per-processor flop count.
  template <class F>
  void compute(std::uint64_t flops_each, F&& fn) {
    compute(flops_each, flops_each * procs_, std::forward<F>(fn));
  }

  /// Host-side / zero-cost traversal of all processors (data loading,
  /// verification); charged nothing.  Must not be used inside timed
  /// algorithm sections for anything the machine would have to compute.
  template <class F>
  void each_proc(F&& fn) const {
    for (proc_t q = 0; q < procs_; ++q) fn(q);
  }

  /// One lockstep one-port communication round along cube dimension `d`.
  ///
  /// `send(q)` returns the span each processor offers to its partner
  /// `q ^ (1<<d)` (an empty span means "q sends nothing this round");
  /// `recv(q, data)` is invoked on every processor whose partner offered
  /// data.  Sends are staged before any delivery, so `recv` may combine
  /// into (or overwrite) the very buffer `send` exposed.
  ///
  /// Charged `τ + max_elems · t_c` — one message start-up regardless of
  /// message length, the amortization at the heart of the paper's
  /// optimized primitives.  If nobody sends, the round is free (elided).
  template <class T, class SendFn, class RecvFn>
  void exchange(int d, SendFn&& send, RecvFn&& recv) {
    VMP_REQUIRE(d >= 0 && d < dim_, "exchange dimension out of range");
    const std::uint32_t bit = std::uint32_t{1} << d;
    std::vector<std::vector<T>> staged(procs_);
    pool_.parallel_for(0, procs_, [&](std::size_t q) {
      std::span<const T> s = send(static_cast<proc_t>(q));
      staged[q].assign(s.begin(), s.end());
    });
    std::size_t max_elems = 0, total = 0, messages = 0;
    for (proc_t q = 0; q < procs_; ++q) {
      const std::size_t n = staged[q].size();
      if (n == 0) continue;
      ++messages;
      total += n;
      if (n > max_elems) max_elems = n;
    }
    if (messages == 0) return;
    pool_.parallel_for(0, procs_, [&](std::size_t q) {
      const std::vector<T>& in = staged[q ^ bit];
      if (!in.empty())
        recv(static_cast<proc_t>(q), std::span<const T>(in.data(), in.size()));
    });
    clock_.charge_comm_step(max_elems, messages, total, d);
  }

  /// One lockstep ALL-PORT communication round: several cube dimensions are
  /// used simultaneously, one message per port.  `send(q, idx)` offers the
  /// message for `dims[idx]`; `recv(q, idx, data)` delivers what q's
  /// partner across `dims[idx]` offered.  Charged `τ + max_single_port · t_c`
  /// — the all-port model of Johnsson & Ho, where a processor drives all
  /// lg p of its ports at once and only the largest per-port transfer
  /// paces the round.
  template <class T, class SendFn, class RecvFn>
  void exchange_allport(std::span<const int> dims, SendFn&& send,
                        RecvFn&& recv) {
    for (std::size_t a = 0; a < dims.size(); ++a) {
      VMP_REQUIRE(dims[a] >= 0 && dims[a] < dim_,
                  "exchange dimension out of range");
      for (std::size_t b = a + 1; b < dims.size(); ++b)
        VMP_REQUIRE(dims[a] != dims[b], "all-port dims must be distinct");
    }
    const std::size_t nd = dims.size();
    std::vector<std::vector<std::vector<T>>> staged(nd);
    for (std::size_t idx = 0; idx < nd; ++idx) staged[idx].resize(procs_);
    pool_.parallel_for(0, procs_, [&](std::size_t q) {
      for (std::size_t idx = 0; idx < nd; ++idx) {
        std::span<const T> s = send(static_cast<proc_t>(q), idx);
        staged[idx][q].assign(s.begin(), s.end());
      }
    });
    std::size_t max_port = 0, total = 0, messages = 0;
    for (std::size_t idx = 0; idx < nd; ++idx)
      for (proc_t q = 0; q < procs_; ++q) {
        const std::size_t n = staged[idx][q].size();
        if (n == 0) continue;
        ++messages;
        total += n;
        if (n > max_port) max_port = n;
      }
    if (messages == 0) return;
    pool_.parallel_for(0, procs_, [&](std::size_t q) {
      for (std::size_t idx = 0; idx < nd; ++idx) {
        const std::vector<T>& in =
            staged[idx][q ^ (std::uint32_t{1} << dims[idx])];
        if (!in.empty())
          recv(static_cast<proc_t>(q), idx,
               std::span<const T>(in.data(), in.size()));
      }
    });
    clock_.charge_comm_step(max_port, messages, total,
                            nd == 1 ? dims[0] : -1);
  }

  /// One lockstep irregular round: every processor may exchange with ONE
  /// cube neighbour of its choosing (partner(q) must satisfy
  /// partner(partner(q)) == q and be at Hamming distance 1, or equal q for
  /// sitting out).  This models MIMD-style / NEWS-grid communication where
  /// different processors use different ports in the same step — the
  /// operation a Gray-code embedding turns mesh shifts into.
  template <class T, class PartnerFn, class SendFn, class RecvFn>
  void neighbor_exchange(PartnerFn&& partner, SendFn&& send, RecvFn&& recv) {
    for (proc_t q = 0; q < procs_; ++q) {
      const proc_t pq = partner(q);
      if (pq == q) continue;
      VMP_REQUIRE(hamming_distance(q, pq) == 1,
                  "neighbor_exchange partner must be a cube neighbour");
      VMP_REQUIRE(partner(pq) == q, "neighbor_exchange must be symmetric");
    }
    std::vector<std::vector<T>> staged(procs_);
    pool_.parallel_for(0, procs_, [&](std::size_t q) {
      if (partner(static_cast<proc_t>(q)) == static_cast<proc_t>(q)) return;
      std::span<const T> s = send(static_cast<proc_t>(q));
      staged[q].assign(s.begin(), s.end());
    });
    std::size_t max_elems = 0, total = 0, messages = 0;
    for (proc_t q = 0; q < procs_; ++q) {
      const std::size_t n = staged[q].size();
      if (n == 0) continue;
      ++messages;
      total += n;
      if (n > max_elems) max_elems = n;
    }
    if (messages == 0) return;
    pool_.parallel_for(0, procs_, [&](std::size_t q) {
      const proc_t pq = partner(static_cast<proc_t>(q));
      if (pq == static_cast<proc_t>(q)) return;
      const std::vector<T>& in = staged[pq];
      if (!in.empty())
        recv(static_cast<proc_t>(q), std::span<const T>(in.data(), in.size()));
    });
    clock_.charge_comm_step(max_elems, messages, total);
  }

  /// The thread pool backing per-processor loops (exposed for the general
  /// router, which runs its own delivery cycles).
  [[nodiscard]] ThreadPool& pool() { return pool_; }

 private:
  int dim_;
  proc_t procs_;
  SimClock clock_;
  ThreadPool pool_;
};

}  // namespace vmp
