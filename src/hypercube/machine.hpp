/// \file machine.hpp
/// \brief The lockstep Boolean-cube machine the whole library runs on.
///
/// `Cube` models a distributed-memory hypercube of `p = 2^dim` virtual
/// processors executing SIMD-style (as the Connection Machine did): every
/// step is collective, and the simulated clock advances once per step by
/// the cost of the slowest processor.  Two step types exist:
///
///  * `compute(...)`   — each processor runs the same local function on its
///                       own memory; charged `max_flops · t_a`.
///  * `exchange<T>(d, send, recv)` — one-port pairwise communication along
///                       cube dimension `d`; every processor whose partner
///                       offers data receives it; charged `τ + max_n · t_c`.
///
/// Correctness never depends on host threading: the per-processor loops run
/// on a persistent SPMD worker team (hypercube/team.hpp, Options::threads /
/// VMP_THREADS) whose lanes own static processor ranges.  Host threads
/// change wall-clock speed only, never simulated time or results — the
/// staging buffer inside `exchange` makes in-place combining (all-reduce
/// style) race-free, and the per-step statistics are reduced from per-lane
/// integer partials whose sums and maxima are independent of the partition.
/// Multi-round loops open a `session()` so their steps run back to back
/// inside one team activation (see docs/threading.md).
///
/// The machine can run under deterministic fault injection
/// (`enable_faults`): seeded plans of drops, corruption, latency spikes and
/// dead links/nodes, recovered by checksummed bounded retry and
/// route-around.  Within-budget plans leave every result bit-identical;
/// beyond budget the machine throws FaultError.  See docs/faults.md.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "fault/injector.hpp"
#include "hypercube/bits.hpp"
#include "hypercube/buffer_pool.hpp"
#include "hypercube/check.hpp"
#include "hypercube/cost_model.hpp"
#include "hypercube/sim_clock.hpp"
#include "hypercube/team.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vmp {
// proc_t (processor id, dense in [0, 2^dim)) lives in net/topology.hpp.

/// One staged message of a lockstep round, as seen by the fault-recovery
/// engine: the (src, dst) LOGICAL cube edge, the cube dimension it
/// crosses, a caller context index (the all-port port), and a view of the
/// staged payload (which lives either in a persistent staging slot or a
/// staged vector).  On a non-unit-hop topology the logical edge resolves
/// to a multi-hop physical route at delivery/charging time.
template <class T>
struct FaultMsg {
  proc_t src = 0;
  proc_t dst = 0;
  int dim = 0;
  std::size_t port = 0;
  const T* data = nullptr;
  std::size_t len = 0;
  [[nodiscard]] std::span<const T> payload() const { return {data, len}; }
};

namespace detail {

/// Payload types the zero-allocation staging path handles: memcpy-able and
/// without extended alignment (pooled blocks are new-aligned).  Everything
/// else falls back to the vector-staged path.
template <class T>
inline constexpr bool kPoolStageable =
    std::is_trivially_copyable_v<T> && alignof(T) <= alignof(std::max_align_t);

/// One persistent staging slot of the zero-allocation exchange path.  The
/// payload is copied here AT send() TIME (the span send() returns only has
/// to live for the duration of the call), and the slot's capacity persists
/// across rounds, so a steady-state exchange loop never touches the heap.
/// `grew` records the bytes freshly heap-allocated by this round's growth
/// (0 on reuse); the staging lane folds it into its hit/miss partial.
struct StageBuf {
  std::unique_ptr<std::byte[]> bytes;
  std::size_t cap = 0;   ///< capacity in bytes (bucket-rounded, monotone)
  std::size_t len = 0;   ///< elements staged this round
  std::size_t grew = 0;  ///< bytes newly allocated this round

  void skip() {
    len = 0;
    grew = 0;
  }

  template <class T>
  void stage(std::span<const T> s) {
    const std::size_t need = s.size() * sizeof(T);
    grew = 0;
    if (need > cap) {
      const std::size_t want = BufferPool::bucket_bytes(need);
      bytes = std::make_unique<std::byte[]>(want);
      cap = want;
      grew = want;
    }
    if (need != 0) std::memcpy(bytes.get(), s.data(), need);
    len = s.size();
  }

  template <class T>
  [[nodiscard]] const T* data() const {
    return reinterpret_cast<const T*>(bytes.get());
  }
  template <class T>
  [[nodiscard]] std::span<const T> view() const {
    return {data<T>(), len};
  }
};

/// Per-lane partial of one round's message statistics, accumulated while
/// the same lane stages its processor range and reduced in lane order at
/// the barrier.  Everything here is an integer sum or maximum, so the
/// reduced totals are identical for ANY partition of the processors across
/// lanes — this is what keeps SimStats bit-identical across thread counts.
/// Padded so lanes never share a cache line while accumulating.
struct alignas(64) ExPartial {
  std::size_t max_elems = 0;
  std::size_t total = 0;
  std::size_t messages = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t miss_bytes = 0;

  /// Fold one staged send of `len` elements that freshly allocated `grew`
  /// bytes (0 on slot reuse).  Empty sends count nothing, matching the
  /// elided-message rule.
  void note(std::size_t len, std::size_t grew) {
    if (len == 0) return;
    ++messages;
    total += len;
    if (len > max_elems) max_elems = len;
    if (grew != 0) {
      ++pool_misses;
      miss_bytes += grew;
    } else {
      ++pool_hits;
    }
  }

  void merge(const ExPartial& o) {
    if (o.max_elems > max_elems) max_elems = o.max_elems;
    total += o.total;
    messages += o.messages;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    miss_bytes += o.miss_bytes;
  }
};

/// Type-erased holder for the persistent vector staging slots of the
/// non-memcpy exchange path (one `std::vector<std::vector<T>>` per payload
/// type, slot capacities retained across rounds).
struct VecStageBase {
  virtual ~VecStageBase() = default;
};

/// Cached physical routes of one logical cube dimension on a non-unit-hop
/// topology: for every source q the hops of route(q, q ^ 2^d), with the
/// per-hop directed-link index and charge multiplier precomputed so the
/// per-round contention scan is table walks only.  Built lazily per
/// dimension on first use; dead-link detours never go through this cache
/// (kills are consulted per round).
struct DimRoutes {
  bool built = false;
  std::vector<std::uint32_t> off;    ///< procs+1 offsets into hops
  std::vector<Hop> hops;             ///< concatenated route hops
  std::vector<std::uint32_t> lidx;   ///< per hop: directed link index
  std::vector<double> mult;          ///< per hop: per-element multiplier
  std::vector<double> startup;       ///< per src: summed start-up mults
  int common_axis = -1;              ///< shared axis of every hop, or -1
};

template <class T>
struct VecStage : VecStageBase {
  std::vector<std::vector<T>> slots;
};

}  // namespace detail

class Cube {
 public:
  struct Options {
    /// Host threads (team lanes) running the per-processor loops;
    /// 0 = one per hardware thread, 1 = fully serial (deterministic
    /// wall-clock, same results at any setting).  Defaults to the
    /// VMP_THREADS environment variable (unset → 1).
    unsigned threads = env_threads();

    /// Physical network the logical cube's exchanges cross (see
    /// net/topology.hpp and docs/topology.md).  Defaults to the
    /// VMP_TOPOLOGY environment variable (unset → Hypercube, on which
    /// every charge is bit-identical to the historical cube-only
    /// machine).  Algorithms are unchanged by this knob — results are
    /// topology-independent; only routes, charges and fault paths move.
    TopologyKind topology = env_topology();
  };

  explicit Cube(int dim, CostParams params = CostParams::cm2());
  Cube(int dim, CostParams params, Options opts);

  Cube(const Cube&) = delete;
  Cube& operator=(const Cube&) = delete;

  /// Logical cube dimension — the number of address bits, i.e.
  /// `log2(node_count())`.  A *logical* quantity (algorithms recurse over
  /// it regardless of the physical network); for physical-network queries
  /// prefer the topology-neutral accessors below.  Kept as the documented
  /// alias the paper-era call sites use.
  [[nodiscard]] int dim() const { return dim_; }
  /// Number of processors, `2^dim()` (alias of node_count()).
  [[nodiscard]] proc_t procs() const { return procs_; }
  /// Host lanes executing the per-processor loops (≥ 1; 1 = fully serial).
  [[nodiscard]] unsigned threads() const { return team_.lanes(); }

  /// Topology-neutral machine queries (preferred over dim()/procs() in
  /// new code): the physical network underneath the logical cube.
  [[nodiscard]] proc_t node_count() const { return procs_; }
  /// Physical neighbors of processor `p`, in port order.
  [[nodiscard]] std::vector<proc_t> neighbors(proc_t p) const {
    return topo_->neighbors(p);
  }
  /// Physical network diameter (== dim() on the hypercube preset).
  [[nodiscard]] int diameter() const { return topo_->diameter(); }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] TopologyKind topology_kind() const { return topo_->kind(); }
  /// True when every logical cube edge is one physical link (hypercube).
  [[nodiscard]] bool unit_hop() const { return unit_hop_; }

  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] const CostParams& costs() const { return clock_.params(); }

  /// Attach a deterministic fault plan: from now on every communication
  /// round consults the injector, checksums payloads, retries transient
  /// losses with exponential backoff, and routes around dead links.  All
  /// recovery time is charged to the simulated clock under `fault_*` trace
  /// regions; results stay bit-identical to the fault-free run as long as
  /// the plan stays within `policy`'s budget, and FaultError is thrown —
  /// never a wrong answer returned — beyond it.  With no injector attached
  /// (the default) the communication path is exactly the fault-free one.
  void enable_faults(const FaultPlan& plan, RecoveryPolicy policy = {}) {
    faults_ = std::make_unique<FaultInjector>(plan, policy);
    faults_->bind_topology(topo_.get());
  }
  void disable_faults() { faults_.reset(); }
  [[nodiscard]] FaultInjector* faults() { return faults_.get(); }
  [[nodiscard]] const FaultInjector* faults() const { return faults_.get(); }

  /// One lockstep compute step: run `fn(proc)` on every processor and charge
  /// `max_flops` (the analytic per-processor bound) to the clock.
  /// `total_flops` only feeds statistics; pass the aggregate over all
  /// processors when known, else `max_flops * procs()`.
  template <class F>
  void compute(std::uint64_t max_flops, std::uint64_t total_flops, F&& fn) {
    team_.step(procs_, [&](unsigned, std::size_t lo, std::size_t hi) {
      for (std::size_t q = lo; q < hi; ++q) fn(static_cast<proc_t>(q));
    });
    clock_.charge_compute_step(max_flops, total_flops);
  }

  /// Convenience overload: uniform per-processor flop count.
  template <class F>
  void compute(std::uint64_t flops_each, F&& fn) {
    compute(flops_each, flops_each * procs_, std::forward<F>(fn));
  }

  /// Host-side / zero-cost traversal of all processors (data loading,
  /// verification); charged nothing.  Must not be used inside timed
  /// algorithm sections for anything the machine would have to compute.
  template <class F>
  void each_proc(F&& fn) const {
    for (proc_t q = 0; q < procs_; ++q) fn(q);
  }

  /// One lockstep one-port communication round along cube dimension `d`.
  ///
  /// `send(q)` returns the span each processor offers to its partner
  /// `q ^ (1<<d)` (an empty span means "q sends nothing this round");
  /// `recv(q, data)` is invoked on every processor whose partner offered
  /// data.  Sends are staged before any delivery, so `recv` may combine
  /// into (or overwrite) the very buffer `send` exposed.
  ///
  /// Charged `τ + max_elems · t_c` — one message start-up regardless of
  /// message length, the amortization at the heart of the paper's
  /// optimized primitives.  If nobody sends, the round is free (elided).
  ///
  /// Staging lands in per-processor slots whose capacity persists across
  /// rounds (memcpy-able payloads use raw bucket-rounded slots, other
  /// types persistent per-processor vectors), so a steady-state exchange
  /// loop performs zero heap allocations; slot reuse and growth feed the
  /// SimStats pool counters.  The staging pass also accumulates the
  /// round's message statistics into per-lane partials — no serial host
  /// scan runs between staging and delivery.
  template <class T, class SendFn, class RecvFn>
  void exchange(int d, SendFn&& send, RecvFn&& recv) {
    VMP_REQUIRE(d >= 0 && d < dim_, "exchange dimension out of range");
    const std::uint32_t bit = std::uint32_t{1} << d;
    if constexpr (detail::kPoolStageable<T>) {
      detail::StageBuf* stage = stage_slots(procs_);
      detail::ExPartial* parts = lane_partials();
      // Staging before any delivery: the copy is what lets recv combine
      // into (or overwrite) the very buffer send exposed — and send's span
      // only has to outlive its own call.  The partial accumulates in a
      // stack local (registers — the staging memcpy can't alias it) and is
      // stored to the lane's slot once.
      team_.step(procs_, [&](unsigned lane, std::size_t lo, std::size_t hi) {
        detail::ExPartial p;
        for (std::size_t q = lo; q < hi; ++q) {
          stage[q].stage(send(static_cast<proc_t>(q)));
          p.note(stage[q].len, stage[q].grew);
        }
        parts[lane] = p;
      });
      const detail::ExPartial r = reduce_partials();
      if (r.messages == 0) return;
      if (faults_) {
        std::vector<FaultMsg<T>> msgs;
        msgs.reserve(r.messages);
        for (proc_t q = 0; q < procs_; ++q)
          if (stage[q].len != 0)
            msgs.push_back(FaultMsg<T>{q, q ^ bit, d, 0,
                                       stage[q].template data<T>(),
                                       stage[q].len});
        deliver_with_faults<T>(std::move(msgs), r.max_elems, r.messages,
                               r.total, d, [&](const FaultMsg<T>& m) {
                                 recv(m.dst, m.payload());
                               });
        return;
      }
      team_.step(procs_, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
          const detail::StageBuf& in = stage[q ^ bit];
          if (in.len != 0)
            recv(static_cast<proc_t>(q), in.template view<T>());
        }
      });
      charge_round_dim(d, r, [&](proc_t q) { return stage[q].len; });
    } else {
      std::vector<std::vector<T>>& slots = vec_stage_slots<T>(procs_);
      detail::ExPartial* parts = lane_partials();
      team_.step(procs_, [&](unsigned lane, std::size_t lo, std::size_t hi) {
        detail::ExPartial p;
        for (std::size_t q = lo; q < hi; ++q) {
          std::span<const T> s = send(static_cast<proc_t>(q));
          p.note(s.size(), vec_stage_one(slots[q], s));
        }
        parts[lane] = p;
      });
      const detail::ExPartial r = reduce_partials();
      if (r.messages == 0) return;
      if (faults_) {
        std::vector<FaultMsg<T>> msgs;
        msgs.reserve(r.messages);
        for (proc_t q = 0; q < procs_; ++q)
          if (!slots[q].empty())
            msgs.push_back(FaultMsg<T>{q, q ^ bit, d, 0, slots[q].data(),
                                       slots[q].size()});
        deliver_with_faults<T>(std::move(msgs), r.max_elems, r.messages,
                               r.total, d, [&](const FaultMsg<T>& m) {
                                 recv(m.dst, m.payload());
                               });
        return;
      }
      team_.step(procs_, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
          const std::vector<T>& in = slots[q ^ bit];
          if (!in.empty())
            recv(static_cast<proc_t>(q),
                 std::span<const T>(in.data(), in.size()));
        }
      });
      charge_round_dim(d, r, [&](proc_t q) { return slots[q].size(); });
    }
  }

  /// One lockstep ALL-PORT communication round: several cube dimensions are
  /// used simultaneously, one message per port.  `send(q, idx)` offers the
  /// message for `dims[idx]`; `recv(q, idx, data)` delivers what q's
  /// partner across `dims[idx]` offered.  Charged `τ + max_single_port · t_c`
  /// — the all-port model of Johnsson & Ho, where a processor drives all
  /// lg p of its ports at once and only the largest per-port transfer
  /// paces the round.
  template <class T, class SendFn, class RecvFn>
  void exchange_allport(std::span<const int> dims, SendFn&& send,
                        RecvFn&& recv) {
    for (std::size_t a = 0; a < dims.size(); ++a) {
      VMP_REQUIRE(dims[a] >= 0 && dims[a] < dim_,
                  "exchange dimension out of range");
      for (std::size_t b = a + 1; b < dims.size(); ++b)
        VMP_REQUIRE(dims[a] != dims[b], "all-port dims must be distinct");
    }
    const std::size_t nd = dims.size();
    if constexpr (detail::kPoolStageable<T>) {
      detail::StageBuf* stage = stage_slots(nd * procs_);
      detail::ExPartial* parts = lane_partials();
      team_.step(procs_, [&](unsigned lane, std::size_t lo, std::size_t hi) {
        detail::ExPartial p;
        for (std::size_t q = lo; q < hi; ++q)
          for (std::size_t idx = 0; idx < nd; ++idx) {
            detail::StageBuf& sb = stage[idx * procs_ + q];
            sb.stage(send(static_cast<proc_t>(q), idx));
            p.note(sb.len, sb.grew);
          }
        parts[lane] = p;
      });
      const detail::ExPartial r = reduce_partials();
      if (r.messages == 0) return;
      if (faults_) {
        std::vector<FaultMsg<T>> msgs;
        msgs.reserve(r.messages);
        for (std::size_t idx = 0; idx < nd; ++idx)
          for (proc_t q = 0; q < procs_; ++q) {
            const detail::StageBuf& s = stage[idx * procs_ + q];
            if (s.len != 0)
              msgs.push_back(FaultMsg<T>{
                  q, q ^ (std::uint32_t{1} << dims[idx]), dims[idx], idx,
                  s.template data<T>(), s.len});
          }
        deliver_with_faults<T>(std::move(msgs), r.max_elems, r.messages,
                               r.total, nd == 1 ? dims[0] : -1,
                               [&](const FaultMsg<T>& m) {
                                 recv(m.dst, m.port, m.payload());
                               });
        return;
      }
      team_.step(procs_, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q)
          for (std::size_t idx = 0; idx < nd; ++idx) {
            const detail::StageBuf& in =
                stage[idx * procs_ + (q ^ (std::uint32_t{1} << dims[idx]))];
            if (in.len != 0)
              recv(static_cast<proc_t>(q), idx, in.template view<T>());
          }
      });
      charge_round_allport(dims, r, [&](proc_t q, std::size_t idx) {
        return stage[idx * procs_ + q].len;
      });
    } else {
      std::vector<std::vector<T>>& slots = vec_stage_slots<T>(nd * procs_);
      detail::ExPartial* parts = lane_partials();
      team_.step(procs_, [&](unsigned lane, std::size_t lo, std::size_t hi) {
        detail::ExPartial p;
        for (std::size_t q = lo; q < hi; ++q)
          for (std::size_t idx = 0; idx < nd; ++idx) {
            std::span<const T> s = send(static_cast<proc_t>(q), idx);
            p.note(s.size(), vec_stage_one(slots[idx * procs_ + q], s));
          }
        parts[lane] = p;
      });
      const detail::ExPartial r = reduce_partials();
      if (r.messages == 0) return;
      if (faults_) {
        std::vector<FaultMsg<T>> msgs;
        msgs.reserve(r.messages);
        for (std::size_t idx = 0; idx < nd; ++idx)
          for (proc_t q = 0; q < procs_; ++q) {
            const std::vector<T>& s = slots[idx * procs_ + q];
            if (!s.empty())
              msgs.push_back(FaultMsg<T>{
                  q, q ^ (std::uint32_t{1} << dims[idx]), dims[idx], idx,
                  s.data(), s.size()});
          }
        deliver_with_faults<T>(std::move(msgs), r.max_elems, r.messages,
                               r.total, nd == 1 ? dims[0] : -1,
                               [&](const FaultMsg<T>& m) {
                                 recv(m.dst, m.port, m.payload());
                               });
        return;
      }
      team_.step(procs_, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q)
          for (std::size_t idx = 0; idx < nd; ++idx) {
            const std::vector<T>& in =
                slots[idx * procs_ + (q ^ (std::uint32_t{1} << dims[idx]))];
            if (!in.empty())
              recv(static_cast<proc_t>(q), idx,
                   std::span<const T>(in.data(), in.size()));
          }
      });
      charge_round_allport(dims, r, [&](proc_t q, std::size_t idx) {
        return slots[idx * procs_ + q].size();
      });
    }
  }

  /// One lockstep irregular round: every processor may exchange with ONE
  /// cube neighbour of its choosing (partner(q) must satisfy
  /// partner(partner(q)) == q and be at Hamming distance 1, or equal q for
  /// sitting out).  This models MIMD-style / NEWS-grid communication where
  /// different processors use different ports in the same step — the
  /// operation a Gray-code embedding turns mesh shifts into.
  template <class T, class PartnerFn, class SendFn, class RecvFn>
  void neighbor_exchange(PartnerFn&& partner, SendFn&& send, RecvFn&& recv) {
    for (proc_t q = 0; q < procs_; ++q) {
      const proc_t pq = partner(q);
      if (pq == q) continue;
      VMP_REQUIRE(hamming_distance(q, pq) == 1,
                  "neighbor_exchange partner must be a cube neighbour");
      VMP_REQUIRE(partner(pq) == q, "neighbor_exchange must be symmetric");
    }
    if constexpr (detail::kPoolStageable<T>) {
      detail::StageBuf* stage = stage_slots(procs_);
      detail::ExPartial* parts = lane_partials();
      team_.step(procs_, [&](unsigned lane, std::size_t lo, std::size_t hi) {
        detail::ExPartial p;
        for (std::size_t q = lo; q < hi; ++q) {
          if (partner(static_cast<proc_t>(q)) == static_cast<proc_t>(q)) {
            stage[q].skip();
            continue;
          }
          stage[q].stage(send(static_cast<proc_t>(q)));
          p.note(stage[q].len, stage[q].grew);
        }
        parts[lane] = p;
      });
      const detail::ExPartial r = reduce_partials();
      if (r.messages == 0) return;
      if (faults_) {
        std::vector<FaultMsg<T>> msgs;
        msgs.reserve(r.messages);
        for (proc_t q = 0; q < procs_; ++q) {
          if (stage[q].len == 0) continue;
          const proc_t pq = partner(q);
          msgs.push_back(FaultMsg<T>{
              q, pq, std::countr_zero(static_cast<std::uint32_t>(q ^ pq)), 0,
              stage[q].template data<T>(), stage[q].len});
        }
        deliver_with_faults<T>(std::move(msgs), r.max_elems, r.messages,
                               r.total, -1, [&](const FaultMsg<T>& m) {
                                 recv(m.dst, m.payload());
                               });
        return;
      }
      team_.step(procs_, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
          const proc_t pq = partner(static_cast<proc_t>(q));
          if (pq == static_cast<proc_t>(q)) continue;
          const detail::StageBuf& in = stage[pq];
          if (in.len != 0)
            recv(static_cast<proc_t>(q), in.template view<T>());
        }
      });
      charge_round_partner(partner, r, [&](proc_t q) { return stage[q].len; });
    } else {
      std::vector<std::vector<T>>& slots = vec_stage_slots<T>(procs_);
      detail::ExPartial* parts = lane_partials();
      team_.step(procs_, [&](unsigned lane, std::size_t lo, std::size_t hi) {
        detail::ExPartial p;
        for (std::size_t q = lo; q < hi; ++q) {
          if (partner(static_cast<proc_t>(q)) == static_cast<proc_t>(q)) {
            slots[q].clear();
            continue;
          }
          std::span<const T> s = send(static_cast<proc_t>(q));
          p.note(s.size(), vec_stage_one(slots[q], s));
        }
        parts[lane] = p;
      });
      const detail::ExPartial r = reduce_partials();
      if (r.messages == 0) return;
      if (faults_) {
        std::vector<FaultMsg<T>> msgs;
        msgs.reserve(r.messages);
        for (proc_t q = 0; q < procs_; ++q) {
          if (slots[q].empty()) continue;
          const proc_t pq = partner(q);
          msgs.push_back(FaultMsg<T>{
              q, pq, std::countr_zero(static_cast<std::uint32_t>(q ^ pq)), 0,
              slots[q].data(), slots[q].size()});
        }
        deliver_with_faults<T>(std::move(msgs), r.max_elems, r.messages,
                               r.total, -1, [&](const FaultMsg<T>& m) {
                                 recv(m.dst, m.payload());
                               });
        return;
      }
      team_.step(procs_, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
          const proc_t pq = partner(static_cast<proc_t>(q));
          if (pq == static_cast<proc_t>(q)) continue;
          const std::vector<T>& in = slots[pq];
          if (!in.empty())
            recv(static_cast<proc_t>(q),
                 std::span<const T>(in.data(), in.size()));
        }
      });
      charge_round_partner(partner, r,
                           [&](proc_t q) { return slots[q].size(); });
    }
  }

  /// Explicit charging for one lockstep round whose messages the CALLER
  /// stages and delivers host-side (the generalized ring shifts in
  /// comm/shift.hpp): different processors may cross DIFFERENT cube
  /// dimensions in the same round, so neither `exchange` (one shared
  /// dimension) nor `neighbor_exchange` (symmetric partners) fits.
  /// Between irr_begin() and irr_charge(), add every message's logical
  /// cube edge (`from`, `from ^ 2^d`) with irr_add; zero-length messages
  /// are elided like every silent sender.  On the unit-hop (hypercube)
  /// preset the round is charged `τ + max·t_c` where `max` is the busiest
  /// processor's combined outgoing transfer — the irregular-round rule
  /// neighbor_exchange pays; routed presets resolve every logical edge
  /// through the cached physical routes and the round pays its most
  /// loaded link, exactly like every other lockstep round.
  void irr_begin();
  void irr_add(int d, proc_t from, std::size_t len);
  /// Charge the accumulated round (a no-op if nothing was added).
  void irr_charge();

  /// The persistent worker team backing the per-processor loops.
  [[nodiscard]] WorkerTeam& team() { return team_; }
  [[nodiscard]] const WorkerTeam& team() const { return team_; }

  /// Open a batch session on the team: multi-round loops (a collective's
  /// lg p dimensions, an all-port schedule, a routing sweep) hold one of
  /// these so their steps run inside a single team activation.  Purely a
  /// wall-clock hint — simulated results are identical with or without.
  [[nodiscard]] WorkerTeam::Session session() { return team_.session(); }

  /// The cube's recycling allocator for hot-path scratch (exchange staging,
  /// router queues, collective workspaces).  Host-thread only.
  [[nodiscard]] BufferPool& buffers() { return buffers_; }
  [[nodiscard]] const BufferPool& buffers() const { return buffers_; }

  /// Engine metrics registry (obs/metrics.hpp).  Off by default — every
  /// instrumented hot path is gated on one pointer — and wall-clock probes
  /// only run on sampled steps, so enabling it does not perturb dispatch.
  /// Metrics never touch the SimClock: results, now_us, SimStats and
  /// traces are bit-identical with metrics on or off.
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Arm the metrics tier: reset the registry for this cube's lane count
  /// and wire the team, the buffer pool and (lazily, per run) the router.
  /// Host thread only, outside any step.
  void enable_metrics(
      unsigned sample_every = MetricsRegistry::kDefaultSampleEvery) {
    metrics_.enable(team_.lanes(), sample_every);
    team_.set_metrics(&metrics_);
    buffers_.set_metrics(&metrics_);
  }

  /// Detach the instrumented subsystems.  The registry keeps its values —
  /// a final snapshot after disable is the common read pattern.
  void disable_metrics() {
    team_.set_metrics(nullptr);
    buffers_.set_metrics(nullptr);
    metrics_.disable();
  }

 private:
  /// Charge one lockstep round whose every message crosses logical cube
  /// dimension `d`.  On the unit-hop (hypercube) preset this is the exact
  /// historical `τ + max_elems·t_c` charge; otherwise the staged lengths
  /// (`len(q)`, 0 = silent) are resolved through the cached physical
  /// routes and the round pays for its most loaded link.
  template <class LenFn>
  void charge_round_dim(int d, const detail::ExPartial& r, LenFn&& len) {
    if (unit_hop_) {
      clock_.charge_comm_step(r.max_elems, r.messages, r.total, d);
      return;
    }
    rc_begin();
    for (proc_t q = 0; q < procs_; ++q) {
      const std::size_t l = len(q);
      if (l != 0) rc_add(d, q, l);
    }
    rc_charge(r.max_elems, r.messages, r.total);
  }

  /// All-port round charge: one message per (processor, dims[idx]) pair.
  template <class LenFn>
  void charge_round_allport(std::span<const int> dims,
                            const detail::ExPartial& r, LenFn&& len) {
    if (unit_hop_) {
      clock_.charge_comm_step(r.max_elems, r.messages, r.total,
                              dims.size() == 1 ? dims[0] : -1);
      return;
    }
    rc_begin();
    for (std::size_t idx = 0; idx < dims.size(); ++idx)
      for (proc_t q = 0; q < procs_; ++q) {
        const std::size_t l = len(q, idx);
        if (l != 0) rc_add(dims[idx], q, l);
      }
    rc_charge(r.max_elems, r.messages, r.total);
  }

  /// Irregular (per-processor partner) round charge.
  template <class PartnerFn, class LenFn>
  void charge_round_partner(PartnerFn&& partner, const detail::ExPartial& r,
                            LenFn&& len) {
    if (unit_hop_) {
      clock_.charge_comm_step(r.max_elems, r.messages, r.total);
      return;
    }
    rc_begin();
    for (proc_t q = 0; q < procs_; ++q) {
      const std::size_t l = len(q);
      if (l == 0) continue;
      const proc_t pq = partner(q);
      rc_add(std::countr_zero(static_cast<std::uint32_t>(q ^ pq)), q, l);
    }
    rc_charge(r.max_elems, r.messages, r.total);
  }

  /// Non-unit-hop round-cost accumulator (machine.cpp): rc_begin resets,
  /// rc_add folds one logical-edge message's cached route into the
  /// per-directed-link loads, rc_charge reduces and charges the clock.
  void rc_begin();
  void rc_add(int d, proc_t q, std::size_t len);
  void rc_charge(std::size_t max_elems, std::size_t messages,
                 std::size_t total);
  /// The cached physical routes of logical dimension `d` (built lazily).
  [[nodiscard]] const detail::DimRoutes& dim_routes(int d);

  /// True when the physical route of the logical edge (src, src^2^d) is
  /// severed this round (dead link, or dead interior node off-endpoint):
  /// the message must detour.  On the hypercube this is exactly the seed
  /// single-link liveness test.
  [[nodiscard]] bool route_compromised(std::uint64_t round, proc_t src,
                                       int d);
  /// Minimal live detour for the severed logical edge; false = cut off.
  [[nodiscard]] bool compute_reroute(std::uint64_t round, proc_t src,
                                     proc_t dst, std::vector<Hop>& hops);
  /// Charge one detour hop of `n` elements (the seed per-hop
  /// `τ + n·t_c` on the hypercube, multiplier-weighted elsewhere).
  void charge_reroute_hop(std::size_t n, const Hop& h);

  /// The persistent staging slots behind the zero-allocation exchange path.
  /// Grown (never shrunk) to the round's slot count; slot capacities are
  /// retained across rounds so steady-state staging is allocation-free.
  detail::StageBuf* stage_slots(std::size_t slots) {
    if (stage_.size() < slots) stage_.resize(slots);
    return stage_.data();
  }

  /// The persistent per-processor vectors of the non-memcpy staging path,
  /// one set per payload type, grown (never shrunk) like the raw slots.
  template <class T>
  std::vector<std::vector<T>>& vec_stage_slots(std::size_t slots) {
    std::unique_ptr<detail::VecStageBase>& entry =
        vec_stage_[std::type_index(typeid(T))];
    if (!entry) entry = std::make_unique<detail::VecStage<T>>();
    auto& v = static_cast<detail::VecStage<T>*>(entry.get())->slots;
    if (v.size() < slots) v.resize(slots);
    return v;
  }

  /// Stage one payload into a persistent vector slot; returns the bytes
  /// freshly heap-allocated (0 on capacity reuse), mirroring
  /// StageBuf::grew so both paths feed the pool counters identically.
  template <class T>
  static std::size_t vec_stage_one(std::vector<T>& slot,
                                   std::span<const T> s) {
    const std::size_t old_cap = slot.capacity();
    slot.assign(s.begin(), s.end());
    return slot.capacity() > old_cap ? slot.capacity() * sizeof(T) : 0;
  }

  /// Per-lane statistic partials for one round (the backing vector is
  /// reused across rounds, so this allocates only once per Cube).  No
  /// zeroing: every lane — including lanes whose range is empty — stores
  /// its freshly-accumulated partial into its slot during the staging step.
  detail::ExPartial* lane_partials() {
    partials_.resize(team_.lanes());
    return partials_.data();
  }

  /// Reduce the lane partials in lane order and fold the hit/miss counts
  /// into the clock.  Sums and maxima of integers — the result does not
  /// depend on how processors were partitioned across lanes.
  detail::ExPartial reduce_partials() {
    detail::ExPartial r;
    for (const detail::ExPartial& p : partials_) r.merge(p);
    if (r.messages != 0) {
      clock_.note_pool_hits(r.pool_hits);
      clock_.note_pool_misses(r.pool_misses, r.miss_bytes);
    }
    return r;
  }

  /// Recovery-aware delivery of one lockstep round's staged messages.
  ///
  /// Attempt 0 charges exactly the fault-free round cost (`max_elems`,
  /// `messages`, `total` are the round's fault-free statistics), so an
  /// inert plan leaves the clock bit-identical.  Every further cost is
  /// extra and attributed to a `fault_*` trace region:
  ///
  ///  * dropped or checksum-rejected messages are retransmitted under
  ///    "fault_retry" — exponential backoff plus one comm step over the
  ///    surviving senders per attempt, bounded by RecoveryPolicy;
  ///  * messages on a permanently dead link detour over three live edges
  ///    (the cube's parallel-paths guarantee) under "fault_reroute";
  ///  * per-edge latency spikes stall the round under "fault_spike".
  ///
  /// A dead endpoint, an exhausted retry budget, or a fully cut detour
  /// throws FaultError — degraded runs fail loudly, never silently.
  /// Deliveries happen on the host thread in deterministic (src-ascending)
  /// order; each destination receives its payload exactly once, so results
  /// match the fault-free delivery bit for bit.
  template <class T, class DeliverFn>
  void deliver_with_faults(std::vector<FaultMsg<T>> pending,
                           std::size_t max_elems, std::size_t messages,
                           std::size_t total, int charge_dim,
                           DeliverFn&& deliver) {
    FaultInjector& fi = *faults_;
    const std::uint64_t round = fi.begin_round();
    const RecoveryPolicy& rp = fi.policy();
    std::vector<FaultMsg<T>> rerouted, failed;
    int attempt = 0;
    while (!pending.empty()) {
      for (const FaultMsg<T>& m : pending) {
        if (fi.node_dead(round, m.src) || fi.node_dead(round, m.dst))
          throw FaultError(
              "node " +
              std::to_string(fi.node_dead(round, m.src) ? m.src : m.dst) +
              " is dead (round " + std::to_string(round) +
              "): lockstep round cannot complete — remap the embedding off "
              "the failed node before continuing");
      }
      if (attempt == 0) {
        if (unit_hop_) {
          clock_.charge_comm_step(max_elems, messages, total, charge_dim);
        } else {
          rc_begin();
          for (const FaultMsg<T>& m : pending) rc_add(m.dim, m.src, m.len);
          rc_charge(max_elems, messages, total);
        }
      } else {
        TraceRegion fault_region(clock_, "fault_retry");
        clock_.charge_us(rp.backoff_us *
                         static_cast<double>(std::uint64_t{1}
                                             << (attempt - 1)));
        std::size_t mx = 0, tot = 0;
        for (const FaultMsg<T>& m : pending) {
          mx = std::max(mx, m.len);
          tot += m.len;
        }
        if (unit_hop_) {
          clock_.charge_comm_step(mx, pending.size(), tot, charge_dim);
        } else {
          rc_begin();
          for (const FaultMsg<T>& m : pending) rc_add(m.dim, m.src, m.len);
          rc_charge(mx, pending.size(), tot);
        }
        clock_.note_fault_retries(pending.size());
      }
      double spike = 0.0;
      failed.clear();
      for (const FaultMsg<T>& m : pending) {
        if (route_compromised(round, m.src, m.dim)) {
          rerouted.push_back(m);
          continue;
        }
        const FaultOutcome oc = fi.decide(round, attempt, m.src, m.dim);
        spike = std::max(spike, oc.spike_us);
        if (oc.drop) {
          failed.push_back(m);
          continue;
        }
        if (oc.corrupt && checksum_rejects<T>(m, round, attempt)) {
          clock_.note_fault_chksum_fail();
          failed.push_back(m);
          continue;
        }
        deliver(m);
      }
      if (spike > 0.0) {
        TraceRegion fault_region(clock_, "fault_spike");
        clock_.charge_fault_latency(spike);
      }
      pending.swap(failed);
      ++attempt;
      if (!pending.empty() && attempt > rp.max_retries)
        throw FaultError("fault recovery budget exhausted: " +
                         std::to_string(pending.size()) +
                         " message(s) undelivered after " +
                         std::to_string(rp.max_retries) +
                         " retries (round " + std::to_string(round) + ")");
    }
    for (const FaultMsg<T>& m : rerouted)
      reroute_around_dead_link<T>(m, round, deliver);
  }

  /// Checksum verification of one (deterministically) corrupted payload:
  /// flips one bit of a wire copy and checks FNV-1a catches it.  True
  /// means the receiver rejected the payload (the message is retried); the
  /// caller's buffer is never touched, so corruption can only cost time.
  template <class T>
  [[nodiscard]] bool checksum_rejects(const FaultMsg<T>& m,
                                      std::uint64_t round, int attempt) const {
    if constexpr (std::is_trivially_copyable_v<T>) {
      const std::size_t nbytes = m.len * sizeof(T);
      if (nbytes == 0) return true;
      const auto* bytes = reinterpret_cast<const unsigned char*>(m.data);
      const std::uint64_t sum = fnv1a(bytes, nbytes);
      std::vector<unsigned char> wire(bytes, bytes + nbytes);
      const std::uint64_t h =
          faults_->message_hash(round, attempt, m.src, m.dim);
      wire[static_cast<std::size_t>(h % nbytes)] ^=
          static_cast<unsigned char>(1u << ((h >> 17) % 8));
      return fnv1a(wire.data(), nbytes) != sum;
    } else {
      // No byte view to checksum — model corruption as a detected loss.
      (void)round;
      (void)attempt;
      return true;
    }
  }

  /// Deliver one message around its severed physical route, on a live
  /// detour the topology computes (Topology::route_avoiding), charged hop
  /// by hop.  On the hypercube the detour is the historical 3-hop
  /// parallel path src → src^bit2 → dst^bit2 → dst (lowest live
  /// dimension wins) with the seed's exact per-hop charges.
  template <class T, class DeliverFn>
  void reroute_around_dead_link(const FaultMsg<T>& m, std::uint64_t round,
                                DeliverFn&& deliver) {
    TraceRegion fault_region(clock_, "fault_reroute");
    reroute_hops_.clear();
    if (!compute_reroute(round, m.src, m.dst, reroute_hops_))
      throw FaultError("no live route around dead link (" +
                       std::to_string(m.src) + ", dim " +
                       std::to_string(m.dim) +
                       "): every detour crosses another dead edge or node");
    for (const Hop& h : reroute_hops_) charge_reroute_hop(m.len, h);
    clock_.note_fault_reroute();
    deliver(m);
  }

  int dim_;
  proc_t procs_;
  std::unique_ptr<Topology> topo_;
  bool unit_hop_ = true;
  SimClock clock_;
  WorkerTeam team_;
  BufferPool buffers_{&clock_};
  MetricsRegistry metrics_;
  std::vector<detail::StageBuf> stage_;
  std::vector<detail::ExPartial> partials_;
  std::unordered_map<std::type_index, std::unique_ptr<detail::VecStageBase>>
      vec_stage_;
  std::unique_ptr<FaultInjector> faults_;
  // Non-unit-hop round-charge state (untouched on the hypercube preset).
  std::vector<detail::DimRoutes> dim_routes_;
  std::vector<double> link_load_;        ///< per directed link, rc scratch
  std::vector<std::uint32_t> rc_touched_;
  double rc_startup_ = 0.0;
  std::uint64_t rc_hops_ = 0;
  int rc_axis_ = -2;
  std::vector<Hop> reroute_hops_;
  std::vector<Hop> route_scratch_;
  // Irregular-round charge state (irr_begin/irr_add/irr_charge): combined
  // per-processor outgoing loads, tracked sparsely so a round touching few
  // processors stays cheap and allocation-free in steady state.
  std::vector<std::size_t> irr_load_;
  std::vector<proc_t> irr_senders_;
  std::size_t irr_total_ = 0;
  std::size_t irr_messages_ = 0;
};

}  // namespace vmp
