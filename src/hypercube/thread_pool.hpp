/// \file thread_pool.hpp
/// \brief Minimal blocking thread pool used to execute the per-virtual-
///        processor loops of the lockstep machine on host threads.
///
/// The simulator is correct with any number of host threads (including one);
/// threads only change wall-clock speed, never simulated time.  This mirrors
/// the repro strategy of emulating hypercube processors with threads on a
/// single machine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vmp {

/// Fixed-size pool with a single entry point: parallel_for over an index
/// range, blocking until every index has been processed.  Exceptions thrown
/// by the body are captured and rethrown on the calling thread.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size()) + 1;  // + calling thread
  }

  /// Apply `body(i)` for every i in [begin, end).  Indices are handed out
  /// in contiguous chunks.  The calling thread participates.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Range form: `body(lo, hi)` receives whole contiguous chunks of
  /// [begin, end) instead of single indices, so a body that sweeps a
  /// contiguous slab (fill, copy, axpy) runs one tight loop per chunk
  /// rather than one closure call per element.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// True while a parallel_for is executing (even with zero workers, where
  /// the body runs inline): storage shared between the loop bodies must not
  /// be reallocated, and the slab layer uses this flag to fail loudly if a
  /// tile tries to grow mid-loop instead of racing.
  [[nodiscard]] bool in_parallel() const {
    return active_.load(std::memory_order_relaxed) != 0;
  }

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t next = 0;       // next unclaimed index
    std::size_t remaining = 0;  // indices not yet completed
    std::exception_ptr error;
  };

  void worker_loop();
  void run_chunks(Task& task, std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task available / stop
  std::condition_variable done_cv_;  // signals caller: task finished
  Task* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<int> active_{0};  // parallel_for nesting depth (host-written)
};

}  // namespace vmp
