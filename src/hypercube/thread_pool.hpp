/// \file thread_pool.hpp
/// \brief Minimal blocking thread pool used to execute the per-virtual-
///        processor loops of the lockstep machine on host threads.
///
/// The simulator is correct with any number of host threads (including one);
/// threads only change wall-clock speed, never simulated time.  This mirrors
/// the repro strategy of emulating hypercube processors with threads on a
/// single machine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vmp {

/// Fixed-size pool with a single entry point: parallel_for over an index
/// range, blocking until every index has been processed.  Exceptions thrown
/// by the body are captured and rethrown on the calling thread.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size()) + 1;  // + calling thread
  }

  /// Apply `body(i)` for every i in [begin, end).  Indices are handed out
  /// in contiguous chunks.  The calling thread participates.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t next = 0;       // next unclaimed index
    std::size_t remaining = 0;  // indices not yet completed
    std::exception_ptr error;
  };

  void worker_loop();
  void run_chunks(Task& task, std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task available / stop
  std::condition_variable done_cv_;  // signals caller: task finished
  Task* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace vmp
