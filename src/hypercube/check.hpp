/// \file check.hpp
/// \brief Always-on precondition / invariant checking and the library's
///        structured error hierarchy.
///
/// The library follows the C++ Core Guidelines contract style (I.6 / E.12):
/// preconditions are checked at public API boundaries with VMP_REQUIRE and
/// internal invariants with VMP_ASSERT.  Violations throw exceptions from a
/// single hierarchy rooted at vmp::Error so callers can catch at the
/// granularity they need:
///
///   vmp::Error                      every error the library raises
///    ├─ vmp::ContractError          precondition / invariant violations
///    │   ├─ vmp::ShapeError         operand extents / index ranges wrong
///    │   └─ vmp::AlignError         operand embeddings (alignment,
///    │                              partition kind, grid) incompatible
///    └─ vmp::FaultError             fault recovery budget exceeded
///                                   (fault/fault.hpp)
///
/// ShapeError / AlignError messages carry the primitive name and the
/// operand shapes involved, so a failing call site reads like a diagnosis:
///   "insert_row: vector length must equal ncols (A is 8x6, v has n=5)".
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vmp {

/// Root of every exception the vmprim library throws.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a precondition or invariant of the library is violated.
class ContractError : public Error {
 public:
  using Error::Error;
};

/// A precondition on operand *shapes* failed: extents that must match
/// don't, or an index lies outside its range.
class ShapeError : public ContractError {
 public:
  using ContractError::ContractError;
};

/// A precondition on operand *embeddings* failed: alignment, partition
/// kind, or grid of the operands are incompatible.
class AlignError : public ContractError {
 public:
  using ContractError::ContractError;
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

[[noreturn]] inline void shape_fail(const char* primitive,
                                    const std::string& msg) {
  throw ShapeError(std::string(primitive) + ": " + msg);
}

[[noreturn]] inline void align_fail(const char* primitive,
                                    const std::string& msg) {
  throw AlignError(std::string(primitive) + ": " + msg);
}

}  // namespace detail
}  // namespace vmp

/// Check a caller-facing precondition; throws vmp::ContractError on failure.
#define VMP_REQUIRE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond))                                                           \
      ::vmp::detail::contract_fail("precondition", #cond, __FILE__,        \
                                   __LINE__, (msg));                       \
  } while (false)

/// Check an internal invariant; throws vmp::ContractError on failure.
#define VMP_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::vmp::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                   (msg));                                 \
  } while (false)

/// Shape precondition of a named primitive; throws vmp::ShapeError with the
/// primitive name and a caller-supplied shape description on failure.
#define VMP_REQUIRE_SHAPE(cond, primitive, msg)                            \
  do {                                                                     \
    if (!(cond)) ::vmp::detail::shape_fail((primitive), (msg));            \
  } while (false)

/// Embedding/alignment precondition of a named primitive; throws
/// vmp::AlignError with the primitive name on failure.
#define VMP_REQUIRE_ALIGN(cond, primitive, msg)                            \
  do {                                                                     \
    if (!(cond)) ::vmp::detail::align_fail((primitive), (msg));            \
  } while (false)
