/// \file check.hpp
/// \brief Always-on precondition / invariant checking for the vmprim library.
///
/// The library follows the C++ Core Guidelines contract style (I.6 / E.12):
/// preconditions are checked at public API boundaries with VMP_REQUIRE and
/// internal invariants with VMP_ASSERT.  Violations throw vmp::ContractError
/// so that tests can assert on misuse, instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vmp {

/// Thrown when a precondition or invariant of the library is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

}  // namespace detail
}  // namespace vmp

/// Check a caller-facing precondition; throws vmp::ContractError on failure.
#define VMP_REQUIRE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond))                                                           \
      ::vmp::detail::contract_fail("precondition", #cond, __FILE__,        \
                                   __LINE__, (msg));                       \
  } while (false)

/// Check an internal invariant; throws vmp::ContractError on failure.
#define VMP_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::vmp::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                   (msg));                                 \
  } while (false)
