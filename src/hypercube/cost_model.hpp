/// \file cost_model.hpp
/// \brief Parametric performance model of a distributed-memory hypercube.
///
/// All timings reported by the simulator come from this linear model, the
/// same family of models used throughout the 1980s hypercube literature
/// (Johnsson & Ho; Agrawal, Blelloch, Krawitz & Phillips):
///
///   T(step) = startup_us + elements · per_elem_us          (one comm step)
///   T(compute) = flops · flop_us                           (local arithmetic)
///
/// The general-purpose router used by the *naive* primitive implementations
/// pays `router_startup_us` per packet per hop instead of amortizing one
/// startup over a whole block — exactly the overhead the paper's optimized
/// primitives eliminate.
#pragma once

#include <string>

namespace vmp {

/// Machine constants, in microseconds.  Values are era-plausible and chosen
/// to reproduce timing *shapes* (crossovers, who-wins), not absolute CM-2
/// numbers; see DESIGN.md "Substitutions".
struct CostParams {
  double startup_us = 0.0;         ///< τ: per-message start-up on a cube edge
  double per_elem_us = 0.0;        ///< t_c: per-element transfer on a cube edge
  double flop_us = 0.0;            ///< t_a: one floating-point operation
  double router_startup_us = 0.0;  ///< general-router per-packet-per-hop cost
  std::string name;                ///< preset name for reporting

  /// Connection Machine CM-2 flavour: fast SIMD arithmetic, cheap regular
  /// NEWS/cube-edge transfers, expensive general router packets.
  [[nodiscard]] static CostParams cm2();

  /// Intel iPSC/1 flavour: very large message start-up relative to both
  /// transfer and arithmetic cost (start-up dominated regime).
  [[nodiscard]] static CostParams ipsc();

  /// Unit-cost model: τ = t_c = t_a = 1, router = 1.  Simulated time then
  /// *is* the weighted step count, convenient for asymptotic tests.
  [[nodiscard]] static CostParams unit();

  /// Zero-communication-cost model (arithmetic only), for isolating the
  /// compute component in ablations.
  [[nodiscard]] static CostParams free_comm();
};

}  // namespace vmp
