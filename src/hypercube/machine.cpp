#include "hypercube/machine.hpp"

namespace vmp {

Cube::Cube(int dim, CostParams params) : Cube(dim, params, Options{}) {}

Cube::Cube(int dim, CostParams params, Options opts)
    : dim_(dim),
      procs_(dim >= 0 && dim < 31 ? (proc_t{1} << dim) : 0),
      clock_(params),
      team_(opts.threads) {
  VMP_REQUIRE(dim >= 0 && dim < 31, "cube dimension must be in [0, 31)");
}

}  // namespace vmp
