#include "hypercube/machine.hpp"

namespace vmp {

Cube::Cube(int dim, CostParams params) : Cube(dim, params, Options{}) {}

Cube::Cube(int dim, CostParams params, Options opts)
    : dim_(dim),
      procs_(dim >= 0 && dim < 31 ? (proc_t{1} << dim) : 0),
      topo_(dim >= 0 && dim < 31 ? make_topology(opts.topology, dim)
                                 : nullptr),
      clock_(params),
      team_(opts.threads) {
  VMP_REQUIRE(dim >= 0 && dim < 31, "cube dimension must be in [0, 31)");
  unit_hop_ = topo_->unit_hop();
  clock_.set_topology(topo_->name(), topo_->axis_count());
  if (!unit_hop_) {
    dim_routes_.resize(static_cast<std::size_t>(dim_));
    link_load_.assign(2 * topo_->link_count(), 0.0);
  }
}

const detail::DimRoutes& Cube::dim_routes(int d) {
  detail::DimRoutes& R = dim_routes_[static_cast<std::size_t>(d)];
  if (R.built) return R;
  const proc_t bit = proc_t{1} << d;
  R.off.assign(procs_ + 1, 0);
  R.startup.assign(procs_, 0.0);
  R.hops.clear();
  R.lidx.clear();
  R.mult.clear();
  R.common_axis = -2;
  for (proc_t q = 0; q < procs_; ++q) {
    route_scratch_.clear();
    topo_->route(q, q ^ bit, route_scratch_);
    double startup = 0.0;
    for (const Hop& h : route_scratch_) {
      const AxisCharge c = topo_->axis_charge(h.axis);
      startup += c.startup_mult;
      const std::uint64_t lid = topo_->link_id(h.from, h.port);
      R.hops.push_back(h);
      R.lidx.push_back(
          static_cast<std::uint32_t>(2 * lid + (h.from < h.to ? 0 : 1)));
      R.mult.push_back(c.per_elem_mult);
      if (R.common_axis == -2) {
        R.common_axis = h.axis;
      } else if (R.common_axis != h.axis) {
        R.common_axis = -1;
      }
    }
    R.startup[q] = startup;
    R.off[q + 1] = static_cast<std::uint32_t>(R.hops.size());
  }
  if (R.common_axis == -2) R.common_axis = -1;
  R.built = true;
  return R;
}

void Cube::rc_begin() {
  rc_startup_ = 0.0;
  rc_hops_ = 0;
  rc_axis_ = -2;
  rc_touched_.clear();
}

void Cube::rc_add(int d, proc_t q, std::size_t len) {
  const detail::DimRoutes& R = dim_routes(d);
  if (R.startup[q] > rc_startup_) rc_startup_ = R.startup[q];
  const std::uint32_t lo = R.off[q];
  const std::uint32_t hi = R.off[q + 1];
  for (std::uint32_t i = lo; i < hi; ++i) {
    double& load = link_load_[R.lidx[i]];
    if (load == 0.0) rc_touched_.push_back(R.lidx[i]);
    load += static_cast<double>(len) * R.mult[i];
  }
  rc_hops_ += hi - lo;
  if (rc_axis_ == -2) {
    rc_axis_ = R.common_axis;
  } else if (rc_axis_ != R.common_axis) {
    rc_axis_ = -1;
  }
}

void Cube::rc_charge(std::size_t max_elems, std::size_t messages,
                     std::size_t total) {
  double elem_units = 0.0;
  for (const std::uint32_t li : rc_touched_) {
    if (link_load_[li] > elem_units) elem_units = link_load_[li];
    link_load_[li] = 0.0;
  }
  clock_.charge_comm_round(rc_startup_, elem_units, messages, total,
                           max_elems, rc_axis_ == -2 ? -1 : rc_axis_,
                           rc_hops_);
}

void Cube::irr_begin() {
  irr_total_ = 0;
  irr_messages_ = 0;
  if (!unit_hop_) rc_begin();
}

void Cube::irr_add(int d, proc_t from, std::size_t len) {
  VMP_REQUIRE(d >= 0 && d < dim_, "irregular-round dimension out of range");
  VMP_REQUIRE(from < procs_, "irregular-round sender out of range");
  if (len == 0) return;  // elided, matching every silent sender
  if (irr_load_.empty()) irr_load_.assign(procs_, 0);
  if (irr_load_[from] == 0) irr_senders_.push_back(from);
  irr_load_[from] += len;
  ++irr_messages_;
  irr_total_ += len;
  if (!unit_hop_) rc_add(d, from, len);
}

void Cube::irr_charge() {
  if (irr_messages_ == 0) return;
  std::size_t max_elems = 0;
  for (const proc_t q : irr_senders_) {
    if (irr_load_[q] > max_elems) max_elems = irr_load_[q];
    irr_load_[q] = 0;
  }
  irr_senders_.clear();
  if (unit_hop_) {
    clock_.charge_comm_step(max_elems, irr_messages_, irr_total_);
  } else {
    rc_charge(max_elems, irr_messages_, irr_total_);
  }
}

bool Cube::route_compromised(std::uint64_t round, proc_t src, int d) {
  FaultInjector& fi = *faults_;
  if (unit_hop_) return fi.link_dead(round, src, d);
  const detail::DimRoutes& R = dim_routes(d);
  const std::uint32_t lo = R.off[src];
  const std::uint32_t hi = R.off[src + 1];
  const proc_t dst = src ^ (proc_t{1} << d);
  for (std::uint32_t i = lo; i < hi; ++i) {
    const Hop& h = R.hops[i];
    if (fi.link_dead(round, h.from, h.port)) return true;
    if (h.to != dst && fi.node_dead(round, h.to)) return true;
  }
  return false;
}

bool Cube::compute_reroute(std::uint64_t round, proc_t src, proc_t dst,
                           std::vector<Hop>& hops) {
  FaultInjector& fi = *faults_;
  return topo_->route_avoiding(
      src, dst,
      [&](proc_t node, int port) { return fi.link_dead(round, node, port); },
      [&](proc_t node) { return fi.node_dead(round, node); }, hops);
}

void Cube::charge_reroute_hop(std::size_t n, const Hop& h) {
  if (unit_hop_) {
    clock_.charge_comm_step(n, 1, n, h.axis);
    return;
  }
  const AxisCharge c = topo_->axis_charge(h.axis);
  clock_.charge_comm_round(c.startup_mult,
                           static_cast<double>(n) * c.per_elem_mult, 1, n, n,
                           h.axis, 1);
}

}  // namespace vmp
