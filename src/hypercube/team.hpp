/// \file team.hpp
/// \brief Persistent SPMD worker team executing the machine's lockstep
///        steps as phase sequences separated by generation barriers.
///
/// The previous engine forked a mutex/condvar `parallel_for` for every
/// lockstep round; at d=8 with small tiles the fork/join protocol and the
/// serial host scans between phases dominated wall-clock.  The team model
/// matches what the machine actually is — a strict SPMD phase sequence —
/// so the host threads mirror it:
///
///  * Workers are created ONCE per Cube and pinned to a static partition:
///    lane `w` of `L` always owns items `[n·w/L, n·(w+1)/L)`.  The same
///    lane therefore touches the same slab tiles step after step
///    (owner-computes affinity, compounding the arena locality of the
///    contiguous storage layer).
///  * A step is published by bumping a generation counter; every lane runs
///    its range and reports into its own `done` slot.  The host (always
///    lane 0) runs its share inline and then waits for the lanes — one
///    release/acquire pair per lane per step instead of a locked queue
///    hand-off per chunk.
///  * Between steps workers spin briefly (yielding) and then park on a
///    condvar; inside a Session (see below) the spin budget is larger, so
///    a multi-round loop never pays a wake-up between its rounds.
///
/// Determinism: the partition depends only on (items, lanes) and every
/// per-item body the machine submits is independent, so results never
/// depend on the lane count.  Host threads change wall-clock speed only —
/// simulated time, statistics and event traces are bit-identical at every
/// thread count, including the fully inline zero-worker configuration
/// (tests/test_thread_invariance.cpp enforces this).  See
/// docs/threading.md for the protocol and the memory-ordering argument.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"

namespace vmp {

/// Lane count the VMP_THREADS environment variable requests: unset or
/// unparsable means 1 (fully serial), "0" means one lane per hardware
/// thread, any other number is taken literally.  This is the default for
/// Cube::Options::threads, so every test and bench binary honours the
/// variable without plumbing.
[[nodiscard]] unsigned env_threads();

class WorkerTeam {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency(); the team
  /// spawns `threads - 1` workers because the host participates as lane 0.
  /// `threads == 1` spawns nothing: every step runs inline and the whole
  /// protocol reduces to a function call.
  explicit WorkerTeam(unsigned threads = 1);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// Total lanes, workers + the participating host thread.
  [[nodiscard]] unsigned lanes() const { return nlanes_; }

  /// The lane count a request of `threads` host threads resolves to,
  /// without constructing a team (bench reports record this).
  [[nodiscard]] static unsigned resolve_lanes(unsigned threads);

  /// One lockstep step: run `fn(lane, lo, hi)` with the static ownership
  /// partition of [0, items) across all lanes, blocking until every lane
  /// has finished.  The host runs lane 0 inline.  Exceptions thrown by any
  /// lane are captured and the lowest-lane one is rethrown here after the
  /// barrier (the step always completes as a barrier first).
  template <class F>
  void step(std::size_t items, F&& fn) {
    if (items == 0) return;
    if (workers_.empty()) {
      StepScope scope(*this);
      // Metrics path: the step tally rides the StepScope increment (zero
      // extra stores — a plain store here costs whole nanoseconds because
      // the scope's locked RMW drains the store buffer), so with metrics
      // off this costs nothing and with metrics on it costs one pointer
      // test and a register mask.  Only the sampled cold branch below
      // pays the clock reads.
      if (metrics_ != nullptr &&
          (scope.step_number() & sample_mask_) == 0) [[unlikely]] {
        const std::uint64_t t0 = metrics_now_ns();
        fn(0u, std::size_t{0}, items);
        metrics_inline_probes(metrics_now_ns() - t0, items);
        return;
      }
      fn(0u, std::size_t{0}, items);
      return;
    }
    using Body = std::remove_reference_t<F>;
    run_step(items, const_cast<Body*>(std::addressof(fn)),
             [](void* ctx, unsigned lane, std::size_t lo, std::size_t hi) {
               (*static_cast<Body*>(ctx))(lane, lo, hi);
             });
  }

  /// True while a step is executing (even inline with zero workers):
  /// storage shared between the per-item bodies must not be reallocated,
  /// and the slab layer uses this to fail loudly instead of racing.
  /// The low byte of `in_step_` is the live nesting depth; the high bits
  /// count every step ever dispatched (see StepScope).
  [[nodiscard]] bool in_step() const {
    return (in_step_.load(std::memory_order_relaxed) & kStepDepthMask) != 0;
  }

  /// Total steps dispatched over the team's lifetime (deterministic: a
  /// pure function of the machine's step sequence, identical at any lane
  /// count).  Maintained for free by the StepScope increment.
  [[nodiscard]] std::uint64_t steps_dispatched() const {
    return in_step_.load(std::memory_order_relaxed) >> kStepDepthBits;
  }

  /// RAII batch marker: while at least one Session is open the workers use
  /// a much larger spin budget before parking, so the rounds of a
  /// multi-step loop (a collective's lg p dimensions, an all-port
  /// schedule, a routing sweep) run back to back inside one team
  /// activation — no condvar round trip between them.  Sessions nest and
  /// may be opened with zero workers (then they are a no-op).  Purely a
  /// wall-clock hint: simulated results are identical with or without.
  class Session {
   public:
    Session() = default;
    Session(Session&& other) noexcept : team_(other.team_) {
      other.team_ = nullptr;
    }
    Session& operator=(Session&& other) noexcept {
      if (this != &other) {
        close();
        team_ = other.team_;
        other.team_ = nullptr;
      }
      return *this;
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session() { close(); }

   private:
    friend class WorkerTeam;
    explicit Session(WorkerTeam* team) : team_(team) {
      if (team_) team_->note_session_open();
    }
    void close() {
      if (team_) team_->note_session_close();
      team_ = nullptr;
    }
    WorkerTeam* team_ = nullptr;
  };

  /// Open a batch session (see Session).
  [[nodiscard]] Session session() { return Session(this); }
  [[nodiscard]] bool in_session() const {
    return session_open_.load(std::memory_order_relaxed) != 0;
  }

  /// The static ownership partition: the first item lane `lane` of `lanes`
  /// owns in a step over `items` items.  Monotone and exhaustive:
  /// lane_begin(n, L, L) == n.
  [[nodiscard]] static std::size_t lane_begin(std::size_t items, unsigned lane,
                                              unsigned lanes) {
    return items * lane / lanes;
  }

  /// Wire the engine metrics: registers the team's instruments in `m`
  /// (which must be enabled for exactly lanes() writer lanes) and turns on
  /// the per-step hooks.  `nullptr` detaches.  Host thread only, with the
  /// team quiescent — never from inside a step.
  void set_metrics(MetricsRegistry* m);

 private:
  using StepFn = void (*)(void* ctx, unsigned lane, std::size_t lo,
                          std::size_t hi);

  /// Layout of the packed `in_step_` word: live nesting depth in the low
  /// byte, lifetime step count in the high 56 bits.
  static constexpr unsigned kStepDepthBits = 8;
  static constexpr std::uint64_t kStepDepthMask =
      (std::uint64_t{1} << kStepDepthBits) - 1;
  static constexpr std::uint64_t kStepTick =
      (std::uint64_t{1} << kStepDepthBits) | 1;

  /// RAII for in_step(), covering the inline zero-worker path too.  The
  /// single increment packs two fields: +1 nesting depth (low byte,
  /// removed on exit) and +1 lifetime step tally (high bits, kept) — the
  /// step count the metrics tier samples on therefore costs zero extra
  /// stores on the hot path.
  struct StepScope {
    explicit StepScope(WorkerTeam& t)
        : team(t),
          prior(t.in_step_.fetch_add(kStepTick, std::memory_order_relaxed)) {}
    ~StepScope() { team.in_step_.fetch_sub(1, std::memory_order_relaxed); }
    /// 1-based number of the step this scope opened.
    [[nodiscard]] std::uint64_t step_number() const {
      return (prior >> kStepDepthBits) + 1;
    }
    WorkerTeam& team;
    std::uint64_t prior;
  };

  /// Per-worker barrier slot, padded so neighbouring lanes never share a
  /// cache line while reporting.  `busy_ns` is the lane's measured body
  /// time on a *sampled* step: written before the release store of `done`,
  /// read by the host after its acquire load — the existing barrier pair
  /// publishes it with no extra synchronization.
  struct alignas(64) LaneState {
    std::atomic<std::uint64_t> done{0};
    std::exception_ptr error;
    std::uint64_t busy_ns = 0;
  };

  /// Idle-time tallies a worker accumulates locally between steps and
  /// folds into the per-lane metric cells at the top of the next step
  /// (after the acquire of gen_, so the writes are ordered by the step
  /// protocol and the host never reads them mid-update).
  struct IdleStats {
    std::uint64_t spins = 0;
    std::uint64_t parks = 0;
    std::uint64_t park_ns = 0;
  };

  void run_step(std::size_t items, void* ctx, StepFn fn);
  void worker_loop(unsigned lane);
  [[nodiscard]] std::uint64_t await_command(std::uint64_t seen,
                                            IdleStats* idle);

  [[nodiscard]] static std::uint64_t metrics_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Probes of a sampled inline (zero-worker) step — kept out of line so
  /// the hot dispatch path stays small.
  void metrics_inline_probes(std::uint64_t busy_ns, std::size_t items);

  void note_session_open() {
    session_open_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) ++sessions_tally_;
  }
  void note_session_close() {
    session_open_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Command slot.  The plain fields are published to the workers by the
  // seq_cst bump of gen_ (release side) and read after their acquire load
  // of gen_; the host rewrites them only after the previous step's
  // barrier, when no worker can still be reading.  `sample_` rides along:
  // it marks the published step as wall-clock-sampled.
  void* ctx_ = nullptr;
  StepFn fn_ = nullptr;
  std::size_t items_ = 0;
  bool sample_ = false;
  std::atomic<std::uint64_t> gen_{0};

  // Engine metrics, normally detached: with metrics_ == nullptr the hot
  // path pays exactly one pointer test.  The workers read metrics_ after
  // their acquire of gen_, so attaching/detaching between steps is safe.
  // Wall-clock instruments are written directly (sampled steps only); the
  // deterministic step count rides the in_step_ word (see StepScope) and
  // a snapshot probe publishes it as a Sim gauge at read time.
  struct TeamMetrics {
    MetricsRegistry::Counter* lane_busy_ns = nullptr;
    MetricsRegistry::Counter* lane_spins = nullptr;
    MetricsRegistry::Counter* lane_parks = nullptr;
    MetricsRegistry::Counter* lane_park_ns = nullptr;
    MetricsRegistry::Counter* host_barrier_ns = nullptr;
    MetricsRegistry::Histogram* step_ns = nullptr;
    MetricsRegistry::Histogram* step_items = nullptr;
    MetricsRegistry::Histogram* imbalance_pct = nullptr;
  };
  TeamMetrics mx_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint64_t steps_baseline_ = 0;
  std::uint64_t sessions_tally_ = 0;
  std::uint64_t sample_mask_ = MetricsRegistry::kDefaultSampleEvery - 1;

  unsigned nlanes_ = 1;  // fixed before any worker starts
  std::vector<std::thread> workers_;
  std::unique_ptr<LaneState[]> lane_state_;
  std::atomic<bool> stop_{false};
  std::atomic<int> parked_{0};
  std::atomic<int> session_open_{0};
  std::atomic<std::uint64_t> in_step_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace vmp
