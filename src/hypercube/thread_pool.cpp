#include "hypercube/thread_pool.hpp"

#include <algorithm>

namespace vmp {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread always participates, so spawn n-1 workers.
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Task& task, std::unique_lock<std::mutex>& lock) {
  while (task.next < task.end) {
    const std::size_t lo = task.next;
    const std::size_t hi = std::min(task.end, lo + task.chunk);
    task.next = hi;
    lock.unlock();
    std::exception_ptr err;
    try {
      for (std::size_t i = lo; i < hi; ++i) (*task.body)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !task.error) task.error = err;
    task.remaining -= hi - lo;
    if (task.remaining == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || (current_ && generation_ != seen); });
    if (stop_) return;
    seen = generation_;
    Task* task = current_;
    run_chunks(*task, lock);
  }
}

namespace {

/// RAII marker for ThreadPool::in_parallel(): covers the inline (zero
/// worker) path too, so misuse of shared storage inside loop bodies is
/// caught deterministically even in fully serial runs.
class ActiveScope {
 public:
  explicit ActiveScope(std::atomic<int>& a) : a_(a) {
    a_.fetch_add(1, std::memory_order_relaxed);
  }
  ~ActiveScope() { a_.fetch_sub(1, std::memory_order_relaxed); }

 private:
  std::atomic<int>& a_;
};

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  ActiveScope active(active_);
  const std::size_t count = end - begin;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  Task task;
  task.begin = begin;
  task.end = end;
  task.body = &body;
  task.next = begin;
  task.remaining = count;
  task.chunk = std::max<std::size_t>(1, count / (4 * size()));

  std::unique_lock<std::mutex> lock(mutex_);
  current_ = &task;
  ++generation_;
  work_cv_.notify_all();
  run_chunks(task, lock);
  done_cv_.wait(lock, [&] { return task.remaining == 0; });
  current_ = nullptr;
  if (task.error) std::rethrow_exception(task.error);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (workers_.empty()) {
    ActiveScope active(active_);
    body(begin, end);
    return;
  }
  // Reuse the index machinery: each handed-out index is one chunk of the
  // range, so the per-element closure overhead is paid once per chunk.
  const std::size_t count = end - begin;
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (4 * static_cast<std::size_t>(size())));
  const std::size_t nchunks = (count + chunk - 1) / chunk;
  parallel_for(0, nchunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    body(lo, std::min(end, lo + chunk));
  });
}

}  // namespace vmp
