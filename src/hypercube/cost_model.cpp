#include "hypercube/cost_model.hpp"

namespace vmp {

CostParams CostParams::cm2() {
  CostParams p;
  p.startup_us = 25.0;
  p.per_elem_us = 1.0;
  p.flop_us = 0.25;
  // One router delivery wave (all processors forward one packet) costs
  // roughly one cube-edge start-up; the naive path pays it per wave while
  // the primitives amortize one start-up over a whole block.
  p.router_startup_us = 30.0;
  p.name = "cm2";
  return p;
}

CostParams CostParams::ipsc() {
  CostParams p;
  p.startup_us = 1000.0;
  p.per_elem_us = 2.8;
  p.flop_us = 10.0;
  p.router_startup_us = 1000.0;
  p.name = "ipsc";
  return p;
}

CostParams CostParams::unit() {
  CostParams p;
  p.startup_us = 1.0;
  p.per_elem_us = 1.0;
  p.flop_us = 1.0;
  p.router_startup_us = 1.0;
  p.name = "unit";
  return p;
}

CostParams CostParams::free_comm() {
  CostParams p;
  p.startup_us = 0.0;
  p.per_elem_us = 0.0;
  p.flop_us = 1.0;
  p.router_startup_us = 0.0;
  p.name = "free_comm";
  return p;
}

}  // namespace vmp
