#include "hypercube/team.hpp"

#include <cstdlib>

namespace vmp {

namespace {

/// Spin budgets (in yield iterations) before a worker parks on the
/// condvar.  Outside a session the team parks almost immediately — an idle
/// Cube must not burn a core.  Inside a session the next step is known to
/// be imminent (the caller opened the batch precisely because it is about
/// to issue a run of steps), so spinning longer trades a little CPU for
/// skipping the wake-up latency between rounds.
constexpr int kIdleSpin = 16;
constexpr int kSessionSpin = 4096;

}  // namespace

unsigned env_threads() {
  const char* s = std::getenv("VMP_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return 1;
  return static_cast<unsigned>(v);
}

unsigned WorkerTeam::resolve_lanes(unsigned threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return threads;
}

WorkerTeam::WorkerTeam(unsigned threads) {
  nlanes_ = resolve_lanes(threads);
  if (nlanes_ <= 1) {
    nlanes_ = 1;
    return;
  }
  lane_state_ = std::make_unique<LaneState[]>(nlanes_ - 1);
  workers_.reserve(nlanes_ - 1);
  for (unsigned w = 1; w < nlanes_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

WorkerTeam::~WorkerTeam() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_.store(true, std::memory_order_seq_cst);
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

std::uint64_t WorkerTeam::await_command(std::uint64_t seen) {
  int spins = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return seen;
    const std::uint64_t g = gen_.load(std::memory_order_acquire);
    if (g != seen) return g;
    const int budget = session_open_.load(std::memory_order_relaxed) != 0
                           ? kSessionSpin
                           : kIdleSpin;
    if (++spins < budget) {
      std::this_thread::yield();
      continue;
    }
    // Park.  The increment of parked_ and the re-read of gen_ are both
    // seq_cst, pairing with the host's seq_cst publish of gen_ followed by
    // its seq_cst read of parked_: either the host sees us parked (and
    // notifies under the mutex), or we see its new generation in the wait
    // predicate before sleeping.  No lost wake-up either way.
    std::unique_lock<std::mutex> lk(mutex_);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             gen_.load(std::memory_order_seq_cst) != seen;
    });
    parked_.fetch_sub(1, std::memory_order_relaxed);
    spins = 0;
  }
}

void WorkerTeam::worker_loop(unsigned lane) {
  LaneState& st = lane_state_[lane - 1];
  const unsigned nlanes = lanes();
  std::uint64_t seen = 0;
  for (;;) {
    const std::uint64_t g = await_command(seen);
    if (g == seen) return;  // stop requested
    seen = g;
    const std::size_t lo = lane_begin(items_, lane, nlanes);
    const std::size_t hi = lane_begin(items_, lane + 1, nlanes);
    if (lo != hi) {
      try {
        fn_(ctx_, lane, lo, hi);
      } catch (...) {
        st.error = std::current_exception();
      }
    }
    st.done.store(g, std::memory_order_release);
  }
}

void WorkerTeam::run_step(std::size_t items, void* ctx, StepFn fn) {
  StepScope scope(*this);
  ctx_ = ctx;
  fn_ = fn;
  items_ = items;
  // Publish: the seq_cst bump releases the command fields to the workers'
  // acquire loads of gen_.
  const std::uint64_t g = gen_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (parked_.load(std::memory_order_seq_cst) != 0) {
    std::lock_guard<std::mutex> lk(mutex_);
    cv_.notify_all();
  }
  // The host is lane 0 and computes its own share while the workers run
  // theirs.
  const unsigned nlanes = lanes();
  const std::size_t hi = lane_begin(items, 1, nlanes);
  std::exception_ptr host_error;
  if (hi != 0) {
    try {
      fn(ctx, 0, 0, hi);
    } catch (...) {
      host_error = std::current_exception();
    }
  }
  // Barrier: one acquire load per lane pairs with its release store of
  // done, so everything each lane wrote is visible here.  The barrier
  // always completes before any rethrow — the team must be quiescent when
  // an exception escapes.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    LaneState& st = lane_state_[w];
    while (st.done.load(std::memory_order_acquire) != g)
      std::this_thread::yield();
  }
  if (host_error) std::rethrow_exception(host_error);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (lane_state_[w].error) {
      std::exception_ptr e = lane_state_[w].error;
      lane_state_[w].error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

}  // namespace vmp
