#include "hypercube/team.hpp"

#include <cstdlib>

namespace vmp {

namespace {

/// Spin budgets (in yield iterations) before a worker parks on the
/// condvar.  Outside a session the team parks almost immediately — an idle
/// Cube must not burn a core.  Inside a session the next step is known to
/// be imminent (the caller opened the batch precisely because it is about
/// to issue a run of steps), so spinning longer trades a little CPU for
/// skipping the wake-up latency between rounds.
constexpr int kIdleSpin = 16;
constexpr int kSessionSpin = 4096;

}  // namespace

unsigned env_threads() {
  const char* s = std::getenv("VMP_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return 1;
  return static_cast<unsigned>(v);
}

unsigned WorkerTeam::resolve_lanes(unsigned threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return threads;
}

WorkerTeam::WorkerTeam(unsigned threads) {
  nlanes_ = resolve_lanes(threads);
  if (nlanes_ <= 1) {
    nlanes_ = 1;
    return;
  }
  lane_state_ = std::make_unique<LaneState[]>(nlanes_ - 1);
  workers_.reserve(nlanes_ - 1);
  for (unsigned w = 1; w < nlanes_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

WorkerTeam::~WorkerTeam() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_.store(true, std::memory_order_seq_cst);
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

void WorkerTeam::set_metrics(MetricsRegistry* m) {
  metrics_ = nullptr;
  if (m == nullptr) return;
  // Deterministic (Sim) instruments — pure functions of the machine's
  // step sequence, bit-identical at any lane count — are published by a
  // snapshot probe.  The step count costs nothing per step (it rides the
  // StepScope increment, see team.hpp); sessions are rare enough for a
  // plain tally.
  steps_baseline_ = steps_dispatched();
  sessions_tally_ = 0;
  m->add_probe([this, m] {
    m->gauge("engine.steps", MetricClass::Sim)
        .set(static_cast<double>(steps_dispatched() - steps_baseline_));
    m->gauge("engine.sessions", MetricClass::Sim)
        .set(static_cast<double>(sessions_tally_));
    m->gauge("engine.session_depth", MetricClass::Sim)
        .set(session_open_.load(std::memory_order_relaxed));
  });
  // Wall-clock instruments: lane utilization and dispatch behaviour.
  mx_.lane_busy_ns = &m->counter("engine.lane_busy_ns", MetricClass::Wall);
  mx_.lane_spins = &m->counter("engine.lane_spins", MetricClass::Wall);
  mx_.lane_parks = &m->counter("engine.lane_parks", MetricClass::Wall);
  mx_.lane_park_ns = &m->counter("engine.lane_park_ns", MetricClass::Wall);
  mx_.host_barrier_ns =
      &m->counter("engine.host_barrier_ns", MetricClass::Wall);
  mx_.step_ns = &m->histogram("engine.step_ns", MetricClass::Wall);
  // Items per sampled step.  Sim class: the sampled step numbers are a
  // deterministic function of the step sequence (a mask on the exact step
  // count), so this histogram is bit-identical at any lane count too.
  mx_.step_items = &m->histogram("engine.step_items", MetricClass::Sim);
  mx_.imbalance_pct =
      &m->histogram("engine.step_imbalance_pct", MetricClass::Wall);
  sample_mask_ = m->sample_every() - 1;
  metrics_ = m;
}

void WorkerTeam::metrics_inline_probes(std::uint64_t busy_ns,
                                       std::size_t items) {
  mx_.step_items->record(items);
  mx_.lane_busy_ns->add(busy_ns, 0);
  mx_.step_ns->record(busy_ns);
  mx_.imbalance_pct->record(0);
}

std::uint64_t WorkerTeam::await_command(std::uint64_t seen, IdleStats* idle) {
  int spins = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return seen;
    const std::uint64_t g = gen_.load(std::memory_order_acquire);
    if (g != seen) return g;
    const int budget = session_open_.load(std::memory_order_relaxed) != 0
                           ? kSessionSpin
                           : kIdleSpin;
    if (++spins < budget) {
      ++idle->spins;
      std::this_thread::yield();
      continue;
    }
    // Park.  The increment of parked_ and the re-read of gen_ are both
    // seq_cst, pairing with the host's seq_cst publish of gen_ followed by
    // its seq_cst read of parked_: either the host sees us parked (and
    // notifies under the mutex), or we see its new generation in the wait
    // predicate before sleeping.  No lost wake-up either way.
    ++idle->parks;
    const std::uint64_t t0 = metrics_now_ns();
    std::unique_lock<std::mutex> lk(mutex_);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             gen_.load(std::memory_order_seq_cst) != seen;
    });
    parked_.fetch_sub(1, std::memory_order_relaxed);
    idle->park_ns += metrics_now_ns() - t0;
    spins = 0;
  }
}

void WorkerTeam::worker_loop(unsigned lane) {
  LaneState& st = lane_state_[lane - 1];
  const unsigned nlanes = lanes();
  std::uint64_t seen = 0;
  IdleStats idle;
  for (;;) {
    const std::uint64_t g = await_command(seen, &idle);
    if (g == seen) return;  // stop requested
    seen = g;
    // Metrics are read strictly after the acquire of gen_, and the cells
    // written here are published by the release store of done below — the
    // step protocol already orders every access, no extra atomics.
    const bool sampled = metrics_ != nullptr && sample_;
    if (metrics_ != nullptr &&
        (idle.spins | idle.parks | idle.park_ns) != 0) {
      mx_.lane_spins->add(idle.spins, lane);
      mx_.lane_parks->add(idle.parks, lane);
      mx_.lane_park_ns->add(idle.park_ns, lane);
      idle = IdleStats{};
    }
    const std::size_t lo = lane_begin(items_, lane, nlanes);
    const std::size_t hi = lane_begin(items_, lane + 1, nlanes);
    std::uint64_t busy = 0;
    if (lo != hi) {
      const std::uint64_t t0 = sampled ? metrics_now_ns() : 0;
      try {
        fn_(ctx_, lane, lo, hi);
      } catch (...) {
        st.error = std::current_exception();
      }
      if (sampled) busy = metrics_now_ns() - t0;
    }
    if (sampled) {
      st.busy_ns = busy;
      mx_.lane_busy_ns->add(busy, lane);
    }
    st.done.store(g, std::memory_order_release);
  }
}

void WorkerTeam::run_step(std::size_t items, void* ctx, StepFn fn) {
  StepScope scope(*this);
  ctx_ = ctx;
  fn_ = fn;
  items_ = items;
  bool sampled = false;
  std::uint64_t t_start = 0;
  if (metrics_ != nullptr) {
    sampled = (scope.step_number() & sample_mask_) == 0;
    sample_ = sampled;
    if (sampled) {
      mx_.step_items->record(items);
      t_start = metrics_now_ns();
    }
  }
  // Publish: the seq_cst bump releases the command fields to the workers'
  // acquire loads of gen_.
  const std::uint64_t g = gen_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (parked_.load(std::memory_order_seq_cst) != 0) {
    std::lock_guard<std::mutex> lk(mutex_);
    cv_.notify_all();
  }
  // The host is lane 0 and computes its own share while the workers run
  // theirs.
  const unsigned nlanes = lanes();
  const std::size_t hi = lane_begin(items, 1, nlanes);
  std::exception_ptr host_error;
  std::uint64_t host_busy = 0;
  if (hi != 0) {
    const std::uint64_t t0 = sampled ? metrics_now_ns() : 0;
    try {
      fn(ctx, 0, 0, hi);
    } catch (...) {
      host_error = std::current_exception();
    }
    if (sampled) host_busy = metrics_now_ns() - t0;
  }
  // Barrier: one acquire load per lane pairs with its release store of
  // done, so everything each lane wrote is visible here.  The barrier
  // always completes before any rethrow — the team must be quiescent when
  // an exception escapes.
  const std::uint64_t t_barrier = sampled ? metrics_now_ns() : 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    LaneState& st = lane_state_[w];
    while (st.done.load(std::memory_order_acquire) != g)
      std::this_thread::yield();
  }
  if (sampled) {
    const std::uint64_t t_end = metrics_now_ns();
    mx_.host_barrier_ns->add(t_end - t_barrier, 0);
    mx_.lane_busy_ns->add(host_busy, 0);
    mx_.step_ns->record(t_end - t_start);
    // Busy imbalance across the lanes that owned items this step:
    // (max - min) / max, in percent.  Lane busy times were published by
    // the barrier above.
    std::uint64_t lo_busy = hi != 0 ? host_busy : UINT64_MAX;
    std::uint64_t hi_busy = hi != 0 ? host_busy : 0;
    for (unsigned lane = 1; lane < nlanes; ++lane) {
      if (lane_begin(items, lane, nlanes) == lane_begin(items, lane + 1, nlanes))
        continue;
      const std::uint64_t b = lane_state_[lane - 1].busy_ns;
      lo_busy = b < lo_busy ? b : lo_busy;
      hi_busy = b > hi_busy ? b : hi_busy;
    }
    const std::uint64_t pct =
        hi_busy == 0 || lo_busy == UINT64_MAX
            ? 0
            : (hi_busy - lo_busy) * 100 / hi_busy;
    mx_.imbalance_pct->record(pct);
    sample_ = false;
  }
  if (host_error) std::rethrow_exception(host_error);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (lane_state_[w].error) {
      std::exception_ptr e = lane_state_[w].error;
      lane_state_[w].error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

}  // namespace vmp
