/// \file partition.hpp
/// \brief Index partitions: how a 1-D range of `n` items is split over `P`
///        parts.  Used for both vector distribution and matrix row/column
///        maps ("consecutive" = block, "cyclic" = round-robin — the paper's
///        two load-balanced embeddings).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "hypercube/check.hpp"

namespace vmp {

/// Block ("consecutive") partition: part r owns the contiguous range
/// [block_begin(n,P,r), block_begin(n,P,r+1)); sizes differ by at most one,
/// with the remainder going to the lowest-numbered parts.
[[nodiscard]] constexpr std::size_t block_begin(std::size_t n, std::uint32_t P,
                                                std::uint32_t r) noexcept {
  const std::size_t q = n / P;
  const std::size_t rem = n % P;
  return static_cast<std::size_t>(r) * q + std::min<std::size_t>(r, rem);
}

/// Number of items in block-partition part r.
[[nodiscard]] constexpr std::size_t block_size(std::size_t n, std::uint32_t P,
                                               std::uint32_t r) noexcept {
  return block_begin(n, P, r + 1) - block_begin(n, P, r);
}

/// Owner part of global index i under the block partition.
[[nodiscard]] constexpr std::uint32_t block_owner(std::size_t n,
                                                  std::uint32_t P,
                                                  std::size_t i) noexcept {
  const std::size_t q = n / P;
  const std::size_t rem = n % P;
  const std::size_t fat = (q + 1) * rem;  // items held by the q+1-sized parts
  if (i < fat) return static_cast<std::uint32_t>(q + 1 == 0 ? 0 : i / (q + 1));
  if (q == 0) return static_cast<std::uint32_t>(rem);  // unreachable guard
  return static_cast<std::uint32_t>(rem + (i - fat) / q);
}

/// Local slot of global index i on its block-partition owner.
[[nodiscard]] constexpr std::size_t block_local(std::size_t n, std::uint32_t P,
                                                std::size_t i) noexcept {
  return i - block_begin(n, P, block_owner(n, P, i));
}

/// Cyclic partition: global index i is owned by part i mod P at local slot
/// i div P.  Keeps shrinking active windows (Gaussian elimination, simplex)
/// load-balanced.
[[nodiscard]] constexpr std::uint32_t cyclic_owner(std::uint32_t P,
                                                   std::size_t i) noexcept {
  return static_cast<std::uint32_t>(i % P);
}

[[nodiscard]] constexpr std::size_t cyclic_local(std::uint32_t P,
                                                 std::size_t i) noexcept {
  return i / P;
}

/// Number of items owned by part r under the cyclic partition of n items.
[[nodiscard]] constexpr std::size_t cyclic_size(std::size_t n, std::uint32_t P,
                                                std::uint32_t r) noexcept {
  return (n + P - 1 - r) / P;
}

/// Global index of local slot s on cyclic part r.
[[nodiscard]] constexpr std::size_t cyclic_global(std::uint32_t P,
                                                  std::uint32_t r,
                                                  std::size_t s) noexcept {
  return s * P + r;
}

}  // namespace vmp
