#include "hypercube/sim_clock.hpp"

namespace vmp {

void SimClock::charge_comm_step(std::size_t max_elems, std::size_t messages,
                                std::size_t total_elems) {
  const double dt =
      params_.startup_us + static_cast<double>(max_elems) * params_.per_elem_us;
  now_us_ += dt;
  comm_us_ += dt;
  stats_.comm_steps += 1;
  stats_.messages += messages;
  stats_.elements_moved += total_elems;
  stats_.elements_serial += max_elems;
}

void SimClock::charge_compute_step(std::uint64_t max_flops,
                                   std::uint64_t total_flops) {
  const double dt = static_cast<double>(max_flops) * params_.flop_us;
  now_us_ += dt;
  compute_us_ += dt;
  stats_.flops_charged += max_flops;
  stats_.flops_total += total_flops;
}

void SimClock::charge_router_cycle(std::size_t packets_in_flight) {
  const double dt = params_.router_startup_us + params_.per_elem_us;
  now_us_ += dt;
  router_us_ += dt;
  stats_.router_hops += packets_in_flight;
}

void SimClock::reset() {
  now_us_ = comm_us_ = compute_us_ = router_us_ = 0.0;
  stats_ = SimStats{};
}

}  // namespace vmp
