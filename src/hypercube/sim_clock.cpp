#include "hypercube/sim_clock.hpp"

namespace vmp {

SimStats operator-(const SimStats& a, const SimStats& b) {
  SimStats d;
  d.comm_steps = a.comm_steps - b.comm_steps;
  d.messages = a.messages - b.messages;
  d.elements_moved = a.elements_moved - b.elements_moved;
  d.elements_serial = a.elements_serial - b.elements_serial;
  d.flops_charged = a.flops_charged - b.flops_charged;
  d.flops_total = a.flops_total - b.flops_total;
  d.router_packets = a.router_packets - b.router_packets;
  d.router_hops = a.router_hops - b.router_hops;
  d.link_hops = a.link_hops - b.link_hops;
  d.fault_retries = a.fault_retries - b.fault_retries;
  d.fault_chksum_fails = a.fault_chksum_fails - b.fault_chksum_fails;
  d.fault_reroutes = a.fault_reroutes - b.fault_reroutes;
  d.alloc_bytes = a.alloc_bytes - b.alloc_bytes;
  d.pool_hits = a.pool_hits - b.pool_hits;
  d.pool_misses = a.pool_misses - b.pool_misses;
  d.slab_allocs = a.slab_allocs - b.slab_allocs;
  d.slab_bytes = a.slab_bytes - b.slab_bytes;
  return d;
}

void SimClock::charge_comm_step(std::size_t max_elems, std::size_t messages,
                                std::size_t total_elems, int dim) {
  const double dt =
      params_.startup_us + static_cast<double>(max_elems) * params_.per_elem_us;
  const double t0 = now_us_;
  now_us_ += dt;
  comm_us_ += dt;
  stats_.comm_steps += 1;
  stats_.messages += messages;
  stats_.elements_moved += total_elems;
  stats_.elements_serial += max_elems;
  stats_.link_hops += messages;  // one physical link per message here
  tracer_.on_charge(ChargeKind::Comm, t0, dt, dim, messages, total_elems,
                    max_elems, 0, 0, 0);
}

void SimClock::charge_comm_round(double startup_units, double elem_units,
                                 std::size_t messages, std::size_t total_elems,
                                 std::size_t max_elems, int axis,
                                 std::uint64_t link_hops) {
  const double dt = params_.startup_us * startup_units +
                    params_.per_elem_us * elem_units;
  const double t0 = now_us_;
  now_us_ += dt;
  comm_us_ += dt;
  stats_.comm_steps += 1;
  stats_.messages += messages;
  stats_.elements_moved += total_elems;
  stats_.elements_serial += max_elems;
  stats_.link_hops += link_hops;
  tracer_.on_charge(ChargeKind::Comm, t0, dt, axis, messages, total_elems,
                    max_elems, 0, 0, 0);
}

void SimClock::charge_compute_step(std::uint64_t max_flops,
                                   std::uint64_t total_flops) {
  const double dt = static_cast<double>(max_flops) * params_.flop_us;
  const double t0 = now_us_;
  now_us_ += dt;
  compute_us_ += dt;
  stats_.flops_charged += max_flops;
  stats_.flops_total += total_flops;
  tracer_.on_charge(ChargeKind::Compute, t0, dt, -1, 0, 0, 0, max_flops,
                    total_flops, 0);
}

void SimClock::charge_router_cycle(std::size_t packets_in_flight) {
  const double dt = params_.router_startup_us + params_.per_elem_us;
  const double t0 = now_us_;
  now_us_ += dt;
  router_us_ += dt;
  stats_.router_hops += packets_in_flight;
  tracer_.on_charge(ChargeKind::Router, t0, dt, -1, 0, 0, 0, 0, 0,
                    packets_in_flight);
}

void SimClock::charge_fault_latency(double us) {
  const double t0 = now_us_;
  now_us_ += us;
  comm_us_ += us;
  // A spike stalls the lockstep round: counts as one zero-message comm
  // round so region counter sums still reproduce the global totals.
  stats_.comm_steps += 1;
  tracer_.on_charge(ChargeKind::Comm, t0, us, -1, 0, 0, 0, 0, 0, 0);
}

void SimClock::charge_us(double us) {
  const double t0 = now_us_;
  now_us_ += us;
  host_us_ += us;
  tracer_.on_charge(ChargeKind::Host, t0, us, -1, 0, 0, 0, 0, 0, 0);
}

void SimClock::reset() {
  now_us_ = comm_us_ = compute_us_ = router_us_ = host_us_ = 0.0;
  stats_ = SimStats{};
  tracer_.reset();
}

}  // namespace vmp
