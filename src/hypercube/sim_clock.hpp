/// \file sim_clock.hpp
/// \brief Global simulated clock of the lockstep hypercube machine.
///
/// The machine executes SIMD-style: in every step all (participating)
/// processors perform the same action, so a single global clock suffices.
/// Each communication step advances the clock by `τ + n·t_c` where `n` is
/// the largest transfer any processor performs in that step; each compute
/// step advances it by `f·t_a` where `f` is the largest per-processor flop
/// count.  The clock also accumulates traffic statistics used by the
/// benchmark harness and by asymptotic property tests, and feeds every
/// charge to its Tracer (obs/tracer.hpp) so the charge is attributed to
/// the innermost open trace region.
///
/// Decomposition invariant, asserted by tests/test_accounting.cpp:
///
///     now_us() == comm_us() + compute_us() + router_us() + host_us()
///
/// holds to floating-point round-off — every charge lands in exactly one
/// bucket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "hypercube/cost_model.hpp"
#include "obs/tracer.hpp"

namespace vmp {

/// Cumulative traffic / work counters, all monotonically increasing.
struct SimStats {
  std::uint64_t comm_steps = 0;      ///< lockstep communication rounds
  std::uint64_t messages = 0;        ///< point-to-point messages delivered
  std::uint64_t elements_moved = 0;  ///< total elements over all messages
  std::uint64_t elements_serial = 0; ///< per-step max elements, summed (the
                                     ///< quantity the clock charges for)
  std::uint64_t flops_charged = 0;   ///< per-step max flops, summed
  std::uint64_t flops_total = 0;     ///< total flops over all processors
  std::uint64_t router_packets = 0;  ///< packets pushed through the general
                                     ///< router (naive path only)
  std::uint64_t router_hops = 0;     ///< packet-hops through the router
  std::uint64_t link_hops = 0;       ///< physical link crossings of lockstep
                                     ///< rounds (== messages on a unit-hop
                                     ///< topology; counts dilation elsewhere)
  std::uint64_t fault_retries = 0;   ///< messages retransmitted after a
                                     ///< transient fault (drop or corruption)
  std::uint64_t fault_chksum_fails = 0;  ///< corrupted payloads the message
                                         ///< checksum caught and discarded
  std::uint64_t fault_reroutes = 0;  ///< messages sent around a dead link
  std::uint64_t alloc_bytes = 0;     ///< heap bytes newly allocated for
                                     ///< pooled hot-path buffers (misses)
  std::uint64_t pool_hits = 0;       ///< buffer-pool acquires served by reuse
  std::uint64_t pool_misses = 0;     ///< buffer-pool acquires that hit the heap
  std::uint64_t slab_allocs = 0;     ///< slab arenas (DistBuffer storage) whose
                                     ///< pool acquire had to touch the heap
  std::uint64_t slab_bytes = 0;      ///< heap bytes of those arenas (a subset
                                     ///< of alloc_bytes)

  bool operator==(const SimStats&) const = default;
};

/// Field-wise difference of two counter snapshots (later minus earlier).
[[nodiscard]] SimStats operator-(const SimStats& a, const SimStats& b);

/// The simulated clock.  Owned by the Cube; all collectives charge it.
class SimClock {
 public:
  explicit SimClock(CostParams params) : params_(params) {}

  /// One lockstep cube-edge communication round: `max_elems` is the largest
  /// per-processor transfer, `messages`/`total_elems` feed the statistics.
  /// `dim` is the cube dimension the round crossed (-1 when the round spans
  /// several dimensions at once — all-port, irregular neighbor exchanges —
  /// or models front-end traffic); it feeds the tracer's per-dimension
  /// traffic histogram only, never the cost.
  void charge_comm_step(std::size_t max_elems, std::size_t messages,
                        std::size_t total_elems, int dim = -1);

  /// One lockstep round routed over a NON-unit-hop topology (mesh/torus,
  /// dragonfly): the machine resolves every logical cube edge into
  /// physical hops and passes the resulting charge units —
  /// `startup_units` is the largest per-message sum of per-hop start-up
  /// multipliers, `elem_units` the most loaded directed link's element
  /// count weighted by its per-element multiplier (store-and-forward
  /// lockstep contention: the busiest wire paces the round).  Advances
  /// the clock by `τ·startup_units + t_c·elem_units`; `axis` feeds the
  /// per-axis traffic histogram (-1 = mixed), `link_hops` the dilation
  /// counter.  The unit-hop (hypercube) path never calls this.
  void charge_comm_round(double startup_units, double elem_units,
                         std::size_t messages, std::size_t total_elems,
                         std::size_t max_elems, int axis,
                         std::uint64_t link_hops);

  /// One lockstep compute round: `max_flops` per-processor bound,
  /// `total_flops` over all processors.
  void charge_compute_step(std::uint64_t max_flops, std::uint64_t total_flops);

  /// One general-router delivery cycle (naive primitives): all packets
  /// advance one hop; the cycle costs a router start-up plus one element
  /// transfer time.  `packets_in_flight` feeds the statistics.
  void charge_router_cycle(std::size_t packets_in_flight);

  /// Explicit extra latency charged to the host bucket (front-end work the
  /// machine model does not otherwise price).
  void charge_us(double us);

  /// Statistics-only: record packets injected into the general router.
  void note_router_packets(std::size_t n) { stats_.router_packets += n; }

  /// Extra per-edge latency (a fault-plan spike) folded into the comm
  /// bucket without counting a lockstep round.  Callers open a fault trace
  /// region first so the charge is attributed to recovery, not progress.
  void charge_fault_latency(double us);

  /// Statistics-only fault recovery counters (charged time flows through
  /// the regular charge_* calls under fault_* trace regions).
  void note_fault_retries(std::size_t n) { stats_.fault_retries += n; }
  void note_fault_chksum_fail() { stats_.fault_chksum_fails += 1; }
  void note_fault_reroute() { stats_.fault_reroutes += 1; }

  /// Statistics-only buffer-pool counters (hypercube/buffer_pool.hpp):
  /// hot-path scratch acquisitions served by reuse vs. fresh heap memory.
  /// Host-side bookkeeping, so no simulated time is charged.
  void note_pool_hit() { stats_.pool_hits += 1; }
  void note_pool_miss(std::size_t bytes) {
    stats_.pool_misses += 1;
    stats_.alloc_bytes += bytes;
  }

  /// Batched forms: the team engine reduces per-lane hit/miss partials and
  /// folds them in with two calls instead of one per message.  Pure sums,
  /// so the totals are identical to the per-message form in any order.
  void note_pool_hits(std::uint64_t n) { stats_.pool_hits += n; }
  void note_pool_misses(std::uint64_t n, std::uint64_t bytes) {
    stats_.pool_misses += n;
    stats_.alloc_bytes += bytes;
  }

  /// Statistics-only: one slab arena (comm/dist_buffer.hpp) whose pooled
  /// acquire missed and allocated `bytes` fresh heap bytes.  Reported on
  /// top of the note_pool_miss the acquire itself records, so profiles can
  /// split heap traffic into staging scratch vs. distributed-object slabs.
  void note_slab_alloc(std::size_t bytes) {
    stats_.slab_allocs += 1;
    stats_.slab_bytes += bytes;
  }

  /// Topology identity for reports (set by the Cube at construction;
  /// standalone clocks default to the paper machine).
  void set_topology(const char* name, int axes) {
    topology_name_ = name;
    topology_axes_ = axes;
  }
  [[nodiscard]] const std::string& topology_name() const {
    return topology_name_;
  }
  [[nodiscard]] int topology_axes() const { return topology_axes_; }

  [[nodiscard]] double now_us() const { return now_us_; }
  [[nodiscard]] double comm_us() const { return comm_us_; }
  [[nodiscard]] double compute_us() const { return compute_us_; }
  [[nodiscard]] double router_us() const { return router_us_; }
  [[nodiscard]] double host_us() const { return host_us_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// Per-region cost attribution (see obs/tracer.hpp, obs/trace.hpp).
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

  /// Reset time, statistics and trace data to zero (cost parameters are
  /// kept; open trace regions stay open, re-stamped to time 0).
  void reset();

 private:
  CostParams params_;
  std::string topology_name_ = "hypercube";
  int topology_axes_ = 0;
  double now_us_ = 0.0;
  double comm_us_ = 0.0;
  double compute_us_ = 0.0;
  double router_us_ = 0.0;
  double host_us_ = 0.0;
  SimStats stats_;
  Tracer tracer_;
};

/// Simulated time and bucket/counter deltas over a SimTimer window.
struct SimSpan {
  double us = 0.0;
  double comm_us = 0.0;
  double compute_us = 0.0;
  double router_us = 0.0;
  double host_us = 0.0;
  SimStats stats;  ///< counter deltas over the window
};

/// RAII stopwatch over a SimClock: snapshots time, buckets and statistics
/// at construction and reports the deltas accumulated since.
class SimTimer {
 public:
  explicit SimTimer(const SimClock& clock)
      : clock_(&clock),
        start_us_(clock.now_us()),
        start_comm_us_(clock.comm_us()),
        start_compute_us_(clock.compute_us()),
        start_router_us_(clock.router_us()),
        start_host_us_(clock.host_us()),
        start_stats_(clock.stats()) {}

  [[nodiscard]] double elapsed_us() const {
    return clock_->now_us() - start_us_;
  }
  /// Counter deltas (messages / elements / flops / …) since construction.
  [[nodiscard]] SimStats stats_delta() const {
    return clock_->stats() - start_stats_;
  }
  /// Full per-scope delta: elapsed time, bucket split, and counters.
  [[nodiscard]] SimSpan span() const {
    return SimSpan{elapsed_us(),
                   clock_->comm_us() - start_comm_us_,
                   clock_->compute_us() - start_compute_us_,
                   clock_->router_us() - start_router_us_,
                   clock_->host_us() - start_host_us_,
                   stats_delta()};
  }

 private:
  const SimClock* clock_;
  double start_us_;
  double start_comm_us_;
  double start_compute_us_;
  double start_router_us_;
  double start_host_us_;
  SimStats start_stats_;
};

}  // namespace vmp
