/// \file sim_clock.hpp
/// \brief Global simulated clock of the lockstep hypercube machine.
///
/// The machine executes SIMD-style: in every step all (participating)
/// processors perform the same action, so a single global clock suffices.
/// Each communication step advances the clock by `τ + n·t_c` where `n` is
/// the largest transfer any processor performs in that step; each compute
/// step advances it by `f·t_a` where `f` is the largest per-processor flop
/// count.  The clock also accumulates traffic statistics used by the
/// benchmark harness and by asymptotic property tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hypercube/cost_model.hpp"

namespace vmp {

/// Cumulative traffic / work counters, all monotonically increasing.
struct SimStats {
  std::uint64_t comm_steps = 0;      ///< lockstep communication rounds
  std::uint64_t messages = 0;        ///< point-to-point messages delivered
  std::uint64_t elements_moved = 0;  ///< total elements over all messages
  std::uint64_t elements_serial = 0; ///< per-step max elements, summed (the
                                     ///< quantity the clock charges for)
  std::uint64_t flops_charged = 0;   ///< per-step max flops, summed
  std::uint64_t flops_total = 0;     ///< total flops over all processors
  std::uint64_t router_packets = 0;  ///< packets pushed through the general
                                     ///< router (naive path only)
  std::uint64_t router_hops = 0;     ///< packet-hops through the router
};

/// The simulated clock.  Owned by the Cube; all collectives charge it.
class SimClock {
 public:
  explicit SimClock(CostParams params) : params_(params) {}

  /// One lockstep cube-edge communication round: `max_elems` is the largest
  /// per-processor transfer, `messages`/`total_elems` feed the statistics.
  void charge_comm_step(std::size_t max_elems, std::size_t messages,
                        std::size_t total_elems);

  /// One lockstep compute round: `max_flops` per-processor bound,
  /// `total_flops` over all processors.
  void charge_compute_step(std::uint64_t max_flops, std::uint64_t total_flops);

  /// One general-router delivery cycle (naive primitives): all packets
  /// advance one hop; the cycle costs a router start-up plus one element
  /// transfer time.  `packets_in_flight` feeds the statistics.
  void charge_router_cycle(std::size_t packets_in_flight);

  /// Explicit extra latency (e.g. host interaction modelled as free: 0).
  void charge_us(double us) { now_us_ += us; }

  /// Statistics-only: record packets injected into the general router.
  void note_router_packets(std::size_t n) { stats_.router_packets += n; }

  [[nodiscard]] double now_us() const { return now_us_; }
  [[nodiscard]] double comm_us() const { return comm_us_; }
  [[nodiscard]] double compute_us() const { return compute_us_; }
  [[nodiscard]] double router_us() const { return router_us_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// Reset time and statistics to zero (cost parameters are kept).
  void reset();

 private:
  CostParams params_;
  double now_us_ = 0.0;
  double comm_us_ = 0.0;
  double compute_us_ = 0.0;
  double router_us_ = 0.0;
  SimStats stats_;
};

/// RAII stopwatch over a SimClock: records the simulated time elapsed
/// between construction and `elapsed_us()` calls.
class SimTimer {
 public:
  explicit SimTimer(const SimClock& clock)
      : clock_(&clock), start_us_(clock.now_us()) {}
  [[nodiscard]] double elapsed_us() const {
    return clock_->now_us() - start_us_;
  }

 private:
  const SimClock* clock_;
  double start_us_;
};

}  // namespace vmp
