// Unit + property tests for the reduction operator library: identities,
// associativity, the deterministic tie-breaks of the located operators,
// and non-commutative operator support in the collectives.
#include <gtest/gtest.h>

#include <string>

#include "comm/collectives.hpp"
#include "comm/ops.hpp"
#include "hypercube/machine.hpp"

namespace vmp {
namespace {

TEST(Ops, IdentitiesAreNeutral) {
  const Plus<double> plus;
  const Multiply<double> mul;
  const Min<double> mn;
  const Max<double> mx;
  for (double x : {-3.5, 0.0, 1.0, 42.0}) {
    EXPECT_EQ(plus.combine(plus.identity(), x), x);
    EXPECT_EQ(plus.combine(x, plus.identity()), x);
    EXPECT_EQ(mul.combine(mul.identity(), x), x);
    EXPECT_EQ(mn.combine(mn.identity(), x), x);
    EXPECT_EQ(mx.combine(mx.identity(), x), x);
  }
}

TEST(Ops, MinLocMaxLocIdentityIsNeutral) {
  const MinLoc<double> mn;
  const MaxLoc<double> mx;
  const ValueIndex<double> a{2.5, 7};
  EXPECT_EQ(mn.combine(mn.identity(), a), a);
  EXPECT_EQ(mn.combine(a, mn.identity()), a);
  EXPECT_EQ(mx.combine(mx.identity(), a), a);
  EXPECT_EQ(mx.combine(a, mx.identity()), a);
}

TEST(Ops, MinLocTieBreaksTowardSmallerIndex) {
  const MinLoc<double> op;
  const ValueIndex<double> a{1.0, 3}, b{1.0, 9};
  EXPECT_EQ(op.combine(a, b).index, 3);
  EXPECT_EQ(op.combine(b, a).index, 3);  // commutative under ties
  const ValueIndex<double> c{0.5, 12};
  EXPECT_EQ(op.combine(a, c).index, 12);  // smaller value wins
}

TEST(Ops, MaxLocTieBreaksTowardSmallerIndex) {
  const MaxLoc<double> op;
  const ValueIndex<double> a{5.0, 4}, b{5.0, 2};
  EXPECT_EQ(op.combine(a, b).index, 2);
  EXPECT_EQ(op.combine(b, a).index, 2);
  const ValueIndex<double> c{7.0, 30};
  EXPECT_EQ(op.combine(a, c).index, 30);
}

TEST(Ops, MinLocIsAssociativeOnSamples) {
  const MinLoc<double> op;
  const ValueIndex<double> xs[] = {{3, 1}, {3, 0}, {-1, 5}, {-1, 2}, {9, 9}};
  for (const auto& a : xs)
    for (const auto& b : xs)
      for (const auto& c : xs)
        EXPECT_EQ(op.combine(op.combine(a, b), c),
                  op.combine(a, op.combine(b, c)));
}

TEST(Ops, LogicalOps) {
  const LogicalAnd land;
  const LogicalOr lor;
  EXPECT_EQ(land.combine(1, 1), 1);
  EXPECT_EQ(land.combine(1, 0), 0);
  EXPECT_EQ(land.identity(), 1);
  EXPECT_EQ(lor.combine(0, 0), 0);
  EXPECT_EQ(lor.combine(0, 1), 1);
  EXPECT_EQ(lor.identity(), 0);
}

// ---------------------------------------------------------------------------
// Non-commutative (but associative) operator support: composition of
// affine maps x ↦ a·x + b.  compose(f, g) = "apply f, then g".
// ---------------------------------------------------------------------------

struct Affine {
  double a = 1.0, b = 0.0;
  friend bool operator==(const Affine&, const Affine&) = default;
};

struct AffineCompose {
  using value_type = Affine;
  [[nodiscard]] Affine combine(const Affine& f, const Affine& g) const {
    return Affine{g.a * f.a, g.a * f.b + g.b};  // g ∘ f
  }
  [[nodiscard]] Affine identity() const { return {}; }
};

TEST(Ops, AffineComposeIsAssociativeNotCommutative) {
  const AffineCompose op;
  const Affine f{2, 1}, g{3, -1}, h{0.5, 4};
  EXPECT_EQ(op.combine(op.combine(f, g), h), op.combine(f, op.combine(g, h)));
  EXPECT_NE(op.combine(f, g), op.combine(g, f));
}

class NonCommutative : public ::testing::TestWithParam<int> {};

TEST_P(NonCommutative, AllreduceRespectsRankOrder) {
  const int d = GetParam();
  Cube cube(d, CostParams::unit());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  DistBuffer<Affine> buf(cube);
  cube.each_proc([&](proc_t q) {
    buf.assign(q, 3, Affine{1.0 + 0.25 * q, 0.5 * q - 1.0});
  });
  const AffineCompose op;
  // Host reference: fold in rank order.
  Affine want{};
  for (proc_t r = 0; r < cube.procs(); ++r)
    want = op.combine(want, Affine{1.0 + 0.25 * r, 0.5 * r - 1.0});
  allreduce(cube, buf, sc, op);
  cube.each_proc([&](proc_t q) {
    for (const Affine& f : buf.tile(q)) {
      EXPECT_DOUBLE_EQ(f.a, want.a) << "q=" << q;
      EXPECT_DOUBLE_EQ(f.b, want.b) << "q=" << q;
    }
  });
}

TEST_P(NonCommutative, ReduceScatterRespectsRankOrder) {
  const int d = GetParam();
  Cube cube(d, CostParams::unit());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  const std::size_t n = 6;
  DistBuffer<Affine> buf(cube);
  cube.each_proc([&](proc_t q) {
    buf.assign(q, n, Affine{1.0 + 0.125 * q, 0.25 * q});
  });
  const AffineCompose op;
  Affine want{};
  for (proc_t r = 0; r < cube.procs(); ++r)
    want = op.combine(want, Affine{1.0 + 0.125 * r, 0.25 * r});
  reduce_scatter(cube, buf, sc, op);
  cube.each_proc([&](proc_t q) {
    for (const Affine& f : buf.tile(q)) {
      EXPECT_DOUBLE_EQ(f.a, want.a);
      EXPECT_DOUBLE_EQ(f.b, want.b);
    }
  });
}

TEST_P(NonCommutative, ScanComputesRankPrefixes) {
  const int d = GetParam();
  Cube cube(d, CostParams::unit());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  DistBuffer<Affine> buf(cube);
  const auto at = [](proc_t r) {
    return Affine{1.0 + 0.5 * (r % 3), 1.0 - 0.25 * r};
  };
  cube.each_proc([&](proc_t q) { buf.assign(q, 2, at(q)); });
  const AffineCompose op;
  scan_exclusive(cube, buf, sc, op);
  cube.each_proc([&](proc_t q) {
    Affine want{};
    for (proc_t r = 0; r < q; ++r) want = op.combine(want, at(r));
    for (const Affine& f : buf.tile(q)) {
      EXPECT_DOUBLE_EQ(f.a, want.a) << "q=" << q;
      EXPECT_DOUBLE_EQ(f.b, want.b) << "q=" << q;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Dims, NonCommutative, ::testing::Values(0, 1, 2, 3,
                                                                 4, 5));

}  // namespace
}  // namespace vmp
