// Unit tests: processor grid, axis maps, distributed containers and
// embedding changes (realign).
#include <gtest/gtest.h>

#include <memory>

#include "embed/axis_map.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"
#include "embed/grid.hpp"
#include "embed/realign.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

TEST(Grid, CoordinatesRoundTrip) {
  Cube cube(5, CostParams::unit());
  Grid grid(cube, 3, 2);
  EXPECT_EQ(grid.prows(), 8u);
  EXPECT_EQ(grid.pcols(), 4u);
  for (proc_t q = 0; q < cube.procs(); ++q) {
    EXPECT_EQ(grid.at(grid.prow(q), grid.pcol(q)), q);
    EXPECT_LT(grid.prow(q), grid.prows());
    EXPECT_LT(grid.pcol(q), grid.pcols());
  }
}

TEST(Grid, SubcubeFamiliesMatchCoordinates) {
  Cube cube(5, CostParams::unit());
  Grid grid(cube, 2, 3);
  const SubcubeSet rows = grid.within_row();
  const SubcubeSet cols = grid.within_col();
  for (proc_t q = 0; q < cube.procs(); ++q) {
    EXPECT_EQ(rows.rank(q), grid.pcol(q));
    EXPECT_EQ(cols.rank(q), grid.prow(q));
    // Peers in within_row share the grid row.
    for (std::uint32_t r = 0; r < rows.size(); ++r)
      EXPECT_EQ(grid.prow(rows.with_rank(q, r)), grid.prow(q));
    for (std::uint32_t r = 0; r < cols.size(); ++r)
      EXPECT_EQ(grid.pcol(cols.with_rank(q, r)), grid.pcol(q));
  }
}

TEST(Grid, SquareSplit) {
  Cube cube(5, CostParams::unit());
  Grid grid = Grid::square(cube);
  EXPECT_EQ(grid.row_dims() + grid.col_dims(), 5);
  EXPECT_LE(std::abs(grid.row_dims() - grid.col_dims()), 1);
}

TEST(Grid, RejectsBadSplit) {
  Cube cube(4, CostParams::unit());
  EXPECT_THROW(Grid(cube, 1, 2), ContractError);
  EXPECT_THROW(Grid(cube, 5, 0), ContractError);
}

class AxisMapSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t,
                                                 Part>> {};

TEST_P(AxisMapSweep, GlobalLocalRoundTrip) {
  const auto [n, P, kind] = GetParam();
  const AxisMap map(n, P, kind);
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < P; ++r) {
    for (std::size_t s = 0; s < map.size(r); ++s) {
      const std::size_t g = map.global(r, s);
      EXPECT_EQ(map.owner(g), r);
      EXPECT_EQ(map.local(g), s);
    }
    total += map.size(r);
  }
  EXPECT_EQ(total, n);
}

TEST_P(AxisMapSweep, LoadBalancedWithinOne) {
  const auto [n, P, kind] = GetParam();
  const AxisMap map(n, P, kind);
  std::size_t mn = n + 1, mx = 0;
  for (std::uint32_t r = 0; r < P; ++r) {
    mn = std::min(mn, map.size(r));
    mx = std::max(mx, map.size(r));
  }
  EXPECT_LE(mx - mn, 1u);  // both embeddings are load-balanced
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AxisMapSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 3, 8, 17, 64, 100),
                       ::testing::Values<std::uint32_t>(1, 2, 4, 8),
                       ::testing::Values(Part::Block, Part::Cyclic)));

struct EmbedCase {
  int gr, gc;
  std::size_t nrows, ncols;
  MatrixLayout layout;
};

class MatrixEmbed : public ::testing::TestWithParam<EmbedCase> {
 protected:
  void SetUp() override {
    const EmbedCase c = GetParam();
    cube = std::make_unique<Cube>(c.gr + c.gc, CostParams::unit());
    grid = std::make_unique<Grid>(*cube, c.gr, c.gc);
  }
  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
};

TEST_P(MatrixEmbed, LoadStoreRoundTrip) {
  const EmbedCase c = GetParam();
  const std::vector<double> host = random_matrix(c.nrows, c.ncols, 7);
  DistMatrix<double> A(*grid, c.nrows, c.ncols, c.layout);
  A.load(host);
  EXPECT_EQ(A.to_host(), host);
}

TEST_P(MatrixEmbed, ElementAccessMatchesHost) {
  const EmbedCase c = GetParam();
  const std::vector<double> host = random_matrix(c.nrows, c.ncols, 8);
  DistMatrix<double> A(*grid, c.nrows, c.ncols, c.layout);
  A.load(host);
  for (std::size_t i = 0; i < c.nrows; i += 3)
    for (std::size_t j = 0; j < c.ncols; j += 2)
      EXPECT_EQ(A.at(i, j), host[i * c.ncols + j]);
}

TEST_P(MatrixEmbed, LoadBalanced) {
  const EmbedCase c = GetParam();
  DistMatrix<double> A(*grid, c.nrows, c.ncols, c.layout);
  std::size_t total = 0;
  cube->each_proc([&](proc_t q) {
    EXPECT_LE(A.lrows(q) * A.lcols(q), A.max_block());
    total += A.lrows(q) * A.lcols(q);
  });
  EXPECT_EQ(total, c.nrows * c.ncols);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatrixEmbed,
    ::testing::Values(
        EmbedCase{0, 0, 5, 7, MatrixLayout::blocked()},
        EmbedCase{1, 1, 4, 4, MatrixLayout::blocked()},
        EmbedCase{2, 2, 16, 16, MatrixLayout::blocked()},
        EmbedCase{2, 2, 17, 13, MatrixLayout::blocked()},
        EmbedCase{2, 2, 17, 13, MatrixLayout::cyclic()},
        EmbedCase{3, 1, 9, 33, MatrixLayout::cyclic()},
        EmbedCase{1, 3, 33, 9, MatrixLayout{Part::Block, Part::Cyclic}},
        EmbedCase{2, 3, 6, 40, MatrixLayout{Part::Cyclic, Part::Block}},
        EmbedCase{3, 3, 2, 3, MatrixLayout::blocked()}));

class VectorEmbed : public ::testing::TestWithParam<
                        std::tuple<int, int, std::size_t, Align, Part>> {};

TEST_P(VectorEmbed, LoadStoreRoundTripAndReplicas) {
  const auto [gr, gc, n, align, part] = GetParam();
  if (align == Align::Linear && part == Part::Cyclic) GTEST_SKIP();
  Cube cube(gr + gc, CostParams::unit());
  Grid grid(cube, gr, gc);
  const std::vector<double> host = random_vector(n, 11);
  DistVector<double> v(grid, n, align, part);
  v.load(host);
  EXPECT_EQ(v.to_host(), host);
  EXPECT_TRUE(v.replicas_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VectorEmbed,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2),
                       ::testing::Values<std::size_t>(1, 5, 16, 33),
                       ::testing::Values(Align::Linear, Align::Cols,
                                         Align::Rows),
                       ::testing::Values(Part::Block, Part::Cyclic)));

class RealignSweep : public ::testing::TestWithParam<
                         std::tuple<Align, Part, Align, Part>> {};

TEST_P(RealignSweep, PreservesContentAndCharges) {
  const auto [a0, p0, a1, p1] = GetParam();
  if (a0 == Align::Linear && p0 == Part::Cyclic) GTEST_SKIP();
  if (a1 == Align::Linear && p1 == Part::Cyclic) GTEST_SKIP();
  Cube cube(4, CostParams::unit());
  Grid grid(cube, 2, 2);
  const std::size_t n = 29;
  const std::vector<double> host = random_vector(n, 13);
  DistVector<double> v(grid, n, a0, p0);
  v.load(host);
  const DistVector<double> w = realign(v, a1, p1);
  EXPECT_EQ(w.align(), a1);
  EXPECT_EQ(w.to_host(), host);
  EXPECT_TRUE(w.replicas_consistent());
  if (!(a0 == a1 && p0 == p1)) {
    EXPECT_GT(cube.clock().now_us(), 0.0)
        << "an embedding change must cost simulated time";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RealignSweep,
    ::testing::Combine(::testing::Values(Align::Linear, Align::Cols,
                                         Align::Rows),
                       ::testing::Values(Part::Block, Part::Cyclic),
                       ::testing::Values(Align::Linear, Align::Cols,
                                         Align::Rows),
                       ::testing::Values(Part::Block, Part::Cyclic)));

}  // namespace
}  // namespace vmp
