// Tests for the synthetic workload generators: determinism, and the
// structural guarantees the experiments rely on (nonsingularity,
// feasibility, positive definiteness, Klee-Minty's known optimum).
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/serial/lu.hpp"
#include "algorithms/serial/simplex.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

TEST(Workloads, DeterministicInSeed) {
  EXPECT_EQ(random_matrix(10, 7, 42), random_matrix(10, 7, 42));
  EXPECT_NE(random_matrix(10, 7, 42), random_matrix(10, 7, 43));
  EXPECT_EQ(random_vector(64, 1), random_vector(64, 1));
}

TEST(Workloads, RandomValuesInRange) {
  for (double x : random_matrix(20, 20, 7)) {
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Workloads, DiagDominantIsNonsingular) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    HostMatrix H = diag_dominant_matrix(24, seed);
    // Strict dominance check.
    for (std::size_t i = 0; i < 24; ++i) {
      double off = 0.0;
      for (std::size_t j = 0; j < 24; ++j)
        if (j != i) off += std::abs(H(i, j));
      EXPECT_GT(std::abs(H(i, i)), off);
    }
    EXPECT_FALSE(serial::lu_factor(H).singular);
  }
}

TEST(Workloads, SpdMatrixIsSymmetricPositiveDefinite) {
  const std::size_t n = 16;
  const HostMatrix A = spd_matrix(n, 5);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(A(i, j), A(j, i));
  // Cholesky-by-hand succeeds iff SPD.
  HostMatrix L(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = A(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= L(j, k) * L(j, k);
    ASSERT_GT(d, 0.0) << "not positive definite at " << j;
    L(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = A(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= L(i, k) * L(j, k);
      L(i, j) = s / L(j, j);
    }
  }
}

TEST(Workloads, FeasibleLpHasItsInteriorPoint) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const LpProblem lp = random_feasible_lp(10, 8, seed);
    lp.validate();
    for (double bi : lp.b) EXPECT_GT(bi, 0.0) << "no Phase I needed";
    const LpSolution s = serial::simplex_solve(lp);
    EXPECT_EQ(s.status, LpStatus::Optimal);
    EXPECT_GT(s.objective, 0.0);
  }
}

TEST(Workloads, Phase1LpIsFeasibleWithNegativeRhs) {
  const LpProblem lp = random_phase1_lp(6, 4, 31);
  lp.validate();
  bool has_negative = false;
  for (double bi : lp.b) has_negative |= bi < 0;
  EXPECT_TRUE(has_negative);
  EXPECT_EQ(serial::simplex_solve(lp).status, LpStatus::Optimal);
}

TEST(Workloads, KleeMintyOptimumIsFiveToTheD) {
  for (std::size_t d = 1; d <= 7; ++d) {
    const LpProblem lp = klee_minty(d);
    const LpSolution s = serial::simplex_solve(lp);
    ASSERT_EQ(s.status, LpStatus::Optimal) << d;
    const double want = std::pow(5.0, double(d));
    EXPECT_NEAR(s.objective, want, 1e-9 * want);
    // The Dantzig walk visits 2^d - 1 vertices.
    EXPECT_EQ(s.iterations, (1ull << d) - 1) << d;
  }
}

TEST(Rng, SplitMixBasics) {
  SplitMix64 a(1), b(1), c(2);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(SplitMix64(1).next(), c.next());
  for (int i = 0; i < 1000; ++i) {
    const double u = a.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double r = a.uniform(-2.0, 3.0);
    EXPECT_GE(r, -2.0);
    EXPECT_LT(r, 3.0);
    EXPECT_LT(a.below(10), 10u);
  }
}

}  // namespace
}  // namespace vmp
