// Tests: SUMMA block-panel matmul and Gauss-Jordan inversion, plus the
// brute-force LP oracle cross-check of both simplex solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/invert.hpp"
#include "algorithms/matmul.hpp"
#include "algorithms/serial/simplex.hpp"
#include "algorithms/simplex.hpp"
#include "lp_oracle.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

// ---------------------------------------------------------------------------
// SUMMA
// ---------------------------------------------------------------------------

class SummaSweep : public ::testing::TestWithParam<
                       std::tuple<int, int, std::size_t, std::size_t,
                                  std::size_t>> {};

TEST_P(SummaSweep, MatchesHostGemmAndRank1Version) {
  const auto [gr, gc, n, k, m] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const std::vector<double> ha = random_matrix(n, k, 311);
  const std::vector<double> hb = random_matrix(k, m, 312);
  DistMatrix<double> A(grid, n, k);
  DistMatrix<double> B(grid, k, m);
  A.load(ha);
  B.load(hb);
  const std::vector<double> got = matmul_summa(A, B).to_host();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      double want = 0;
      for (std::size_t t = 0; t < k; ++t) want += ha[i * k + t] * hb[t * m + j];
      EXPECT_NEAR(got[i * m + j], want, 1e-11 * (1 + std::abs(want)))
          << i << "," << j;
    }
}

TEST_P(SummaSweep, CheaperThanRank1ForLargeMatrices) {
  const auto [gr, gc, n, k, m] = GetParam();
  if (n < 32 || gr + gc < 2) GTEST_SKIP();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  DistMatrix<double> A(grid, n, k);
  DistMatrix<double> B(grid, k, m);
  A.load(random_matrix(n, k, 313));
  B.load(random_matrix(k, m, 314));
  cube.clock().reset();
  (void)matmul(A, B);
  const double t_rank1 = cube.clock().now_us();
  cube.clock().reset();
  (void)matmul_summa(A, B);
  const double t_summa = cube.clock().now_us();
  EXPECT_LT(t_summa, t_rank1)
      << "panel broadcasts must amortize the per-column start-ups";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SummaSweep,
    ::testing::Values(std::tuple{0, 0, 5ul, 7ul, 6ul},
                      std::tuple{1, 1, 8ul, 8ul, 8ul},
                      std::tuple{2, 2, 12ul, 10ul, 9ul},
                      std::tuple{2, 2, 32ul, 32ul, 32ul},
                      std::tuple{2, 1, 9ul, 17ul, 5ul},
                      std::tuple{1, 2, 5ul, 17ul, 9ul},
                      std::tuple{3, 3, 40ul, 24ul, 16ul}));

TEST(Summa, CyclicReductionAxisRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistMatrix<double> A(grid, 4, 4, MatrixLayout::cyclic());
  DistMatrix<double> B(grid, 4, 4, MatrixLayout::cyclic());
  EXPECT_THROW((void)matmul_summa(A, B), ContractError);
}

// ---------------------------------------------------------------------------
// Gauss-Jordan inversion
// ---------------------------------------------------------------------------

class InvertSweep : public ::testing::TestWithParam<
                        std::tuple<int, int, std::size_t, MatrixLayout>> {};

TEST_P(InvertSweep, ProductWithInverseIsIdentity) {
  const auto [gr, gc, n, layout] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const HostMatrix H = diag_dominant_matrix(n, 321);
  DistMatrix<double> A(grid, n, n, layout);
  A.load(H.data());
  const InvertResult inv = invert(A);
  ASSERT_FALSE(inv.singular);
  const std::vector<double> hi = inv.inverse.to_host();
  // host check: H · H⁻¹ = I
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0;
      for (std::size_t t = 0; t < n; ++t) s += H(i, t) * hi[t * n + j];
      EXPECT_NEAR(s, i == j ? 1.0 : 0.0, 1e-8) << i << "," << j;
    }
}

TEST_P(InvertSweep, OriginalMatrixIsUntouched) {
  const auto [gr, gc, n, layout] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const HostMatrix H = diag_dominant_matrix(n, 322);
  DistMatrix<double> A(grid, n, n, layout);
  A.load(H.data());
  (void)invert(A);
  EXPECT_EQ(A.to_host(), H.data());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvertSweep,
    ::testing::Values(std::tuple{0, 0, 6ul, MatrixLayout::blocked()},
                      std::tuple{1, 1, 8ul, MatrixLayout::blocked()},
                      std::tuple{2, 2, 12ul, MatrixLayout::blocked()},
                      std::tuple{2, 2, 13ul, MatrixLayout::cyclic()},
                      std::tuple{2, 1, 9ul, MatrixLayout::cyclic()},
                      std::tuple{2, 2, 1ul, MatrixLayout::blocked()}));

TEST(Invert, SingularDetected) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 6;
  std::vector<double> host = random_matrix(n, n, 323);
  for (std::size_t j = 0; j < n; ++j) host[4 * n + j] = 2.0 * host[1 * n + j];
  DistMatrix<double> A(grid, n, n);
  A.load(host);
  EXPECT_TRUE(invert(A).singular);
}

TEST(Invert, InverseOfIdentityIsIdentity) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  const std::size_t n = 5;
  std::vector<double> host(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) host[i * n + i] = 1.0;
  DistMatrix<double> A(grid, n, n);
  A.load(host);
  const InvertResult inv = invert(A);
  ASSERT_FALSE(inv.singular);
  EXPECT_EQ(inv.inverse.to_host(), host);
}

// ---------------------------------------------------------------------------
// Simplex vs the brute-force oracle (independent ground truth).
// ---------------------------------------------------------------------------

class OracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSweep, BothSolversMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  const LpProblem lp = random_feasible_lp(4, 3, seed);
  const testing::OracleResult want = testing::brute_force_lp(lp);
  ASSERT_TRUE(want.feasible);

  const LpSolution serial = serial::simplex_solve(lp);
  ASSERT_EQ(serial.status, LpStatus::Optimal);
  EXPECT_NEAR(serial.objective, want.objective,
              1e-8 * (1 + std::abs(want.objective)));

  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const LpSolution dist = simplex_solve(grid, lp);
  ASSERT_EQ(dist.status, LpStatus::Optimal);
  EXPECT_NEAR(dist.objective, want.objective,
              1e-8 * (1 + std::abs(want.objective)));
}

TEST_P(OracleSweep, Phase1ProblemsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  const LpProblem lp = random_phase1_lp(3, 3, seed);
  const testing::OracleResult want = testing::brute_force_lp(lp);
  ASSERT_TRUE(want.feasible);
  const LpSolution serial = serial::simplex_solve(lp);
  ASSERT_EQ(serial.status, LpStatus::Optimal);
  EXPECT_NEAR(serial.objective, want.objective,
              1e-7 * (1 + std::abs(want.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Range<std::uint64_t>(1000, 1012));

}  // namespace
}  // namespace vmp
