// Tests: naive router-based primitives agree with the optimized ones in
// VALUE while losing to them badly in simulated TIME — the paper's
// order-of-magnitude claim, asserted as a property.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/matvec.hpp"
#include "core/naive.hpp"
#include "core/primitives.hpp"
#include "embed/realign.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

class NaiveSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override {
    const auto [gr, gc] = GetParam();
    cube = std::make_unique<Cube>(gr + gc, CostParams::cm2());
    grid = std::make_unique<Grid>(*cube, gr, gc);
  }
  static constexpr std::size_t nr = 12, nc = 15;
  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
};

TEST_P(NaiveSweep, DistributeAgreesWithOptimized) {
  const std::vector<double> hv = random_vector(nc, 61);
  DistVector<double> lin(*grid, nc, Align::Linear);
  lin.load(hv);
  const DistMatrix<double> M = naive_distribute_rows(lin, nr);
  const std::vector<double> got = M.to_host();
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nc; ++j) EXPECT_EQ(got[i * nc + j], hv[j]);
}

TEST_P(NaiveSweep, ReduceAgreesWithOptimized) {
  const std::vector<double> ha = random_matrix(nr, nc, 62);
  DistMatrix<double> A(*grid, nr, nc);
  A.load(ha);
  const std::vector<double> naive = naive_reduce_cols_sum(A).to_host();
  const std::vector<double> fast = reduce_cols(A, Plus<double>{}).to_host();
  for (std::size_t j = 0; j < nc; ++j)
    EXPECT_NEAR(naive[j], fast[j], 1e-12 * (1 + std::abs(fast[j])));
}

TEST_P(NaiveSweep, ExtractAndInsertAgree) {
  const std::vector<double> ha = random_matrix(nr, nc, 63);
  DistMatrix<double> A(*grid, nr, nc);
  A.load(ha);
  const std::vector<double> row = naive_extract_row(A, nr / 2).to_host();
  for (std::size_t j = 0; j < nc; ++j)
    EXPECT_EQ(row[j], ha[(nr / 2) * nc + j]);

  const std::vector<double> hv = random_vector(nc, 64);
  DistVector<double> lin(*grid, nc, Align::Linear);
  lin.load(hv);
  naive_insert_row(A, 1, lin);
  EXPECT_EQ(extract_row(A, 1).to_host(), hv);
}

TEST_P(NaiveSweep, MatvecAgreesWithPrimitiveComposition) {
  const auto [gr, gc] = GetParam();
  const std::vector<double> ha = random_matrix(nr, nc, 65);
  const std::vector<double> hx = random_vector(nc, 66);
  DistMatrix<double> A(*grid, nr, nc);
  A.load(ha);
  DistVector<double> xl(*grid, nc, Align::Linear);
  xl.load(hx);
  const std::vector<double> naive = naive_matvec(A, xl).to_host();

  DistVector<double> xc(*grid, nc, Align::Cols);
  xc.load(hx);
  const std::vector<double> fast = matvec(A, xc).to_host();
  for (std::size_t i = 0; i < nr; ++i)
    EXPECT_NEAR(naive[i], fast[i], 1e-12 * (1 + std::abs(fast[i])));
}

INSTANTIATE_TEST_SUITE_P(Grids, NaiveSweep,
                         ::testing::Values(std::tuple{0, 0}, std::tuple{1, 1},
                                           std::tuple{2, 2}, std::tuple{1, 2},
                                           std::tuple{3, 2}));

TEST(NaiveVsOptimized, OrderOfMagnitudeSpeedupOnMatvec) {
  // The paper: optimized primitives improved application running time by
  // almost an order of magnitude over the naive implementation.  With
  // CM-2-like constants and a reasonably sized problem the gap must be
  // at least ~8x (it grows with size).
  Cube cube(6, CostParams::cm2());
  Grid grid(cube, 3, 3);
  const std::size_t n = 64;
  const std::vector<double> ha = random_matrix(n, n, 71);
  const std::vector<double> hx = random_vector(n, 72);
  DistMatrix<double> A(grid, n, n);
  A.load(ha);

  DistVector<double> xl(grid, n, Align::Linear);
  xl.load(hx);
  cube.clock().reset();
  (void)naive_matvec(A, xl);
  const double t_naive = cube.clock().now_us();

  DistVector<double> xc(grid, n, Align::Cols);
  xc.load(hx);
  cube.clock().reset();
  (void)matvec(A, xc);
  const double t_fast = cube.clock().now_us();

  EXPECT_GT(t_naive / t_fast, 8.0)
      << "naive=" << t_naive << "us fast=" << t_fast << "us";
}

TEST(NaiveVsOptimized, GapIncludesEmbeddingChangeCost) {
  // Even paying a realignment Linear→Cols first, the optimized path wins.
  Cube cube(6, CostParams::cm2());
  Grid grid(cube, 3, 3);
  const std::size_t n = 64;
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 73));
  DistVector<double> xl(grid, n, Align::Linear);
  xl.load(random_vector(n, 74));

  cube.clock().reset();
  (void)naive_matvec(A, xl);
  const double t_naive = cube.clock().now_us();

  cube.clock().reset();
  const DistVector<double> xc = realign(xl, Align::Cols);
  (void)matvec(A, xc);
  const double t_fast = cube.clock().now_us();

  EXPECT_GT(t_naive / t_fast, 5.0);
}

}  // namespace
}  // namespace vmp
