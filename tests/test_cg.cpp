// Dedicated conjugate-gradient coverage (satellite of the sparse-storage
// PR): a seeded SPD random sweep checked against the serial LU reference,
// the convergence / max_iters / zero-rhs edge cases, and the dense-vs-
// sparse twin — storage-generic CG must produce BIT-identical iterates on
// both backends for the same matrix, because both overloads run the same
// operation sequence and spmv_fused is bitwise equal to matvec_fused on
// the densified matrix (see core/kernels.hpp dot_sparse).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/cg.hpp"
#include "algorithms/serial/lu.hpp"
#include "algorithms/spmv.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

const std::uint64_t kBaseSeed = announce_seed("test_cg");

class CgSweep : public ::testing::TestWithParam<int> {};

TEST_P(CgSweep, DenseSolvesSpdSystemToReferenceSolution) {
  const int trial = GetParam();
  SplitMix64 rng(kBaseSeed + static_cast<std::uint64_t>(trial) * 0x9e37ull);
  const int d = 2 + static_cast<int>(rng.below(5));  // 4..64 processors
  const std::size_t n = 4 + rng.below(28);
  const bool cyclic = rng.below(2) == 0;
  const std::uint64_t data_seed = rng.next();
  SCOPED_TRACE("reproduce: VMP_SEED=" + std::to_string(kBaseSeed) +
               " ./test_cg  (trial " + std::to_string(trial) +
               ": d=" + std::to_string(d) + " n=" + std::to_string(n) +
               (cyclic ? " cyclic" : " blocked") + ")");

  HostMatrix M = spd_matrix(n, data_seed);
  const std::vector<double> b = random_vector(n, data_seed ^ 0x5bd1ull);

  Cube cube(d, CostParams::cm2());
  Grid grid = Grid::square(cube);
  const MatrixLayout layout =
      cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  DistMatrix<double> A(grid, n, n, layout);
  A.load(M.data());

  const CgResult got = conjugate_gradient(A, b, {.tol = 1e-12});
  EXPECT_TRUE(got.converged);
  EXPECT_LE(got.iterations, n);

  const std::vector<double> ref = serial::gauss_solve(M, b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(got.x[i], ref[i], 1e-7) << "x[" << i << "]";
}

INSTANTIATE_TEST_SUITE_P(Sweep, CgSweep, ::testing::Range(0, 12));

TEST(Cg, ZeroRhsConvergesImmediatelyToZero) {
  Cube cube(4, CostParams::cm2());
  Grid grid = Grid::square(cube);
  const std::size_t n = 11;
  DistMatrix<double> A(grid, n, n);
  A.load(spd_matrix(n, kBaseSeed).data());
  const std::vector<double> b(n, 0.0);

  const CgResult got = conjugate_gradient(A, b);
  EXPECT_TRUE(got.converged);
  EXPECT_EQ(got.iterations, 0u);
  EXPECT_EQ(got.residual_norm, 0.0);
  ASSERT_EQ(got.x.size(), n);
  for (const double xi : got.x) EXPECT_EQ(xi, 0.0);
}

TEST(Cg, MaxItersCapsTheIterationCountWithoutConverging) {
  Cube cube(4, CostParams::cm2());
  Grid grid = Grid::square(cube);
  const std::size_t n = 24;
  DistMatrix<double> A(grid, n, n);
  A.load(spd_matrix(n, kBaseSeed ^ 1).data());
  const std::vector<double> b = random_vector(n, kBaseSeed ^ 2);

  const CgResult got =
      conjugate_gradient(A, b, {.tol = 1e-30, .max_iters = 1});
  EXPECT_FALSE(got.converged);
  EXPECT_EQ(got.iterations, 1u);
  EXPECT_GT(got.residual_norm, 0.0);
}

TEST(Cg, JacobiPreconditionedSolveMatchesPlainCg) {
  Cube cube(4, CostParams::cm2());
  Grid grid = Grid::square(cube);
  const std::size_t n = 20;
  HostMatrix M = spd_matrix(n, kBaseSeed ^ 3);
  const std::vector<double> b = random_vector(n, kBaseSeed ^ 4);
  DistMatrix<double> A(grid, n, n);
  A.load(M.data());

  const CgResult plain = conjugate_gradient(A, b, {.tol = 1e-12});
  const CgResult jacobi = conjugate_gradient_jacobi(A, b, {.tol = 1e-12});
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(jacobi.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(jacobi.x[i], plain.x[i], 1e-7) << "x[" << i << "]";
}

// The twin: the same SPD matrix loaded into both storages.  Every iterate
// must agree bitwise — asserted by capping max_iters at k and comparing
// the returned x exactly, for several k, then for the full solve.
TEST(Cg, DenseAndSparseBackendsProduceBitIdenticalIterates) {
  const std::size_t n = 28;
  const HostCsr S = sparse_spd_csr(n, 4.0, kBaseSeed ^ 5);
  const std::vector<double> b = random_vector(n, kBaseSeed ^ 6);

  for (const bool cyclic : {false, true}) {
    SCOPED_TRACE(cyclic ? "cyclic" : "blocked");
    const MatrixLayout layout =
        cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();

    Cube cube_d(4, CostParams::cm2());
    Grid grid_d = Grid::square(cube_d);
    DistMatrix<double> A(grid_d, n, n, layout);
    A.load(S.dense());

    Cube cube_s(4, CostParams::cm2());
    Grid grid_s = Grid::square(cube_s);
    DistSparseMatrix<double> B(grid_s, n, n, layout);
    B.load_csr(S.rowptr, S.colind, S.vals);

    for (const std::size_t k : {1u, 2u, 3u, 5u, 8u}) {
      const CgResult dk =
          conjugate_gradient(A, b, {.tol = 1e-30, .max_iters = k});
      const CgResult sk =
          conjugate_gradient(B, b, {.tol = 1e-30, .max_iters = k});
      EXPECT_EQ(dk.iterations, sk.iterations) << "k=" << k;
      ASSERT_EQ(dk.x.size(), sk.x.size());
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(dk.x[i], sk.x[i]) << "k=" << k << " x[" << i << "]";
    }

    const CgResult dense = conjugate_gradient(A, b, {.tol = 1e-12});
    const CgResult sparse = conjugate_gradient(B, b, {.tol = 1e-12});
    EXPECT_TRUE(dense.converged);
    EXPECT_TRUE(sparse.converged);
    EXPECT_EQ(dense.iterations, sparse.iterations);
    EXPECT_EQ(dense.residual_norm, sparse.residual_norm);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(dense.x[i], sparse.x[i]);

    const CgResult dj = conjugate_gradient_jacobi(A, b, {.tol = 1e-12});
    const CgResult sj = conjugate_gradient_jacobi(B, b, {.tol = 1e-12});
    EXPECT_EQ(dj.iterations, sj.iterations);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(dj.x[i], sj.x[i]);
  }
}

// Sparse CG solves the system, not just mirrors the dense one: check the
// solution against the serial reference too.
TEST(Cg, SparseBackendSolvesToReferenceSolution) {
  const std::size_t n = 32;
  const HostCsr S = sparse_spd_csr(n, 5.0, kBaseSeed ^ 7);
  const std::vector<double> b = random_vector(n, kBaseSeed ^ 8);

  Cube cube(6, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistSparseMatrix<double> B(grid, n, n);
  B.load_csr(S.rowptr, S.colind, S.vals);

  const CgResult got = conjugate_gradient(B, b, {.tol = 1e-12});
  EXPECT_TRUE(got.converged);

  HostMatrix M(n, n, S.dense());
  const std::vector<double> ref = serial::gauss_solve(M, b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(got.x[i], ref[i], 1e-7) << "x[" << i << "]";
}

}  // namespace
}  // namespace vmp
