// Unit tests: the collective library against straight-line host references,
// swept over cube dimensions, subcube families and payload lengths.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "comm/collectives.hpp"
#include "hypercube/machine.hpp"

namespace vmp {
namespace {

// Deterministic per-processor payloads.
std::vector<double> payload(proc_t q, std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t t = 0; t < n; ++t)
    v[t] = static_cast<double>((q + 1) * 1000 + t);
  return v;
}

struct Case {
  int cube_dim;
  int mask_lo;
  int mask_k;
  std::size_t n;
};

class CollectiveSweep : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const Case c = GetParam();
    cube = std::make_unique<Cube>(c.cube_dim, CostParams::unit());
    sc = std::make_unique<SubcubeSet>(
        SubcubeSet::contiguous(c.mask_lo, c.mask_k).mask());
  }

  // Host reference: for each processor, the list of subcube peers in rank
  // order.
  std::vector<proc_t> peers(proc_t q) const {
    std::vector<proc_t> out(sc->size());
    for (std::uint32_t r = 0; r < sc->size(); ++r) out[r] = sc->with_rank(q, r);
    return out;
  }

  std::unique_ptr<Cube> cube;
  std::unique_ptr<SubcubeSet> sc;
};

TEST_P(CollectiveSweep, AllreduceSum) {
  const std::size_t n = GetParam().n;
  DistBuffer<double> buf(*cube);
  cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
  allreduce(*cube, buf, *sc, Plus<double>{});
  cube->each_proc([&](proc_t q) {
    for (std::size_t t = 0; t < n; ++t) {
      double want = 0;
      for (proc_t peer : peers(q)) want += payload(peer, n)[t];
      EXPECT_DOUBLE_EQ(buf.tile(q)[t], want) << "q=" << q << " t=" << t;
    }
  });
}

TEST_P(CollectiveSweep, AllreduceMin) {
  const std::size_t n = GetParam().n;
  DistBuffer<double> buf(*cube);
  cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
  allreduce(*cube, buf, *sc, Min<double>{});
  cube->each_proc([&](proc_t q) {
    for (std::size_t t = 0; t < n; ++t) {
      double want = std::numeric_limits<double>::max();
      for (proc_t peer : peers(q)) want = std::min(want, payload(peer, n)[t]);
      EXPECT_DOUBLE_EQ(buf.tile(q)[t], want);
    }
  });
}

TEST_P(CollectiveSweep, ReduceScatterThenAllgatherEqualsAllreduce) {
  const std::size_t n = GetParam().n;
  DistBuffer<double> buf(*cube);
  cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
  allreduce_rsag(*cube, buf, *sc, Plus<double>{});
  cube->each_proc([&](proc_t q) {
    ASSERT_EQ(buf.len(q), n);
    for (std::size_t t = 0; t < n; ++t) {
      double want = 0;
      for (proc_t peer : peers(q)) want += payload(peer, n)[t];
      EXPECT_DOUBLE_EQ(buf.tile(q)[t], want);
    }
  });
}

TEST_P(CollectiveSweep, ReduceScatterBlocks) {
  const std::size_t n = GetParam().n;
  DistBuffer<double> buf(*cube);
  cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
  reduce_scatter(*cube, buf, *sc, Plus<double>{});
  const std::uint32_t P = sc->size();
  cube->each_proc([&](proc_t q) {
    const std::uint32_t r = sc->rank(q);
    ASSERT_EQ(buf.len(q), block_size(n, P, r));
    for (std::size_t s = 0; s < buf.len(q); ++s) {
      const std::size_t t = block_begin(n, P, r) + s;
      double want = 0;
      for (proc_t peer : peers(q)) want += payload(peer, n)[t];
      EXPECT_DOUBLE_EQ(buf.tile(q)[s], want);
    }
  });
}

TEST_P(CollectiveSweep, BroadcastFromEveryRoot) {
  const std::size_t n = GetParam().n;
  for (std::uint32_t root = 0; root < sc->size();
       root += std::max<std::uint32_t>(1, sc->size() / 4)) {
    DistBuffer<double> buf(*cube);
    cube->each_proc([&](proc_t q) {
      if (sc->rank(q) == root) buf.assign(q, payload(q, n));
    });
    broadcast(*cube, buf, *sc, root);
    cube->each_proc([&](proc_t q) {
      const proc_t holder = sc->with_rank(q, root);
      EXPECT_EQ(buf.host_vec(q), payload(holder, n)) << "q=" << q;
    });
  }
}

TEST_P(CollectiveSweep, BroadcastSagFromEveryRoot) {
  const std::size_t n = GetParam().n;
  for (std::uint32_t root = 0; root < sc->size();
       root += std::max<std::uint32_t>(1, sc->size() / 4)) {
    DistBuffer<double> buf(*cube);
    cube->each_proc([&](proc_t q) {
      if (sc->rank(q) == root) buf.assign(q, payload(q, n));
    });
    broadcast_sag(*cube, buf, *sc, root, [n](proc_t) { return n; });
    cube->each_proc([&](proc_t q) {
      const proc_t holder = sc->with_rank(q, root);
      EXPECT_EQ(buf.host_vec(q), payload(holder, n)) << "q=" << q;
    });
  }
}

TEST_P(CollectiveSweep, AllgatherAssemblesInRankOrder) {
  const std::size_t n = GetParam().n;
  const std::uint32_t P = sc->size();
  DistBuffer<double> buf(*cube);
  // Block r of the reference is the slice of a global per-subcube vector.
  cube->each_proc([&](proc_t q) {
    const std::uint32_t r = sc->rank(q);
    const std::size_t b = block_begin(n, P, r);
    const std::size_t len = block_size(n, P, r);
    std::vector<double> piece(len);
    for (std::size_t s = 0; s < len; ++s)
      piece[s] = static_cast<double>(sc->subcube_id(q) * 100000 + b + s);
    buf.assign(q, piece);
  });
  allgather(*cube, buf, *sc, n);
  cube->each_proc([&](proc_t q) {
    ASSERT_EQ(buf.len(q), n);
    for (std::size_t t = 0; t < n; ++t)
      EXPECT_DOUBLE_EQ(buf.tile(q)[t],
                       static_cast<double>(sc->subcube_id(q) * 100000 + t));
  });
}

TEST_P(CollectiveSweep, ReduceToEveryRank) {
  const std::size_t n = GetParam().n;
  for (std::uint32_t root = 0; root < sc->size();
       root += std::max<std::uint32_t>(1, sc->size() / 4)) {
    DistBuffer<double> buf(*cube);
    cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
    reduce_to_rank(*cube, buf, *sc, Plus<double>{}, root);
    cube->each_proc([&](proc_t q) {
      if (sc->rank(q) != root) return;
      for (std::size_t t = 0; t < n; ++t) {
        double want = 0;
        for (proc_t peer : peers(q)) want += payload(peer, n)[t];
        EXPECT_DOUBLE_EQ(buf.tile(q)[t], want);
      }
    });
  }
}

TEST_P(CollectiveSweep, ExclusiveScanMatchesPrefixSums) {
  const std::size_t n = GetParam().n;
  DistBuffer<double> buf(*cube);
  cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
  scan_exclusive(*cube, buf, *sc, Plus<double>{});
  cube->each_proc([&](proc_t q) {
    const std::uint32_t r = sc->rank(q);
    for (std::size_t t = 0; t < n; ++t) {
      double want = 0;
      for (std::uint32_t rr = 0; rr < r; ++rr)
        want += payload(sc->with_rank(q, rr), n)[t];
      EXPECT_DOUBLE_EQ(buf.tile(q)[t], want) << "q=" << q << " t=" << t;
    }
  });
}

TEST_P(CollectiveSweep, InclusiveScanMatchesPrefixSums) {
  const std::size_t n = GetParam().n;
  DistBuffer<double> buf(*cube);
  cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
  scan_inclusive(*cube, buf, *sc, Plus<double>{});
  cube->each_proc([&](proc_t q) {
    const std::uint32_t r = sc->rank(q);
    for (std::size_t t = 0; t < n; ++t) {
      double want = 0;
      for (std::uint32_t rr = 0; rr <= r; ++rr)
        want += payload(sc->with_rank(q, rr), n)[t];
      EXPECT_DOUBLE_EQ(buf.tile(q)[t], want);
    }
  });
}

TEST_P(CollectiveSweep, RouteWithinDeliversEverything) {
  const std::size_t n = GetParam().n;
  DistBuffer<RouteItem<double>> items(cube->procs() ? *cube : *cube);
  std::mt19937 rng(42);
  std::vector<std::vector<std::pair<std::uint64_t, double>>> expected(
      cube->procs());
  cube->each_proc([&](proc_t q) {
    for (std::size_t t = 0; t < n; ++t) {
      const std::uint32_t r =
          static_cast<std::uint32_t>(rng()) & (sc->size() - 1);
      const proc_t dst = sc->with_rank(q, r);
      const double val = static_cast<double>(q * 1000 + t);
      items.push_back(q, RouteItem<double>{dst, t, val});
      expected[dst].push_back({t, val});
    }
  });
  route_within(*cube, items, *sc);
  cube->each_proc([&](proc_t q) {
    ASSERT_EQ(items.len(q), expected[q].size()) << "q=" << q;
    std::vector<std::pair<std::uint64_t, double>> got;
    for (const auto& it : items.tile(q)) got.push_back({it.tag, it.value});
    std::sort(got.begin(), got.end());
    std::sort(expected[q].begin(), expected[q].end());
    EXPECT_EQ(got, expected[q]);
  });
}

TEST_P(CollectiveSweep, SimulatedTimeAdvancesForRealWork) {
  const std::size_t n = GetParam().n;
  if (sc->k() == 0 || n == 0) return;
  DistBuffer<double> buf(*cube);
  cube->each_proc([&](proc_t q) { buf.assign(q, payload(q, n)); });
  const double before = cube->clock().now_us();
  allreduce(*cube, buf, *sc, Plus<double>{});
  EXPECT_GT(cube->clock().now_us(), before);
  EXPECT_EQ(cube->clock().stats().comm_steps,
            static_cast<std::uint64_t>(sc->k()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveSweep,
    ::testing::Values(Case{0, 0, 0, 4}, Case{1, 0, 1, 1}, Case{3, 0, 3, 8},
                      Case{3, 1, 2, 5}, Case{4, 0, 4, 16}, Case{4, 2, 2, 7},
                      Case{5, 0, 5, 33}, Case{5, 1, 3, 2}, Case{6, 0, 6, 10},
                      Case{6, 3, 3, 64}, Case{4, 0, 4, 3}, Case{4, 0, 4, 0},
                      Case{5, 2, 3, 1}, Case{7, 0, 7, 129}, Case{7, 2, 4, 6},
                      Case{8, 0, 8, 5}, Case{8, 3, 5, 40},
                      Case{6, 0, 6, 1000}));

}  // namespace
}  // namespace vmp
