// Tests: distributed bitonic sort, histogram by all-to-all reduction, and
// Jacobi-preconditioned CG.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "algorithms/cg.hpp"
#include "algorithms/histogram.hpp"
#include "algorithms/sort.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

class SortSweep : public ::testing::TestWithParam<
                      std::tuple<int, int, std::size_t, std::uint64_t>> {};

TEST_P(SortSweep, MatchesStdSort) {
  const auto [gr, gc, n, seed] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  std::vector<double> host = random_vector(n, seed);
  DistVector<double> v(grid, n, Align::Linear);
  v.load(host);
  vec_sort(v);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(v.to_host(), host);
}

TEST_P(SortSweep, DuplicatesAndPresortedInputs) {
  const auto [gr, gc, n, seed] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  // Heavy duplication.
  std::vector<double> host(n);
  SplitMix64 rng(seed);
  for (double& x : host) x = static_cast<double>(rng.below(4));
  DistVector<double> v(grid, n, Align::Linear);
  v.load(host);
  vec_sort(v);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(v.to_host(), host);

  // Already sorted and reverse sorted stay/become sorted.
  std::vector<double> asc(n), desc(n);
  for (std::size_t g = 0; g < n; ++g) {
    asc[g] = static_cast<double>(g);
    desc[g] = static_cast<double>(n - g);
  }
  v.load(asc);
  vec_sort(v);
  EXPECT_EQ(v.to_host(), asc);
  v.load(desc);
  vec_sort(v);
  std::sort(desc.begin(), desc.end());
  EXPECT_EQ(v.to_host(), desc);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortSweep,
    ::testing::Values(std::tuple{0, 0, 10ul, 1ull}, std::tuple{1, 0, 9ul, 2ull},
                      std::tuple{1, 1, 16ul, 3ull},
                      std::tuple{2, 2, 64ul, 4ull},
                      std::tuple{2, 2, 65ul, 5ull},   // non-divisible
                      std::tuple{3, 2, 37ul, 6ull},   // n close to p
                      std::tuple{3, 3, 23ul, 7ull},   // n < p·mx padding
                      std::tuple{2, 3, 1000ul, 8ull},
                      std::tuple{2, 2, 1ul, 9ull}));

TEST(Sort, EmptyVectorIsFine) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistVector<double> v(grid, 0, Align::Linear);
  EXPECT_NO_THROW(vec_sort(v));
}

TEST(Sort, NonLinearRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistVector<double> v(grid, 8, Align::Cols);
  EXPECT_THROW(vec_sort(v), ContractError);
}

TEST(Sort, ScalesWithProcessors) {
  const std::size_t n = 4096;
  const std::vector<double> host = random_vector(n, 10);
  const auto run = [&](int d) {
    Cube cube(d, CostParams::cm2());
    Grid grid = Grid::square(cube);
    DistVector<double> v(grid, n, Align::Linear);
    v.load(host);
    cube.clock().reset();
    vec_sort(v);
    return cube.clock().now_us();
  };
  EXPECT_LT(run(6), run(0));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

class HistSweep : public ::testing::TestWithParam<
                      std::tuple<int, int, std::size_t, std::size_t, Align>> {
};

TEST_P(HistSweep, MatchesHostCounts) {
  const auto [gr, gc, n, bins, align] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const std::vector<double> host = random_vector(n, 21);
  DistVector<double> v(grid, n, align);
  v.load(host);
  const std::vector<std::uint64_t> got = histogram(v, bins, -1.0, 1.0);
  ASSERT_EQ(got.size(), bins);
  std::vector<std::uint64_t> want(bins, 0);
  for (double x : host) {
    double t = (x + 1.0) / 2.0 * static_cast<double>(bins);
    std::size_t b = t <= 0 ? 0 : static_cast<std::size_t>(t);
    if (b >= bins) b = bins - 1;
    ++want[b];
  }
  EXPECT_EQ(got, want);
  std::uint64_t total = 0;
  for (std::uint64_t x : got) total += x;
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistSweep,
    ::testing::Combine(::testing::Values(0, 2), ::testing::Values(0, 2),
                       ::testing::Values<std::size_t>(1, 100, 1000),
                       ::testing::Values<std::size_t>(1, 4, 16),
                       ::testing::Values(Align::Linear, Align::Cols)));

TEST(Histogram, OutOfRangeClampsToEndBins) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistVector<double> v(grid, 4, Align::Linear);
  v.load(std::vector<double>{-100.0, 0.25, 0.75, 100.0});
  const std::vector<std::uint64_t> got = histogram(v, 2, 0.0, 1.0);
  EXPECT_EQ(got[0], 2u);  // -100 clamps low
  EXPECT_EQ(got[1], 2u);  // 100 clamps high
}

TEST(Histogram, BadArgsRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistVector<double> v(grid, 4, Align::Linear);
  EXPECT_THROW((void)histogram(v, 0, 0.0, 1.0), ContractError);
  EXPECT_THROW((void)histogram(v, 4, 1.0, 1.0), ContractError);
}

// ---------------------------------------------------------------------------
// Preconditioned CG
// ---------------------------------------------------------------------------

TEST(PcgJacobi, DiagonalExtractionMatchesHost) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 13;
  const HostMatrix H = spd_matrix(n, 31);
  DistMatrix<double> A(grid, n, n);
  A.load(H.data());
  const std::vector<double> d = extract_diagonal(A).to_host();
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(d[i], H(i, i));
}

TEST(PcgJacobi, SolvesAndBeatsPlainCgOnBadlyScaledSystems) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 24;
  // Badly scaled SPD: diagonal spans five orders of magnitude.
  HostMatrix H = spd_matrix(n, 32);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = std::pow(10.0, static_cast<double>(i % 6));
    for (std::size_t j = 0; j < n; ++j) {
      H(i, j) *= s;
      H(j, i) = H(i, j);
    }
    H(i, i) *= s;
  }
  // Re-symmetrize by averaging and re-dominate the diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) {
        H(i, j) = 0.5 * (H(i, j) + H(j, i));
        H(j, i) = H(i, j);
        off += std::abs(H(i, j));
      }
    H(i, i) = off + 1.0 + std::abs(H(i, i));
  }
  const std::vector<double> b = random_vector(n, 33);
  DistMatrix<double> A(grid, n, n);
  A.load(H.data());

  const CgResult plain = conjugate_gradient(A, b, {1e-10, 4 * n});
  const CgResult pcg = conjugate_gradient_jacobi(A, b, {1e-10, 4 * n});
  ASSERT_TRUE(pcg.converged);
  // Same solution.
  double resid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < n; ++j) s += H(i, j) * pcg.x[j];
    resid = std::max(resid, std::abs(s - b[i]));
  }
  EXPECT_LT(resid, 1e-5);
  if (plain.converged) {
    EXPECT_LE(pcg.iterations, plain.iterations)
        << "Jacobi preconditioning should not hurt a diagonally scaled "
           "system";
  }
}

TEST(PcgJacobi, MatchesPlainCgOnWellScaledSystems) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  const std::size_t n = 16;
  const HostMatrix H = spd_matrix(n, 34);
  const std::vector<double> b = random_vector(n, 35);
  DistMatrix<double> A(grid, n, n);
  A.load(H.data());
  const CgResult plain = conjugate_gradient(A, b, {1e-11, 0});
  const CgResult pcg = conjugate_gradient_jacobi(A, b, {1e-11, 0});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pcg.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(pcg.x[i], plain.x[i], 1e-6 * (1 + std::abs(plain.x[i])));
}

}  // namespace
}  // namespace vmp
