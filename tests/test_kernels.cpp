// Conformance battery for the strided-kernel layer (core/kernels.hpp) and
// its SIMD backend (core/simd.hpp).
//
// Every kern:: entry point is run against a naive scalar reference across
// element types, strides, aligned and misaligned bases, and the tail
// lengths that stress a W-lane backend (0, 1, W−1, W, W+1, 4W±1, ...), with
// the backend toggled ON and OFF for each case.  Default-mode kernels must
// be BIT-identical to the reference in both configurations — including Max/
// Min over signed zeros and NaNs, where the machine min/max instruction
// would disagree with the repo's compare-select combine.
//
// The opt-in Assoc::Relaxed reductions get their own contract tests:
// repeat-call and toggle-independent determinism, bit-equality with a
// W-lane striped emulation at the compiled width, and an ULP error budget
// against a long-double reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "comm/ops.hpp"
#include "core/kernels.hpp"
#include "core/simd.hpp"

namespace vmp {
namespace {

// Lengths exercising every tail class for W ∈ {1, 2, 4, 8}: 0, 1, W−1, W,
// W+1, 4W−1, 4W, 4W+1 all appear for each width, plus a large odd size.
const std::vector<std::size_t> kLens = {0,  1,  2,  3,  4,  5,  7,  8, 9,
                                        15, 16, 17, 31, 32, 33, 64, 133};

/// Restore the backend toggle on scope exit.
struct SimdGuard {
  bool prev;
  explicit SimdGuard(bool on) : prev(kern::simd::set_enabled(on)) {}
  ~SimdGuard() { kern::simd::set_enabled(prev); }
};

/// Deterministic pseudo-random stream (SplitMix64).
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double real() {  // in (-8, 8), never denormal-tiny
    return (static_cast<double>(next() >> 11) /
                static_cast<double>(1ULL << 53) -
            0.5) *
           16.0;
  }
};

template <class T>
T rand_elem(Rng& r);
template <>
double rand_elem<double>(Rng& r) {
  return r.real();
}
template <>
float rand_elem<float>(Rng& r) {
  return static_cast<float>(r.real());
}
template <>
std::int32_t rand_elem<std::int32_t>(Rng& r) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(r.next()));
}
template <>
std::uint64_t rand_elem<std::uint64_t>(Rng& r) {
  return r.next();
}
template <>
std::int16_t rand_elem<std::int16_t>(Rng& r) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(r.next()));
}

/// A buffer whose usable span can start one element past a 64-byte-aligned
/// origin, so every kernel is exercised on a misaligned base too.
template <class T>
struct TestBuf {
  std::vector<T> store;
  std::size_t off;
  TestBuf(std::size_t n, bool misalign, Rng& r) : store(n + 1), off(0) {
    for (T& v : store) v = rand_elem<T>(r);
    if (misalign) off = 1;
  }
  std::span<T> span(std::size_t n) { return {store.data() + off, n}; }
};

template <class T>
void expect_bits_eq(std::span<const T> got, std::span<const T> want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(T)), 0)
        << what << " diverges at [" << i << "]";
  }
}

/// Run `body(simd_on, misaligned)` over all four configurations.
template <class Body>
void for_each_config(Body body) {
  for (const bool on : {false, true}) {
    for (const bool mis : {false, true}) {
      SimdGuard guard(on);
      body(on, mis);
    }
  }
}

// ---------------------------------------------------------------------------
// fill / copy
// ---------------------------------------------------------------------------

template <class T>
void check_fill(std::uint64_t seed) {
  for_each_config([&](bool on, bool mis) {
    for (const std::size_t n : kLens) {
      Rng r(seed + n);
      TestBuf<T> buf(n, mis, r);
      const T v = rand_elem<T>(r);
      std::vector<T> want(buf.span(n).begin(), buf.span(n).end());
      for (T& x : want) x = v;
      kern::fill(buf.span(n), v);
      expect_bits_eq<T>(buf.span(n), want, on ? "fill simd" : "fill scalar");
    }
  });
}

TEST(Kernels, FillMatchesReferenceAllTypes) {
  check_fill<double>(1);
  check_fill<float>(2);
  check_fill<std::int32_t>(3);
  check_fill<std::uint64_t>(4);
  check_fill<std::int16_t>(5);  // no SIMD path: scalar loop both ways
}

TEST(Kernels, FillPreservesExactBitPatterns) {
  // -0.0 and a signalling-looking NaN must splat bit-exactly.
  for (const double v : {-0.0, std::numeric_limits<double>::quiet_NaN()}) {
    for_each_config([&](bool, bool mis) {
      Rng r(99);
      TestBuf<double> buf(33, mis, r);
      kern::fill(buf.span(33), v);
      for (const double x : buf.span(33)) {
        EXPECT_EQ(std::memcmp(&x, &v, 8), 0);
      }
    });
  }
}

TEST(Kernels, CopyHandlesOverlapBothDirections) {
  for_each_config([&](bool, bool mis) {
    for (const std::size_t n : kLens) {
      if (n == 0) continue;
      Rng r(n * 7 + 1);
      // Forward overlap: dst starts below src (shift left by 3).
      {
        TestBuf<double> buf(n + 3, mis, r);
        std::vector<double> flat(buf.span(n + 3).begin(),
                                 buf.span(n + 3).end());
        std::vector<double> want(flat);
        for (std::size_t i = 0; i < n; ++i) want[i] = flat[i + 3];
        std::span<double> all = buf.span(n + 3);
        kern::copy(std::span<const double>(all.subspan(3, n)), all.first(n));
        expect_bits_eq<double>(all.first(n),
                               std::span<const double>(want).first(n),
                               "copy fwd overlap");
      }
      // Backward overlap: dst starts above src (shift right by 3).
      {
        TestBuf<double> buf(n + 3, mis, r);
        std::vector<double> flat(buf.span(n + 3).begin(),
                                 buf.span(n + 3).end());
        std::vector<double> want(flat);
        for (std::size_t i = n; i-- > 0;) want[i + 3] = flat[i];
        std::span<double> all = buf.span(n + 3);
        kern::copy(std::span<const double>(all.first(n)), all.subspan(3, n));
        expect_bits_eq<double>(all.subspan(3, n),
                               std::span<const double>(want).subspan(3, n),
                               "copy bwd overlap");
      }
    }
  });
}

TEST(Kernels, CopyNonTriviallyCopyableKeepsMemmoveSemantics) {
  // std::string forces the element-by-element directional loops.
  std::vector<std::string> v = {"a", "bb", "ccc", "dddd", "eeeee", "ffffff"};
  std::vector<std::string> fwd(v);
  kern::copy(std::span<const std::string>(fwd.data() + 2, 4),
             std::span<std::string>(fwd.data(), 4));
  EXPECT_EQ(fwd, (std::vector<std::string>{"ccc", "dddd", "eeeee", "ffffff",
                                           "eeeee", "ffffff"}));
  std::vector<std::string> bwd(v);
  kern::copy(std::span<const std::string>(bwd.data(), 4),
             std::span<std::string>(bwd.data() + 2, 4));
  EXPECT_EQ(bwd, (std::vector<std::string>{"a", "bb", "a", "bb", "ccc",
                                           "dddd"}));
}

// ---------------------------------------------------------------------------
// apply / zip family
// ---------------------------------------------------------------------------

TEST(Kernels, ApplyAndApplyIndexedMatchReference) {
  for_each_config([&](bool, bool mis) {
    for (const std::size_t n : kLens) {
      Rng r(n + 11);
      TestBuf<double> buf(n, mis, r);
      std::vector<double> want(buf.span(n).begin(), buf.span(n).end());
      for (double& x : want) x = x * 2.0 + 1.0;
      kern::apply(buf.span(n), [](double x) { return x * 2.0 + 1.0; });
      expect_bits_eq<double>(buf.span(n), want, "apply");

      TestBuf<double> buf2(n, mis, r);
      std::vector<double> want2(buf2.span(n).begin(), buf2.span(n).end());
      const std::size_t g0 = 5, gstep = 3;
      for (std::size_t i = 0; i < n; ++i)
        want2[i] += static_cast<double>(g0 + i * gstep);
      kern::apply_indexed(buf2.span(n), g0, gstep,
                          [](double x, std::size_t g) {
                            return x + static_cast<double>(g);
                          });
      expect_bits_eq<double>(buf2.span(n), want2, "apply_indexed");
    }
  });
}

template <class T, class Op>
void check_zip_family(Op op, std::uint64_t seed) {
  for_each_config([&](bool on, bool mis) {
    for (const std::size_t n : kLens) {
      Rng r(seed + n);
      TestBuf<T> a(n, mis, r), b(n, mis, r), out(n, mis, r);

      std::vector<T> want(a.span(n).begin(), a.span(n).end());
      for (std::size_t i = 0; i < n; ++i)
        want[i] = op.combine(want[i], b.span(n)[i]);
      kern::zip(a.span(n), std::span<const T>(b.span(n)), kern::op_fn(op));
      expect_bits_eq<T>(a.span(n), want, on ? "zip simd" : "zip scalar");

      std::vector<T> want_sw(b.span(n).begin(), b.span(n).end());
      std::vector<T> src_sw(out.span(n).begin(), out.span(n).end());
      for (std::size_t i = 0; i < n; ++i)
        want_sw[i] = op.combine(src_sw[i], want_sw[i]);
      kern::zip_swapped(b.span(n), std::span<const T>(out.span(n)),
                        kern::op_fn(op));
      expect_bits_eq<T>(b.span(n), want_sw, "zip_swapped");

      TestBuf<T> c(n, mis, r), d(n, mis, r), e(n, mis, r);
      std::vector<T> want_into(n);
      for (std::size_t i = 0; i < n; ++i)
        want_into[i] = op.combine(c.span(n)[i], d.span(n)[i]);
      kern::zip_into(std::span<const T>(c.span(n)),
                     std::span<const T>(d.span(n)), e.span(n),
                     kern::op_fn(op));
      expect_bits_eq<T>(e.span(n), want_into, "zip_into");
    }
  });
}

TEST(Kernels, ZipFamilyMatchesReferenceForRecognizedOps) {
  check_zip_family<double>(Plus<double>{}, 21);
  check_zip_family<double>(Multiply<double>{}, 22);
  check_zip_family<double>(Max<double>{}, 23);
  check_zip_family<double>(Min<double>{}, 24);
  check_zip_family<float>(Plus<float>{}, 25);
  check_zip_family<float>(Multiply<float>{}, 26);
  check_zip_family<float>(Max<float>{}, 27);
  check_zip_family<float>(Min<float>{}, 28);
  // Unrecognized (integer) ops take the scalar loop in both configurations.
  check_zip_family<std::uint64_t>(Plus<std::uint64_t>{}, 29);
}

TEST(Kernels, ZipMaxMinKeepCompareSelectSemanticsOnZerosAndNaN) {
  // combine(a, b) = a < b ? b : a picks `a` whenever the compare is false —
  // including a = -0.0 vs b = +0.0 (equal) and any NaN operand.  The
  // machine maxpd would pick differently; the backend must not use it.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> av = {-0.0, +0.0, nan, 1.0, nan, -1.0, -0.0, 5.0};
  const std::vector<double> bv = {+0.0, -0.0, 1.0, nan, nan, -0.0, -1.0, 5.0};
  for (const bool on : {false, true}) {
    SimdGuard guard(on);
    for (const auto op_kind : {0, 1}) {
      std::vector<double> dst(av);
      std::vector<double> want(av);
      if (op_kind == 0) {
        const Max<double> op;
        for (std::size_t i = 0; i < want.size(); ++i)
          want[i] = op.combine(want[i], bv[i]);
        kern::zip(std::span<double>(dst), std::span<const double>(bv),
                  kern::op_fn(op));
      } else {
        const Min<double> op;
        for (std::size_t i = 0; i < want.size(); ++i)
          want[i] = op.combine(want[i], bv[i]);
        kern::zip(std::span<double>(dst), std::span<const double>(bv),
                  kern::op_fn(op));
      }
      expect_bits_eq<double>(std::span<const double>(dst),
                             std::span<const double>(want), "max/min bits");
    }
  }
}

TEST(Kernels, ZipIndexedMatchesReference) {
  for_each_config([&](bool, bool mis) {
    for (const std::size_t n : kLens) {
      Rng r(n + 31);
      TestBuf<double> a(n, mis, r), b(n, mis, r);
      const std::size_t g0 = 2, gstep = 5;
      std::vector<double> want(a.span(n).begin(), a.span(n).end());
      for (std::size_t i = 0; i < n; ++i)
        want[i] = want[i] + b.span(n)[i] * static_cast<double>(g0 + i * gstep);
      kern::zip_indexed(a.span(n), std::span<const double>(b.span(n)), g0,
                        gstep, [](double x, double y, std::size_t g) {
                          return x + y * static_cast<double>(g);
                        });
      expect_bits_eq<double>(a.span(n), want, "zip_indexed");
    }
  });
}

// ---------------------------------------------------------------------------
// axpy / scale
// ---------------------------------------------------------------------------

template <class T>
void check_axpy_scale(std::uint64_t seed) {
  for_each_config([&](bool on, bool mis) {
    for (const std::size_t n : kLens) {
      Rng r(seed + n);
      TestBuf<T> y(n, mis, r), x(n, mis, r);
      const T alpha = rand_elem<T>(r);
      std::vector<T> want(y.span(n).begin(), y.span(n).end());
      for (std::size_t i = 0; i < n; ++i) want[i] += alpha * x.span(n)[i];
      kern::axpy(y.span(n), alpha, std::span<const T>(x.span(n)));
      expect_bits_eq<T>(y.span(n), want, on ? "axpy simd" : "axpy scalar");

      TestBuf<T> v(n, mis, r);
      std::vector<T> want_s(v.span(n).begin(), v.span(n).end());
      for (T& e : want_s) e *= alpha;
      kern::scale(v.span(n), alpha);
      expect_bits_eq<T>(v.span(n), want_s, "scale");
    }
  });
}

TEST(Kernels, AxpyAndScaleMatchReference) {
  check_axpy_scale<double>(41);
  check_axpy_scale<float>(42);
  check_axpy_scale<std::int32_t>(43);  // scalar path in both configurations
}

// ---------------------------------------------------------------------------
// fold / dot (strict default) and the row-block kernels
// ---------------------------------------------------------------------------

TEST(Kernels, StrictFoldAndDotAreBitIdenticalAcrossToggle) {
  for (const std::size_t n : kLens) {
    Rng r(n + 51);
    std::vector<double> a(n), b(n);
    for (double& v : a) v = r.real();
    for (double& v : b) v = r.real();

    SimdGuard off(false);
    const double fold_off = kern::fold(std::span<const double>(a), 0.5,
                                       kern::op_fn(Plus<double>{}));
    const double dot_off =
        kern::dot(std::span<const double>(a), std::span<const double>(b));
    {
      SimdGuard onn(true);
      const double fold_on = kern::fold(std::span<const double>(a), 0.5,
                                        kern::op_fn(Plus<double>{}));
      const double dot_on =
          kern::dot(std::span<const double>(a), std::span<const double>(b));
      EXPECT_EQ(std::memcmp(&fold_on, &fold_off, 8), 0);
      EXPECT_EQ(std::memcmp(&dot_on, &dot_off, 8), 0);
    }
    // And both equal the hand-rolled chain.
    double want = 0.5;
    for (const double v : a) want += v;
    EXPECT_EQ(std::memcmp(&fold_off, &want, 8), 0);
    double wdot = 0.0;
    for (std::size_t i = 0; i < n; ++i) wdot += a[i] * b[i];
    EXPECT_EQ(std::memcmp(&dot_off, &wdot, 8), 0);
  }
}

template <class Op>
void check_fold_rows(Op op, std::uint64_t seed) {
  for_each_config([&](bool on, bool mis) {
    for (const std::size_t lrn : {0ul, 1ul, 3ul, 4ul, 5ul, 8ul, 9ul, 17ul}) {
      for (const std::size_t lcn : {0ul, 1ul, 3ul, 7ul, 16ul, 33ul}) {
        Rng r(seed + lrn * 64 + lcn);
        TestBuf<double> blk(lrn * lcn, mis, r);
        std::vector<double> out(lrn, -7.0), want(lrn, -7.0);
        const double init = op.identity();
        for (std::size_t lr = 0; lr < lrn; ++lr) {
          double acc = init;
          for (std::size_t j = 0; j < lcn; ++j)
            acc = op.combine(acc, blk.span(lrn * lcn)[lr * lcn + j]);
          want[lr] = acc;
        }
        kern::fold_rows(std::span<const double>(blk.span(lrn * lcn)), lrn,
                        lcn, init, std::span<double>(out), kern::op_fn(op));
        expect_bits_eq<double>(std::span<const double>(out),
                               std::span<const double>(want),
                               on ? "fold_rows simd" : "fold_rows scalar");
      }
    }
  });
}

TEST(Kernels, FoldRowsMatchesPerRowFoldBitExactly) {
  check_fold_rows(Plus<double>{}, 61);
  check_fold_rows(Multiply<double>{}, 62);
  check_fold_rows(Max<double>{}, 63);
  check_fold_rows(Min<double>{}, 64);
}

TEST(Kernels, DotRowsMatchesPerRowChainBitExactly) {
  for_each_config([&](bool on, bool mis) {
    for (const std::size_t lrn : {0ul, 1ul, 3ul, 4ul, 5ul, 8ul, 9ul, 17ul}) {
      for (const std::size_t lcn : {0ul, 1ul, 3ul, 7ul, 16ul, 33ul}) {
        Rng r(lrn * 64 + lcn + 71);
        TestBuf<double> blk(lrn * lcn, mis, r);
        std::vector<double> x(lcn), out(lrn, -7.0), want(lrn, -7.0);
        for (double& v : x) v = r.real();
        for (std::size_t lr = 0; lr < lrn; ++lr) {
          double s = 0.0;
          for (std::size_t j = 0; j < lcn; ++j)
            s += blk.span(lrn * lcn)[lr * lcn + j] * x[j];
          want[lr] = s;
        }
        kern::dot_rows(std::span<const double>(blk.span(lrn * lcn)), lrn,
                       lcn, std::span<const double>(x),
                       std::span<double>(out));
        expect_bits_eq<double>(std::span<const double>(out),
                               std::span<const double>(want),
                               on ? "dot_rows simd" : "dot_rows scalar");
      }
    }
  });
}

TEST(Kernels, FoldWithValueIndexStaysOnScalarPath) {
  // A non-arithmetic accumulator (MaxLoc over ValueIndex) must be untouched
  // by the dispatch layer in either configuration.
  const MaxLoc<double> op;
  std::vector<ValueIndex<double>> xs;
  Rng r(81);
  for (std::int64_t i = 0; i < 37; ++i)
    xs.push_back(ValueIndex<double>{r.real(), i});
  for (const bool on : {false, true}) {
    SimdGuard guard(on);
    ValueIndex<double> want = op.identity();
    for (const auto& v : xs) want = op.combine(want, v);
    const ValueIndex<double> got = kern::fold(
        std::span<const ValueIndex<double>>(xs), op.identity(),
        kern::op_fn(op));
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.index, want.index);
  }
}

// ---------------------------------------------------------------------------
// gather / scatter
// ---------------------------------------------------------------------------

template <class T>
void check_gather_scatter(std::uint64_t seed) {
  for_each_config([&](bool on, bool mis) {
    for (const std::size_t n : kLens) {
      for (const std::size_t stride : {1ul, 2ul, 3ul, 7ul}) {
        Rng r(seed + n * 8 + stride);
        TestBuf<T> src(n * stride + 1, mis, r);
        TestBuf<T> dst(n, mis, r);
        std::vector<T> want(n);
        for (std::size_t i = 0; i < n; ++i)
          want[i] = src.span(n * stride + 1)[i * stride];
        kern::gather_strided(
            static_cast<const T*>(src.span(n * stride + 1).data()), stride,
            dst.span(n));
        expect_bits_eq<T>(dst.span(n), want,
                          on ? "gather simd" : "gather scalar");

        TestBuf<T> back(n * stride + 1, mis, r);
        std::vector<T> want_b(back.span(n * stride + 1).begin(),
                              back.span(n * stride + 1).end());
        for (std::size_t i = 0; i < n; ++i) want_b[i * stride] = want[i];
        kern::scatter_strided(std::span<const T>(dst.span(n)),
                              back.span(n * stride + 1).data(), stride);
        expect_bits_eq<T>(back.span(n * stride + 1), want_b, "scatter");
      }
    }
  });
}

TEST(Kernels, GatherScatterStridedMatchReference) {
  check_gather_scatter<double>(91);
  check_gather_scatter<float>(92);
  check_gather_scatter<std::int32_t>(93);
  check_gather_scatter<std::uint64_t>(94);
  check_gather_scatter<std::int16_t>(95);  // scalar path both ways
}

TEST(Kernels, ScatterTaggedMatchesReference) {
  struct Item {
    std::size_t tag;
    double value;
  };
  for (const bool on : {false, true}) {
    SimdGuard guard(on);
    Rng r(101);
    std::vector<Item> items;
    const std::size_t n = 29;
    // A permutation of [0, n) as tags.
    std::vector<std::size_t> tags(n);
    for (std::size_t i = 0; i < n; ++i) tags[i] = i;
    for (std::size_t i = n; i-- > 1;)
      std::swap(tags[i], tags[r.next() % (i + 1)]);
    for (std::size_t i = 0; i < n; ++i)
      items.push_back(Item{tags[i], r.real()});
    std::vector<double> dst(n, 0.0), want(n, 0.0);
    for (const Item& it : items) want[it.tag] = it.value;
    kern::scatter_tagged(std::span<const Item>(items),
                         std::span<double>(dst));
    expect_bits_eq<double>(std::span<const double>(dst),
                           std::span<const double>(want), "scatter_tagged");
  }
}

TEST(Kernels, ScanExclusiveMatchesReference) {
  for (const bool on : {false, true}) {
    SimdGuard guard(on);
    for (const std::size_t n : kLens) {
      Rng r(n + 111);
      std::vector<double> x(n), ref(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = ref[i] = r.real();
      double acc = 2.25, want_carry = 2.25;
      for (std::size_t i = 0; i < n; ++i) {
        const double next = want_carry + ref[i];
        ref[i] = want_carry;
        want_carry = next;
      }
      acc = kern::scan_exclusive(std::span<double>(x), acc,
                                 kern::op_fn(Plus<double>{}));
      expect_bits_eq<double>(std::span<const double>(x),
                             std::span<const double>(ref), "scan_exclusive");
      EXPECT_EQ(std::memcmp(&acc, &want_carry, 8), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Assoc::Relaxed: fixed-width determinism + ULP budget
// ---------------------------------------------------------------------------

/// The documented relaxed order: W striped lane accumulators, lanes folded
/// pairwise low-half-first, scalar tail appended last.  For W = 1 this is
/// the strict chain.
double striped_sum(std::span<const double> x, double init, std::size_t w) {
  if (w == 1) {  // scalar build: relaxed degenerates to the strict chain
    double s = init;
    for (const double v : x) s += v;
    return s;
  }
  std::vector<double> lanes(w, 0.0);
  const std::size_t body_n = x.size() - x.size() % w;
  for (std::size_t i = 0; i < body_n; ++i) lanes[i % w] += x[i];
  // Matches the backend's horizontal fold: pairwise halves, then across.
  std::vector<double> half(w / 2);
  for (std::size_t l = 0; l < w / 2; ++l)
    half[l] = lanes[l] + lanes[l + w / 2];
  double h = half[0];
  for (std::size_t l = 1; l < w / 2; ++l) h += half[l];
  double s = init + h;
  for (std::size_t i = body_n; i < x.size(); ++i) s += x[i];
  return s;
}

double striped_dot(std::span<const double> a, std::span<const double> b,
                   std::size_t w) {
  std::vector<double> prods(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) prods[i] = a[i] * b[i];
  return striped_sum(std::span<const double>(prods), 0.0, w);
}

TEST(KernelsRelaxed, MatchesStripedLaneEmulationAtCompiledWidth) {
  const std::size_t w = kern::simd::width_f64();
  for (const std::size_t n : kLens) {
    Rng r(n + 121);
    std::vector<double> a(n), b(n);
    for (double& v : a) v = r.real();
    for (double& v : b) v = r.real();
    const double sum = kern::fold(std::span<const double>(a), 0.25,
                                  kern::op_fn(Plus<double>{}),
                                  kern::Assoc::Relaxed);
    const double want_sum = striped_sum(std::span<const double>(a), 0.25, w);
    EXPECT_EQ(std::memcmp(&sum, &want_sum, 8), 0) << "n=" << n;
    const double d = kern::dot(std::span<const double>(a),
                               std::span<const double>(b),
                               kern::Assoc::Relaxed);
    const double want_d = striped_dot(std::span<const double>(a),
                                      std::span<const double>(b), w);
    EXPECT_EQ(std::memcmp(&d, &want_d, 8), 0) << "n=" << n;
  }
}

TEST(KernelsRelaxed, DeterministicAcrossRepeatsAndRuntimeToggle) {
  // Relaxed results are a function of the input and the COMPILED width
  // only: repeated calls and the runtime SIMD toggle must not change a bit.
  Rng r(131);
  std::vector<double> a(133), b(133);
  for (double& v : a) v = r.real();
  for (double& v : b) v = r.real();
  const double s1 = kern::fold(std::span<const double>(a), 0.0,
                               kern::op_fn(Plus<double>{}),
                               kern::Assoc::Relaxed);
  const double d1 = kern::dot(std::span<const double>(a),
                              std::span<const double>(b),
                              kern::Assoc::Relaxed);
  for (int rep = 0; rep < 3; ++rep) {
    for (const bool on : {false, true}) {
      SimdGuard guard(on);
      const double s2 = kern::fold(std::span<const double>(a), 0.0,
                                   kern::op_fn(Plus<double>{}),
                                   kern::Assoc::Relaxed);
      const double d2 = kern::dot(std::span<const double>(a),
                                  std::span<const double>(b),
                                  kern::Assoc::Relaxed);
      EXPECT_EQ(std::memcmp(&s1, &s2, 8), 0);
      EXPECT_EQ(std::memcmp(&d1, &d2, 8), 0);
    }
  }
}

TEST(KernelsRelaxed, ErrorWithinUlpBudgetOfLongDoubleReference) {
  // docs/kernels.md budget: |relaxed − exact| ≤ 2·n·ulp(|exact| + Σ|terms|).
  // The strict chain obeys the same bound; this guards against a backend
  // accidentally using a lower-precision accumulation.
  for (const std::size_t n : {16ul, 133ul, 1024ul}) {
    Rng r(n + 141);
    std::vector<double> a(n), b(n);
    for (double& v : a) v = r.real();
    for (double& v : b) v = r.real();
    long double exact = 0.0L, mag = 0.0L;
    for (std::size_t i = 0; i < n; ++i) {
      exact += static_cast<long double>(a[i]) * static_cast<long double>(b[i]);
      mag += std::abs(static_cast<long double>(a[i]) *
                      static_cast<long double>(b[i]));
    }
    const double got = kern::dot(std::span<const double>(a),
                                 std::span<const double>(b),
                                 kern::Assoc::Relaxed);
    const double budget =
        2.0 * static_cast<double>(n) *
        std::numeric_limits<double>::epsilon() * static_cast<double>(mag);
    EXPECT_LE(std::abs(static_cast<double>(static_cast<long double>(got) -
                                           exact)),
              budget)
        << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Backend surface
// ---------------------------------------------------------------------------

TEST(KernelsSimd, BackendSurfaceIsConsistent) {
  const std::string be = kern::simd::backend();
  EXPECT_TRUE(be == "avx2" || be == "neon" || be == "scalar");
  EXPECT_EQ(kern::simd::compiled(), be != "scalar");
  if (!kern::simd::compiled()) {
    EXPECT_EQ(kern::simd::width_f64(), 1u);
    EXPECT_EQ(kern::simd::width_f32(), 1u);
    // The toggle cannot enable a backend that is not there.
    const bool prev = kern::simd::set_enabled(true);
    EXPECT_FALSE(kern::simd::enabled());
    kern::simd::set_enabled(prev);
  } else {
    EXPECT_GE(kern::simd::width_f64(), 2u);
    EXPECT_EQ(kern::simd::width_f32(), 2 * kern::simd::width_f64());
    SimdGuard guard(true);
    EXPECT_TRUE(kern::simd::enabled());
    EXPECT_TRUE(kern::simd::set_enabled(false));   // returns previous
    EXPECT_FALSE(kern::simd::enabled());
    EXPECT_FALSE(kern::simd::set_enabled(true));
    EXPECT_TRUE(kern::simd::enabled());
  }
}

}  // namespace
}  // namespace vmp
