// Integration tests: distributed Gaussian elimination vs the serial LU
// reference — identical pivot sequences, matching factors, small residuals.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/gauss.hpp"
#include "algorithms/serial/lu.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

struct GeCase {
  int gr, gc;
  std::size_t n;
  MatrixLayout layout;
  std::uint64_t seed;
};

class GaussSweep : public ::testing::TestWithParam<GeCase> {
 protected:
  void SetUp() override {
    const GeCase c = GetParam();
    cube = std::make_unique<Cube>(c.gr + c.gc, CostParams::cm2());
    grid = std::make_unique<Grid>(*cube, c.gr, c.gc);
    H = diag_dominant_matrix(c.n, c.seed);
    A = std::make_unique<DistMatrix<double>>(*grid, c.n, c.n, c.layout);
    A->load(H.data());
  }

  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
  HostMatrix H;
  std::unique_ptr<DistMatrix<double>> A;
};

TEST_P(GaussSweep, FactorMatchesSerialExactly) {
  const GeCase c = GetParam();
  HostMatrix Hcopy = H;
  const serial::LuResult sref = serial::lu_factor(Hcopy);
  const DistLuResult dref = lu_factor(*A);
  ASSERT_FALSE(sref.singular);
  ASSERT_FALSE(dref.singular);
  EXPECT_EQ(dref.perm, sref.perm) << "identical pivot sequences expected";
  const std::vector<double> got = A->to_host();
  for (std::size_t i = 0; i < c.n; ++i)
    for (std::size_t j = 0; j < c.n; ++j)
      EXPECT_NEAR(got[i * c.n + j], Hcopy(i, j),
                  1e-12 * (1 + std::abs(Hcopy(i, j))))
          << "element (" << i << "," << j << ")";
}

TEST_P(GaussSweep, SolveHasSmallResidual) {
  const GeCase c = GetParam();
  const std::vector<double> b = random_vector(c.n, c.seed + 1);
  const std::vector<double> x = gauss_solve(*A, b);
  // residual ||Ax - b||_inf against the ORIGINAL matrix
  double resid = 0;
  for (std::size_t i = 0; i < c.n; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < c.n; ++j) s += H(i, j) * x[j];
    resid = std::max(resid, std::abs(s - b[i]));
  }
  EXPECT_LT(resid, 1e-9) << "n=" << c.n;
}

TEST_P(GaussSweep, SolveMatchesSerialSolve) {
  const GeCase c = GetParam();
  const std::vector<double> b = random_vector(c.n, c.seed + 2);
  HostMatrix Hcopy = H;
  const std::vector<double> want = serial::gauss_solve(Hcopy, b);
  const std::vector<double> got = gauss_solve(*A, b);
  for (std::size_t i = 0; i < c.n; ++i)
    EXPECT_NEAR(got[i], want[i], 1e-9 * (1 + std::abs(want[i])));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GaussSweep,
    ::testing::Values(GeCase{0, 0, 8, MatrixLayout::cyclic(), 1},
                      GeCase{1, 1, 8, MatrixLayout::cyclic(), 2},
                      GeCase{2, 2, 16, MatrixLayout::cyclic(), 3},
                      GeCase{2, 2, 17, MatrixLayout::cyclic(), 4},
                      GeCase{2, 2, 17, MatrixLayout::blocked(), 5},
                      GeCase{3, 1, 12, MatrixLayout::cyclic(), 6},
                      GeCase{1, 3, 12, MatrixLayout::blocked(), 7},
                      GeCase{2, 3, 20, MatrixLayout::cyclic(), 8},
                      GeCase{2, 2, 3, MatrixLayout::cyclic(), 9}));

TEST(Gauss, SingularMatrixIsDetected) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 8;
  std::vector<double> host = random_matrix(n, n, 77);
  // Make row 5 a copy of row 2: rank deficient.
  for (std::size_t j = 0; j < n; ++j) host[5 * n + j] = host[2 * n + j];
  DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
  A.load(host);
  const DistLuResult lu = lu_factor(A);
  EXPECT_TRUE(lu.singular);
  // Serial agrees.
  HostMatrix H(n, n, host);
  EXPECT_TRUE(serial::lu_factor(H).singular);
}

TEST(Gauss, PivotingIsExercised) {
  // A matrix whose natural order would divide by ~zero without pivoting.
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  const std::size_t n = 4;
  std::vector<double> host = {0.0, 2.0, 1.0, 3.0,  //
                              4.0, 1.0, 0.0, 1.0,  //
                              1.0, 0.5, 3.0, 2.0,  //
                              2.0, 1.0, 1.0, 0.0};
  DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
  A.load(host);
  const DistLuResult lu = lu_factor(A);
  ASSERT_FALSE(lu.singular);
  EXPECT_NE(lu.perm[0], 0u) << "row 0 has a zero pivot; a swap must happen";
  const std::vector<double> b = {1, 2, 3, 4};
  const std::vector<double> x = lu_solve(A, lu, b);
  HostMatrix H(n, n, host);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < n; ++j) s += H(i, j) * x[j];
    EXPECT_NEAR(s, b[i], 1e-10);
  }
}

TEST(Gauss, NonSquareRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistMatrix<double> A(grid, 4, 5);
  EXPECT_THROW((void)lu_factor(A), ContractError);
}

TEST(Gauss, CyclicBeatsBlockedInSimulatedTime) {
  // The cyclic embedding keeps all processor rows busy as the active
  // window shrinks; blocked idles them — cyclic must win for n >> grid.
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 32;
  const HostMatrix H = diag_dominant_matrix(n, 91);

  DistMatrix<double> Ac(grid, n, n, MatrixLayout::cyclic());
  Ac.load(H.data());
  cube.clock().reset();
  (void)lu_factor(Ac);
  const double t_cyclic = cube.clock().now_us();

  DistMatrix<double> Ab(grid, n, n, MatrixLayout::blocked());
  Ab.load(H.data());
  cube.clock().reset();
  (void)lu_factor(Ab);
  const double t_blocked = cube.clock().now_us();

  EXPECT_LT(t_cyclic, t_blocked);
}

}  // namespace
}  // namespace vmp
