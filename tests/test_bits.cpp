// Unit tests: bit utilities, Gray codes, and index partitions — the
// addressing bedrock everything above depends on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hypercube/bits.hpp"
#include "hypercube/gray.hpp"
#include "hypercube/partition.hpp"

namespace vmp {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(2), 1);
  EXPECT_EQ(log2_exact(1024), 10);
  EXPECT_THROW((void)log2_exact(3), ContractError);
  EXPECT_THROW((void)log2_exact(0), ContractError);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(0), 0);
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(4), 2);
  EXPECT_EQ(log2_ceil(5), 3);
}

TEST(Bits, CubeNeighborDiffersInOneBit) {
  for (std::uint32_t q = 0; q < 64; ++q)
    for (int d = 0; d < 6; ++d) {
      const std::uint32_t nb = cube_neighbor(q, d);
      EXPECT_EQ(hamming_distance(q, nb), 1);
      EXPECT_EQ(cube_neighbor(nb, d), q);  // involution
    }
}

TEST(Bits, ExtractDepositRoundTrip) {
  const std::uint32_t masks[] = {0b1, 0b1010, 0b111, 0b100100, 0xF0F0};
  for (std::uint32_t mask : masks) {
    const int k = popcount(mask);
    for (std::uint32_t v = 0; v < (1u << k); ++v) {
      EXPECT_EQ(extract_bits(deposit_bits(v, mask), mask), v);
      EXPECT_EQ(deposit_bits(v, mask) & ~mask, 0u);
    }
  }
}

TEST(Bits, ExtractBitsExample) {
  EXPECT_EQ(extract_bits(0b1011, 0b1010), 0b11u);
  EXPECT_EQ(extract_bits(0b0001, 0b1010), 0b00u);
  EXPECT_EQ(deposit_bits(0b11, 0b1010), 0b1010u);
}

TEST(Bits, NthSetBit) {
  EXPECT_EQ(nth_set_bit(0b1010, 0), 1);
  EXPECT_EQ(nth_set_bit(0b1010, 1), 3);
  EXPECT_THROW((void)nth_set_bit(0b1010, 2), ContractError);
}

TEST(Gray, ConsecutiveCodewordsAreCubeNeighbors) {
  for (std::uint32_t i = 0; i + 1 < 1024; ++i)
    EXPECT_EQ(hamming_distance(gray_encode(i), gray_encode(i + 1)), 1)
        << "at i=" << i;
}

TEST(Gray, WrapAroundIsNeighborAtPowersOfTwo) {
  for (int k = 1; k <= 10; ++k) {
    const std::uint32_t n = 1u << k;
    EXPECT_EQ(hamming_distance(gray_encode(0), gray_encode(n - 1)), 1);
  }
}

TEST(Gray, EncodeDecodeRoundTrip) {
  for (std::uint32_t i = 0; i < 4096; ++i)
    EXPECT_EQ(gray_decode(gray_encode(i)), i);
}

TEST(Gray, IsAPermutation) {
  std::vector<bool> seen(1024, false);
  for (std::uint32_t i = 0; i < 1024; ++i) {
    const std::uint32_t g = gray_encode(i);
    ASSERT_LT(g, 1024u);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

TEST(Gray, AdjacencyPredicate) {
  EXPECT_TRUE(gray_adjacent(4, 5));
  EXPECT_FALSE(gray_adjacent(4, 6));
  EXPECT_FALSE(gray_adjacent(7, 7));
}

class BlockPartition
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
};

TEST_P(BlockPartition, CoversRangeExactlyOnce) {
  const auto [n, P] = GetParam();
  std::size_t covered = 0;
  for (std::uint32_t r = 0; r < P; ++r) {
    EXPECT_EQ(block_begin(n, P, r), covered);
    covered += block_size(n, P, r);
  }
  EXPECT_EQ(covered, n);
}

TEST_P(BlockPartition, OwnerLocalConsistent) {
  const auto [n, P] = GetParam();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = block_owner(n, P, i);
    ASSERT_LT(r, P);
    const std::size_t s = block_local(n, P, i);
    EXPECT_LT(s, block_size(n, P, r));
    EXPECT_EQ(block_begin(n, P, r) + s, i);
  }
}

TEST_P(BlockPartition, BalancedWithinOne) {
  const auto [n, P] = GetParam();
  std::size_t mn = n + 1, mx = 0;
  for (std::uint32_t r = 0; r < P; ++r) {
    mn = std::min(mn, block_size(n, P, r));
    mx = std::max(mx, block_size(n, P, r));
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST_P(BlockPartition, CyclicOwnerLocalConsistent) {
  const auto [n, P] = GetParam();
  std::vector<std::size_t> counts(P, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = cyclic_owner(P, i);
    const std::size_t s = cyclic_local(P, i);
    EXPECT_EQ(cyclic_global(P, r, s), i);
    ++counts[r];
  }
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < P; ++r) {
    EXPECT_EQ(counts[r], cyclic_size(n, P, r));
    total += counts[r];
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockPartition,
    ::testing::Values(std::tuple{0ul, 1u}, std::tuple{0ul, 8u},
                      std::tuple{1ul, 1u}, std::tuple{1ul, 4u},
                      std::tuple{5ul, 8u}, std::tuple{7ul, 3u},
                      std::tuple{8ul, 8u}, std::tuple{16ul, 4u},
                      std::tuple{17ul, 4u}, std::tuple{100ul, 16u},
                      std::tuple{1000ul, 32u}, std::tuple{31ul, 32u}));

}  // namespace
}  // namespace vmp
