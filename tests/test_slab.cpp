// Unit tests for the slab arena behind DistBuffer: tile offset and
// alignment invariants, span aliasing (disjoint tiles, full coverage),
// move semantics (O(1) arena transfer), pool recycling across
// construct/destroy cycles, and the host round-trip copies built on the
// strided kernels (DistVector/DistMatrix load → to_host).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/dist_buffer.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"
#include "embed/grid.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

template <class T>
[[nodiscard]] std::uintptr_t addr(std::span<T> s) {
  return reinterpret_cast<std::uintptr_t>(s.data());
}

// ---------------------------------------------------------------------------
// Tile offsets and alignment
// ---------------------------------------------------------------------------

TEST(Slab, TilesAre64ByteAlignedAtUniformStride) {
  Cube cube(3, CostParams::unit());
  DistBuffer<double> buf(cube, 7);
  ASSERT_GE(buf.stride(), 7u);
  // The stride quantum keeps every tile on a 64-byte boundary.
  const std::size_t quantum = 64 / std::gcd(sizeof(double), std::size_t{64});
  EXPECT_EQ(buf.stride() % quantum, 0u);
  for (proc_t q = 0; q < cube.procs(); ++q) {
    EXPECT_EQ(addr(buf.tile(q)) % 64, 0u) << "tile " << q << " misaligned";
    EXPECT_EQ(buf.len(q), 7u);
  }
  // Tiles sit at base + q·stride: consecutive tiles are exactly one stride
  // apart in the same arena.
  for (proc_t q = 0; q + 1 < cube.procs(); ++q)
    EXPECT_EQ(addr(buf.tile(q + 1)) - addr(buf.tile(q)),
              buf.stride() * sizeof(double));
}

TEST(Slab, OddSizedElementTypeKeepsTileAlignment) {
  Cube cube(2, CostParams::unit());
  DistBuffer<RouteItem<double>> items(cube, 3);
  for (proc_t q = 0; q < cube.procs(); ++q)
    EXPECT_EQ(addr(items.tile(q)) % 64, 0u) << "tile " << q;
  EXPECT_EQ(items.stride() * sizeof(RouteItem<double>) % 64, 0u);
}

// ---------------------------------------------------------------------------
// Span aliasing: disjoint tiles, no cross-talk, growth preserves contents
// ---------------------------------------------------------------------------

TEST(Slab, TileSpansAreDisjointAndCoverDistinctRanges) {
  Cube cube(3, CostParams::unit());
  DistBuffer<int> buf(cube, 5);
  for (proc_t q = 0; q < cube.procs(); ++q) {
    const std::span<int> t = buf.tile(q);
    for (std::size_t s = 0; s < t.size(); ++s)
      t[s] = static_cast<int>(q * 100 + s);
  }
  // Ranges must not overlap...
  for (proc_t a = 0; a < cube.procs(); ++a)
    for (proc_t b = static_cast<proc_t>(a + 1); b < cube.procs(); ++b) {
      const std::uintptr_t alo = addr(buf.tile(a));
      const std::uintptr_t ahi = alo + buf.len(a) * sizeof(int);
      const std::uintptr_t blo = addr(buf.tile(b));
      EXPECT_TRUE(ahi <= blo || blo + buf.len(b) * sizeof(int) <= alo)
          << "tiles " << a << " and " << b << " overlap";
    }
  // ...and writes through one tile must not leak into another.
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (std::size_t s = 0; s < buf.len(q); ++s)
      EXPECT_EQ(buf.tile(q)[s], static_cast<int>(q * 100 + s));
}

TEST(Slab, GrowthPreservesEveryTileAndDoublesGeometrically) {
  Cube cube(2, CostParams::unit());
  DistBuffer<double> buf(cube);
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (int s = 0; s < 3; ++s) buf.push_back(q, q * 10.0 + s);
  const std::size_t stride0 = buf.stride();
  // Force several reallocations through one tile; the others must survive.
  for (int s = 3; s < 200; ++s) buf.push_back(0, 0.0 + s);
  EXPECT_GE(buf.stride(), 200u);
  EXPECT_GT(buf.stride(), stride0);
  for (proc_t q = 1; q < cube.procs(); ++q) {
    ASSERT_EQ(buf.len(q), 3u);
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_EQ(buf.tile(q)[s], q * 10.0 + s);
  }
  for (std::size_t s = 0; s < 200; ++s)
    EXPECT_EQ(buf.tile(0)[s], static_cast<double>(s));
}

// ---------------------------------------------------------------------------
// Move semantics and copies
// ---------------------------------------------------------------------------

TEST(Slab, MoveTransfersTheArenaWithoutCopying) {
  Cube cube(2, CostParams::unit());
  DistBuffer<double> a(cube, 16);
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (std::size_t s = 0; s < 16; ++s)
      a.tile(q)[s] = q * 1000.0 + static_cast<double>(s);
  const std::uintptr_t arena = addr(a.tile(0));

  DistBuffer<double> b(std::move(a));
  EXPECT_EQ(addr(b.tile(0)), arena) << "move must not reallocate";
  EXPECT_EQ(a.procs(), 0u) << "moved-from buffer is empty";

  DistBuffer<double> c;
  c = std::move(b);
  EXPECT_EQ(addr(c.tile(0)), arena);
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (std::size_t s = 0; s < 16; ++s)
      EXPECT_EQ(c.tile(q)[s], q * 1000.0 + static_cast<double>(s));
}

TEST(Slab, SwapExchangesArenasInConstantTime) {
  Cube cube(2, CostParams::unit());
  DistBuffer<int> a(cube, 4);
  DistBuffer<int> b(cube, 8);
  a.tile(1)[0] = 7;
  b.tile(1)[0] = 9;
  const std::uintptr_t pa = addr(a.tile(0)), pb = addr(b.tile(0));
  a.swap(b);
  EXPECT_EQ(addr(a.tile(0)), pb);
  EXPECT_EQ(addr(b.tile(0)), pa);
  EXPECT_EQ(a.len(1), 8u);
  EXPECT_EQ(a.tile(1)[0], 9);
  EXPECT_EQ(b.tile(1)[0], 7);
}

TEST(Slab, CopyIsDeepAndIndependent) {
  Cube cube(2, CostParams::unit());
  DistBuffer<double> a(cube, 6);
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (std::size_t s = 0; s < 6; ++s) a.tile(q)[s] = q + 0.5 * s;
  DistBuffer<double> b(a);
  EXPECT_NE(addr(b.tile(0)), addr(a.tile(0))) << "copy must own its arena";
  b.tile(0)[0] = -1.0;
  EXPECT_EQ(a.tile(0)[0], 0.0) << "copies must not alias";
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (std::size_t s = 1; s < 6; ++s) EXPECT_EQ(b.tile(q)[s], a.tile(q)[s]);
}

// ---------------------------------------------------------------------------
// Pool recycling across construct/destroy cycles
// ---------------------------------------------------------------------------

TEST(Slab, ArenaReturnsToThePoolAndIsRecycled) {
  Cube cube(3, CostParams::cm2());
  { DistBuffer<double> warm(cube, 256); }  // first arena: a pool miss
  const SimStats warm_stats = cube.clock().stats();
  EXPECT_GT(warm_stats.slab_allocs, 0u);
  EXPECT_GT(warm_stats.slab_bytes, 0u);

  // Same-shaped objects constructed after destruction must be served
  // entirely from the free list: no new misses, no new slab allocations.
  for (int it = 0; it < 8; ++it) {
    DistBuffer<double> buf(cube, 256);
    buf.tile(0)[0] = static_cast<double>(it);
  }
  const SimStats after = cube.clock().stats();
  EXPECT_EQ(after.pool_misses, warm_stats.pool_misses);
  EXPECT_EQ(after.slab_allocs, warm_stats.slab_allocs);
  EXPECT_EQ(after.slab_bytes, warm_stats.slab_bytes);
  EXPECT_GT(after.pool_hits, warm_stats.pool_hits);
}

TEST(Slab, SlabAllocsCountArenasNotStagingScratch) {
  Cube cube(2, CostParams::cm2());
  const std::uint64_t slabs0 = cube.clock().stats().slab_allocs;
  DistBuffer<double> buf(cube, 32);
  EXPECT_GT(cube.clock().stats().slab_allocs, slabs0);
  const std::uint64_t slabs1 = cube.clock().stats().slab_allocs;
  // An exchange allocates staging scratch (pool misses on a cold pool) but
  // no slab arenas.
  cube.exchange<double>(
      0, [&](proc_t q) { return std::span<const double>(buf.tile(q)); },
      [&](proc_t, std::span<const double>) {});
  EXPECT_EQ(cube.clock().stats().slab_allocs, slabs1);
}

// ---------------------------------------------------------------------------
// Host round trips through the strided copy kernels (satellite of the slab
// refactor: to_host is contiguous/strided block copies, not per-element
// owner lookups)
// ---------------------------------------------------------------------------

class RoundTripSweep
    : public ::testing::TestWithParam<std::tuple<Align, Part, std::size_t>> {};

TEST_P(RoundTripSweep, VectorLoadToHostIsIdentity) {
  const auto [align, part, n] = GetParam();
  if (align == Align::Linear && part == Part::Cyclic) GTEST_SKIP();
  Cube cube(4, CostParams::unit());
  Grid grid = Grid::square(cube);
  DistVector<double> v(grid, n, align, part);
  const std::vector<double> host = random_vector(n, 31);
  v.load(host);
  EXPECT_TRUE(v.replicas_consistent());
  EXPECT_EQ(v.to_host(), host);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTripSweep,
    ::testing::Combine(::testing::Values(Align::Linear, Align::Cols,
                                         Align::Rows),
                       ::testing::Values(Part::Block, Part::Cyclic),
                       ::testing::Values(0ul, 1ul, 13ul, 64ul, 100ul)));

class MatrixRoundTripSweep
    : public ::testing::TestWithParam<
          std::tuple<MatrixLayout, std::size_t, std::size_t>> {};

TEST_P(MatrixRoundTripSweep, MatrixLoadToHostIsIdentity) {
  const auto [layout, m, n] = GetParam();
  Cube cube(4, CostParams::unit());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, m, n, layout);
  const std::vector<double> host = random_matrix(m, n, 47);
  A.load(host);
  EXPECT_EQ(A.to_host(), host);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatrixRoundTripSweep,
    ::testing::Combine(::testing::Values(MatrixLayout::blocked(),
                                         MatrixLayout::cyclic(),
                                         MatrixLayout{Part::Block,
                                                      Part::Cyclic}),
                       ::testing::Values(1ul, 9ul, 32ul),
                       ::testing::Values(1ul, 17ul, 32ul)));

}  // namespace
}  // namespace vmp
