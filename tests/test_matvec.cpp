// Integration tests: matrix-vector / vector-matrix products (composed and
// fused) against the serial reference, over grid shapes and layouts.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/matvec.hpp"
#include "algorithms/serial/host_matrix.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

struct MvCase {
  int gr, gc;
  std::size_t nrows, ncols;
  MatrixLayout layout;
};

class MatvecSweep : public ::testing::TestWithParam<MvCase> {
 protected:
  void SetUp() override {
    const MvCase c = GetParam();
    cube = std::make_unique<Cube>(c.gr + c.gc, CostParams::cm2());
    grid = std::make_unique<Grid>(*cube, c.gr, c.gc);
    ha = random_matrix(c.nrows, c.ncols, 41);
    A = std::make_unique<DistMatrix<double>>(*grid, c.nrows, c.ncols,
                                             c.layout);
    A->load(ha);
    H = HostMatrix(c.nrows, c.ncols, ha);
  }

  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
  std::vector<double> ha;
  std::unique_ptr<DistMatrix<double>> A;
  HostMatrix H;
};

TEST_P(MatvecSweep, MatvecMatchesSerial) {
  const MvCase c = GetParam();
  const std::vector<double> hx = random_vector(c.ncols, 42);
  DistVector<double> x(*grid, c.ncols, Align::Cols, c.layout.cols);
  x.load(hx);
  const std::vector<double> want = host_matvec(H, hx);

  const std::vector<double> got = matvec(*A, x).to_host();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-12 * (1 + std::abs(want[i])));
}

TEST_P(MatvecSweep, FusedMatchesComposed) {
  const MvCase c = GetParam();
  const std::vector<double> hx = random_vector(c.ncols, 43);
  DistVector<double> x(*grid, c.ncols, Align::Cols, c.layout.cols);
  x.load(hx);
  EXPECT_EQ(matvec(*A, x).to_host(), matvec_fused(*A, x).to_host())
      << "fused and composed forms use identical per-element arithmetic";
}

TEST_P(MatvecSweep, VecmatMatchesSerial) {
  const MvCase c = GetParam();
  const std::vector<double> hx = random_vector(c.nrows, 44);
  DistVector<double> x(*grid, c.nrows, Align::Rows, c.layout.rows);
  x.load(hx);
  const std::vector<double> want = host_vecmat(hx, H);

  const std::vector<double> got = vecmat(x, *A).to_host();
  const std::vector<double> got_fused = vecmat_fused(x, *A).to_host();
  for (std::size_t j = 0; j < want.size(); ++j) {
    EXPECT_NEAR(got[j], want[j], 1e-12 * (1 + std::abs(want[j])));
    EXPECT_NEAR(got_fused[j], want[j], 1e-12 * (1 + std::abs(want[j])));
  }
}

TEST_P(MatvecSweep, FusedIsNeverSlowerInSimulatedTime) {
  const MvCase c = GetParam();
  DistVector<double> x(*grid, c.ncols, Align::Cols, c.layout.cols);
  x.load(random_vector(c.ncols, 45));
  cube->clock().reset();
  (void)matvec(*A, x);
  const double t_composed = cube->clock().now_us();
  cube->clock().reset();
  (void)matvec_fused(*A, x);
  const double t_fused = cube->clock().now_us();
  EXPECT_LE(t_fused, t_composed + 1e-9);
}

TEST_P(MatvecSweep, RejectsMisalignedInput) {
  const MvCase c = GetParam();
  DistVector<double> wrong(*grid, c.ncols, Align::Rows,
                           c.layout.rows);
  if (c.nrows == c.ncols && c.layout.rows == c.layout.cols) GTEST_SKIP();
  EXPECT_THROW((void)matvec(*A, wrong), ContractError);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatvecSweep,
    ::testing::Values(MvCase{0, 0, 6, 6, MatrixLayout::blocked()},
                      MvCase{1, 1, 8, 8, MatrixLayout::blocked()},
                      MvCase{2, 2, 16, 16, MatrixLayout::blocked()},
                      MvCase{2, 2, 13, 19, MatrixLayout::blocked()},
                      MvCase{2, 2, 13, 19, MatrixLayout::cyclic()},
                      MvCase{3, 1, 10, 40, MatrixLayout::cyclic()},
                      MvCase{1, 3, 40, 10, MatrixLayout::blocked()},
                      MvCase{3, 3, 5, 5, MatrixLayout::blocked()}));

}  // namespace
}  // namespace vmp
