// Tests: the distributed FFT against the O(n²) DFT reference, plus the
// standard transform identities (inverse round trip, linearity, impulse,
// Parseval).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/fft.hpp"
#include "util/rng.hpp"

namespace vmp {
namespace {

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<cplx> x(n);
  for (cplx& c : x) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

class FftSweep : public ::testing::TestWithParam<
                     std::tuple<int, int, std::size_t>> {};

TEST_P(FftSweep, MatchesDftReference) {
  const auto [gr, gc, n] = GetParam();
  if (n < (1u << (gr + gc))) GTEST_SKIP();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const std::vector<cplx> x = random_signal(n, 51);
  const std::vector<cplx> want = dft_reference(x);
  DistVector<cplx> v(grid, n, Align::Linear);
  v.load(x);
  fft(v);
  const std::vector<cplx> got = v.to_host();
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-9 * (1 + std::abs(want[k])))
        << "k=" << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-9 * (1 + std::abs(want[k])));
  }
}

TEST_P(FftSweep, InverseRoundTrips) {
  const auto [gr, gc, n] = GetParam();
  if (n < (1u << (gr + gc))) GTEST_SKIP();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const std::vector<cplx> x = random_signal(n, 52);
  DistVector<cplx> v(grid, n, Align::Linear);
  v.load(x);
  fft(v);
  ifft(v);
  const std::vector<cplx> got = v.to_host();
  for (std::size_t g = 0; g < n; ++g) {
    EXPECT_NEAR(got[g].real(), x[g].real(), 1e-10);
    EXPECT_NEAR(got[g].imag(), x[g].imag(), 1e-10);
  }
}

TEST_P(FftSweep, ParsevalHolds) {
  const auto [gr, gc, n] = GetParam();
  if (n < (1u << (gr + gc))) GTEST_SKIP();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const std::vector<cplx> x = random_signal(n, 53);
  double time_energy = 0;
  for (const cplx& c : x) time_energy += std::norm(c);
  DistVector<cplx> v(grid, n, Align::Linear);
  v.load(x);
  fft(v);
  double freq_energy = 0;
  for (const cplx& c : v.to_host()) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FftSweep,
    ::testing::Values(std::tuple{0, 0, 1ul}, std::tuple{0, 0, 8ul},
                      std::tuple{1, 0, 16ul}, std::tuple{1, 1, 16ul},
                      std::tuple{2, 2, 16ul}, std::tuple{2, 2, 64ul},
                      std::tuple{3, 2, 32ul}, std::tuple{2, 3, 128ul},
                      std::tuple{3, 3, 64ul}, std::tuple{3, 3, 256ul}));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 32;
  std::vector<cplx> x(n, cplx{0, 0});
  x[0] = {1, 0};
  DistVector<cplx> v(grid, n, Align::Linear);
  v.load(x);
  fft(v);
  for (const cplx& c : v.to_host()) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneLandsInOneBin) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 64, f = 5;
  std::vector<cplx> x(n);
  for (std::size_t g = 0; g < n; ++g) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(f * g) /
                       static_cast<double>(n);
    x[g] = {std::cos(ang), std::sin(ang)};
  }
  DistVector<cplx> v(grid, n, Align::Linear);
  v.load(x);
  fft(v);
  const std::vector<cplx> got = v.to_host();
  for (std::size_t k = 0; k < n; ++k) {
    const double want = k == f ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(got[k]), want, 1e-9) << "k=" << k;
  }
}

TEST(Fft, LinearityHolds) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  const std::size_t n = 32;
  const std::vector<cplx> a = random_signal(n, 54);
  const std::vector<cplx> b = random_signal(n, 55);
  std::vector<cplx> sum(n);
  for (std::size_t g = 0; g < n; ++g) sum[g] = 2.0 * a[g] + b[g];

  const auto run = [&](const std::vector<cplx>& x) {
    DistVector<cplx> v(grid, n, Align::Linear);
    v.load(x);
    fft(v);
    return v.to_host();
  };
  const std::vector<cplx> fa = run(a), fb = run(b), fsum = run(sum);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(fsum[k] - (2.0 * fa[k] + fb[k])), 0.0, 1e-9);
}

TEST(Fft, NonPowerOfTwoRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistVector<cplx> v(grid, 12, Align::Linear);
  EXPECT_THROW(fft(v), ContractError);
}

TEST(Fft, FewerPointsThanProcessorsRejected) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistVector<cplx> v(grid, 8, Align::Linear);
  EXPECT_THROW(fft(v), ContractError);
}

TEST(Fft, ScalesWithProcessors) {
  const std::size_t n = 4096;
  const std::vector<cplx> x = random_signal(n, 56);
  const auto run = [&](int d) {
    Cube cube(d, CostParams::cm2());
    Grid grid = Grid::square(cube);
    DistVector<cplx> v(grid, n, Align::Linear);
    v.load(x);
    cube.clock().reset();
    fft(v);
    return cube.clock().now_us();
  };
  const double t1 = run(0);
  const double t64 = run(6);
  EXPECT_GT(t1 / t64, 8.0);
}

}  // namespace
}  // namespace vmp
