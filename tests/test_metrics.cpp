// Engine-metrics tier (obs/metrics.hpp): registry semantics, the
// instrumentation wired into the worker team / buffer pool / router, and
// the two determinism contracts the design rests on:
//
//  1. Sim-class metrics are pure functions of the simulated machine —
//     bit-identical at every host-thread count, with and without fault
//     injection (compared within a fault configuration, like SimStats).
//     Wall-class metrics must be PRESENT but are excluded from equality.
//  2. Enabling metrics never perturbs the machine: results, now_us,
//     SimStats and event traces are bit-identical metrics-on vs off.
//
// Also covers the analysis companions built on the same observability
// data: critical-path extraction, per-region load-imbalance factors,
// collapsed-stack (flame-graph) export, and the snapshot sampler.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/naive.hpp"
#include "core/primitives.hpp"
#include "core/scan_ops.hpp"
#include "core/transpose.hpp"
#include "fault/fault.hpp"
#include "hypercube/check.hpp"
#include "obs/critical_path.hpp"
#include "obs/flamegraph.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

const std::uint64_t kBaseSeed = announce_seed("test_metrics");

// --------------------------------------------------------------------------
// Registry semantics.

TEST(MetricsRegistry_, HistogramBucketsByBitWidth) {
  using H = MetricsRegistry::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  EXPECT_EQ(H::bucket_of(2), 2);
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 3);
  EXPECT_EQ(H::bucket_of(1023), 10);
  EXPECT_EQ(H::bucket_of(1024), 11);
  EXPECT_EQ(H::bucket_of(UINT64_MAX), 64);
  EXPECT_EQ(H::bucket_lo(0), 0u);
  EXPECT_EQ(H::bucket_lo(1), 1u);
  EXPECT_EQ(H::bucket_lo(2), 2u);
  EXPECT_EQ(H::bucket_lo(11), 1024u);

  MetricsRegistry m;
  m.enable(/*lanes=*/2);
  MetricsRegistry::Histogram& h = m.histogram("h", MetricClass::Sim);
  h.record(0, 0);
  h.record(3, 0);
  h.record(3, 1);
  h.record(100, 1);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);  // both lanes' 3s merge
  EXPECT_EQ(h.bucket_count(7), 1u);  // 100 has bit width 7
}

TEST(MetricsRegistry_, CounterMergesLanesInOrderAndGaugeIsScalar) {
  MetricsRegistry m;
  m.enable(/*lanes=*/4);
  EXPECT_TRUE(m.enabled());
  EXPECT_EQ(m.lanes(), 4u);
  MetricsRegistry::Counter& c = m.counter("c", MetricClass::Wall);
  c.add(1, 0);
  c.add(10, 1);
  c.add(100, 3);
  EXPECT_EQ(c.value(), 111u);
  EXPECT_EQ(c.lane_value(1), 10u);
  EXPECT_EQ(c.lane_value(2), 0u);
  EXPECT_EQ(&m.counter("c", MetricClass::Wall), &c) << "find-or-create";

  MetricsRegistry::Gauge& g = m.gauge("g", MetricClass::Sim);
  g.set(2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);
}

TEST(MetricsRegistry_, SamplePeriodRoundsUpToAPowerOfTwo) {
  MetricsRegistry m;
  m.enable(1, 100);
  EXPECT_EQ(m.sample_every(), 128u);
  m.enable(1, 1);
  EXPECT_EQ(m.sample_every(), 1u);
  m.enable(1, 512);
  EXPECT_EQ(m.sample_every(), 512u);
}

TEST(MetricsRegistry_, NameCollisionAcrossKindOrClassIsAContractError) {
  MetricsRegistry m;
  m.enable(1);
  (void)m.counter("x", MetricClass::Sim);
  EXPECT_THROW((void)m.gauge("x", MetricClass::Sim), ContractError);
  EXPECT_THROW((void)m.counter("x", MetricClass::Wall), ContractError);
}

TEST(MetricsRegistry_, EnableDropsPreviousRegistrations) {
  MetricsRegistry m;
  m.enable(1);
  m.counter("old", MetricClass::Sim).add(7);
  m.enable(2);
  EXPECT_TRUE(m.entries().empty());
  EXPECT_EQ(m.counter("old", MetricClass::Sim).value(), 0u);
}

// --------------------------------------------------------------------------
// One traced workload touching every instrumented subsystem: compute
// steps, one-port exchanges (collectives), the general packet router
// (a naive primitive — the optimized ones bypass it by design), sessions,
// the buffer pool — with optional fault injection.

struct MetricsRun {
  std::vector<std::vector<double>> results;
  double now_us = 0.0;
  SimStats stats;
  std::vector<TraceEvent> trace_events;
  std::map<std::string, std::string> sim;   // Sim metrics, rendered
  std::map<std::string, std::string> wall;  // Wall metric names → kind
};

[[nodiscard]] std::string render_entry(const MetricsRegistry::Entry& e) {
  char buf[64];
  switch (e.kind) {
    case MetricKind::Counter:
      return "counter:" + std::to_string(e.counter->value());
    case MetricKind::Gauge:
      std::snprintf(buf, sizeof buf, "gauge:%.17g", e.gauge->value());
      return buf;
    case MetricKind::Histogram: {
      std::string out = "hist:n=" + std::to_string(e.histogram->count()) +
                        ",sum=" + std::to_string(e.histogram->sum()) +
                        ",max=" + std::to_string(e.histogram->max());
      for (int k = 0; k < MetricsRegistry::Histogram::kBuckets; ++k)
        if (const std::uint64_t n = e.histogram->bucket_count(k); n != 0)
          out += ",[" + std::to_string(k) + "]=" + std::to_string(n);
      return out;
    }
  }
  return {};
}

[[nodiscard]] MetricsRun run_workload(unsigned threads, bool faulty,
                                      bool metrics,
                                      unsigned sample_every = 1) {
  Cube cube(4, CostParams::cm2(), Cube::Options{threads});
  if (faulty)
    cube.enable_faults(FaultPlan::transient(kBaseSeed ^ 0x5eedULL, 0.02, 0.01));
  if (metrics) cube.enable_metrics(sample_every);
  cube.clock().tracer().set_recording(true);
  Grid grid(cube, 2, 2);

  const std::size_t nr = 24, nc = 20;
  DistMatrix<double> A(grid, nr, nc);
  A.load(random_matrix(nr, nc, static_cast<unsigned>(kBaseSeed & 0xffff)));
  DistVector<double> v(grid, nr, Align::Rows, Part::Block);
  v.load(random_vector(nr, static_cast<unsigned>(kBaseSeed >> 8 & 0xffff)));

  MetricsRun r;
  r.results.push_back(reduce_rows(A, Plus<double>{}).to_host());
  r.results.push_back(extract_col(A, 3).to_host());
  r.results.push_back(transpose(A).to_host());
  r.results.push_back(naive_reduce_cols_sum(A).to_host());  // general router
  vec_scan_inclusive(v, Plus<double>{});
  r.results.push_back(v.to_host());

  r.now_us = cube.clock().now_us();
  r.stats = cube.clock().stats();
  r.trace_events = cube.clock().tracer().events();
  if (metrics) {
    cube.metrics().run_probes();
    for (const auto& [name, e] : cube.metrics().entries()) {
      if (e.cls == MetricClass::Sim)
        r.sim[name] = render_entry(e);
      else
        r.wall[name] = to_string(e.kind);
    }
  }
  return r;
}

TEST(EngineMetrics, EverySubsystemRegistersItsInstruments) {
  const MetricsRun r = run_workload(/*threads=*/1, /*faulty=*/false,
                                    /*metrics=*/true);
  // Team: deterministic step/session tallies plus sampled step items.
  EXPECT_TRUE(r.sim.count("engine.steps"));
  EXPECT_TRUE(r.sim.count("engine.sessions"));
  EXPECT_TRUE(r.sim.count("engine.session_depth"));
  EXPECT_TRUE(r.sim.count("engine.step_items"));
  EXPECT_NE(r.sim.at("engine.steps"), "gauge:0") << "workload ran steps";
  // Team wall-clock instruments (values vary run to run, presence must
  // not).
  for (const char* name :
       {"engine.lane_busy_ns", "engine.lane_spins", "engine.lane_parks",
        "engine.lane_park_ns", "engine.host_barrier_ns", "engine.step_ns",
        "engine.step_imbalance_pct"})
    EXPECT_TRUE(r.wall.count(name)) << name;
  // Buffer pool occupancy gauges.
  for (const char* name :
       {"pool.free_blocks", "pool.free_bytes", "pool.leased_blocks",
        "pool.leased_bytes", "pool.heap_bytes", "pool.hits", "pool.misses"})
    EXPECT_TRUE(r.sim.count(name)) << name;
  // Router traffic (the transpose routes through the cube).
  EXPECT_TRUE(r.sim.count("router.packets"));
  EXPECT_TRUE(r.sim.count("router.cycles"));
  EXPECT_TRUE(r.sim.count("router.queue_depth"));
  EXPECT_TRUE(r.sim.count("router.dim0.hops"));
  EXPECT_NE(r.sim.at("router.packets"), "counter:0");
}

class MetricsThreadSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(MetricsThreadSweep, SimMetricsBitIdenticalAcrossLaneCounts) {
  const unsigned threads = std::get<0>(GetParam());
  const bool faulty = std::get<1>(GetParam());
  const MetricsRun ref = run_workload(/*threads=*/1, faulty, true);
  const MetricsRun got = run_workload(threads, faulty, true);
  // The machine itself must agree (the precondition for comparing
  // metrics at all)...
  ASSERT_EQ(ref.results, got.results);
  ASSERT_EQ(ref.now_us, got.now_us);
  ASSERT_TRUE(ref.stats == got.stats);
  // ...and every Sim-class metric must be bit-identical, name for name.
  EXPECT_EQ(ref.sim, got.sim);
  // Wall metrics: same instrument set, values free to differ.
  EXPECT_EQ(ref.wall, got.wall);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricsThreadSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 0u),
                       ::testing::Values(false, true)));

TEST(EngineMetrics, EnablingMetricsNeverPerturbsTheMachine) {
  for (const bool faulty : {false, true}) {
    const MetricsRun off = run_workload(1, faulty, /*metrics=*/false);
    for (const unsigned sample_every : {1u, 512u}) {
      const MetricsRun on = run_workload(1, faulty, true, sample_every);
      const std::string what = std::string(faulty ? "faulty" : "fault-free") +
                               " sample_every=" +
                               std::to_string(sample_every);
      EXPECT_EQ(off.results, on.results) << what;
      EXPECT_EQ(off.now_us, on.now_us) << what;
      EXPECT_TRUE(off.stats == on.stats) << what;
      EXPECT_TRUE(off.trace_events == on.trace_events) << what;
    }
  }
}

TEST(EngineMetrics, SampledStepItemsFollowTheSamplePeriod) {
  // With sample_every=1 every step records its items; with a 2^k period
  // only every 2^k-th does — but both selections are deterministic, so
  // repeated runs agree exactly.
  const MetricsRun all = run_workload(1, false, true, 1);
  const MetricsRun sparse = run_workload(1, false, true, 64);
  const MetricsRun sparse2 = run_workload(1, false, true, 64);
  EXPECT_EQ(sparse.sim.at("engine.step_items"),
            sparse2.sim.at("engine.step_items"));
  EXPECT_EQ(all.sim.at("engine.steps"), sparse.sim.at("engine.steps"))
      << "the step tally counts every step regardless of sampling";
  EXPECT_NE(all.sim.at("engine.step_items"),
            sparse.sim.at("engine.step_items"))
      << "sampling must thin the per-step histogram";
}

// --------------------------------------------------------------------------
// Analysis companions.

TEST(CriticalPath, RankingCoversTheClockExactly) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 24, 20);
  A.load(random_matrix(24, 20, 11));
  (void)reduce_rows(A, Plus<double>{});
  (void)transpose(A);

  const std::vector<HotRegion> ranked = critical_path(cube.clock());
  ASSERT_FALSE(ranked.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    sum += ranked[i].self_us;
    if (i > 0)
      EXPECT_LE(ranked[i].self_us, ranked[i - 1].self_us)
          << "ranking must be descending";
  }
  EXPECT_NEAR(sum, cube.clock().now_us(), 1e-6 * (1.0 + cube.clock().now_us()))
      << "self times must cover the whole clock";
  EXPECT_NEAR(ranked.back().cum_pct, 100.0, 1e-6);
  const std::string table = critical_path_to_table(cube.clock());
  EXPECT_NE(table.find("%"), std::string::npos);
}

TEST(CriticalPath, LoadImbalanceFactorsAreAtLeastOne) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 24, 20);
  A.load(random_matrix(24, 20, 12));
  (void)reduce_rows(A, Plus<double>{});
  (void)extract_col(A, 3);

  const std::vector<RegionImbalance> imb =
      load_imbalance(cube.clock(), cube.procs());
  ASSERT_FALSE(imb.empty());
  for (const RegionImbalance& r : imb) {
    // max ≥ mean: the slowest processor never did less than the average.
    if (r.elements_moved != 0) EXPECT_GE(r.comm_factor, 1.0 - 1e-9) << r.path;
    if (r.flops_total != 0) EXPECT_GE(r.compute_factor, 1.0 - 1e-9) << r.path;
  }
  EXPECT_FALSE(load_imbalance_to_table(cube.clock(), cube.procs()).empty());
}

TEST(Flamegraph, CollapsedStacksAreWellFormedAndRoundTrip) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 24, 20);
  A.load(random_matrix(24, 20, 13));
  (void)reduce_rows(A, Plus<double>{});

  const std::string doc = collapsed_stacks(cube.clock());
  ASSERT_FALSE(doc.empty());
  // Every line: "frame[;frame...] <integer-ns>".
  std::size_t pos = 0;
  while (pos < doc.size()) {
    std::size_t eol = doc.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "every line must end with \\n";
    const std::string line = doc.substr(pos, eol - pos);
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(line.find('/'), std::string::npos)
        << "path separators must become ';': " << line;
    const std::string value = line.substr(sp + 1);
    EXPECT_FALSE(value.empty());
    for (char ch : value) EXPECT_TRUE(ch >= '0' && ch <= '9') << line;
    pos = eol + 1;
  }

  const std::string path = "test_metrics_flame.collapsed";
  ASSERT_TRUE(write_collapsed_stacks(path, cube.clock()));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(text, doc);
}

TEST(Sampler, CollectsALabeledTimeSeries) {
  Cube cube(2, CostParams::cm2());
  cube.enable_metrics();
  MetricsSampler s(cube.metrics());
  Grid grid(cube, 1, 1);
  DistMatrix<double> A(grid, 8, 8);
  A.load(random_matrix(8, 8, 14));
  (void)reduce_rows(A, Plus<double>{});
  s.sample("after_reduce", cube.clock().now_us());
  (void)extract_col(A, 1);
  s.sample("after_extract", cube.clock().now_us());
  EXPECT_EQ(s.size(), 2u);
  const std::string doc = s.to_json();
  EXPECT_NE(doc.find("\"kind\":\"series\""), std::string::npos);
  EXPECT_NE(doc.find("after_reduce"), std::string::npos);
  EXPECT_NE(doc.find("after_extract"), std::string::npos);
}

}  // namespace
}  // namespace vmp
