// Tests: the hyper-systolic matmul backend and the matmul_auto cost-model
// selector — conformance twin-sweep over all three backends (with and
// without fault plans), bitwise determinism across thread counts and
// repeats, the O(√p) communication-volume claim, and the selector picking
// the cheaper backend on both sides of the crossover.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/matmul.hpp"
#include "comm/shift.hpp"
#include "fault/fault.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

// Cost-crossover goldens assume the paper machine: pin the hypercube
// preset so the CI mesh leg (VMP_TOPOLOGY=mesh) leaves the charges alone.
Cube::Options pin_hypercube() {
  Cube::Options o;
  o.topology = TopologyKind::Hypercube;
  return o;
}

std::vector<double> host_gemm(const std::vector<double>& a,
                              const std::vector<double>& b, std::size_t n,
                              std::size_t k, std::size_t m) {
  std::vector<double> c(n * m, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t t = 0; t < k; ++t)
      for (std::size_t j = 0; j < m; ++j)
        c[i * m + j] += a[i * k + t] * b[t * m + j];
  return c;
}

// ---------------------------------------------------------------------------
// Conformance twin-sweep: all three backends on the same 1-D grid, checked
// against the host GEMM and against each other, with and without faults.
// ---------------------------------------------------------------------------

class HyperSweep : public ::testing::TestWithParam<
                       std::tuple<int, std::size_t, std::size_t, std::size_t,
                                  bool>> {};

TEST_P(HyperSweep, AllBackendsMatchHostGemm) {
  const auto [d, n, k, m, faults] = GetParam();
  Cube cube(d, CostParams::cm2());
  // Rates low enough that no message plausibly exhausts the retry budget
  // across the ~10^4 deliveries of the three-backend sweep.
  if (faults)
    cube.enable_faults(FaultPlan::transient(23, /*drop=*/0.05,
                                            /*corrupt=*/0.02));
  Grid grid(cube, d, 0);  // 1-D: every processor owns a full-width row block
  const std::vector<double> ha = random_matrix(n, k, 411);
  const std::vector<double> hb = random_matrix(k, m, 412);
  DistMatrix<double> A(grid, n, k);
  DistMatrix<double> B(grid, k, m);
  A.load(ha);
  B.load(hb);
  const std::vector<double> want = host_gemm(ha, hb, n, k, m);

  const std::vector<double> hyper = matmul_hyper(A, B).to_host();
  const std::vector<double> summa = matmul_summa(A, B).to_host();
  const std::vector<double> rank1 = matmul(A, B).to_host();
  const std::vector<double> autod = matmul_auto(A, B).to_host();
  for (std::size_t i = 0; i < n * m; ++i) {
    const double tol = 1e-11 * (1 + std::abs(want[i]));
    EXPECT_NEAR(hyper[i], want[i], tol) << "hyper i=" << i;
    EXPECT_NEAR(summa[i], want[i], tol) << "summa i=" << i;
    EXPECT_NEAR(rank1[i], want[i], tol) << "rank1 i=" << i;
    EXPECT_NEAR(autod[i], want[i], tol) << "auto i=" << i;
    // hyper vs SUMMA: same sum, different reduction order — the documented
    // round-off budget of docs/matmul.md, not bitwise equality.
    EXPECT_NEAR(hyper[i], summa[i], tol) << "hyper vs summa i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HyperSweep,
    ::testing::Values(std::tuple{0, 5ul, 7ul, 6ul, false},
                      std::tuple{1, 8ul, 8ul, 8ul, false},
                      std::tuple{2, 12ul, 10ul, 9ul, false},
                      std::tuple{3, 5ul, 9ul, 4ul, false},   // empty blocks
                      std::tuple{3, 17ul, 13ul, 11ul, false},
                      std::tuple{4, 32ul, 32ul, 32ul, false},
                      std::tuple{5, 40ul, 24ul, 16ul, false},
                      std::tuple{3, 17ul, 13ul, 11ul, true},
                      std::tuple{4, 32ul, 32ul, 32ul, true}));

// ---------------------------------------------------------------------------
// Determinism: bit-identical results and simulated time across thread
// counts {1, 3, hardware} and across repeats on one machine.
// ---------------------------------------------------------------------------

struct HyperRun {
  std::vector<double> c;
  double t_us = 0.0;
};

HyperRun run_hyper(unsigned threads) {
  Cube::Options o;
  o.threads = threads;
  Cube cube(4, CostParams::cm2(), o);
  Grid grid(cube, 4, 0);
  const std::size_t n = 24, k = 20, m = 28;
  DistMatrix<double> A(grid, n, k);
  DistMatrix<double> B(grid, k, m);
  A.load(random_matrix(n, k, 421));
  B.load(random_matrix(k, m, 422));
  cube.clock().reset();
  HyperRun r;
  r.c = matmul_hyper(A, B).to_host();
  r.t_us = cube.clock().now_us();
  return r;
}

TEST(MatmulHyper, BitIdenticalAcrossThreadCountsAndRepeats) {
  const HyperRun t1 = run_hyper(1);
  const HyperRun t1b = run_hyper(1);
  const HyperRun t3 = run_hyper(3);
  const HyperRun thw = run_hyper(0);
  EXPECT_EQ(t1.c, t1b.c) << "repeat must be bit-identical";
  EXPECT_EQ(t1.c, t3.c) << "3-thread run must be bit-identical";
  EXPECT_EQ(t1.c, thw.c) << "hardware-thread run must be bit-identical";
  EXPECT_DOUBLE_EQ(t1.t_us, t1b.t_us);
  EXPECT_DOUBLE_EQ(t1.t_us, t3.t_us);
  EXPECT_DOUBLE_EQ(t1.t_us, thw.t_us);
}

// ---------------------------------------------------------------------------
// Eligibility contracts.
// ---------------------------------------------------------------------------

TEST(MatmulHyper, RejectsTwoDimensionalGridsAndCyclicRows) {
  Cube cube(4, CostParams::cm2());
  Grid grid2(cube, 2, 2);
  DistMatrix<double> A2(grid2, 8, 8);
  DistMatrix<double> B2(grid2, 8, 8);
  EXPECT_THROW((void)matmul_hyper(A2, B2), ContractError);

  Cube cube1(2, CostParams::cm2());
  Grid grid1(cube1, 2, 0);
  DistMatrix<double> Ac(grid1, 8, 8, MatrixLayout::cyclic());
  DistMatrix<double> Bc(grid1, 8, 8, MatrixLayout::cyclic());
  EXPECT_THROW((void)matmul_hyper(Ac, Bc), ContractError);
  // matmul_auto must not route an ineligible shape to hyper.
  MatmulCost c = matmul_cost(A2, B2);
  EXPECT_TRUE(std::isinf(c.hyper));
  EXPECT_FALSE(std::isinf(c.rank1));
}

// ---------------------------------------------------------------------------
// The O(√p) claim: per-processor communication volume of hyper vs the
// panel-broadcast backends at p = 64.
// ---------------------------------------------------------------------------

TEST(MatmulHyper, CommVolumePerProcessorIsOrderSqrtP) {
  const int d = 6;  // p = 64
  Cube cube(d, CostParams::cm2(), pin_hypercube());
  Grid grid(cube, d, 0);
  const std::size_t n = 128, k = 128, m = 128;
  DistMatrix<double> A(grid, n, k);
  DistMatrix<double> B(grid, k, m);
  A.load(random_matrix(n, k, 431));
  B.load(random_matrix(k, m, 432));

  cube.clock().reset();
  (void)matmul_hyper(A, B);
  const std::uint64_t moved_hyper = cube.clock().stats().elements_moved;

  cube.clock().reset();
  (void)matmul_summa(A, B);
  const std::uint64_t moved_summa = cube.clock().stats().elements_moved;

  // Per processor (in whole-block units) hyper moves ≈ 3.5√p blocks —
  // (K−1) replicate + (K−1) combine rounds at stride ±1 plus (L−1)
  // stride-K stream shifts that each pay 2 store-and-forward rounds —
  // while SUMMA's p B-panels each reach all p processors: ≈ p block
  // receives per processor.  With n = k = m that is a measured ratio of
  // ≈ √p/4 (2.25 at p = 64), growing as √p.
  EXPECT_GT(static_cast<double>(moved_summa) /
                static_cast<double>(moved_hyper),
            std::sqrt(64.0) / 4.0)
      << "hyper=" << moved_hyper << " summa=" << moved_summa;

  // √p scaling in p: quadrupling p at fixed matrix size must not grow the
  // total shifted volume by more than ≈ 2× (it is ≈ √p·(nk + nm + km/√p)).
  Cube cube4(4, CostParams::cm2(), pin_hypercube());
  Grid grid4(cube4, 4, 0);
  DistMatrix<double> A4(grid4, n, k);
  DistMatrix<double> B4(grid4, k, m);
  A4.load(random_matrix(n, k, 431));
  B4.load(random_matrix(k, m, 432));
  cube4.clock().reset();
  (void)matmul_hyper(A4, B4);
  const std::uint64_t moved_p16 = cube4.clock().stats().elements_moved;
  const double growth =
      static_cast<double>(moved_hyper) / static_cast<double>(moved_p16);
  EXPECT_GT(growth, 1.0);
  EXPECT_LT(growth, 3.0) << "p16=" << moved_p16 << " p64=" << moved_hyper;
}

// ---------------------------------------------------------------------------
// The selector: cheaper backend on both sides of the crossover.
// ---------------------------------------------------------------------------

TEST(MatmulAuto, PicksHyperOnSquareOperandsAndNotOnSkinnyReduction) {
  const int d = 6;
  Cube cube(d, CostParams::cm2(), pin_hypercube());
  Grid grid(cube, d, 0);

  // Square side of the crossover: the √p shift volume beats p-fold panel
  // broadcasts.
  {
    const std::size_t n = 128;
    DistMatrix<double> A(grid, n, n);
    DistMatrix<double> B(grid, n, n);
    A.load(random_matrix(n, n, 441));
    B.load(random_matrix(n, n, 442));
    const MatmulCost c = matmul_cost(A, B);
    EXPECT_LT(c.hyper, c.summa);
    EXPECT_LT(c.hyper, c.rank1);
    cube.clock().reset();
    const std::vector<double> got = matmul_auto(A, B).to_host();
    const double t_auto = cube.clock().now_us();
    cube.clock().reset();
    const std::vector<double> want = matmul_hyper(A, B).to_host();
    const double t_hyper = cube.clock().now_us();
    EXPECT_EQ(got, want) << "auto must dispatch to hyper here";
    EXPECT_DOUBLE_EQ(t_auto, t_hyper);
    cube.clock().reset();
    (void)matmul_summa(A, B);
    EXPECT_LT(t_hyper, cube.clock().now_us())
        << "the model's pick must also win on the simulated clock";
  }

  // Skinny reduction axis: hyper still ships K C-partials of full n×m
  // weight while the broadcasts shrink with k — the crossover's far side.
  {
    const std::size_t n = 256, k = 2, m = 256;
    DistMatrix<double> A(grid, n, k);
    DistMatrix<double> B(grid, k, m);
    A.load(random_matrix(n, k, 443));
    B.load(random_matrix(k, m, 444));
    const MatmulCost c = matmul_cost(A, B);
    EXPECT_GT(c.hyper, std::min(c.summa, c.rank1));
    cube.clock().reset();
    const std::vector<double> got = matmul_auto(A, B).to_host();
    const double t_auto = cube.clock().now_us();
    cube.clock().reset();
    const std::vector<double> want = c.summa <= c.rank1
                                         ? matmul_summa(A, B).to_host()
                                         : matmul(A, B).to_host();
    const double t_pick = cube.clock().now_us();
    EXPECT_EQ(got, want) << "auto must avoid hyper here";
    EXPECT_DOUBLE_EQ(t_auto, t_pick);
    cube.clock().reset();
    (void)matmul_hyper(A, B);
    EXPECT_LT(t_pick, cube.clock().now_us());
  }
}

TEST(MatmulAuto, FallsBackToRank1WhenPanelsAreIneligible) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistMatrix<double> A(grid, 6, 6, MatrixLayout::cyclic());
  DistMatrix<double> B(grid, 6, 6, MatrixLayout::cyclic());
  const MatmulCost c = matmul_cost(A, B);
  EXPECT_TRUE(std::isinf(c.hyper));
  EXPECT_TRUE(std::isinf(c.summa));
  const std::vector<double> ha = random_matrix(6, 6, 451);
  const std::vector<double> hb = random_matrix(6, 6, 452);
  A.load(ha);
  B.load(hb);
  const std::vector<double> got = matmul_auto(A, B).to_host();
  const std::vector<double> want = host_gemm(ha, hb, 6, 6, 6);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-11 * (1 + std::abs(want[i])));
}

}  // namespace
}  // namespace vmp
