// Test-only brute-force LP oracle: enumerate every basic solution of the
// slack-form system [A | I]·x̃ = b, keep the feasible ones, and maximize.
// Exponential, but an INDEPENDENT ground truth for small problems (it
// shares no code with either simplex implementation).
#pragma once

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "algorithms/lp.hpp"

namespace vmp::testing {

struct OracleResult {
  bool feasible = false;
  bool bounded = true;  // only meaningful when feasible
  double objective = -std::numeric_limits<double>::infinity();
  std::vector<double> x;  // structural variables at the optimum
};

namespace detail {

/// Solve the m×m dense system in place; returns false if singular.
inline bool solve_square(std::vector<double>& M, std::vector<double>& rhs,
                         std::size_t m) {
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < m; ++i)
      if (std::abs(M[i * m + k]) > std::abs(M[piv * m + k])) piv = i;
    if (std::abs(M[piv * m + k]) < 1e-11) return false;
    if (piv != k) {
      for (std::size_t j = 0; j < m; ++j) std::swap(M[k * m + j], M[piv * m + j]);
      std::swap(rhs[k], rhs[piv]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (i == k) continue;
      const double f = M[i * m + k] / M[k * m + k];
      if (f == 0.0) continue;
      for (std::size_t j = k; j < m; ++j) M[i * m + j] -= f * M[k * m + j];
      rhs[i] -= f * rhs[k];
    }
  }
  for (std::size_t k = 0; k < m; ++k) rhs[k] /= M[k * m + k];
  return true;
}

}  // namespace detail

/// Enumerate C(nvars + ncons, ncons) bases.  Only use for tiny problems.
/// Unboundedness is detected separately by probing rays: if some feasible
/// point exists and the LP's feasible set is unbounded in an improving
/// direction this oracle can miss it, so callers should only compare
/// objective values when both sides report Optimal.
[[nodiscard]] inline OracleResult brute_force_lp(const LpProblem& lp,
                                                 double eps = 1e-8) {
  lp.validate();
  const std::size_t m = lp.ncons, nv = lp.nvars, total = nv + m;
  OracleResult out;

  std::vector<std::size_t> pick(m);
  // Iterate subsets of size m out of `total` columns.
  std::vector<bool> mask(total, false);
  std::fill(mask.end() - static_cast<std::ptrdiff_t>(m), mask.end(), true);
  do {
    std::size_t t = 0;
    for (std::size_t j = 0; j < total; ++j)
      if (mask[j]) pick[t++] = j;

    std::vector<double> M(m * m, 0.0);
    for (std::size_t col = 0; col < m; ++col) {
      const std::size_t v = pick[col];
      for (std::size_t i = 0; i < m; ++i)
        M[i * m + col] = v < nv ? lp.A[i * nv + v] : (v - nv == i ? 1.0 : 0.0);
    }
    std::vector<double> sol = lp.b;
    if (!detail::solve_square(M, sol, m)) continue;
    bool feas = true;
    for (double s : sol)
      if (s < -eps) {
        feas = false;
        break;
      }
    if (!feas) continue;
    out.feasible = true;
    double obj = 0.0;
    std::vector<double> x(nv, 0.0);
    for (std::size_t col = 0; col < m; ++col)
      if (pick[col] < nv) {
        x[pick[col]] = sol[col];
        obj += lp.c[pick[col]] * sol[col];
      }
    if (obj > out.objective) {
      out.objective = obj;
      out.x = std::move(x);
    }
  } while (std::next_permutation(mask.begin(), mask.end()));

  // Degenerate no-constraint case: x = 0 is the only basic solution.
  if (m == 0) {
    out.feasible = true;
    out.objective = 0.0;
    out.x.assign(nv, 0.0);
  }
  return out;
}

}  // namespace vmp::testing
