// Failure injection: every public precondition should fail loudly with
// vmp::ContractError, never corrupt state or crash.
#include <gtest/gtest.h>

#include <memory>

#include "comm/collectives.hpp"
#include "comm/router.hpp"
#include "core/primitives.hpp"
#include "core/vector_ops.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

TEST(Contracts, CubeDimensionBounds) {
  EXPECT_THROW(Cube(-1, CostParams::unit()), ContractError);
  EXPECT_THROW(Cube(31, CostParams::unit()), ContractError);
  EXPECT_NO_THROW(Cube(0, CostParams::unit()));
}

TEST(Contracts, ExchangeDimensionBounds) {
  Cube cube(3, CostParams::unit());
  const auto send = [](proc_t) { return std::span<const int>{}; };
  const auto recv = [](proc_t, std::span<const int>) {};
  EXPECT_THROW(cube.exchange<int>(-1, send, recv), ContractError);
  EXPECT_THROW(cube.exchange<int>(3, send, recv), ContractError);
}

TEST(Contracts, DistBufferProcBounds) {
  Cube cube(2, CostParams::unit());
  DistBuffer<int> buf(cube);
  EXPECT_THROW((void)buf.tile(4), ContractError);
  EXPECT_NO_THROW((void)buf.tile(3));
}

TEST(Contracts, SubcubeRankBounds) {
  const SubcubeSet sc = SubcubeSet::contiguous(1, 2);
  EXPECT_THROW((void)sc.with_rank(0, 4), ContractError);
  EXPECT_NO_THROW((void)sc.with_rank(0, 3));
  EXPECT_THROW((void)sc.dim_of_rank_bit(2), ContractError);
}

TEST(Contracts, AllreduceLengthMismatchWithinSubcube) {
  Cube cube(2, CostParams::unit());
  DistBuffer<double> buf(cube);
  cube.each_proc([&](proc_t q) { buf.assign(q, q == 0 ? 3 : 4, 1.0); });
  EXPECT_THROW(
      allreduce(cube, buf, SubcubeSet::contiguous(0, 2), Plus<double>{}),
      ContractError);
}

TEST(Contracts, BroadcastRootOutOfRange) {
  Cube cube(3, CostParams::unit());
  DistBuffer<double> buf(cube);
  EXPECT_THROW(broadcast(cube, buf, SubcubeSet::contiguous(0, 2), 4),
               ContractError);
}

TEST(Contracts, RouteEscapingSubcubeRejected) {
  Cube cube(3, CostParams::unit());
  DistBuffer<RouteItem<double>> items(cube);
  // Destination outside the dims-{0,1} subcube of the source.
  items.push_back(0, RouteItem<double>{4, 0, 1.0});
  EXPECT_THROW(route_within(cube, items, SubcubeSet::contiguous(0, 2)),
               ContractError);
}

TEST(Contracts, RouterDestinationBounds) {
  Cube cube(2, CostParams::unit());
  std::vector<std::vector<Packet>> inject(cube.procs());
  inject[0].push_back(Packet{9, 0, 1.0});
  NaiveRouter router(cube);
  EXPECT_THROW(router.run(std::move(inject),
                          [](proc_t, std::uint64_t, double) {}),
               ContractError);
}

TEST(Contracts, AxisMapBounds) {
  const AxisMap map(10, 4, Part::Block);
  EXPECT_THROW((void)map.owner(10), ContractError);
  EXPECT_THROW((void)map.size(4), ContractError);
  EXPECT_THROW((void)map.global(0, map.size(0)), ContractError);
  EXPECT_THROW(AxisMap(5, 0, Part::Block), ContractError);
}

TEST(Contracts, MatrixHostIoSizeChecks) {
  Cube cube(2, CostParams::unit());
  Grid grid(cube, 1, 1);
  DistMatrix<double> A(grid, 4, 4);
  const std::vector<double> wrong(15, 0.0);
  EXPECT_THROW(A.load(wrong), ContractError);
  EXPECT_THROW((void)A.at(4, 0), ContractError);
  EXPECT_THROW((void)A.at(0, 4), ContractError);
  DistVector<double> v(grid, 4, Align::Cols);
  EXPECT_THROW(v.load(std::vector<double>(3, 0.0)), ContractError);
  EXPECT_THROW((void)v.at(4), ContractError);
}

TEST(Contracts, LinearVectorsMustBeBlock) {
  Cube cube(2, CostParams::unit());
  Grid grid(cube, 1, 1);
  EXPECT_THROW(DistVector<double>(grid, 8, Align::Linear, Part::Cyclic),
               ContractError);
}

TEST(Contracts, VectorOpAlignmentChecks) {
  Cube cube(2, CostParams::unit());
  Grid grid(cube, 1, 1);
  DistVector<double> a(grid, 8, Align::Cols);
  DistVector<double> b(grid, 8, Align::Rows);
  DistVector<double> c(grid, 9, Align::Cols);
  EXPECT_THROW(vec_axpy(a, 1.0, b), ContractError);
  EXPECT_THROW(vec_axpy(a, 1.0, c), ContractError);
  EXPECT_THROW((void)dot(a, b), ContractError);
  EXPECT_THROW(vec_fill_range(a, 5, 3, 0.0), ContractError);
  EXPECT_THROW(vec_fill_range(a, 0, 9, 0.0), ContractError);
  EXPECT_THROW((void)vec_fetch(a, 8), ContractError);
  EXPECT_THROW(vec_store(a, 8, 0.0), ContractError);
}

TEST(Contracts, RangedInsertBounds) {
  Cube cube(2, CostParams::unit());
  Grid grid(cube, 1, 1);
  DistMatrix<double> A(grid, 5, 5);
  DistVector<double> v(grid, 5, Align::Rows);
  EXPECT_THROW(insert_col_range(A, 0, v, 3, 2), ContractError);
  EXPECT_THROW(insert_col_range(A, 0, v, 0, 6), ContractError);
  EXPECT_NO_THROW(insert_col_range(A, 0, v, 0, 5));
}

TEST(Contracts, StateSurvivesAFailedCall) {
  // A rejected operation must leave the operand untouched.
  Cube cube(2, CostParams::unit());
  Grid grid(cube, 1, 1);
  const std::vector<double> host = random_matrix(4, 4, 1);
  DistMatrix<double> A(grid, 4, 4);
  A.load(host);
  DistVector<double> wrong(grid, 4, Align::Rows);
  EXPECT_THROW(insert_row(A, 0, wrong), ContractError);
  EXPECT_EQ(A.to_host(), host);
}

TEST(Contracts, GridSplitChecks) {
  Cube cube(4, CostParams::unit());
  EXPECT_THROW(Grid(cube, 3, 2), ContractError);
  EXPECT_THROW(Grid(cube, -1, 5), ContractError);
  Grid grid(cube, 2, 2);
  EXPECT_THROW((void)grid.at(4, 0), ContractError);
  EXPECT_THROW((void)grid.at(0, 4), ContractError);
}

}  // namespace
}  // namespace vmp
