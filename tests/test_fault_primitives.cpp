// End-to-end fault determinism: every primitive and demo application must
// produce *bit-identical* results under any within-budget fault plan — the
// injector may change when messages arrive and what the run costs, never
// the values computed.  Reruns under the same plan must replay the exact
// event trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algorithms/gauss.hpp"
#include "algorithms/matvec.hpp"
#include "algorithms/simplex.hpp"
#include "core/primitives.hpp"
#include "obs/report.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

/// The standard within-budget transient plan for these tests: high enough
/// to exercise retries constantly, far below anything that could exhaust
/// the default RecoveryPolicy budget.
[[nodiscard]] FaultPlan test_plan(std::uint64_t seed) {
  return FaultPlan::transient(seed, /*drop=*/0.05, /*corrupt=*/0.02,
                              /*spike=*/0.01, /*spike_us=*/20.0);
}

struct PrimFixture {
  explicit PrimFixture(bool faults, std::uint64_t seed = 17)
      : cube(4, CostParams::cm2()),
        grid(cube, 2, 2),
        A(grid, 20, 12),
        vc(grid, 12, Align::Cols),
        vr(grid, 20, Align::Rows) {
    if (faults) cube.enable_faults(test_plan(seed));
    A.load(random_matrix(20, 12, 1));
    vc.load(random_vector(12, 2));
    vr.load(random_vector(20, 3));
  }
  Cube cube;
  Grid grid;
  DistMatrix<double> A;
  DistVector<double> vc, vr;
};

TEST(FaultPrimitives, AllEightPrimitivesAreBitIdenticalUnderFaults) {
  PrimFixture plain(false), faulty(true);

  EXPECT_EQ(reduce_rows(faulty.A, Plus<double>{}).to_host(),
            reduce_rows(plain.A, Plus<double>{}).to_host());
  EXPECT_EQ(reduce_cols(faulty.A, Plus<double>{}).to_host(),
            reduce_cols(plain.A, Plus<double>{}).to_host());
  EXPECT_EQ(distribute_rows(faulty.vc, 20).to_host(),
            distribute_rows(plain.vc, 20).to_host());
  EXPECT_EQ(distribute_cols(faulty.vr, 12).to_host(),
            distribute_cols(plain.vr, 12).to_host());
  EXPECT_EQ(extract_row(faulty.A, 7).to_host(),
            extract_row(plain.A, 7).to_host());
  EXPECT_EQ(extract_col(faulty.A, 5).to_host(),
            extract_col(plain.A, 5).to_host());
  insert_row(faulty.A, 4, faulty.vc);
  insert_row(plain.A, 4, plain.vc);
  EXPECT_EQ(faulty.A.to_host(), plain.A.to_host());
  insert_col(faulty.A, 9, faulty.vr);
  insert_col(plain.A, 9, plain.vr);
  EXPECT_EQ(faulty.A.to_host(), plain.A.to_host());

  EXPECT_GT(faulty.cube.clock().stats().fault_retries, 0u)
      << "the plan should actually have exercised recovery";
  EXPECT_EQ(plain.cube.clock().stats().fault_retries, 0u);
  EXPECT_GT(faulty.cube.clock().now_us(), plain.cube.clock().now_us());
}

TEST(FaultPrimitives, MatvecIsBitIdenticalUnderFaults) {
  const auto run = [](bool faults) {
    Cube cube(4, CostParams::cm2());
    if (faults) cube.enable_faults(test_plan(23));
    Grid grid = Grid::square(cube);
    DistMatrix<double> A(grid, 32, 32);
    A.load(random_matrix(32, 32, 5));
    DistVector<double> x(grid, 32, Align::Cols);
    x.load(random_vector(32, 6));
    const std::vector<double> y = matvec(A, x).to_host();
    const std::vector<double> yf = matvec_fused(A, x).to_host();
    std::vector<double> both = y;
    both.insert(both.end(), yf.begin(), yf.end());
    return both;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(FaultPrimitives, GaussianEliminationIsBitIdenticalUnderFaults) {
  const std::size_t n = 24;
  const HostMatrix H = diag_dominant_matrix(n, 7);
  const std::vector<double> b = random_vector(n, 8);
  const auto solve = [&](bool faults) {
    Cube cube(4, CostParams::cm2());
    if (faults) cube.enable_faults(test_plan(29));
    Grid grid = Grid::square(cube);
    DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
    A.load(H.data());
    return gauss_solve(A, b);
  };
  EXPECT_EQ(solve(true), solve(false));
}

TEST(FaultPrimitives, SimplexIsBitIdenticalUnderFaults) {
  const LpProblem lp = random_feasible_lp(8, 6, 9);
  const auto solve = [&](bool faults) {
    Cube cube(4, CostParams::cm2());
    if (faults) cube.enable_faults(test_plan(31));
    Grid grid = Grid::square(cube);
    return simplex_solve(grid, lp);
  };
  const LpSolution a = solve(true), want = solve(false);
  EXPECT_EQ(a.status, want.status);
  EXPECT_EQ(a.objective, want.objective);  // bit-identical, not just close
  EXPECT_EQ(a.x, want.x);
  EXPECT_EQ(a.iterations, want.iterations);
}

TEST(FaultPrimitives, SameSeedReplaysTheIdenticalEventTrace) {
  const auto run = [](std::uint64_t seed) {
    Cube cube(4, CostParams::cm2());
    cube.clock().tracer().set_recording(true);
    cube.enable_faults(test_plan(seed));
    Grid grid = Grid::square(cube);
    DistMatrix<double> A(grid, 16, 16);
    A.load(random_matrix(16, 16, 4));
    DistVector<double> x(grid, 16, Align::Cols);
    x.load(random_vector(16, 5));
    (void)matvec(A, x);
    struct Snapshot {
      std::vector<TraceEvent> events;
      double now_us;
      std::uint64_t retries;
    };
    return Snapshot{cube.clock().tracer().events(), cube.clock().now_us(),
                    cube.clock().stats().fault_retries};
  };
  const auto a = run(41), b = run(41);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.now_us, b.now_us);
  EXPECT_EQ(a.retries, b.retries);
}

TEST(FaultPrimitives, RecoveryCostsAppearUnderThePrimitiveRegions) {
  // A heavier (still within-budget) plan so a couple of primitive calls
  // are guaranteed to hit the retry path.
  PrimFixture faulty(false);
  faulty.cube.enable_faults(
      FaultPlan::transient(17, /*drop=*/0.25, /*corrupt=*/0.1));
  (void)reduce_rows(faulty.A, Plus<double>{});
  (void)reduce_cols(faulty.A, Plus<double>{});
  (void)extract_col(faulty.A, 5);
  ASSERT_GT(faulty.cube.clock().stats().fault_retries, 0u);
  // The fault_* regions nest below the primitive that paid for them.
  bool nested = false;
  for (const auto& [path, prof] :
       faulty.cube.clock().tracer().inclusive_profiles()) {
    if (path.find("fault_") == std::string::npos) continue;
    EXPECT_GT(prof.total_us(), 0.0) << path;
    if (path.find('/') != std::string::npos) nested = true;
  }
  EXPECT_TRUE(nested) << "expected fault regions nested under primitives";
  const std::string json = profile_to_json(faulty.cube.clock());
  EXPECT_NE(json.find("fault_retry"), std::string::npos);
}

TEST(FaultPrimitives, AnyWithinBudgetSeedIsBitIdentical) {
  // The guarantee is per-plan, not per-lucky-seed: sweep several.
  PrimFixture plain(false);
  const std::vector<double> want = reduce_cols(plain.A, Plus<double>{}).to_host();
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    PrimFixture faulty(true, seed);
    EXPECT_EQ(reduce_cols(faulty.A, Plus<double>{}).to_host(), want)
        << "seed " << seed;
  }
}

TEST(FaultPrimitives, BeyondBudgetDegradesWithAClearError) {
  PrimFixture faulty(false);
  faulty.cube.enable_faults(FaultPlan::transient(3, /*drop=*/1.0, 0.0));
  EXPECT_THROW((void)reduce_rows(faulty.A, Plus<double>{}), FaultError);
}

}  // namespace
}  // namespace vmp
