// Cross-module algebraic property tests: identities that hold between
// independent implementations catch bugs no single-module test can.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/cg.hpp"
#include "algorithms/gauss.hpp"
#include "algorithms/invert.hpp"
#include "algorithms/matmul.hpp"
#include "algorithms/matvec.hpp"
#include "algorithms/simplex.hpp"
#include "core/transpose.hpp"
#include "embed/realign.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

class AlgebraFx : public ::testing::Test {
 protected:
  AlgebraFx() : cube(4, CostParams::cm2()), grid(cube, 2, 2) {}
  Cube cube;
  Grid grid;
};

TEST_F(AlgebraFx, TransposeOfProductIsProductOfTransposes) {
  const std::size_t n = 9, k = 7, m = 11;
  DistMatrix<double> A(grid, n, k), B(grid, k, m);
  A.load(random_matrix(n, k, 501));
  B.load(random_matrix(k, m, 502));
  const std::vector<double> lhs = transpose(matmul(A, B)).to_host();
  const std::vector<double> rhs = matmul(transpose(B), transpose(A)).to_host();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t t = 0; t < lhs.size(); ++t)
    EXPECT_NEAR(lhs[t], rhs[t], 1e-11 * (1 + std::abs(lhs[t])));
}

TEST_F(AlgebraFx, MatvecAgreesWithMatmulColumn) {
  const std::size_t n = 10, k = 8;
  DistMatrix<double> A(grid, n, k);
  A.load(random_matrix(n, k, 503));
  const std::vector<double> hx = random_vector(k, 504);
  // As a k×1 matrix product.
  DistMatrix<double> X(grid, k, 1);
  X.load(hx);
  const std::vector<double> via_mm = matmul(A, X).to_host();
  DistVector<double> x(grid, k, Align::Cols);
  x.load(hx);
  const std::vector<double> via_mv = matvec(A, x).to_host();
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(via_mm[i], via_mv[i], 1e-11 * (1 + std::abs(via_mv[i])));
}

TEST_F(AlgebraFx, InverseTimesMatrixIsIdentityDistributed) {
  const std::size_t n = 10;
  const HostMatrix H = diag_dominant_matrix(n, 505);
  DistMatrix<double> A(grid, n, n);
  A.load(H.data());
  const InvertResult inv = invert(A);
  ASSERT_FALSE(inv.singular);
  const std::vector<double> prod = matmul(inv.inverse, A).to_host();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(prod[i * n + j], i == j ? 1.0 : 0.0, 1e-8);
}

TEST_F(AlgebraFx, SolveViaInverseMatchesSolveViaLu) {
  const std::size_t n = 12;
  const HostMatrix H = diag_dominant_matrix(n, 506);
  const std::vector<double> b = random_vector(n, 507);
  DistMatrix<double> A1(grid, n, n, MatrixLayout::cyclic());
  A1.load(H.data());
  const std::vector<double> x_lu = gauss_solve(A1, b);

  DistMatrix<double> A2(grid, n, n);
  A2.load(H.data());
  const InvertResult inv = invert(A2);
  ASSERT_FALSE(inv.singular);
  DistVector<double> bv(grid, n, Align::Cols);
  bv.load(b);
  const std::vector<double> x_inv = matvec(inv.inverse, bv).to_host();
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x_inv[i], x_lu[i], 1e-7 * (1 + std::abs(x_lu[i])));
}

TEST_F(AlgebraFx, MatvecIsLinear) {
  const std::size_t n = 12, k = 9;
  DistMatrix<double> A(grid, n, k);
  A.load(random_matrix(n, k, 508));
  const std::vector<double> hx = random_vector(k, 509);
  const std::vector<double> hy = random_vector(k, 510);
  DistVector<double> x(grid, k, Align::Cols), y(grid, k, Align::Cols),
      z(grid, k, Align::Cols);
  x.load(hx);
  y.load(hy);
  std::vector<double> hz(k);
  for (std::size_t j = 0; j < k; ++j) hz[j] = 3.0 * hx[j] - 2.0 * hy[j];
  z.load(hz);
  const std::vector<double> Ax = matvec(A, x).to_host();
  const std::vector<double> Ay = matvec(A, y).to_host();
  const std::vector<double> Az = matvec(A, z).to_host();
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(Az[i], 3.0 * Ax[i] - 2.0 * Ay[i],
                1e-10 * (1 + std::abs(Az[i])));
}

TEST_F(AlgebraFx, VecmatIsMatvecOfTranspose) {
  const std::size_t n = 8, k = 13;
  DistMatrix<double> A(grid, n, k);
  A.load(random_matrix(n, k, 511));
  const std::vector<double> hx = random_vector(n, 512);
  DistVector<double> x(grid, n, Align::Rows);
  x.load(hx);
  const std::vector<double> xa = vecmat(x, A).to_host();

  const DistMatrix<double> At = transpose(A);
  DistVector<double> xc(grid, n, Align::Cols);
  xc.load(hx);
  const std::vector<double> atx = matvec(At, xc).to_host();
  for (std::size_t j = 0; j < k; ++j)
    EXPECT_NEAR(xa[j], atx[j], 1e-11 * (1 + std::abs(atx[j])));
}

TEST_F(AlgebraFx, CgSolutionSatisfiesLuSolve) {
  const std::size_t n = 16;
  const HostMatrix H = spd_matrix(n, 513);
  const std::vector<double> b = random_vector(n, 514);
  DistMatrix<double> A(grid, n, n);
  A.load(H.data());
  const CgResult cg = conjugate_gradient(A, b, {1e-12, 0});
  ASSERT_TRUE(cg.converged);
  DistMatrix<double> A2(grid, n, n, MatrixLayout::cyclic());
  A2.load(H.data());
  const std::vector<double> direct = gauss_solve(A2, b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(cg.x[i], direct[i], 1e-6 * (1 + std::abs(direct[i])));
}

TEST_F(AlgebraFx, RealignIsInvertibleAcrossAllPairs) {
  const std::size_t n = 21;
  const std::vector<double> host = random_vector(n, 515);
  for (Align a : {Align::Linear, Align::Cols, Align::Rows}) {
    for (Align b : {Align::Linear, Align::Cols, Align::Rows}) {
      DistVector<double> v(grid, n, a);
      v.load(host);
      const DistVector<double> w = realign(realign(v, b), a);
      EXPECT_EQ(w.to_host(), host)
          << to_string(a) << " -> " << to_string(b) << " -> " << to_string(a);
    }
  }
}

// Results must be identical under every cost preset — the model changes
// time, never values.
TEST(PresetInvariance, GaussAndSimplexResultsAreModelIndependent) {
  const std::size_t n = 12;
  const HostMatrix H = diag_dominant_matrix(n, 516);
  const std::vector<double> b = random_vector(n, 517);
  const LpProblem lp = random_feasible_lp(8, 6, 518);
  std::vector<double> x_ref;
  LpSolution s_ref;
  bool first = true;
  for (const CostParams& preset :
       {CostParams::cm2(), CostParams::ipsc(), CostParams::unit(),
        CostParams::free_comm()}) {
    Cube cube(4, preset);
    Grid grid(cube, 2, 2);
    DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
    A.load(H.data());
    const std::vector<double> x = gauss_solve(A, b);
    const LpSolution s = simplex_solve(grid, lp);
    if (first) {
      x_ref = x;
      s_ref = s;
      first = false;
    } else {
      EXPECT_EQ(x, x_ref) << preset.name;
      EXPECT_EQ(s.iterations, s_ref.iterations) << preset.name;
      EXPECT_EQ(s.objective, s_ref.objective) << preset.name;
    }
  }
}

}  // namespace
}  // namespace vmp
