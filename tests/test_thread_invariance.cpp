// Thread-count invariance sweep (tentpole check of the persistent SPMD
// worker-team engine): host threads change wall-clock speed only, NEVER
// the simulated machine.  The full eight-primitive workload — plus a fused
// pipeline, a routing transpose and a distributed scan, with and without a
// deterministic fault plan — must produce bit-identical results, identical
// `now_us`, identical SimStats (allocation counters included: staging slots
// grow per processor, not per lane) and charge-for-charge identical event
// traces under every lane count, including the fully inline zero-worker
// configuration and the hardware-concurrency one (threads = 0).
//
// Why this holds by construction: the team's ownership partition only
// decides WHICH lane runs a processor, per-processor work is independent
// within a step, and the per-step statistics are reduced from per-lane
// integer partials whose sums and maxima are partition-independent (see
// docs/threading.md).  This suite is the enforcement mechanism.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/matvec.hpp"
#include "comm/dist_buffer.hpp"
#include "core/kernels.hpp"
#include "core/primitives.hpp"
#include "core/scan_ops.hpp"
#include "core/transpose.hpp"
#include "fault/fault.hpp"
#include "hypercube/team.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

const std::uint64_t kBaseSeed = announce_seed("test_thread_invariance");

struct TrialConfig {
  int d, gr, gc;
  std::size_t nrows, ncols;
  bool cyclic;
  bool ipsc;
  std::uint64_t data_seed;

  [[nodiscard]] std::string reproducer(int trial) const {
    return "reproduce: VMP_SEED=" + std::to_string(kBaseSeed) +
           " ./test_thread_invariance  (trial " + std::to_string(trial) +
           ": d=" + std::to_string(d) + " gr=" + std::to_string(gr) +
           " gc=" + std::to_string(gc) + " n=" + std::to_string(nrows) + "x" +
           std::to_string(ncols) + (cyclic ? " cyclic" : " blocked") +
           (ipsc ? " ipsc" : " cm2") + ")";
  }
};

[[nodiscard]] TrialConfig draw(int trial) {
  SplitMix64 rng(kBaseSeed + static_cast<std::uint64_t>(trial) * 0x9e37ull);
  TrialConfig c;
  c.d = 1 + static_cast<int>(rng.below(8));  // 1..8 → 2..256 processors
  c.gr = static_cast<int>(rng.below(static_cast<std::uint64_t>(c.d) + 1));
  c.gc = c.d - c.gr;
  c.nrows = 1 + rng.below(48);
  c.ncols = 1 + rng.below(48);
  c.cyclic = rng.below(2) == 0;
  c.ipsc = rng.below(2) == 0;
  c.data_seed = rng.next();
  return c;
}

/// Everything one run of the workload produces, snapshotted so machines
/// with different lane counts can be compared field for field.
struct Snapshot {
  std::vector<std::vector<double>> results;
  double now_us = 0.0;
  SimStats stats;
  std::vector<std::string> trace_paths;
  std::vector<TraceEvent> trace_events;
};

/// The full eight-primitive sweep plus a fused pipeline, a dimension-order
/// routing transpose and a distributed scan — every engine path: compute
/// steps, one-port and all-port exchanges, sessions, and (when `faulty`)
/// the recovery-aware delivery.
[[nodiscard]] Snapshot run_workload(const TrialConfig& c, unsigned threads,
                                    bool faulty) {
  Cube cube(c.d, c.ipsc ? CostParams::ipsc() : CostParams::cm2(),
            Cube::Options{threads});
  if (faulty)
    cube.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
  cube.clock().tracer().set_recording(true);
  Grid grid(cube, c.gr, c.gc);

  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const Part part = c.cyclic ? Part::Cyclic : Part::Block;
  const std::vector<double> host =
      random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed));
  DistMatrix<double> A(grid, c.nrows, c.ncols, layout);
  A.load(host);
  const std::vector<double> vc_host =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  const std::vector<double> vr_host =
      random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 16));
  DistVector<double> vc(grid, c.ncols, Align::Cols, part);
  DistVector<double> vr(grid, c.nrows, Align::Rows, part);
  vc.load(vc_host);
  vr.load(vr_host);

  SplitMix64 rng(c.data_seed ^ 0xfeedULL);
  const std::size_t pick_i = rng.below(c.nrows);
  const std::size_t pick_j = rng.below(c.ncols);

  Snapshot s;
  // 1–8: the four primitive families along both axes.
  s.results.push_back(reduce_rows(A, Plus<double>{}).to_host());
  s.results.push_back(reduce_cols(A, Max<double>{}).to_host());
  s.results.push_back(extract_row(A, pick_i).to_host());
  s.results.push_back(extract_col(A, pick_j).to_host());
  s.results.push_back(distribute_rows(vc, c.nrows).to_host());
  s.results.push_back(distribute_cols(vr, c.ncols).to_host());
  insert_row(A, pick_i, vc);
  s.results.push_back(A.to_host());
  insert_col(A, pick_j, vr);
  s.results.push_back(A.to_host());
  // Fused pipeline (one-pass compute + the composed comm sequence).
  s.results.push_back(fused_matvec(A, vc).to_host());
  // Dimension-order combining routing (transpose) — team sessions around
  // the k-round sweep.
  s.results.push_back(transpose(A).to_host());
  // Distributed scan: local pass, lg p scan rounds, local pass.
  DistVector<double> sv(grid, c.nrows, Align::Rows, Part::Block);
  sv.load(vr_host);
  vec_scan_inclusive(sv, Plus<double>{});
  s.results.push_back(sv.to_host());

  s.now_us = cube.clock().now_us();
  s.stats = cube.clock().stats();
  s.trace_paths = cube.clock().tracer().paths();
  s.trace_events = cube.clock().tracer().events();
  return s;
}

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, SimulatedMachineBitIdenticalAcrossLaneCounts) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));

  for (const bool faulty : {false, true}) {
    const Snapshot ref = run_workload(c, /*threads=*/1, faulty);
    // 0 resolves to one lane per hardware thread — whatever this host has.
    for (const unsigned threads : {2u, 3u, 0u}) {
      const Snapshot got = run_workload(c, threads, faulty);
      const std::string what = std::string(faulty ? "faulty" : "fault-free") +
                               " threads=" + std::to_string(threads);
      ASSERT_EQ(ref.results.size(), got.results.size()) << what;
      for (std::size_t i = 0; i < ref.results.size(); ++i)
        EXPECT_EQ(ref.results[i], got.results[i])
            << what << " result stream " << i;
      EXPECT_EQ(ref.now_us, got.now_us) << what << " simulated clock";
      EXPECT_TRUE(ref.stats == got.stats)
          << what << " SimStats diverge (messages " << ref.stats.messages
          << " vs " << got.stats.messages << ", pool "
          << ref.stats.pool_hits << "/" << ref.stats.pool_misses << " vs "
          << got.stats.pool_hits << "/" << got.stats.pool_misses << ")";
      EXPECT_EQ(ref.trace_paths, got.trace_paths) << what;
      EXPECT_TRUE(ref.trace_events == got.trace_events)
          << what << " event traces diverge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreadSweep, ::testing::Range(0, 16));

// SIMD × lane-count twin sweep: the kernel backend's default dispatch mode
// must be bit-identical to the scalar loops under EVERY lane count and
// fault plan — results, simulated clock, SimStats and event traces all
// compared with the backend forced off vs on.  This is the cross product
// the tentpole contract promises: vectorization, like threading, changes
// wall-clock speed only, never the simulated machine.
TEST_P(ThreadSweep, SimdToggleBitIdenticalAcrossLaneCounts) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));

  for (const bool faulty : {false, true}) {
    const bool prev = kern::simd::set_enabled(false);
    const Snapshot off = run_workload(c, /*threads=*/1, faulty);
    kern::simd::set_enabled(true);
    for (const unsigned threads : {1u, 3u}) {
      const Snapshot got = run_workload(c, threads, faulty);
      const std::string what = std::string(faulty ? "faulty" : "fault-free") +
                               " simd-on threads=" + std::to_string(threads);
      ASSERT_EQ(off.results.size(), got.results.size()) << what;
      for (std::size_t i = 0; i < off.results.size(); ++i)
        EXPECT_EQ(off.results[i], got.results[i])
            << what << " result stream " << i;
      EXPECT_EQ(off.now_us, got.now_us) << what << " simulated clock";
      EXPECT_TRUE(off.stats == got.stats) << what << " SimStats diverge";
      EXPECT_EQ(off.trace_paths, got.trace_paths) << what;
      EXPECT_TRUE(off.trace_events == got.trace_events)
          << what << " event traces diverge";
    }
    kern::simd::set_enabled(prev);
  }
}

TEST(ThreadOptions, VmpThreadsEnvIsTheDefault) {
  // Options{} reads VMP_THREADS at construction: unset → 1 lane, N → N
  // lanes, 0 → one lane per hardware thread.
  ASSERT_EQ(setenv("VMP_THREADS", "3", 1), 0);
  EXPECT_EQ(env_threads(), 3u);
  {
    Cube cube(2, CostParams::unit());
    EXPECT_EQ(cube.threads(), 3u);
  }
  ASSERT_EQ(setenv("VMP_THREADS", "0", 1), 0);
  EXPECT_EQ(env_threads(), 0u);
  {
    Cube cube(2, CostParams::unit());
    EXPECT_EQ(cube.threads(), WorkerTeam::resolve_lanes(0));
    EXPECT_GE(cube.threads(), 1u);
  }
  ASSERT_EQ(unsetenv("VMP_THREADS"), 0);
  EXPECT_EQ(env_threads(), 1u);
  {
    Cube cube(2, CostParams::unit());
    EXPECT_EQ(cube.threads(), 1u);
  }
  // Explicit Options always win over the environment.
  ASSERT_EQ(setenv("VMP_THREADS", "7", 1), 0);
  {
    Cube cube(2, CostParams::unit(), Cube::Options{2});
    EXPECT_EQ(cube.threads(), 2u);
  }
  ASSERT_EQ(unsetenv("VMP_THREADS"), 0);
}

}  // namespace
}  // namespace vmp
